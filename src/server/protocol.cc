#include "server/protocol.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <limits>

namespace ah::server {

namespace {

constexpr std::string_view kUnreachableToken = "unreachable";

/// Splits `line` into whitespace-separated tokens (space and tab).
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t begin = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

/// Strict unsigned parse: the whole token must be a decimal number. A
/// leading '-' or '+', hex, or trailing junk all fail — no silent clamping.
bool ParseU64(std::string_view token, std::uint64_t* out) {
  if (token.empty() || token[0] < '0' || token[0] > '9') return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

ParseResult Fail(ErrorCode code, std::string message) {
  ParseResult r;
  r.ok = false;
  r.code = code;
  r.message = std::move(message);
  return r;
}

/// Parses a node-id token, validating the range [0, num_nodes).
bool ParseNode(std::string_view token, const ParseLimits& limits, NodeId* out,
               ParseResult* error) {
  std::uint64_t v = 0;
  if (!ParseU64(token, &v)) {
    *error = Fail(ErrorCode::kBadNode,
                  "node id '" + std::string(token) + "' is not a non-negative integer");
    return false;
  }
  if (v >= limits.num_nodes) {
    *error = Fail(ErrorCode::kBadNode,
                  "node id " + std::string(token) + " out of range [0, " +
                      std::to_string(limits.num_nodes) + ")");
    return false;
  }
  *out = static_cast<NodeId>(v);
  return true;
}

void AppendDist(std::string* out, Dist d) {
  if (d == kInfDist) {
    out->append(kUnreachableToken);
  } else {
    out->append(std::to_string(d));
  }
}

}  // namespace

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kBadNode: return "bad-node";
    case ErrorCode::kBadBackend: return "bad-backend";
    case ErrorCode::kBadArc: return "bad-arc";
    case ErrorCode::kUnsupportedVersion: return "unsupported-version";
    case ErrorCode::kOverload: return "overload";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kTooLarge: return "too-large";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

ParseResult ParseRequest(std::string_view line, const ParseLimits& limits) {
  std::vector<std::string_view> tokens = Tokenize(line);
  std::size_t at = 0;

  // Optional explicit version prefix "AH/<v>".
  if (at < tokens.size() && tokens[at].substr(0, 3) == "AH/") {
    std::uint64_t version = 0;
    if (!ParseU64(tokens[at].substr(3), &version) ||
        version != static_cast<std::uint64_t>(kProtocolVersion)) {
      return Fail(ErrorCode::kUnsupportedVersion,
                  "this server speaks AH/" + std::to_string(kProtocolVersion));
    }
    ++at;
  }
  // Optional backend selector "@<backend>" (existence checked server-side).
  std::string_view backend_prefix;
  if (at < tokens.size() && tokens[at].size() > 1 && tokens[at][0] == '@') {
    backend_prefix = tokens[at].substr(1);
    ++at;
  }
  if (at >= tokens.size()) {
    return Fail(ErrorCode::kBadRequest, "empty request");
  }

  const std::string_view verb = tokens[at++];
  const std::size_t argc = tokens.size() - at;
  ParseResult result;
  result.ok = true;
  Request& req = result.request;
  req.backend = std::string(backend_prefix);

  if (verb == "d" || verb == "p") {
    if (argc != 2) {
      return Fail(ErrorCode::kBadRequest,
                  "usage: " + std::string(verb) + " <s> <t>");
    }
    req.kind = verb == "d" ? RequestKind::kDistance : RequestKind::kPath;
    ParseResult error;
    if (!ParseNode(tokens[at], limits, &req.s, &error)) return error;
    if (!ParseNode(tokens[at + 1], limits, &req.t, &error)) return error;
    return result;
  }
  if (verb == "k") {
    if (argc != 2) return Fail(ErrorCode::kBadRequest, "usage: k <s> <k>");
    req.kind = RequestKind::kKNearest;
    ParseResult error;
    if (!ParseNode(tokens[at], limits, &req.s, &error)) return error;
    std::uint64_t k = 0;
    if (!ParseU64(tokens[at + 1], &k) || k == 0) {
      return Fail(ErrorCode::kBadRequest, "k must be a positive integer");
    }
    req.k = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(k, std::numeric_limits<std::uint32_t>::max()));
    return result;
  }
  if (verb == "b") {
    if (argc < 1) {
      return Fail(ErrorCode::kBadRequest, "usage: b <n> <s1> <t1> ...");
    }
    std::uint64_t n = 0;
    if (!ParseU64(tokens[at], &n) || n == 0) {
      return Fail(ErrorCode::kBadRequest,
                  "batch count must be a positive integer");
    }
    if (n > limits.max_batch) {
      return Fail(ErrorCode::kBadRequest,
                  "batch of " + std::to_string(n) + " exceeds the limit of " +
                      std::to_string(limits.max_batch));
    }
    if (argc - 1 != 2 * n) {
      return Fail(ErrorCode::kBadRequest,
                  "batch of " + std::to_string(n) + " needs " +
                      std::to_string(2 * n) + " node ids, got " +
                      std::to_string(argc - 1));
    }
    req.kind = RequestKind::kBatch;
    req.pairs.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      NodeId s = 0;
      NodeId t = 0;
      ParseResult error;
      if (!ParseNode(tokens[at + 1 + 2 * i], limits, &s, &error)) return error;
      if (!ParseNode(tokens[at + 2 + 2 * i], limits, &t, &error)) return error;
      req.pairs.emplace_back(s, t);
    }
    return result;
  }
  if (verb == "m") {
    if (argc < 2) {
      return Fail(ErrorCode::kBadRequest,
                  "usage: m <ns> <nt> <s1> ... <sns> <t1> ... <tnt>");
    }
    std::uint64_t ns = 0;
    std::uint64_t nt = 0;
    if (!ParseU64(tokens[at], &ns) || ns == 0 || !ParseU64(tokens[at + 1], &nt) ||
        nt == 0) {
      return Fail(ErrorCode::kBadRequest,
                  "matrix side counts must be positive integers");
    }
    // Cap before arity: a client asking for an over-cap matrix learns the
    // policy limit, not a confusing token-count complaint.
    if (limits.max_matrix_locations == 0) {
      return Fail(ErrorCode::kTooLarge, "matrix requests are disabled");
    }
    if (ns > limits.max_matrix_locations || nt > limits.max_matrix_locations) {
      return Fail(ErrorCode::kTooLarge,
                  "matrix side of " + std::to_string(std::max(ns, nt)) +
                      " exceeds the limit of " +
                      std::to_string(limits.max_matrix_locations) +
                      " locations");
    }
    if (argc - 2 != ns + nt) {
      return Fail(ErrorCode::kBadRequest,
                  "matrix of " + std::to_string(ns) + "x" + std::to_string(nt) +
                      " needs " + std::to_string(ns + nt) +
                      " node ids, got " + std::to_string(argc - 2));
    }
    req.kind = RequestKind::kMatrix;
    req.sources.reserve(ns);
    req.targets.reserve(nt);
    for (std::uint64_t i = 0; i < ns + nt; ++i) {
      NodeId node = 0;
      ParseResult error;
      if (!ParseNode(tokens[at + 2 + i], limits, &node, &error)) return error;
      (i < ns ? req.sources : req.targets).push_back(node);
    }
    return result;
  }
  // Everything below is backend-independent: a "@..." selector in front of
  // it is a contradiction, not something to silently ignore.
  if (!backend_prefix.empty()) {
    return Fail(ErrorCode::kBadRequest,
                "the @<backend> selector only applies to d|p|k|b|m requests");
  }
  if (verb == "use") {
    if (argc != 1) return Fail(ErrorCode::kBadRequest, "usage: use <backend>");
    req.kind = RequestKind::kUse;
    req.backend = std::string(tokens[at]);
    return result;
  }
  if (verb == "upd") {
    if (argc != 3) {
      return Fail(ErrorCode::kBadRequest, "usage: upd <u> <v> <weight>");
    }
    req.kind = RequestKind::kUpdate;
    ParseResult error;
    if (!ParseNode(tokens[at], limits, &req.s, &error)) return error;
    if (!ParseNode(tokens[at + 1], limits, &req.t, &error)) return error;
    std::uint64_t w = 0;
    if (!ParseU64(tokens[at + 2], &w) || w == 0 ||
        w >= static_cast<std::uint64_t>(kMaxWeight)) {
      return Fail(ErrorCode::kBadRequest,
                  "weight '" + std::string(tokens[at + 2]) +
                      "' must be a positive integer below " +
                      std::to_string(kMaxWeight));
    }
    req.weight = static_cast<Weight>(w);
    return result;
  }
  if (verb == "updf") {
    if (argc != 1) {
      return Fail(ErrorCode::kBadRequest, "usage: updf <file>");
    }
    if (limits.max_bulk_deltas == 0) {
      return Fail(ErrorCode::kBadRequest,
                  "bulk updates are disabled on this server");
    }
    req.kind = RequestKind::kUpdateFile;
    req.path = std::string(tokens[at]);
    return result;
  }
  if (verb == "reload" && argc == 0) {
    req.kind = RequestKind::kReload;
    return result;
  }
  if (verb == "stats" && argc == 0) {
    req.kind = RequestKind::kStats;
    return result;
  }
  if (verb == "inv" && argc == 0) {
    req.kind = RequestKind::kInvalidate;
    return result;
  }
  if (verb == "q" && argc == 0) {
    req.kind = RequestKind::kQuit;
    return result;
  }
  return Fail(ErrorCode::kBadRequest,
              "unknown request '" + std::string(verb) +
                  "' (expected d|p|k|b|m|stats|inv|use|upd|updf|reload|q)");
}

std::string FormatReply(const Reply& reply) {
  if (!reply.ok) return FormatError(reply.code, reply.detail);
  switch (reply.kind) {
    case RequestKind::kDistance: return FormatDistance(reply.dist);
    case RequestKind::kPath: return FormatPath(reply.path);
    case RequestKind::kKNearest: return FormatKNearest(reply.nearest);
    case RequestKind::kBatch: return FormatBatch(reply.dists);
    case RequestKind::kMatrix:
      return FormatMatrix(reply.num_sources, reply.num_targets, reply.dists);
    case RequestKind::kStats: return "OK stats " + reply.text;
    case RequestKind::kInvalidate: return "OK inv";
    case RequestKind::kUse: return "OK use " + reply.text;
    case RequestKind::kUpdate: return "OK upd " + std::to_string(reply.value);
    case RequestKind::kUpdateFile:
      return "OK updf " + std::to_string(reply.value) + " " +
             std::to_string(reply.value2);
    case RequestKind::kReload:
      return "OK reload " + std::to_string(reply.value);
    case RequestKind::kQuit: return "OK bye";
  }
  return FormatError(ErrorCode::kInternal, "unrenderable reply kind");
}

std::string FormatError(ErrorCode code, std::string_view detail) {
  std::string out = "ERR ";
  out.append(ErrorCodeName(code));
  if (!detail.empty()) {
    out.push_back(' ');
    out.append(detail);
  }
  return out;
}

std::string FormatDistance(Dist d) {
  std::string out = "OK d ";
  AppendDist(&out, d);
  return out;
}

std::string FormatPath(const PathResult& path) {
  if (!path.Found()) return "OK p unreachable";
  std::string out = "OK p ";
  out.append(std::to_string(path.length));
  out.push_back(' ');
  out.append(std::to_string(path.nodes.size()));
  for (const NodeId node : path.nodes) {
    out.push_back(' ');
    out.append(std::to_string(node));
  }
  return out;
}

std::string FormatKNearest(
    const std::vector<std::pair<Dist, NodeId>>& nearest) {
  std::string out = "OK k ";
  out.append(std::to_string(nearest.size()));
  for (const auto& [dist, node] : nearest) {
    out.push_back(' ');
    out.append(std::to_string(node));
    out.push_back(' ');
    AppendDist(&out, dist);
  }
  return out;
}

std::string FormatBatch(const std::vector<Dist>& dists) {
  std::string out = "OK b ";
  out.append(std::to_string(dists.size()));
  for (const Dist d : dists) {
    out.push_back(' ');
    AppendDist(&out, d);
  }
  return out;
}

std::string FormatMatrix(std::size_t num_sources, std::size_t num_targets,
                         const std::vector<Dist>& cells) {
  std::string out = "OK m ";
  out.append(std::to_string(num_sources));
  out.push_back(' ');
  out.append(std::to_string(num_targets));
  for (const Dist d : cells) {
    out.push_back(' ');
    AppendDist(&out, d);
  }
  return out;
}

std::string Greeting(std::size_t num_nodes, std::size_t num_arcs) {
  return "AH/" + std::to_string(kProtocolVersion) + " ready " +
         std::to_string(num_nodes) + " nodes " + std::to_string(num_arcs) +
         " arcs";
}

}  // namespace ah::server
