// Admission control for the serving stack: a bounded in-flight budget with
// per-request deadlines. The engine's async queue is unbounded by design
// (api/concurrent_engine.h); this layer is what keeps a traffic spike from
// growing that queue without limit — requests beyond the budget are shed
// immediately with an overload reply instead of queueing behind work the
// client will have given up on, and admitted requests that wait past their
// deadline are answered with a timeout instead of being executed late.
//
// Usage (what ServerStack does):
//   if (!admission.TryAdmit())  -> reply ERR overload
//   deadline = admission.MakeDeadline();
//   engine.SubmitAsync([..] {
//     if (AdmissionController::Expired(deadline)) -> reply ERR timeout
//     else -> execute;
//     admission.Release();
//   });
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "util/thread_annotations.h"

namespace ah::server {

struct AdmissionConfig {
  /// Max requests admitted but not yet finished (queued in the engine plus
  /// executing). 0 means shed everything — useful in tests.
  std::size_t capacity = 256;
  /// Per-request deadline measured from admission; 0 disables deadlines.
  std::chrono::milliseconds timeout{1000};
  /// Max in-flight requests per client id (0 = no per-client limit). This
  /// is the fairness backstop: without it one greedy pipelining client can
  /// consume the whole global budget and starve every other connection.
  std::size_t per_client_capacity = 0;
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  /// Sheds caused by a client exceeding its own cap while the global budget
  /// still had room (also counted in `shed`).
  std::uint64_t shed_per_client = 0;
  std::uint64_t expired = 0;
};

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;
  /// Clock::time_point::max() = no deadline.
  using Deadline = Clock::time_point;

  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  /// Admits one request if the in-flight budget allows, else records a shed
  /// and returns false. When `client` is set and per_client_capacity is
  /// configured, the client's own in-flight count must also be under its
  /// cap. Every true return must be paired with Release() carrying the same
  /// client id.
  bool TryAdmit(std::optional<std::uint64_t> client = std::nullopt)
      AH_EXCLUDES(mu_);

  /// Marks one admitted request finished (however it ended). Wakes
  /// WaitIdle() when the last in-flight request finishes.
  void Release(std::optional<std::uint64_t> client = std::nullopt)
      AH_EXCLUDES(mu_);

  /// In-flight count for one client id (0 for unknown clients).
  std::size_t ClientInFlight(std::uint64_t client) const AH_EXCLUDES(mu_);

  /// Deadline for a request admitted now.
  Deadline MakeDeadline() const {
    return config_.timeout.count() == 0 ? Deadline::max()
                                        : Clock::now() + config_.timeout;
  }

  static bool Expired(Deadline deadline) {
    return deadline != Deadline::max() && Clock::now() > deadline;
  }

  /// Records one admitted request that expired before execution.
  void CountExpired() {
    expired_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Blocks until no admitted request is in flight. Front-ends call this
  /// before tearing down state that completion callbacks touch.
  void WaitIdle() AH_EXCLUDES(mu_);

  std::size_t InFlight() const AH_EXCLUDES(mu_);
  std::size_t Capacity() const { return config_.capacity; }
  AdmissionStats Totals() const;

 private:
  AdmissionConfig config_;
  mutable Mutex mu_;
  CondVar idle_cv_;
  std::size_t in_flight_ AH_GUARDED_BY(mu_) = 0;
  /// In-flight count per client id; entries erased when they reach zero so
  /// the map stays bounded by the number of *active* clients.
  std::unordered_map<std::uint64_t, std::size_t> client_in_flight_
      AH_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> shed_per_client_{0};
  std::atomic<std::uint64_t> expired_{0};
};

}  // namespace ah::server
