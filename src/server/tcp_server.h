// TCP front-end over a ServerStack: one poll()-driven I/O thread, plain
// POSIX sockets, no external dependencies. The I/O thread never executes a
// query — it parses nothing heavy and blocks on nothing; complete requests
// are handed to the ServerStack and replies come back through a
// self-pipe-woken queue, so slow queries on the engine workers cannot stall
// accepting connections or reading other clients.
//
// Both wire protocols share the port. Every connection is greeted with the
// v1 text banner; its first bytes then pick the mode (binary_protocol.h):
// the "AHB2" magic switches it to v2 length-prefixed frames for the rest of
// the session, anything else is v1 newline-delimited text.
//
// Ordering differs by mode. v1 keeps one request in flight per connection
// and answers in arrival order (further pipelined lines queue). v2 frames
// carry client-chosen request ids, so up to `max_pending_lines` frames per
// connection execute concurrently on the engine workers and replies are
// written in completion order — the id, not the position, correlates them.
// Replies of both modes are coalesced: everything ready in one drain pass
// is appended to the connection's buffer and flushed with one send when it
// fits, so a pipelining client costs one syscall per drain, not per reply.
//
// Connections beyond `max_connections` are greeted with an ERR overload
// reply and closed — front-end load shedding, the same policy admission
// control applies per request behind it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/server_stack.h"
#include "util/thread_annotations.h"

namespace ah::server {

struct TcpServerConfig {
  /// Port to bind; 0 picks an ephemeral port (read it back via Port()).
  std::uint16_t port = 0;
  /// Bind loopback only by default; set true to serve on all interfaces.
  bool bind_any = false;
  int backlog = 64;
  /// Connections beyond this are rejected with ERR overload.
  std::size_t max_connections = 64;
  /// A connection sending a longer unterminated line is errored and closed.
  std::size_t max_line_bytes = 1 << 20;
  /// A v2 connection announcing a frame larger than this is answered with
  /// an ERR too-large frame and closed before the frame is buffered.
  std::size_t max_frame_bytes = 4 << 20;
  /// Backpressure for pipelining clients: a v1 connection stops being read
  /// while it has this many parsed-but-unanswered lines queued (a v2 one,
  /// this many frames in flight), and one that will not drain its replies
  /// (outbuf beyond max_outbuf_bytes) is closed — so one client cannot
  /// grow server memory without limit.
  std::size_t max_pending_lines = 128;
  std::size_t max_outbuf_bytes = 4 << 20;
};

class TcpServer {
 public:
  /// The stack must outlive the server. Construction does not bind —
  /// call Start().
  TcpServer(ServerStack& stack, const TcpServerConfig& config = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the I/O thread. On failure returns false
  /// and fills *error (when non-null) with the failing call and errno text.
  bool Start(std::string* error = nullptr);

  /// Stops accepting, waits for in-flight requests to finish, closes every
  /// connection, and joins the I/O thread. Idempotent; also run by the
  /// destructor.
  void Stop();

  bool Running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (the ephemeral one when config.port was 0); 0 before
  /// Start() succeeds.
  std::uint16_t Port() const { return port_; }
  std::size_t NumConnections() const {
    return num_connections_.load(std::memory_order_relaxed);
  }
  /// Connections rejected because max_connections was reached.
  std::uint64_t RejectedConnections() const {
    return rejected_connections_.load(std::memory_order_relaxed);
  }

 private:
  /// What the connection's first bytes turned out to be. Undecided lasts
  /// only while the buffered bytes are a proper prefix of the v2 magic.
  enum class WireMode { kUndecided, kText, kBinary };

  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    WireMode mode = WireMode::kUndecided;
    std::string inbuf;
    std::string outbuf;
    std::deque<std::string> pending_lines;  // v1: parsed-off, not submitted
    /// Error reply (already wire-encoded) held back until every
    /// already-accepted request has been answered, so the
    /// one-reply-per-request stream stays in sync.
    std::string deferred_error;
    bool awaiting_reply = false;            // v1: one request in flight
    std::size_t inflight_frames = 0;        // v2: submitted, not yet replied
    bool closing = false;                   // close once outbuf drains
  };

  struct PendingReply {
    std::uint64_t conn_id = 0;
    /// Final wire bytes — a newline-terminated v1 line or a complete v2
    /// frame; DrainReplies appends it verbatim.
    std::string reply;
    bool close = false;
  };

  void IoLoop();
  void AcceptNew();
  void HandleReadable(Connection& conn);
  /// Resolves an undecided connection's mode from its first buffered
  /// bytes; may emit the v2 hello frame. Returns false while still
  /// undecided (need more bytes).
  bool DecideMode(Connection& conn);
  /// v1: submits queued lines while the connection has no request in
  /// flight.
  void PumpRequests(Connection& conn);
  /// v2: decodes and submits every complete buffered frame up to the
  /// in-flight cap; rejects malformed or oversized frames.
  void PumpFrames(Connection& conn);
  /// Non-blocking flush of outbuf; returns false if the conn must close.
  bool FlushWrites(Connection& conn);
  /// Emits any deferred error once pending requests are answered, flushes,
  /// and closes the connection when it is finished or misbehaving. Returns
  /// false when the connection was closed (the reference is then dangling).
  bool SettleConnection(Connection& conn);
  void CloseConnection(int fd);
  /// Called from engine workers (or inline): queue a reply and wake poll.
  void EnqueueReply(std::uint64_t conn_id, std::string reply, bool close)
      AH_EXCLUDES(replies_mu_);
  void DrainReplies() AH_EXCLUDES(replies_mu_);
  void WakeIoThread();

  ServerStack& stack_;
  TcpServerConfig config_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::thread io_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  // Owned by the I/O thread exclusively.
  std::unordered_map<int, Connection> connections_;        // by fd
  std::unordered_map<std::uint64_t, int> conn_fd_by_id_;
  std::uint64_t next_conn_id_ = 1;

  // Crossed between engine workers and the I/O thread.
  Mutex replies_mu_;
  std::vector<PendingReply> pending_replies_ AH_GUARDED_BY(replies_mu_);

  std::atomic<std::size_t> num_connections_{0};
  std::atomic<std::uint64_t> rejected_connections_{0};
};

}  // namespace ah::server
