// The layered serving stack — the piece that turns the query library into a
// servable system:
//
//   front-end (TCP / stdin / tests)
//     -> protocol.h        parse + strict validation, structured errors
//     -> result_cache.h    sharded LRU over (src, dst, kind, backend),
//                          generation-tagged entries + optional TTL
//     -> admission.h       bounded in-flight budget + per-request deadlines
//     -> ConcurrentEngine  epoch-pinned session leases over IndexRegistry
//
// One ServerStack serves any number of front-end threads concurrently, over
// one or more backends published by an epoch-versioned IndexRegistry
// (api/index_registry.h). Queries name a backend with the "@<backend>"
// prefix or fall through to the server default (the `use` admin verb); the
// `upd` and `reload` admin verbs drive live weight updates and zero-
// downtime hot swaps — in-flight requests finish on the epoch they leased,
// new requests pick up the fresh epoch, and cache entries of the swapped
// backend retire by generation tag without a global flush.
//
// The primary entry point is the callback-style Submit(): parse errors,
// cache hits, load sheds, and admin verbs are answered synchronously on the
// calling thread (they never cost an index query), everything else is
// executed on the engine's async workers and answered through the callback.
// HandleLine() is the blocking convenience the stdin REPL and simple tests
// use.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/concurrent_engine.h"
#include "api/distance_oracle.h"
#include "api/index_registry.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/request_stats.h"
#include "server/result_cache.h"
#include "util/types.h"

namespace ah::server {

struct ServerConfig {
  /// Result-cache entry budget (0 disables caching) and shard count.
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Per-entry time-to-live (0 = entries never expire) — the freshness
  /// backstop between weight updates and the reload that applies them.
  std::chrono::milliseconds cache_ttl{0};
  /// Admission: max in-flight requests and per-request deadline (0 = none).
  std::size_t admission_capacity = 256;
  std::chrono::milliseconds request_timeout{1000};
  /// Max in-flight requests a single client (TCP connection) may hold
  /// (0 = no per-client cap). Keeps one greedy pipelining client from
  /// consuming the whole admission budget and starving everyone else;
  /// excess requests from that client are shed with ERR overload while
  /// other clients keep being admitted.
  std::size_t admission_per_client = 64;
  /// Max pairs accepted in one batch request.
  std::size_t max_batch = 4096;
  /// Max locations per matrix side (`m` requests); 0 disables the verb.
  /// Over-cap requests are answered ERR too-large.
  std::size_t max_matrix_locations = 512;
  /// Max delta records accepted from one `updf` bulk file; over-cap files
  /// are answered ERR too-large. 0 disables the verb.
  std::size_t max_bulk_deltas = 1 << 20;
  /// Engine fan-out (0 = WorkerThreads() default).
  std::size_t num_threads = 0;
};

class ServerStack {
 public:
  /// Reply text plus whether the front-end should close the session (quit).
  using ReplyCallback = std::function<void(std::string reply, bool close)>;

  /// Builds the stack over a registry (shared so operators can also drive
  /// the registry directly, e.g. WaitForRebuild in a REPL). Throws
  /// std::invalid_argument on a null registry.
  explicit ServerStack(std::shared_ptr<IndexRegistry> registry,
                       const ServerConfig& config = {});

  /// Convenience: wraps one externally built oracle in a static
  /// single-backend registry (queries work; `upd`/`reload` answer errors).
  /// The oracle's graph must outlive the stack.
  explicit ServerStack(std::unique_ptr<DistanceOracle> oracle,
                       const ServerConfig& config = {});

  /// Drains in-flight requests before the engine is torn down.
  ~ServerStack();

  /// Handles one protocol line. `done` is invoked exactly once — inline for
  /// parse errors, cache hits, sheds, and admin requests; from an engine
  /// worker thread otherwise. `done` must not block for long and must stay
  /// callable until invoked. Thread-safe.
  void Submit(std::string_view line, ReplyCallback done);

  /// Same, attributing the request to a client id (a TCP connection id) so
  /// admission can enforce the per-client in-flight cap. Unattributed
  /// Submit() calls only count against the global budget.
  void Submit(std::string_view line, std::uint64_t client_id,
              ReplyCallback done);

  /// Blocking convenience: Submit() + wait. Sets *close for a quit request
  /// when `close` is non-null. Thread-safe (callers on their own threads).
  std::string HandleLine(std::string_view line, bool* close = nullptr);

  /// Blocks until every admitted request has been answered.
  void WaitIdle();

  /// The banner a front-end sends when a session opens.
  std::string Greeting() const;

  /// POI set served by k-nearest requests. Set before serving traffic; not
  /// synchronized against in-flight k-nearest execution.
  void SetPois(std::vector<NodeId> pois);
  const std::vector<NodeId>& Pois() const { return pois_; }

  /// One-line key=value stats snapshot (the `stats` reply body).
  std::string StatsLine() const;

  /// Node/arc counts of the served network (invariant across epochs).
  std::size_t NumNodes() const { return registry_->NumNodes(); }
  std::size_t NumArcs() const { return registry_->NumArcs(); }

  IndexRegistry& registry() { return *registry_; }
  ConcurrentEngine& engine() { return engine_; }
  ResultCache& cache() { return cache_; }
  AdmissionController& admission() { return admission_; }
  RequestStats& stats() { return stats_; }
  const ServerConfig& config() const { return config_; }

 private:
  /// The shared Submit() body; `client` attributes admission accounting.
  void SubmitInternal(std::string_view line,
                      std::optional<std::uint64_t> client, ReplyCallback done);

  /// Answers the admin verbs (use/upd/updf/reload) inline. Never throws.
  std::string ExecuteAdmin(const Request& request);

  /// Executes an admitted query request on an epoch-pinned session lease,
  /// formats the reply, and updates cache + stats. Never throws.
  std::string Execute(const Request& request,
                      ConcurrentEngine::SessionLease& lease);

  std::string ExecuteDistance(NodeId s, NodeId t,
                              ConcurrentEngine::SessionLease& lease);
  std::string ExecutePath(NodeId s, NodeId t,
                          ConcurrentEngine::SessionLease& lease);
  std::string ExecuteKNearest(NodeId s, std::uint32_t k,
                              ConcurrentEngine::SessionLease& lease);
  std::string ExecuteBatch(const std::vector<std::pair<NodeId, NodeId>>& pairs,
                           ConcurrentEngine::SessionLease& lease);
  std::string ExecuteMatrix(const std::vector<NodeId>& sources,
                            const std::vector<NodeId>& targets,
                            ConcurrentEngine::SessionLease& lease);

  /// Cache-through distances for a pair list: hits from the cache (keyed by
  /// the lease's backend + generation), misses computed (on the lease, or
  /// fanned across the engine's batch threads when there are many) and
  /// inserted under the lease's generation.
  std::vector<Dist> CachedDistances(
      const std::vector<std::pair<NodeId, NodeId>>& pairs,
      ConcurrentEngine::SessionLease& lease);

  ServerConfig config_;
  std::shared_ptr<IndexRegistry> registry_;
  ConcurrentEngine engine_;
  ResultCache cache_;
  AdmissionController admission_;
  RequestStats stats_;
  std::vector<NodeId> pois_;
};

}  // namespace ah::server
