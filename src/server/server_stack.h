// The layered serving stack — the piece that turns the query library into a
// servable system:
//
//   front-end (TCP / stdin / tests)
//     -> protocol.h        parse + strict validation, structured errors
//     -> result_cache.h    sharded LRU over (src, dst, kind, backend),
//                          generation-tagged entries + optional TTL
//     -> admission.h       bounded in-flight budget + per-request deadlines
//     -> ConcurrentEngine  epoch-pinned session leases over IndexRegistry
//
// One ServerStack serves any number of front-end threads concurrently, over
// one or more backends published by an epoch-versioned IndexRegistry
// (api/index_registry.h). Queries name a backend with the "@<backend>"
// prefix or fall through to the server default (the `use` admin verb); the
// `upd` and `reload` admin verbs drive live weight updates and zero-
// downtime hot swaps — in-flight requests finish on the epoch they leased,
// new requests pick up the fresh epoch, and cache entries of the swapped
// backend retire by generation tag without a global flush.
//
// The primary entry point is the callback-style Submit(): parse errors,
// cache hits, load sheds, and admin verbs are answered synchronously on the
// calling thread (they never cost an index query), everything else is
// executed on the engine's async workers and answered through the callback.
// HandleLine() is the blocking convenience the stdin REPL and simple tests
// use.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/concurrent_engine.h"
#include "api/distance_oracle.h"
#include "api/index_registry.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/request_stats.h"
#include "server/result_cache.h"
#include "util/types.h"

namespace ah::server {

struct ServerConfig {
  /// Result-cache entry budget (0 disables caching) and shard count.
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Per-entry time-to-live (0 = entries never expire) — the freshness
  /// backstop between weight updates and the reload that applies them.
  std::chrono::milliseconds cache_ttl{0};
  /// Admission: max in-flight requests and per-request deadline (0 = none).
  std::size_t admission_capacity = 256;
  std::chrono::milliseconds request_timeout{1000};
  /// Max in-flight requests a single client (TCP connection) may hold
  /// (0 = no per-client cap). Keeps one greedy pipelining client from
  /// consuming the whole admission budget and starving everyone else;
  /// excess requests from that client are shed with ERR overload while
  /// other clients keep being admitted.
  std::size_t admission_per_client = 64;
  /// Max pairs accepted in one batch request.
  std::size_t max_batch = 4096;
  /// Max locations per matrix side (`m` requests); 0 disables the verb.
  /// Over-cap requests are answered ERR too-large.
  std::size_t max_matrix_locations = 512;
  /// Matrices with more cells than this bypass the result cache entirely —
  /// no per-cell probe, no inserts. Beyond a few thousand cells the
  /// bucketized matrix engine answers faster than the N^2 cache lookups
  /// would cost, and inserting one scan's N^2 entries would evict
  /// genuinely hot point entries. 0 keeps every matrix off the cache.
  std::size_t matrix_cache_max_cells = 1024;
  /// Max delta records accepted from one `updf` bulk file; over-cap files
  /// are answered ERR too-large. 0 disables the verb.
  std::size_t max_bulk_deltas = 1 << 20;
  /// Engine fan-out (0 = WorkerThreads() default).
  std::size_t num_threads = 0;
  /// Post-swap cache warm-up: before each rebuilt epoch is published, the
  /// top-K hottest cache entries of that backend (by per-entry hit count)
  /// are recomputed on the fresh epoch and re-inserted under its
  /// generation, so the swap lands with its hottest keys already warm.
  /// 0 (the default) disables warm-up — swapped-backend entries then retire
  /// lazily, invalidated on first touch. Runs on the registry's build
  /// worker thread — swap latency grows by K point queries, typically
  /// microseconds.
  std::size_t warmup_top_k = 0;
};

/// Wire-level counters a front-end maintains alongside the stack's own
/// request accounting; surfaced in the `stats` reply.
struct WireStats {
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> v1_requests{0};
  std::atomic<std::uint64_t> v2_requests{0};
};

class ServerStack {
 public:
  /// Reply text plus whether the front-end should close the session (quit).
  using ReplyCallback = std::function<void(std::string reply, bool close)>;

  /// Structured-reply callback — the v2 binary front-end's entry shape
  /// (the frame encoder renders the Reply; reply.close mirrors quit).
  using StructuredCallback = std::function<void(Reply reply)>;

  /// Builds the stack over a registry (shared so operators can also drive
  /// the registry directly, e.g. WaitForRebuild in a REPL). Throws
  /// std::invalid_argument on a null registry.
  explicit ServerStack(std::shared_ptr<IndexRegistry> registry,
                       const ServerConfig& config = {});

  /// Convenience: wraps one externally built oracle in a static
  /// single-backend registry (queries work; `upd`/`reload` answer errors).
  /// The oracle's graph must outlive the stack.
  explicit ServerStack(std::unique_ptr<DistanceOracle> oracle,
                       const ServerConfig& config = {});

  /// Drains in-flight requests before the engine is torn down.
  ~ServerStack();

  /// Handles one protocol line. `done` is invoked exactly once — inline for
  /// parse errors, cache hits, sheds, and admin requests; from an engine
  /// worker thread otherwise. `done` must not block for long and must stay
  /// callable until invoked. Thread-safe.
  void Submit(std::string_view line, ReplyCallback done);

  /// Same, attributing the request to a client id (a TCP connection id) so
  /// admission can enforce the per-client in-flight cap. Unattributed
  /// Submit() calls only count against the global budget.
  void Submit(std::string_view line, std::uint64_t client_id,
              ReplyCallback done);

  /// The v2 binary front-end's entry: an already-decoded request (from
  /// binary_protocol.h's DecodeRequest — pass a failed ParseResult through
  /// too, so decode errors are counted and answered like parse errors).
  /// Same semantics, admission, cache, and stats path as Submit(); only the
  /// parse/format shell differs. `done` is invoked exactly once, inline or
  /// from an engine worker. Thread-safe.
  void SubmitDecoded(ParseResult parsed, std::uint64_t client_id,
                     StructuredCallback done);

  /// The limits a front-end must decode v2 frames under (same values the
  /// text parser enforces).
  ParseLimits Limits() const {
    return ParseLimits{registry_->NumNodes(), config_.max_batch,
                       config_.max_matrix_locations, config_.max_bulk_deltas};
  }

  /// Blocking convenience: Submit() + wait. Sets *close for a quit request
  /// when `close` is non-null. Thread-safe (callers on their own threads).
  std::string HandleLine(std::string_view line, bool* close = nullptr);

  /// Blocks until every admitted request has been answered.
  void WaitIdle();

  /// The banner a front-end sends when a session opens.
  std::string Greeting() const;

  /// POI set served by k-nearest requests. Set before serving traffic; not
  /// synchronized against in-flight k-nearest execution.
  void SetPois(std::vector<NodeId> pois);
  const std::vector<NodeId>& Pois() const { return pois_; }

  /// One-line key=value stats snapshot (the `stats` reply body).
  std::string StatsLine() const;

  /// Node/arc counts of the served network (invariant across epochs).
  std::size_t NumNodes() const { return registry_->NumNodes(); }
  std::size_t NumArcs() const { return registry_->NumArcs(); }

  IndexRegistry& registry() { return *registry_; }
  ConcurrentEngine& engine() { return engine_; }
  ResultCache& cache() { return cache_; }
  AdmissionController& admission() { return admission_; }
  RequestStats& stats() { return stats_; }
  /// Byte/request counters shared with front-ends (TcpServer adds the
  /// bytes; the stack adds per-protocol request counts).
  WireStats& wire() { return wire_; }
  const ServerConfig& config() const { return config_; }

 private:
  /// The shared text-path Submit() body; `client` attributes admission.
  void SubmitInternal(std::string_view line,
                      std::optional<std::uint64_t> client, ReplyCallback done);

  /// The protocol-independent brain both Submit paths share: inline
  /// answers, backend resolution, cache fast path, admission, async
  /// execution. Exactly one `done(Reply)` call.
  void SubmitParsed(ParseResult parsed, std::optional<std::uint64_t> client,
                    StructuredCallback done);

  /// Answers the admin verbs (use/upd/updf/reload) inline. Never throws.
  Reply ExecuteAdmin(const Request& request);

  /// Executes an admitted query request on an epoch-pinned session lease
  /// and updates cache + stats. Never throws.
  Reply Execute(const Request& request, ConcurrentEngine::SessionLease& lease);

  Reply ExecuteDistance(NodeId s, NodeId t,
                        ConcurrentEngine::SessionLease& lease);
  Reply ExecutePath(NodeId s, NodeId t, ConcurrentEngine::SessionLease& lease);
  Reply ExecuteKNearest(NodeId s, std::uint32_t k,
                        ConcurrentEngine::SessionLease& lease);
  Reply ExecuteBatch(const std::vector<std::pair<NodeId, NodeId>>& pairs,
                     ConcurrentEngine::SessionLease& lease);
  Reply ExecuteMatrix(const std::vector<NodeId>& sources,
                      const std::vector<NodeId>& targets,
                      ConcurrentEngine::SessionLease& lease);

  /// The registry warm-up hook body: recompute the fresh epoch's backend's
  /// top-K hottest cache entries on the not-yet-published epoch and insert
  /// them under its generation, flagged warmed. Runs on the build worker.
  void WarmCache(const IndexEpoch& fresh);

  /// Cache-through distances for a pair list: hits from the cache (keyed by
  /// the lease's backend + generation), misses computed (on the lease, or
  /// fanned across the engine's batch threads when there are many) and
  /// inserted under the lease's generation.
  std::vector<Dist> CachedDistances(
      const std::vector<std::pair<NodeId, NodeId>>& pairs,
      ConcurrentEngine::SessionLease& lease);

  ServerConfig config_;
  std::shared_ptr<IndexRegistry> registry_;
  ConcurrentEngine engine_;
  ResultCache cache_;
  AdmissionController admission_;
  RequestStats stats_;
  WireStats wire_;
  std::vector<NodeId> pois_;
};

}  // namespace ah::server
