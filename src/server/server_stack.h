// The layered serving stack — the piece that turns the query library into a
// servable system:
//
//   front-end (TCP / stdin / tests)
//     -> protocol.h        parse + strict validation, structured errors
//     -> result_cache.h    sharded LRU over (src, dst, kind)
//     -> admission.h       bounded in-flight budget + per-request deadlines
//     -> ConcurrentEngine  callback-style submit onto pooled sessions
//
// One ServerStack serves any number of front-end threads concurrently. The
// primary entry point is the callback-style Submit(): parse errors, cache
// hits, and load sheds are answered synchronously on the calling thread
// (they never cost an index query), everything else is executed on the
// engine's async workers and answered through the callback. HandleLine()
// is the blocking convenience the stdin REPL and simple tests use.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/concurrent_engine.h"
#include "api/distance_oracle.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/request_stats.h"
#include "server/result_cache.h"
#include "util/types.h"

namespace ah::server {

struct ServerConfig {
  /// Result-cache entry budget (0 disables caching) and shard count.
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Admission: max in-flight requests and per-request deadline (0 = none).
  std::size_t admission_capacity = 256;
  std::chrono::milliseconds request_timeout{1000};
  /// Max pairs accepted in one batch request.
  std::size_t max_batch = 4096;
  /// Engine fan-out (0 = WorkerThreads() default).
  std::size_t num_threads = 0;
};

class ServerStack {
 public:
  /// Reply text plus whether the front-end should close the session (quit).
  using ReplyCallback = std::function<void(std::string reply, bool close)>;

  /// Builds the stack over a built oracle. The graph behind the oracle must
  /// outlive the stack. Throws std::invalid_argument on a null oracle.
  explicit ServerStack(std::unique_ptr<DistanceOracle> oracle,
                       const ServerConfig& config = {});

  /// Drains in-flight requests before the engine is torn down.
  ~ServerStack();

  /// Handles one protocol line. `done` is invoked exactly once — inline for
  /// parse errors, cache hits, sheds, and admin requests; from an engine
  /// worker thread otherwise. `done` must not block for long and must stay
  /// callable until invoked. Thread-safe.
  void Submit(std::string_view line, ReplyCallback done);

  /// Blocking convenience: Submit() + wait. Sets *close for a quit request
  /// when `close` is non-null. Thread-safe (callers on their own threads).
  std::string HandleLine(std::string_view line, bool* close = nullptr);

  /// Blocks until every admitted request has been answered.
  void WaitIdle();

  /// The banner a front-end sends when a session opens.
  std::string Greeting() const;

  /// POI set served by k-nearest requests. Set before serving traffic; not
  /// synchronized against in-flight k-nearest execution.
  void SetPois(std::vector<NodeId> pois);
  const std::vector<NodeId>& Pois() const { return pois_; }

  /// One-line key=value stats snapshot (the `stats` reply body).
  std::string StatsLine() const;

  ConcurrentEngine& engine() { return engine_; }
  ResultCache& cache() { return cache_; }
  AdmissionController& admission() { return admission_; }
  RequestStats& stats() { return stats_; }
  const Graph& graph() const { return engine_.oracle().graph(); }
  const ServerConfig& config() const { return config_; }

 private:
  /// Executes an admitted query request on a session, formats the reply,
  /// and updates cache + stats. Never throws.
  std::string Execute(const Request& request, QuerySession& session);

  std::string ExecuteDistance(NodeId s, NodeId t, QuerySession& session);
  std::string ExecutePath(NodeId s, NodeId t, QuerySession& session);
  std::string ExecuteKNearest(NodeId s, std::uint32_t k,
                              QuerySession& session);
  std::string ExecuteBatch(const std::vector<std::pair<NodeId, NodeId>>& pairs,
                           QuerySession& session);

  /// Cache-through distances for a pair list: hits from the cache, misses
  /// computed (on `session`, or fanned across the engine's batch threads
  /// when there are many) and inserted.
  std::vector<Dist> CachedDistances(
      const std::vector<std::pair<NodeId, NodeId>>& pairs,
      QuerySession& session);

  ServerConfig config_;
  ConcurrentEngine engine_;
  ResultCache cache_;
  AdmissionController admission_;
  RequestStats stats_;
  std::vector<NodeId> pois_;
};

}  // namespace ah::server
