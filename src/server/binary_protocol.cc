#include "server/binary_protocol.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

namespace ah::server {

namespace {

ParseResult Fail(ErrorCode code, std::string message) {
  ParseResult r;
  r.ok = false;
  r.code = code;
  r.message = std::move(message);
  return r;
}

/// Range-checks one node id against the served graph, mirroring the text
/// parser's kBadNode wording so both protocols report the same failure.
bool CheckNode(std::uint32_t v, const ParseLimits& limits, NodeId* out,
               ParseResult* error) {
  if (v >= limits.num_nodes) {
    *error = Fail(ErrorCode::kBadNode,
                  "node id " + std::to_string(v) + " out of range [0, " +
                      std::to_string(limits.num_nodes) + ")");
    return false;
  }
  *out = static_cast<NodeId>(v);
  return true;
}

/// A cursor over the opcode body with exact-size enforcement: trailing or
/// missing bytes are a kBadRequest, never silently tolerated.
class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : body_(body) {}

  bool U32(std::uint32_t* out) {
    if (body_.size() - at_ < 4) return false;
    *out = GetU32(body_.data() + at_);
    at_ += 4;
    return true;
  }

  std::size_t Remaining() const { return body_.size() - at_; }
  std::string_view Rest() const { return body_.substr(at_); }

 private:
  std::string_view body_;
  std::size_t at_ = 0;
};

ParseResult SizeMismatch(std::string_view what) {
  return Fail(ErrorCode::kBadRequest,
              "malformed " + std::string(what) + " payload");
}

}  // namespace

std::uint8_t StatusFromError(ErrorCode code) {
  return static_cast<std::uint8_t>(static_cast<int>(code) + 1);
}

bool ErrorFromStatus(std::uint8_t status, ErrorCode* out) {
  if (status == kStatusOk ||
      status > StatusFromError(ErrorCode::kInternal)) {
    return false;
  }
  *out = static_cast<ErrorCode>(status - 1);
  return true;
}

void PutU32(std::string* out, std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutU64s(std::string* out, const std::uint64_t* values,
             std::size_t count) {
  const std::size_t at = out->size();
  out->resize(at + 8 * count);
  char* p = &(*out)[at];
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t v = values[i];
    // Explicit little-endian byte stores; compilers collapse this to one
    // 8-byte store on LE targets, and it stays correct on BE ones.
    p[0] = static_cast<char>(v & 0xff);
    p[1] = static_cast<char>((v >> 8) & 0xff);
    p[2] = static_cast<char>((v >> 16) & 0xff);
    p[3] = static_cast<char>((v >> 24) & 0xff);
    p[4] = static_cast<char>((v >> 32) & 0xff);
    p[5] = static_cast<char>((v >> 40) & 0xff);
    p[6] = static_cast<char>((v >> 48) & 0xff);
    p[7] = static_cast<char>((v >> 56) & 0xff);
    p += 8;
  }
}

std::uint32_t GetU32(const char* p) {
  const auto b = [p](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::uint64_t GetU64(const char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

bool TryReadHeader(std::string_view buf, FrameHeader* header) {
  if (buf.size() < kFrameHeaderBytes) return false;
  header->len = GetU32(buf.data());
  header->opcode = static_cast<Opcode>(static_cast<std::uint8_t>(buf[4]));
  header->status = static_cast<std::uint8_t>(buf[5]);
  header->backend_len = static_cast<std::uint8_t>(buf[6]);
  header->request_id = GetU64(buf.data() + 8);
  return true;
}

std::size_t TryReadFrame(std::string_view buf, FrameHeader* header,
                         std::string_view* payload) {
  if (!TryReadHeader(buf, header) || header->len < kFrameLenMin) return 0;
  const std::size_t total = 4 + static_cast<std::size_t>(header->len);
  if (buf.size() < total) return 0;
  *payload = buf.substr(kFrameHeaderBytes, total - kFrameHeaderBytes);
  return total;
}

namespace {

std::string EncodeFrame(Opcode opcode, std::uint8_t status,
                        std::uint8_t backend_len, std::uint64_t request_id,
                        std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<std::uint32_t>(kFrameLenMin + payload.size()));
  out.push_back(static_cast<char>(opcode));
  out.push_back(static_cast<char>(status));
  out.push_back(static_cast<char>(backend_len));
  out.push_back(0);  // reserved
  PutU64(&out, request_id);
  out.append(payload);
  return out;
}

}  // namespace

std::string EncodeRequestFrame(Opcode opcode, std::uint64_t request_id,
                               std::string_view backend,
                               std::string_view body) {
  const std::size_t backend_len = std::min<std::size_t>(backend.size(), 255);
  std::string payload;
  payload.reserve(backend_len + body.size());
  payload.append(backend.substr(0, backend_len));
  payload.append(body);
  return EncodeFrame(opcode, kStatusOk,
                     static_cast<std::uint8_t>(backend_len), request_id,
                     payload);
}

std::string EncodeRequestBody(const Request& request) {
  std::string body;
  switch (request.kind) {
    case RequestKind::kDistance:
    case RequestKind::kPath:
      PutU32(&body, request.s);
      PutU32(&body, request.t);
      break;
    case RequestKind::kKNearest:
      PutU32(&body, request.s);
      PutU32(&body, request.k);
      break;
    case RequestKind::kBatch:
      PutU32(&body, static_cast<std::uint32_t>(request.pairs.size()));
      for (const auto& [s, t] : request.pairs) {
        PutU32(&body, s);
        PutU32(&body, t);
      }
      break;
    case RequestKind::kMatrix:
      PutU32(&body, static_cast<std::uint32_t>(request.sources.size()));
      PutU32(&body, static_cast<std::uint32_t>(request.targets.size()));
      for (const NodeId s : request.sources) PutU32(&body, s);
      for (const NodeId t : request.targets) PutU32(&body, t);
      break;
    case RequestKind::kUpdate:
      PutU32(&body, request.s);
      PutU32(&body, request.t);
      PutU32(&body, request.weight);
      break;
    case RequestKind::kUpdateFile:
      body = request.path;
      break;
    case RequestKind::kStats:
    case RequestKind::kInvalidate:
    case RequestKind::kUse:  // the backend travels in the frame prefix
    case RequestKind::kReload:
    case RequestKind::kQuit:
      break;
  }
  return body;
}

Opcode OpcodeForKind(RequestKind kind) {
  switch (kind) {
    case RequestKind::kDistance: return Opcode::kDistance;
    case RequestKind::kPath: return Opcode::kPath;
    case RequestKind::kKNearest: return Opcode::kKNearest;
    case RequestKind::kBatch: return Opcode::kBatch;
    case RequestKind::kMatrix: return Opcode::kMatrix;
    case RequestKind::kStats: return Opcode::kStats;
    case RequestKind::kInvalidate: return Opcode::kInvalidate;
    case RequestKind::kUse: return Opcode::kUse;
    case RequestKind::kUpdate: return Opcode::kUpdate;
    case RequestKind::kUpdateFile: return Opcode::kUpdateFile;
    case RequestKind::kReload: return Opcode::kReload;
    case RequestKind::kQuit: return Opcode::kQuit;
  }
  return Opcode::kQuit;
}

ParseResult DecodeRequest(const FrameHeader& header, std::string_view payload,
                          const ParseLimits& limits) {
  if (payload.size() < header.backend_len) {
    return Fail(ErrorCode::kBadRequest,
                "backend-name prefix longer than the payload");
  }
  const std::string_view backend = payload.substr(0, header.backend_len);
  BodyReader body(payload.substr(header.backend_len));

  ParseResult result;
  result.ok = true;
  Request& req = result.request;
  req.backend = std::string(backend);

  switch (header.opcode) {
    case Opcode::kDistance:
    case Opcode::kPath: {
      req.kind = header.opcode == Opcode::kDistance ? RequestKind::kDistance
                                                    : RequestKind::kPath;
      std::uint32_t s = 0;
      std::uint32_t t = 0;
      if (!body.U32(&s) || !body.U32(&t) || body.Remaining() != 0) {
        return SizeMismatch(req.kind == RequestKind::kDistance ? "distance"
                                                               : "path");
      }
      ParseResult error;
      if (!CheckNode(s, limits, &req.s, &error)) return error;
      if (!CheckNode(t, limits, &req.t, &error)) return error;
      return result;
    }
    case Opcode::kKNearest: {
      req.kind = RequestKind::kKNearest;
      std::uint32_t s = 0;
      std::uint32_t k = 0;
      if (!body.U32(&s) || !body.U32(&k) || body.Remaining() != 0) {
        return SizeMismatch("k-nearest");
      }
      ParseResult error;
      if (!CheckNode(s, limits, &req.s, &error)) return error;
      if (k == 0) {
        return Fail(ErrorCode::kBadRequest, "k must be a positive integer");
      }
      req.k = k;
      return result;
    }
    case Opcode::kBatch: {
      req.kind = RequestKind::kBatch;
      std::uint32_t n = 0;
      if (!body.U32(&n)) return SizeMismatch("batch");
      if (n == 0) {
        return Fail(ErrorCode::kBadRequest,
                    "batch count must be a positive integer");
      }
      if (n > limits.max_batch) {
        return Fail(ErrorCode::kBadRequest,
                    "batch of " + std::to_string(n) +
                        " exceeds the limit of " +
                        std::to_string(limits.max_batch));
      }
      if (body.Remaining() != 8 * static_cast<std::size_t>(n)) {
        return SizeMismatch("batch");
      }
      req.pairs.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t s = 0;
        std::uint32_t t = 0;
        body.U32(&s);
        body.U32(&t);
        NodeId sn = 0;
        NodeId tn = 0;
        ParseResult error;
        if (!CheckNode(s, limits, &sn, &error)) return error;
        if (!CheckNode(t, limits, &tn, &error)) return error;
        req.pairs.emplace_back(sn, tn);
      }
      return result;
    }
    case Opcode::kMatrix: {
      req.kind = RequestKind::kMatrix;
      std::uint32_t ns = 0;
      std::uint32_t nt = 0;
      if (!body.U32(&ns) || !body.U32(&nt)) return SizeMismatch("matrix");
      if (ns == 0 || nt == 0) {
        return Fail(ErrorCode::kBadRequest,
                    "matrix side counts must be positive integers");
      }
      if (limits.max_matrix_locations == 0) {
        return Fail(ErrorCode::kTooLarge, "matrix requests are disabled");
      }
      if (ns > limits.max_matrix_locations ||
          nt > limits.max_matrix_locations) {
        return Fail(ErrorCode::kTooLarge,
                    "matrix side of " + std::to_string(std::max(ns, nt)) +
                        " exceeds the limit of " +
                        std::to_string(limits.max_matrix_locations) +
                        " locations");
      }
      if (body.Remaining() !=
          4 * (static_cast<std::size_t>(ns) + static_cast<std::size_t>(nt))) {
        return SizeMismatch("matrix");
      }
      req.sources.reserve(ns);
      req.targets.reserve(nt);
      for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(ns) + nt; ++i) {
        std::uint32_t v = 0;
        body.U32(&v);
        NodeId node = 0;
        ParseResult error;
        if (!CheckNode(v, limits, &node, &error)) return error;
        (i < ns ? req.sources : req.targets).push_back(node);
      }
      return result;
    }
    default:
      break;
  }

  // Everything below is backend-independent — a backend prefix on these is
  // the same contradiction the v1 parser rejects (except kUse, whose
  // argument *is* the prefix).
  if (header.opcode != Opcode::kUse && header.backend_len != 0) {
    return Fail(ErrorCode::kBadRequest,
                "the backend prefix only applies to d|p|k|b|m requests");
  }
  switch (header.opcode) {
    case Opcode::kUse:
      if (backend.empty() || body.Remaining() != 0) {
        return Fail(ErrorCode::kBadRequest,
                    "use needs a backend-name prefix and an empty body");
      }
      req.kind = RequestKind::kUse;
      return result;
    case Opcode::kUpdate: {
      req.kind = RequestKind::kUpdate;
      std::uint32_t u = 0;
      std::uint32_t v = 0;
      std::uint32_t w = 0;
      if (!body.U32(&u) || !body.U32(&v) || !body.U32(&w) ||
          body.Remaining() != 0) {
        return SizeMismatch("update");
      }
      ParseResult error;
      if (!CheckNode(u, limits, &req.s, &error)) return error;
      if (!CheckNode(v, limits, &req.t, &error)) return error;
      if (w == 0 || w >= kMaxWeight) {
        return Fail(ErrorCode::kBadRequest,
                    "weight '" + std::to_string(w) +
                        "' must be a positive integer below " +
                        std::to_string(kMaxWeight));
      }
      req.weight = static_cast<Weight>(w);
      return result;
    }
    case Opcode::kUpdateFile:
      if (limits.max_bulk_deltas == 0) {
        return Fail(ErrorCode::kBadRequest,
                    "bulk updates are disabled on this server");
      }
      if (body.Remaining() == 0) {
        return Fail(ErrorCode::kBadRequest, "updf needs a file path");
      }
      req.kind = RequestKind::kUpdateFile;
      req.path = std::string(body.Rest());
      return result;
    case Opcode::kStats:
    case Opcode::kInvalidate:
    case Opcode::kReload:
    case Opcode::kQuit:
      if (body.Remaining() != 0) return SizeMismatch("empty-body");
      req.kind = header.opcode == Opcode::kStats      ? RequestKind::kStats
                 : header.opcode == Opcode::kInvalidate
                     ? RequestKind::kInvalidate
                 : header.opcode == Opcode::kReload ? RequestKind::kReload
                                                    : RequestKind::kQuit;
      return result;
    default:
      return Fail(ErrorCode::kBadRequest,
                  "unknown opcode 0x" + [op = header.opcode] {
                    char buf[3];
                    std::snprintf(buf, sizeof(buf), "%02x",
                                  static_cast<unsigned>(op));
                    return std::string(buf);
                  }());
  }
}

std::string EncodeReplyFrame(const Reply& reply, Opcode opcode,
                             std::uint64_t request_id) {
  if (!reply.ok) {
    return EncodeFrame(opcode, StatusFromError(reply.code), 0, request_id,
                       reply.detail);
  }
  std::string payload;
  switch (reply.kind) {
    case RequestKind::kDistance:
      PutU64(&payload, reply.dist);
      break;
    case RequestKind::kPath:
      PutU64(&payload, reply.path.length);
      PutU32(&payload, static_cast<std::uint32_t>(reply.path.nodes.size()));
      for (const NodeId node : reply.path.nodes) PutU32(&payload, node);
      break;
    case RequestKind::kKNearest:
      PutU32(&payload, static_cast<std::uint32_t>(reply.nearest.size()));
      for (const auto& [dist, node] : reply.nearest) {
        PutU32(&payload, node);
        PutU64(&payload, dist);
      }
      break;
    case RequestKind::kBatch:
      payload.reserve(4 + 8 * reply.dists.size());
      PutU32(&payload, static_cast<std::uint32_t>(reply.dists.size()));
      PutU64s(&payload, reply.dists.data(), reply.dists.size());
      break;
    case RequestKind::kMatrix:
      payload.reserve(8 + 8 * reply.dists.size());
      PutU32(&payload, static_cast<std::uint32_t>(reply.num_sources));
      PutU32(&payload, static_cast<std::uint32_t>(reply.num_targets));
      PutU64s(&payload, reply.dists.data(), reply.dists.size());
      break;
    case RequestKind::kStats:
    case RequestKind::kUse:
      payload = reply.text;
      break;
    case RequestKind::kUpdate:
    case RequestKind::kReload:
      PutU64(&payload, reply.value);
      break;
    case RequestKind::kUpdateFile:
      PutU64(&payload, reply.value);
      PutU64(&payload, reply.value2);
      break;
    case RequestKind::kInvalidate:
    case RequestKind::kQuit:
      break;
  }
  return EncodeFrame(opcode, kStatusOk, 0, request_id, payload);
}

std::string EncodeHelloFrame(std::size_t num_nodes, std::size_t num_arcs) {
  std::string payload;
  PutU32(&payload, static_cast<std::uint32_t>(kBinaryProtocolVersion));
  PutU64(&payload, static_cast<std::uint64_t>(num_nodes));
  PutU64(&payload, static_cast<std::uint64_t>(num_arcs));
  return EncodeFrame(Opcode::kHello, kStatusOk, 0, 0, payload);
}

std::string EncodeErrorFrame(Opcode opcode, std::uint64_t request_id,
                             ErrorCode code, std::string_view detail) {
  return EncodeFrame(opcode, StatusFromError(code), 0, request_id, detail);
}

std::string ReplyFrameToText(const FrameHeader& header,
                             std::string_view payload) {
  ErrorCode code = ErrorCode::kInternal;
  if (ErrorFromStatus(header.status, &code)) {
    return FormatError(code, payload);
  }
  if (header.status != kStatusOk) {
    return FormatError(ErrorCode::kInternal, "unknown reply status");
  }
  const auto malformed = [&] {
    return FormatError(ErrorCode::kInternal, "malformed reply payload");
  };
  BodyReader body(payload);
  switch (header.opcode) {
    case Opcode::kHello: {
      std::uint32_t version = 0;
      if (!body.U32(&version) || body.Remaining() != 16) return malformed();
      const std::uint64_t nodes = GetU64(body.Rest().data());
      const std::uint64_t arcs = GetU64(body.Rest().data() + 8);
      return "AHB/" + std::to_string(version) + " ready " +
             std::to_string(nodes) + " nodes " + std::to_string(arcs) +
             " arcs";
    }
    case Opcode::kDistance: {
      if (payload.size() != 8) return malformed();
      return FormatDistance(GetU64(payload.data()));
    }
    case Opcode::kPath: {
      if (payload.size() < 12) return malformed();
      PathResult path;
      path.length = GetU64(payload.data());
      const std::uint32_t m = GetU32(payload.data() + 8);
      if (payload.size() != 12 + 4 * static_cast<std::size_t>(m)) {
        return malformed();
      }
      path.nodes.reserve(m);
      for (std::uint32_t i = 0; i < m; ++i) {
        path.nodes.push_back(GetU32(payload.data() + 12 + 4 * i));
      }
      return FormatPath(path);
    }
    case Opcode::kKNearest: {
      std::uint32_t m = 0;
      if (!body.U32(&m) ||
          body.Remaining() != 12 * static_cast<std::size_t>(m)) {
        return malformed();
      }
      std::vector<std::pair<Dist, NodeId>> nearest;
      nearest.reserve(m);
      const char* p = body.Rest().data();
      for (std::uint32_t i = 0; i < m; ++i) {
        const NodeId node = GetU32(p + 12 * i);
        const Dist dist = GetU64(p + 12 * i + 4);
        nearest.emplace_back(dist, node);
      }
      return FormatKNearest(nearest);
    }
    case Opcode::kBatch: {
      std::uint32_t n = 0;
      if (!body.U32(&n) ||
          body.Remaining() != 8 * static_cast<std::size_t>(n)) {
        return malformed();
      }
      std::vector<Dist> dists;
      dists.reserve(n);
      const char* p = body.Rest().data();
      for (std::uint32_t i = 0; i < n; ++i) dists.push_back(GetU64(p + 8 * i));
      return FormatBatch(dists);
    }
    case Opcode::kMatrix: {
      std::uint32_t ns = 0;
      std::uint32_t nt = 0;
      if (!body.U32(&ns) || !body.U32(&nt)) return malformed();
      const std::size_t cells =
          static_cast<std::size_t>(ns) * static_cast<std::size_t>(nt);
      if (body.Remaining() != 8 * cells) return malformed();
      std::vector<Dist> dists;
      dists.reserve(cells);
      const char* p = body.Rest().data();
      for (std::size_t i = 0; i < cells; ++i) {
        dists.push_back(GetU64(p + 8 * i));
      }
      return FormatMatrix(ns, nt, dists);
    }
    case Opcode::kStats:
      return "OK stats " + std::string(payload);
    case Opcode::kInvalidate:
      return "OK inv";
    case Opcode::kUse:
      return "OK use " + std::string(payload);
    case Opcode::kUpdate:
      if (payload.size() != 8) return malformed();
      return "OK upd " + std::to_string(GetU64(payload.data()));
    case Opcode::kUpdateFile:
      if (payload.size() != 16) return malformed();
      return "OK updf " + std::to_string(GetU64(payload.data())) + " " +
             std::to_string(GetU64(payload.data() + 8));
    case Opcode::kReload:
      if (payload.size() != 8) return malformed();
      return "OK reload " + std::to_string(GetU64(payload.data()));
    case Opcode::kQuit:
      return "OK bye";
  }
  return malformed();
}

}  // namespace ah::server
