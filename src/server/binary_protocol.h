// The serving wire protocol, version 2: length-prefixed binary frames,
// negotiated on the same TCP port as the v1 line protocol. A connection's
// first bytes decide its mode: the 4-byte magic "AHB2" switches it to
// binary frames for the rest of the session; anything else is parsed as
// v1 text. (The server always sends the v1 text banner line first on
// accept — a v2 client reads and discards that one line, sends the magic,
// and then receives a kHello frame.)
//
// Frame layout, both directions, all integers little-endian:
//
//   u32 len          bytes after this field (header remainder + payload)
//   u8  opcode       Opcode below (replies echo the request's opcode)
//   u8  status       requests: 0; replies: 0 = OK, else ErrorCode + 1
//   u8  backend_len  requests: length of the backend-name prefix of the
//                    payload ("@<backend>" equivalent; 0 = server default);
//                    replies: 0
//   u8  reserved     must be 0
//   u64 request_id   chosen by the client, echoed verbatim in the reply —
//                    the pipelining correlator: a client may have many
//                    frames in flight and replies may complete out of order
//   ...payload       backend-name bytes (requests), then the opcode body
//
// Opcode bodies (requests -> OK reply payloads):
//   kDistance    u32 s, u32 t               -> u64 dist
//   kPath        u32 s, u32 t               -> u64 len, u32 m, m x u32 nodes
//   kKNearest    u32 s, u32 k               -> u32 m, m x (u32 node, u64 d)
//   kBatch       u32 n, n x (u32 s, u32 t)  -> u32 n, n x u64 dists
//   kMatrix      u32 ns, u32 nt, ns x u32, nt x u32
//                                           -> u32 ns, u32 nt, ns*nt x u64
//   kStats       (empty)                    -> stats text bytes
//   kInvalidate  (empty)                    -> (empty)
//   kUse         (backend prefix only)      -> backend-name bytes
//   kUpdate      u32 u, u32 v, u32 w        -> u64 pending
//   kUpdateFile  path bytes                 -> u64 queued, u64 pending
//   kReload      (empty)                    -> u64 pending
//   kQuit        (empty)                    -> (empty), then close
//   kHello       server -> client only      -> u32 version, u64 nodes,
//                                              u64 arcs
//
// Unreachable distances travel as the kInfDist sentinel (u64 max) — the
// binary analogue of v1's "unreachable" token. Error replies (status != 0)
// carry the human-readable detail as the payload. Validation semantics are
// identical to the v1 parser: the same node-range, batch/matrix caps, and
// backend-selector rules produce the same ErrorCode a text client would
// see, so both protocols answer through one server brain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.h"
#include "util/types.h"

namespace ah::server {

/// Version spoken by this codec (the "2" in the AHB2 magic and the kHello
/// payload).
inline constexpr int kBinaryProtocolVersion = 2;

/// A v2 client's first bytes on the wire.
inline constexpr std::string_view kBinaryMagic = "AHB2";

/// Full header size including the u32 length field.
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Minimum legal value of the `len` field (the 12 header bytes after it).
inline constexpr std::uint32_t kFrameLenMin = 12;

enum class Opcode : std::uint8_t {
  kHello = 0x01,
  kDistance = 0x02,
  kPath = 0x03,
  kKNearest = 0x04,
  kBatch = 0x05,
  kMatrix = 0x06,
  kStats = 0x07,
  kInvalidate = 0x08,
  kUse = 0x09,
  kUpdate = 0x0a,
  kUpdateFile = 0x0b,
  kReload = 0x0c,
  kQuit = 0x0d,
};

/// Reply status byte: 0 is success, anything else is ErrorCode + 1.
inline constexpr std::uint8_t kStatusOk = 0;
std::uint8_t StatusFromError(ErrorCode code);
/// False when `status` is kStatusOk or not a known error code.
bool ErrorFromStatus(std::uint8_t status, ErrorCode* out);

// --- Little-endian primitives (shared by server, client, tests) ----------

void PutU32(std::string* out, std::uint32_t v);
void PutU64(std::string* out, std::uint64_t v);
/// Vectorized bulk append of `count` little-endian u64s: one resize, then
/// raw stores — the batch/matrix reply hot path (a 100x100 matrix is 10k
/// cells; per-cell append bookkeeping would dominate the encode).
void PutU64s(std::string* out, const std::uint64_t* values,
             std::size_t count);
std::uint32_t GetU32(const char* p);
std::uint64_t GetU64(const char* p);

// --- Framing --------------------------------------------------------------

struct FrameHeader {
  std::uint32_t len = 0;
  Opcode opcode = Opcode::kHello;
  std::uint8_t status = kStatusOk;
  std::uint8_t backend_len = 0;
  std::uint64_t request_id = 0;
};

/// Reads the 16-byte header from the front of `buf`. False when fewer than
/// kFrameHeaderBytes are buffered (need more data).
bool TryReadHeader(std::string_view buf, FrameHeader* header);

/// Splits one complete frame off the front of `buf`: returns the total
/// frame size (4 + len) and fills header + payload (a view into `buf`), or
/// 0 when the frame is still incomplete. The caller validates `len` bounds
/// (kFrameLenMin and its own size cap) via TryReadHeader first.
std::size_t TryReadFrame(std::string_view buf, FrameHeader* header,
                         std::string_view* payload);

/// Assembles one request frame (client side).
std::string EncodeRequestFrame(Opcode opcode, std::uint64_t request_id,
                               std::string_view backend,
                               std::string_view body);

/// Encodes the opcode body for a parsed Request (everything after the
/// backend-name prefix) — the client-side twin of DecodeRequest. The
/// route_server REPL and benches use this to speak v2 from parsed text.
std::string EncodeRequestBody(const Request& request);

/// The Opcode a request kind travels as (kHello is never a request kind).
Opcode OpcodeForKind(RequestKind kind);

// --- Server-side request decoding ----------------------------------------

/// Decodes one request frame (header + payload split by TryReadFrame) into
/// the same ParseResult the v1 text parser produces, enforcing the same
/// limits and selector rules. Never throws.
ParseResult DecodeRequest(const FrameHeader& header, std::string_view payload,
                          const ParseLimits& limits);

// --- Reply encoding / decoding -------------------------------------------

/// Packs a structured Reply into a v2 frame echoing `opcode`/`request_id`.
/// Errors become status = ErrorCode + 1 with the detail as payload.
std::string EncodeReplyFrame(const Reply& reply, Opcode opcode,
                             std::uint64_t request_id);

/// The server's post-negotiation banner frame (opcode kHello, id 0).
std::string EncodeHelloFrame(std::size_t num_nodes, std::size_t num_arcs);

/// Convenience for front-end-side framing failures (bad length, oversize):
/// an error frame carrying `detail`, echoing whatever opcode/id are known.
std::string EncodeErrorFrame(Opcode opcode, std::uint64_t request_id,
                             ErrorCode code, std::string_view detail);

/// Renders a reply frame as the v1 text line the same request would have
/// produced — the cross-protocol equivalence oracle used by --smoke, the
/// REPL's --protocol v2 mode, and fig_serve's checksum cross-verification.
/// Malformed payloads render as an ERR internal line rather than throwing.
std::string ReplyFrameToText(const FrameHeader& header,
                             std::string_view payload);

}  // namespace ah::server
