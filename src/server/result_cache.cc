#include "server/result_cache.h"

#include <algorithm>
#include <utility>

namespace ah::server {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  const std::size_t shard_count = std::max<std::size_t>(1, shards);
  per_shard_capacity_ =
      capacity == 0 ? 0 : (capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ResultCache::Lookup(const CacheKey& key, CachedResult* out) {
  if (!Enabled()) return false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.stats.hits;
  *out = it->second->value;
  return true;
}

void ResultCache::Insert(const CacheKey& key, CachedResult value) {
  if (!Enabled()) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->value = std::move(value);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(value)});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.stats.insertions;
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    ++shard->stats.invalidations;
  }
}

std::size_t ResultCache::Size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

CacheStats ResultCache::Totals() const {
  CacheStats totals;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    totals.hits += shard->stats.hits;
    totals.misses += shard->stats.misses;
    totals.insertions += shard->stats.insertions;
    totals.evictions += shard->stats.evictions;
  }
  // Clear() bumps every shard's invalidation counter; report calls, not
  // shard-calls.
  std::lock_guard<std::mutex> lock(shards_.front()->mu);
  totals.invalidations = shards_.front()->stats.invalidations;
  return totals;
}

}  // namespace ah::server
