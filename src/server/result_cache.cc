#include "server/result_cache.h"

#include <algorithm>
#include <utility>

namespace ah::server {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards,
                         std::chrono::milliseconds ttl)
    : ttl_(ttl) {
  // Rounded up to a power of two so the per-lookup shard pick is a mask,
  // not an integer division — ShardFor sits on the cache-hit hot path.
  std::size_t shard_count = 1;
  while (shard_count < std::max<std::size_t>(1, shards)) shard_count <<= 1;
  per_shard_capacity_ =
      capacity == 0 ? 0 : (capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ResultCache::Lookup(const CacheKey& key, std::uint64_t generation,
                         CachedResult* out) {
  if (!Enabled()) return false;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  return LookupInShard(shard, key, generation, out);
}

std::size_t ResultCache::LookupMany(const std::vector<CacheKey>& keys,
                                    std::uint64_t generation,
                                    std::vector<CachedResult>* out,
                                    std::vector<char>* hits) {
  if (!Enabled()) return 0;
  // Group key positions by shard with a counting sort — three linear passes
  // and two flat allocations, instead of a vector-of-vectors whose inner
  // reallocations would dominate a warm batch.
  const std::size_t mask = shards_.size() - 1;
  std::vector<std::uint32_t> shard_of(keys.size());
  std::vector<std::uint32_t> bounds(shards_.size() + 1, 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    shard_of[i] = static_cast<std::uint32_t>(KeyHash{}(keys[i]) & mask);
    ++bounds[shard_of[i] + 1];
  }
  for (std::size_t s = 1; s <= mask; ++s) bounds[s + 1] += bounds[s];
  std::vector<std::uint32_t> order(keys.size());
  {
    std::vector<std::uint32_t> next(bounds.begin(), bounds.end() - 1);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      order[next[shard_of[i]]++] = static_cast<std::uint32_t>(i);
    }
  }
  std::size_t hit_count = 0;
  for (std::size_t s = 0; s <= mask; ++s) {
    if (bounds[s] == bounds[s + 1]) continue;
    Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    for (std::uint32_t p = bounds[s]; p < bounds[s + 1]; ++p) {
      const std::uint32_t i = order[p];
      if (LookupInShard(shard, keys[i], generation, &(*out)[i])) {
        (*hits)[i] = 1;
        ++hit_count;
      }
    }
  }
  return hit_count;
}

bool ResultCache::LookupInShard(Shard& shard, const CacheKey& key,
                                std::uint64_t generation, CachedResult* out) {
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return false;
  }
  // Drop-on-sight for entries a swap has retired (entry older than the
  // reader's generation): the entry is erased so it cannot shadow a fresh
  // insert, and the drop is counted so operators can see swap-driven
  // invalidation happening without Clear(). The opposite skew — a reader
  // still leased to a retired epoch finding a *newer* entry — is a plain
  // miss: erasing fresh data on behalf of a stale reader would churn the
  // cache during exactly the reload window it is meant to smooth.
  if (it->second->generation != generation) {
    if (it->second->generation < generation) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++shard.stats.invalidations;
    }
    ++shard.stats.misses;
    return false;
  }
  // The clock is only read when a TTL is configured — TTL-free deployments
  // (the default) keep the hit path free of steady_clock calls.
  if (ttl_.count() != 0 && Clock::now() >= it->second->expiry) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.stats.expirations;
    ++shard.stats.misses;
    return false;
  }
  if (it->second != shard.lru.begin()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  }
  ++shard.stats.hits;
  ++it->second->hits;
  if (it->second->warmed) ++shard.stats.warmup_hits;
  *out = it->second->value;
  return true;
}

void ResultCache::Insert(const CacheKey& key, std::uint64_t generation,
                         CachedResult value, bool warmed) {
  if (!Enabled()) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Never downgrade: a writer still leased to a retired epoch must not
    // overwrite an entry a fresher epoch already computed.
    if (generation < it->second->generation) return;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->value = std::move(value);
    it->second->generation = generation;
    it->second->expiry = ExpiryFromNow();
    it->second->warmed = warmed;
    if (warmed) ++shard.stats.warmup_entries;
    return;
  }
  if (warmed) ++shard.stats.warmup_entries;
  shard.lru.push_front(
      Entry{key, std::move(value), generation, ExpiryFromNow(), 0, warmed});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.stats.insertions;
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void ResultCache::Clear() {
  for (const auto& entry : shards_) {
    Shard& shard = *entry;
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    ++shard.stats.clears;
  }
}

std::vector<CacheKey> ResultCache::HottestEntries(std::uint32_t backend,
                                                  std::size_t k) const {
  std::vector<std::pair<std::uint64_t, CacheKey>> hot;
  if (k == 0) return {};
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    MutexLock lock(shard.mu);
    for (const Entry& e : shard.lru) {
      if (e.key.backend == backend && e.hits > 0) {
        hot.emplace_back(e.hits, e.key);
      }
    }
  }
  const auto hotter = [](const std::pair<std::uint64_t, CacheKey>& a,
                         const std::pair<std::uint64_t, CacheKey>& b) {
    if (a.first != b.first) return a.first > b.first;
    if (a.second.s != b.second.s) return a.second.s < b.second.s;
    if (a.second.t != b.second.t) return a.second.t < b.second.t;
    return a.second.kind < b.second.kind;
  };
  if (hot.size() > k) {
    std::partial_sort(hot.begin(), hot.begin() + k, hot.end(), hotter);
    hot.resize(k);
  } else {
    std::sort(hot.begin(), hot.end(), hotter);
  }
  std::vector<CacheKey> keys;
  keys.reserve(hot.size());
  for (const auto& [hits, key] : hot) keys.push_back(key);
  return keys;
}

std::size_t ResultCache::Size() const {
  std::size_t total = 0;
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    MutexLock lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

CacheStats ResultCache::Totals() const {
  CacheStats totals;
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    MutexLock lock(shard.mu);
    totals.hits += shard.stats.hits;
    totals.misses += shard.stats.misses;
    totals.insertions += shard.stats.insertions;
    totals.evictions += shard.stats.evictions;
    totals.invalidations += shard.stats.invalidations;
    totals.expirations += shard.stats.expirations;
    totals.warmup_entries += shard.stats.warmup_entries;
    totals.warmup_hits += shard.stats.warmup_hits;
  }
  // Clear() bumps every shard's clear counter; report calls, not
  // shard-calls.
  const Shard& first = *shards_.front();
  MutexLock lock(first.mu);
  totals.clears = first.stats.clears;
  return totals;
}

}  // namespace ah::server
