#include "server/result_cache.h"

#include <algorithm>
#include <utility>

namespace ah::server {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards,
                         std::chrono::milliseconds ttl)
    : ttl_(ttl) {
  const std::size_t shard_count = std::max<std::size_t>(1, shards);
  per_shard_capacity_ =
      capacity == 0 ? 0 : (capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ResultCache::Lookup(const CacheKey& key, std::uint64_t generation,
                         CachedResult* out) {
  if (!Enabled()) return false;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return false;
  }
  // Drop-on-sight for entries a swap has retired (entry older than the
  // reader's generation): the entry is erased so it cannot shadow a fresh
  // insert, and the drop is counted so operators can see swap-driven
  // invalidation happening without Clear(). The opposite skew — a reader
  // still leased to a retired epoch finding a *newer* entry — is a plain
  // miss: erasing fresh data on behalf of a stale reader would churn the
  // cache during exactly the reload window it is meant to smooth.
  if (it->second->generation != generation) {
    if (it->second->generation < generation) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++shard.stats.invalidations;
    }
    ++shard.stats.misses;
    return false;
  }
  // The clock is only read when a TTL is configured — TTL-free deployments
  // (the default) keep the hit path free of steady_clock calls.
  if (ttl_.count() != 0 && Clock::now() >= it->second->expiry) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.stats.expirations;
    ++shard.stats.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.stats.hits;
  *out = it->second->value;
  return true;
}

void ResultCache::Insert(const CacheKey& key, std::uint64_t generation,
                         CachedResult value) {
  if (!Enabled()) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Never downgrade: a writer still leased to a retired epoch must not
    // overwrite an entry a fresher epoch already computed.
    if (generation < it->second->generation) return;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->value = std::move(value);
    it->second->generation = generation;
    it->second->expiry = ExpiryFromNow();
    return;
  }
  shard.lru.push_front(
      Entry{key, std::move(value), generation, ExpiryFromNow()});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.stats.insertions;
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void ResultCache::Clear() {
  for (const auto& entry : shards_) {
    Shard& shard = *entry;
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    ++shard.stats.clears;
  }
}

std::size_t ResultCache::Size() const {
  std::size_t total = 0;
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    MutexLock lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

CacheStats ResultCache::Totals() const {
  CacheStats totals;
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    MutexLock lock(shard.mu);
    totals.hits += shard.stats.hits;
    totals.misses += shard.stats.misses;
    totals.insertions += shard.stats.insertions;
    totals.evictions += shard.stats.evictions;
    totals.invalidations += shard.stats.invalidations;
    totals.expirations += shard.stats.expirations;
  }
  // Clear() bumps every shard's clear counter; report calls, not
  // shard-calls.
  const Shard& first = *shards_.front();
  MutexLock lock(first.mu);
  totals.clears = first.stats.clears;
  return totals;
}

}  // namespace ah::server
