#include "server/server_stack.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <future>
#include <stdexcept>
#include <utility>

#include "graph/weight_update.h"
#include "util/timer.h"

namespace ah::server {

namespace {

/// Appends " key=value" (no leading space for the first pair).
void AppendKv(std::string* out, std::string_view key, std::string value) {
  if (!out->empty()) out->push_back(' ');
  out->append(key);
  out->push_back('=');
  out->append(value);
}

std::string Fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// Below this many cache-missed pairs a multi-pair request stays on the
/// worker's own session; at or above it, the engine's multi-thread batch
/// fan-out outweighs its thread spawn/join overhead.
constexpr std::size_t kParallelMissThreshold = 64;

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out.append(", ");
    out.append(name);
  }
  return out;
}

Reply ErrorReply(ErrorCode code, std::string detail) {
  Reply reply;
  reply.ok = false;
  reply.code = code;
  reply.detail = std::move(detail);
  return reply;
}

Reply OkReply(RequestKind kind) {
  Reply reply;
  reply.kind = kind;
  return reply;
}

}  // namespace

ServerStack::ServerStack(std::shared_ptr<IndexRegistry> registry,
                         const ServerConfig& config)
    : config_(config),
      registry_(std::move(registry)),
      engine_(registry_, config.num_threads),
      cache_(config.cache_capacity, config.cache_shards, config.cache_ttl),
      admission_(AdmissionConfig{config.admission_capacity,
                                 config.request_timeout,
                                 config.admission_per_client}) {
  if (config_.warmup_top_k > 0 && cache_.Enabled()) {
    registry_->SetWarmupHook(
        [this](const IndexEpoch& fresh) { WarmCache(fresh); });
  }
}

ServerStack::ServerStack(std::unique_ptr<DistanceOracle> oracle,
                         const ServerConfig& config)
    : ServerStack(IndexRegistry::AdoptStatic(std::move(oracle)), config) {}

ServerStack::~ServerStack() {
  // Clear the hook first: SetWarmupHook blocks while a warm-up runs, so
  // after this no registry thread can touch the dying cache.
  registry_->SetWarmupHook(nullptr);
  WaitIdle();
}

void ServerStack::Submit(std::string_view line, ReplyCallback done) {
  SubmitInternal(line, std::nullopt, std::move(done));
}

void ServerStack::Submit(std::string_view line, std::uint64_t client_id,
                         ReplyCallback done) {
  SubmitInternal(line, client_id, std::move(done));
}

void ServerStack::SubmitInternal(std::string_view line,
                                 std::optional<std::uint64_t> client,
                                 ReplyCallback done) {
  wire_.v1_requests.fetch_add(1, std::memory_order_relaxed);
  ParseResult parsed = ParseRequest(line, Limits());
  SubmitParsed(std::move(parsed), client,
               [done = std::move(done)](Reply reply) {
                 const bool close = reply.close;
                 done(FormatReply(reply), close);
               });
}

void ServerStack::SubmitDecoded(ParseResult parsed, std::uint64_t client_id,
                                StructuredCallback done) {
  wire_.v2_requests.fetch_add(1, std::memory_order_relaxed);
  SubmitParsed(std::move(parsed), client_id, std::move(done));
}

void ServerStack::SubmitParsed(ParseResult parsed,
                               std::optional<std::uint64_t> client,
                               StructuredCallback done) {
  if (!parsed.ok) {
    stats_.RecordError();
    done(ErrorReply(parsed.code, std::move(parsed.message)));
    return;
  }
  Request& req = parsed.request;

  switch (req.kind) {
    case RequestKind::kQuit: {
      Reply reply = OkReply(RequestKind::kQuit);
      reply.close = true;
      done(std::move(reply));
      return;
    }
    case RequestKind::kStats: {
      Reply reply = OkReply(RequestKind::kStats);
      reply.text = StatsLine();
      done(std::move(reply));
      return;
    }
    case RequestKind::kInvalidate:
      cache_.Clear();
      done(OkReply(RequestKind::kInvalidate));
      return;
    case RequestKind::kUse:
    case RequestKind::kUpdate:
    case RequestKind::kUpdateFile:
    case RequestKind::kReload:
      done(ExecuteAdmin(req));
      return;
    default:
      break;
  }

  // Resolve the backend now so an unknown "@..." name is answered inline
  // (and so the cache fast path knows the backend id + generation to match).
  const EpochHandle epoch = registry_->Current(req.backend);
  if (!epoch) {
    stats_.RecordError();
    done(ErrorReply(ErrorCode::kBadBackend,
                    "unknown backend '" + req.backend + "' (serving: " +
                        JoinNames(registry_->Backends()) + ")"));
    return;
  }

  // Cache-hit fast path: distance and path answers are served inline on the
  // front-end thread, skipping admission and the engine entirely.
  if (req.kind == RequestKind::kDistance || req.kind == RequestKind::kPath) {
    Timer timer;
    const bool is_distance = req.kind == RequestKind::kDistance;
    const CacheKey key{req.s, req.t,
                       is_distance ? CachedKind::kDistance : CachedKind::kPath,
                       epoch->backend_id};
    CachedResult hit;
    if (cache_.Lookup(key, epoch->generation, &hit)) {
      Reply reply = OkReply(req.kind);
      if (is_distance) {
        reply.dist = hit.dist;
      } else {
        reply.path.length = hit.dist;
        reply.path.nodes = std::move(hit.nodes);
      }
      stats_.RecordOk(
          is_distance ? RequestClass::kDistance : RequestClass::kPath,
          timer.Micros());
      done(std::move(reply));
      return;
    }
  }

  if (!admission_.TryAdmit(client)) {
    done(ErrorReply(ErrorCode::kOverload,
                    "server at capacity (" +
                        std::to_string(admission_.Capacity()) +
                        " in flight), retry later"));
    return;
  }
  const AdmissionController::Deadline deadline = admission_.MakeDeadline();
  engine_.SubmitAsync([this, request = std::move(req), deadline, client,
                       done = std::move(done)]() mutable {
    Reply reply;
    if (AdmissionController::Expired(deadline)) {
      admission_.CountExpired();
      reply = ErrorReply(ErrorCode::kTimeout,
                         "deadline expired before execution");
    } else {
      // The lease pins whatever epoch is current at execution time — a swap
      // landing between submit and execution simply answers from the fresh
      // index, and the cache insert below is tagged with that generation.
      try {
        ConcurrentEngine::SessionLease lease = engine_.Lease(request.backend);
        reply = Execute(request, lease);
      } catch (const std::exception& e) {
        stats_.RecordError();
        reply = ErrorReply(ErrorCode::kInternal, e.what());
      }
    }
    done(std::move(reply));
    // Release after the reply is delivered so WaitIdle() implies every
    // callback has finished — front-ends rely on that during teardown.
    admission_.Release(client);
  });
}

std::string ServerStack::HandleLine(std::string_view line, bool* close) {
  std::promise<std::pair<std::string, bool>> promise;
  std::future<std::pair<std::string, bool>> future = promise.get_future();
  Submit(line, [&promise](std::string reply, bool do_close) {
    promise.set_value({std::move(reply), do_close});
  });
  auto [reply, do_close] = future.get();
  if (close != nullptr) *close = do_close;
  return reply;
}

void ServerStack::WaitIdle() { admission_.WaitIdle(); }

std::string ServerStack::Greeting() const {
  return server::Greeting(registry_->NumNodes(), registry_->NumArcs());
}

void ServerStack::SetPois(std::vector<NodeId> pois) {
  pois_ = std::move(pois);
}

Reply ServerStack::ExecuteAdmin(const Request& request) {
  switch (request.kind) {
    case RequestKind::kUse: {
      if (!registry_->SetDefaultBackend(request.backend)) {
        stats_.RecordError();
        return ErrorReply(ErrorCode::kBadBackend,
                          "unknown backend '" + request.backend +
                              "' (serving: " +
                              JoinNames(registry_->Backends()) + ")");
      }
      Reply reply = OkReply(RequestKind::kUse);
      reply.text = request.backend;
      return reply;
    }
    case RequestKind::kUpdate:
      switch (registry_->QueueWeightUpdate(request.s, request.t,
                                           request.weight)) {
        case IndexRegistry::UpdateStatus::kQueued: {
          Reply reply = OkReply(RequestKind::kUpdate);
          reply.value = registry_->PendingUpdates();
          return reply;
        }
        case IndexRegistry::UpdateStatus::kNoSuchArc:
          stats_.RecordError();
          return ErrorReply(ErrorCode::kBadArc,
                            "no arc " + std::to_string(request.s) + "->" +
                                std::to_string(request.t) +
                                " in the base graph");
        case IndexRegistry::UpdateStatus::kBadNode:
          stats_.RecordError();
          return ErrorReply(ErrorCode::kBadNode, "endpoint out of range");
        case IndexRegistry::UpdateStatus::kBadWeight:
          stats_.RecordError();
          return ErrorReply(ErrorCode::kBadRequest,
                            "weight must be positive and below " +
                                std::to_string(kMaxWeight));
        case IndexRegistry::UpdateStatus::kStatic:
          stats_.RecordError();
          return ErrorReply(
              ErrorCode::kBadRequest,
              "this server wraps a static index (no live updates)");
      }
      stats_.RecordError();
      return ErrorReply(ErrorCode::kInternal, "unhandled update status");
    case RequestKind::kUpdateFile: {
      std::ifstream in(request.path, std::ios::binary);
      if (!in) {
        stats_.RecordError();
        return ErrorReply(ErrorCode::kBadRequest,
                          "cannot open delta file '" + request.path + "'");
      }
      std::vector<WeightDelta> deltas;
      try {
        deltas = LoadWeightDeltas(in, config_.max_bulk_deltas);
      } catch (const std::length_error& e) {
        stats_.RecordError();
        return ErrorReply(ErrorCode::kTooLarge, e.what());
      } catch (const std::exception& e) {
        stats_.RecordError();
        return ErrorReply(ErrorCode::kBadRequest,
                          "corrupt delta file '" + request.path +
                              "': " + e.what());
      }
      std::size_t first_bad = 0;
      const auto BadRecord = [&](ErrorCode code, std::string_view what) {
        stats_.RecordError();
        const WeightDelta& d = deltas[first_bad];
        return ErrorReply(
            code, "record " + std::to_string(first_bad) + " (" +
                      std::to_string(d.tail) + "->" + std::to_string(d.head) +
                      " w=" + std::to_string(d.weight) + "): " +
                      std::string(what) + "; no records queued");
      };
      switch (registry_->QueueWeightUpdates(deltas, &first_bad)) {
        case IndexRegistry::UpdateStatus::kQueued: {
          Reply reply = OkReply(RequestKind::kUpdateFile);
          reply.value = deltas.size();
          reply.value2 = registry_->PendingUpdates();
          return reply;
        }
        case IndexRegistry::UpdateStatus::kNoSuchArc:
          return BadRecord(ErrorCode::kBadArc,
                           "no such arc in the base graph");
        case IndexRegistry::UpdateStatus::kBadNode:
          return BadRecord(ErrorCode::kBadNode, "endpoint out of range");
        case IndexRegistry::UpdateStatus::kBadWeight:
          return BadRecord(ErrorCode::kBadRequest,
                           "weight must be positive and below " +
                               std::to_string(kMaxWeight));
        case IndexRegistry::UpdateStatus::kStatic:
          stats_.RecordError();
          return ErrorReply(
              ErrorCode::kBadRequest,
              "this server wraps a static index (no live updates)");
      }
      stats_.RecordError();
      return ErrorReply(ErrorCode::kInternal, "unhandled update status");
    }
    case RequestKind::kReload: {
      const std::size_t pending = registry_->PendingUpdates();
      std::string error;
      if (!registry_->RequestReload(&error)) {
        stats_.RecordError();
        return ErrorReply(ErrorCode::kBadRequest, std::move(error));
      }
      Reply reply = OkReply(RequestKind::kReload);
      reply.value = pending;
      return reply;
    }
    default:
      stats_.RecordError();
      return ErrorReply(ErrorCode::kInternal, "not an admin request");
  }
}

Reply ServerStack::Execute(const Request& request,
                           ConcurrentEngine::SessionLease& lease) {
  try {
    switch (request.kind) {
      case RequestKind::kDistance:
        return ExecuteDistance(request.s, request.t, lease);
      case RequestKind::kPath:
        return ExecutePath(request.s, request.t, lease);
      case RequestKind::kKNearest:
        return ExecuteKNearest(request.s, request.k, lease);
      case RequestKind::kBatch:
        return ExecuteBatch(request.pairs, lease);
      case RequestKind::kMatrix:
        return ExecuteMatrix(request.sources, request.targets, lease);
      default:
        stats_.RecordError();
        return ErrorReply(ErrorCode::kInternal, "unexecutable request kind");
    }
  } catch (const std::exception& e) {
    stats_.RecordError();
    return ErrorReply(ErrorCode::kInternal, e.what());
  } catch (...) {
    stats_.RecordError();
    return ErrorReply(ErrorCode::kInternal, "unknown failure");
  }
}

Reply ServerStack::ExecuteDistance(NodeId s, NodeId t,
                                   ConcurrentEngine::SessionLease& lease) {
  Timer timer;
  const Dist d = lease->Distance(s, t);
  cache_.Insert(CacheKey{s, t, CachedKind::kDistance, lease.epoch().backend_id},
                lease.epoch().generation, CachedResult{d, {}});
  stats_.RecordOk(RequestClass::kDistance, timer.Micros());
  Reply reply = OkReply(RequestKind::kDistance);
  reply.dist = d;
  return reply;
}

Reply ServerStack::ExecutePath(NodeId s, NodeId t,
                               ConcurrentEngine::SessionLease& lease) {
  Timer timer;
  PathResult path = lease->ShortestPath(s, t);
  cache_.Insert(CacheKey{s, t, CachedKind::kPath, lease.epoch().backend_id},
                lease.epoch().generation, CachedResult{path.length, path.nodes});
  stats_.RecordOk(RequestClass::kPath, timer.Micros());
  Reply reply = OkReply(RequestKind::kPath);
  reply.path = std::move(path);
  return reply;
}

std::vector<Dist> ServerStack::CachedDistances(
    const std::vector<std::pair<NodeId, NodeId>>& pairs,
    ConcurrentEngine::SessionLease& lease) {
  const std::uint32_t backend_id = lease.epoch().backend_id;
  const std::uint64_t generation = lease.epoch().generation;
  std::vector<Dist> dists(pairs.size(), kInfDist);
  std::vector<std::size_t> miss_index;
  std::vector<QueryPair> miss_pairs;
  if (cache_.Enabled()) {
    // Bulk probe: one shard lock per shard for the whole batch, not one
    // per pair — on a warm batch the mutex round trips would otherwise
    // rival the lookups themselves.
    std::vector<CacheKey> keys;
    keys.reserve(pairs.size());
    for (const auto& [s, t] : pairs) {
      keys.push_back(CacheKey{s, t, CachedKind::kDistance, backend_id});
    }
    std::vector<CachedResult> cached(pairs.size());
    std::vector<char> hit(pairs.size(), 0);
    cache_.LookupMany(keys, generation, &cached, &hit);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (hit[i] != 0) {
        dists[i] = cached[i].dist;
      } else {
        miss_index.push_back(i);
        miss_pairs.push_back(pairs[i]);
      }
    }
  } else {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      miss_index.push_back(i);
      miss_pairs.push_back(pairs[i]);
    }
  }
  if (miss_pairs.empty()) return dists;
  // Few misses: answer on this worker's own session. Many: fan out across
  // the engine's worker threads so one big batch request does not pin a
  // single async worker for its whole duration. (The fan-out leases
  // current-epoch sessions; a swap racing a big batch may answer some pairs
  // from the fresh epoch — each pair is still exact on one of the two.)
  std::vector<Dist> computed;
  bool insertable = true;
  if (miss_pairs.size() >= kParallelMissThreshold) {
    computed = engine_.BatchDistance(miss_pairs, 0, lease.epoch().backend);
    // Only cache the fan-out's answers if no swap landed: generations are
    // monotone, so an unchanged generation read *after* the batch proves
    // the batch leased this same epoch. Otherwise the values may belong to
    // the fresh epoch and tagging them with the stale lease's generation
    // would poison readers still pinned to it.
    insertable = engine_.registry().Generation(lease.epoch().backend) ==
                 generation;
  } else {
    computed.reserve(miss_pairs.size());
    for (const auto& [s, t] : miss_pairs) {
      computed.push_back(lease->Distance(s, t));
    }
  }
  for (std::size_t j = 0; j < miss_pairs.size(); ++j) {
    dists[miss_index[j]] = computed[j];
    if (insertable) {
      cache_.Insert(CacheKey{miss_pairs[j].first, miss_pairs[j].second,
                             CachedKind::kDistance, backend_id},
                    generation, CachedResult{computed[j], {}});
    }
  }
  return dists;
}

Reply ServerStack::ExecuteKNearest(NodeId s, std::uint32_t k,
                                   ConcurrentEngine::SessionLease& lease) {
  if (pois_.empty()) {
    stats_.RecordError();
    return ErrorReply(ErrorCode::kBadRequest,
                      "no POI set configured on this server");
  }
  Timer timer;
  // One distance per POI, each answered through the shared result cache so
  // a popular origin warms every later k-nearest from it.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(pois_.size());
  for (const NodeId poi : pois_) pairs.emplace_back(s, poi);
  const std::vector<Dist> dists = CachedDistances(pairs, lease);
  std::vector<std::pair<Dist, NodeId>> reachable;
  reachable.reserve(pois_.size());
  for (std::size_t i = 0; i < pois_.size(); ++i) {
    if (dists[i] != kInfDist) reachable.emplace_back(dists[i], pois_[i]);
  }
  const std::size_t take = std::min<std::size_t>(k, reachable.size());
  // Explicit (distance, node id) order: equidistant POIs must rank the same
  // on every backend and every run, or the result cache and cross-backend
  // conformance checks would see spurious diffs.
  std::partial_sort(reachable.begin(), reachable.begin() + take,
                    reachable.end(),
                    [](const std::pair<Dist, NodeId>& a,
                       const std::pair<Dist, NodeId>& b) {
                      if (a.first != b.first) return a.first < b.first;
                      return a.second < b.second;
                    });
  reachable.resize(take);
  stats_.RecordOk(RequestClass::kKNearest, timer.Micros());
  Reply reply = OkReply(RequestKind::kKNearest);
  reply.nearest = std::move(reachable);
  return reply;
}

Reply ServerStack::ExecuteBatch(
    const std::vector<std::pair<NodeId, NodeId>>& pairs,
    ConcurrentEngine::SessionLease& lease) {
  Timer timer;
  std::vector<Dist> dists = CachedDistances(pairs, lease);
  stats_.RecordOk(RequestClass::kBatch, timer.Micros());
  Reply reply = OkReply(RequestKind::kBatch);
  reply.dists = std::move(dists);
  return reply;
}

Reply ServerStack::ExecuteMatrix(const std::vector<NodeId>& sources,
                                 const std::vector<NodeId>& targets,
                                 ConcurrentEngine::SessionLease& lease) {
  Timer timer;
  const std::uint32_t backend_id = lease.epoch().backend_id;
  const std::uint64_t generation = lease.epoch().generation;
  const std::size_t num_targets = targets.size();

  // All-pairs cache probe: a fully warm matrix is answered without touching
  // the index at all. A single miss abandons the probe — recomputing the
  // whole matrix through the bucket engine is cheaper than per-pair point
  // queries for the misses. Matrices over matrix_cache_max_cells skip the
  // cache in both directions (see ServerConfig).
  std::vector<Dist> cells(sources.size() * num_targets, kInfDist);
  const bool use_cache = cells.size() <= config_.matrix_cache_max_cells;
  bool all_hit = use_cache;
  for (std::size_t i = 0; all_hit && i < sources.size(); ++i) {
    for (std::size_t j = 0; j < num_targets; ++j) {
      CachedResult cached;
      if (!cache_.Lookup(CacheKey{sources[i], targets[j],
                                  CachedKind::kDistance, backend_id},
                         generation, &cached)) {
        all_hit = false;
        break;
      }
      cells[i * num_targets + j] = cached.dist;
    }
  }
  if (!all_hit) {
    // Computed on the lease's own pinned epoch, so — unlike the batch
    // fan-out in CachedDistances — every insert below is tagged with the
    // generation that actually answered it; no monotonicity check needed.
    cells = lease.epoch().oracle->DistanceMatrix(sources, targets,
                                                 engine_.NumThreads());
    for (std::size_t i = 0; use_cache && i < sources.size(); ++i) {
      for (std::size_t j = 0; j < num_targets; ++j) {
        cache_.Insert(CacheKey{sources[i], targets[j], CachedKind::kDistance,
                               backend_id},
                      generation, CachedResult{cells[i * num_targets + j], {}});
      }
    }
  }
  stats_.RecordOk(RequestClass::kMatrix, timer.Micros());
  Reply reply = OkReply(RequestKind::kMatrix);
  reply.num_sources = sources.size();
  reply.num_targets = num_targets;
  reply.dists = std::move(cells);
  return reply;
}

void ServerStack::WarmCache(const IndexEpoch& fresh) {
  const std::vector<CacheKey> hottest =
      cache_.HottestEntries(fresh.backend_id, config_.warmup_top_k);
  if (hottest.empty()) return;
  // A private session on the unpublished epoch: the engine (and every
  // client) is still leasing the old one, so this contends with nothing.
  const std::unique_ptr<QuerySession> session = fresh.NewSession();
  for (const CacheKey& key : hottest) {
    if (key.kind == CachedKind::kDistance) {
      const Dist d = session->Distance(key.s, key.t);
      cache_.Insert(key, fresh.generation, CachedResult{d, {}},
                    /*warmed=*/true);
    } else {
      const PathResult path = session->ShortestPath(key.s, key.t);
      cache_.Insert(key, fresh.generation, CachedResult{path.length, path.nodes},
                    /*warmed=*/true);
    }
  }
}

std::string ServerStack::StatsLine() const {
  const CacheStats cache = cache_.Totals();
  const AdmissionStats admission = admission_.Totals();
  const IndexRegistry::RegistryStats registry = registry_->GetStats();
  std::string out;
  AppendKv(&out, "v", std::to_string(kProtocolVersion));
  AppendKv(&out, "uptime_s", Fixed(stats_.UptimeSeconds(), 1));
  AppendKv(&out, "served", std::to_string(stats_.OkCount()));
  AppendKv(&out, "errors", std::to_string(stats_.ErrorCount()));
  AppendKv(&out, "shed", std::to_string(admission.shed));
  AppendKv(&out, "expired", std::to_string(admission.expired));
  AppendKv(&out, "qps", Fixed(stats_.Qps(), 1));
  AppendKv(&out, "in_flight", std::to_string(admission_.InFlight()));
  AppendKv(&out, "queue_depth", std::to_string(engine_.AsyncQueueDepth()));
  AppendKv(&out, "v1_requests",
           std::to_string(wire_.v1_requests.load(std::memory_order_relaxed)));
  AppendKv(&out, "v2_requests",
           std::to_string(wire_.v2_requests.load(std::memory_order_relaxed)));
  AppendKv(&out, "bytes_in",
           std::to_string(wire_.bytes_in.load(std::memory_order_relaxed)));
  AppendKv(&out, "bytes_out",
           std::to_string(wire_.bytes_out.load(std::memory_order_relaxed)));
  AppendKv(&out, "backend", registry_->DefaultBackend());
  for (const std::string& name : registry_->Backends()) {
    AppendKv(&out, "epoch_" + name,
             std::to_string(registry_->Generation(name)));
  }
  AppendKv(&out, "pending_updates", std::to_string(registry.pending_updates));
  AppendKv(&out, "updates_applied", std::to_string(registry.updates_applied));
  AppendKv(&out, "reloads", std::to_string(registry.reloads));
  AppendKv(&out, "swaps", std::to_string(registry.swaps));
  AppendKv(&out, "rebuild_in_flight",
           registry.rebuild_in_flight ? "1" : "0");
  // Per-backend rebuild ledger: how many swaps took the cheap frozen-order
  // path vs a from-scratch build, how often incremental fell back, and the
  // wall-clock of the last publication (empty for static registries).
  if (!registry.backend_rebuilds.empty()) {
    const std::vector<std::string>& names = registry_->Backends();
    for (std::size_t i = 0;
         i < names.size() && i < registry.backend_rebuilds.size(); ++i) {
      const IndexRegistry::BackendRebuildStats& rb =
          registry.backend_rebuilds[i];
      AppendKv(&out, "rebuild_" + names[i] + "_incremental",
               std::to_string(rb.incremental));
      AppendKv(&out, "rebuild_" + names[i] + "_full",
               std::to_string(rb.full));
      AppendKv(&out, "rebuild_" + names[i] + "_fallbacks",
               std::to_string(rb.fallbacks));
      AppendKv(&out, "rebuild_" + names[i] + "_last_s",
               Fixed(rb.last_rebuild_seconds, 3));
    }
  }
  AppendKv(&out, "cache_size", std::to_string(cache_.Size()));
  AppendKv(&out, "cache_hits", std::to_string(cache.hits));
  AppendKv(&out, "cache_misses", std::to_string(cache.misses));
  AppendKv(&out, "cache_hit_rate", Fixed(cache.HitRate(), 3));
  AppendKv(&out, "cache_evictions", std::to_string(cache.evictions));
  AppendKv(&out, "cache_invalidations", std::to_string(cache.invalidations));
  AppendKv(&out, "cache_expirations", std::to_string(cache.expirations));
  AppendKv(&out, "cache_clears", std::to_string(cache.clears));
  AppendKv(&out, "warmup_entries", std::to_string(cache.warmup_entries));
  AppendKv(&out, "warmup_hits", std::to_string(cache.warmup_hits));
  for (std::size_t c = 0; c < kNumRequestClasses; ++c) {
    const auto request_class = static_cast<RequestClass>(c);
    const LatencyHistogram& hist = stats_.Histogram(request_class);
    const std::string prefix(RequestClassName(request_class));
    AppendKv(&out, prefix + "_count", std::to_string(hist.Count()));
    AppendKv(&out, prefix + "_p50_us", Fixed(hist.Quantile(0.5), 0));
    AppendKv(&out, prefix + "_p99_us", Fixed(hist.Quantile(0.99), 0));
  }
  return out;
}

}  // namespace ah::server
