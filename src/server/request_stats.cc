#include "server/request_stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ah::server {

std::size_t LatencyHistogram::BucketIndex(std::uint64_t v) {
  if (v < kSub) return static_cast<std::size_t>(v);
  const int msb = std::bit_width(v) - 1;  // >= kSubBits
  const int shift = msb - kSubBits;
  const std::size_t group = static_cast<std::size_t>(shift + 1);
  const std::size_t sub = static_cast<std::size_t>(v >> shift) & (kSub - 1);
  const std::size_t index = (group << kSubBits) + sub;
  return std::min(index, kNumBuckets - 1);
}

std::uint64_t LatencyHistogram::BucketLowerBound(std::size_t index) {
  if (index < kSub) return index;
  const std::size_t group = index >> kSubBits;  // >= 1
  const std::uint64_t sub = index & (kSub - 1);
  return (kSub + sub) << (group - 1);
}

void LatencyHistogram::Record(double micros) {
  const std::uint64_t v =
      micros <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(micros));
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
}

std::uint64_t LatencyHistogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::Quantile(double q) const {
  const std::uint64_t total = Count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the smallest bucket whose cumulative count reaches
  // ceil(q * total), clamped to [1, total].
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Report the bucket's inclusive upper edge (exact for the linear
      // buckets below 8us, ≤12.5% high otherwise).
      if (i + 1 < kNumBuckets) {
        return static_cast<double>(BucketLowerBound(i + 1) - 1);
      }
      return static_cast<double>(BucketLowerBound(i));
    }
  }
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1));
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

std::string_view RequestClassName(RequestClass c) {
  switch (c) {
    case RequestClass::kDistance: return "d";
    case RequestClass::kPath: return "p";
    case RequestClass::kKNearest: return "k";
    case RequestClass::kBatch: return "b";
    case RequestClass::kMatrix: return "m";
  }
  return "?";
}

void RequestStats::RecordOk(RequestClass c, double micros) {
  ok_total_.fetch_add(1, std::memory_order_relaxed);
  histograms_[static_cast<std::size_t>(c)].Record(micros);
}

void RequestStats::RecordError() {
  errors_.fetch_add(1, std::memory_order_relaxed);
}

double RequestStats::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double RequestStats::Qps() const {
  const double uptime = UptimeSeconds();
  return uptime > 0 ? static_cast<double>(OkCount()) / uptime : 0;
}

}  // namespace ah::server
