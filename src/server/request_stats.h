// Serving-side telemetry: a lock-free log-linear latency histogram (the
// p50/p99 type the throughput bench reuses per thread count) and the
// per-request-class counters the stack exports through the `stats` reply.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ah::server {

/// Fixed-footprint latency histogram over microseconds: 8 sub-buckets per
/// power of two (log-linear, ≤ ~12.5% relative bucket width), covering
/// [0, 2^63) us. Record() is a single relaxed atomic increment, so any
/// number of threads may record into one histogram; quantile reads are
/// approximate under concurrent writes (exact once writers are done).
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample (negative values clamp to 0). Thread-safe.
  void Record(double micros);

  /// Adds every bucket of `other` into this histogram (per-thread
  /// histograms merge into one before reporting).
  void Merge(const LatencyHistogram& other);

  std::uint64_t Count() const;

  /// Nearest-rank quantile, q in [0, 1]; returns the upper edge of the
  /// containing bucket (exact for samples < 8us). 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  static constexpr int kSubBits = 3;
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  static constexpr std::size_t kNumBuckets = 62 * kSub;

  static std::size_t BucketIndex(std::uint64_t v);
  /// Smallest value mapping to bucket `index`.
  static std::uint64_t BucketLowerBound(std::size_t index);

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// The request classes the stack tracks separately (a batch counts as one
/// request of class kBatch regardless of its size).
enum class RequestClass : std::size_t {
  kDistance = 0,
  kPath = 1,
  kKNearest = 2,
  kBatch = 3,
  kMatrix = 4,
};
inline constexpr std::size_t kNumRequestClasses = 5;
std::string_view RequestClassName(RequestClass c);

/// Thread-safe counters + per-class latency histograms for one serving
/// stack. Shed/timeout counts live in AdmissionController (single source);
/// this layer tracks what was actually answered.
class RequestStats {
 public:
  RequestStats() : start_(std::chrono::steady_clock::now()) {}

  /// One successfully answered request (cache hits included).
  void RecordOk(RequestClass c, double micros);
  /// One request rejected with a parse/validation/internal error.
  void RecordError();

  std::uint64_t OkCount() const {
    return ok_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t ErrorCount() const {
    return errors_.load(std::memory_order_relaxed);
  }
  const LatencyHistogram& Histogram(RequestClass c) const {
    return histograms_[static_cast<std::size_t>(c)];
  }

  double UptimeSeconds() const;
  /// Mean successfully-answered requests/sec since construction.
  double Qps() const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> ok_total_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::array<LatencyHistogram, kNumRequestClasses> histograms_;
};

}  // namespace ah::server
