// Minimal blocking loopback client for the line protocol — the client half
// of tcp_server.h, used by route_server's --smoke self-test and the TCP
// end-to-end tests. Plain POSIX sockets, header-only, no external deps.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace ah::server {

class LineClient {
 public:
  LineClient() = default;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Connects to 127.0.0.1:port.
  bool Connect(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  /// Sends raw bytes (handles partial sends). For pipelining, include the
  /// newlines yourself.
  bool Send(const std::string& raw) {
    std::size_t sent = 0;
    while (sent < raw.size()) {
      const ssize_t n =
          ::send(fd_, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Sends one newline-terminated request line.
  bool SendLine(const std::string& line) { return Send(line + "\n"); }

  /// Blocking read of the next newline-terminated line (without the '\n').
  bool ReadLine(std::string* line) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the server has closed the connection (blocks until the next
  /// byte or EOF; call once no further replies are expected).
  bool AtEof() {
    if (!buffer_.empty()) return false;
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace ah::server
