// Minimal blocking loopback clients for both wire protocols — the client
// half of tcp_server.h, used by route_server's --smoke self-test, the TCP
// end-to-end tests, and the fig_serve bench. LineClient speaks v1 text;
// BinaryClient negotiates and speaks v2 frames (binary_protocol.h). Plain
// POSIX sockets, header-only, no external deps.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "server/binary_protocol.h"

namespace ah::server {

class LineClient {
 public:
  LineClient() = default;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Connects to 127.0.0.1:port.
  bool Connect(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    // Request lines are tiny; Nagle delaying them behind the server's
    // delayed ACK costs ~40ms per serialized round trip.
    const int nodelay = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  /// Sends raw bytes (handles partial sends). For pipelining, include the
  /// newlines yourself.
  bool Send(const std::string& raw) {
    std::size_t sent = 0;
    while (sent < raw.size()) {
      const ssize_t n =
          ::send(fd_, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Sends one newline-terminated request line.
  bool SendLine(const std::string& line) { return Send(line + "\n"); }

  /// Blocking read of the next newline-terminated line (without the '\n').
  bool ReadLine(std::string* line) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the server has closed the connection (blocks until the next
  /// byte or EOF; call once no further replies are expected).
  bool AtEof() {
    if (!buffer_.empty()) return false;
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// v2 counterpart: connects, discards the v1 text banner, sends the magic,
/// and reads the kHello frame. Supports pipelining — send any number of
/// request frames, then collect replies by id (out-of-order completions
/// are stashed until asked for).
class BinaryClient {
 public:
  struct Frame {
    FrameHeader header;
    std::string payload;
  };

  BinaryClient() = default;
  BinaryClient(const BinaryClient&) = delete;
  BinaryClient& operator=(const BinaryClient&) = delete;

  ~BinaryClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Connects to 127.0.0.1:port and negotiates v2. On success the hello
  /// frame's node/arc counts are available via nodes()/arcs().
  bool Connect(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int nodelay = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return false;
    }
    // The server greets every connection with the v1 banner line before
    // the mode is known; discard it, then switch the wire to v2.
    std::string banner;
    if (!ReadBannerLine(&banner)) return false;
    if (!SendRaw(std::string(kBinaryMagic))) return false;
    Frame hello;
    if (!ReadFrame(&hello) || hello.header.opcode != Opcode::kHello ||
        hello.payload.size() != 20) {
      return false;
    }
    nodes_ = GetU64(hello.payload.data() + 4);
    arcs_ = GetU64(hello.payload.data() + 12);
    return true;
  }

  /// Sends one request frame; the returned id correlates the reply.
  std::uint64_t SendRequest(Opcode opcode, std::string_view body,
                            std::string_view backend = {}) {
    const std::uint64_t id = next_id_++;
    if (!SendRaw(EncodeRequestFrame(opcode, id, backend, body))) return 0;
    return id;
  }

  /// Sends a frame with an explicit id (tests exercising id semantics).
  bool SendRequestWithId(Opcode opcode, std::uint64_t id,
                         std::string_view body, std::string_view backend = {}) {
    return SendRaw(EncodeRequestFrame(opcode, id, backend, body));
  }

  /// Raw bytes straight onto the wire (tests sending malformed frames).
  bool SendRaw(const std::string& raw) {
    std::size_t sent = 0;
    while (sent < raw.size()) {
      const ssize_t n =
          ::send(fd_, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Blocking read of the next complete frame, whatever its id.
  bool ReadFrame(Frame* out) {
    while (true) {
      FrameHeader header;
      std::string_view payload;
      const std::size_t total = TryReadFrame(buffer_, &header, &payload);
      if (total != 0) {
        out->header = header;
        out->payload.assign(payload.data(), payload.size());
        buffer_.erase(0, total);
        return true;
      }
      if (!FillBuffer()) return false;
    }
  }

  /// Blocking read of the reply with this id; frames completing ahead of
  /// it are stashed and handed out when their turn comes.
  bool ReadReplyFor(std::uint64_t id, Frame* out) {
    const auto it = stashed_.find(id);
    if (it != stashed_.end()) {
      *out = std::move(it->second);
      stashed_.erase(it);
      return true;
    }
    Frame frame;
    while (ReadFrame(&frame)) {
      if (frame.header.request_id == id) {
        *out = std::move(frame);
        return true;
      }
      stashed_.emplace(frame.header.request_id, std::move(frame));
    }
    return false;
  }

  /// True when the server has closed the connection (blocks; call once no
  /// further replies are expected).
  bool AtEof() {
    if (!buffer_.empty()) return false;
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

  std::uint64_t nodes() const { return nodes_; }
  std::uint64_t arcs() const { return arcs_; }

 private:
  bool FillBuffer() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  bool ReadBannerLine(std::string* line) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      if (!FillBuffer()) return false;
    }
  }

  int fd_ = -1;
  std::string buffer_;
  std::uint64_t next_id_ = 1;
  std::uint64_t nodes_ = 0;
  std::uint64_t arcs_ = 0;
  std::unordered_map<std::uint64_t, Frame> stashed_;
};

}  // namespace ah::server
