#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "server/binary_protocol.h"

namespace ah::server {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

TcpServer::TcpServer(ServerStack& stack, const TcpServerConfig& config)
    : stack_(stack), config_(config) {}

TcpServer::~TcpServer() { Stop(); }

bool TcpServer::Start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) *error = ErrnoMessage(what);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_pipe_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return false;
  };
  if (Running()) {
    if (error != nullptr) *error = "already running";
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  addr.sin_addr.s_addr = htonl(config_.bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, config_.backlog) != 0) return fail("listen");
  if (!SetNonBlocking(listen_fd_)) return fail("fcntl(listen)");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0) return fail("pipe");
  if (!SetNonBlocking(wake_pipe_[0]) || !SetNonBlocking(wake_pipe_[1])) {
    return fail("fcntl(pipe)");
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  return true;
}

void TcpServer::Stop() {
  if (!Running()) return;
  stop_.store(true, std::memory_order_release);
  WakeIoThread();
  io_thread_.join();
  // No new submissions can happen (the I/O thread is gone); wait for every
  // in-flight request so no engine worker calls EnqueueReply on a dead
  // server, then tear the sockets down.
  stack_.WaitIdle();
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  conn_fd_by_id_.clear();
  num_connections_.store(0, std::memory_order_relaxed);
  {
    MutexLock lock(replies_mu_);
    pending_replies_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  running_.store(false, std::memory_order_release);
}

void TcpServer::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<std::pair<int, std::uint64_t>> event_conns;  // (fd, conn id)
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    event_conns.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const auto& [fd, conn] : connections_) {
      // A closing connection is only flushed, never read again — polling
      // POLLIN after EOF would spin until its last replies drain. A
      // connection at its pipelining bound (queued v1 lines or in-flight
      // v2 frames) stops being read too (backpressure): the socket buffer,
      // and eventually the client, absorb the overflow instead of server
      // memory.
      const bool throttled =
          conn.pending_lines.size() >= config_.max_pending_lines ||
          conn.inflight_frames >= config_.max_pending_lines;
      short events = conn.closing || throttled ? 0 : POLLIN;
      if (!conn.outbuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
      event_conns.emplace_back(fd, conn.id);
    }

    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
      DrainReplies();
    }
    if ((fds[0].revents & POLLIN) != 0) AcceptNew();

    for (std::size_t i = 0; i < event_conns.size(); ++i) {
      const pollfd& pfd = fds[i + 2];
      const auto it = connections_.find(event_conns[i].first);
      if (it == connections_.end()) continue;  // closed while draining
      Connection& conn = it->second;
      // DrainReplies/AcceptNew above may have closed the polled connection
      // and accepted a new one onto the same (reused) fd — these revents
      // belong to the old connection, so skip them.
      if (conn.id != event_conns[i].second) continue;
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        CloseConnection(conn.fd);
        continue;
      }
      if ((pfd.revents & POLLOUT) != 0 && !SettleConnection(conn)) continue;
      if ((pfd.revents & POLLIN) != 0) HandleReadable(conn);
    }
  }
}

void TcpServer::AcceptNew() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: back to poll
    if (connections_.size() >= config_.max_connections) {
      const std::string reply =
          FormatError(ErrorCode::kOverload,
                      "connection limit (" +
                          std::to_string(config_.max_connections) +
                          ") reached") +
          "\n";
      // Count before replying: a client that has read the overload reply
      // must already observe the incremented counter.
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      ::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    // Replies are small and latency-bound; without this, Nagle holding a
    // reply segment for the peer's delayed ACK adds ~40ms to every
    // serialized request/reply round trip on an otherwise idle link.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    Connection conn;
    conn.id = next_conn_id_++;
    conn.fd = fd;
    conn.outbuf = stack_.Greeting() + "\n";
    conn_fd_by_id_.emplace(conn.id, fd);
    auto [it, inserted] = connections_.emplace(fd, std::move(conn));
    num_connections_.store(connections_.size(), std::memory_order_relaxed);
    if (!FlushWrites(it->second)) CloseConnection(fd);
  }
}

void TcpServer::HandleReadable(Connection& conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.inbuf.append(buf, static_cast<std::size_t>(n));
      stack_.wire().bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer closed (or hard error). Serve what was already buffered, then
    // close once in-flight replies drain.
    conn.closing = true;
    break;
  }

  if (conn.mode == WireMode::kUndecided && !DecideMode(conn)) {
    SettleConnection(conn);
    return;
  }

  if (conn.mode == WireMode::kBinary) {
    PumpFrames(conn);
    SettleConnection(conn);
    return;
  }

  std::size_t begin = 0;
  while (true) {
    const std::size_t newline = conn.inbuf.find('\n', begin);
    if (newline == std::string::npos) break;
    std::string line = conn.inbuf.substr(begin, newline - begin);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    conn.pending_lines.push_back(std::move(line));
    begin = newline + 1;
  }
  conn.inbuf.erase(0, begin);

  if (conn.inbuf.size() > config_.max_line_bytes) {
    // The error is deferred until the already-parsed requests above have
    // been answered, keeping the reply stream one-per-request until close.
    conn.deferred_error =
        FormatError(ErrorCode::kBadRequest, "request line too long") + "\n";
    conn.closing = true;
    conn.inbuf.clear();
  }

  PumpRequests(conn);
  SettleConnection(conn);
}

bool TcpServer::DecideMode(Connection& conn) {
  if (conn.inbuf.size() >= kBinaryMagic.size()) {
    if (std::string_view(conn.inbuf).substr(0, kBinaryMagic.size()) ==
        kBinaryMagic) {
      conn.mode = WireMode::kBinary;
      conn.inbuf.erase(0, kBinaryMagic.size());
      conn.outbuf += EncodeHelloFrame(stack_.NumNodes(), stack_.NumArcs());
    } else {
      conn.mode = WireMode::kText;
    }
    return true;
  }
  // Fewer than 4 bytes buffered. Only a proper prefix of the magic is
  // still ambiguous ("AH" could become "AHB2" or the text "AH/1 ..."
  // version selector) — anything else is already text.
  if (kBinaryMagic.substr(0, conn.inbuf.size()) != conn.inbuf) {
    conn.mode = WireMode::kText;
    return true;
  }
  return false;  // wait for more bytes
}

void TcpServer::PumpRequests(Connection& conn) {
  // One in-flight request per connection keeps replies in request order
  // without sequence numbers; pipelined lines wait in pending_lines.
  if (conn.awaiting_reply || conn.pending_lines.empty()) return;
  std::string line = std::move(conn.pending_lines.front());
  conn.pending_lines.pop_front();
  conn.awaiting_reply = true;
  const std::uint64_t id = conn.id;
  // NOTE: `conn` may be gone by the time the callback runs; only the id is
  // captured. The callback always goes through the reply queue — even when
  // Submit answers inline on this thread — so there is exactly one
  // reply-delivery path.
  stack_.Submit(line, id, [this, id](std::string reply, bool close) {
    reply += '\n';
    EnqueueReply(id, std::move(reply), close);
  });
}

void TcpServer::PumpFrames(Connection& conn) {
  // Unlike v1's one-at-a-time pumping, every complete buffered frame is
  // submitted immediately (up to the in-flight cap) — the request id in
  // each reply frame is the client's correlator, so completion order is
  // free to differ from arrival order.
  while (!conn.closing && conn.inflight_frames < config_.max_pending_lines) {
    if (conn.inbuf.size() < sizeof(std::uint32_t)) return;
    FrameHeader header;
    const bool have_header = TryReadHeader(conn.inbuf, &header);
    const std::uint32_t len = GetU32(conn.inbuf.data());
    // Both rejections happen before the frame is buffered in full: the
    // announced length alone convicts it. The error frame echoes the
    // opcode/id when the 16 header bytes made it, else opcode kHello id 0.
    const Opcode opcode = have_header ? header.opcode : Opcode::kHello;
    const std::uint64_t rid = have_header ? header.request_id : 0;
    if (len < kFrameLenMin) {
      conn.deferred_error = EncodeErrorFrame(
          opcode, rid, ErrorCode::kBadRequest,
          "frame length " + std::to_string(len) + " below the header minimum " +
              std::to_string(kFrameLenMin));
      conn.closing = true;
      conn.inbuf.clear();
      return;
    }
    if (sizeof(std::uint32_t) + static_cast<std::uint64_t>(len) >
        config_.max_frame_bytes) {
      conn.deferred_error = EncodeErrorFrame(
          opcode, rid, ErrorCode::kTooLarge,
          "frame of " +
              std::to_string(sizeof(std::uint32_t) +
                             static_cast<std::uint64_t>(len)) +
              " bytes exceeds the limit of " +
              std::to_string(config_.max_frame_bytes));
      conn.closing = true;
      conn.inbuf.clear();
      return;
    }
    std::string_view payload;
    const std::size_t total = TryReadFrame(conn.inbuf, &header, &payload);
    if (total == 0) return;  // incomplete: wait for more bytes
    ParseResult parsed = DecodeRequest(header, payload, stack_.Limits());
    conn.inbuf.erase(0, total);
    ++conn.inflight_frames;
    const std::uint64_t id = conn.id;
    // As in PumpRequests: only the id outlives this scope; the reply is
    // encoded on the worker thread, keeping the I/O thread out of it.
    stack_.SubmitDecoded(
        std::move(parsed), id,
        [this, id, op = header.opcode, rid = header.request_id](Reply reply) {
          const bool close = reply.close;
          EnqueueReply(id, EncodeReplyFrame(reply, op, rid), close);
        });
  }
}

bool TcpServer::SettleConnection(Connection& conn) {
  const bool quiescent = !conn.awaiting_reply && conn.pending_lines.empty() &&
                         conn.inflight_frames == 0;
  if (quiescent && !conn.deferred_error.empty()) {
    conn.outbuf += conn.deferred_error;
    conn.deferred_error.clear();
  }
  if (!FlushWrites(conn)) {
    CloseConnection(conn.fd);
    return false;
  }
  // A client that pipelines requests but never drains replies would grow
  // outbuf without limit — cut it off (no error reply can reach it).
  if (conn.outbuf.size() > config_.max_outbuf_bytes) {
    CloseConnection(conn.fd);
    return false;
  }
  if (conn.closing && quiescent && conn.deferred_error.empty() &&
      conn.outbuf.empty()) {
    CloseConnection(conn.fd);
    return false;
  }
  return true;
}

bool TcpServer::FlushWrites(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      stack_.wire().bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                        std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  return true;
}

void TcpServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  conn_fd_by_id_.erase(it->second.id);
  ::close(fd);
  connections_.erase(it);
  num_connections_.store(connections_.size(), std::memory_order_relaxed);
}

void TcpServer::EnqueueReply(std::uint64_t conn_id, std::string reply,
                             bool close) {
  {
    MutexLock lock(replies_mu_);
    pending_replies_.push_back(PendingReply{conn_id, std::move(reply), close});
  }
  WakeIoThread();
}

void TcpServer::DrainReplies() {
  std::vector<PendingReply> replies;
  {
    MutexLock lock(replies_mu_);
    replies.swap(pending_replies_);
  }
  // Two passes: append every ready reply to its connection's buffer first,
  // then flush each touched connection once. A pipelined client with many
  // replies in this drain gets them in one send() instead of one per
  // reply. Safe to defer the flush: nothing in the first pass closes a
  // connection, so the fds collected stay valid.
  std::vector<int> touched;
  for (PendingReply& reply : replies) {
    const auto id_it = conn_fd_by_id_.find(reply.conn_id);
    if (id_it == conn_fd_by_id_.end()) continue;  // connection already closed
    const auto it = connections_.find(id_it->second);
    if (it == connections_.end()) continue;
    Connection& conn = it->second;
    conn.outbuf += reply.reply;
    if (conn.mode == WireMode::kBinary) {
      if (conn.inflight_frames > 0) --conn.inflight_frames;
    } else {
      conn.awaiting_reply = false;
    }
    if (reply.close) {
      conn.closing = true;
      conn.pending_lines.clear();
      conn.inbuf.clear();
    } else if (conn.mode == WireMode::kBinary) {
      PumpFrames(conn);  // a freed in-flight slot may admit buffered frames
    } else {
      PumpRequests(conn);
    }
    touched.push_back(it->first);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const int fd : touched) {
    const auto it = connections_.find(fd);
    if (it != connections_.end()) SettleConnection(it->second);
  }
}

void TcpServer::WakeIoThread() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

}  // namespace ah::server
