#include "server/admission.h"

namespace ah::server {

bool AdmissionController::TryAdmit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ >= config_.capacity) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ++in_flight_;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  if (in_flight_ == 0) idle_cv_.notify_all();
}

void AdmissionController::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t AdmissionController::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

AdmissionStats AdmissionController::Totals() const {
  AdmissionStats totals;
  totals.admitted = admitted_.load(std::memory_order_relaxed);
  totals.shed = shed_.load(std::memory_order_relaxed);
  totals.expired = expired_.load(std::memory_order_relaxed);
  return totals;
}

}  // namespace ah::server
