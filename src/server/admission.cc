#include "server/admission.h"

namespace ah::server {

bool AdmissionController::TryAdmit(std::optional<std::uint64_t> client) {
  {
    MutexLock lock(mu_);
    if (in_flight_ >= config_.capacity) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (client.has_value() && config_.per_client_capacity > 0) {
      std::size_t& mine = client_in_flight_[*client];
      if (mine >= config_.per_client_capacity) {
        // Erase-on-zero discipline: the entry we just touched may be a
        // fresh zero for a client being rejected by a zero per-client cap.
        if (mine == 0) client_in_flight_.erase(*client);
        shed_.fetch_add(1, std::memory_order_relaxed);
        shed_per_client_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      ++mine;
    }
    ++in_flight_;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AdmissionController::Release(std::optional<std::uint64_t> client) {
  MutexLock lock(mu_);
  if (client.has_value() && config_.per_client_capacity > 0) {
    const auto it = client_in_flight_.find(*client);
    if (it != client_in_flight_.end() && --it->second == 0) {
      client_in_flight_.erase(it);
    }
  }
  --in_flight_;
  if (in_flight_ == 0) idle_cv_.NotifyAll();
}

std::size_t AdmissionController::ClientInFlight(std::uint64_t client) const {
  MutexLock lock(mu_);
  const auto it = client_in_flight_.find(client);
  return it == client_in_flight_.end() ? 0 : it->second;
}

void AdmissionController::WaitIdle() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) idle_cv_.Wait(lock);
}

std::size_t AdmissionController::InFlight() const {
  MutexLock lock(mu_);
  return in_flight_;
}

AdmissionStats AdmissionController::Totals() const {
  AdmissionStats totals;
  totals.admitted = admitted_.load(std::memory_order_relaxed);
  totals.shed = shed_.load(std::memory_order_relaxed);
  totals.shed_per_client = shed_per_client_.load(std::memory_order_relaxed);
  totals.expired = expired_.load(std::memory_order_relaxed);
  return totals;
}

}  // namespace ah::server
