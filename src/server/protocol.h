// The serving wire protocol, version 1: newline-delimited ASCII requests
// with structured single-line replies — the contract between any front-end
// (TCP, stdin REPL, tests) and the ServerStack that answers it.
//
// Requests (one per line, optionally prefixed by the version token "AH/1"):
//   d <s> <t>                       distance from s to t
//   p <s> <t>                       shortest path from s to t
//   k <s> <k>                       k nearest POIs from s (server POI set)
//   b <n> <s1> <t1> ... <sn> <tn>   batch of n distance queries
//   stats                           server counters and latency quantiles
//   inv                             invalidate (clear) the result cache
//   q                               end the session
//
// Replies (one line per request):
//   OK d <dist|unreachable>
//   OK p unreachable | OK p <length> <m> <n1> ... <nm>
//   OK k <m> <node1> <dist1> ... <nodem> <distm>
//   OK b <n> <d1> ... <dn>          (unreachable entries print "unreachable")
//   OK stats <key>=<value> ...
//   OK inv / OK bye
//   ERR <code> <detail>
//
// "unreachable" is a successful answer about the graph; ERR codes
// (bad-request, bad-node, unsupported-version, overload, timeout, internal)
// are request or server failures — clients must never conflate the two.
// Node ids are validated strictly: any non-numeric, negative, or
// out-of-range id is rejected with an error naming the offending token
// instead of being silently clamped.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "routing/path.h"
#include "util/types.h"

namespace ah::server {

/// Protocol version spoken by ParseRequest/Format*. Requests may carry an
/// explicit "AH/<v>" prefix; any v != kProtocolVersion is rejected with
/// ERR unsupported-version so old clients fail loudly, not subtly.
inline constexpr int kProtocolVersion = 1;

enum class RequestKind {
  kDistance,
  kPath,
  kKNearest,
  kBatch,
  kStats,
  kInvalidate,
  kQuit,
};

/// Machine-readable failure classes carried in ERR replies.
enum class ErrorCode {
  kBadRequest,          ///< malformed line: unknown verb, wrong arity, junk
  kBadNode,             ///< node id non-numeric, negative, or out of range
  kUnsupportedVersion,  ///< AH/<v> prefix with an unknown version
  kOverload,            ///< load shed: admission queue full
  kTimeout,             ///< request deadline expired before execution
  kInternal,            ///< server-side failure while answering
};

/// Stable wire token for an error code (e.g. "bad-node").
std::string_view ErrorCodeName(ErrorCode code);

/// A parsed request. Only the fields of the parsed kind are meaningful:
/// s/t for distance and path, s/k for k-nearest, pairs for batch.
struct Request {
  RequestKind kind = RequestKind::kQuit;
  NodeId s = 0;
  NodeId t = 0;
  std::uint32_t k = 0;
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// Outcome of parsing one request line: either a Request or a structured
/// error ready to format into an ERR reply.
struct ParseResult {
  bool ok = false;
  Request request;
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};

/// Limits the parser enforces (the server wires its config in here).
struct ParseLimits {
  /// Node ids must be < num_nodes; violations are kBadNode.
  std::size_t num_nodes = 0;
  /// Max pairs in one batch request; 0 disables batching entirely.
  std::size_t max_batch = 4096;
};

/// Parses one request line. Leading/trailing whitespace is ignored; an
/// empty line is a kBadRequest. Never throws.
ParseResult ParseRequest(std::string_view line, const ParseLimits& limits);

std::string FormatError(ErrorCode code, std::string_view detail);
std::string FormatDistance(Dist d);
std::string FormatPath(const PathResult& path);
/// `nearest` is (distance, node), sorted ascending by the caller.
std::string FormatKNearest(const std::vector<std::pair<Dist, NodeId>>& nearest);
std::string FormatBatch(const std::vector<Dist>& dists);

/// The banner a front-end sends on connect: "AH/1 ready <n> nodes <m> arcs".
std::string Greeting(std::size_t num_nodes, std::size_t num_arcs);

}  // namespace ah::server
