// The serving wire protocol, version 1: newline-delimited ASCII requests
// with structured single-line replies — the contract between any front-end
// (TCP, stdin REPL, tests) and the ServerStack that answers it.
//
// Requests (one per line, optionally prefixed by the version token "AH/1"
// and/or a backend selector "@<backend>" in that order):
//   d <s> <t>                       distance from s to t
//   p <s> <t>                       shortest path from s to t
//   k <s> <k>                       k nearest POIs from s (server POI set)
//   b <n> <s1> <t1> ... <sn> <tn>   batch of n distance queries
//   m <ns> <nt> <s1> ... <sns> <t1> ... <tnt>
//                                   ns × nt distance matrix (many-to-many)
//   stats                           server counters and latency quantiles
//   inv                             invalidate (clear) the result cache
//   q                               end the session
// Admin verbs (the index-lifecycle surface; same line grammar):
//   use <backend>                   switch the server default backend
//   upd <u> <v> <w>                 queue weight w for arc u→v (next reload)
//   updf <file>                     queue a bulk binary delta file (AHUD
//                                   format, graph/weight_update.h) — all
//                                   records validated before any is queued
//   reload                          rebuild + hot-swap all backends async
//
// Replies (one line per request):
//   OK d <dist|unreachable>
//   OK p unreachable | OK p <length> <m> <n1> ... <nm>
//   OK k <m> <node1> <dist1> ... <nodem> <distm>
//   OK b <n> <d1> ... <dn>          (unreachable entries print "unreachable")
//   OK m <ns> <nt> <d11> ... <d1nt> ... <dnsnt>   (row-major by source)
//   OK stats <key>=<value> ...
//   OK inv / OK bye
//   OK use <backend>
//   OK upd <pending>                (queued updates after this one)
//   OK updf <queued> <pending>      (records queued from the file; total)
//   OK reload <pending>             (updates the background rebuild folds in)
//   ERR <code> <detail>
//
// "unreachable" is a successful answer about the graph; ERR codes
// (bad-request, bad-node, bad-backend, bad-arc, unsupported-version,
// overload, timeout, too-large, internal) are request or server failures —
// clients
// must never conflate the two. Node ids are validated strictly: any
// non-numeric, negative, or out-of-range id is rejected with an error
// naming the offending token instead of being silently clamped. Backend
// names in "@..." / "use" are validated by the server against its registry
// (bad-backend); "upd" / "updf" arcs must exist in the base graph (bad-arc).
// "updf" is atomic: the server validates every record in the file and
// queues either all of them or none (the reply names the first bad record).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "routing/path.h"
#include "util/types.h"

namespace ah::server {

/// Protocol version spoken by ParseRequest/Format*. Requests may carry an
/// explicit "AH/<v>" prefix; any v != kProtocolVersion is rejected with
/// ERR unsupported-version so old clients fail loudly, not subtly.
inline constexpr int kProtocolVersion = 1;

enum class RequestKind {
  kDistance,
  kPath,
  kKNearest,
  kBatch,
  kMatrix,  ///< Many-to-many distance matrix.
  kStats,
  kInvalidate,
  kUse,         ///< Switch the server default backend.
  kUpdate,      ///< Queue one edge-weight delta.
  kUpdateFile,  ///< Queue a bulk binary delta file (atomic all-or-nothing).
  kReload,      ///< Trigger the background rebuild + hot swap.
  kQuit,
};

/// Machine-readable failure classes carried in ERR replies.
enum class ErrorCode {
  kBadRequest,          ///< malformed line: unknown verb, wrong arity, junk
  kBadNode,             ///< node id non-numeric, negative, or out of range
  kBadBackend,          ///< backend name not in the server's registry
  kBadArc,              ///< upd names an arc absent from the base graph
  kUnsupportedVersion,  ///< AH/<v> prefix with an unknown version
  kOverload,            ///< load shed: admission queue full
  kTimeout,             ///< request deadline expired before execution
  kTooLarge,            ///< matrix side exceeds the server's location cap
  kInternal,            ///< server-side failure while answering
};

/// Stable wire token for an error code (e.g. "bad-node").
std::string_view ErrorCodeName(ErrorCode code);

/// A parsed request. Only the fields of the parsed kind are meaningful:
/// s/t for distance and path, s/k for k-nearest, pairs for batch,
/// sources/targets for matrix, backend for use (and, from the "@..."
/// prefix, any query kind; empty = server default), s/t/weight for upd,
/// path for updf.
struct Request {
  RequestKind kind = RequestKind::kQuit;
  NodeId s = 0;
  NodeId t = 0;
  std::uint32_t k = 0;
  Weight weight = 0;
  std::string backend;
  std::string path;  ///< Server-side delta file named by updf.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<NodeId> sources;
  std::vector<NodeId> targets;
};

/// Outcome of parsing one request line: either a Request or a structured
/// error ready to format into an ERR reply.
struct ParseResult {
  bool ok = false;
  Request request;
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};

/// Limits the parser enforces (the server wires its config in here).
struct ParseLimits {
  /// Node ids must be < num_nodes; violations are kBadNode.
  std::size_t num_nodes = 0;
  /// Max pairs in one batch request; 0 disables batching entirely.
  std::size_t max_batch = 4096;
  /// Max locations per matrix side (sources or targets); violations are
  /// kTooLarge. 0 disables matrix requests entirely.
  std::size_t max_matrix_locations = 512;
  /// Max delta records accepted from one updf file; over-cap files are
  /// answered kTooLarge (enforced server-side when reading the file, since
  /// the parser only sees the file name). 0 disables the verb.
  std::size_t max_bulk_deltas = 1 << 20;
};

/// Parses one request line. Leading/trailing whitespace is ignored; an
/// empty line is a kBadRequest. Backend-name *existence* is not checked
/// here (the parser has no registry) — the server maps unknown names to
/// kBadBackend. Never throws.
ParseResult ParseRequest(std::string_view line, const ParseLimits& limits);

/// A structured answer, produced once by the ServerStack and rendered per
/// protocol: FormatReply() emits the v1 text line, binary_protocol.h's
/// EncodeReplyFrame() packs the same fields into a v2 frame. Only the
/// fields of the answered kind are meaningful (mirroring Request).
struct Reply {
  bool ok = true;
  RequestKind kind = RequestKind::kQuit;
  /// The front-end should close the session after delivering this reply.
  bool close = false;
  ErrorCode code = ErrorCode::kInternal;  ///< When !ok.
  std::string detail;                     ///< Error detail when !ok.
  Dist dist = kInfDist;                   ///< kDistance.
  PathResult path;                        ///< kPath.
  std::vector<std::pair<Dist, NodeId>> nearest;  ///< kKNearest (dist, node).
  std::vector<Dist> dists;  ///< kBatch values / kMatrix row-major cells.
  std::size_t num_sources = 0;  ///< kMatrix.
  std::size_t num_targets = 0;  ///< kMatrix.
  std::string text;    ///< kStats stats line; kUse backend echo.
  std::uint64_t value = 0;   ///< upd/reload pending; updf queued.
  std::uint64_t value2 = 0;  ///< updf pending-after-queue.
};

/// Renders a Reply as its v1 text line — byte-identical to what the
/// pre-structured server produced (delegates to the Format* helpers below).
std::string FormatReply(const Reply& reply);

std::string FormatError(ErrorCode code, std::string_view detail);
std::string FormatDistance(Dist d);
std::string FormatPath(const PathResult& path);
/// `nearest` is (distance, node), sorted ascending by the caller.
std::string FormatKNearest(const std::vector<std::pair<Dist, NodeId>>& nearest);
std::string FormatBatch(const std::vector<Dist>& dists);
/// `cells` is the row-major num_sources × num_targets matrix.
std::string FormatMatrix(std::size_t num_sources, std::size_t num_targets,
                         const std::vector<Dist>& cells);

/// The banner a front-end sends on connect: "AH/1 ready <n> nodes <m> arcs".
std::string Greeting(std::size_t num_nodes, std::size_t num_arcs);

}  // namespace ah::server
