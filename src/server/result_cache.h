// Sharded LRU cache of query results, sitting between the protocol layer
// and the ConcurrentEngine: repeated (src, dst, kind) requests — the shape
// of real road-network traffic, where popular origin/destination pairs
// recur heavily — are answered without touching the index at all.
//
// Keys are (src, dst, kind, backend); every entry additionally carries the
// *generation* of the index epoch it was computed on plus an optional TTL
// expiry. A lookup passes the backend's current generation: an entry from a
// retired generation is dropped on sight and counted as an invalidation, so
// an epoch swap implicitly invalidates exactly the stale backend's entries
// — no global flush, and entries of other backends (or the fresh
// generation) keep serving hits. Clear() remains as the operator-facing
// `inv` verb (counted separately as a clear).
//
// The key space is split across N shards, each an independently locked LRU
// list + hash map, so concurrent connections rarely contend on the same
// mutex. Capacity is a global entry budget split evenly across shards.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.h"
#include "util/types.h"

namespace ah::server {

/// Which answer a cache entry holds. Distance and path answers for the same
/// (s, t) are distinct entries — a path reply cannot be served from a
/// distance-only entry.
enum class CachedKind : std::uint8_t { kDistance = 0, kPath = 1 };

struct CacheKey {
  NodeId s = 0;
  NodeId t = 0;
  CachedKind kind = CachedKind::kDistance;
  /// Registry backend id (0 for single-backend deployments).
  std::uint32_t backend = 0;

  bool operator==(const CacheKey&) const = default;
};

/// A cached answer: `dist` always (kInfDist = unreachable); `nodes` only
/// for kPath entries (empty when unreachable).
struct CachedResult {
  Dist dist = kInfDist;
  std::vector<NodeId> nodes;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  ///< Stale-generation entries dropped.
  std::uint64_t expirations = 0;    ///< TTL-expired entries dropped.
  std::uint64_t clears = 0;         ///< Clear() calls (the `inv` verb).
  std::uint64_t warmup_entries = 0;  ///< Warm inserts (post-swap re-primes).
  std::uint64_t warmup_hits = 0;     ///< Hits answered by a warmed entry.

  double HitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class ResultCache {
 public:
  using Clock = std::chrono::steady_clock;

  /// `capacity` is the total entry budget (0 disables the cache: every
  /// Lookup misses, Insert is a no-op). `shards` is rounded up to the next
  /// power of two (at least 1); each shard gets ceil(capacity / shards)
  /// entries. `ttl` bounds every
  /// entry's lifetime (0 = entries never expire) — the freshness backstop
  /// for deployments that take weight updates without reloading promptly.
  explicit ResultCache(std::size_t capacity, std::size_t shards = 16,
                       std::chrono::milliseconds ttl = {});

  bool Enabled() const { return per_shard_capacity_ > 0; }
  std::size_t NumShards() const { return shards_.size(); }
  std::chrono::milliseconds Ttl() const { return ttl_; }

  /// On hit (entry tagged with exactly `generation` — the generation of the
  /// epoch the caller leased), copies the entry into *out, promotes it to
  /// most-recently-used, and returns true. An entry tagged with an *older*
  /// generation is erased (counted as an invalidation) and reported as a
  /// miss, as is a TTL-expired entry (counted as an expiration); an entry
  /// tagged *newer* — a reader still leased to a retired epoch — is a plain
  /// miss and the fresh entry is left untouched. Thread-safe.
  bool Lookup(const CacheKey& key, std::uint64_t generation,
              CachedResult* out);

  /// Bulk Lookup for batch requests: probes every key with the same
  /// semantics as Lookup, but groups the keys by shard and locks each
  /// shard once per call instead of once per key — on a warm batch the
  /// per-key mutex round trip is the dominant cost. On hit, hits[i] is set
  /// and out[i] filled; misses leave out[i] untouched. Returns the hit
  /// count. The vectors must all have keys.size() elements. Thread-safe.
  std::size_t LookupMany(const std::vector<CacheKey>& keys,
                         std::uint64_t generation,
                         std::vector<CachedResult>* out,
                         std::vector<char>* hits);

  /// Inserts or refreshes an entry tagged with `generation`
  /// (most-recently-used position), evicting the shard's least-recently-
  /// used entry when over budget. A refresh never downgrades: if the
  /// existing entry carries a newer generation, the insert is dropped.
  /// `warmed` marks the value as a post-swap warm-up re-prime (counted as a
  /// warmup entry; its later hits count as warmup hits) — a normal insert
  /// or refresh clears the mark. Thread-safe.
  void Insert(const CacheKey& key, std::uint64_t generation,
              CachedResult value, bool warmed = false);

  /// The up-to-`k` most-hit keys of one backend, hottest first (ties broken
  /// by key for determinism), skipping never-hit entries. Each entry keeps
  /// a small hit counter bumped on Lookup; the registry's warm-up hook uses
  /// this to decide which retiring entries to re-prime on a fresh epoch.
  /// Scans every shard — swap-time cost, not query-path cost. Thread-safe.
  std::vector<CacheKey> HottestEntries(std::uint32_t backend,
                                       std::size_t k) const;

  /// Operator-facing full invalidation (the `inv` verb): drops every entry
  /// of every backend. Hit/miss counters persist; the clear counter
  /// increments. Epoch swaps do NOT call this — generation tags already
  /// retire stale entries per backend. Thread-safe.
  void Clear();

  /// Entries currently cached (sums shard sizes; approximate under
  /// concurrent mutation, and stale/expired entries linger until looked up
  /// or evicted). Thread-safe.
  std::size_t Size() const;

  /// Aggregated counters across all shards. Thread-safe.
  CacheStats Totals() const;

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const {
      // SplitMix64 finalizer over the packed key.
      std::uint64_t z = (static_cast<std::uint64_t>(k.s) << 32) | k.t;
      z ^= static_cast<std::uint64_t>(k.kind) << 1;
      z ^= static_cast<std::uint64_t>(k.backend) * 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };

  struct Entry {
    CacheKey key;
    CachedResult value;
    std::uint64_t generation = 0;
    Clock::time_point expiry = Clock::time_point::max();
    /// Lookup hits on this key since insertion (survives refreshes) — the
    /// popularity signal HottestEntries ranks by.
    std::uint64_t hits = 0;
    /// Value came from a post-swap warm-up, not a served request.
    bool warmed = false;
  };

  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru AH_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index
        AH_GUARDED_BY(mu);
    CacheStats stats AH_GUARDED_BY(mu);
  };

  /// The Lookup hit/miss/invalidate logic with the shard lock already
  /// held; shared by Lookup and LookupMany.
  bool LookupInShard(Shard& shard, const CacheKey& key,
                     std::uint64_t generation, CachedResult* out)
      AH_REQUIRES(shard.mu);

  Shard& ShardFor(const CacheKey& key) {
    // shards_.size() is a power of two (see the constructor), so this is a
    // mask rather than a division.
    return *shards_[KeyHash{}(key) & (shards_.size() - 1)];
  }

  Clock::time_point ExpiryFromNow() const {
    return ttl_.count() == 0 ? Clock::time_point::max() : Clock::now() + ttl_;
  }

  std::size_t per_shard_capacity_ = 0;
  std::chrono::milliseconds ttl_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ah::server
