// Sharded LRU cache of query results, sitting between the protocol layer
// and the ConcurrentEngine: repeated (src, dst, kind) requests — the shape
// of real road-network traffic, where popular origin/destination pairs
// recur heavily — are answered without touching the index at all.
//
// Keys are (src, dst, kind); values hold the distance and, for path
// entries, the node sequence. The key space is split across N shards, each
// an independently locked LRU list + hash map, so concurrent connections
// rarely contend on the same mutex. Capacity is a global entry budget split
// evenly across shards. Hit/miss/insert/evict counters are kept per shard
// and aggregated on demand; Clear() is the explicit invalidation hook (e.g.
// after a weight update) and counts how often it was called.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace ah::server {

/// Which answer a cache entry holds. Distance and path answers for the same
/// (s, t) are distinct entries — a path reply cannot be served from a
/// distance-only entry.
enum class CachedKind : std::uint8_t { kDistance = 0, kPath = 1 };

struct CacheKey {
  NodeId s = 0;
  NodeId t = 0;
  CachedKind kind = CachedKind::kDistance;

  bool operator==(const CacheKey&) const = default;
};

/// A cached answer: `dist` always (kInfDist = unreachable); `nodes` only
/// for kPath entries (empty when unreachable).
struct CachedResult {
  Dist dist = kInfDist;
  std::vector<NodeId> nodes;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double HitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class ResultCache {
 public:
  /// `capacity` is the total entry budget (0 disables the cache: every
  /// Lookup misses, Insert is a no-op). `shards` is rounded up to at least
  /// 1; each shard gets ceil(capacity / shards) entries.
  explicit ResultCache(std::size_t capacity, std::size_t shards = 16);

  bool Enabled() const { return per_shard_capacity_ > 0; }
  std::size_t NumShards() const { return shards_.size(); }

  /// On hit, copies the entry into *out, promotes it to most-recently-used,
  /// and returns true. Thread-safe.
  bool Lookup(const CacheKey& key, CachedResult* out);

  /// Inserts or refreshes an entry (most-recently-used position), evicting
  /// the shard's least-recently-used entry when over budget. Thread-safe.
  void Insert(const CacheKey& key, CachedResult value);

  /// Explicit invalidation: drops every entry. Hit/miss counters persist;
  /// the invalidation counter increments. Thread-safe.
  void Clear();

  /// Entries currently cached (sums shard sizes; approximate under
  /// concurrent mutation). Thread-safe.
  std::size_t Size() const;

  /// Aggregated counters across all shards. Thread-safe.
  CacheStats Totals() const;

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const {
      // SplitMix64 finalizer over the packed 72-bit key.
      std::uint64_t z = (static_cast<std::uint64_t>(k.s) << 32) | k.t;
      z ^= static_cast<std::uint64_t>(k.kind) << 1;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };

  struct Entry {
    CacheKey key;
    CachedResult value;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index;
    CacheStats stats;
  };

  Shard& ShardFor(const CacheKey& key) {
    return *shards_[KeyHash{}(key) % shards_.size()];
  }

  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ah::server
