// Minimal chunked parallel-for used by the embarrassingly parallel
// preprocessing loops (window processing, gateway construction, SILC's
// per-source Dijkstras). Results must be merged in deterministic chunk
// order by the caller — every user of this header does so, keeping builds
// bit-identical regardless of thread count (AH_THREADS overrides).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace ah {

/// Number of worker threads to use: AH_THREADS env var if set, else
/// min(hardware_concurrency, cap), at least 1.
inline std::size_t WorkerThreads(std::size_t cap = 16) {
  if (const char* raw = std::getenv("AH_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(raw, &end, 10);
    if (end != raw && v > 0) return static_cast<std::size_t>(v);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, std::min(hw == 0 ? 1 : hw, cap));
}

/// Splits [0, n) into fixed-size chunks and processes them on worker
/// threads. `body(chunk_index, begin, end, thread_id)` must only write to
/// thread- or chunk-private state. Chunk indices are dense: chunk c covers
/// [c*chunk_size, min(n, (c+1)*chunk_size)).
template <typename Body>
void ParallelChunks(std::size_t n, std::size_t chunk_size, Body&& body,
                    std::size_t num_threads = 0) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  if (num_threads == 0) num_threads = WorkerThreads();
  num_threads = std::min(num_threads, num_chunks);

  if (num_threads <= 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * chunk_size;
      body(c, begin, std::min(n, begin + chunk_size), std::size_t{0});
    }
    return;
  }

  std::atomic<std::size_t> next_chunk{0};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t tid = 0; tid < num_threads; ++tid) {
    workers.emplace_back([&, tid] {
      while (true) {
        const std::size_t c = next_chunk.fetch_add(1);
        if (c >= num_chunks) return;
        const std::size_t begin = c * chunk_size;
        body(c, begin, std::min(n, begin + chunk_size), tid);
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace ah
