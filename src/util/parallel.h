// Minimal chunked parallel-for used by the embarrassingly parallel
// preprocessing loops (window processing, gateway construction, SILC's
// per-source Dijkstras). Results must be merged in deterministic chunk
// order by the caller — every user of this header does so, keeping builds
// bit-identical regardless of thread count (AH_THREADS overrides).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace ah {

/// Number of worker threads to use: AH_THREADS env var if set, else
/// min(hardware_concurrency, cap), at least 1.
inline std::size_t WorkerThreads(std::size_t cap = 16) {
  if (const char* raw = std::getenv("AH_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(raw, &end, 10);
    if (end != raw && v > 0) return static_cast<std::size_t>(v);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, std::min(hw == 0 ? 1 : hw, cap));
}

/// Splits [0, n) into fixed-size chunks and processes them on worker
/// threads. `body(chunk_index, begin, end, thread_id)` must only write to
/// thread- or chunk-private state. Chunk indices are dense: chunk c covers
/// [c*chunk_size, min(n, (c+1)*chunk_size)).
template <typename Body>
void ParallelChunks(std::size_t n, std::size_t chunk_size, Body&& body,
                    std::size_t num_threads = 0) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  if (num_threads == 0) num_threads = WorkerThreads();
  num_threads = std::min(num_threads, num_chunks);

  if (num_threads <= 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * chunk_size;
      body(c, begin, std::min(n, begin + chunk_size), std::size_t{0});
    }
    return;
  }

  std::atomic<std::size_t> next_chunk{0};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t tid = 0; tid < num_threads; ++tid) {
    workers.emplace_back([&, tid] {
      while (true) {
        const std::size_t c = next_chunk.fetch_add(1);
        if (c >= num_chunks) return;
        const std::size_t begin = c * chunk_size;
        body(c, begin, std::min(n, begin + chunk_size), tid);
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

struct WindowedChunkStats {
  /// Peak number of chunks simultaneously produced-but-unconsumed (claimed
  /// chunks count from the moment a worker starts filling their buffer).
  /// Bounded by the window, never by the chunk count.
  std::size_t max_live_chunks = 0;
};

/// ParallelChunks with bounded in-flight output: workers may run at most
/// `window` chunks ahead of a serial, in-chunk-order consumer. `body` fills
/// chunk-private output exactly as in ParallelChunks; `consume(chunk_index,
/// begin, end)` is invoked for every chunk in increasing index order (on
/// whichever worker completed the gating chunk) and is never re-entered, so
/// it may append to shared output without locking. Because consumption is
/// in chunk order, results are bit-identical at any thread count — and
/// because claims stall past the window, at most `window` chunk buffers are
/// ever live, which is what bounds the peak RSS of builds whose per-chunk
/// output is large (SILC quadtrees, HL label deltas). Callers that reuse
/// buffers may index them by `chunk_index % window`: two chunks at the same
/// slot are never live together.
template <typename Body, typename Consume>
WindowedChunkStats ParallelChunksWindowed(std::size_t n, std::size_t chunk_size,
                                          std::size_t window, Body&& body,
                                          Consume&& consume,
                                          std::size_t num_threads = 0) {
  WindowedChunkStats stats;
  if (n == 0) return stats;
  if (chunk_size == 0) chunk_size = 1;
  if (window == 0) window = 1;
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  if (num_threads == 0) num_threads = WorkerThreads();
  num_threads = std::min(num_threads, num_chunks);

  if (num_threads <= 1) {
    stats.max_live_chunks = 1;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      body(c, begin, end, std::size_t{0});
      consume(c, begin, end);
    }
    return stats;
  }

  // Locals cannot carry AH_GUARDED_BY (the analysis only tracks members
  // and globals); every access below is inside a MutexLock scope, which the
  // analysis does verify against the Unlock()/Lock() pairing.
  Mutex mu;
  CondVar cv;
  std::size_t next_claim = 0;    // next chunk index to hand to a worker
  std::size_t next_consume = 0;  // next chunk index the consumer needs
  std::size_t live = 0;          // claimed but not yet consumed
  bool consuming = false;        // one worker at a time plays consumer
  std::vector<char> done(num_chunks, 0);

  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t tid = 0; tid < num_threads; ++tid) {
    workers.emplace_back([&, tid] {
      while (true) {
        MutexLock lock(mu);
        while (next_claim < num_chunks &&
               next_claim >= next_consume + window) {
          cv.Wait(lock);
        }
        if (next_claim >= num_chunks) return;
        const std::size_t c = next_claim++;
        ++live;
        stats.max_live_chunks = std::max(stats.max_live_chunks, live);
        lock.Unlock();
        const std::size_t begin = c * chunk_size;
        body(c, begin, std::min(n, begin + chunk_size), tid);
        lock.Lock();
        done[c] = 1;
        // Drain every ready in-order chunk; whoever completes the chunk the
        // consumer is waiting on (or is already the consumer) does it.
        while (!consuming && next_consume < num_chunks &&
               done[next_consume] != 0) {
          consuming = true;
          const std::size_t ready = next_consume;
          lock.Unlock();
          const std::size_t ready_begin = ready * chunk_size;
          consume(ready, ready_begin, std::min(n, ready_begin + chunk_size));
          lock.Lock();
          consuming = false;
          ++next_consume;
          --live;
          cv.NotifyAll();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return stats;
}

}  // namespace ah
