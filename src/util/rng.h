// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (synthetic data, perturbation,
// workload sampling, randomized orders) draw from SplitMix64 so that every
// experiment is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace ah {

/// SplitMix64: tiny, high-quality, splittable PRNG. Deterministic per seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Uniform(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Derive an independent child generator (for parallel-safe splitting).
  Rng Split() { return Rng(Next() ^ 0x5851f42d4c957f2dULL); }

 private:
  std::uint64_t state_;
};

}  // namespace ah
