// Clang thread-safety annotations plus annotated mutex wrappers: the
// compile-time half of the repo's concurrency story. Every mutex-guarded
// structure in src/ declares *which* mutex guards it (AH_GUARDED_BY) and
// every helper that assumes a lock declares so (AH_REQUIRES /
// AH_EXCLUDES), so clang's -Wthread-safety analysis turns a forgotten lock
// into a build error instead of a tsan sample. Under GCC (which has no
// such analysis) every macro expands to nothing and the wrappers compile
// down to the plain std types — zero runtime cost either way.
//
// Conventions (see clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   * Fields:   Foo foo_ AH_GUARDED_BY(mu_);
//   * Helpers:  void RehashLocked() AH_REQUIRES(mu_);   // caller holds mu_
//               void Publish() AH_EXCLUDES(mu_);        // caller must NOT
//   * Locking:  ah::MutexLock lock(mu_);                // RAII, annotated
//   * Waiting:  while (!done_) cv_.Wait(lock);          // NOT the predicate
//     overload: a predicate lambda is analyzed as a separate function that
//     does not hold the capability, so guarded reads inside it would warn.
//     The explicit while loop keeps the guarded read in the annotated scope.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define AH_THREAD_ANNOTATION_ATTR(x) __attribute__((x))
#else
#define AH_THREAD_ANNOTATION_ATTR(x)  // no-op: GCC has no analysis
#endif

/// Declares a type to be a capability (lockable).
#define AH_CAPABILITY(x) AH_THREAD_ANNOTATION_ATTR(capability(x))
/// Declares an RAII type that acquires on construction, releases on scope
/// exit.
#define AH_SCOPED_CAPABILITY AH_THREAD_ANNOTATION_ATTR(scoped_lockable)
/// Field is protected by the given mutex.
#define AH_GUARDED_BY(x) AH_THREAD_ANNOTATION_ATTR(guarded_by(x))
/// Pointed-to data (not the pointer itself) is protected by the mutex.
#define AH_PT_GUARDED_BY(x) AH_THREAD_ANNOTATION_ATTR(pt_guarded_by(x))
/// Function requires the caller to hold the mutex (exclusive / shared).
#define AH_REQUIRES(...) \
  AH_THREAD_ANNOTATION_ATTR(requires_capability(__VA_ARGS__))
#define AH_REQUIRES_SHARED(...) \
  AH_THREAD_ANNOTATION_ATTR(requires_shared_capability(__VA_ARGS__))
/// Function acquires the mutex (and does not release it).
#define AH_ACQUIRE(...) \
  AH_THREAD_ANNOTATION_ATTR(acquire_capability(__VA_ARGS__))
#define AH_ACQUIRE_SHARED(...) \
  AH_THREAD_ANNOTATION_ATTR(acquire_shared_capability(__VA_ARGS__))
/// Function releases a held mutex. _GENERIC releases either mode — the RAII
/// destructors use it so one destructor serves shared and exclusive locks.
#define AH_RELEASE(...) \
  AH_THREAD_ANNOTATION_ATTR(release_capability(__VA_ARGS__))
#define AH_RELEASE_SHARED(...) \
  AH_THREAD_ANNOTATION_ATTR(release_shared_capability(__VA_ARGS__))
#define AH_RELEASE_GENERIC(...) \
  AH_THREAD_ANNOTATION_ATTR(release_generic_capability(__VA_ARGS__))
#define AH_TRY_ACQUIRE(...) \
  AH_THREAD_ANNOTATION_ATTR(try_acquire_capability(__VA_ARGS__))
/// Function must be called WITHOUT the mutex held (it acquires internally).
#define AH_EXCLUDES(...) AH_THREAD_ANNOTATION_ATTR(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given mutex.
#define AH_RETURN_CAPABILITY(x) AH_THREAD_ANNOTATION_ATTR(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Every use carries
/// a comment saying why the analysis cannot see the invariant.
#define AH_NO_THREAD_SAFETY_ANALYSIS \
  AH_THREAD_ANNOTATION_ATTR(no_thread_safety_analysis)

namespace ah {

/// std::mutex with the capability annotation the analysis keys on.
/// Lock/Unlock are for the analysis' benefit; normal code uses MutexLock.
class AH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AH_ACQUIRE() { mu_.lock(); }
  void Unlock() AH_RELEASE() { mu_.unlock(); }
  bool TryLock() AH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// std::shared_mutex with the capability annotation (read-mostly state:
/// many shared readers, exclusive writers).
class AH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() AH_ACQUIRE() { mu_.lock(); }
  void Unlock() AH_RELEASE() { mu_.unlock(); }
  void LockShared() AH_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() AH_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderMutexLock;
  friend class WriterMutexLock;
  std::shared_mutex mu_;
};

/// RAII exclusive lock over ah::Mutex. Supports the two-phase
/// Unlock()/Lock() dance (windowed parallel consumers) and CondVar waits.
class AH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AH_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() AH_RELEASE_GENERIC() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Mid-scope release/reacquire; the destructor only unlocks if held.
  void Unlock() AH_RELEASE() { lock_.unlock(); }
  void Lock() AH_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// RAII shared (reader) lock over ah::SharedMutex.
class AH_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) AH_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  ~ReaderMutexLock() AH_RELEASE_GENERIC() {}

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// RAII exclusive (writer) lock over ah::SharedMutex.
class AH_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) AH_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~WriterMutexLock() AH_RELEASE_GENERIC() {}

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// Condition variable paired with ah::Mutex/MutexLock. Wait releases and
/// reacquires the lock; from the analysis' point of view the capability is
/// held throughout, which is exactly the guarantee the caller observes.
/// No predicate overload on purpose — see the header comment.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  /// Timed wait (releases/reacquires like Wait); returns false on timeout.
  /// Same no-predicate rule as Wait: re-check the guarded condition in the
  /// caller's annotated while loop.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }
  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ah
