#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ah {

void SampleStats::Add(double v) {
  samples_.push_back(v);
  sorted_valid_ = false;
}

void SampleStats::AddAll(const std::vector<double>& vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  sorted_valid_ = false;
}

double SampleStats::Sum() const {
  double s = 0;
  for (double v : samples_) s += v;
  return s;
}

double SampleStats::Mean() const {
  if (samples_.empty()) throw std::logic_error("Mean of empty sample");
  return Sum() / static_cast<double>(samples_.size());
}

double SampleStats::Min() const {
  if (samples_.empty()) throw std::logic_error("Min of empty sample");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  if (samples_.empty()) throw std::logic_error("Max of empty sample");
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = Mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleStats::Quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Quantile of empty sample");
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  EnsureSorted();
  // Nearest-rank: smallest index i with (i+1)/n >= q.
  const std::size_t n = sorted_.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted_[rank - 1];
}

void SampleStats::Reset() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void SampleStats::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

}  // namespace ah
