// Core scalar types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace ah {

/// Node identifier. Dense, 0-based.
using NodeId = std::uint32_t;
/// Edge identifier (index into a CSR arc array). Dense, 0-based.
using EdgeId = std::uint32_t;
/// Non-negative edge weight (e.g., travel time in deciseconds).
using Weight = std::uint32_t;
/// Accumulated path length. 64-bit so sums of Weight cannot overflow.
using Dist = std::uint64_t;
/// Hierarchy level (0 = least important).
using Level = std::int32_t;
/// Strict-total-order rank of a node inside a hierarchy.
using Rank = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();
inline constexpr Weight kMaxWeight = std::numeric_limits<Weight>::max();

}  // namespace ah
