// Descriptive statistics used by the experiment harnesses (Figure 3 quantiles,
// query-time summaries).
#pragma once

#include <cstddef>
#include <vector>

namespace ah {

/// Accumulates samples and reports order statistics. Quantiles use the
/// nearest-rank definition on the sorted sample, matching how the paper
/// reports "90% quantile" / "99% quantile" of arterial-edge counts.
class SampleStats {
 public:
  void Add(double v);
  void AddAll(const std::vector<double>& vs);

  std::size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;
  double StdDev() const;
  /// Nearest-rank quantile; q in [0, 1]. Quantile(0.5) is the median.
  double Quantile(double q) const;

  /// Clears all samples.
  void Reset();

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace ah
