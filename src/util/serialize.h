// Little-endian binary (de)serialization helpers for index persistence.
//
// Format discipline: every top-level artifact writes a 4-byte magic and a
// version byte; vectors are length-prefixed with a 64-bit count; all
// integers are fixed-width little-endian. Readers validate magic/version
// and throw std::runtime_error on any truncation or mismatch.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace ah {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
    if (!out_) throw std::runtime_error("BinaryWriter: write failed");
  }

  void Magic(const char tag[4], std::uint8_t version) {
    out_.write(tag, 4);
    Pod(version);
  }

  template <typename T>
  void Vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod<std::uint64_t>(values.size());
    if (!values.empty()) {
      out_.write(reinterpret_cast<const char*>(values.data()),
                 static_cast<std::streamsize>(values.size() * sizeof(T)));
      if (!out_) throw std::runtime_error("BinaryWriter: write failed");
    }
  }

 private:
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  template <typename T>
  T Pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in_) throw std::runtime_error("BinaryReader: truncated input");
    return value;
  }

  /// Reads and validates a magic tag + version; returns the version.
  std::uint8_t Magic(const char tag[4], std::uint8_t max_version) {
    char got[4];
    in_.read(got, 4);
    if (!in_ || std::memcmp(got, tag, 4) != 0) {
      throw std::runtime_error(std::string("BinaryReader: bad magic, want ") +
                               std::string(tag, 4));
    }
    const std::uint8_t version = Pod<std::uint8_t>();
    if (version > max_version) {
      throw std::runtime_error("BinaryReader: unsupported version");
    }
    return version;
  }

  template <typename T>
  std::vector<T> Vector(std::uint64_t max_count = (1ull << 40)) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = Pod<std::uint64_t>();
    if (count > max_count) {
      throw std::runtime_error("BinaryReader: implausible vector size");
    }
    std::vector<T> values(count);
    if (count > 0) {
      in_.read(reinterpret_cast<char*>(values.data()),
               static_cast<std::streamsize>(count * sizeof(T)));
      if (!in_) throw std::runtime_error("BinaryReader: truncated input");
    }
    return values;
  }

 private:
  std::istream& in_;
};

}  // namespace ah
