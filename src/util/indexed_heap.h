// Indexed binary min-heap with decrease-key, the priority queue behind every
// Dijkstra variant in the library.
//
// Keys are 64-bit distances; items are dense ids in [0, capacity). The heap
// stores a position index per item so DecreaseKey is O(log n) and Contains is
// O(1). Reset is O(#touched) — the heap tracks which slots it dirtied so that
// one instance can be reused across many small searches without paying O(n)
// per search (critical for the per-window Dijkstras in arterial computation).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace ah {

class IndexedHeap {
 public:
  IndexedHeap() = default;
  explicit IndexedHeap(std::size_t capacity) { Resize(capacity); }

  /// Grows the id universe to `capacity`. Existing state is preserved.
  void Resize(std::size_t capacity) {
    if (capacity > pos_.size()) pos_.resize(capacity, kAbsent);
  }

  std::size_t capacity() const { return pos_.size(); }
  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  /// True if `id` is currently queued.
  bool Contains(std::uint32_t id) const {
    return id < pos_.size() && pos_[id] != kAbsent;
  }

  /// Key of a queued item. Precondition: Contains(id).
  Dist KeyOf(std::uint32_t id) const {
    assert(Contains(id));
    return heap_[pos_[id]].key;
  }

  /// Inserts `id` with `key`, or lowers its key if already queued with a
  /// larger one. Returns true if the entry was inserted or improved.
  bool PushOrDecrease(std::uint32_t id, Dist key) {
    assert(id < pos_.size());
    std::uint32_t p = pos_[id];
    if (p == kAbsent) {
      pos_[id] = static_cast<std::uint32_t>(heap_.size());
      heap_.push_back(Entry{key, id});
      SiftUp(heap_.size() - 1);
      touched_.push_back(id);
      return true;
    }
    if (key < heap_[p].key) {
      heap_[p].key = key;
      SiftUp(p);
      return true;
    }
    return false;
  }

  /// Smallest key in the heap. Precondition: !Empty().
  Dist MinKey() const {
    assert(!heap_.empty());
    return heap_[0].key;
  }

  /// Id holding the smallest key. Precondition: !Empty().
  std::uint32_t MinId() const {
    assert(!heap_.empty());
    return heap_[0].id;
  }

  /// Removes and returns the (key, id) pair with the smallest key.
  std::pair<Dist, std::uint32_t> PopMin() {
    assert(!heap_.empty());
    Entry top = heap_[0];
    pos_[top.id] = kAbsent;
    if (heap_.size() > 1) {
      heap_[0] = heap_.back();
      pos_[heap_[0].id] = 0;
      heap_.pop_back();
      SiftDown(0);
    } else {
      heap_.pop_back();
    }
    return {top.key, top.id};
  }

  /// Clears the queue in O(#items ever touched since last Clear).
  void Clear() {
    for (std::uint32_t id : touched_) pos_[id] = kAbsent;
    touched_.clear();
    heap_.clear();
  }

 private:
  struct Entry {
    Dist key;
    std::uint32_t id;
  };

  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  void SiftUp(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (heap_[parent].key <= e.key) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
  }

  void SiftDown(std::size_t i) {
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].key < heap_[child].key) ++child;
      if (heap_[child].key >= e.key) break;
      heap_[i] = heap_[child];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = child;
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint32_t> touched_;
};

}  // namespace ah
