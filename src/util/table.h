// Plain-text table renderer for bench output; prints the rows/series the
// paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace ah {

/// Collects rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row. Short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, rule, rows) as a string.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

  std::size_t NumRows() const { return rows_.size(); }

  /// Formats a double with `digits` decimals.
  static std::string Num(double v, int digits = 2);
  /// Formats an integer with thousands separators (1,234,567).
  static std::string Int(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ah
