#include "util/table.h"

#include <cstdio>
#include <sstream>

namespace ah {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) rule += "  ";
    rule.append(width[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::Print() const {
  std::fputs(Render().c_str(), stdout);
  std::fflush(stdout);
}

std::string TextTable::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TextTable::Int(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace ah
