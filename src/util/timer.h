// Wall-clock timing helper for preprocessing and query measurements.
#pragma once

#include <chrono>

namespace ah {

class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction / Restart.
  double Micros() const { return Seconds() * 1e6; }

  /// Milliseconds elapsed since construction / Restart.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ah
