// Window-local shortest paths and spanning-path / arterial-edge extraction
// (Definition 1 of the paper).
//
// A *local path* of a 4×4 window B has at most one edge crossing B's
// boundary; we therefore search the subgraph induced by the nodes inside B,
// extended by one-hop-out *terminal* nodes that can end (or start) a path
// but are never expanded. A *spanning path* is a local shortest path whose
// endpoints lie on opposite sides of a bisector, neither in a cell adjacent
// to it. Every spanning-path edge that crosses the bisector is an arterial
// edge of B.
//
// Ties between equal-length paths are broken by Appendix A's nuance
// perturbation so that "the" local shortest path is unique.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"
#include "graph/light_graph.h"
#include "hgrid/window.h"
#include "perturb/perturb.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

/// A directed arterial (or pseudo-arterial) edge found in a window.
struct ArterialEdge {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;
  BisectorAxis axis = BisectorAxis::kVertical;

  friend bool operator==(const ArterialEdge& a, const ArterialEdge& b) {
    return a.tail == b.tail && a.head == b.head && a.axis == b.axis;
  }
};

/// Reusable processor: one instance amortizes its buffers across the many
/// windows of a grid level. Not thread-safe.
class WindowProcessor {
 public:
  /// `graph` and `coords` must outlive the processor. `coords` is indexed by
  /// the same node ids as `graph`.
  WindowProcessor(const LightGraph& graph, const std::vector<Point>& coords,
                  const Nuance& nuance);

  /// Computes the arterial edges of window `w` on `grid`. `cells` must index
  /// the *active* nodes (the processor searches only among them plus their
  /// one-hop-out terminals). Results are deduplicated and deterministic.
  ///
  /// `max_sources` caps the number of qualified endpoints searched from (a
  /// deterministic every-k-th subsample when exceeded) — used by the
  /// Figure-3 measurement on coarse grids where a window may contain a
  /// large fraction of the graph.
  std::vector<ArterialEdge> Process(
      const SquareGrid& grid, const Window& w, const CellIndex& cells,
      std::size_t max_sources = std::numeric_limits<std::size_t>::max());

  /// Number of local Dijkstra runs performed so far (diagnostics).
  std::size_t NumSearches() const { return num_searches_; }

 private:
  // Local node bookkeeping: global node -> dense local slot, timestamped so
  // reset is O(#window nodes).
  struct LocalNode {
    NodeId global = kInvalidNode;
    Cell cell;
    bool inside = false;    // Inside the window (expandable).
    bool terminal = false;  // One hop outside (absorb only).
  };

  // Registers a node; returns its local slot.
  std::uint32_t Localize(NodeId global, const Cell& cell, bool inside);

  // Dijkstra from local source over the window subgraph; fills dist_/par_.
  void RunLocalSearch(std::uint32_t source);

  // Extracts arterial edges from all spanning paths rooted at `source` for
  // one axis, appending to `out`.
  void CollectSpanningPaths(const Window& w, std::uint32_t source,
                            BisectorAxis axis,
                            std::vector<ArterialEdge>* out);

  const LightGraph& graph_;
  const std::vector<Point>& coords_;
  const Nuance& nuance_;

  // Global -> local mapping (timestamped).
  std::vector<std::uint32_t> local_of_;
  std::vector<std::uint32_t> local_stamp_;
  std::uint32_t round_ = 0;

  // Per-window local arrays.
  std::vector<LocalNode> nodes_;
  std::vector<std::vector<std::pair<std::uint32_t, Weight>>> adj_;

  // Per-search labels.
  IndexedHeap heap_;
  std::vector<TieDist> dist_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> search_stamp_;
  std::uint32_t search_round_ = 0;

  std::vector<NodeId> window_nodes_;  // Scratch for cell collection.
  std::size_t num_searches_ = 0;
};

}  // namespace ah
