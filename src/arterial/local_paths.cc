#include "arterial/local_paths.h"

#include <algorithm>

namespace ah {

WindowProcessor::WindowProcessor(const LightGraph& graph,
                                 const std::vector<Point>& coords,
                                 const Nuance& nuance)
    : graph_(graph),
      coords_(coords),
      nuance_(nuance),
      local_of_(graph.NumNodes(), 0),
      local_stamp_(graph.NumNodes(), 0) {}

std::uint32_t WindowProcessor::Localize(NodeId global, const Cell& cell,
                                        bool inside) {
  if (local_stamp_[global] == round_) return local_of_[global];
  const std::uint32_t local = static_cast<std::uint32_t>(nodes_.size());
  local_stamp_[global] = round_;
  local_of_[global] = local;
  nodes_.push_back(LocalNode{global, cell, inside, !inside});
  if (adj_.size() <= local) adj_.emplace_back();
  adj_[local].clear();
  return local;
}

void WindowProcessor::RunLocalSearch(std::uint32_t source) {
  ++search_round_;
  ++num_searches_;
  heap_.Resize(nodes_.size());
  if (dist_.size() < nodes_.size()) {
    dist_.resize(nodes_.size());
    parent_.resize(nodes_.size());
    search_stamp_.resize(nodes_.size(), 0);
  }
  // search_stamp_ entries beyond previous rounds may be stale but can never
  // equal the new round value (monotone counter), so no reset is needed.
  heap_.Clear();
  dist_[source] = TieDist{0, 0};
  parent_[source] = 0xffffffffu;
  search_stamp_[source] = search_round_;
  heap_.PushOrDecrease(source, 0);
  while (!heap_.Empty()) {
    auto [key, u] = heap_.PopMin();
    const TieDist du = dist_[u];
    if (key > du.length) continue;  // Superseded entry.
    // Terminals absorb: only the source itself may expand from outside.
    if (!nodes_[u].inside && u != source) continue;
    for (const auto& [v, w] : adj_[u]) {
      const TieDist nd =
          du.Plus(w, nuance_.ArcNuance(nodes_[u].global, nodes_[v].global));
      if (search_stamp_[v] != search_round_ || nd < dist_[v]) {
        search_stamp_[v] = search_round_;
        dist_[v] = nd;
        parent_[v] = u;
        heap_.PushOrDecrease(v, nd.length);
      }
    }
  }
}

void WindowProcessor::CollectSpanningPaths(const Window& w,
                                           std::uint32_t source,
                                           BisectorAxis axis,
                                           std::vector<ArterialEdge>* out) {
  const Cell source_cell = nodes_[source].cell;
  for (std::uint32_t t = 0; t < nodes_.size(); ++t) {
    if (t == source || search_stamp_[t] != search_round_) continue;
    if (nodes_[source].terminal && nodes_[t].terminal) continue;
    if (!w.QualifiesAsSpanningEndpoints(source_cell, nodes_[t].cell, axis)) {
      continue;
    }
    // Walk the parent chain; report the first bisector-crossing edge seen
    // from the target side (the paper allows an arbitrary choice when the
    // path crosses several times).
    std::uint32_t cur = t;
    while (parent_[cur] != 0xffffffffu) {
      const std::uint32_t prev = parent_[cur];
      if (w.CrossesBisector(nodes_[prev].cell, nodes_[cur].cell, axis)) {
        out->push_back(
            ArterialEdge{nodes_[prev].global, nodes_[cur].global, axis});
        break;
      }
      cur = prev;
    }
  }
}

std::vector<ArterialEdge> WindowProcessor::Process(const SquareGrid& grid,
                                                   const Window& w,
                                                   const CellIndex& cells,
                                                   std::size_t max_sources) {
  ++round_;
  nodes_.clear();

  cells.CollectWindowNodes(w, &window_nodes_);
  std::vector<ArterialEdge> result;
  if (window_nodes_.empty()) return result;

  // Quick qualification precheck: a spanning path needs qualified cells on
  // both sides of some bisector. Terminals can extend by one cell beyond the
  // window, so treat border-strip occupancy as potentially qualified.
  bool west = false, east = false, south = false, north = false;
  for (NodeId v : window_nodes_) {
    const Cell c = grid.CellOf(coords_[v]);
    const std::int32_t rc = w.RelCol(c);
    const std::int32_t rr = w.RelRow(c);
    west |= rc <= 0;
    east |= rc >= 3;
    south |= rr <= 0;
    north |= rr >= 3;
  }
  const bool vertical_possible = west & east;
  const bool horizontal_possible = south & north;
  if (!vertical_possible && !horizontal_possible) return result;

  // Localize inside nodes, then wire the window-induced subgraph plus
  // one-hop-out terminals.
  for (NodeId v : window_nodes_) {
    Localize(v, grid.CellOf(coords_[v]), /*inside=*/true);
  }
  const std::size_t num_inside = nodes_.size();
  for (std::uint32_t lu = 0; lu < num_inside; ++lu) {
    const NodeId u = nodes_[lu].global;
    for (const Arc& a : graph_.OutArcs(u)) {
      std::uint32_t lv;
      if (local_stamp_[a.head] == round_ && nodes_[local_of_[a.head]].inside) {
        lv = local_of_[a.head];
      } else {
        lv = Localize(a.head, grid.CellOf(coords_[a.head]), /*inside=*/false);
      }
      adj_[lu].push_back({lv, a.weight});
    }
    // Terminal tails: nodes one hop outside with an arc into the window can
    // start a local path whose first edge crosses the boundary.
    for (const Arc& a : graph_.InArcs(u)) {
      if (local_stamp_[a.head] == round_ && nodes_[local_of_[a.head]].inside) {
        continue;  // Inside tail: its out-arc was (or will be) added above.
      }
      const std::uint32_t lt =
          Localize(a.head, grid.CellOf(coords_[a.head]), /*inside=*/false);
      adj_[lt].push_back({lu, a.weight});
    }
  }

  // One search per qualified endpoint covers both axes.
  std::vector<std::uint32_t> sources;
  for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
    const Cell c = nodes_[s].cell;
    const std::int32_t rc = w.RelCol(c);
    const std::int32_t rr = w.RelRow(c);
    const bool v_q = vertical_possible && (rc <= 0 || rc >= 3);
    const bool h_q = horizontal_possible && (rr <= 0 || rr >= 3);
    if (v_q || h_q) sources.push_back(s);
  }
  const std::size_t step =
      sources.size() > max_sources
          ? (sources.size() + max_sources - 1) / max_sources
          : 1;
  for (std::size_t idx = 0; idx < sources.size(); idx += step) {
    const std::uint32_t s = sources[idx];
    const Cell c = nodes_[s].cell;
    const std::int32_t rc = w.RelCol(c);
    const std::int32_t rr = w.RelRow(c);
    const bool v_q = vertical_possible && (rc <= 0 || rc >= 3);
    const bool h_q = horizontal_possible && (rr <= 0 || rr >= 3);
    RunLocalSearch(s);
    if (v_q) CollectSpanningPaths(w, s, BisectorAxis::kVertical, &result);
    if (h_q) CollectSpanningPaths(w, s, BisectorAxis::kHorizontal, &result);
  }

  std::sort(result.begin(), result.end(),
            [](const ArterialEdge& a, const ArterialEdge& b) {
              if (a.tail != b.tail) return a.tail < b.tail;
              if (a.head != b.head) return a.head < b.head;
              return a.axis < b.axis;
            });
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace ah
