#include "arterial/dimension.h"

#include <algorithm>

#include "arterial/local_paths.h"
#include "geo/grid.h"
#include "graph/light_graph.h"
#include "hgrid/window.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ah {

std::vector<DimensionRow> MeasureArterialDimension(
    const Graph& g, int r_lo, int r_hi, std::size_t max_windows_per_r,
    std::uint64_t seed, std::size_t max_sources_per_window) {
  std::vector<DimensionRow> rows;
  if (g.NumNodes() == 0) return rows;
  r_lo = std::max(r_lo, 2);

  const Box box = g.BoundingBox();
  const LightGraph lg = LightGraph::FromGraph(g);
  const Nuance nuance(seed);
  WindowProcessor processor(lg, g.Coords(), nuance);

  std::vector<NodeId> all_nodes(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) all_nodes[v] = v;

  Rng rng(seed);
  for (int r = r_lo; r <= r_hi; ++r) {
    const SquareGrid grid = SquareGrid::Covering(box, 1 << r);
    const CellIndex cells(grid, g.Coords(), all_nodes);
    std::vector<Window> windows = EnumerateWindows(grid, cells);

    DimensionRow row;
    row.resolution = r;
    row.windows = windows.size();
    if (windows.size() > max_windows_per_r) {
      // Partial Fisher-Yates: uniform sample prefix.
      for (std::size_t i = 0; i < max_windows_per_r; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.Uniform(windows.size() - i));
        std::swap(windows[i], windows[j]);
      }
      windows.resize(max_windows_per_r);
    }
    row.sampled = windows.size();

    SampleStats stats;
    for (const Window& w : windows) {
      stats.Add(static_cast<double>(
          processor.Process(grid, w, cells, max_sources_per_window).size()));
    }
    if (!stats.Empty()) {
      row.mean = stats.Mean();
      row.q90 = stats.Quantile(0.90);
      row.q99 = stats.Quantile(0.99);
      row.max = stats.Max();
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace ah
