#include "arterial/arterial.h"

#include <algorithm>

#include "graph/light_graph.h"

namespace ah {

ArterialLevels ComputeArterialLevels(const Graph& g, const GridHierarchy& gh,
                                     const Nuance& nuance) {
  const std::size_t n = g.NumNodes();
  const std::int32_t h = gh.Depth();

  std::vector<NodeId> all_nodes(n);
  for (NodeId v = 0; v < n; ++v) all_nodes[v] = v;

  const LightGraph lg = LightGraph::FromGraph(g);
  WindowProcessor processor(lg, g.Coords(), nuance);

  ArterialLevels result;
  result.node_level.assign(n, 0);
  result.arterial_per_level.resize(h);

  for (std::int32_t i = 1; i <= h; ++i) {
    const SquareGrid& grid = gh.Grid(i);
    const CellIndex cells(grid, g.Coords(), all_nodes);
    std::vector<ArterialEdge> level_edges;
    for (const Window& w : EnumerateWindows(grid, cells)) {
      auto found = processor.Process(grid, w, cells);
      level_edges.insert(level_edges.end(), found.begin(), found.end());
    }
    std::sort(level_edges.begin(), level_edges.end(),
              [](const ArterialEdge& a, const ArterialEdge& b) {
                if (a.tail != b.tail) return a.tail < b.tail;
                if (a.head != b.head) return a.head < b.head;
                return a.axis < b.axis;
              });
    level_edges.erase(std::unique(level_edges.begin(), level_edges.end()),
                      level_edges.end());

    // A node's level is the highest grid level whose arterial edges touch it.
    for (const ArterialEdge& e : level_edges) {
      result.node_level[e.tail] = std::max(result.node_level[e.tail], i);
      result.node_level[e.head] = std::max(result.node_level[e.head], i);
    }
    result.arterial_per_level[i - 1] = std::move(level_edges);
  }
  return result;
}

}  // namespace ah
