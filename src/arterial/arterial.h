// Arterial-edge levels on the full graph (Section 3.1) — the level
// assignment of the FC index: an edge has level i if it is arterial in grid
// R_i but in no coarser grid; a node has the maximum level of its incident
// edges. This recomputes local shortest paths per level on the *original*
// graph, which is exactly why FC does not scale (§3.3) — AH replaces it with
// the incremental scheme in core/level_assigner.
#pragma once

#include <vector>

#include "arterial/local_paths.h"
#include "graph/graph.h"
#include "hgrid/grid_hierarchy.h"
#include "util/types.h"

namespace ah {

struct ArterialLevels {
  /// Final level per node, in [0, h].
  std::vector<Level> node_level;
  /// arterial_per_level[i-1] = deduplicated arterial edges of grid R_i.
  std::vector<std::vector<ArterialEdge>> arterial_per_level;
};

/// Computes A_1..A_h and node levels on the original graph.
ArterialLevels ComputeArterialLevels(const Graph& g, const GridHierarchy& gh,
                                     const Nuance& nuance);

}  // namespace ah
