// The arterial-dimension measurement behind Figure 3 and Assumption 1:
// per-window arterial-edge counts (mean / 90% / 99% quantile / max) as a
// function of the grid resolution r (grid = 2^r × 2^r cells).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ah {

struct DimensionRow {
  int resolution = 0;          ///< r: the grid has 2^r × 2^r cells.
  std::size_t windows = 0;     ///< Non-empty 4×4 windows measured.
  std::size_t sampled = 0;     ///< Windows actually processed (≤ windows).
  double mean = 0;
  double q90 = 0;
  double q99 = 0;
  double max = 0;
};

/// Measures arterial-edge counts for every non-empty window on grids
/// 2^r × 2^r for r in [r_lo, r_hi]. When a grid has more than
/// `max_windows_per_r` non-empty windows, a uniform random sample of that
/// size is measured instead (the paper measures all; sampling keeps coarse
/// resolutions tractable and is reported in the `sampled` column).
/// `max_sources_per_window` bounds the local searches per window the same
/// way for the very coarse grids whose windows span much of the graph.
std::vector<DimensionRow> MeasureArterialDimension(
    const Graph& g, int r_lo, int r_hi, std::size_t max_windows_per_r = 4000,
    std::uint64_t seed = 7, std::size_t max_sources_per_window = 96);

}  // namespace ah
