#include "perturb/traffic_feed.h"

#include <algorithm>
#include <cmath>

namespace ah {

TrafficFeed::TrafficFeed(const Graph& g, const TrafficFeedParams& params)
    : params_(params), rng_(params.seed) {
  arcs_.reserve(g.NumArcs());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Arc& a : g.OutArcs(v)) {
      arcs_.push_back(WeightDelta{v, a.head, a.weight});
    }
  }
  batch_size_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(params.batch_fraction *
                                  static_cast<double>(arcs_.size())));
}

std::vector<WeightDelta> TrafficFeed::NextBatch() {
  std::vector<WeightDelta> batch;
  batch.reserve(batch_size_);
  if (arcs_.empty()) return batch;
  for (std::size_t i = 0; i < batch_size_; ++i) {
    const WeightDelta& base = arcs_[rng_.Uniform(arcs_.size())];
    // log-uniform factor in [1/speedup, slowdown]: symmetric congestion /
    // free-flow swings around the base weight.
    const double lo = std::log(1.0 / params_.speedup_factor);
    const double hi = std::log(params_.slowdown_factor);
    const double factor = std::exp(lo + (hi - lo) * rng_.UniformDouble());
    const double w = static_cast<double>(base.weight) * factor;
    const Weight clamped = static_cast<Weight>(std::clamp(
        w, 1.0, static_cast<double>(kMaxWeight - 1)));
    batch.push_back(WeightDelta{base.tail, base.head, clamped});
  }
  return batch;
}

}  // namespace ah
