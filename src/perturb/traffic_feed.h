// Synthetic live-traffic feed: the deterministic churn generator behind the
// incremental-rebuild stress tests and the time-to-fresh-epoch bench.
//
// Road-network serving sees arc weights move constantly while the topology
// stays put (the weights-only update model of graph/weight_update.h). A
// TrafficFeed replays that pattern synthetically: every batch perturbs a
// fixed fraction of arcs multiplicatively around their *original* weights —
// anchoring on the base weight keeps the weight distribution stationary
// under indefinite churn instead of drifting toward the clamp bounds.
// Batches are a pure function of (graph, params): bit-identical across runs
// at any call rate, per the repo's RNG discipline (util/rng.h only).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/weight_update.h"
#include "util/rng.h"
#include "util/types.h"

namespace ah {

struct TrafficFeedParams {
  /// Fraction of the graph's arcs each NextBatch() perturbs (>= 1 arc).
  /// The ROADMAP live-feed target — 1% of arcs per minute — is one
  /// 0.01-fraction batch per minute.
  double batch_fraction = 0.01;
  /// Multiplicative perturbation range around the base weight: a congested
  /// rush-hour arc up to slowdown_factor slower, an off-peak arc down to
  /// 1/speedup_factor of its base cost.
  double slowdown_factor = 4.0;
  double speedup_factor = 2.0;
  std::uint64_t seed = 20130624;  // SIGMOD'13.
};

class TrafficFeed {
 public:
  explicit TrafficFeed(const Graph& g, const TrafficFeedParams& params = {});

  /// The next batch of weight deltas: BatchSize() arcs drawn uniformly
  /// (with replacement) with new weights in
  /// [base/speedup_factor, base*slowdown_factor], clamped to valid weights.
  /// Every delta names an existing arc, so queueing them never fails.
  std::vector<WeightDelta> NextBatch();

  std::size_t BatchSize() const { return batch_size_; }
  std::size_t NumArcs() const { return arcs_.size(); }

 private:
  std::vector<WeightDelta> arcs_;  // (tail, head, *base* weight), arc order
  std::size_t batch_size_;
  TrafficFeedParams params_;
  Rng rng_;
};

}  // namespace ah
