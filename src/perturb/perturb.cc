#include "perturb/perturb.h"

namespace ah {

std::uint64_t Nuance::ArcNuance(NodeId u, NodeId v) const {
  // Two rounds of SplitMix64-style mixing over (seed, u, v).
  std::uint64_t z = seed_ ^ (static_cast<std::uint64_t>(u) << 32) ^ v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z & ((1ULL << 40) - 1);
}

}  // namespace ah
