// Appendix A: weight perturbation for unique local shortest paths.
//
// Instead of materializing k-dimensional nuance vectors on every edge, each
// arc (u,v) gets a deterministic pseudo-random *nuance* from a seeded hash.
// Path comparison is lexicographic on (length, total nuance): equal-length
// paths are ordered by nuance, which breaks ties exactly like the paper's
// ρ(P) and collides with probability ~2^-40 per comparison.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace ah {

class Nuance {
 public:
  explicit Nuance(std::uint64_t seed = 0x6c62272e07bb0142ULL) : seed_(seed) {}

  /// Nuance ρ(e) of arc u→v; uniform in [0, 2^40).
  std::uint64_t ArcNuance(NodeId u, NodeId v) const;

 private:
  std::uint64_t seed_;
};

/// Length + accumulated nuance with lexicographic comparison — the totally
/// ordered "perturbed length" of a path.
struct TieDist {
  Dist length = kInfDist;
  std::uint64_t nuance = 0;

  friend bool operator<(const TieDist& a, const TieDist& b) {
    if (a.length != b.length) return a.length < b.length;
    return a.nuance < b.nuance;
  }
  friend bool operator==(const TieDist& a, const TieDist& b) {
    return a.length == b.length && a.nuance == b.nuance;
  }
  friend bool operator<=(const TieDist& a, const TieDist& b) {
    return a < b || a == b;
  }

  /// Extends the path by an arc.
  TieDist Plus(Weight w, std::uint64_t arc_nuance) const {
    return TieDist{length + w, nuance + arc_nuance};
  }
};

}  // namespace ah
