#include "silc/silc_index.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "routing/dijkstra.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ah {

namespace {

/// Per-thread scratch for the per-source sweep: one Dijkstra engine plus
/// the first-hop/color buffers it fills for each source.
struct SourceScratch {
  explicit SourceScratch(const Graph& g)
      : dijkstra(g), first_hop(g.NumNodes()), colors_by_pos(g.NumNodes()) {}

  Dijkstra dijkstra;
  std::vector<NodeId> first_hop;
  std::vector<NodeId> colors_by_pos;
};

/// Sources are swept in fixed chunks of this many; each chunk's blocks land
/// in chunk-private storage and are concatenated in chunk order, so the
/// final table is bit-identical at any thread count.
constexpr std::size_t kSourceChunk = 64;

}  // namespace

SilcIndex SilcIndex::Build(const Graph& g, const SilcParams& params) {
  Timer timer;
  SilcIndex index;
  index.graph_ = &g;
  const std::size_t n = g.NumNodes();

  const MortonSpace space(g.BoundingBox());
  index.morton_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    index.morton_[v] = space.MortonOf(g.Coord(v));
  }

  // Global Morton order shared by all per-source quadtrees.
  std::vector<NodeId> by_morton(n);
  std::iota(by_morton.begin(), by_morton.end(), 0);
  std::sort(by_morton.begin(), by_morton.end(), [&](NodeId a, NodeId b) {
    if (index.morton_[a] != index.morton_[b]) {
      return index.morton_[a] < index.morton_[b];
    }
    return a < b;
  });
  std::vector<std::uint64_t> sorted_mortons(n);
  std::vector<std::uint32_t> pos_of(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sorted_mortons[i] = index.morton_[by_morton[i]];
    pos_of[by_morton[i]] = i;
  }

  // One full Dijkstra per source — the build's O(n² log n) core and, until
  // it was chunk-parallelized, its last single-threaded loop (the piece
  // that made SILC rebuilds impractical inside the registry's background
  // build worker). Chunks land in a small ring of reusable slot buffers and
  // are merged in chunk order as soon as they are ready: producers may run
  // at most `window` chunks ahead of the merge, so the transient block
  // storage is O(threads) chunks instead of all of them at once, while the
  // in-order merge keeps the table bit-identical at any thread count.
  const std::size_t threads =
      params.build_threads == 0 ? WorkerThreads() : params.build_threads;
  struct ChunkOut {
    std::vector<QuadBlock> blocks;
    std::vector<std::uint32_t> per_source;  // block count per source
  };
  const std::size_t num_chunks =
      n == 0 ? 0 : (n + kSourceChunk - 1) / kSourceChunk;
  const std::size_t window = std::max<std::size_t>(2, 2 * threads);
  std::vector<ChunkOut> slots(std::min(window, std::max<std::size_t>(
                                                   1, num_chunks)));
  std::vector<std::unique_ptr<SourceScratch>> scratch(
      std::max<std::size_t>(1, std::min(threads, num_chunks)));

  index.src_first_.assign(n + 1, 0);
  NodeId merged_source = 0;
  const WindowedChunkStats chunk_stats = ParallelChunksWindowed(
      n, kSourceChunk, window,
      [&](std::size_t chunk_index, std::size_t begin, std::size_t end,
          std::size_t tid) {
        if (!scratch[tid]) scratch[tid] = std::make_unique<SourceScratch>(g);
        SourceScratch& local = *scratch[tid];
        ChunkOut& out = slots[chunk_index % slots.size()];
        out.blocks.clear();
        out.per_source.clear();
        out.per_source.reserve(end - begin);
        for (NodeId s = static_cast<NodeId>(begin); s < end; ++s) {
          local.dijkstra.Run(s);
          // First hop per destination, propagated along the settle order
          // (parents settle before children).
          local.first_hop[s] = s;
          for (NodeId v : local.dijkstra.SettledNodes()) {
            if (v == s) continue;
            const NodeId p = local.dijkstra.ParentOf(v);
            local.first_hop[v] = p == s ? v : local.first_hop[p];
          }
          for (NodeId v = 0; v < n; ++v) {
            local.colors_by_pos[pos_of[v]] =
                local.dijkstra.DistTo(v) == kInfDist ? kInvalidNode
                                                     : local.first_hop[v];
          }
          const std::size_t before = out.blocks.size();
          BuildColorBlocks(sorted_mortons, local.colors_by_pos, &out.blocks);
          out.per_source.push_back(
              static_cast<std::uint32_t>(out.blocks.size() - before));
        }
      },
      [&](std::size_t chunk_index, std::size_t /*begin*/,
          std::size_t /*end*/) {
        ChunkOut& chunk = slots[chunk_index % slots.size()];
        std::size_t offset = 0;
        for (const std::uint32_t count : chunk.per_source) {
          index.src_first_[merged_source++] = index.blocks_.size();
          index.blocks_.insert(index.blocks_.end(),
                               chunk.blocks.begin() + offset,
                               chunk.blocks.begin() + offset + count);
          offset += count;
        }
      },
      threads);
  index.src_first_[n] = index.blocks_.size();

  index.build_stats_.seconds = timer.Seconds();
  index.build_stats_.total_blocks = index.blocks_.size();
  index.build_stats_.max_live_chunks = chunk_stats.max_live_chunks;
  index.build_stats_.chunk_window = window;
  return index;
}

NodeId SilcIndex::NextHop(NodeId s, NodeId t) const {
  if (s == t) return kInvalidNode;
  return LookupColor(BlocksOf(s), morton_[t]);
}

Dist SilcIndex::Distance(NodeId s, NodeId t) const {
  if (s == t) return 0;
  Dist total = 0;
  NodeId cur = s;
  const std::size_t n = NumNodes();
  for (std::size_t steps = 0; steps <= n; ++steps) {
    if (cur == t) return total;
    const NodeId next = NextHop(cur, t);
    if (next == kInvalidNode) return kInfDist;
    const Weight w = graph_->ArcWeight(cur, next);
    if (w == kMaxWeight) return kInfDist;  // Inconsistent index.
    total += w;
    cur = next;
  }
  return kInfDist;  // Cycle guard tripped.
}

PathResult SilcIndex::Path(NodeId s, NodeId t) const {
  PathResult result;
  result.nodes.push_back(s);
  if (s == t) {
    result.length = 0;
    return result;
  }
  Dist total = 0;
  NodeId cur = s;
  const std::size_t n = NumNodes();
  for (std::size_t steps = 0; steps <= n; ++steps) {
    const NodeId next = NextHop(cur, t);
    if (next == kInvalidNode) {
      result.nodes.clear();
      return result;
    }
    const Weight w = graph_->ArcWeight(cur, next);
    if (w == kMaxWeight) {
      result.nodes.clear();
      return result;
    }
    total += w;
    cur = next;
    result.nodes.push_back(cur);
    if (cur == t) {
      result.length = total;
      return result;
    }
  }
  result.nodes.clear();
  return result;
}

std::size_t SilcIndex::SizeBytes() const {
  return morton_.size() * sizeof(std::uint64_t) +
         src_first_.size() * sizeof(std::uint64_t) +
         blocks_.size() * sizeof(QuadBlock);
}

}  // namespace ah
