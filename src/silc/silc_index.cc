#include "silc/silc_index.h"

#include <algorithm>
#include <numeric>

#include "routing/dijkstra.h"
#include "util/timer.h"

namespace ah {

SilcIndex SilcIndex::Build(const Graph& g) {
  Timer timer;
  SilcIndex index;
  index.graph_ = &g;
  const std::size_t n = g.NumNodes();

  const MortonSpace space(g.BoundingBox());
  index.morton_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    index.morton_[v] = space.MortonOf(g.Coord(v));
  }

  // Global Morton order shared by all per-source quadtrees.
  std::vector<NodeId> by_morton(n);
  std::iota(by_morton.begin(), by_morton.end(), 0);
  std::sort(by_morton.begin(), by_morton.end(), [&](NodeId a, NodeId b) {
    if (index.morton_[a] != index.morton_[b]) {
      return index.morton_[a] < index.morton_[b];
    }
    return a < b;
  });
  std::vector<std::uint64_t> sorted_mortons(n);
  std::vector<std::uint32_t> pos_of(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sorted_mortons[i] = index.morton_[by_morton[i]];
    pos_of[by_morton[i]] = i;
  }

  Dijkstra dijkstra(g);
  std::vector<NodeId> first_hop(n);
  std::vector<NodeId> colors_by_pos(n);
  index.src_first_.assign(n + 1, 0);

  for (NodeId s = 0; s < n; ++s) {
    dijkstra.Run(s);
    // First hop per destination, propagated along the settle order (parents
    // settle before children).
    first_hop[s] = s;
    for (NodeId v : dijkstra.SettledNodes()) {
      if (v == s) continue;
      const NodeId p = dijkstra.ParentOf(v);
      first_hop[v] = p == s ? v : first_hop[p];
    }
    for (NodeId v = 0; v < n; ++v) {
      colors_by_pos[pos_of[v]] =
          dijkstra.DistTo(v) == kInfDist ? kInvalidNode : first_hop[v];
    }
    index.src_first_[s] = index.blocks_.size();
    BuildColorBlocks(sorted_mortons, colors_by_pos, &index.blocks_);
  }
  index.src_first_[n] = index.blocks_.size();
  // src_first_ currently holds start offsets; already monotone by
  // construction (sources processed in id order).

  index.build_stats_.seconds = timer.Seconds();
  index.build_stats_.total_blocks = index.blocks_.size();
  return index;
}

NodeId SilcIndex::NextHop(NodeId s, NodeId t) const {
  if (s == t) return kInvalidNode;
  return LookupColor(BlocksOf(s), morton_[t]);
}

Dist SilcIndex::Distance(NodeId s, NodeId t) const {
  if (s == t) return 0;
  Dist total = 0;
  NodeId cur = s;
  const std::size_t n = NumNodes();
  for (std::size_t steps = 0; steps <= n; ++steps) {
    if (cur == t) return total;
    const NodeId next = NextHop(cur, t);
    if (next == kInvalidNode) return kInfDist;
    const Weight w = graph_->ArcWeight(cur, next);
    if (w == kMaxWeight) return kInfDist;  // Inconsistent index.
    total += w;
    cur = next;
  }
  return kInfDist;  // Cycle guard tripped.
}

PathResult SilcIndex::Path(NodeId s, NodeId t) const {
  PathResult result;
  result.nodes.push_back(s);
  if (s == t) {
    result.length = 0;
    return result;
  }
  Dist total = 0;
  NodeId cur = s;
  const std::size_t n = NumNodes();
  for (std::size_t steps = 0; steps <= n; ++steps) {
    const NodeId next = NextHop(cur, t);
    if (next == kInvalidNode) {
      result.nodes.clear();
      return result;
    }
    const Weight w = graph_->ArcWeight(cur, next);
    if (w == kMaxWeight) {
      result.nodes.clear();
      return result;
    }
    total += w;
    cur = next;
    result.nodes.push_back(cur);
    if (cur == t) {
      result.length = total;
      return result;
    }
  }
  result.nodes.clear();
  return result;
}

std::size_t SilcIndex::SizeBytes() const {
  return morton_.size() * sizeof(std::uint64_t) +
         src_first_.size() * sizeof(std::uint64_t) +
         blocks_.size() * sizeof(QuadBlock);
}

}  // namespace ah
