#include "silc/quadtree.h"

#include <algorithm>
#include <cassert>

namespace ah {

std::uint64_t MortonInterleave32(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint64_t v) {
    v &= 0xffffffffULL;
    v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
    v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
    v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
    v = (v | (v << 2)) & 0x3333333333333333ULL;
    v = (v | (v << 1)) & 0x5555555555555555ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

MortonSpace::MortonSpace(const Box& box) {
  assert(!box.Empty());
  origin_x_ = box.min_x;
  origin_y_ = box.min_y;
  side_ = std::max<std::int64_t>(box.SquareSide(), 1);
}

std::uint64_t MortonSpace::MortonOf(const Point& p) const {
  auto normalize = [&](std::int64_t coord, std::int64_t origin) {
    std::int64_t off = coord - origin;
    if (off < 0) off = 0;
    if (off > side_) off = side_;
    // Monotone map onto [0, 2^32): (off / side) * (2^32 - 1).
    const double scaled =
        static_cast<double>(off) / static_cast<double>(side_) * 4294967295.0;
    return static_cast<std::uint32_t>(scaled);
  };
  return MortonInterleave32(normalize(p.x, origin_x_),
                            normalize(p.y, origin_y_));
}

namespace {

struct BlockBuilder {
  const std::vector<std::uint64_t>& mortons;
  const std::vector<NodeId>& colors;
  std::vector<std::uint32_t> next_diff;  // Position of next color change.
  std::vector<QuadBlock>* out;

  void Recurse(std::uint8_t depth, std::uint64_t start, std::uint32_t lo,
               std::uint32_t hi) {
    if (lo >= hi) return;
    if (next_diff[lo] >= hi || depth == 32) {
      // Uniform (or fully resolved): one block covers the quadrant. At
      // depth 32 multiple equal codes may disagree; the first color wins
      // (distinct nodes at identical coordinates — pathological input).
      out->push_back(QuadBlock{start, colors[lo], depth});
      return;
    }
    const std::uint64_t quarter = 1ULL << (2 * (32 - depth - 1));
    std::uint32_t cursor = lo;
    for (int child = 0; child < 4; ++child) {
      const std::uint64_t child_start =
          start + static_cast<std::uint64_t>(child) * quarter;
      const std::uint64_t child_end = child_start + quarter;
      // Codes are sorted: the child range is a contiguous slice.
      std::uint32_t child_hi = cursor;
      if (child == 3) {
        child_hi = hi;
      } else {
        child_hi = static_cast<std::uint32_t>(
            std::lower_bound(mortons.begin() + cursor, mortons.begin() + hi,
                             child_end) -
            mortons.begin());
      }
      Recurse(depth + 1, child_start, cursor, child_hi);
      cursor = child_hi;
    }
  }
};

}  // namespace

void BuildColorBlocks(const std::vector<std::uint64_t>& sorted_mortons,
                      const std::vector<NodeId>& colors_by_pos,
                      std::vector<QuadBlock>* out) {
  assert(sorted_mortons.size() == colors_by_pos.size());
  const std::uint32_t n = static_cast<std::uint32_t>(sorted_mortons.size());
  if (n == 0) return;
  BlockBuilder builder{sorted_mortons, colors_by_pos, {}, out};
  builder.next_diff.assign(n, n);
  for (std::uint32_t i = n - 1; i-- > 0;) {
    builder.next_diff[i] = colors_by_pos[i] == colors_by_pos[i + 1]
                               ? builder.next_diff[i + 1]
                               : i + 1;
  }
  builder.Recurse(0, 0, 0, n);
}

NodeId LookupColor(std::span<const QuadBlock> blocks, std::uint64_t morton) {
  // Last block with start <= morton; blocks are disjoint and sorted.
  auto it = std::upper_bound(
      blocks.begin(), blocks.end(), morton,
      [](std::uint64_t m, const QuadBlock& b) { return m < b.start; });
  if (it == blocks.begin()) return kInvalidNode;
  --it;
  const int shift = 2 * (32 - it->depth);
  const std::uint64_t length =
      shift >= 64 ? 0 : (1ULL << shift);  // depth 0 spans everything.
  if (it->depth == 0 || morton - it->start < length) return it->color;
  return kInvalidNode;
}

}  // namespace ah
