// SILC (Spatially Induced Linkage Cognizance; Samet et al., SIGMOD'08) —
// the worst-case-efficient baseline of the paper's evaluation.
//
// For every source node the index stores the quadtree of *first hops*: space
// is split into maximal blocks whose destinations all leave the source via
// the same adjacent vertex. A query walks the path hop by hop, locating the
// target in the current node's quadtree at each step — so distance and path
// queries cost the same (which is exactly the behaviour Figures 8/9 show
// for SILC). Preprocessing runs one Dijkstra per node (O(n² log n)) and the
// block count grows super-linearly, which is why the paper (and this
// reproduction) only runs SILC on the smaller datasets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "routing/path.h"
#include "silc/quadtree.h"
#include "util/types.h"

namespace ah {

struct SilcBuildStats {
  double seconds = 0;
  std::size_t total_blocks = 0;
  /// Peak number of per-chunk block buffers live during the build — bounded
  /// by the claim window (O(build threads)), not by the chunk count, so the
  /// build's transient RSS no longer scales with the graph size.
  std::size_t max_live_chunks = 0;
  /// The claim window the build ran with (how far producers may run ahead
  /// of the in-order merge).
  std::size_t chunk_window = 0;
};

struct SilcParams {
  /// Worker threads for the per-source Dijkstra sweep (0 = the
  /// util/parallel.h WorkerThreads() default). The index is bit-identical
  /// at any thread count: sources are processed in fixed chunks whose block
  /// lists are merged in chunk order.
  std::size_t build_threads = 0;
};

class SilcIndex {
 public:
  /// Builds first-hop quadtrees for all sources. `g` must outlive the index.
  static SilcIndex Build(const Graph& g, const SilcParams& params = {});

  std::size_t NumNodes() const { return src_first_.size() - 1; }
  const SilcBuildStats& build_stats() const { return build_stats_; }

  /// Raw index tables, exposed so the build-determinism test can assert
  /// bit-identity across thread counts.
  const std::vector<QuadBlock>& blocks() const { return blocks_; }
  const std::vector<std::uint64_t>& src_offsets() const { return src_first_; }

  /// First hop on the shortest path s→t (kInvalidNode if t is unreachable
  /// or s == t).
  NodeId NextHop(NodeId s, NodeId t) const;

  /// Distance by walking the next-hop chain (kInfDist if unreachable).
  Dist Distance(NodeId s, NodeId t) const;

  /// Full path by walking the next-hop chain.
  PathResult Path(NodeId s, NodeId t) const;

  std::size_t SizeBytes() const;

 private:
  std::span<const QuadBlock> BlocksOf(NodeId s) const {
    return {blocks_.data() + src_first_[s], blocks_.data() + src_first_[s + 1]};
  }

  const Graph* graph_ = nullptr;
  std::vector<std::uint64_t> morton_;       // Morton code per node.
  std::vector<std::uint64_t> src_first_;    // Per-source block offsets.
  std::vector<QuadBlock> blocks_;
  SilcBuildStats build_stats_;
};

}  // namespace ah
