// Morton-order quadtree machinery for SILC (Samet et al., SIGMOD'08).
//
// SILC stores, for every source node, the quadtree decomposition of space
// into maximal blocks whose destinations all share the same *first hop* on
// the shortest path from the source. Destinations are kept in one global
// Morton order; a per-source decomposition is then a disjoint set of Morton
// intervals, each a (start, depth, color) block, and point lookup is a
// single binary search.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/point.h"
#include "util/types.h"

namespace ah {

/// Interleaves two 32-bit values into a 64-bit Morton code (x even bits).
std::uint64_t MortonInterleave32(std::uint32_t x, std::uint32_t y);

/// Maps points in a bounding box onto 64-bit Morton codes (monotone per
/// axis; distinct points get distinct codes unless they collide in the
/// 2^32 × 2^32 normalized grid, which requires coordinates closer than
/// side / 2^32).
class MortonSpace {
 public:
  MortonSpace() = default;
  explicit MortonSpace(const Box& box);

  std::uint64_t MortonOf(const Point& p) const;

 private:
  std::int64_t origin_x_ = 0;
  std::int64_t origin_y_ = 0;
  std::int64_t side_ = 1;
};

/// One uniform-color block: Morton interval [start, start + 4^(32-depth)).
struct QuadBlock {
  std::uint64_t start = 0;
  NodeId color = kInvalidNode;  ///< First hop (kInvalidNode = unreachable).
  std::uint8_t depth = 0;       ///< 0 = whole space, 32 = single code.

  bool operator==(const QuadBlock&) const = default;
};

/// Decomposes `colors_by_pos` (aligned with `sorted_mortons`, both in
/// ascending Morton order) into maximal uniform quad blocks, appended to
/// `out` in ascending `start` order.
void BuildColorBlocks(const std::vector<std::uint64_t>& sorted_mortons,
                      const std::vector<NodeId>& colors_by_pos,
                      std::vector<QuadBlock>* out);

/// Point lookup in a disjoint, start-sorted block list.
NodeId LookupColor(std::span<const QuadBlock> blocks, std::uint64_t morton);

}  // namespace ah
