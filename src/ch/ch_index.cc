#include "ch/ch_index.h"

#include <numeric>
#include <stdexcept>

#include "hier/greedy_order.h"
#include "hier/repair_kernel.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace ah {

ChIndex ChIndex::Build(const Graph& g, const ChParams& params) {
  Timer timer;
  const std::size_t n = g.NumNodes();
  ContractionEngine engine(n, ArcsOf(g), params.contraction);
  auto certs = std::make_shared<WitnessCertTable>();
  engine.RecordWitnessCerts(certs.get());

  std::vector<NodeId> all(n);
  std::iota(all.begin(), all.end(), 0);
  const GreedyOrderParams order_params{params.edge_diff_weight,
                                       params.neighbor_weight};
  const std::vector<NodeId> order =
      ContractGreedySubset(engine, all, order_params);

  std::vector<Rank> rank(n, 0);
  for (Rank r = 0; r < order.size(); ++r) rank[order[r]] = r;

  certs->Finalize(n);

  ChIndex index;
  index.search_graph_ = SearchGraph(n, engine.EmittedArcs(), std::move(rank));
  index.build_stats_.seconds = timer.Seconds();
  index.build_stats_.shortcuts = engine.NumShortcutsAdded();
  index.witness_certs_ = std::move(certs);
  return index;
}

ChIndex ChIndex::RebuildWithFrozenOrder(const Graph& g, const ChIndex& previous,
                                        const ChParams& params) {
  Timer timer;
  const std::size_t n = g.NumNodes();
  if (n != previous.NumNodes()) {
    throw std::invalid_argument(
        "ChIndex::RebuildWithFrozenOrder: node count changed");
  }
  std::vector<Rank> rank(n, 0);
  for (NodeId v = 0; v < n; ++v) rank[v] = previous.RankOf(v);
  RepairResult repaired = RepairContraction(
      g, previous.search_graph(), params.contraction, previous.witness_certs());

  ChIndex index;
  index.search_graph_ = SearchGraph(n, repaired.arcs, std::move(rank));
  index.build_stats_.seconds = timer.Seconds();
  index.build_stats_.shortcuts = repaired.shortcuts;
  index.witness_certs_ = std::move(repaired.certs);
  return index;
}

void ChIndex::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Magic("AHCH", 1);
  search_graph_.Save(out);
  w.Pod(build_stats_.seconds);
  w.Pod<std::uint64_t>(build_stats_.shortcuts);
}

ChIndex ChIndex::Load(std::istream& in) {
  BinaryReader r(in);
  r.Magic("AHCH", 1);
  ChIndex index;
  index.search_graph_ = SearchGraph::Load(in);
  index.build_stats_.seconds = r.Pod<double>();
  index.build_stats_.shortcuts = r.Pod<std::uint64_t>();
  return index;
}

Dist ChQuery::Distance(NodeId s, NodeId t) { return search_.Distance(s, t); }

PathResult ChQuery::Path(NodeId s, NodeId t) {
  PathResult result;
  result.length = search_.Distance(s, t);
  if (result.length == kInfDist) return result;
  if (s == t) {
    result.nodes = {s};
    return result;
  }
  result.nodes =
      index_.search_graph().UnpackPath(search_.HierarchyPath());
  return result;
}

}  // namespace ah
