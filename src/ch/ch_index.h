// Contraction Hierarchies (Geisberger et al., WEA'08) — the paper's main
// practical competitor. Nodes are contracted in lazy greedy order by edge
// difference (+ contracted-neighbor tie-breaking); queries run the
// bidirectional upward search of hier/upward_query.h.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "hier/search_graph.h"
#include "hier/upward_query.h"
#include "hier/witness_certs.h"
#include "routing/path.h"

namespace ah {

struct ChParams {
  ContractionParams contraction;
  /// Priority = edge_diff_weight*(shortcuts added − arcs removed)
  ///          + neighbor_weight*(contracted neighbors).
  int edge_diff_weight = 16;
  int neighbor_weight = 4;
};

struct ChBuildStats {
  double seconds = 0;
  std::size_t shortcuts = 0;
};

class ChIndex {
 public:
  /// Builds the hierarchy; O(n log n)-ish in practice.
  static ChIndex Build(const Graph& g, const ChParams& params = {});

  /// Weights-only rebuild: re-contracts `g` in `previous`'s frozen node
  /// order, recomputing shortcut weights and witness checks but skipping
  /// the greedy ordering phase (the dominant build cost). Witness-checked
  /// contraction is exact for *any* total order, so the result answers
  /// queries on `g` exactly; `g` must have the same node count as the graph
  /// `previous` was built on (weight deltas never change topology). Throws
  /// std::invalid_argument on a node-count mismatch. Deterministic: same
  /// graph + same previous order ⇒ bit-identical index.
  static ChIndex RebuildWithFrozenOrder(const Graph& g,
                                        const ChIndex& previous,
                                        const ChParams& params = {});

  std::size_t NumNodes() const { return search_graph_.NumNodes(); }
  const SearchGraph& search_graph() const { return search_graph_; }
  const ChBuildStats& build_stats() const { return build_stats_; }
  Rank RankOf(NodeId v) const { return search_graph_.RankOf(v); }

  std::size_t SizeBytes() const { return search_graph_.SizeBytes(); }

  /// In-memory witness-certificate table for frozen-order repairs (see
  /// hier/witness_certs.h). Build and RebuildWithFrozenOrder populate it;
  /// it is never serialized, so a loaded index repairs cert-less once and
  /// regains its table in the process. May be null.
  const WitnessCertTable* witness_certs() const {
    return witness_certs_.get();
  }

  /// Binary persistence (magic "AHCH").
  void Save(std::ostream& out) const;
  static ChIndex Load(std::istream& in);

 private:
  SearchGraph search_graph_;
  ChBuildStats build_stats_;
  std::shared_ptr<const WitnessCertTable> witness_certs_;
};

/// Query object holding reusable search state (one per thread).
class ChQuery {
 public:
  explicit ChQuery(const ChIndex& index)
      : index_(index), search_(index.search_graph()) {}

  /// Exact distance; kInfDist if disconnected.
  Dist Distance(NodeId s, NodeId t);

  /// Exact shortest path in the original graph.
  PathResult Path(NodeId s, NodeId t);

  const QueryStats& LastStats() const { return search_.Stats(); }

 private:
  const ChIndex& index_;
  BidirUpwardSearch search_;
};

}  // namespace ah
