// Frozen-order repair kernel: weights-only re-contraction of an existing
// hierarchy over flat arrays.
//
// Witness-checked contraction is exact for ANY total node order, so after a
// weights-only graph change the live epoch's node order can be reused
// wholesale and the expensive greedy-order simulation skipped. This kernel
// goes one step further than re-running the dynamic ContractionEngine under
// a frozen order: because the order is known up front and the previous
// epoch's arc set is — by construction — a near-superset of the new one,
// the whole re-contraction runs over the previous topology laid out as
// static CSR arrays. No per-node adjacency vectors, no linear-scan
// add-or-improve, no detach bookkeeping; rank comparisons replace every
// "is this node still active / excluded" check.
//
// The equivalence argument, with r(v) the frozen rank of v:
//
//  * Processing nodes in ascending rank and relaxing each triangle
//    u→v→w at v's step reproduces the dynamic engine's weights exactly:
//    an arc (x,y) only ever improves through midpoints ranked below both
//    endpoints, and all of those have been processed by the time the arc
//    is read. At step r an arc's current weight therefore equals its
//    weight in the dynamic engine at the moment v is contracted.
//
//  * An arc "exists" at step r iff its current weight is finite: original
//    graph edges are seeded up front, and a previous-epoch shortcut
//    becomes finite exactly when its midpoint's step relaxes it — the
//    same moment the dynamic engine would have inserted it.
//
//  * Candidate pairs present in the previous topology are relaxed without
//    a witness search. Skipping a witness is always sound — it only
//    forgoes pruning a redundant arc, never adds a wrong one — and
//    distances are preserved either way. The repaired hierarchy may keep
//    a few shortcuts a from-scratch build would prune (the topology
//    tracks the previous epoch), which is why registry policies mix in
//    periodic from-scratch rebuilds to reset any drift.
//
//  * Pairs NOT in the previous topology (rare after a weights-only
//    change) get the full treatment: a certificate replay when the
//    previous build recorded the witness path that pruned the pair
//    (hier/witness_certs.h — a few arc lookups instead of a search),
//    otherwise a hop-bounded witness prefilter, then a target-counted
//    Dijkstra witness search, all running over "arcs with finite weight
//    whose endpoints rank above r" — exactly the active overlay of the
//    dynamic engine. Survivors are kept in small per-node side lists
//    that participate in later candidate enumeration, relaxation and
//    witness searches like any other arc.
//
// The result is the full arc set of the repaired hierarchy, ready to feed
// a SearchGraph under the frozen rank permutation.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "hier/contraction.h"
#include "hier/search_graph.h"
#include "hier/witness_certs.h"

namespace ah {

struct RepairResult {
  /// Every arc of the repaired hierarchy (original edges and shortcuts),
  /// with final weights and recomputed midpoints.
  std::vector<HierArc> arcs;
  /// Arcs added or improved during the repair (parity with
  /// ContractionEngine::NumShortcutsAdded semantics).
  std::size_t shortcuts = 0;
  /// Witness-search effort — the cost the hinted topology avoids.
  std::size_t witness_searches = 0;
  std::size_t witness_settled = 0;
  /// Certificate replays that pruned a pair without a search.
  std::size_t cert_replays = 0;
  /// Certificate table for the NEXT repair: one replayable witness per
  /// pair this repair pruned by certificate or search. In-memory only.
  std::shared_ptr<const WitnessCertTable> certs;
};

/// Re-contracts `g` under the frozen node order of `prev`, reusing the
/// previous topology as repair hints. `g` must have the same node set and
/// arc structure as the graph `prev` was built from (weights may differ
/// arbitrarily); throws std::invalid_argument otherwise, which rebuild
/// callers treat as "fall back to a from-scratch build". `certs`, if
/// non-null, is the finalized certificate table the previous build or
/// repair emitted; pairs it covers skip their witness search when the
/// recorded witness still holds. Null is always valid (first repair after
/// a Load, or a backend that does not record certificates).
RepairResult RepairContraction(const Graph& g, const SearchGraph& prev,
                               const ContractionParams& params = {},
                               const WitnessCertTable* certs = nullptr);

}  // namespace ah
