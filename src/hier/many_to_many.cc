#include "hier/many_to_many.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/parallel.h"

namespace ah {

namespace {

using RawEntry = std::pair<NodeId, TargetBuckets::Entry>;

/// Backward upward search from targets[k], appending one (node, entry) pair
/// per settled node.
void FillBucketsFor(const SearchGraph& sg, NodeId target, std::uint32_t k,
                    UpwardSearchScratch& scratch, std::vector<RawEntry>* raw) {
  ++scratch.round;
  scratch.heap.Clear();
  scratch.stamp[target] = scratch.round;
  scratch.dist[target] = 0;
  scratch.heap.PushOrDecrease(target, 0);
  while (!scratch.heap.Empty()) {
    auto [d, u] = scratch.heap.PopMin();
    raw->push_back({u, TargetBuckets::Entry{k, d}});
    for (const UpArc& a : sg.UpIn(u)) {
      const Dist nd = d + a.weight;
      if (scratch.stamp[a.node] != scratch.round || nd < scratch.dist[a.node]) {
        scratch.stamp[a.node] = scratch.round;
        scratch.dist[a.node] = nd;
        scratch.heap.PushOrDecrease(a.node, nd);
      }
    }
  }
}

}  // namespace

TargetBuckets::TargetBuckets(const SearchGraph& sg,
                             std::span<const NodeId> targets,
                             std::size_t num_threads)
    : num_targets_(targets.size()) {
  const std::size_t n = sg.NumNodes();
  first_.assign(n + 1, 0);
  if (targets.empty()) return;
  if (num_threads == 0) num_threads = WorkerThreads();

  // Per-chunk raw entries: workers only touch their own chunk's vector and
  // their own per-thread scratch. The canonical sort below makes the packed
  // CSR independent of chunk boundaries and completion order.
  const std::size_t chunk_size =
      std::max<std::size_t>(1, targets.size() / (num_threads * 4));
  const std::size_t num_chunks = (targets.size() + chunk_size - 1) / chunk_size;
  std::vector<std::vector<RawEntry>> chunk_raw(num_chunks);
  std::vector<std::unique_ptr<UpwardSearchScratch>> scratch(num_threads);
  ParallelChunks(
      targets.size(), chunk_size,
      [&](std::size_t chunk, std::size_t begin, std::size_t end,
          std::size_t tid) {
        if (!scratch[tid]) {
          scratch[tid] = std::make_unique<UpwardSearchScratch>(n);
        }
        for (std::size_t k = begin; k < end; ++k) {
          FillBucketsFor(sg, targets[k], static_cast<std::uint32_t>(k),
                         *scratch[tid], &chunk_raw[chunk]);
        }
      },
      num_threads);

  std::size_t total = 0;
  for (const auto& part : chunk_raw) total += part.size();
  std::vector<RawEntry> raw;
  raw.reserve(total);
  for (auto& part : chunk_raw) {
    raw.insert(raw.end(), part.begin(), part.end());
    part.clear();
    part.shrink_to_fit();
  }
  // (node, target_index) keys are unique — each backward search settles a
  // node at most once — so this sort is a total order.
  std::sort(raw.begin(), raw.end(), [](const RawEntry& a, const RawEntry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.target_index < b.second.target_index;
  });
  for (const auto& [node, entry] : raw) ++first_[node + 1];
  for (std::size_t v = 0; v < n; ++v) first_[v + 1] += first_[v];
  entries_.resize(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) entries_[i] = raw[i].second;
}

void CombineFromSource(const SearchGraph& sg, const TargetBuckets& buckets,
                       NodeId s, UpwardSearchScratch& scratch,
                       std::span<Dist> out) {
  ++scratch.round;
  scratch.heap.Clear();
  scratch.stamp[s] = scratch.round;
  scratch.dist[s] = 0;
  scratch.heap.PushOrDecrease(s, 0);
  while (!scratch.heap.Empty()) {
    auto [d, u] = scratch.heap.PopMin();
    for (const TargetBuckets::Entry& entry : buckets.BucketOf(u)) {
      const Dist via = d + entry.dist;
      if (via < out[entry.target_index]) out[entry.target_index] = via;
    }
    for (const UpArc& a : sg.UpOut(u)) {
      const Dist nd = d + a.weight;
      if (scratch.stamp[a.node] != scratch.round || nd < scratch.dist[a.node]) {
        scratch.stamp[a.node] = scratch.round;
        scratch.dist[a.node] = nd;
        scratch.heap.PushOrDecrease(a.node, nd);
      }
    }
  }
}

ManyToMany::ManyToMany(const SearchGraph& sg, std::vector<NodeId> targets,
                       std::size_t num_threads)
    : sg_(sg),
      targets_(std::move(targets)),
      buckets_(sg, targets_, num_threads) {}

std::vector<Dist> ManyToMany::DistancesFrom(std::span<const NodeId> sources,
                                            std::size_t num_threads) const {
  const std::size_t num_targets = targets_.size();
  std::vector<Dist> result(sources.size() * num_targets, kInfDist);
  if (result.empty()) return result;
  if (num_threads == 0) num_threads = WorkerThreads();

  // Row i of the result belongs to sources[i] alone, so workers write
  // disjoint ranges and the min-combine per row is a pure function of the
  // (immutable) buckets — no merge step, deterministic at any thread count.
  std::vector<std::unique_ptr<UpwardSearchScratch>> scratch(num_threads);
  ParallelChunks(
      sources.size(),
      std::max<std::size_t>(1, sources.size() / (num_threads * 4)),
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end,
          std::size_t tid) {
        if (!scratch[tid]) {
          scratch[tid] = std::make_unique<UpwardSearchScratch>(sg_.NumNodes());
        }
        for (std::size_t i = begin; i < end; ++i) {
          CombineFromSource(
              sg_, buckets_, sources[i], *scratch[tid],
              {result.data() + i * num_targets, num_targets});
        }
      },
      num_threads);
  return result;
}

}  // namespace ah
