// Many-to-many distance matrices over a contracted hierarchy (the bucket
// technique generalized from one_to_many.h): one backward upward search per
// target t ∈ T stores (target, distance) bucket entries at every settled
// node; one forward upward search per source s ∈ S then min-combines over
// the buckets it touches. A |S|×|T| matrix costs O(|S|+|T|) upward searches
// instead of |S|·|T| bidirectional queries — the workload of the paper's §1
// motivating scenario (ranking POI sets by network distance) and of every
// fleet-dispatch / travel-time-table request the server's `m` verb answers.
//
// Works on any SearchGraph (CH or AH); exact on any graph by the standard
// up-down path argument. Both phases parallelize with util/parallel.h:
// bucket construction chunks the targets (per-chunk raw entries, one
// canonical sort), the combine phase chunks the sources (per-thread scratch,
// each source writing its own disjoint result row) — output is bit-identical
// at any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hier/search_graph.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

/// Reusable per-thread state for one upward search (forward or backward):
/// heap plus timestamped distance labels, so back-to-back searches cost
/// O(#touched) cleanup, not O(n).
struct UpwardSearchScratch {
  explicit UpwardSearchScratch(std::size_t num_nodes)
      : heap(num_nodes), dist(num_nodes, kInfDist), stamp(num_nodes, 0) {}

  IndexedHeap heap;
  std::vector<Dist> dist;
  std::vector<std::uint32_t> stamp;
  std::uint32_t round = 0;
};

/// CSR buckets for a fixed target set: entry (k, d) at node u means the
/// backward upward search from targets[k] settled u at distance d, i.e.
/// d(u → targets[k]) = d along a down-path. Immutable after construction;
/// any number of threads may combine against one instance concurrently.
class TargetBuckets {
 public:
  struct Entry {
    std::uint32_t target_index;
    Dist dist;
  };

  /// One backward upward search per target, chunked across `num_threads`
  /// workers (0 = the util/parallel.h WorkerThreads() default). The packed
  /// CSR is canonically sorted by (node, target_index), so the result is
  /// bit-identical at any thread count.
  TargetBuckets(const SearchGraph& sg, std::span<const NodeId> targets,
                std::size_t num_threads = 0);

  std::span<const Entry> BucketOf(NodeId u) const {
    return {entries_.data() + first_[u], entries_.data() + first_[u + 1]};
  }

  std::size_t NumEntries() const { return entries_.size(); }
  std::size_t NumTargets() const { return num_targets_; }

 private:
  std::vector<std::uint64_t> first_;  // size NumNodes() + 1
  std::vector<Entry> entries_;
  std::size_t num_targets_ = 0;
};

/// Forward upward search from `s`, min-combining `buckets` into `out`
/// (`out.size() == buckets.NumTargets()`, pre-filled with kInfDist by the
/// caller). Each settled node u contributes d_fwd(u) + bucket distance for
/// every entry in its bucket — the up-down path peaking at u.
void CombineFromSource(const SearchGraph& sg, const TargetBuckets& buckets,
                       NodeId s, UpwardSearchScratch& scratch,
                       std::span<Dist> out);

/// The many-to-many engine: buckets built once for a target set, then any
/// number of source batches answered against them. Immutable after
/// construction (DistancesFrom allocates per-call scratch), so one instance
/// may serve concurrent callers.
class ManyToMany {
 public:
  /// Preprocesses `targets` (see TargetBuckets). `num_threads` parallelizes
  /// the bucket construction only.
  ManyToMany(const SearchGraph& sg, std::vector<NodeId> targets,
             std::size_t num_threads = 0);

  const std::vector<NodeId>& targets() const { return targets_; }

  /// Row-major |sources| × |targets()| matrix: row i holds the distances
  /// from sources[i] to every target, kInfDist for unreachable cells.
  /// Sources fan out across `num_threads` workers (0 = WorkerThreads()),
  /// each writing its own disjoint rows — bit-identical at any thread
  /// count. Thread-safe (const).
  std::vector<Dist> DistancesFrom(std::span<const NodeId> sources,
                                  std::size_t num_threads = 0) const;

  /// Total bucket entries (space diagnostics).
  std::size_t NumBucketEntries() const { return buckets_.NumEntries(); }

 private:
  const SearchGraph& sg_;
  std::vector<NodeId> targets_;
  TargetBuckets buckets_;
};

}  // namespace ah
