#include "hier/witness_certs.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ah {

void WitnessCertTable::Record(NodeId v, NodeId u, NodeId w,
                              const NodeId* interior, std::size_t count) {
  assert(first_.empty() && "Record after Finalize");
  if (pool_.size() + count > std::numeric_limits<std::uint32_t>::max()) {
    return;  // Pool offset would overflow; dropping a cert is always safe.
  }
  WitnessCert cert;
  cert.u = u;
  cert.w = w;
  cert.first = static_cast<std::uint32_t>(pool_.size());
  cert.count = static_cast<std::uint32_t>(count);
  pool_.insert(pool_.end(), interior, interior + count);
  recs_.push_back(Rec{v, cert});
}

void WitnessCertTable::Finalize(std::size_t n) {
  assert(first_.empty() && "Finalize called twice");
  // Records arrive grouped by contracted node (one Contract call / repair
  // step each), so a counting scatter by v beats a comparison sort; only
  // the small per-v slices need ordering by (u, w) afterwards.
  first_.assign(n + 1, 0);
  for (const Rec& r : recs_) {
    assert(r.v < n);
    ++first_[r.v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) first_[v + 1] += first_[v];
  std::vector<Rec> sorted(recs_.size());
  {
    std::vector<std::uint64_t> cur(first_.begin(), first_.end() - 1);
    for (const Rec& r : recs_) sorted[cur[r.v]++] = r;
  }
  recs_ = std::move(sorted);
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(recs_.begin() + first_[v], recs_.begin() + first_[v + 1],
              [](const Rec& a, const Rec& b) {
                if (a.cert.u != b.cert.u) return a.cert.u < b.cert.u;
                return a.cert.w < b.cert.w;
              });
  }
}

const WitnessCert* WitnessCertTable::Find(NodeId v, NodeId u, NodeId w) const {
  assert(!first_.empty() && "Find before Finalize");
  if (v + 1 >= first_.size()) return nullptr;
  const auto lo = recs_.begin() + first_[v];
  const auto hi = recs_.begin() + first_[v + 1];
  const auto it =
      std::lower_bound(lo, hi, std::pair<NodeId, NodeId>(u, w),
                       [](const Rec& r, const std::pair<NodeId, NodeId>& key) {
                         if (r.cert.u != key.first) return r.cert.u < key.first;
                         return r.cert.w < key.second;
                       });
  if (it == hi || it->cert.u != u || it->cert.w != w) return nullptr;
  return &it->cert;
}

}  // namespace ah
