#include "hier/contraction.h"

#include <algorithm>
#include <cassert>

namespace ah {

std::vector<HierArc> ArcsOf(const Graph& g) {
  std::vector<HierArc> arcs;
  arcs.reserve(g.NumArcs());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Arc& a : g.OutArcs(v)) {
      arcs.push_back(HierArc{v, a.head, a.weight, kInvalidNode});
    }
  }
  return arcs;
}

ContractionEngine::ContractionEngine(std::size_t n,
                                     const std::vector<HierArc>& arcs,
                                     ContractionParams params)
    : params_(params),
      out_(n),
      in_(n),
      contracted_(n, false),
      contracted_neighbors_(n, 0),
      witness_heap_(n),
      witness_dist_(n, kInfDist),
      witness_stamp_(n, 0),
      witness_parent_(n, kInvalidNode),
      witness_parent_stamp_(n, 0),
      target_stamp_(n, 0) {
  for (const HierArc& a : arcs) {
    assert(a.tail < n && a.head < n);
    if (a.tail == a.head) continue;
    AddOrImprove(a.tail, a.head, a.weight, a.mid);
  }
  shortcuts_added_ = 0;  // Loading the initial arcs is not "adding shortcuts".
}

bool ContractionEngine::AddOrImprove(NodeId u, NodeId w, Weight weight,
                                     NodeId mid) {
  for (OutArcRec& rec : out_[u]) {
    if (rec.head != w) continue;
    if (rec.weight <= weight) return false;
    rec.weight = weight;
    rec.mid = mid;
    for (InArcRec& irec : in_[w]) {
      if (irec.tail == u) {
        irec.weight = weight;
        irec.mid = mid;
        break;
      }
    }
    ++shortcuts_added_;
    return true;
  }
  out_[u].push_back(OutArcRec{w, weight, mid});
  in_[w].push_back(InArcRec{u, weight, mid});
  ++shortcuts_added_;
  return true;
}

void ContractionEngine::RunWitnessSearch(NodeId u, NodeId excluded) {
  // Bound: the largest via among still-unresolved targets. It shrinks as
  // targets settle, and the search stops the moment the frontier distance
  // exceeds it — every unsettled target then has a tentative label >= the
  // frontier distance > its via, so its add decision is already final.
  // Decisions are therefore bit-identical to an exhaustive search to the
  // initial bound.
  Dist bound = 0;
  for (const Target& t : targets_) bound = std::max(bound, t.via);
  ++witness_round_;
  ++witness_searches_;
  witness_heap_.Clear();
  witness_stamp_[u] = witness_round_;
  witness_dist_[u] = 0;
  witness_parent_[u] = kInvalidNode;
  witness_parent_stamp_[u] = witness_round_;
  witness_heap_.PushOrDecrease(u, 0);
  std::size_t settled = 0;
  while (!witness_heap_.Empty()) {
    auto [d, x] = witness_heap_.PopMin();
    if (d > bound) break;
    if (++settled > params_.witness_settle_limit) break;
    ++witness_settled_;
    if (target_stamp_[x] == target_round_) {
      // x's label is final: resolve it and re-tighten the bound.
      for (std::size_t i = 0; i < targets_.size(); ++i) {
        if (targets_[i].w == x) {
          targets_[i] = targets_.back();
          targets_.pop_back();
          break;
        }
      }
      if (targets_.empty()) break;
      bound = 0;
      for (const Target& t : targets_) bound = std::max(bound, t.via);
      if (d > bound) break;
    }
    for (const OutArcRec& a : out_[x]) {
      // Active adjacency lists never point at contracted nodes (Contract
      // detaches them), so only the excluded node needs skipping.
      if (a.head == excluded) continue;
      const Dist nd = d + a.weight;
      if (nd > bound) continue;
      if (witness_stamp_[a.head] != witness_round_ ||
          nd < witness_dist_[a.head]) {
        witness_stamp_[a.head] = witness_round_;
        witness_dist_[a.head] = nd;
        witness_parent_[a.head] = x;
        witness_parent_stamp_[a.head] = witness_round_;
        witness_heap_.PushOrDecrease(a.head, nd);
      }
    }
  }
}

void ContractionEngine::RecordPruneCert(NodeId v, NodeId u, NodeId w) {
  // Walk w's parent chain back to u, collecting the interior nodes. Every
  // hop must be parent-stamped with the current search round; a label the
  // prefilter produced (or a stale chain from an earlier round) fails the
  // stamp check and simply records nothing — losing a certificate is
  // always safe, the pair just gets searched again next repair.
  cert_path_.clear();
  NodeId x = w;
  while (x != u) {
    if (witness_parent_stamp_[x] != witness_round_) return;
    x = witness_parent_[x];
    if (x == kInvalidNode) return;
    if (x == u) break;
    cert_path_.push_back(x);
    if (cert_path_.size() > params_.witness_settle_limit + 2) return;
  }
  std::reverse(cert_path_.begin(), cert_path_.end());
  cert_sink_->Record(v, u, w, cert_path_.data(), cert_path_.size());
}

void ContractionEngine::RunWitnessPrefilter(NodeId u, NodeId excluded) {
  ++witness_round_;
  // Label u's active out-neighbors with their one-arc distance.
  ring_.clear();
  for (const OutArcRec& a : out_[u]) {
    if (a.head == excluded) continue;
    witness_stamp_[a.head] = witness_round_;
    witness_dist_[a.head] = a.weight;
    ring_.push_back(a.head);
  }
  // A target is resolved when some labelled path (a real overlay path
  // avoiding `excluded` — anything the Dijkstra search would also find) is
  // no longer than its via. Pass 1 checks paths of up to two arcs: the
  // target's own label, or a labelled in-neighbor plus one arc.
  std::size_t kept = 0;
  for (const Target& t : targets_) {
    Dist best = WitnessDist(t.w);
    if (best > t.via) {
      for (const InArcRec& ja : in_[t.w]) {
        if (ja.tail == excluded) continue;
        if (witness_stamp_[ja.tail] == witness_round_) {
          best = std::min(best, witness_dist_[ja.tail] + ja.weight);
          if (best <= t.via) break;
        }
      }
    }
    if (best <= t.via) {
      cand_[t.cand_index].pruned = true;
    } else {
      targets_[kept++] = t;
    }
  }
  targets_.resize(kept);
  if (targets_.empty()) return;

  // Pass 2: push labels one more arc outward (labels now cover walks of up
  // to two arcs; they are path lengths, not necessarily shortest, which is
  // all pruning needs) and re-scan the survivors — covering witnesses of
  // up to three arcs.
  for (const NodeId z : ring_) {
    const Dist dz = witness_dist_[z];
    for (const OutArcRec& a : out_[z]) {
      if (a.head == excluded || a.head == u) continue;
      const Dist nd = dz + a.weight;
      if (witness_stamp_[a.head] != witness_round_ ||
          nd < witness_dist_[a.head]) {
        witness_stamp_[a.head] = witness_round_;
        witness_dist_[a.head] = nd;
      }
    }
  }
  kept = 0;
  for (const Target& t : targets_) {
    Dist best = WitnessDist(t.w);
    if (best > t.via) {
      for (const InArcRec& ja : in_[t.w]) {
        if (ja.tail == excluded) continue;
        if (witness_stamp_[ja.tail] == witness_round_) {
          best = std::min(best, witness_dist_[ja.tail] + ja.weight);
          if (best <= t.via) break;
        }
      }
    }
    if (best <= t.via) {
      cand_[t.cand_index].pruned = true;
    } else {
      targets_[kept++] = t;
    }
  }
  targets_.resize(kept);
}

std::size_t ContractionEngine::Contract(NodeId v) {
  assert(!contracted_[v]);

  std::size_t added = 0;
  // Witness-checked shortcuts between active neighbors of v. One witness
  // search per in-neighbor covers all out-neighbors; the heads are
  // registered as search targets so the witness search can stop the moment
  // all of them are settled — their labels are final then, so the
  // add/prune decisions are bit-identical to an exhaustive search.
  for (const InArcRec& ia : in_[v]) {
    const NodeId u = ia.tail;
    if (contracted_[u]) continue;  // Should not happen: lists stay clean.
    cand_.clear();
    targets_.clear();
    ++target_round_;
    for (const OutArcRec& oa : out_[v]) {
      const NodeId w = oa.head;
      if (contracted_[w] || w == u) continue;
      const Dist via = static_cast<Dist>(ia.weight) + oa.weight;
      cand_.push_back(CandRec{w, via, false});
      target_stamp_[w] = target_round_;
      targets_.push_back(
          Target{w, via, static_cast<std::uint32_t>(cand_.size() - 1)});
    }
    if (!targets_.empty() && params_.witness_prefilter) {
      RunWitnessPrefilter(u, v);
    }
    if (!targets_.empty()) RunWitnessSearch(u, v);
    for (const CandRec& c : cand_) {
      if (c.pruned) continue;  // Prefilter proved a witness.
      if (c.via > static_cast<Dist>(kMaxWeight)) continue;  // Overflow guard.
      if (WitnessDist(c.w) <= c.via) {  // Witness found.
        if (cert_sink_ != nullptr) RecordPruneCert(v, u, c.w);
        continue;
      }
      if (AddOrImprove(u, c.w, static_cast<Weight>(c.via), v)) ++added;
    }
  }

  // v's incident arcs have reached their final weights: emit them.
  for (const InArcRec& ia : in_[v]) {
    emitted_.push_back(HierArc{ia.tail, v, ia.weight, ia.mid});
  }
  for (const OutArcRec& oa : out_[v]) {
    emitted_.push_back(HierArc{v, oa.head, oa.weight, oa.mid});
  }

  // Detach v from its neighbors' adjacency.
  for (const InArcRec& ia : in_[v]) {
    auto& lst = out_[ia.tail];
    for (std::size_t i = 0; i < lst.size(); ++i) {
      if (lst[i].head == v) {
        lst[i] = lst.back();
        lst.pop_back();
        break;
      }
    }
    ++contracted_neighbors_[ia.tail];
  }
  for (const OutArcRec& oa : out_[v]) {
    auto& lst = in_[oa.head];
    for (std::size_t i = 0; i < lst.size(); ++i) {
      if (lst[i].tail == v) {
        lst[i] = lst.back();
        lst.pop_back();
        break;
      }
    }
    ++contracted_neighbors_[oa.head];
  }
  out_[v].clear();
  out_[v].shrink_to_fit();
  in_[v].clear();
  in_[v].shrink_to_fit();
  contracted_[v] = true;
  ++num_contracted_;
  return added;
}

std::size_t ContractionEngine::SimulateContraction(NodeId v) {
  assert(!contracted_[v]);
  std::size_t added = 0;
  for (const InArcRec& ia : in_[v]) {
    const NodeId u = ia.tail;
    targets_.clear();
    ++target_round_;
    for (const OutArcRec& oa : out_[v]) {
      if (oa.head == u) continue;
      target_stamp_[oa.head] = target_round_;
      targets_.push_back(
          Target{oa.head, static_cast<Dist>(ia.weight) + oa.weight, 0});
    }
    if (targets_.empty()) continue;
    RunWitnessSearch(u, v);
    for (const OutArcRec& oa : out_[v]) {
      const NodeId w = oa.head;
      if (w == u) continue;
      const Dist via = static_cast<Dist>(ia.weight) + oa.weight;
      if (WitnessDist(w) <= via) continue;
      // Would the shortcut actually change the graph?
      bool improves = true;
      for (const OutArcRec& existing : out_[u]) {
        if (existing.head == w && existing.weight <= via) {
          improves = false;
          break;
        }
      }
      if (improves) ++added;
    }
  }
  return added;
}

std::vector<HierArc> ContractionEngine::RemainingArcs() const {
  std::vector<HierArc> arcs;
  for (NodeId v = 0; v < out_.size(); ++v) {
    if (contracted_[v]) continue;
    for (const OutArcRec& a : out_[v]) {
      arcs.push_back(HierArc{v, a.head, a.weight, a.mid});
    }
  }
  return arcs;
}

std::vector<HierArc> ContractNodes(std::size_t n,
                                   const std::vector<HierArc>& arcs,
                                   const std::vector<NodeId>& order,
                                   ContractionParams params) {
  ContractionEngine engine(n, arcs, params);
  for (NodeId v : order) engine.Contract(v);
  return engine.RemainingArcs();
}

}  // namespace ah
