#include "hier/contraction.h"

#include <algorithm>
#include <cassert>

namespace ah {

std::vector<HierArc> ArcsOf(const Graph& g) {
  std::vector<HierArc> arcs;
  arcs.reserve(g.NumArcs());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Arc& a : g.OutArcs(v)) {
      arcs.push_back(HierArc{v, a.head, a.weight, kInvalidNode});
    }
  }
  return arcs;
}

ContractionEngine::ContractionEngine(std::size_t n,
                                     const std::vector<HierArc>& arcs,
                                     ContractionParams params)
    : params_(params),
      out_(n),
      in_(n),
      contracted_(n, false),
      contracted_neighbors_(n, 0),
      witness_heap_(n),
      witness_dist_(n, kInfDist),
      witness_stamp_(n, 0) {
  for (const HierArc& a : arcs) {
    assert(a.tail < n && a.head < n);
    if (a.tail == a.head) continue;
    AddOrImprove(a.tail, a.head, a.weight, a.mid);
  }
  shortcuts_added_ = 0;  // Loading the initial arcs is not "adding shortcuts".
}

bool ContractionEngine::AddOrImprove(NodeId u, NodeId w, Weight weight,
                                     NodeId mid) {
  for (OutArcRec& rec : out_[u]) {
    if (rec.head != w) continue;
    if (rec.weight <= weight) return false;
    rec.weight = weight;
    rec.mid = mid;
    for (InArcRec& irec : in_[w]) {
      if (irec.tail == u) {
        irec.weight = weight;
        irec.mid = mid;
        break;
      }
    }
    ++shortcuts_added_;
    return true;
  }
  out_[u].push_back(OutArcRec{w, weight, mid});
  in_[w].push_back(InArcRec{u, weight, mid});
  ++shortcuts_added_;
  return true;
}

void ContractionEngine::RunWitnessSearch(NodeId u, NodeId excluded,
                                         Dist bound) {
  ++witness_round_;
  witness_heap_.Clear();
  witness_stamp_[u] = witness_round_;
  witness_dist_[u] = 0;
  witness_heap_.PushOrDecrease(u, 0);
  std::size_t settled = 0;
  while (!witness_heap_.Empty()) {
    auto [d, x] = witness_heap_.PopMin();
    if (d > bound) break;
    if (++settled > params_.witness_settle_limit) break;
    for (const OutArcRec& a : out_[x]) {
      if (a.head == excluded || contracted_[a.head]) continue;
      const Dist nd = d + a.weight;
      if (nd > bound) continue;
      if (witness_stamp_[a.head] != witness_round_ ||
          nd < witness_dist_[a.head]) {
        witness_stamp_[a.head] = witness_round_;
        witness_dist_[a.head] = nd;
        witness_heap_.PushOrDecrease(a.head, nd);
      }
    }
  }
}

std::size_t ContractionEngine::Contract(NodeId v) {
  assert(!contracted_[v]);

  std::size_t added = 0;
  // Witness-checked shortcuts between active neighbors of v. One witness
  // search per in-neighbor covers all out-neighbors.
  for (const InArcRec& ia : in_[v]) {
    const NodeId u = ia.tail;
    if (contracted_[u]) continue;  // Should not happen: lists stay clean.
    Dist max_via = 0;
    for (const OutArcRec& oa : out_[v]) {
      if (contracted_[oa.head] || oa.head == u) continue;
      max_via = std::max(max_via,
                         static_cast<Dist>(ia.weight) + oa.weight);
    }
    if (max_via == 0) continue;
    RunWitnessSearch(u, v, max_via);
    for (const OutArcRec& oa : out_[v]) {
      const NodeId w = oa.head;
      if (contracted_[w] || w == u) continue;
      const Dist via = static_cast<Dist>(ia.weight) + oa.weight;
      if (via > static_cast<Dist>(kMaxWeight)) continue;  // Overflow guard.
      if (WitnessDist(w) <= via) continue;  // A witness path exists.
      if (AddOrImprove(u, w, static_cast<Weight>(via), v)) ++added;
    }
  }

  // v's incident arcs have reached their final weights: emit them.
  for (const InArcRec& ia : in_[v]) {
    emitted_.push_back(HierArc{ia.tail, v, ia.weight, ia.mid});
  }
  for (const OutArcRec& oa : out_[v]) {
    emitted_.push_back(HierArc{v, oa.head, oa.weight, oa.mid});
  }

  // Detach v from its neighbors' adjacency.
  for (const InArcRec& ia : in_[v]) {
    auto& lst = out_[ia.tail];
    for (std::size_t i = 0; i < lst.size(); ++i) {
      if (lst[i].head == v) {
        lst[i] = lst.back();
        lst.pop_back();
        break;
      }
    }
    ++contracted_neighbors_[ia.tail];
  }
  for (const OutArcRec& oa : out_[v]) {
    auto& lst = in_[oa.head];
    for (std::size_t i = 0; i < lst.size(); ++i) {
      if (lst[i].tail == v) {
        lst[i] = lst.back();
        lst.pop_back();
        break;
      }
    }
    ++contracted_neighbors_[oa.head];
  }
  out_[v].clear();
  out_[v].shrink_to_fit();
  in_[v].clear();
  in_[v].shrink_to_fit();
  contracted_[v] = true;
  ++num_contracted_;
  return added;
}

std::size_t ContractionEngine::SimulateContraction(NodeId v) {
  assert(!contracted_[v]);
  std::size_t added = 0;
  for (const InArcRec& ia : in_[v]) {
    const NodeId u = ia.tail;
    Dist max_via = 0;
    for (const OutArcRec& oa : out_[v]) {
      if (oa.head == u) continue;
      max_via = std::max(max_via,
                         static_cast<Dist>(ia.weight) + oa.weight);
    }
    if (max_via == 0) continue;
    RunWitnessSearch(u, v, max_via);
    for (const OutArcRec& oa : out_[v]) {
      const NodeId w = oa.head;
      if (w == u) continue;
      const Dist via = static_cast<Dist>(ia.weight) + oa.weight;
      if (WitnessDist(w) <= via) continue;
      // Would the shortcut actually change the graph?
      bool improves = true;
      for (const OutArcRec& existing : out_[u]) {
        if (existing.head == w && existing.weight <= via) {
          improves = false;
          break;
        }
      }
      if (improves) ++added;
    }
  }
  return added;
}

std::vector<HierArc> ContractionEngine::RemainingArcs() const {
  std::vector<HierArc> arcs;
  for (NodeId v = 0; v < out_.size(); ++v) {
    if (contracted_[v]) continue;
    for (const OutArcRec& a : out_[v]) {
      arcs.push_back(HierArc{v, a.head, a.weight, a.mid});
    }
  }
  return arcs;
}

std::vector<HierArc> ContractNodes(std::size_t n,
                                   const std::vector<HierArc>& arcs,
                                   const std::vector<NodeId>& order,
                                   ContractionParams params) {
  ContractionEngine engine(n, arcs, params);
  for (NodeId v : order) engine.Contract(v);
  return engine.RemainingArcs();
}

}  // namespace ah
