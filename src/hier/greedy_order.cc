#include "hier/greedy_order.h"

#include <cstdint>

#include "util/indexed_heap.h"

namespace ah {

namespace {

// Priorities can be negative; bias into the unsigned key domain.
constexpr Dist kBias = 1ull << 32;

Dist Priority(ContractionEngine& engine, NodeId v,
              const GreedyOrderParams& params) {
  const std::int64_t added =
      static_cast<std::int64_t>(engine.SimulateContraction(v));
  const std::int64_t removed =
      static_cast<std::int64_t>(engine.CurrentOutDegree(v)) +
      static_cast<std::int64_t>(engine.CurrentInDegree(v));
  const std::int64_t neighbors =
      static_cast<std::int64_t>(engine.ContractedNeighborCount(v));
  return static_cast<Dist>(params.edge_diff_weight * (added - removed) +
                           params.neighbor_weight * neighbors +
                           static_cast<std::int64_t>(kBias));
}

}  // namespace

std::vector<NodeId> ContractGreedySubset(ContractionEngine& engine,
                                         std::span<const NodeId> subset,
                                         const GreedyOrderParams& params) {
  IndexedHeap queue(engine.NumNodes());
  for (NodeId v : subset) queue.PushOrDecrease(v, Priority(engine, v, params));

  std::vector<NodeId> order;
  order.reserve(subset.size());
  while (!queue.Empty()) {
    auto [key, v] = queue.PopMin();
    const Dist fresh = Priority(engine, v, params);
    if (!queue.Empty() && fresh > queue.MinKey()) {
      queue.PushOrDecrease(v, fresh);  // Lazy update: requeue and retry.
      continue;
    }
    engine.Contract(v);
    order.push_back(v);
  }
  return order;
}

}  // namespace ah
