#include "hier/repair_kernel.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/indexed_heap.h"

namespace ah {
namespace {

// See repair_kernel.h for the equivalence argument this implements.
//
// Layout notes: the previous topology is a per-tail CSR with sorted heads
// (positions are arc ids; pair lookups are one binary search). Each arc
// also appears in exactly one out-adjacency bucket and one in-adjacency
// bucket, as compact {node, weight} entries with the weight INLINE —
// witness searches touch nothing but these 8-byte entries, which is what
// makes the kernel faster than re-running the dynamic engine. An inline
// weight of kMaxWeight means "does not exist in this epoch (yet)";
// triangle relaxation updates both mirrors through per-arc position
// tables. Each bucket stores its upward arcs first, then its downward
// arcs sorted by the other endpoint's rank descending, so the active
// sub-bucket at step r is "all of the up part, then scan the down part
// until rank <= r".
class RepairKernel {
 public:
  RepairKernel(const Graph& g, const SearchGraph& prev,
               const ContractionParams& params, const WitnessCertTable* certs)
      : params_(params),
        n_(g.NumNodes()),
        in_certs_(certs),
        heap_(g.NumNodes()),
        dist_(g.NumNodes(), kInfDist),
        stamp_(g.NumNodes(), 0),
        parent_(g.NumNodes(), kInvalidNode),
        parent_stamp_(g.NumNodes(), 0),
        target_stamp_(g.NumNodes(), 0) {
    if (prev.NumNodes() != n_) {
      throw std::invalid_argument("RepairContraction: node count changed");
    }
    rank_.resize(n_);
    order_.assign(n_, kInvalidNode);
    for (NodeId v = 0; v < n_; ++v) {
      const Rank r = prev.RankOf(v);
      rank_[v] = r;
      if (r >= n_ || order_[r] != kInvalidNode) {
        throw std::invalid_argument(
            "RepairContraction: rank not a permutation");
      }
      order_[r] = v;
    }
    BuildTopology(g, prev);
    side_out_.resize(n_);
    side_in_.resize(n_);
    if (in_certs_ != nullptr) {
      out_certs_.Reserve(in_certs_->NumCerts(), in_certs_->PoolSize());
    }
  }

  RepairResult Run() {
    for (Rank r = 0; r < n_; ++r) Step(r);
    RepairResult res = Assemble();
    out_certs_.Finalize(n_);
    res.certs = std::make_shared<const WitnessCertTable>(std::move(out_certs_));
    return res;
  }

 private:
  // One adjacency entry. weight == kMaxWeight means the arc is not part
  // of the hierarchy in this epoch (shortcut slot not yet regenerated).
  struct Ent {
    NodeId node;    // The other endpoint.
    Weight weight;  // Current weight, inline for search locality.
  };
  struct SideOut {
    NodeId head;
    Weight weight;
    NodeId mid;
  };
  struct SideIn {
    NodeId tail;
    Weight weight;
  };
  struct CandRec {
    NodeId w;
    Dist via;
    std::uint32_t id;  // Topology arc id, or kInvalidEdge for a fresh pair.
    bool pruned;
  };
  struct Target {
    NodeId w;
    Dist via;
    std::uint32_t cand_index;
  };

  void BuildTopology(const Graph& g, const SearchGraph& prev) {
    // Pass 1: count per tail, prefix-sum, fill heads, sort each bucket.
    topo_first_.assign(n_ + 1, 0);
    for (NodeId v = 0; v < n_; ++v) {
      topo_first_[v + 1] += prev.UpOut(v).size();
      for (const UpArc& ua : prev.UpIn(v)) topo_first_[ua.node + 1] += 1;
    }
    for (std::size_t v = 0; v < n_; ++v) topo_first_[v + 1] += topo_first_[v];
    const std::size_t m = topo_first_[n_];
    if (m >= kInvalidEdge) {
      throw std::invalid_argument("RepairContraction: too many arcs");
    }
    topo_head_.resize(m);
    {
      std::vector<std::uint64_t> cur(topo_first_.begin(),
                                     topo_first_.end() - 1);
      for (NodeId v = 0; v < n_; ++v) {
        for (const UpArc& ua : prev.UpOut(v)) topo_head_[cur[v]++] = ua.node;
        for (const UpArc& ua : prev.UpIn(v)) topo_head_[cur[ua.node]++] = v;
      }
    }
    for (NodeId v = 0; v < n_; ++v) {
      std::sort(topo_head_.begin() + topo_first_[v],
                topo_head_.begin() + topo_first_[v + 1]);
    }

    // Pass 2: adjacency buckets — per node, upward arcs first, then
    // downward arcs (sorted by the other endpoint's rank, descending),
    // plus the id -> entry position tables relaxation writes through.
    out_first_.assign(n_ + 1, 0);
    in_first_.assign(n_ + 1, 0);
    for (NodeId u = 0; u < n_; ++u) {
      for (std::uint64_t i = topo_first_[u]; i < topo_first_[u + 1]; ++i) {
        ++out_first_[u + 1];
        ++in_first_[topo_head_[i] + 1];
      }
    }
    for (std::size_t v = 0; v < n_; ++v) {
      out_first_[v + 1] += out_first_[v];
      in_first_[v + 1] += in_first_[v];
    }
    out_ent_.resize(m);
    in_ent_.resize(m);
    out_pos_.resize(m);
    in_pos_.resize(m);
    out_split_.assign(n_, 0);
    in_split_.assign(n_, 0);
    // Order entries up-part-first by doing two sweeps per direction.
    {
      std::vector<std::uint64_t> oc(out_first_.begin(), out_first_.end() - 1);
      std::vector<std::uint64_t> ic(in_first_.begin(), in_first_.end() - 1);
      // Sweep A: upward arcs (other endpoint ranks higher).
      for (NodeId u = 0; u < n_; ++u) {
        for (std::uint64_t i = topo_first_[u]; i < topo_first_[u + 1]; ++i) {
          const NodeId w = topo_head_[i];
          const auto id = static_cast<std::uint32_t>(i);
          if (rank_[w] > rank_[u]) {
            out_ent_[oc[u]] = Ent{w, kMaxWeight};
            out_pos_[id] = static_cast<std::uint32_t>(oc[u]++);
          }
          if (rank_[u] > rank_[w]) {
            in_ent_[ic[w]] = Ent{u, kMaxWeight};
            in_pos_[id] = static_cast<std::uint32_t>(ic[w]++);
          }
        }
      }
      for (NodeId v = 0; v < n_; ++v) {
        out_split_[v] = oc[v];
        in_split_[v] = ic[v];
      }
      // Sweep B: downward arcs. Each bucket's down-part must end up sorted
      // by the other endpoint's rank DESCENDING, so instead of sorting,
      // visit the lower-ranked endpoint in rank-descending order and
      // append — the buckets come out sorted by construction (and the
      // position tables stay valid, no rebuild). The out sweep needs the
      // arcs grouped by head; build that grouping once.
      struct TailArc {
        NodeId tail;
        std::uint32_t id;
      };
      std::vector<std::uint64_t> ht_first(n_ + 1, 0);
      for (std::uint64_t i = 0; i < m; ++i) ++ht_first[topo_head_[i] + 1];
      for (std::size_t v = 0; v < n_; ++v) ht_first[v + 1] += ht_first[v];
      std::vector<TailArc> ht(m);
      {
        std::vector<std::uint64_t> hc(ht_first.begin(), ht_first.end() - 1);
        for (NodeId u = 0; u < n_; ++u) {
          for (std::uint64_t i = topo_first_[u]; i < topo_first_[u + 1];
               ++i) {
            ht[hc[topo_head_[i]]++] =
                TailArc{u, static_cast<std::uint32_t>(i)};
          }
        }
      }
      for (Rank rr = n_; rr-- > 0;) {
        const NodeId x = order_[rr];
        // Arcs u→x with rank(u) > rank(x): x goes in u's out down-part.
        for (std::uint64_t j = ht_first[x]; j < ht_first[x + 1]; ++j) {
          const NodeId u = ht[j].tail;
          if (rank_[u] > rr) {
            out_ent_[oc[u]] = Ent{x, kMaxWeight};
            out_pos_[ht[j].id] = static_cast<std::uint32_t>(oc[u]++);
          }
        }
        // Arcs x→y with rank(y) > rank(x): x goes in y's in down-part.
        for (std::uint64_t i = topo_first_[x]; i < topo_first_[x + 1]; ++i) {
          const NodeId y = topo_head_[i];
          if (rank_[y] > rr) {
            in_ent_[ic[y]] = Ent{x, kMaxWeight};
            in_pos_[i] = static_cast<std::uint32_t>(ic[y]++);
          }
        }
      }
    }

    // Pass 3: seed the current graph's edge weights (parallel arcs
    // collapse to the minimum, self-loops never enter a hierarchy).
    mid_.assign(m, kInvalidNode);
    for (NodeId v = 0; v < n_; ++v) {
      for (const Arc& a : g.OutArcs(v)) {
        if (a.head == v) continue;
        if (a.weight >= kMaxWeight) {
          throw std::invalid_argument(
              "RepairContraction: arc weight at sentinel");
        }
        const std::uint32_t id = Lookup(v, a.head);
        if (id == kInvalidEdge) {
          // The hierarchy does not know this edge: the graph's structure
          // changed, so a frozen-order repair is not applicable.
          throw std::invalid_argument(
              "RepairContraction: graph arc absent from hierarchy");
        }
        Ent& oe = out_ent_[out_pos_[id]];
        if (a.weight < oe.weight) {
          oe.weight = a.weight;
          in_ent_[in_pos_[id]].weight = a.weight;
        }
      }
    }
  }

  std::uint32_t Lookup(NodeId u, NodeId w) const {
    const auto begin = topo_head_.begin() + topo_first_[u];
    const auto end = topo_head_.begin() + topo_first_[u + 1];
    const auto it = std::lower_bound(begin, end, w);
    if (it == end || *it != w) return kInvalidEdge;
    return static_cast<std::uint32_t>(it - topo_head_.begin());
  }

  // Replays the recorded pruning witness for pair (u,w) at step r, if the
  // input table has one: re-sums the stored path over current step-r
  // weights and prunes if it still proves length <= via. Interior nodes
  // must still rank above r (they do whenever the table matches this
  // hierarchy's rank permutation — checked anyway so a mismatched table
  // degrades to searches instead of corrupting decisions). A successful
  // replay is re-recorded for the next repair.
  bool ReplayCert(NodeId v, Rank r, NodeId u, NodeId w, Dist via) {
    const WitnessCert* c = in_certs_->Find(v, u, w);
    if (c == nullptr) return false;
    const NodeId* interior = in_certs_->Interior(*c);
    Dist d = 0;
    NodeId x = u;
    for (std::uint32_t i = 0; i <= c->count; ++i) {
      const NodeId y = i < c->count ? interior[i] : w;
      if (i < c->count && rank_[y] <= r) return false;
      const std::uint32_t id = Lookup(x, y);
      if (id == kInvalidEdge) return false;
      const Weight wt = out_ent_[out_pos_[id]].weight;
      if (wt == kMaxWeight) return false;  // Arc not present at step r.
      d += wt;
      if (d > via) return false;  // The old witness got slower: search.
      x = y;
    }
    out_certs_.Record(v, u, w, interior, c->count);
    ++cert_replays_;
    return true;
  }

  // Kernel mirror of ContractionEngine::RecordPruneCert: walks the parent
  // chain of the just-finished witness search and records the pruning
  // witness for the next repair. Bails out on any stamp mismatch.
  void RecordSearchCert(NodeId v, NodeId u, NodeId w) {
    cert_path_.clear();
    NodeId x = w;
    while (x != u) {
      if (parent_stamp_[x] != round_) return;
      x = parent_[x];
      if (x == kInvalidNode) return;
      if (x == u) break;
      cert_path_.push_back(x);
      if (cert_path_.size() > params_.witness_settle_limit + 2) return;
    }
    std::reverse(cert_path_.begin(), cert_path_.end());
    out_certs_.Record(v, u, w, cert_path_.data(), cert_path_.size());
  }

  // Iterates the active out-arcs of x at step r: present arcs (weight
  // below the sentinel) whose head ranks above r. The step-r node itself
  // has rank exactly r, so it is skipped automatically — no explicit
  // excluded/contracted checks anywhere.
  template <typename Fn>
  void ForEachActiveOut(NodeId x, Rank r, Fn&& fn) const {
    for (std::uint64_t i = out_first_[x]; i < out_split_[x]; ++i) {
      const Ent& e = out_ent_[i];
      if (e.weight != kMaxWeight) fn(e.node, static_cast<Dist>(e.weight));
    }
    for (std::uint64_t i = out_split_[x]; i < out_first_[x + 1]; ++i) {
      const Ent& e = out_ent_[i];
      if (rank_[e.node] <= r) break;  // Sorted by rank desc: rest inactive.
      if (e.weight != kMaxWeight) fn(e.node, static_cast<Dist>(e.weight));
    }
    for (const SideOut& s : side_out_[x]) {
      if (rank_[s.head] > r) fn(s.head, static_cast<Dist>(s.weight));
    }
  }

  // In-arc mirror of ForEachActiveOut; fn returns false to stop early.
  template <typename Fn>
  void ForEachActiveIn(NodeId w, Rank r, Fn&& fn) const {
    for (std::uint64_t i = in_first_[w]; i < in_split_[w]; ++i) {
      const Ent& e = in_ent_[i];
      if (e.weight != kMaxWeight &&
          !fn(e.node, static_cast<Dist>(e.weight))) {
        return;
      }
    }
    for (std::uint64_t i = in_split_[w]; i < in_first_[w + 1]; ++i) {
      const Ent& e = in_ent_[i];
      if (rank_[e.node] <= r) break;
      if (e.weight != kMaxWeight &&
          !fn(e.node, static_cast<Dist>(e.weight))) {
        return;
      }
    }
    for (const SideIn& s : side_in_[w]) {
      if (rank_[s.tail] > r && !fn(s.tail, static_cast<Dist>(s.weight))) {
        return;
      }
    }
  }

  Dist Label(NodeId v) const {
    return stamp_[v] == round_ ? dist_[v] : kInfDist;
  }

  void RelaxLabel(NodeId y, Dist d) {
    if (stamp_[y] != round_ || d < dist_[y]) {
      stamp_[y] = round_;
      dist_[y] = d;
    }
  }

  // Hop-bounded witness prefilter: mirrors
  // ContractionEngine::RunWitnessPrefilter over the static layout. Pass 1
  // resolves targets some path of up to two arcs from u proves a witness
  // for; pass 2 pushes labels one more arc and re-scans, covering up to
  // three arcs. Labels are real path lengths avoiding the step-r node, so
  // every prune decision matches what the Dijkstra search would make.
  void Prefilter(NodeId u, Rank r) {
    ++round_;
    ring_.clear();
    ForEachActiveOut(u, r, [&](NodeId y, Dist wt) {
      RelaxLabel(y, wt);
      ring_.push_back(y);
    });
    ScanTargets(u, r);
    if (!targets_.empty()) {
      for (const NodeId z : ring_) {
        const Dist dz = dist_[z];
        ForEachActiveOut(z, r, [&](NodeId y, Dist wt) {
          if (y != u) RelaxLabel(y, dz + wt);
        });
      }
      ScanTargets(u, r);
    }
  }

  // One prefilter resolution sweep over targets_.
  void ScanTargets(NodeId u, Rank r) {
    std::size_t kept = 0;
    for (const Target& t : targets_) {
      Dist best = Label(t.w);
      if (best > t.via) {
        ForEachActiveIn(t.w, r, [&](NodeId tail, Dist wt) {
          if (tail != u && stamp_[tail] == round_) {
            best = std::min(best, dist_[tail] + wt);
            if (best <= t.via) return false;
          }
          return true;
        });
      }
      if (best <= t.via) {
        cand_[t.cand_index].pruned = true;
      } else {
        targets_[kept++] = t;
      }
    }
    targets_.resize(kept);
  }

  // Target-counted Dijkstra witness search from u in the step-r active
  // overlay: same shrinking-bound logic as
  // ContractionEngine::RunWitnessSearch.
  void WitnessSearch(NodeId u, Rank r) {
    Dist bound = 0;
    for (const Target& t : targets_) bound = std::max(bound, t.via);
    ++round_;
    ++witness_searches_;
    heap_.Clear();
    stamp_[u] = round_;
    dist_[u] = 0;
    parent_[u] = kInvalidNode;
    parent_stamp_[u] = round_;
    heap_.PushOrDecrease(u, 0);
    std::size_t settled = 0;
    while (!heap_.Empty()) {
      auto [d, x] = heap_.PopMin();
      if (d > bound) break;
      if (++settled > params_.witness_settle_limit) break;
      ++witness_settled_;
      if (target_stamp_[x] == target_round_) {
        // x's label is final: resolve it and re-tighten the bound.
        for (std::size_t i = 0; i < targets_.size(); ++i) {
          if (targets_[i].w == x) {
            targets_[i] = targets_.back();
            targets_.pop_back();
            break;
          }
        }
        if (targets_.empty()) break;
        bound = 0;
        for (const Target& t : targets_) bound = std::max(bound, t.via);
        if (d > bound) break;
      }
      ForEachActiveOut(x, r, [&](NodeId y, Dist wt) {
        const Dist nd = d + wt;
        if (nd > bound) return;
        if (stamp_[y] != round_ || nd < dist_[y]) {
          stamp_[y] = round_;
          dist_[y] = nd;
          parent_[y] = x;
          parent_stamp_[y] = round_;
          heap_.PushOrDecrease(y, nd);
        }
      });
    }
  }

  void SideAddOrImprove(NodeId u, NodeId w, Weight via, NodeId mid) {
    for (SideOut& s : side_out_[u]) {
      if (s.head != w) continue;
      if (s.weight <= via) return;
      s.weight = via;
      s.mid = mid;
      for (SideIn& si : side_in_[w]) {
        if (si.tail == u) {
          si.weight = via;
          break;
        }
      }
      ++shortcuts_;
      return;
    }
    side_out_[u].push_back(SideOut{w, via, mid});
    side_in_[w].push_back(SideIn{u, via});
    ++shortcuts_;
  }

  // Contraction step r for node order_[r]: witness-check and commit the
  // shortcuts between its active neighbors. The node's own incident arcs
  // already hold their final weights (every midpoint that could improve
  // them ranks below r), which is exactly why nothing needs emitting here
  // — Assemble reads final state once at the end.
  void Step(Rank r) {
    const NodeId v = order_[r];
    // Active neighbors of v all rank above r, so only the upward parts
    // and the side lists can contribute.
    in_list_.clear();
    for (std::uint64_t i = in_first_[v]; i < in_split_[v]; ++i) {
      const Ent& e = in_ent_[i];
      if (e.weight != kMaxWeight) in_list_.push_back(e);
    }
    for (const SideIn& s : side_in_[v]) {
      if (rank_[s.tail] > r) in_list_.push_back(Ent{s.tail, s.weight});
    }
    if (in_list_.empty()) return;
    out_list_.clear();
    for (std::uint64_t i = out_first_[v]; i < out_split_[v]; ++i) {
      const Ent& e = out_ent_[i];
      if (e.weight != kMaxWeight) out_list_.push_back(e);
    }
    for (const SideOut& s : side_out_[v]) {
      if (rank_[s.head] > r) out_list_.push_back(Ent{s.head, s.weight});
    }
    if (out_list_.empty()) return;

    for (const Ent& ie : in_list_) {
      const NodeId u = ie.node;
      cand_.clear();
      targets_.clear();
      ++target_round_;
      for (const Ent& oe : out_list_) {
        const NodeId w = oe.node;
        if (w == u) continue;
        const Dist via =
            static_cast<Dist>(ie.weight) + static_cast<Dist>(oe.weight);
        const std::uint32_t id = Lookup(u, w);
        cand_.push_back(CandRec{w, via, id, false});
        if (id != kInvalidEdge) continue;  // Hinted: no witness needed.
        if (in_certs_ != nullptr && ReplayCert(v, r, u, w, via)) {
          cand_.back().pruned = true;  // Certificate proved a witness.
          continue;
        }
        target_stamp_[w] = target_round_;
        targets_.push_back(
            Target{w, via, static_cast<std::uint32_t>(cand_.size() - 1)});
      }
      if (!targets_.empty()) Prefilter(u, r);
      if (!targets_.empty()) WitnessSearch(u, r);
      for (const CandRec& c : cand_) {
        if (c.pruned) continue;  // Prefilter proved a witness.
        if (c.via >= static_cast<Dist>(kMaxWeight)) continue;  // Overflow.
        if (c.id != kInvalidEdge) {
          Ent& oe = out_ent_[out_pos_[c.id]];
          if (c.via < static_cast<Dist>(oe.weight)) {
            oe.weight = static_cast<Weight>(c.via);
            in_ent_[in_pos_[c.id]].weight = oe.weight;
            mid_[c.id] = v;
            ++shortcuts_;
          }
        } else {
          if (Label(c.w) <= c.via) {  // Witness found.
            RecordSearchCert(v, u, c.w);
            continue;
          }
          SideAddOrImprove(u, c.w, static_cast<Weight>(c.via), v);
        }
      }
    }
  }

  RepairResult Assemble() const {
    RepairResult result;
    std::size_t sides = 0;
    for (NodeId v = 0; v < n_; ++v) sides += side_out_[v].size();
    result.arcs.reserve(topo_head_.size() + sides);
    for (NodeId u = 0; u < n_; ++u) {
      for (std::uint64_t i = topo_first_[u]; i < topo_first_[u + 1]; ++i) {
        const Weight w = out_ent_[out_pos_[i]].weight;
        if (w == kMaxWeight) continue;  // Pruned away this epoch.
        result.arcs.push_back(HierArc{u, topo_head_[i], w, mid_[i]});
      }
      for (const SideOut& s : side_out_[u]) {
        result.arcs.push_back(HierArc{u, s.head, s.weight, s.mid});
      }
    }
    result.shortcuts = shortcuts_;
    result.witness_searches = witness_searches_;
    result.witness_settled = witness_settled_;
    result.cert_replays = cert_replays_;
    return result;
  }

  ContractionParams params_;
  std::size_t n_;
  std::vector<Rank> rank_;
  std::vector<NodeId> order_;

  // Previous topology (see the class comment for the layout).
  std::vector<std::uint64_t> topo_first_;
  std::vector<NodeId> topo_head_;
  std::vector<NodeId> mid_;
  std::vector<std::uint64_t> out_first_, in_first_;
  std::vector<std::uint64_t> out_split_, in_split_;
  std::vector<Ent> out_ent_, in_ent_;
  std::vector<std::uint32_t> out_pos_, in_pos_;

  // Arcs of this epoch that the previous topology lacks.
  std::vector<std::vector<SideOut>> side_out_;
  std::vector<std::vector<SideIn>> side_in_;

  std::size_t shortcuts_ = 0;
  std::size_t witness_searches_ = 0;
  std::size_t witness_settled_ = 0;
  std::size_t cert_replays_ = 0;

  // Witness certificates: replayed from the previous epoch's table,
  // re-recorded into the next epoch's (see hier/witness_certs.h).
  const WitnessCertTable* in_certs_;
  WitnessCertTable out_certs_;
  std::vector<NodeId> cert_path_;

  // Search scratch.
  IndexedHeap heap_;
  std::vector<Dist> dist_;
  std::vector<std::uint32_t> stamp_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> parent_stamp_;
  std::uint32_t round_ = 0;
  std::vector<std::uint32_t> target_stamp_;
  std::uint32_t target_round_ = 0;
  std::vector<CandRec> cand_;
  std::vector<Target> targets_;
  std::vector<NodeId> ring_;
  std::vector<Ent> in_list_, out_list_;
};

}  // namespace

RepairResult RepairContraction(const Graph& g, const SearchGraph& prev,
                               const ContractionParams& params,
                               const WitnessCertTable* certs) {
  RepairKernel k(g, prev, params, certs);
  return k.Run();
}

}  // namespace ah
