// One-to-many distance queries over a contracted hierarchy (the bucket
// technique): preprocess a fixed target set T with one backward upward
// search per target, storing (target, distance) bucket entries at every
// settled node; a query from s then runs a single forward upward search and
// min-combines over the buckets it touches.
//
// This serves the paper's motivating scenario (§1): ranking a set of POIs
// (restaurants) by network distance from the user in one search instead of
// |T| point-to-point queries. Works on any SearchGraph (CH or AH); exact on
// any graph by the standard up-down path argument.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hier/search_graph.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

class OneToMany {
 public:
  /// Preprocesses `targets` (one backward upward search each).
  OneToMany(const SearchGraph& sg, std::vector<NodeId> targets);

  const std::vector<NodeId>& targets() const { return targets_; }

  /// Distances from s to every target, indexed like targets(); kInfDist for
  /// unreachable ones. The returned reference is invalidated by the next
  /// call.
  const std::vector<Dist>& DistancesFrom(NodeId s);

  /// The k nearest targets from s, sorted by distance (ties by target node
  /// id). Unreachable targets are excluded.
  std::vector<std::pair<NodeId, Dist>> KNearest(NodeId s, std::size_t k);

  /// Total bucket entries (space diagnostics).
  std::size_t NumBucketEntries() const { return bucket_entries_.size(); }

 private:
  struct BucketEntry {
    std::uint32_t target_index;
    Dist dist;
  };

  const SearchGraph& sg_;
  std::vector<NodeId> targets_;

  // CSR buckets: bucket_first_[v] .. bucket_first_[v+1] entries per node.
  std::vector<std::uint64_t> bucket_first_;
  std::vector<BucketEntry> bucket_entries_;

  // Reusable forward-search state.
  IndexedHeap heap_;
  std::vector<Dist> dist_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t round_ = 0;
  std::vector<Dist> result_;
};

}  // namespace ah
