// One-to-many distance queries over a contracted hierarchy (the bucket
// technique): preprocess a fixed target set T with one backward upward
// search per target, storing (target, distance) bucket entries at every
// settled node; a query from s then runs a single forward upward search and
// min-combines over the buckets it touches.
//
// This serves the paper's motivating scenario (§1): ranking a set of POIs
// (restaurants) by network distance from the user in one search instead of
// |T| point-to-point queries. Works on any SearchGraph (CH or AH); exact on
// any graph by the standard up-down path argument. The bucket machinery is
// shared with the many-to-many matrix engine (hier/many_to_many.h); this
// class is the single-source convenience with reusable scratch.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hier/many_to_many.h"
#include "hier/search_graph.h"
#include "util/types.h"

namespace ah {

class OneToMany {
 public:
  /// Preprocesses `targets` (one backward upward search each).
  OneToMany(const SearchGraph& sg, std::vector<NodeId> targets);

  const std::vector<NodeId>& targets() const { return targets_; }

  /// Distances from s to every target, indexed like targets(); kInfDist for
  /// unreachable ones. Returned by value: the result stays valid across
  /// later calls (pooled sessions hand these out, so a returned buffer that
  /// the next query silently rewrote would be an aliasing trap).
  std::vector<Dist> DistancesFrom(NodeId s);

  /// The k nearest targets from s, sorted by distance (ties by target node
  /// id). Unreachable targets are excluded.
  std::vector<std::pair<NodeId, Dist>> KNearest(NodeId s, std::size_t k);

  /// Total bucket entries (space diagnostics).
  std::size_t NumBucketEntries() const { return buckets_.NumEntries(); }

 private:
  const SearchGraph& sg_;
  std::vector<NodeId> targets_;
  TargetBuckets buckets_;
  UpwardSearchScratch scratch_;
};

}  // namespace ah
