// Lazy greedy contraction ordering (edge difference + contracted-neighbor
// count), shared by CH (over the whole node set) and AH (within each
// hierarchy level, where §4.4 permits any strict total order).
#pragma once

#include <span>
#include <vector>

#include "hier/contraction.h"
#include "util/types.h"

namespace ah {

struct GreedyOrderParams {
  int edge_diff_weight = 16;
  int neighbor_weight = 4;
};

/// Contracts every node of `subset` in lazy greedy priority order and
/// returns the order used. All subset nodes must be active in `engine`;
/// nodes outside the subset are untouched.
std::vector<NodeId> ContractGreedySubset(ContractionEngine& engine,
                                         std::span<const NodeId> subset,
                                         const GreedyOrderParams& params = {});

}  // namespace ah
