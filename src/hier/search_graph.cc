#include "hier/search_graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/serialize.h"

namespace ah {

SearchGraph::SearchGraph(std::size_t n, const std::vector<HierArc>& arcs,
                         std::vector<Rank> rank)
    : rank_(std::move(rank)) {
  assert(rank_.size() == n);

  // Partition arcs into upward-forward (stored at tail) and upward-backward
  // (stored at head). Ranks form a permutation, so no ties arise.
  up_out_first_.assign(n + 1, 0);
  up_in_first_.assign(n + 1, 0);
  all_first_.assign(n + 1, 0);
  for (const HierArc& a : arcs) {
    if (rank_[a.head] > rank_[a.tail]) {
      ++up_out_first_[a.tail + 1];
    } else {
      ++up_in_first_[a.head + 1];
    }
    ++all_first_[a.tail + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    up_out_first_[v + 1] += up_out_first_[v];
    up_in_first_[v + 1] += up_in_first_[v];
    all_first_[v + 1] += all_first_[v];
  }
  up_out_arcs_.resize(up_out_first_[n]);
  up_in_arcs_.resize(up_in_first_[n]);
  all_arcs_.resize(all_first_[n]);
  std::vector<std::uint64_t> out_cur(up_out_first_.begin(),
                                     up_out_first_.end() - 1);
  std::vector<std::uint64_t> in_cur(up_in_first_.begin(),
                                    up_in_first_.end() - 1);
  std::vector<std::uint64_t> all_cur(all_first_.begin(), all_first_.end() - 1);
  for (const HierArc& a : arcs) {
    if (rank_[a.head] > rank_[a.tail]) {
      up_out_arcs_[out_cur[a.tail]++] = UpArc{a.head, a.weight};
    } else {
      up_in_arcs_[in_cur[a.head]++] = UpArc{a.tail, a.weight};
    }
    all_arcs_[all_cur[a.tail]++] = PackedArc{a.head, a.weight, a.mid};
  }
  // Sort each tail's bucket by head for binary-search lookup.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(all_arcs_.begin() + all_first_[v],
              all_arcs_.begin() + all_first_[v + 1],
              [](const PackedArc& x, const PackedArc& y) {
                return x.head < y.head;
              });
  }
}

bool SearchGraph::LookupArc(NodeId u, NodeId v, PackedArc* found) const {
  auto begin = all_arcs_.begin() + all_first_[u];
  auto end = all_arcs_.begin() + all_first_[u + 1];
  auto it = std::lower_bound(begin, end, v,
                             [](const PackedArc& a, NodeId target) {
                               return a.head < target;
                             });
  if (it == end || it->head != v) return false;
  *found = *it;
  return true;
}

Weight SearchGraph::HierArcWeight(NodeId u, NodeId v) const {
  PackedArc arc;
  return LookupArc(u, v, &arc) ? arc.weight : kMaxWeight;
}

void SearchGraph::AppendUnpacked(NodeId u, NodeId v,
                                 std::vector<NodeId>* out) const {
  // Iterative expansion: a work stack of arcs, processed left-to-right.
  struct Pending {
    NodeId from;
    NodeId to;
  };
  std::vector<Pending> stack = {{u, v}};
  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();
    PackedArc arc;
    if (!LookupArc(p.from, p.to, &arc)) {
      throw std::logic_error("SearchGraph::AppendUnpacked: unknown arc");
    }
    if (arc.mid == kInvalidNode) {
      out->push_back(p.to);
    } else {
      // Expand left part first: push right, then left (stack is LIFO).
      stack.push_back({arc.mid, p.to});
      stack.push_back({p.from, arc.mid});
    }
  }
}

std::vector<NodeId> SearchGraph::UnpackPath(
    const std::vector<NodeId>& hierarchy_path) const {
  std::vector<NodeId> out;
  if (hierarchy_path.empty()) return out;
  out.push_back(hierarchy_path.front());
  for (std::size_t i = 0; i + 1 < hierarchy_path.size(); ++i) {
    AppendUnpacked(hierarchy_path[i], hierarchy_path[i + 1], &out);
  }
  return out;
}

void SearchGraph::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Magic("AHSG", 1);
  w.Vector(rank_);
  w.Vector(up_out_first_);
  w.Vector(up_out_arcs_);
  w.Vector(up_in_first_);
  w.Vector(up_in_arcs_);
  w.Vector(all_first_);
  w.Vector(all_arcs_);
}

SearchGraph SearchGraph::Load(std::istream& in) {
  BinaryReader r(in);
  r.Magic("AHSG", 1);
  SearchGraph sg;
  sg.rank_ = r.Vector<Rank>();
  sg.up_out_first_ = r.Vector<std::uint64_t>();
  sg.up_out_arcs_ = r.Vector<UpArc>();
  sg.up_in_first_ = r.Vector<std::uint64_t>();
  sg.up_in_arcs_ = r.Vector<UpArc>();
  sg.all_first_ = r.Vector<std::uint64_t>();
  sg.all_arcs_ = r.Vector<PackedArc>();
  const std::size_t n = sg.rank_.size();
  if (sg.up_out_first_.size() != n + 1 || sg.up_in_first_.size() != n + 1 ||
      sg.all_first_.size() != n + 1 ||
      sg.up_out_first_.back() != sg.up_out_arcs_.size() ||
      sg.up_in_first_.back() != sg.up_in_arcs_.size() ||
      sg.all_first_.back() != sg.all_arcs_.size()) {
    throw std::runtime_error("SearchGraph::Load: inconsistent structure");
  }
  return sg;
}

std::size_t SearchGraph::SizeBytes() const {
  return rank_.size() * sizeof(Rank) +
         up_out_first_.size() * sizeof(std::uint64_t) +
         up_out_arcs_.size() * sizeof(UpArc) +
         up_in_first_.size() * sizeof(std::uint64_t) +
         up_in_arcs_.size() * sizeof(UpArc) +
         all_first_.size() * sizeof(std::uint64_t) +
         all_arcs_.size() * sizeof(PackedArc);
}

}  // namespace ah
