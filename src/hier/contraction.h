// Node-contraction machinery shared by CH, FC and AH.
//
// Contracting a node v removes it from the active graph and, for every pair
// of an active in-neighbor u and out-neighbor w, adds the shortcut u→w with
// weight w(u,v)+w(v,w) unless a *witness* path of no greater length survives
// in the remaining graph. Every shortcut remembers v as its midpoint, so it
// expands into the two-hop path ⟨u, v, w⟩ — exactly the shortcut
// representation §4.1 of the paper prescribes for O(k) path unpacking.
//
// The engine is order-agnostic: AH contracts in its arterial-level rank
// order, CH in greedy edge-difference order, and the AH level assigner uses
// it to reduce G'_i to an overlay on the surviving cores (distances between
// active nodes are preserved exactly by construction).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

/// One arc of a hierarchy under construction. mid == kInvalidNode means an
/// original graph edge; otherwise the arc is a shortcut that expands into
/// tail→mid→head.
struct HierArc {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;
  Weight weight = 0;
  NodeId mid = kInvalidNode;
};

struct ContractionParams {
  /// Budget of settled nodes per witness search. When the budget runs out
  /// the search is inconclusive and the shortcut is added anyway (safe: it
  /// is only redundant, never wrong).
  std::size_t witness_settle_limit = 80;
};

/// Extracts the arc list of a Graph as HierArcs (mid = invalid).
std::vector<HierArc> ArcsOf(const Graph& g);

class ContractionEngine {
 public:
  /// Starts with `arcs` over node ids in [0, n). Parallel arcs collapse to
  /// the minimum weight.
  ContractionEngine(std::size_t n, const std::vector<HierArc>& arcs,
                    ContractionParams params = {});

  std::size_t NumNodes() const { return out_.size(); }
  bool IsContracted(NodeId v) const { return contracted_[v]; }
  std::size_t NumContracted() const { return num_contracted_; }

  std::size_t CurrentOutDegree(NodeId v) const { return out_[v].size(); }
  std::size_t CurrentInDegree(NodeId v) const { return in_[v].size(); }
  /// Number of formerly adjacent nodes that have been contracted — the
  /// standard CH tie-breaker that spreads contraction evenly.
  std::size_t ContractedNeighborCount(NodeId v) const {
    return contracted_neighbors_[v];
  }

  /// Contracts v: emits v's incident arcs (their weights are final) into the
  /// emitted list and inserts witness-checked shortcuts between v's active
  /// neighbors. Returns the number of shortcuts added or improved.
  std::size_t Contract(NodeId v);

  /// Counts the shortcuts Contract(v) would add, without mutating anything.
  std::size_t SimulateContraction(NodeId v);

  /// Arcs currently connecting active (uncontracted) nodes. After a partial
  /// contraction this is the distance-preserving overlay on the survivors.
  std::vector<HierArc> RemainingArcs() const;

  /// Arcs emitted so far; each arc of the final hierarchy appears exactly
  /// once (when its first endpoint is contracted), with its final weight and
  /// midpoint. Contract every node and this is the whole hierarchy.
  const std::vector<HierArc>& EmittedArcs() const { return emitted_; }

  std::size_t NumShortcutsAdded() const { return shortcuts_added_; }

 private:
  struct OutArcRec {
    NodeId head;
    Weight weight;
    NodeId mid;
  };
  struct InArcRec {
    NodeId tail;
    Weight weight;
    NodeId mid;
  };

  // Inserts or improves u→w; updates both adjacency mirrors.
  bool AddOrImprove(NodeId u, NodeId w, Weight weight, NodeId mid);

  // Shortest u→targets distance check in the active graph minus `excluded`.
  // Fills witness_dist_ labels; a target's label may stay kInfDist.
  void RunWitnessSearch(NodeId u, NodeId excluded, Dist bound);

  Dist WitnessDist(NodeId v) const {
    return witness_stamp_[v] == witness_round_ ? witness_dist_[v] : kInfDist;
  }

  ContractionParams params_;
  std::vector<std::vector<OutArcRec>> out_;
  std::vector<std::vector<InArcRec>> in_;
  std::vector<bool> contracted_;
  std::vector<std::uint32_t> contracted_neighbors_;
  std::vector<HierArc> emitted_;
  std::size_t num_contracted_ = 0;
  std::size_t shortcuts_added_ = 0;

  // Reusable witness-search state.
  IndexedHeap witness_heap_;
  std::vector<Dist> witness_dist_;
  std::vector<std::uint32_t> witness_stamp_;
  std::uint32_t witness_round_ = 0;
};

/// Contracts the given nodes, in order, and returns the overlay arcs among
/// the untouched nodes. Distances between untouched nodes are preserved.
std::vector<HierArc> ContractNodes(std::size_t n,
                                   const std::vector<HierArc>& arcs,
                                   const std::vector<NodeId>& order,
                                   ContractionParams params = {});

}  // namespace ah
