// Node-contraction machinery shared by CH, FC and AH.
//
// Contracting a node v removes it from the active graph and, for every pair
// of an active in-neighbor u and out-neighbor w, adds the shortcut u→w with
// weight w(u,v)+w(v,w) unless a *witness* path of no greater length survives
// in the remaining graph. Every shortcut remembers v as its midpoint, so it
// expands into the two-hop path ⟨u, v, w⟩ — exactly the shortcut
// representation §4.1 of the paper prescribes for O(k) path unpacking.
//
// The engine is order-agnostic: AH contracts in its arterial-level rank
// order, CH in greedy edge-difference order, and the AH level assigner uses
// it to reduce G'_i to an overlay on the surviving cores (distances between
// active nodes are preserved exactly by construction).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "hier/witness_certs.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

/// One arc of a hierarchy under construction. mid == kInvalidNode means an
/// original graph edge; otherwise the arc is a shortcut that expands into
/// tail→mid→head.
struct HierArc {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;
  Weight weight = 0;
  NodeId mid = kInvalidNode;
};

struct ContractionParams {
  /// Budget of settled nodes per witness search. When the budget runs out
  /// the search is inconclusive and the shortcut is added anyway (safe: it
  /// is only redundant, never wrong).
  std::size_t witness_settle_limit = 80;
  /// Prefilter witness targets with a heap-free hop-bounded check over the
  /// current overlay (paths of up to three arcs from u, avoiding the
  /// contracted node) before the Dijkstra search. Any witness the
  /// prefilter finds would also be found by the search, so add/prune
  /// decisions are bit-identical either way; the search just starts with
  /// fewer targets and a tighter bound. Meant for frozen-order repair,
  /// where most candidates are hinted and the unhinted rest usually have
  /// shallow witnesses.
  bool witness_prefilter = false;
};

/// Extracts the arc list of a Graph as HierArcs (mid = invalid).
std::vector<HierArc> ArcsOf(const Graph& g);

class ContractionEngine {
 public:
  /// Starts with `arcs` over node ids in [0, n). Parallel arcs collapse to
  /// the minimum weight.
  ContractionEngine(std::size_t n, const std::vector<HierArc>& arcs,
                    ContractionParams params = {});

  std::size_t NumNodes() const { return out_.size(); }
  bool IsContracted(NodeId v) const { return contracted_[v]; }
  std::size_t NumContracted() const { return num_contracted_; }

  std::size_t CurrentOutDegree(NodeId v) const { return out_[v].size(); }
  std::size_t CurrentInDegree(NodeId v) const { return in_[v].size(); }
  /// Number of formerly adjacent nodes that have been contracted — the
  /// standard CH tie-breaker that spreads contraction evenly.
  std::size_t ContractedNeighborCount(NodeId v) const {
    return contracted_neighbors_[v];
  }

  /// Contracts v: emits v's incident arcs (their weights are final) into the
  /// emitted list and inserts witness-checked shortcuts between v's active
  /// neighbors. Returns the number of shortcuts added or improved.
  std::size_t Contract(NodeId v);

  /// Counts the shortcuts Contract(v) would add, without mutating anything.
  std::size_t SimulateContraction(NodeId v);

  /// Arcs currently connecting active (uncontracted) nodes. After a partial
  /// contraction this is the distance-preserving overlay on the survivors.
  std::vector<HierArc> RemainingArcs() const;

  /// Arcs emitted so far; each arc of the final hierarchy appears exactly
  /// once (when its first endpoint is contracted), with its final weight and
  /// midpoint. Contract every node and this is the whole hierarchy.
  const std::vector<HierArc>& EmittedArcs() const { return emitted_; }

  std::size_t NumShortcutsAdded() const { return shortcuts_added_; }

  /// Witness searches run and nodes settled across them — the dominant cost
  /// of contraction; frozen-order repair exists to shrink these.
  std::size_t NumWitnessSearches() const { return witness_searches_; }
  std::size_t NumWitnessSettled() const { return witness_settled_; }

  /// Directs witness-certificate recording at `sink` (see
  /// hier/witness_certs.h): every candidate pair a witness *search* prunes
  /// is recorded as a replayable path for later frozen-order repairs.
  /// Prefilter prunes carry no parent chain and are not recorded — the
  /// prefilter itself re-proves them cheaply. The caller owns the sink,
  /// must keep it alive across Contract calls, and finalizes it when
  /// contraction is done. Pass nullptr to stop recording.
  void RecordWitnessCerts(WitnessCertTable* sink) { cert_sink_ = sink; }

 private:
  struct OutArcRec {
    NodeId head;
    Weight weight;
    NodeId mid;
  };
  struct InArcRec {
    NodeId tail;
    Weight weight;
    NodeId mid;
  };

  // Inserts or improves u→w; updates both adjacency mirrors.
  bool AddOrImprove(NodeId u, NodeId w, Weight weight, NodeId mid);

  // Shortest u→targets distance check in the active graph minus `excluded`,
  // against the targets_ list (stamped with target_round_) the caller
  // filled. Fills witness_dist_ labels; a target's label may stay kInfDist.
  // Consumes targets_: resolved targets are removed as the search runs.
  void RunWitnessSearch(NodeId u, NodeId excluded);

  // Records the witness path that pruned pair u→w at v's contraction into
  // cert_sink_, by walking the parent chain the witness search laid down.
  // Bails out (recording nothing) if w's label did not come from the
  // current search round — e.g. the prefilter resolved everything.
  void RecordPruneCert(NodeId v, NodeId u, NodeId w);

  // Prefilter companion of RunWitnessSearch: resolves targets_ that some
  // overlay path of at most three arcs from u (avoiding `excluded`)
  // already proves a witness for, marking their cand_ entry pruned and
  // dropping them from targets_. Unresolved targets stay for the Dijkstra
  // search.
  void RunWitnessPrefilter(NodeId u, NodeId excluded);

  Dist WitnessDist(NodeId v) const {
    return witness_stamp_[v] == witness_round_ ? witness_dist_[v] : kInfDist;
  }

  // Per-in-neighbor candidate scratch: head, via weight, and whether the
  // prefilter already proved a witness (computed once, used twice).
  struct CandRec {
    NodeId w;
    Dist via;
    bool pruned;
  };
  // A witness-search target: an unhinted candidate head and its via weight,
  // resolved either by settling (label final) or by the frontier passing
  // its via (label provably larger). cand_index points back at the CandRec
  // so the prefilter can record its verdict.
  struct Target {
    NodeId w;
    Dist via;
    std::uint32_t cand_index;
  };

  ContractionParams params_;
  std::vector<std::vector<OutArcRec>> out_;
  std::vector<std::vector<InArcRec>> in_;
  std::vector<bool> contracted_;
  std::vector<std::uint32_t> contracted_neighbors_;
  std::vector<HierArc> emitted_;
  std::size_t num_contracted_ = 0;
  std::size_t shortcuts_added_ = 0;
  std::size_t witness_searches_ = 0;
  std::size_t witness_settled_ = 0;

  // Reusable witness-search state.
  IndexedHeap witness_heap_;
  std::vector<Dist> witness_dist_;
  std::vector<std::uint32_t> witness_stamp_;
  std::uint32_t witness_round_ = 0;
  // Parent chain of the latest search round, for certificate recording.
  // Stamped separately from the labels: prefilter labels have no parents.
  std::vector<NodeId> witness_parent_;
  std::vector<std::uint32_t> witness_parent_stamp_;
  WitnessCertTable* cert_sink_ = nullptr;
  std::vector<NodeId> cert_path_;
  std::vector<CandRec> cand_;
  std::vector<NodeId> ring_;  // Prefilter scratch: u's labelled neighbors.
  std::vector<Target> targets_;
  std::vector<std::uint32_t> target_stamp_;
  std::uint32_t target_round_ = 0;
};

/// Contracts the given nodes, in order, and returns the overlay arcs among
/// the untouched nodes. Distances between untouched nodes are preserved.
std::vector<HierArc> ContractNodes(std::size_t n,
                                   const std::vector<HierArc>& arcs,
                                   const std::vector<NodeId>& order,
                                   ContractionParams params = {});

}  // namespace ah
