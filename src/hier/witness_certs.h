// Witness certificates: replayable proofs of shortcut pruning decisions.
//
// When contracting v rejects the candidate shortcut u→w, the rejection is
// justified by a concrete witness path u → … → w that avoids v and is no
// longer than w(u,v)+w(v,w). Discovering that path costs a Dijkstra
// witness search (microseconds); after a weights-only graph change the
// *same* path almost always still justifies the rejection, and re-checking
// it costs a handful of arc lookups (nanoseconds). A WitnessCertTable
// therefore stores, per contracted node, the interior nodes of each
// pruning witness so the frozen-order repair kernel can replay them
// instead of searching. A replay that fails — the old witness got slower
// than the candidate — simply falls back to a fresh prefilter + search, so
// certificates never change a decision; they only accelerate re-deriving
// it.
//
// Replay soundness under a frozen order: a witness used at v's step runs
// entirely through nodes ranked above v (the active overlay) over arcs
// that exist by that step. Both facts are functions of the rank
// permutation and the arc topology, neither of which a weights-only
// repair changes, so the stored path is still a valid step-time path in
// the next epoch — only its length must be re-summed.
//
// Tables live in memory next to their index and are intentionally NOT
// serialized: an index loaded from disk repairs cert-less once (every
// non-topology pair gets the full witness treatment), emits a fresh table
// in the process, and is back to certificate speed from the second repair
// on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace ah {

/// One recorded pruning witness for the candidate pair u→w.
struct WitnessCert {
  NodeId u = kInvalidNode;  ///< Candidate tail.
  NodeId w = kInvalidNode;  ///< Candidate head.
  std::uint32_t first = 0;  ///< Interior-node range start in the pool.
  std::uint32_t count = 0;  ///< Number of interior nodes (0 = direct arc).
};

class WitnessCertTable {
 public:
  /// Pre-sizes the record and pool storage (e.g. to the previous table's
  /// counts, the best estimate a repair has).
  void Reserve(std::size_t num_certs, std::size_t pool_nodes) {
    recs_.reserve(num_certs);
    pool_.reserve(pool_nodes);
  }

  std::size_t PoolSize() const { return pool_.size(); }

  /// Records the witness that pruned pair u→w when v was contracted.
  /// `interior` lists the witness path's nodes strictly between u and w,
  /// in path order (may be empty: a single arc u→w can be a witness).
  /// Records may arrive in any order; Finalize sorts them.
  void Record(NodeId v, NodeId u, NodeId w, const NodeId* interior,
              std::size_t count);

  /// Builds the per-node lookup structure. Call exactly once, after the
  /// last Record and before the first Find. `n` is the node-id space.
  void Finalize(std::size_t n);

  /// The certificate recorded for pair u→w at v's contraction, or nullptr.
  /// Only valid after Finalize.
  const WitnessCert* Find(NodeId v, NodeId u, NodeId w) const;

  /// Interior nodes of `cert`, in path order from u towards w.
  const NodeId* Interior(const WitnessCert& cert) const {
    return pool_.data() + cert.first;
  }

  std::size_t NumCerts() const { return recs_.size(); }
  std::size_t SizeBytes() const {
    return recs_.capacity() * sizeof(Rec) +
           pool_.capacity() * sizeof(NodeId) +
           first_.capacity() * sizeof(std::uint64_t);
  }

 private:
  struct Rec {
    NodeId v;
    WitnessCert cert;
  };

  std::vector<Rec> recs_;
  std::vector<NodeId> pool_;
  /// Per-v slice bounds into recs_; size n+1 once finalized, else empty.
  std::vector<std::uint64_t> first_;
};

}  // namespace ah
