// Bidirectional upward search over a SearchGraph — the query engine behind
// CH and AH. Both frontiers only ever move from lower-ranked to
// higher-ranked nodes (the paper's rank constraint); the standard hierarchy
// argument makes the result exact whenever the shortcut set came from
// witness-checked contraction. AH layers its proximity filter and elevating
// seeds on top via the template hooks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "hier/search_graph.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

struct QueryStats {
  std::size_t settled = 0;
  std::size_t relaxed = 0;
  std::size_t stalled = 0;
};

/// An initial frontier entry: node plus the (exact) distance from the query
/// endpoint. Plain queries use a single seed {s, 0}; AH's elevating jumps
/// seed the frontier directly at high-level nodes.
struct SearchSeed {
  NodeId node = kInvalidNode;
  Dist dist = 0;
};

/// Accepts every arc; the default filter.
struct NoFilter {
  bool operator()(NodeId /*from*/, NodeId /*to*/) const { return true; }
};

class BidirUpwardSearch {
 public:
  explicit BidirUpwardSearch(const SearchGraph& sg)
      : sg_(sg),
        fwd_(sg.NumNodes()),
        bwd_(sg.NumNodes()) {}

  /// Runs the bidirectional upward search. Filters decide, per relaxation,
  /// whether the arc from→to may be taken (applied on top of the rank
  /// constraint, which is structural: only upward arcs are stored).
  /// Returns the shortest distance, kInfDist if the frontiers never meet.
  template <typename FwdFilter = NoFilter, typename BwdFilter = NoFilter>
  Dist Run(std::span<const SearchSeed> fwd_seeds,
           std::span<const SearchSeed> bwd_seeds,
           FwdFilter fwd_filter = {}, BwdFilter bwd_filter = {}) {
    ++round_;
    stats_ = {};
    best_ = kInfDist;
    meet_ = kInvalidNode;
    fwd_.heap.Clear();
    bwd_.heap.Clear();

    for (const SearchSeed& seed : fwd_seeds) Seed(fwd_, seed);
    for (const SearchSeed& seed : bwd_seeds) Seed(bwd_, seed);

    bool forward_turn = true;
    while (!fwd_.heap.Empty() || !bwd_.heap.Empty()) {
      const Dist fmin = fwd_.heap.Empty() ? kInfDist : fwd_.heap.MinKey();
      const Dist bmin = bwd_.heap.Empty() ? kInfDist : bwd_.heap.MinKey();
      if (best_ <= std::min(fmin, bmin)) break;
      if (forward_turn && fwd_.heap.Empty()) forward_turn = false;
      if (!forward_turn && bwd_.heap.Empty()) forward_turn = true;
      if (forward_turn) {
        SettleOne(fwd_, bwd_, /*forward=*/true, fwd_filter);
      } else {
        SettleOne(bwd_, fwd_, /*forward=*/false, bwd_filter);
      }
      forward_turn = !forward_turn;
    }
    return best_;
  }

  /// Convenience single-pair run without filters.
  Dist Distance(NodeId s, NodeId t) {
    if (s == t) {
      // Normalize: zero-distance identity query.
      const SearchSeed seed{s, 0};
      Run(std::span(&seed, 1), std::span(&seed, 1));
      return 0;
    }
    const SearchSeed fs{s, 0};
    const SearchSeed ts{t, 0};
    return Run(std::span(&fs, 1), std::span(&ts, 1));
  }

  Dist BestDistance() const { return best_; }
  NodeId MeetNode() const { return meet_; }
  const QueryStats& Stats() const { return stats_; }

  /// Toggles stall-on-demand (default on; an engine-level optimization that
  /// benefits CH and AH equally and preserves exactness).
  void SetStallOnDemand(bool enabled) { stall_on_demand_ = enabled; }

  /// Hierarchy-space path of the last Run: seed_f, ..., meet, ..., seed_b —
  /// consecutive elements are hierarchy arcs. Empty if no meeting occurred.
  /// The caller expands shortcuts via SearchGraph::UnpackPath and stitches
  /// seed prefixes/suffixes if elevating seeds were used.
  std::vector<NodeId> HierarchyPath() const {
    std::vector<NodeId> path;
    if (meet_ == kInvalidNode) return path;
    for (NodeId v = meet_; v != kInvalidNode; v = Parent(fwd_, v)) {
      path.push_back(v);
    }
    std::reverse(path.begin(), path.end());
    for (NodeId v = Parent(bwd_, meet_); v != kInvalidNode;
         v = Parent(bwd_, v)) {
      path.push_back(v);
    }
    return path;
  }

  /// The seed node from which the meet was reached on each side (equals the
  /// first/last entry of HierarchyPath()).
  NodeId FwdSeedOfMeet() const {
    return meet_ == kInvalidNode ? kInvalidNode : ChainStart(fwd_, meet_);
  }
  NodeId BwdSeedOfMeet() const {
    return meet_ == kInvalidNode ? kInvalidNode : ChainStart(bwd_, meet_);
  }

 private:
  struct Side {
    explicit Side(std::size_t n)
        : heap(n), dist(n, kInfDist), parent(n, kInvalidNode), stamp(n, 0) {}
    IndexedHeap heap;
    std::vector<Dist> dist;
    std::vector<NodeId> parent;
    std::vector<std::uint32_t> stamp;
  };

  void Seed(Side& side, const SearchSeed& seed) {
    if (side.stamp[seed.node] == round_ && side.dist[seed.node] <= seed.dist) {
      return;
    }
    side.stamp[seed.node] = round_;
    side.dist[seed.node] = seed.dist;
    side.parent[seed.node] = kInvalidNode;
    side.heap.PushOrDecrease(seed.node, seed.dist);
  }

  NodeId Parent(const Side& side, NodeId v) const {
    return side.stamp[v] == round_ ? side.parent[v] : kInvalidNode;
  }

  NodeId ChainStart(const Side& side, NodeId v) const {
    while (Parent(side, v) != kInvalidNode) v = Parent(side, v);
    return v;
  }

  // Stall-on-demand: u's label is witnessed suboptimal if a higher-ranked
  // node w already holds a label that reaches u more cheaply through the
  // *downward* arc w→u (forward side; symmetric for backward). Expanding a
  // stalled node cannot contribute to a shortest path.
  bool IsStalled(const Side& side, NodeId u, Dist d, bool forward) const {
    const auto down_arcs = forward ? sg_.UpIn(u) : sg_.UpOut(u);
    for (const UpArc& a : down_arcs) {
      if (side.stamp[a.node] == round_ &&
          side.dist[a.node] + a.weight < d) {
        return true;
      }
    }
    return false;
  }

  template <typename Filter>
  void SettleOne(Side& side, const Side& other, bool forward,
                 Filter& filter) {
    if (side.heap.Empty()) return;
    auto [d, u] = side.heap.PopMin();
    ++stats_.settled;
    if (other.stamp[u] == round_) {
      const Dist via = d + other.dist[u];
      if (via < best_) {
        best_ = via;
        meet_ = u;
      }
    }
    if (stall_on_demand_ && IsStalled(side, u, d, forward)) {
      ++stats_.stalled;
      return;
    }
    const auto arcs = forward ? sg_.UpOut(u) : sg_.UpIn(u);
    for (const UpArc& a : arcs) {
      if (!filter(u, a.node)) continue;
      ++stats_.relaxed;
      const Dist nd = d + a.weight;
      if (side.stamp[a.node] != round_ || nd < side.dist[a.node]) {
        side.stamp[a.node] = round_;
        side.dist[a.node] = nd;
        side.parent[a.node] = u;
        side.heap.PushOrDecrease(a.node, nd);
      }
    }
  }

  const SearchGraph& sg_;
  Side fwd_;
  Side bwd_;
  std::uint32_t round_ = 0;
  Dist best_ = kInfDist;
  NodeId meet_ = kInvalidNode;
  bool stall_on_demand_ = true;
  QueryStats stats_;
};

}  // namespace ah
