// The query-time representation of a contracted hierarchy: upward adjacency
// in both directions plus per-arc midpoint tables for O(k) path unpacking.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "hier/contraction.h"
#include "util/types.h"

namespace ah {

/// An upward arc as seen from its lower-ranked endpoint.
struct UpArc {
  NodeId node = kInvalidNode;  ///< The higher-ranked endpoint.
  Weight weight = 0;
};

/// Immutable hierarchy built from the arcs a full contraction emitted and a
/// rank permutation. Every arc (u,v) is stored once: in the upward-forward
/// list of u when rank(v) > rank(u), otherwise in the upward-backward list
/// of v (for the reverse search). A separate per-node table keyed by head
/// node retains weights and midpoints for unpacking.
class SearchGraph {
 public:
  SearchGraph() = default;
  SearchGraph(std::size_t n, const std::vector<HierArc>& arcs,
              std::vector<Rank> rank);

  std::size_t NumNodes() const { return rank_.size(); }
  Rank RankOf(NodeId v) const { return rank_[v]; }

  /// Upward out-arcs: arcs u→v with rank(v) > rank(u), indexed by u.
  std::span<const UpArc> UpOut(NodeId u) const {
    return {up_out_arcs_.data() + up_out_first_[u],
            up_out_arcs_.data() + up_out_first_[u + 1]};
  }

  /// Upward in-arcs: arcs w→v with rank(w) > rank(v), indexed by v;
  /// UpArc::node is w.
  std::span<const UpArc> UpIn(NodeId v) const {
    return {up_in_arcs_.data() + up_in_first_[v],
            up_in_arcs_.data() + up_in_first_[v + 1]};
  }

  /// Total number of stored arcs (original + shortcuts).
  std::size_t NumArcs() const { return up_out_arcs_.size() + up_in_arcs_.size(); }

  /// Appends the fully expanded node sequence of arc u→v to `out`,
  /// excluding u and including v. The arc must exist in the hierarchy.
  void AppendUnpacked(NodeId u, NodeId v, std::vector<NodeId>* out) const;

  /// Expands a hierarchy path (node sequence where consecutive nodes are
  /// hierarchy arcs) into the original-graph path.
  std::vector<NodeId> UnpackPath(const std::vector<NodeId>& hierarchy_path) const;

  /// Weight of hierarchy arc u→v, or kMaxWeight if absent.
  Weight HierArcWeight(NodeId u, NodeId v) const;

  std::size_t SizeBytes() const;

  /// Binary persistence (magic "AHSG").
  void Save(std::ostream& out) const;
  static SearchGraph Load(std::istream& in);

 private:
  struct PackedArc {
    NodeId head;
    Weight weight;
    NodeId mid;
  };

  // Midpoint lookup for arc u→v; kInvalidNode mid = original edge;
  // returns false if the arc is unknown.
  bool LookupArc(NodeId u, NodeId v, PackedArc* found) const;

  std::vector<Rank> rank_;
  std::vector<std::uint64_t> up_out_first_;
  std::vector<UpArc> up_out_arcs_;
  std::vector<std::uint64_t> up_in_first_;
  std::vector<UpArc> up_in_arcs_;

  // All arcs grouped by tail, heads sorted for binary search (unpacking).
  std::vector<std::uint64_t> all_first_;
  std::vector<PackedArc> all_arcs_;
};

}  // namespace ah
