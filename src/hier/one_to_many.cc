#include "hier/one_to_many.h"

#include <algorithm>

namespace ah {

OneToMany::OneToMany(const SearchGraph& sg, std::vector<NodeId> targets)
    : sg_(sg),
      targets_(std::move(targets)),
      buckets_(sg, targets_, /*num_threads=*/1),
      scratch_(sg.NumNodes()) {}

std::vector<Dist> OneToMany::DistancesFrom(NodeId s) {
  std::vector<Dist> result(targets_.size(), kInfDist);
  CombineFromSource(sg_, buckets_, s, scratch_, result);
  return result;
}

std::vector<std::pair<NodeId, Dist>> OneToMany::KNearest(NodeId s,
                                                         std::size_t k) {
  const std::vector<Dist> dists = DistancesFrom(s);
  std::vector<std::pair<NodeId, Dist>> ranked;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (dists[i] != kInfDist) ranked.push_back({targets_[i], dists[i]});
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace ah
