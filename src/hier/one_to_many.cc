#include "hier/one_to_many.h"

#include <algorithm>

namespace ah {

OneToMany::OneToMany(const SearchGraph& sg, std::vector<NodeId> targets)
    : sg_(sg),
      targets_(std::move(targets)),
      heap_(sg.NumNodes()),
      dist_(sg.NumNodes(), kInfDist),
      stamp_(sg.NumNodes(), 0) {
  const std::size_t n = sg_.NumNodes();

  // One backward upward search per target; collect raw (node, entry) pairs,
  // then pack into CSR buckets.
  std::vector<std::pair<NodeId, BucketEntry>> raw;
  for (std::uint32_t k = 0; k < targets_.size(); ++k) {
    ++round_;
    heap_.Clear();
    const NodeId t = targets_[k];
    stamp_[t] = round_;
    dist_[t] = 0;
    heap_.PushOrDecrease(t, 0);
    while (!heap_.Empty()) {
      auto [d, u] = heap_.PopMin();
      raw.push_back({u, BucketEntry{k, d}});
      for (const UpArc& a : sg_.UpIn(u)) {
        const Dist nd = d + a.weight;
        if (stamp_[a.node] != round_ || nd < dist_[a.node]) {
          stamp_[a.node] = round_;
          dist_[a.node] = nd;
          heap_.PushOrDecrease(a.node, nd);
        }
      }
    }
  }

  std::sort(raw.begin(), raw.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.target_index < b.second.target_index;
  });
  bucket_first_.assign(n + 1, 0);
  for (const auto& [node, entry] : raw) ++bucket_first_[node + 1];
  for (std::size_t v = 0; v < n; ++v) bucket_first_[v + 1] += bucket_first_[v];
  bucket_entries_.resize(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    bucket_entries_[i] = raw[i].second;
  }
}

const std::vector<Dist>& OneToMany::DistancesFrom(NodeId s) {
  result_.assign(targets_.size(), kInfDist);
  ++round_;
  heap_.Clear();
  stamp_[s] = round_;
  dist_[s] = 0;
  heap_.PushOrDecrease(s, 0);
  while (!heap_.Empty()) {
    auto [d, u] = heap_.PopMin();
    // Scan u's bucket: candidate distance via the up-down path peaking at u.
    for (std::uint64_t i = bucket_first_[u]; i < bucket_first_[u + 1]; ++i) {
      const BucketEntry& entry = bucket_entries_[i];
      const Dist via = d + entry.dist;
      if (via < result_[entry.target_index]) {
        result_[entry.target_index] = via;
      }
    }
    for (const UpArc& a : sg_.UpOut(u)) {
      const Dist nd = d + a.weight;
      if (stamp_[a.node] != round_ || nd < dist_[a.node]) {
        stamp_[a.node] = round_;
        dist_[a.node] = nd;
        heap_.PushOrDecrease(a.node, nd);
      }
    }
  }
  return result_;
}

std::vector<std::pair<NodeId, Dist>> OneToMany::KNearest(NodeId s,
                                                         std::size_t k) {
  const std::vector<Dist>& dists = DistancesFrom(s);
  std::vector<std::pair<NodeId, Dist>> ranked;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (dists[i] != kInfDist) ranked.push_back({targets_[i], dists[i]});
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace ah
