// Query workload generation (§6.1): ten query sets Q1..Q10 where the pairs
// in Qi have network distance in [2^(i-11)·lmax, 2^(i-10)·lmax) — i.e.,
// successive sets double the query distance, Q10 approaching the graph
// "diameter" lmax.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace ah {

struct QuerySet {
  int index = 0;  ///< 1-based i of Qi.
  Dist lo = 0;    ///< Inclusive lower distance bound.
  Dist hi = 0;    ///< Exclusive upper distance bound.
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

struct WorkloadParams {
  std::size_t pairs_per_set = 100;  ///< Paper uses 10000; scaled default.
  std::size_t num_sets = 10;
  /// Maximum number of source Dijkstras spent filling the buckets.
  std::size_t max_source_rounds = 400;
  /// Per-source cap of pairs contributed to one bucket (diversity).
  std::size_t per_source_quota = 10;
  std::uint64_t seed = 123;
};

struct Workload {
  Dist lmax = 0;  ///< Estimated maximum network distance (double sweep).
  std::vector<QuerySet> sets;
};

/// Estimates lmax with a double-sweep (Dijkstra from a random node, then
/// from the farthest node found).
Dist EstimateMaxDistance(const Graph& g, std::uint64_t seed);

/// Generates the ten distance-stratified query sets. Sets whose distance
/// band contains few reachable pairs may end up short; callers should use
/// QuerySet::pairs.size().
Workload GenerateWorkload(const Graph& g, const WorkloadParams& params = {});

}  // namespace ah
