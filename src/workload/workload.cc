#include "workload/workload.h"

#include <algorithm>

#include "routing/dijkstra.h"
#include "util/rng.h"

namespace ah {

Dist EstimateMaxDistance(const Graph& g, std::uint64_t seed) {
  if (g.NumNodes() == 0) return 0;
  Rng rng(seed);
  Dijkstra dijkstra(g);

  NodeId start = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
  Dist best = 0;
  for (int sweep = 0; sweep < 2; ++sweep) {
    dijkstra.Run(start);
    NodeId farthest = start;
    Dist far_dist = 0;
    for (NodeId v : dijkstra.SettledNodes()) {
      const Dist d = dijkstra.DistTo(v);
      if (d > far_dist) {
        far_dist = d;
        farthest = v;
      }
    }
    best = std::max(best, far_dist);
    start = farthest;
  }
  return best;
}

Workload GenerateWorkload(const Graph& g, const WorkloadParams& params) {
  Workload workload;
  workload.lmax = EstimateMaxDistance(g, params.seed);
  const std::size_t k = params.num_sets;

  workload.sets.resize(k);
  for (std::size_t i = 1; i <= k; ++i) {
    QuerySet& qs = workload.sets[i - 1];
    qs.index = static_cast<int>(i);
    // [2^(i-11)·lmax, 2^(i-10)·lmax) for num_sets = 10: Q10 = [lmax/2, lmax).
    qs.hi = workload.lmax >> (k - i);
    qs.lo = i == 1 ? 0 : (workload.lmax >> (k - i + 1));
    if (i == 1) qs.lo = qs.hi / 2;  // Q1's band is [lmax/1024, lmax/512).
  }

  Rng rng(params.seed ^ 0x9e3779b97f4a7c15ULL);
  Dijkstra dijkstra(g);
  std::vector<NodeId> candidates;

  std::size_t unfilled = k;
  for (std::size_t round = 0;
       round < params.max_source_rounds && unfilled > 0; ++round) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    dijkstra.Run(s);
    for (QuerySet& qs : workload.sets) {
      if (qs.pairs.size() >= params.pairs_per_set) continue;
      candidates.clear();
      for (NodeId v : dijkstra.SettledNodes()) {
        const Dist d = dijkstra.DistTo(v);
        if (d >= qs.lo && d < qs.hi && v != s) candidates.push_back(v);
      }
      if (candidates.empty()) continue;
      const std::size_t want =
          std::min({params.per_source_quota,
                    params.pairs_per_set - qs.pairs.size(),
                    candidates.size()});
      // Partial Fisher-Yates sample of `want` targets.
      for (std::size_t i = 0; i < want; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.Uniform(candidates.size() - i));
        std::swap(candidates[i], candidates[j]);
        qs.pairs.emplace_back(s, candidates[i]);
      }
    }
    unfilled = 0;
    for (const QuerySet& qs : workload.sets) {
      if (qs.pairs.size() < params.pairs_per_set) ++unfilled;
    }
  }
  return workload;
}

}  // namespace ah
