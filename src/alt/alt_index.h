// ALT (A*, Landmarks, Triangle inequality; Goldberg & Harrelson, SODA'05) —
// one of the heuristic competitors surveyed in the paper's related work
// ([12]). Included as an extension baseline beyond the paper's evaluated
// set: it brackets where goal-direction alone lands between Dijkstra and
// the hierarchy methods.
//
// Preprocessing stores, for a small set of landmarks chosen by farthest-
// point selection, the distances from and to every node. A query runs A*
// with the triangle-inequality potential
//   π(v) = max_l max( d(v,l) − d(t,l), d(l,t) − d(l,v) ),
// which is feasible and consistent, so the search is exact.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/path.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

struct AltParams {
  std::size_t num_landmarks = 8;
  std::uint64_t seed = 5;
};

class AltIndex {
 public:
  /// Builds landmark distance tables: 2 * num_landmarks Dijkstras, O(L*n)
  /// space.
  static AltIndex Build(const Graph& g, const AltParams& params = {});

  std::size_t NumNodes() const { return n_; }
  std::size_t NumLandmarks() const { return landmarks_.size(); }
  const std::vector<NodeId>& landmarks() const { return landmarks_; }

  /// d(landmark l, v) and d(v, landmark l); kInfDist if unreachable.
  Dist FromLandmark(std::size_t l, NodeId v) const {
    return from_[l * n_ + v];
  }
  Dist ToLandmark(std::size_t l, NodeId v) const { return to_[l * n_ + v]; }

  /// Lower bound on d(v, t) from the landmark triangle inequalities.
  Dist Potential(NodeId v, NodeId t) const;

  std::size_t SizeBytes() const;
  double build_seconds() const { return build_seconds_; }

 private:
  std::size_t n_ = 0;
  std::vector<NodeId> landmarks_;
  std::vector<Dist> from_;  // [l*n + v] = d(landmark_l, v).
  std::vector<Dist> to_;    // [l*n + v] = d(v, landmark_l).
  double build_seconds_ = 0;
};

/// A* query engine over an AltIndex (one per thread).
class AltQuery {
 public:
  AltQuery(const Graph& g, const AltIndex& index);

  Dist Distance(NodeId s, NodeId t);

  /// Shortest path from the same A* search (exact; empty nodes if
  /// unreachable).
  PathResult Path(NodeId s, NodeId t);

  std::size_t LastSettled() const { return last_settled_; }

 private:
  const Graph& graph_;
  const AltIndex& index_;
  IndexedHeap heap_;
  std::vector<Dist> dist_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t round_ = 0;
  std::size_t last_settled_ = 0;
};

}  // namespace ah
