#include "alt/alt_index.h"

#include <algorithm>

#include "routing/dijkstra.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ah {

AltIndex AltIndex::Build(const Graph& g, const AltParams& params) {
  Timer timer;
  AltIndex index;
  index.n_ = g.NumNodes();
  const std::size_t L = std::max<std::size_t>(1, params.num_landmarks);

  // Farthest-point landmark selection: start from a random node, then
  // repeatedly pick the node maximizing the minimum distance to the chosen
  // set (using forward distances).
  Rng rng(params.seed);
  Dijkstra dijkstra(g);
  std::vector<Dist> min_dist(index.n_, kInfDist);
  NodeId candidate = static_cast<NodeId>(rng.Uniform(index.n_));
  for (std::size_t l = 0; l < L; ++l) {
    index.landmarks_.push_back(candidate);
    dijkstra.Run(candidate);
    NodeId farthest = candidate;
    Dist far_d = 0;
    for (NodeId v = 0; v < index.n_; ++v) {
      min_dist[v] = std::min(min_dist[v], dijkstra.DistTo(v));
      if (min_dist[v] != kInfDist && min_dist[v] > far_d) {
        far_d = min_dist[v];
        farthest = v;
      }
    }
    candidate = farthest;
  }

  index.from_.resize(L * index.n_);
  index.to_.resize(L * index.n_);
  for (std::size_t l = 0; l < L; ++l) {
    dijkstra.Run(index.landmarks_[l], Direction::kForward);
    for (NodeId v = 0; v < index.n_; ++v) {
      index.from_[l * index.n_ + v] = dijkstra.DistTo(v);
    }
    dijkstra.Run(index.landmarks_[l], Direction::kBackward);
    for (NodeId v = 0; v < index.n_; ++v) {
      index.to_[l * index.n_ + v] = dijkstra.DistTo(v);
    }
  }
  index.build_seconds_ = timer.Seconds();
  return index;
}

Dist AltIndex::Potential(NodeId v, NodeId t) const {
  Dist best = 0;
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    const Dist v_to_l = ToLandmark(l, v);
    const Dist t_to_l = ToLandmark(l, t);
    if (v_to_l != kInfDist && t_to_l != kInfDist && v_to_l > t_to_l) {
      best = std::max(best, v_to_l - t_to_l);
    }
    const Dist l_to_v = FromLandmark(l, v);
    const Dist l_to_t = FromLandmark(l, t);
    if (l_to_v != kInfDist && l_to_t != kInfDist && l_to_t > l_to_v) {
      best = std::max(best, l_to_t - l_to_v);
    }
  }
  return best;
}

std::size_t AltIndex::SizeBytes() const {
  return landmarks_.size() * sizeof(NodeId) +
         (from_.size() + to_.size()) * sizeof(Dist);
}

AltQuery::AltQuery(const Graph& g, const AltIndex& index)
    : graph_(g),
      index_(index),
      heap_(g.NumNodes()),
      dist_(g.NumNodes(), kInfDist),
      parent_(g.NumNodes(), kInvalidNode),
      stamp_(g.NumNodes(), 0) {}

Dist AltQuery::Distance(NodeId s, NodeId t) {
  last_settled_ = 0;
  if (s == t) return 0;
  ++round_;
  heap_.Clear();

  stamp_[s] = round_;
  dist_[s] = 0;
  parent_[s] = kInvalidNode;
  heap_.PushOrDecrease(s, index_.Potential(s, t));
  while (!heap_.Empty()) {
    auto [key, u] = heap_.PopMin();
    (void)key;
    ++last_settled_;
    if (u == t) return dist_[u];
    const Dist du = dist_[u];
    for (const Arc& a : graph_.OutArcs(u)) {
      const Dist nd = du + a.weight;
      if (stamp_[a.head] != round_ || nd < dist_[a.head]) {
        stamp_[a.head] = round_;
        dist_[a.head] = nd;
        parent_[a.head] = u;
        // Consistent potential: settled nodes are final, A* stays Dijkstra-
        // like on the re-weighted graph.
        heap_.PushOrDecrease(a.head, nd + index_.Potential(a.head, t));
      }
    }
  }
  return kInfDist;
}

PathResult AltQuery::Path(NodeId s, NodeId t) {
  PathResult result;
  const Dist d = Distance(s, t);
  if (d == kInfDist) return result;
  result.length = d;
  if (s == t) {
    result.nodes.push_back(s);
    return result;
  }
  // The parent chain from t necessarily ends at the search source s.
  for (NodeId v = t; v != kInvalidNode; v = parent_[v]) {
    result.nodes.push_back(v);
  }
  std::reverse(result.nodes.begin(), result.nodes.end());
  return result;
}

}  // namespace ah

