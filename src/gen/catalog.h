// Dataset catalog mirroring Table 2 of the paper.
//
// The paper's ten datasets are parts of the DIMACS US road network. Offline,
// we synthesize stand-ins with the same names at a configurable node-count
// scale, so every bench keys its rows on the paper's dataset identifiers
// (see DESIGN.md §4, substitution 1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ah {

struct DatasetSpec {
  std::string name;         ///< Paper's identifier (DE, NH, ..., US).
  std::string region;       ///< "Corresponding Region" column of Table 2.
  std::size_t paper_nodes;  ///< Node count reported in Table 2.
  std::size_t paper_arcs;   ///< Edge count reported in Table 2.
};

/// The ten datasets of Table 2, smallest first.
const std::vector<DatasetSpec>& PaperDatasets();

/// Looks up a dataset spec by name; std::nullopt if unknown.
std::optional<DatasetSpec> FindDataset(const std::string& name);

/// Generates the synthetic stand-in for `spec` with ~paper_nodes*scale nodes.
/// Deterministic: the seed is derived from the dataset name.
Graph MakeScaledDataset(const DatasetSpec& spec, double scale);

/// Bench scale taken from the AH_BENCH_SCALE environment variable:
/// "tiny" = 1/256, "small" = 1/64, "default"/unset = 1/16, "large" = 1/4,
/// "full" = 1, or any positive decimal fraction. Values are clamped to
/// (0, 1].
double BenchScaleFromEnv();

/// Number of leading catalog datasets a bench should cover, from the
/// AH_BENCH_DATASETS environment variable (default `fallback`, clamped to
/// [1, 10]). Benches use the prefix of PaperDatasets(), i.e. the smaller
/// networks first, exactly as the paper scales its figures up.
std::size_t BenchDatasetCountFromEnv(std::size_t fallback);

}  // namespace ah
