// Synthetic road-network generator.
//
// The paper evaluates on the DIMACS US travel-time graphs, which are not
// available offline. This generator synthesizes networks with the structural
// properties those graphs have and that the paper's techniques exploit:
//   * planar-ish, degree-bounded, strongly connected;
//   * a road hierarchy: dense local streets, sparser arterial roads, and
//     sparse highways with higher speeds (lower travel time per distance) —
//     which is precisely what keeps the arterial dimension (Assumption 1)
//     small: long shortest paths climb onto the few fast roads crossing a
//     region's bisector;
//   * travel-time edge weights derived from geometric length / road speed;
//   * a small share of one-way streets (the graphs are directed).
//
// The layout is a jittered grid of intersections. Every `arterial_period`-th
// row/column is an arterial and every `highway_period`-th is a highway; edges
// inherit the class of the line they run along. Local edges are randomly
// deleted to create irregular blocks; the largest strongly connected
// component is returned.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace ah {

struct RoadGenParams {
  /// Intersections per side (cols × rows grid before edge deletion / SCC).
  std::uint32_t cols = 64;
  std::uint32_t rows = 64;

  /// Coordinate units between adjacent intersections.
  std::int32_t spacing = 1000;
  /// Coordinate jitter as a fraction of spacing, in [0, 0.49].
  double jitter = 0.30;

  /// Keep probability per undirected local / arterial / highway street edge.
  double local_keep = 0.72;
  double arterial_keep = 0.96;
  double highway_keep = 0.995;

  /// Every arterial_period-th grid line is an arterial; every
  /// highway_period-th is a highway (highways win where both divide).
  std::uint32_t arterial_period = 8;
  std::uint32_t highway_period = 32;

  /// Travel speeds (distance units per time unit) per road class.
  double local_speed = 1.0;
  double arterial_speed = 2.2;
  double highway_speed = 4.0;

  /// Probability that a kept local edge is one-way.
  double oneway_prob = 0.04;
  /// Probability of an extra diagonal local connection per grid vertex.
  double diagonal_prob = 0.03;

  std::uint64_t seed = 1;
};

/// Generates a road network and returns its largest strongly connected
/// component. Edge weights are travel times: length / class speed, scaled by
/// 10 and rounded, minimum 1 (deci-units, mirroring DIMACS integer times).
Graph GenerateRoadNetwork(const RoadGenParams& params);

/// Chooses grid dimensions so the generated SCC has roughly `target_nodes`
/// nodes (the SCC retains ~95% of grid vertices under default parameters).
RoadGenParams ParamsForTargetNodes(std::size_t target_nodes,
                                   std::uint64_t seed);

}  // namespace ah
