#include "gen/road_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "geo/point.h"
#include "graph/builder.h"
#include "graph/connectivity.h"
#include "util/rng.h"

namespace ah {

namespace {

enum class RoadClass { kLocal, kArterial, kHighway };

RoadClass LineClass(std::uint32_t index, const RoadGenParams& p) {
  if (p.highway_period > 0 && index % p.highway_period == 0) {
    return RoadClass::kHighway;
  }
  if (p.arterial_period > 0 && index % p.arterial_period == 0) {
    return RoadClass::kArterial;
  }
  return RoadClass::kLocal;
}

double SpeedOf(RoadClass c, const RoadGenParams& p) {
  switch (c) {
    case RoadClass::kHighway:
      return p.highway_speed;
    case RoadClass::kArterial:
      return p.arterial_speed;
    case RoadClass::kLocal:
      return p.local_speed;
  }
  return p.local_speed;
}

double KeepProb(RoadClass c, const RoadGenParams& p) {
  switch (c) {
    case RoadClass::kHighway:
      return p.highway_keep;
    case RoadClass::kArterial:
      return p.arterial_keep;
    case RoadClass::kLocal:
      return p.local_keep;
  }
  return p.local_keep;
}

Weight TravelTime(const Point& a, const Point& b, RoadClass c,
                  const RoadGenParams& p) {
  const double t = L2Distance(a, b) / SpeedOf(c, p) * 10.0;
  return static_cast<Weight>(std::max(1.0, static_cast<double>(std::llround(t))));
}

}  // namespace

Graph GenerateRoadNetwork(const RoadGenParams& p) {
  if (p.cols < 2 || p.rows < 2) {
    throw std::invalid_argument("RoadGenParams: grid must be at least 2x2");
  }
  if (p.local_speed <= 0 || p.arterial_speed <= 0 || p.highway_speed <= 0) {
    throw std::invalid_argument("RoadGenParams: speeds must be positive");
  }
  Rng rng(p.seed);

  const std::size_t n_grid = static_cast<std::size_t>(p.cols) * p.rows;
  const std::int32_t max_jitter =
      static_cast<std::int32_t>(p.spacing * std::clamp(p.jitter, 0.0, 0.49));

  auto node_at = [&](std::uint32_t i, std::uint32_t j) -> NodeId {
    return static_cast<NodeId>(j * p.cols + i);
  };

  // Place jittered intersections.
  std::vector<Point> pos(n_grid);
  for (std::uint32_t j = 0; j < p.rows; ++j) {
    for (std::uint32_t i = 0; i < p.cols; ++i) {
      std::int32_t jx = 0;
      std::int32_t jy = 0;
      if (max_jitter > 0) {
        jx = static_cast<std::int32_t>(rng.UniformInt(-max_jitter, max_jitter));
        jy = static_cast<std::int32_t>(rng.UniformInt(-max_jitter, max_jitter));
      }
      pos[node_at(i, j)] = Point{static_cast<std::int32_t>(i * p.spacing) + jx,
                                 static_cast<std::int32_t>(j * p.spacing) + jy};
    }
  }

  GraphBuilder builder(n_grid);
  for (const Point& pt : pos) builder.AddNode(pt);

  // Local edges may be one-way; arterials and highways are always two-way
  // (they are the long-haul corridors whose integrity keeps the arterial
  // dimension small).
  auto emit = [&](NodeId a, NodeId b, RoadClass c) {
    if (!rng.Chance(KeepProb(c, p))) return;
    const Weight w = TravelTime(pos[a], pos[b], c, p);
    if (c == RoadClass::kLocal && rng.Chance(p.oneway_prob)) {
      if (rng.Chance(0.5)) {
        builder.AddArc(a, b, w);
      } else {
        builder.AddArc(b, a, w);
      }
    } else {
      builder.AddBidirectional(a, b, w);
    }
  };

  // Horizontal edges run along row j; vertical edges along column i.
  for (std::uint32_t j = 0; j < p.rows; ++j) {
    const RoadClass row_class = LineClass(j, p);
    for (std::uint32_t i = 0; i + 1 < p.cols; ++i) {
      emit(node_at(i, j), node_at(i + 1, j), row_class);
    }
  }
  for (std::uint32_t i = 0; i < p.cols; ++i) {
    const RoadClass col_class = LineClass(i, p);
    for (std::uint32_t j = 0; j + 1 < p.rows; ++j) {
      emit(node_at(i, j), node_at(i, j + 1), col_class);
    }
  }

  // Occasional diagonal local connector (mild non-planarity, like real
  // under/overpasses).
  for (std::uint32_t j = 0; j + 1 < p.rows; ++j) {
    for (std::uint32_t i = 0; i + 1 < p.cols; ++i) {
      if (!rng.Chance(p.diagonal_prob)) continue;
      const bool down = rng.Chance(0.5);
      const NodeId a = down ? node_at(i, j) : node_at(i + 1, j);
      const NodeId b = down ? node_at(i + 1, j + 1) : node_at(i, j + 1);
      const Weight w = TravelTime(pos[a], pos[b], RoadClass::kLocal, p);
      builder.AddBidirectional(a, b, w);
    }
  }

  Graph full = builder.Build();
  return LargestStronglyConnectedComponent(full, nullptr);
}

RoadGenParams ParamsForTargetNodes(std::size_t target_nodes,
                                   std::uint64_t seed) {
  RoadGenParams p;
  p.seed = seed;
  // The SCC keeps roughly 95% of grid vertices under default parameters.
  const double per_side = std::sqrt(static_cast<double>(target_nodes) / 0.95);
  const std::uint32_t side =
      std::max<std::uint32_t>(4, static_cast<std::uint32_t>(per_side + 0.5));
  p.cols = side;
  p.rows = side;
  return p;
}

}  // namespace ah
