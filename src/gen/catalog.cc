#include "gen/catalog.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "gen/road_gen.h"

namespace ah {

const std::vector<DatasetSpec>& PaperDatasets() {
  static const std::vector<DatasetSpec> kDatasets = {
      {"DE", "Delaware", 48812, 120489},
      {"NH", "New Hampshire", 115055, 264218},
      {"ME", "Maine", 187315, 422998},
      {"CO", "Colorado", 435666, 1057066},
      {"FL", "Florida", 1070376, 2712798},
      {"CA", "California and Nevada", 1890815, 4657742},
      {"E-US", "Eastern US", 3598623, 8778114},
      {"W-US", "Western US", 6262104, 15248146},
      {"C-US", "Central US", 14081816, 34292496},
      {"US", "United States", 23947347, 58333344},
  };
  return kDatasets;
}

std::optional<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name) return spec;
  }
  return std::nullopt;
}

Graph MakeScaledDataset(const DatasetSpec& spec, double scale) {
  scale = std::clamp(scale, 1e-6, 1.0);
  const std::size_t target = std::max<std::size_t>(
      64, static_cast<std::size_t>(static_cast<double>(spec.paper_nodes) *
                                   scale));
  // Deterministic seed from the dataset name.
  std::uint64_t seed = 0xcbf29ce484222325ULL;
  for (char c : spec.name) seed = (seed ^ static_cast<unsigned char>(c)) *
                                  0x100000001b3ULL;
  RoadGenParams params = ParamsForTargetNodes(target, seed);
  return GenerateRoadNetwork(params);
}

double BenchScaleFromEnv() {
  const char* raw = std::getenv("AH_BENCH_SCALE");
  if (raw == nullptr || *raw == '\0') return 1.0 / 16.0;
  const std::string v(raw);
  if (v == "tiny") return 1.0 / 256.0;
  if (v == "small") return 1.0 / 64.0;
  if (v == "default") return 1.0 / 16.0;
  if (v == "large") return 1.0 / 4.0;
  if (v == "full") return 1.0;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end != v.c_str() && parsed > 0.0) return std::min(parsed, 1.0);
  return 1.0 / 16.0;
}

std::size_t BenchDatasetCountFromEnv(std::size_t fallback) {
  std::size_t count = fallback;
  if (const char* raw = std::getenv("AH_BENCH_DATASETS")) {
    char* end = nullptr;
    const long parsed = std::strtol(raw, &end, 10);
    if (end != raw && parsed > 0) count = static_cast<std::size_t>(parsed);
  }
  return std::clamp<std::size_t>(count, 1, PaperDatasets().size());
}

}  // namespace ah
