#include "geo/grid.h"

#include <cassert>

namespace ah {

SquareGrid::SquareGrid(std::int64_t origin_x, std::int64_t origin_y,
                       std::int64_t side, std::int32_t cells_per_side)
    : origin_x_(origin_x),
      origin_y_(origin_y),
      side_(side > 0 ? side : 1),
      cells_per_side_(cells_per_side >= 1 ? cells_per_side : 1) {}

SquareGrid SquareGrid::Covering(const Box& box, std::int32_t cells_per_side) {
  assert(!box.Empty());
  const std::int64_t side = std::max<std::int64_t>(box.SquareSide(), 1);
  // Center the square on the box so both dimensions are padded evenly.
  const std::int64_t ox = box.min_x - (side - box.Width()) / 2;
  const std::int64_t oy = box.min_y - (side - box.Height()) / 2;
  return SquareGrid(ox, oy, side, cells_per_side);
}

Cell SquareGrid::CellOf(const Point& p) const {
  // 128-bit-free computation: (p - origin) * cells / side with clamping.
  auto index = [&](std::int64_t coord, std::int64_t origin) -> std::int32_t {
    std::int64_t off = coord - origin;
    if (off < 0) off = 0;
    if (off >= side_) off = side_ - 1;
    // off and cells_per_side_ both fit well within 63 bits after the clamp:
    // off < side_ <= 2^33 and cells_per_side_ <= 2^20 in practice.
    return static_cast<std::int32_t>((off * cells_per_side_) / side_);
  };
  return Cell{index(p.x, origin_x_), index(p.y, origin_y_)};
}

}  // namespace ah
