// A single square grid imposed on a bounding square, as used throughout the
// paper: R_i is a SquareGrid with 2^(h+2-i) cells per side.
#pragma once

#include <cstdint>

#include "geo/point.h"

namespace ah {

/// Integer cell coordinates within a grid.
struct Cell {
  std::int32_t cx = 0;
  std::int32_t cy = 0;

  friend bool operator==(const Cell& a, const Cell& b) {
    return a.cx == b.cx && a.cy == b.cy;
  }
  friend bool operator!=(const Cell& a, const Cell& b) { return !(a == b); }
};

/// 64-bit packed cell key usable in hash maps.
inline std::uint64_t CellKey(const Cell& c) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.cx)) << 32) |
         static_cast<std::uint32_t>(c.cy);
}

/// A `cells_per_side × cells_per_side` square grid that tightly covers a
/// bounding square anchored at (origin_x, origin_y) with side `side`.
///
/// Cell indexing is clamped at the boundary so a point on the maximal edge of
/// the square lands in the last cell rather than out of range.
class SquareGrid {
 public:
  SquareGrid() = default;

  /// Builds a grid over the square [origin, origin+side]² with the given
  /// number of cells per side. side must be > 0 and cells_per_side >= 1.
  SquareGrid(std::int64_t origin_x, std::int64_t origin_y, std::int64_t side,
             std::int32_t cells_per_side);

  /// Grid covering `box`'s smallest enclosing square (centered padding).
  static SquareGrid Covering(const Box& box, std::int32_t cells_per_side);

  std::int32_t cells_per_side() const { return cells_per_side_; }
  std::int64_t side() const { return side_; }
  std::int64_t origin_x() const { return origin_x_; }
  std::int64_t origin_y() const { return origin_y_; }
  /// Cell side length as a double (side may not divide evenly).
  double cell_size() const {
    return static_cast<double>(side_) / cells_per_side_;
  }

  /// Cell containing point p (clamped into range).
  Cell CellOf(const Point& p) const;

  /// True if the two cells are covered by a common 3×3-cell region — the
  /// paper's proximity predicate ("covered in the same (3×3)-cell region").
  /// Equivalent to Chebyshev cell distance <= 2.
  static bool WithinThreeByThree(const Cell& a, const Cell& b) {
    const std::int32_t dx = a.cx > b.cx ? a.cx - b.cx : b.cx - a.cx;
    const std::int32_t dy = a.cy > b.cy ? a.cy - b.cy : b.cy - a.cy;
    return dx <= 2 && dy <= 2;
  }

 private:
  std::int64_t origin_x_ = 0;
  std::int64_t origin_y_ = 0;
  std::int64_t side_ = 1;
  std::int32_t cells_per_side_ = 1;
};

}  // namespace ah
