// Planar integer geometry: points, boxes, and the L∞ / L2 metrics the paper
// uses (node coordinates in DIMACS data are integer micro-degrees).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace ah {

/// A node location. Coordinates are 32-bit integers (DIMACS convention).
struct Point {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
};

/// L∞ (Chebyshev) distance, the metric behind dmax/dmin and α in the paper.
inline std::int64_t LInfDistance(const Point& a, const Point& b) {
  const std::int64_t dx = std::abs(static_cast<std::int64_t>(a.x) - b.x);
  const std::int64_t dy = std::abs(static_cast<std::int64_t>(a.y) - b.y);
  return std::max(dx, dy);
}

/// Euclidean distance (used for edge lengths in the synthetic generator).
inline double L2Distance(const Point& a, const Point& b) {
  const double dx = static_cast<double>(a.x) - b.x;
  const double dy = static_cast<double>(a.y) - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Axis-aligned bounding box, inclusive on all sides.
struct Box {
  std::int32_t min_x = 0;
  std::int32_t min_y = 0;
  std::int32_t max_x = -1;  // Empty by default (max < min).
  std::int32_t max_y = -1;

  bool Empty() const { return max_x < min_x || max_y < min_y; }

  std::int64_t Width() const {
    return static_cast<std::int64_t>(max_x) - min_x;
  }
  std::int64_t Height() const {
    return static_cast<std::int64_t>(max_y) - min_y;
  }
  /// Side of the smallest enclosing square.
  std::int64_t SquareSide() const { return std::max(Width(), Height()); }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  /// Expands the box to include p.
  void Extend(const Point& p) {
    if (Empty()) {
      min_x = max_x = p.x;
      min_y = max_y = p.y;
      return;
    }
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
};

}  // namespace ah
