#include "routing/bidirectional.h"

#include <algorithm>

namespace ah {

BidirectionalDijkstra::BidirectionalDijkstra(const Graph& g) : graph_(g) {
  const std::size_t n = g.NumNodes();
  for (Side* side : {&fwd_, &bwd_}) {
    side->heap.Resize(n);
    side->dist.assign(n, kInfDist);
    side->parent.assign(n, kInvalidNode);
    side->stamp.assign(n, 0);
  }
}

void BidirectionalDijkstra::Reset() {
  ++round_;
  fwd_.heap.Clear();
  bwd_.heap.Clear();
  last_settled_ = 0;
}

// Settles one node from `side`; updates the best meeting point against the
// opposite side's labels. Returns false when the side's queue is exhausted.
bool BidirectionalDijkstra::Relax(Side& side, Direction dir, Dist& best,
                                  NodeId& meet, const Side& other) {
  if (side.heap.Empty()) return false;
  auto [d, u] = side.heap.PopMin();
  ++last_settled_;
  if (other.stamp[u] == round_ && other.dist[u] != kInfDist) {
    const Dist via = d + other.dist[u];
    if (via < best) {
      best = via;
      meet = u;
    }
  }
  const auto arcs =
      dir == Direction::kForward ? graph_.OutArcs(u) : graph_.InArcs(u);
  for (const Arc& a : arcs) {
    const Dist nd = d + a.weight;
    if (side.stamp[a.head] != round_ || nd < side.dist[a.head]) {
      side.stamp[a.head] = round_;
      side.dist[a.head] = nd;
      side.parent[a.head] = u;
      side.heap.PushOrDecrease(a.head, nd);
    }
  }
  return true;
}

Dist BidirectionalDijkstra::Distance(NodeId s, NodeId t) {
  Reset();
  if (s == t) {
    last_distance_ = 0;
    return 0;
  }

  fwd_.stamp[s] = round_;
  fwd_.dist[s] = 0;
  fwd_.parent[s] = kInvalidNode;
  fwd_.heap.PushOrDecrease(s, 0);
  bwd_.stamp[t] = round_;
  bwd_.dist[t] = 0;
  bwd_.parent[t] = kInvalidNode;
  bwd_.heap.PushOrDecrease(t, 0);

  Dist best = kInfDist;
  NodeId meet = kInvalidNode;
  bool forward_turn = true;
  while (!fwd_.heap.Empty() || !bwd_.heap.Empty()) {
    // Termination: once θ (best) is no more than the smallest key of a
    // queue, that side cannot improve the answer (Section 3.2).
    const Dist fmin = fwd_.heap.Empty() ? kInfDist : fwd_.heap.MinKey();
    const Dist bmin = bwd_.heap.Empty() ? kInfDist : bwd_.heap.MinKey();
    if (best <= std::min(fmin, bmin)) break;
    // Round-robin between the sides, skipping exhausted ones.
    if (forward_turn && fwd_.heap.Empty()) forward_turn = false;
    if (!forward_turn && bwd_.heap.Empty()) forward_turn = true;
    if (forward_turn) {
      Relax(fwd_, Direction::kForward, best, meet, bwd_);
    } else {
      Relax(bwd_, Direction::kBackward, best, meet, fwd_);
    }
    forward_turn = !forward_turn;
  }
  last_meet_ = meet;
  last_distance_ = best;
  return best;
}

std::vector<NodeId> BidirectionalDijkstra::Path(NodeId s, NodeId t) {
  const Dist d = Distance(s, t);
  if (d == kInfDist) return {};
  if (s == t) return {s};
  std::vector<NodeId> path;
  for (NodeId v = last_meet_; v != kInvalidNode; v = fwd_.parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  for (NodeId v = bwd_.parent[last_meet_]; v != kInvalidNode;
       v = bwd_.parent[v]) {
    path.push_back(v);
  }
  return path;
}

}  // namespace ah
