// Dijkstra's algorithm (the paper's baseline and the workhorse inside every
// preprocessing step).
//
// A Dijkstra object is pure per-thread search state over a shared const
// Graph: it owns reusable buffers sized to one graph, and running many
// searches on the same instance costs O(#touched) cleanup per search, not
// O(n) (timestamped distance labels). It never mutates the graph, so any
// number of instances may search the same graph concurrently — one instance
// per thread (this is what api/ sessions wrap).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

/// Search direction: forward follows out-arcs (paths from the source),
/// backward follows in-arcs (paths *to* the source).
enum class Direction { kForward, kBackward };

class Dijkstra {
 public:
  explicit Dijkstra(const Graph& g);

  /// Point-to-point distance; stops as soon as `t` is settled.
  /// Returns kInfDist if t is unreachable.
  Dist Distance(NodeId s, NodeId t);

  /// Settles every node reachable from s (or reaching s, if backward) whose
  /// distance is < `bound`. After the call DistTo/ParentOf are valid.
  void Run(NodeId s, Direction dir = Direction::kForward,
           Dist bound = kInfDist);

  /// Distance label after Run/Distance; kInfDist if v was not reached.
  Dist DistTo(NodeId v) const {
    return stamp_[v] == round_ ? dist_[v] : kInfDist;
  }

  /// Predecessor of v on the shortest path tree (successor for backward
  /// searches); kInvalidNode for the source or unreached nodes.
  NodeId ParentOf(NodeId v) const {
    return stamp_[v] == round_ ? parent_[v] : kInvalidNode;
  }

  /// Nodes settled by the last search, in settling order.
  const std::vector<NodeId>& SettledNodes() const { return settled_; }

  /// Shortest path from s to t as a node sequence (empty if unreachable).
  std::vector<NodeId> Path(NodeId s, NodeId t);

  const Graph& graph() const { return graph_; }

 private:
  // Shared engine; when `target` != kInvalidNode the search stops once the
  // target is settled.
  void RunInternal(NodeId s, NodeId target, Direction dir, Dist bound);

  void Touch(NodeId v, Dist d, NodeId parent);

  const Graph& graph_;
  IndexedHeap heap_;
  std::vector<Dist> dist_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> stamp_;
  std::vector<NodeId> settled_;
  std::uint32_t round_ = 0;
};

}  // namespace ah
