// Path representation and validation helpers shared by every index's
// shortest-path queries and by the test suites.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace ah {

/// A shortest-path query result: the node sequence s = nodes[0], ...,
/// nodes[k] = t, plus its total length.
struct PathResult {
  std::vector<NodeId> nodes;
  Dist length = kInfDist;

  bool Found() const { return length != kInfDist; }
  /// Number of edges on the path (the paper's k).
  std::size_t NumEdges() const {
    return nodes.size() < 2 ? 0 : nodes.size() - 1;
  }
};

/// Sums arc weights along `nodes`; returns kInfDist if any consecutive pair
/// is not connected by an arc in g.
Dist PathLength(const Graph& g, const std::vector<NodeId>& nodes);

/// True if `nodes` is a real path in g from s to t with total length
/// `expected_length`. A convenient single check for tests: any index's path
/// answer must both exist edge-by-edge and achieve the claimed distance.
bool IsValidPath(const Graph& g, const std::vector<NodeId>& nodes, NodeId s,
                 NodeId t, Dist expected_length);

}  // namespace ah
