#include "routing/path.h"

namespace ah {

Dist PathLength(const Graph& g, const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return kInfDist;
  Dist total = 0;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const Weight w = g.ArcWeight(nodes[i], nodes[i + 1]);
    if (w == kMaxWeight) return kInfDist;
    total += w;
  }
  return total;
}

bool IsValidPath(const Graph& g, const std::vector<NodeId>& nodes, NodeId s,
                 NodeId t, Dist expected_length) {
  if (nodes.empty()) return false;
  if (nodes.front() != s || nodes.back() != t) return false;
  return PathLength(g, nodes) == expected_length;
}

}  // namespace ah
