// Plain bidirectional Dijkstra — the unconstrained version of the two-sided
// traversal FC and AH build on (Section 3.2's termination rule: stop a side
// once the best meeting distance θ is no larger than its queue minimum).
// Like Dijkstra, an instance is per-thread search state over a shared const
// Graph: instances never mutate the graph, so one per thread may run
// concurrently on the same network.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/dijkstra.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

class BidirectionalDijkstra {
 public:
  explicit BidirectionalDijkstra(const Graph& g);

  /// Distance from s to t; kInfDist if unreachable.
  Dist Distance(NodeId s, NodeId t);

  /// Shortest path from s to t as a node sequence (empty if unreachable).
  std::vector<NodeId> Path(NodeId s, NodeId t);

  /// Number of nodes settled by the last query (both sides).
  std::size_t LastSettledCount() const { return last_settled_; }

  /// Distance found by the last Distance/Path call (kInfDist if none yet or
  /// unreachable) — lets path callers reuse the result without a rescan.
  Dist LastDistance() const { return last_distance_; }

 private:
  struct Side {
    IndexedHeap heap;
    std::vector<Dist> dist;
    std::vector<NodeId> parent;
    std::vector<std::uint32_t> stamp;
  };

  void Reset();
  bool Relax(Side& side, Direction dir, Dist& best, NodeId& meet,
             const Side& other);

  const Graph& graph_;
  Side fwd_;
  Side bwd_;
  std::uint32_t round_ = 0;
  std::size_t last_settled_ = 0;
  NodeId last_meet_ = kInvalidNode;
  Dist last_distance_ = kInfDist;
};

}  // namespace ah
