#include "routing/dijkstra.h"

namespace ah {

Dijkstra::Dijkstra(const Graph& g)
    : graph_(g),
      heap_(g.NumNodes()),
      dist_(g.NumNodes(), kInfDist),
      parent_(g.NumNodes(), kInvalidNode),
      stamp_(g.NumNodes(), 0) {}

void Dijkstra::Touch(NodeId v, Dist d, NodeId parent) {
  if (stamp_[v] != round_) {
    stamp_[v] = round_;
    dist_[v] = d;
    parent_[v] = parent;
  } else {
    dist_[v] = d;
    parent_[v] = parent;
  }
}

void Dijkstra::RunInternal(NodeId s, NodeId target, Direction dir,
                           Dist bound) {
  ++round_;
  heap_.Clear();
  settled_.clear();

  Touch(s, 0, kInvalidNode);
  heap_.PushOrDecrease(s, 0);

  while (!heap_.Empty()) {
    auto [d, u] = heap_.PopMin();
    if (d >= bound) break;
    settled_.push_back(u);
    if (u == target) break;
    const auto arcs = dir == Direction::kForward ? graph_.OutArcs(u)
                                                 : graph_.InArcs(u);
    for (const Arc& a : arcs) {
      const Dist nd = d + a.weight;
      if (nd >= bound) continue;
      if (stamp_[a.head] != round_ || nd < dist_[a.head]) {
        Touch(a.head, nd, u);
        heap_.PushOrDecrease(a.head, nd);
      }
    }
  }
}

Dist Dijkstra::Distance(NodeId s, NodeId t) {
  RunInternal(s, t, Direction::kForward, kInfDist);
  return DistTo(t);
}

void Dijkstra::Run(NodeId s, Direction dir, Dist bound) {
  RunInternal(s, kInvalidNode, dir, bound);
}

std::vector<NodeId> Dijkstra::Path(NodeId s, NodeId t) {
  RunInternal(s, t, Direction::kForward, kInfDist);
  if (DistTo(t) == kInfDist) return {};
  std::vector<NodeId> path;
  // The parent chain from t necessarily ends at the search source s.
  for (NodeId v = t; v != kInvalidNode; v = ParentOf(v)) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace ah
