#include "fc/fc_index.h"

#include <algorithm>
#include <stdexcept>

#include "arterial/arterial.h"
#include "hier/contraction.h"
#include "perturb/perturb.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace ah {

FcIndex FcIndex::Build(const Graph& g, const FcParams& params) {
  Timer total;
  FcIndex index;
  const std::size_t n = g.NumNodes();
  index.coords_ = g.Coords();
  index.max_grid_depth_ = params.max_grid_depth;
  index.grids_ = GridHierarchy(index.coords_, params.max_grid_depth);

  Timer phase;
  const Nuance nuance(params.seed);
  ArterialLevels levels =
      ComputeArterialLevels(g, index.grids_, nuance);
  index.level_ = std::move(levels.node_level);
  index.build_stats_.arterial_seconds = phase.Seconds();
  index.build_stats_.grid_depth = index.grids_.Depth();
  for (Level lv : index.level_) {
    index.build_stats_.max_level = std::max(index.build_stats_.max_level, lv);
  }

  // Shortcut construction: from every node u, a lexicographic Dijkstra on
  // (distance, max internal level). A pair (u,v) gets a shortcut iff the
  // best shortest path keeps all internal nodes strictly below
  // min(level(u), level(v)). Internal nodes of level >= level(u) can never
  // appear on a qualifying path, so expansion is pruned there — which keeps
  // the search local for low-level sources.
  //
  // Path unpacking: each shortcut stores the predecessor of its head on the
  // certified path as its midpoint, and after each per-source search the
  // parent chains of all emitted shortcuts are materialized as unpack-only
  // arcs. Every expansion half (u, x) then resolves in the unpack table —
  // as a search entry of weight dist(x) or, when parent(x) == u, as the
  // original min-weight arc u→x — so recursive expansion terminates in
  // O(path length).
  const Level h = index.grids_.Depth();
  const Dist kEncBase = static_cast<Dist>(h) + 3;
  std::vector<HierArc> hier_arcs = ArcsOf(g);
  const std::size_t original_arcs = hier_arcs.size();
  std::vector<HierArc> unpack_arcs;

  IndexedHeap heap(n);
  std::vector<Dist> dist(n, kInfDist);
  std::vector<Level> max_internal(n, 0);  // Encoded: 0 = none, k+1 = level k.
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<std::uint32_t> stamp(n, 0);
  std::vector<std::uint32_t> entry_stamp(n, 0);  // Has a (u,·) search entry.
  std::vector<NodeId> shortcut_heads;
  std::uint32_t round = 0;

  for (NodeId u = 0; u < n; ++u) {
    const Level lu = index.level_[u];
    ++round;
    heap.Clear();
    shortcut_heads.clear();
    stamp[u] = round;
    dist[u] = 0;
    max_internal[u] = 0;
    parent[u] = kInvalidNode;
    heap.PushOrDecrease(u, 0);
    while (!heap.Empty()) {
      auto [key, x] = heap.PopMin();
      const Dist dx = key / kEncBase;
      const Level enc_x = static_cast<Level>(key % kEncBase);
      if (dx > dist[x] || (dx == dist[x] && enc_x > max_internal[x])) {
        continue;  // Stale entry.
      }
      if (x != u) {
        const Level lv = index.level_[x];
        const Level internal = enc_x - 1;  // -1 when no internal node.
        if (enc_x == 0 || internal < std::min(lu, lv)) {
          // enc_x == 0 iff the certified path is the direct arc u→x, in
          // which case parent[x] == u and the midpoint stays invalid.
          const NodeId mid = parent[x] == u ? kInvalidNode : parent[x];
          hier_arcs.push_back(HierArc{u, x, static_cast<Weight>(dx), mid});
          entry_stamp[x] = round;
          shortcut_heads.push_back(x);
        }
        // Expanding through x makes x internal; prune when that can never
        // qualify (internal level >= lu).
        if (index.level_[x] >= lu) continue;
      }
      const Level enc_via =
          x == u ? 0
                 : std::max(enc_x, static_cast<Level>(index.level_[x] + 1));
      for (const Arc& a : g.OutArcs(x)) {
        const Dist nd = dist[x] + a.weight;
        const Dist nkey = nd * kEncBase + static_cast<Dist>(enc_via);
        if (stamp[a.head] != round || nd < dist[a.head] ||
            (nd == dist[a.head] &&
             enc_via < max_internal[a.head])) {
          stamp[a.head] = round;
          dist[a.head] = nd;
          max_internal[a.head] = enc_via;
          parent[a.head] = x;
          heap.PushOrDecrease(a.head, nkey);
        }
      }
    }
    // Parent-chain closure: chain nodes without a shortcut of their own get
    // an unpack-only arc. Chains of distinct shortcuts share suffixes, so
    // each node is emitted at most once per source.
    for (const NodeId v : shortcut_heads) {
      for (NodeId x = parent[v]; x != u && entry_stamp[x] != round;
           x = parent[x]) {
        entry_stamp[x] = round;
        if (parent[x] != u) {
          unpack_arcs.push_back(
              HierArc{u, x, static_cast<Weight>(dist[x]), parent[x]});
        }
        // parent[x] == u: (u,x) is the original min-weight arc, which is
        // already in the table.
      }
    }
  }
  index.build_stats_.shortcuts = hier_arcs.size() - original_arcs;
  index.build_stats_.unpack_arcs = unpack_arcs.size();
  index.hierarchy_ = LightGraph(n, hier_arcs, unpack_arcs);
  index.build_stats_.seconds = total.Seconds();
  return index;
}

std::size_t FcIndex::SizeBytes() const {
  return level_.size() * sizeof(Level) + coords_.size() * sizeof(Point) +
         grids_.SizeBytes() + hierarchy_.SizeBytes();
}

void FcIndex::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Magic("AHFC", 1);
  w.Pod<std::int32_t>(max_grid_depth_);
  w.Vector(level_);
  w.Vector(coords_);
  hierarchy_.Save(out);
  w.Pod(build_stats_.seconds);
  w.Pod(build_stats_.arterial_seconds);
  w.Pod<std::uint64_t>(build_stats_.shortcuts);
  w.Pod<std::uint64_t>(build_stats_.unpack_arcs);
  w.Pod<std::int32_t>(build_stats_.max_level);
  w.Pod<std::int32_t>(build_stats_.grid_depth);
}

FcIndex FcIndex::Load(std::istream& in) {
  BinaryReader r(in);
  r.Magic("AHFC", 1);
  FcIndex index;
  index.max_grid_depth_ = r.Pod<std::int32_t>();
  index.level_ = r.Vector<Level>();
  index.coords_ = r.Vector<Point>();
  index.hierarchy_ = LightGraph::Load(in);
  index.build_stats_.seconds = r.Pod<double>();
  index.build_stats_.arterial_seconds = r.Pod<double>();
  index.build_stats_.shortcuts = r.Pod<std::uint64_t>();
  index.build_stats_.unpack_arcs = r.Pod<std::uint64_t>();
  index.build_stats_.max_level = r.Pod<std::int32_t>();
  index.build_stats_.grid_depth = r.Pod<std::int32_t>();
  if (index.level_.size() != index.coords_.size() ||
      index.hierarchy_.NumNodes() != index.level_.size() ||
      !index.hierarchy_.HasMids()) {
    throw std::runtime_error("FcIndex::Load: inconsistent structure");
  }
  index.grids_ = GridHierarchy(index.coords_, index.max_grid_depth_);
  return index;
}

FcQuery::FcQuery(const FcIndex& index, FcQueryOptions options)
    : index_(index), options_(options) {
  const std::size_t n = index.NumNodes();
  for (Side* side : {&fwd_, &bwd_}) {
    side->heap.Resize(n);
    side->dist.assign(n, kInfDist);
    side->parent.assign(n, kInvalidNode);
    side->stamp.assign(n, 0);
  }
}

bool FcQuery::Allowed(NodeId from, NodeId to,
                      const std::vector<Cell>& cells) const {
  // Level constraint: never descend.
  const Level lf = index_.LevelOf(from);
  const Level lt = index_.LevelOf(to);
  if (lt < lf) return false;
  if (!options_.use_proximity) return true;
  const Level gi = lt + 1;
  if (gi > index_.grids().Depth()) return true;
  const Cell vc = index_.grids().Grid(gi).CellOf(index_.Coord(to));
  return SquareGrid::WithinThreeByThree(cells[gi - 1], vc);
}

Dist FcQuery::Distance(NodeId s, NodeId t) {
  if (s == t) {
    last_settled_ = 0;
    return 0;
  }
  return RunSearch(s, t);
}

PathResult FcQuery::Path(NodeId s, NodeId t) {
  PathResult result;
  if (s == t) {
    last_settled_ = 0;
    result.length = 0;
    result.nodes = {s};
    return result;
  }
  result.length = RunSearch(s, t);
  if (result.length == kInfDist) return result;

  // Hierarchy-space path: s ... meet via forward parents, meet ... t via
  // backward parents; consecutive elements are arcs of the hierarchy.
  std::vector<NodeId> hpath;
  for (NodeId v = meet_; v != kInvalidNode; v = ParentOf(fwd_, v)) {
    hpath.push_back(v);
  }
  std::reverse(hpath.begin(), hpath.end());
  for (NodeId v = ParentOf(bwd_, meet_); v != kInvalidNode;
       v = ParentOf(bwd_, v)) {
    hpath.push_back(v);
  }
  result.nodes = index_.hierarchy().UnpackPath(hpath);
  return result;
}

Dist FcQuery::RunSearch(NodeId s, NodeId t) {
  ++round_;
  fwd_.heap.Clear();
  bwd_.heap.Clear();
  last_settled_ = 0;
  meet_ = kInvalidNode;

  const Level depth = index_.grids().Depth();
  s_cells_.resize(depth);
  t_cells_.resize(depth);
  for (Level i = 1; i <= depth; ++i) {
    s_cells_[i - 1] = index_.grids().Grid(i).CellOf(index_.Coord(s));
    t_cells_[i - 1] = index_.grids().Grid(i).CellOf(index_.Coord(t));
  }

  fwd_.stamp[s] = round_;
  fwd_.dist[s] = 0;
  fwd_.parent[s] = kInvalidNode;
  fwd_.heap.PushOrDecrease(s, 0);
  bwd_.stamp[t] = round_;
  bwd_.dist[t] = 0;
  bwd_.parent[t] = kInvalidNode;
  bwd_.heap.PushOrDecrease(t, 0);

  Dist best = kInfDist;
  bool forward_turn = true;
  const LightGraph& hg = index_.hierarchy();
  while (!fwd_.heap.Empty() || !bwd_.heap.Empty()) {
    const Dist fmin = fwd_.heap.Empty() ? kInfDist : fwd_.heap.MinKey();
    const Dist bmin = bwd_.heap.Empty() ? kInfDist : bwd_.heap.MinKey();
    if (best <= std::min(fmin, bmin)) break;
    if (forward_turn && fwd_.heap.Empty()) forward_turn = false;
    if (!forward_turn && bwd_.heap.Empty()) forward_turn = true;

    Side& side = forward_turn ? fwd_ : bwd_;
    const Side& other = forward_turn ? bwd_ : fwd_;
    const auto& cells = forward_turn ? s_cells_ : t_cells_;
    auto [d, u] = side.heap.PopMin();
    ++last_settled_;
    if (other.stamp[u] == round_) {
      const Dist via = d + other.dist[u];
      if (via < best) {
        best = via;
        meet_ = u;
      }
    }
    const auto arcs = forward_turn ? hg.OutArcs(u) : hg.InArcs(u);
    for (const Arc& a : arcs) {
      if (!Allowed(u, a.head, cells)) continue;
      const Dist nd = d + a.weight;
      if (side.stamp[a.head] != round_ || nd < side.dist[a.head]) {
        side.stamp[a.head] = round_;
        side.dist[a.head] = nd;
        side.parent[a.head] = u;
        side.heap.PushOrDecrease(a.head, nd);
      }
    }
    forward_turn = !forward_turn;
  }
  return best;
}

}  // namespace ah
