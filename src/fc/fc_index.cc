#include "fc/fc_index.h"

#include <algorithm>

#include "arterial/arterial.h"
#include "hier/contraction.h"
#include "perturb/perturb.h"
#include "util/timer.h"

namespace ah {

FcIndex FcIndex::Build(const Graph& g, const FcParams& params) {
  Timer total;
  FcIndex index;
  const std::size_t n = g.NumNodes();
  index.coords_ = g.Coords();
  index.grids_ = GridHierarchy(index.coords_, params.max_grid_depth);

  Timer phase;
  const Nuance nuance(params.seed);
  ArterialLevels levels =
      ComputeArterialLevels(g, index.grids_, nuance);
  index.level_ = std::move(levels.node_level);
  index.build_stats_.arterial_seconds = phase.Seconds();
  index.build_stats_.grid_depth = index.grids_.Depth();
  for (Level lv : index.level_) {
    index.build_stats_.max_level = std::max(index.build_stats_.max_level, lv);
  }

  // Shortcut construction: from every node u, a lexicographic Dijkstra on
  // (distance, max internal level). A pair (u,v) gets a shortcut iff the
  // best shortest path keeps all internal nodes strictly below
  // min(level(u), level(v)). Internal nodes of level >= level(u) can never
  // appear on a qualifying path, so expansion is pruned there — which keeps
  // the search local for low-level sources.
  const Level h = index.grids_.Depth();
  const Dist kEncBase = static_cast<Dist>(h) + 3;
  std::vector<HierArc> hier_arcs = ArcsOf(g);
  const std::size_t original_arcs = hier_arcs.size();

  IndexedHeap heap(n);
  std::vector<Dist> dist(n, kInfDist);
  std::vector<Level> max_internal(n, 0);  // Encoded: 0 = none, k+1 = level k.
  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t round = 0;

  for (NodeId u = 0; u < n; ++u) {
    const Level lu = index.level_[u];
    ++round;
    heap.Clear();
    stamp[u] = round;
    dist[u] = 0;
    max_internal[u] = 0;
    heap.PushOrDecrease(u, 0);
    while (!heap.Empty()) {
      auto [key, x] = heap.PopMin();
      const Dist dx = key / kEncBase;
      const Level enc_x = static_cast<Level>(key % kEncBase);
      if (dx > dist[x] || (dx == dist[x] && enc_x > max_internal[x])) {
        continue;  // Stale entry.
      }
      if (x != u) {
        const Level lv = index.level_[x];
        const Level internal = enc_x - 1;  // -1 when no internal node.
        if (enc_x == 0 || internal < std::min(lu, lv)) {
          hier_arcs.push_back(
              HierArc{u, x, static_cast<Weight>(dx), kInvalidNode});
        }
        // Expanding through x makes x internal; prune when that can never
        // qualify (internal level >= lu).
        if (index.level_[x] >= lu) continue;
      }
      const Level enc_via =
          x == u ? 0
                 : std::max(enc_x, static_cast<Level>(index.level_[x] + 1));
      for (const Arc& a : g.OutArcs(x)) {
        const Dist nd = dist[x] + a.weight;
        const Dist nkey = nd * kEncBase + static_cast<Dist>(enc_via);
        if (stamp[a.head] != round || nd < dist[a.head] ||
            (nd == dist[a.head] &&
             enc_via < max_internal[a.head])) {
          stamp[a.head] = round;
          dist[a.head] = nd;
          max_internal[a.head] = enc_via;
          heap.PushOrDecrease(a.head, nkey);
        }
      }
    }
  }
  index.build_stats_.shortcuts = hier_arcs.size() - original_arcs;
  index.hierarchy_ = LightGraph(n, hier_arcs);
  index.build_stats_.seconds = total.Seconds();
  return index;
}

std::size_t FcIndex::SizeBytes() const {
  return level_.size() * sizeof(Level) + coords_.size() * sizeof(Point) +
         hierarchy_.NumArcs() * 2 * sizeof(Arc) +
         (hierarchy_.NumNodes() + 1) * 2 * sizeof(std::uint64_t);
}

FcQuery::FcQuery(const FcIndex& index, FcQueryOptions options)
    : index_(index), options_(options) {
  const std::size_t n = index.NumNodes();
  for (Side* side : {&fwd_, &bwd_}) {
    side->heap.Resize(n);
    side->dist.assign(n, kInfDist);
    side->stamp.assign(n, 0);
  }
}

bool FcQuery::Allowed(NodeId from, NodeId to,
                      const std::vector<Cell>& cells) const {
  // Level constraint: never descend.
  const Level lf = index_.LevelOf(from);
  const Level lt = index_.LevelOf(to);
  if (lt < lf) return false;
  if (!options_.use_proximity) return true;
  const Level gi = lt + 1;
  if (gi > index_.grids().Depth()) return true;
  const Cell vc = index_.grids().Grid(gi).CellOf(index_.Coord(to));
  return SquareGrid::WithinThreeByThree(cells[gi - 1], vc);
}

Dist FcQuery::Distance(NodeId s, NodeId t) {
  if (s == t) return 0;
  ++round_;
  fwd_.heap.Clear();
  bwd_.heap.Clear();
  last_settled_ = 0;

  const Level depth = index_.grids().Depth();
  s_cells_.resize(depth);
  t_cells_.resize(depth);
  for (Level i = 1; i <= depth; ++i) {
    s_cells_[i - 1] = index_.grids().Grid(i).CellOf(index_.Coord(s));
    t_cells_[i - 1] = index_.grids().Grid(i).CellOf(index_.Coord(t));
  }

  fwd_.stamp[s] = round_;
  fwd_.dist[s] = 0;
  fwd_.heap.PushOrDecrease(s, 0);
  bwd_.stamp[t] = round_;
  bwd_.dist[t] = 0;
  bwd_.heap.PushOrDecrease(t, 0);

  Dist best = kInfDist;
  bool forward_turn = true;
  const LightGraph& hg = index_.hierarchy();
  while (!fwd_.heap.Empty() || !bwd_.heap.Empty()) {
    const Dist fmin = fwd_.heap.Empty() ? kInfDist : fwd_.heap.MinKey();
    const Dist bmin = bwd_.heap.Empty() ? kInfDist : bwd_.heap.MinKey();
    if (best <= std::min(fmin, bmin)) break;
    if (forward_turn && fwd_.heap.Empty()) forward_turn = false;
    if (!forward_turn && bwd_.heap.Empty()) forward_turn = true;

    Side& side = forward_turn ? fwd_ : bwd_;
    const Side& other = forward_turn ? bwd_ : fwd_;
    const auto& cells = forward_turn ? s_cells_ : t_cells_;
    auto [d, u] = side.heap.PopMin();
    ++last_settled_;
    if (other.stamp[u] == round_) best = std::min(best, d + other.dist[u]);
    const auto arcs = forward_turn ? hg.OutArcs(u) : hg.InArcs(u);
    for (const Arc& a : arcs) {
      if (!Allowed(u, a.head, cells)) continue;
      const Dist nd = d + a.weight;
      if (side.stamp[a.head] != round_ || nd < side.dist[a.head]) {
        side.stamp[a.head] = round_;
        side.dist[a.head] = nd;
        side.heap.PushOrDecrease(a.head, nd);
      }
    }
    forward_turn = !forward_turn;
  }
  return best;
}

}  // namespace ah
