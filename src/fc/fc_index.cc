#include "fc/fc_index.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "arterial/arterial.h"
#include "hier/contraction.h"
#include "perturb/perturb.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace ah {

FcIndex FcIndex::Build(const Graph& g, const FcParams& params) {
  Timer total;
  FcIndex index;
  const std::size_t n = g.NumNodes();
  index.coords_ = g.Coords();
  index.max_grid_depth_ = params.max_grid_depth;
  index.grids_ = GridHierarchy(index.coords_, params.max_grid_depth);

  Timer phase;
  const Nuance nuance(params.seed);
  ArterialLevels levels =
      ComputeArterialLevels(g, index.grids_, nuance);
  index.level_ = std::move(levels.node_level);
  index.build_stats_.arterial_seconds = phase.Seconds();
  index.build_stats_.grid_depth = index.grids_.Depth();
  for (Level lv : index.level_) {
    index.build_stats_.max_level = std::max(index.build_stats_.max_level, lv);
  }

  // Shortcut construction: from every node u, a lexicographic Dijkstra on
  // (distance, max internal level). A pair (u,v) gets a shortcut iff the
  // best shortest path keeps all internal nodes strictly below
  // min(level(u), level(v)). Internal nodes of level >= level(u) can never
  // appear on a qualifying path, so expansion is pruned there — which keeps
  // the search local for low-level sources.
  //
  // Path unpacking: each shortcut stores the predecessor of its head on the
  // certified path as its midpoint, and after each per-source search the
  // parent chains of all emitted shortcuts are materialized as unpack-only
  // arcs. Every expansion half (u, x) then resolves in the unpack table —
  // as a search entry of weight dist(x) or, when parent(x) == u, as the
  // original min-weight arc u→x — so recursive expansion terminates in
  // O(path length).
  const Level h = index.grids_.Depth();
  const Dist kEncBase = static_cast<Dist>(h) + 3;
  std::vector<HierArc> hier_arcs = ArcsOf(g);
  const std::size_t original_arcs = hier_arcs.size();
  std::vector<HierArc> unpack_arcs;

  // The per-source searches are independent: chunk the sources across
  // worker threads (per-thread scratch, per-chunk output) and concatenate
  // the chunk outputs in chunk order — sources are ascending within a chunk
  // and chunks cover ascending ranges, so the arc order (and therefore the
  // built index) is bit-identical to the sequential build at any thread
  // count, the same guarantee util/parallel.h documents.
  struct SearchScratch {
    explicit SearchScratch(std::size_t nodes)
        : heap(nodes),
          dist(nodes, kInfDist),
          max_internal(nodes, 0),
          parent(nodes, kInvalidNode),
          stamp(nodes, 0),
          entry_stamp(nodes, 0) {}
    IndexedHeap heap;
    std::vector<Dist> dist;
    std::vector<Level> max_internal;  // Encoded: 0 = none, k+1 = level k.
    std::vector<NodeId> parent;
    std::vector<std::uint32_t> stamp;
    std::vector<std::uint32_t> entry_stamp;  // Has a (u,·) search entry.
    std::vector<NodeId> shortcut_heads;
    std::uint32_t round = 0;
  };

  const auto search_from = [&](NodeId u, SearchScratch& sc,
                               std::vector<HierArc>& shortcuts,
                               std::vector<HierArc>& unpack) {
    const Level lu = index.level_[u];
    const std::uint32_t round = ++sc.round;
    sc.heap.Clear();
    sc.shortcut_heads.clear();
    sc.stamp[u] = round;
    sc.dist[u] = 0;
    sc.max_internal[u] = 0;
    sc.parent[u] = kInvalidNode;
    sc.heap.PushOrDecrease(u, 0);
    while (!sc.heap.Empty()) {
      auto [key, x] = sc.heap.PopMin();
      const Dist dx = key / kEncBase;
      const Level enc_x = static_cast<Level>(key % kEncBase);
      if (dx > sc.dist[x] || (dx == sc.dist[x] && enc_x > sc.max_internal[x])) {
        continue;  // Stale entry.
      }
      if (x != u) {
        const Level lv = index.level_[x];
        const Level internal = enc_x - 1;  // -1 when no internal node.
        if (enc_x == 0 || internal < std::min(lu, lv)) {
          // enc_x == 0 iff the certified path is the direct arc u→x, in
          // which case parent[x] == u and the midpoint stays invalid.
          const NodeId mid = sc.parent[x] == u ? kInvalidNode : sc.parent[x];
          shortcuts.push_back(HierArc{u, x, static_cast<Weight>(dx), mid});
          sc.entry_stamp[x] = round;
          sc.shortcut_heads.push_back(x);
        }
        // Expanding through x makes x internal; prune when that can never
        // qualify (internal level >= lu).
        if (index.level_[x] >= lu) continue;
      }
      const Level enc_via =
          x == u ? 0
                 : std::max(enc_x, static_cast<Level>(index.level_[x] + 1));
      for (const Arc& a : g.OutArcs(x)) {
        const Dist nd = sc.dist[x] + a.weight;
        const Dist nkey = nd * kEncBase + static_cast<Dist>(enc_via);
        if (sc.stamp[a.head] != round || nd < sc.dist[a.head] ||
            (nd == sc.dist[a.head] && enc_via < sc.max_internal[a.head])) {
          sc.stamp[a.head] = round;
          sc.dist[a.head] = nd;
          sc.max_internal[a.head] = enc_via;
          sc.parent[a.head] = x;
          sc.heap.PushOrDecrease(a.head, nkey);
        }
      }
    }
    // Parent-chain closure: chain nodes without a shortcut of their own get
    // an unpack-only arc. Chains of distinct shortcuts share suffixes, so
    // each node is emitted at most once per source.
    for (const NodeId v : sc.shortcut_heads) {
      for (NodeId x = sc.parent[v]; x != u && sc.entry_stamp[x] != round;
           x = sc.parent[x]) {
        sc.entry_stamp[x] = round;
        if (sc.parent[x] != u) {
          unpack.push_back(
              HierArc{u, x, static_cast<Weight>(sc.dist[x]), sc.parent[x]});
        }
        // sc.parent[x] == u: (u,x) is the original min-weight arc, which is
        // already in the table.
      }
    }
  };

  const std::size_t threads =
      params.build_threads == 0 ? WorkerThreads() : params.build_threads;
  // Fixed chunk size (independent of thread count) so chunk boundaries —
  // and therefore the merged arc order — never vary with parallelism.
  const std::size_t chunk_size = 64;
  const std::size_t num_chunks = n == 0 ? 0 : (n + chunk_size - 1) / chunk_size;
  std::vector<std::vector<HierArc>> chunk_shortcuts(num_chunks);
  std::vector<std::vector<HierArc>> chunk_unpack(num_chunks);
  std::vector<std::unique_ptr<SearchScratch>> scratch(
      std::min<std::size_t>(std::max<std::size_t>(threads, 1), num_chunks));
  ParallelChunks(
      n, chunk_size,
      [&](std::size_t chunk, std::size_t begin, std::size_t end,
          std::size_t tid) {
        if (!scratch[tid]) scratch[tid] = std::make_unique<SearchScratch>(n);
        SearchScratch& sc = *scratch[tid];
        for (std::size_t u = begin; u < end; ++u) {
          search_from(static_cast<NodeId>(u), sc, chunk_shortcuts[chunk],
                      chunk_unpack[chunk]);
        }
      },
      threads);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    hier_arcs.insert(hier_arcs.end(), chunk_shortcuts[c].begin(),
                     chunk_shortcuts[c].end());
    unpack_arcs.insert(unpack_arcs.end(), chunk_unpack[c].begin(),
                       chunk_unpack[c].end());
  }
  index.build_stats_.shortcuts = hier_arcs.size() - original_arcs;
  index.build_stats_.unpack_arcs = unpack_arcs.size();
  index.hierarchy_ = LightGraph(n, hier_arcs, unpack_arcs);
  index.build_stats_.seconds = total.Seconds();
  return index;
}

std::size_t FcIndex::SizeBytes() const {
  return level_.size() * sizeof(Level) + coords_.size() * sizeof(Point) +
         grids_.SizeBytes() + hierarchy_.SizeBytes();
}

void FcIndex::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Magic("AHFC", 1);
  w.Pod<std::int32_t>(max_grid_depth_);
  w.Vector(level_);
  w.Vector(coords_);
  hierarchy_.Save(out);
  w.Pod(build_stats_.seconds);
  w.Pod(build_stats_.arterial_seconds);
  w.Pod<std::uint64_t>(build_stats_.shortcuts);
  w.Pod<std::uint64_t>(build_stats_.unpack_arcs);
  w.Pod<std::int32_t>(build_stats_.max_level);
  w.Pod<std::int32_t>(build_stats_.grid_depth);
}

FcIndex FcIndex::Load(std::istream& in) {
  BinaryReader r(in);
  r.Magic("AHFC", 1);
  FcIndex index;
  index.max_grid_depth_ = r.Pod<std::int32_t>();
  index.level_ = r.Vector<Level>();
  index.coords_ = r.Vector<Point>();
  index.hierarchy_ = LightGraph::Load(in);
  index.build_stats_.seconds = r.Pod<double>();
  index.build_stats_.arterial_seconds = r.Pod<double>();
  index.build_stats_.shortcuts = r.Pod<std::uint64_t>();
  index.build_stats_.unpack_arcs = r.Pod<std::uint64_t>();
  index.build_stats_.max_level = r.Pod<std::int32_t>();
  index.build_stats_.grid_depth = r.Pod<std::int32_t>();
  if (index.level_.size() != index.coords_.size() ||
      index.hierarchy_.NumNodes() != index.level_.size() ||
      !index.hierarchy_.HasMids()) {
    throw std::runtime_error("FcIndex::Load: inconsistent structure");
  }
  index.grids_ = GridHierarchy(index.coords_, index.max_grid_depth_);
  return index;
}

FcQuery::FcQuery(const FcIndex& index, FcQueryOptions options)
    : index_(index), options_(options) {
  const std::size_t n = index.NumNodes();
  for (Side* side : {&fwd_, &bwd_}) {
    side->heap.Resize(n);
    side->dist.assign(n, kInfDist);
    side->parent.assign(n, kInvalidNode);
    side->stamp.assign(n, 0);
  }
}

bool FcQuery::Allowed(NodeId from, NodeId to,
                      const std::vector<Cell>& cells) const {
  // Level constraint: never descend.
  const Level lf = index_.LevelOf(from);
  const Level lt = index_.LevelOf(to);
  if (lt < lf) return false;
  if (!options_.use_proximity) return true;
  const Level gi = lt + 1;
  if (gi > index_.grids().Depth()) return true;
  const Cell vc = index_.grids().Grid(gi).CellOf(index_.Coord(to));
  return SquareGrid::WithinThreeByThree(cells[gi - 1], vc);
}

Dist FcQuery::Distance(NodeId s, NodeId t) {
  if (s == t) {
    last_settled_ = 0;
    return 0;
  }
  return RunSearch(s, t);
}

PathResult FcQuery::Path(NodeId s, NodeId t) {
  PathResult result;
  if (s == t) {
    last_settled_ = 0;
    result.length = 0;
    result.nodes = {s};
    return result;
  }
  result.length = RunSearch(s, t);
  if (result.length == kInfDist) return result;

  // Hierarchy-space path: s ... meet via forward parents, meet ... t via
  // backward parents; consecutive elements are arcs of the hierarchy.
  std::vector<NodeId> hpath;
  for (NodeId v = meet_; v != kInvalidNode; v = ParentOf(fwd_, v)) {
    hpath.push_back(v);
  }
  std::reverse(hpath.begin(), hpath.end());
  for (NodeId v = ParentOf(bwd_, meet_); v != kInvalidNode;
       v = ParentOf(bwd_, v)) {
    hpath.push_back(v);
  }
  result.nodes = index_.hierarchy().UnpackPath(hpath);
  return result;
}

Dist FcQuery::RunSearch(NodeId s, NodeId t) {
  ++round_;
  fwd_.heap.Clear();
  bwd_.heap.Clear();
  last_settled_ = 0;
  meet_ = kInvalidNode;

  const Level depth = index_.grids().Depth();
  s_cells_.resize(depth);
  t_cells_.resize(depth);
  for (Level i = 1; i <= depth; ++i) {
    s_cells_[i - 1] = index_.grids().Grid(i).CellOf(index_.Coord(s));
    t_cells_[i - 1] = index_.grids().Grid(i).CellOf(index_.Coord(t));
  }

  fwd_.stamp[s] = round_;
  fwd_.dist[s] = 0;
  fwd_.parent[s] = kInvalidNode;
  fwd_.heap.PushOrDecrease(s, 0);
  bwd_.stamp[t] = round_;
  bwd_.dist[t] = 0;
  bwd_.parent[t] = kInvalidNode;
  bwd_.heap.PushOrDecrease(t, 0);

  Dist best = kInfDist;
  bool forward_turn = true;
  const LightGraph& hg = index_.hierarchy();
  while (!fwd_.heap.Empty() || !bwd_.heap.Empty()) {
    const Dist fmin = fwd_.heap.Empty() ? kInfDist : fwd_.heap.MinKey();
    const Dist bmin = bwd_.heap.Empty() ? kInfDist : bwd_.heap.MinKey();
    if (best <= std::min(fmin, bmin)) break;
    if (forward_turn && fwd_.heap.Empty()) forward_turn = false;
    if (!forward_turn && bwd_.heap.Empty()) forward_turn = true;

    Side& side = forward_turn ? fwd_ : bwd_;
    const Side& other = forward_turn ? bwd_ : fwd_;
    const auto& cells = forward_turn ? s_cells_ : t_cells_;
    auto [d, u] = side.heap.PopMin();
    ++last_settled_;
    if (other.stamp[u] == round_) {
      const Dist via = d + other.dist[u];
      if (via < best) {
        best = via;
        meet_ = u;
      }
    }
    const auto arcs = forward_turn ? hg.OutArcs(u) : hg.InArcs(u);
    for (const Arc& a : arcs) {
      if (!Allowed(u, a.head, cells)) continue;
      const Dist nd = d + a.weight;
      if (side.stamp[a.head] != round_ || nd < side.dist[a.head]) {
        side.stamp[a.head] = round_;
        side.dist[a.head] = nd;
        side.parent[a.head] = u;
        side.heap.PushOrDecrease(a.head, nd);
      }
    }
    forward_turn = !forward_turn;
  }
  return best;
}

}  // namespace ah
