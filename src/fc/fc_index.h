// FC — the first-cut index of Section 3.
//
// Node levels come from *exact* per-level arterial-edge computation on the
// original graph (arterial/arterial.h); shortcuts connect every pair (u,v)
// whose shortest path runs only through nodes at levels strictly below both
// endpoints; queries are bidirectional Dijkstra over graph+shortcuts under
// the level constraint and (optionally) the proximity constraint.
//
// As §3.3 explains, FC's preprocessing is what AH fixes: it is quadratic-ish
// and only applicable to small networks. Build() is intended for graphs up
// to a few tens of thousands of nodes.
//
// Correctness note: with the level constraint alone FC is exact on *any*
// graph and *any* level function (the §3.4 upswing argument only uses the
// shortcut definition); the proximity constraint additionally relies on the
// arterial-dimension assumption, exactly as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/light_graph.h"
#include "hgrid/grid_hierarchy.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

struct FcParams {
  std::int32_t max_grid_depth = 14;
  std::uint64_t seed = 7;
};

struct FcBuildStats {
  double seconds = 0;
  double arterial_seconds = 0;
  std::size_t shortcuts = 0;
  Level max_level = 0;
  Level grid_depth = 0;
};

class FcIndex {
 public:
  static FcIndex Build(const Graph& g, const FcParams& params = {});

  std::size_t NumNodes() const { return level_.size(); }
  Level LevelOf(NodeId v) const { return level_[v]; }
  const LightGraph& hierarchy() const { return hierarchy_; }
  const GridHierarchy& grids() const { return grids_; }
  const Point& Coord(NodeId v) const { return coords_[v]; }
  const FcBuildStats& build_stats() const { return build_stats_; }

  std::size_t SizeBytes() const;

 private:
  std::vector<Level> level_;
  std::vector<Point> coords_;
  GridHierarchy grids_;
  LightGraph hierarchy_;  // Original arcs + shortcuts.
  FcBuildStats build_stats_;
};

struct FcQueryOptions {
  bool use_proximity = true;
};

/// Bidirectional constrained Dijkstra over the FC hierarchy (§3.2).
class FcQuery {
 public:
  explicit FcQuery(const FcIndex& index, FcQueryOptions options = {});

  Dist Distance(NodeId s, NodeId t);

  std::size_t LastSettled() const { return last_settled_; }

 private:
  struct Side {
    IndexedHeap heap;
    std::vector<Dist> dist;
    std::vector<std::uint32_t> stamp;
  };

  bool Allowed(NodeId from, NodeId to, const std::vector<Cell>& cells) const;

  const FcIndex& index_;
  FcQueryOptions options_;
  Side fwd_;
  Side bwd_;
  std::vector<Cell> s_cells_;
  std::vector<Cell> t_cells_;
  std::uint32_t round_ = 0;
  std::size_t last_settled_ = 0;
};

}  // namespace ah
