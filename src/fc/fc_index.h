// FC — the first-cut index of Section 3.
//
// Node levels come from *exact* per-level arterial-edge computation on the
// original graph (arterial/arterial.h); shortcuts connect every pair (u,v)
// whose shortest path runs only through nodes at levels strictly below both
// endpoints; queries are bidirectional Dijkstra over graph+shortcuts under
// the level constraint and (optionally) the proximity constraint.
//
// Every shortcut carries a midpoint (the predecessor of its head on the path
// the shortcut-construction search certified), and the hierarchy retains a
// parent-chain unpack table, so shortest *paths* are recovered natively by
// meet-point stitching plus O(k) recursive shortcut expansion — no distance
// probes.
//
// As §3.3 explains, FC's preprocessing is what AH fixes: it is quadratic-ish
// and only applicable to small networks. Build() is intended for graphs up
// to a few tens of thousands of nodes. The per-source shortcut searches are
// embarrassingly parallel and run on ParallelChunks with per-thread scratch;
// chunk-ordered merging keeps the result deterministic at any thread count.
//
// Correctness note: with the level constraint alone FC is exact on *any*
// graph and *any* level function (the §3.4 upswing argument only uses the
// shortcut definition); the proximity constraint additionally relies on the
// arterial-dimension assumption, exactly as in the paper.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/graph.h"
#include "graph/light_graph.h"
#include "hgrid/grid_hierarchy.h"
#include "routing/path.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

struct FcParams {
  std::int32_t max_grid_depth = 14;
  std::uint64_t seed = 7;
  /// Worker threads for the per-source shortcut searches (0 = the
  /// util/parallel.h WorkerThreads() default). The built index is
  /// bit-identical regardless of thread count: per-chunk outputs are merged
  /// in chunk order.
  std::size_t build_threads = 0;
};

struct FcBuildStats {
  double seconds = 0;
  double arterial_seconds = 0;
  std::size_t shortcuts = 0;
  std::size_t unpack_arcs = 0;  ///< Unpack-only parent-chain arcs.
  Level max_level = 0;
  Level grid_depth = 0;
};

class FcIndex {
 public:
  static FcIndex Build(const Graph& g, const FcParams& params = {});

  std::size_t NumNodes() const { return level_.size(); }
  Level LevelOf(NodeId v) const { return level_[v]; }
  const LightGraph& hierarchy() const { return hierarchy_; }
  const GridHierarchy& grids() const { return grids_; }
  const Point& Coord(NodeId v) const { return coords_[v]; }
  const FcBuildStats& build_stats() const { return build_stats_; }

  std::size_t SizeBytes() const;

  /// Binary persistence (magic "AHFC"). The grid stack is derived data and
  /// is rebuilt deterministically from the stored coordinates on Load.
  void Save(std::ostream& out) const;
  static FcIndex Load(std::istream& in);

 private:
  std::vector<Level> level_;
  std::vector<Point> coords_;
  std::int32_t max_grid_depth_ = 14;  // Build parameter; needed by Load.
  GridHierarchy grids_;
  LightGraph hierarchy_;  // Original arcs + shortcuts, with unpack table.
  FcBuildStats build_stats_;
};

struct FcQueryOptions {
  bool use_proximity = true;
};

/// Bidirectional constrained Dijkstra over the FC hierarchy (§3.2).
class FcQuery {
 public:
  explicit FcQuery(const FcIndex& index, FcQueryOptions options = {});

  Dist Distance(NodeId s, NodeId t);

  /// Shortest path in the original graph: the hierarchy-space path of the
  /// bidirectional search (stitched at the meet node) expanded through the
  /// shortcut midpoint table. Exact whenever Distance is (always with the
  /// proximity constraint off; on road-like inputs with it on).
  PathResult Path(NodeId s, NodeId t);

  std::size_t LastSettled() const { return last_settled_; }

 private:
  struct Side {
    IndexedHeap heap;
    std::vector<Dist> dist;
    std::vector<NodeId> parent;
    std::vector<std::uint32_t> stamp;
  };

  bool Allowed(NodeId from, NodeId to, const std::vector<Cell>& cells) const;

  /// The bidirectional search behind Distance/Path; records per-side parent
  /// pointers and the meet node. Precondition: s != t.
  Dist RunSearch(NodeId s, NodeId t);

  NodeId ParentOf(const Side& side, NodeId v) const {
    return side.stamp[v] == round_ ? side.parent[v] : kInvalidNode;
  }

  const FcIndex& index_;
  FcQueryOptions options_;
  Side fwd_;
  Side bwd_;
  std::vector<Cell> s_cells_;
  std::vector<Cell> t_cells_;
  std::uint32_t round_ = 0;
  std::size_t last_settled_ = 0;
  NodeId meet_ = kInvalidNode;
};

}  // namespace ah
