// Batched edge-weight deltas — the mutation vocabulary of the index
// lifecycle (api/index_registry.h). Road-network serving sees weights move
// constantly (traffic) while the topology stays put, so a delta names an
// existing arc and its new weight; arcs are never added or removed. The
// registry queues deltas, applies them to a private copy of the base graph,
// and rebuilds indexes over the result — queries never observe a
// half-applied batch.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace ah {

/// One edge-weight change: every arc tail→head takes weight `weight`.
struct WeightDelta {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;
  Weight weight = 0;

  bool operator==(const WeightDelta&) const = default;
};

/// Validation outcome for one delta against a graph (no mutation).
enum class DeltaStatus {
  kOk,         ///< Names an existing arc with a positive weight.
  kBadNode,    ///< tail or head out of [0, NumNodes()).
  kNoSuchArc,  ///< Both endpoints exist but no arc tail→head does.
  kBadWeight,  ///< Zero weight (Section 2 assumes positive) or kMaxWeight.
};

/// Checks that `delta` could be applied to `g`.
DeltaStatus ValidateWeightDelta(const Graph& g, const WeightDelta& delta);

/// Applies deltas in order (later deltas to the same arc win) and returns
/// the number of arcs updated. Invalid deltas are skipped — callers wanting
/// per-delta errors validate first. `g` must not be referenced by any built
/// index (see Graph::SetArcWeight).
std::size_t ApplyWeightDeltas(Graph* g, std::span<const WeightDelta> deltas);

}  // namespace ah
