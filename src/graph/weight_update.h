// Batched edge-weight deltas — the mutation vocabulary of the index
// lifecycle (api/index_registry.h). Road-network serving sees weights move
// constantly (traffic) while the topology stays put, so a delta names an
// existing arc and its new weight; arcs are never added or removed. The
// registry queues deltas, applies them to a private copy of the base graph,
// and rebuilds indexes over the result — queries never observe a
// half-applied batch.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace ah {

/// One edge-weight change: every arc tail→head takes weight `weight`.
struct WeightDelta {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;
  Weight weight = 0;

  bool operator==(const WeightDelta&) const = default;
};

/// Validation outcome for one delta against a graph (no mutation).
enum class DeltaStatus {
  kOk,         ///< Names an existing arc with a positive weight.
  kBadNode,    ///< tail or head out of [0, NumNodes()).
  kNoSuchArc,  ///< Both endpoints exist but no arc tail→head does.
  kBadWeight,  ///< Zero weight (Section 2 assumes positive) or kMaxWeight.
};

/// Checks that `delta` could be applied to `g`.
DeltaStatus ValidateWeightDelta(const Graph& g, const WeightDelta& delta);

/// Per-delta outcome tallies of one ApplyWeightDeltas batch. Every input
/// delta lands in exactly one bucket, so applied + coalesced + rejected ==
/// deltas.size() — the ledger callers (registry `updates_applied`) count
/// `applied` and can neither over-count a coalesced batch nor under-count a
/// clean one.
struct DeltaApplyStats {
  std::size_t applied = 0;    ///< Deltas that set an arc's final weight.
  std::size_t coalesced = 0;  ///< Superseded by a later delta to the same arc.
  std::size_t rejected = 0;   ///< Invalid deltas, skipped.
};

/// Applies deltas in order (later deltas to the same arc win) and reports
/// the per-delta outcomes. Invalid deltas are skipped — callers wanting
/// per-delta errors validate first. `g` must not be referenced by any built
/// index (see Graph::SetArcWeight).
DeltaApplyStats ApplyWeightDeltas(Graph* g, std::span<const WeightDelta> deltas);

/// Binary persistence of a delta batch (magic "AHUD") — the `updf` bulk
/// ingest format: magic + version + length-prefixed array of
/// (tail, head, weight) records in batch order.
void SaveWeightDeltas(std::ostream& out, std::span<const WeightDelta> deltas);

/// Reads an "AHUD" batch; throws std::runtime_error on bad magic or
/// truncation and std::length_error when the batch exceeds `max_deltas`
/// (ingest caps) — servers map the two to distinct wire errors.
std::vector<WeightDelta> LoadWeightDeltas(
    std::istream& in, std::size_t max_deltas = std::size_t(1) << 32);

}  // namespace ah
