// Mutable accumulator that produces an immutable CSR Graph.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ah {

class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(std::size_t expected_nodes) {
    coords_.reserve(expected_nodes);
  }

  /// Adds a node at `p`; returns its id (ids are assigned densely, in call
  /// order).
  NodeId AddNode(Point p);

  /// Adds a directed arc. Both endpoints must already exist. weight must be
  /// positive (Section 2 assumes positive weights; zero weights would break
  /// strict-improvement pruning in several searches).
  void AddArc(NodeId tail, NodeId head, Weight weight);

  /// Adds arcs in both directions with the same weight.
  void AddBidirectional(NodeId a, NodeId b, Weight weight) {
    AddArc(a, b, weight);
    AddArc(b, a, weight);
  }

  std::size_t NumNodes() const { return coords_.size(); }
  std::size_t NumArcs() const { return arcs_.size(); }

  /// Finalizes into a CSR graph. Parallel arcs are collapsed to the minimum
  /// weight; self-loops are dropped (they can never be on a shortest path
  /// under positive weights).
  Graph Build() const;

 private:
  struct RawArc {
    NodeId tail;
    NodeId head;
    Weight weight;
  };

  std::vector<Point> coords_;
  std::vector<RawArc> arcs_;
};

}  // namespace ah
