#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/serialize.h"

namespace ah {

std::size_t Graph::MaxDegree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < NumNodes(); ++v) {
    best = std::max(best, OutDegree(v) + InDegree(v));
  }
  return best;
}

Weight Graph::ArcWeight(NodeId u, NodeId v) const {
  Weight best = kMaxWeight;
  for (const Arc& a : OutArcs(u)) {
    if (a.head == v) best = std::min(best, a.weight);
  }
  return best;
}

std::size_t Graph::SetArcWeight(NodeId u, NodeId v, Weight w) {
  std::size_t updated = 0;
  for (std::uint64_t i = out_first_[u]; i < out_first_[u + 1]; ++i) {
    if (out_arcs_[i].head == v) {
      out_arcs_[i].weight = w;
      ++updated;
    }
  }
  // Mirror: InArcs(v) stores the original arc's tail in Arc::head.
  std::size_t mirrored = 0;
  for (std::uint64_t i = in_first_[v]; i < in_first_[v + 1]; ++i) {
    if (in_arcs_[i].head == u) {
      in_arcs_[i].weight = w;
      ++mirrored;
    }
  }
  if (mirrored != updated) {
    throw std::logic_error("Graph::SetArcWeight: out/in adjacency out of sync");
  }
  return updated;
}

Box Graph::BoundingBox() const {
  Box box;
  for (const Point& p : coords_) box.Extend(p);
  return box;
}

std::size_t Graph::SizeBytes() const {
  return coords_.size() * sizeof(Point) +
         out_first_.size() * sizeof(std::uint64_t) +
         out_arcs_.size() * sizeof(Arc) +
         in_first_.size() * sizeof(std::uint64_t) +
         in_arcs_.size() * sizeof(Arc);
}

void Graph::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Magic("AHGR", 1);
  w.Vector(coords_);
  w.Vector(out_first_);
  w.Vector(out_arcs_);
  w.Vector(in_first_);
  w.Vector(in_arcs_);
}

Graph Graph::Load(std::istream& in) {
  BinaryReader r(in);
  r.Magic("AHGR", 1);
  Graph g;
  g.coords_ = r.Vector<Point>();
  g.out_first_ = r.Vector<std::uint64_t>();
  g.out_arcs_ = r.Vector<Arc>();
  g.in_first_ = r.Vector<std::uint64_t>();
  g.in_arcs_ = r.Vector<Arc>();
  const std::size_t n = g.coords_.size();
  if (g.out_first_.size() != n + 1 || g.in_first_.size() != n + 1 ||
      g.out_first_.back() != g.out_arcs_.size() ||
      g.in_first_.back() != g.in_arcs_.size() ||
      g.out_arcs_.size() != g.in_arcs_.size()) {
    throw std::runtime_error("Graph::Load: inconsistent structure");
  }
  for (const Arc& a : g.out_arcs_) {
    if (a.head >= n) throw std::runtime_error("Graph::Load: bad arc head");
  }
  return g;
}

}  // namespace ah
