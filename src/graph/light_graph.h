// A lightweight CSR view over an arbitrary arc list — the representation the
// arterial machinery and level assigner use for the shrinking overlay graphs
// G'_1, G'_2, ... (which are arc lists, not full Graph objects).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "hier/contraction.h"
#include "util/types.h"

namespace ah {

class LightGraph {
 public:
  LightGraph() = default;

  /// Builds adjacency over node ids [0, n) from `arcs` (mid fields ignored).
  LightGraph(std::size_t n, const std::vector<HierArc>& arcs) {
    out_first_.assign(n + 1, 0);
    in_first_.assign(n + 1, 0);
    for (const HierArc& a : arcs) {
      ++out_first_[a.tail + 1];
      ++in_first_[a.head + 1];
    }
    for (std::size_t v = 0; v < n; ++v) {
      out_first_[v + 1] += out_first_[v];
      in_first_[v + 1] += in_first_[v];
    }
    out_arcs_.resize(arcs.size());
    in_arcs_.resize(arcs.size());
    std::vector<std::uint64_t> oc(out_first_.begin(), out_first_.end() - 1);
    std::vector<std::uint64_t> ic(in_first_.begin(), in_first_.end() - 1);
    for (const HierArc& a : arcs) {
      out_arcs_[oc[a.tail]++] = Arc{a.head, a.weight};
      in_arcs_[ic[a.head]++] = Arc{a.tail, a.weight};
    }
  }

  /// Copies an existing Graph's arcs (same node ids).
  static LightGraph FromGraph(const Graph& g) {
    LightGraph lg;
    const std::size_t n = g.NumNodes();
    lg.out_first_.assign(n + 1, 0);
    lg.in_first_.assign(n + 1, 0);
    lg.out_arcs_.reserve(g.NumArcs());
    lg.in_arcs_.reserve(g.NumArcs());
    for (NodeId v = 0; v < n; ++v) {
      lg.out_first_[v + 1] = lg.out_first_[v] + g.OutDegree(v);
      for (const Arc& a : g.OutArcs(v)) lg.out_arcs_.push_back(a);
      lg.in_first_[v + 1] = lg.in_first_[v] + g.InDegree(v);
      for (const Arc& a : g.InArcs(v)) lg.in_arcs_.push_back(a);
    }
    return lg;
  }

  std::size_t NumNodes() const {
    return out_first_.empty() ? 0 : out_first_.size() - 1;
  }
  std::size_t NumArcs() const { return out_arcs_.size(); }

  std::span<const Arc> OutArcs(NodeId v) const {
    return {out_arcs_.data() + out_first_[v],
            out_arcs_.data() + out_first_[v + 1]};
  }
  std::span<const Arc> InArcs(NodeId v) const {
    return {in_arcs_.data() + in_first_[v],
            in_arcs_.data() + in_first_[v + 1]};
  }

 private:
  std::vector<std::uint64_t> out_first_;
  std::vector<Arc> out_arcs_;
  std::vector<std::uint64_t> in_first_;
  std::vector<Arc> in_arcs_;
};

}  // namespace ah
