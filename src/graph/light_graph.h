// A lightweight CSR view over an arbitrary arc list — the representation the
// arterial machinery and level assigner use for the shrinking overlay graphs
// G'_1, G'_2, ... (which are arc lists, not full Graph objects).
//
// The two-argument constructor ignores midpoints. FC builds its hierarchy
// through the midpoint-aware constructor instead, which additionally retains
// a per-tail unpack table of (head, weight, mid) entries — the CH-style
// shortcut representation that turns path recovery into O(k) expansion —
// plus optional unpack-only arcs that never enter the query adjacency.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "hier/contraction.h"
#include "util/types.h"

namespace ah {

/// One entry of the unpack table. mid == kInvalidNode means the arc is an
/// original graph edge; otherwise it expands into tail→mid→head.
struct UnpackArc {
  NodeId head = kInvalidNode;
  Weight weight = 0;
  NodeId mid = kInvalidNode;
};

class LightGraph {
 public:
  LightGraph() = default;

  /// Builds adjacency over node ids [0, n) from `arcs` (mid fields ignored).
  LightGraph(std::size_t n, const std::vector<HierArc>& arcs);

  /// Midpoint-aware variant: builds the same query adjacency from `arcs` and
  /// additionally retains an unpack table over `arcs` + `unpack_only`.
  /// `unpack_only` arcs participate in shortcut expansion but are invisible
  /// to OutArcs/InArcs (and to NumArcs), so query searches are unaffected.
  LightGraph(std::size_t n, const std::vector<HierArc>& arcs,
             const std::vector<HierArc>& unpack_only);

  /// Copies an existing Graph's arcs (same node ids).
  static LightGraph FromGraph(const Graph& g);

  std::size_t NumNodes() const {
    return out_first_.empty() ? 0 : out_first_.size() - 1;
  }
  std::size_t NumArcs() const { return out_arcs_.size(); }

  std::span<const Arc> OutArcs(NodeId v) const {
    return {out_arcs_.data() + out_first_[v],
            out_arcs_.data() + out_first_[v + 1]};
  }
  std::span<const Arc> InArcs(NodeId v) const {
    return {in_arcs_.data() + in_first_[v],
            in_arcs_.data() + in_first_[v + 1]};
  }

  /// True when the graph was built with the midpoint-aware constructor.
  bool HasMids() const { return !unpack_first_.empty(); }

  /// Number of unpack-table entries (query arcs + unpack-only arcs).
  std::size_t NumUnpackArcs() const { return unpack_arcs_.size(); }

  /// Appends the fully expanded node sequence of arc u→v to `out`, excluding
  /// u and including v. The arc must exist in the unpack table. When
  /// parallel entries exist the lightest is expanded; because every entry
  /// describes a real path of exactly its weight and arc weights are
  /// strictly positive, the result is a real path. Each split is checked to
  /// strictly decrease both halves' weights (throws std::logic_error
  /// otherwise), so expansion terminates even on an ill-formed table.
  /// Precondition: HasMids().
  void AppendUnpacked(NodeId u, NodeId v, std::vector<NodeId>* out) const;

  /// Expands a hierarchy path (node sequence where consecutive nodes are
  /// arcs of the unpack table) into the original-graph path.
  /// Precondition: HasMids().
  std::vector<NodeId> UnpackPath(const std::vector<NodeId>& hierarchy_path) const;

  std::size_t SizeBytes() const;

  /// Binary persistence (magic "AHLG"), including the unpack table.
  void Save(std::ostream& out) const;
  static LightGraph Load(std::istream& in);

 private:
  void BuildAdjacency(std::size_t n, const std::vector<HierArc>& arcs);
  void BuildUnpackTable(std::size_t n, const std::vector<HierArc>& arcs,
                        const std::vector<HierArc>& unpack_only);

  /// Lightest unpack entry for arc u→v; nullptr if absent.
  const UnpackArc* LookupLightest(NodeId u, NodeId v) const;

  std::vector<std::uint64_t> out_first_;
  std::vector<Arc> out_arcs_;
  std::vector<std::uint64_t> in_first_;
  std::vector<Arc> in_arcs_;

  // Unpack table: all arcs grouped by tail, sorted by (head, weight) so the
  // first match is the lightest. Empty unless the midpoint-aware constructor
  // was used.
  std::vector<std::uint64_t> unpack_first_;
  std::vector<UnpackArc> unpack_arcs_;
};

}  // namespace ah
