#include "graph/connectivity.h"

#include <algorithm>

#include "graph/builder.h"

namespace ah {

std::vector<std::uint32_t> StronglyConnectedComponents(const Graph& g,
                                                       std::size_t* num_scc) {
  const std::size_t n = g.NumNodes();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::vector<std::uint32_t> comp(n, kUnvisited);
  std::uint32_t next_index = 0;
  std::uint32_t next_comp = 0;

  // Iterative Tarjan: each frame remembers how many out-arcs were consumed.
  struct Frame {
    NodeId v;
    std::uint32_t arc;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId v = frame.v;
      if (frame.arc == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      auto arcs = g.OutArcs(v);
      while (frame.arc < arcs.size()) {
        const NodeId w = arcs[frame.arc].head;
        ++frame.arc;
        if (index[w] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      // v is finished.
      if (lowlink[v] == index[v]) {
        while (true) {
          const NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const NodeId parent = call_stack.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  if (num_scc != nullptr) *num_scc = next_comp;
  return comp;
}

bool IsStronglyConnected(const Graph& g) {
  if (g.NumNodes() == 0) return true;
  std::size_t num_scc = 0;
  StronglyConnectedComponents(g, &num_scc);
  return num_scc == 1;
}

Graph LargestStronglyConnectedComponent(const Graph& g,
                                        std::vector<NodeId>* old_to_new) {
  const std::size_t n = g.NumNodes();
  std::size_t num_scc = 0;
  std::vector<std::uint32_t> comp = StronglyConnectedComponents(g, &num_scc);

  std::vector<std::size_t> comp_size(num_scc, 0);
  for (NodeId v = 0; v < n; ++v) ++comp_size[comp[v]];
  const std::uint32_t best = static_cast<std::uint32_t>(
      std::max_element(comp_size.begin(), comp_size.end()) -
      comp_size.begin());

  std::vector<NodeId> mapping(n, kInvalidNode);
  GraphBuilder builder(comp_size[best]);
  for (NodeId v = 0; v < n; ++v) {
    if (comp[v] == best) mapping[v] = builder.AddNode(g.Coord(v));
  }
  for (NodeId v = 0; v < n; ++v) {
    if (comp[v] != best) continue;
    for (const Arc& a : g.OutArcs(v)) {
      if (comp[a.head] == best) {
        builder.AddArc(mapping[v], mapping[a.head], a.weight);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return builder.Build();
}

}  // namespace ah
