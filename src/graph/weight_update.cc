#include "graph/weight_update.h"

namespace ah {

DeltaStatus ValidateWeightDelta(const Graph& g, const WeightDelta& delta) {
  if (delta.tail >= g.NumNodes() || delta.head >= g.NumNodes()) {
    return DeltaStatus::kBadNode;
  }
  if (delta.weight == 0 || delta.weight == kMaxWeight) {
    return DeltaStatus::kBadWeight;
  }
  if (!g.HasArc(delta.tail, delta.head)) return DeltaStatus::kNoSuchArc;
  return DeltaStatus::kOk;
}

std::size_t ApplyWeightDeltas(Graph* g, std::span<const WeightDelta> deltas) {
  std::size_t applied = 0;
  for (const WeightDelta& delta : deltas) {
    if (ValidateWeightDelta(*g, delta) != DeltaStatus::kOk) continue;
    applied += g->SetArcWeight(delta.tail, delta.head, delta.weight);
  }
  return applied;
}

}  // namespace ah
