#include "graph/weight_update.h"

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/serialize.h"

namespace ah {

DeltaStatus ValidateWeightDelta(const Graph& g, const WeightDelta& delta) {
  if (delta.tail >= g.NumNodes() || delta.head >= g.NumNodes()) {
    return DeltaStatus::kBadNode;
  }
  if (delta.weight == 0 || delta.weight == kMaxWeight) {
    return DeltaStatus::kBadWeight;
  }
  if (!g.HasArc(delta.tail, delta.head)) return DeltaStatus::kNoSuchArc;
  return DeltaStatus::kOk;
}

DeltaApplyStats ApplyWeightDeltas(Graph* g,
                                  std::span<const WeightDelta> deltas) {
  DeltaApplyStats stats;
  // Last valid writer per arc: only that delta is applied; earlier valid
  // deltas to the same arc count as coalesced. The map is looked up per
  // delta, never iterated, so no hash order reaches the graph.
  std::unordered_map<std::uint64_t, std::size_t> last_writer;
  last_writer.reserve(deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const WeightDelta& delta = deltas[i];
    if (ValidateWeightDelta(*g, delta) != DeltaStatus::kOk) continue;
    const std::uint64_t arc_key =
        (static_cast<std::uint64_t>(delta.tail) << 32) |
        static_cast<std::uint64_t>(delta.head);
    last_writer[arc_key] = i;
  }
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const WeightDelta& delta = deltas[i];
    if (ValidateWeightDelta(*g, delta) != DeltaStatus::kOk) {
      ++stats.rejected;
      continue;
    }
    const std::uint64_t arc_key =
        (static_cast<std::uint64_t>(delta.tail) << 32) |
        static_cast<std::uint64_t>(delta.head);
    if (last_writer.at(arc_key) != i) {
      ++stats.coalesced;
      continue;
    }
    g->SetArcWeight(delta.tail, delta.head, delta.weight);
    ++stats.applied;
  }
  return stats;
}

void SaveWeightDeltas(std::ostream& out, std::span<const WeightDelta> deltas) {
  BinaryWriter w(out);
  w.Magic("AHUD", 1);
  w.Pod<std::uint64_t>(deltas.size());
  for (const WeightDelta& delta : deltas) {
    w.Pod<std::uint32_t>(delta.tail);
    w.Pod<std::uint32_t>(delta.head);
    w.Pod<std::uint32_t>(delta.weight);
  }
}

std::vector<WeightDelta> LoadWeightDeltas(std::istream& in,
                                          std::size_t max_deltas) {
  BinaryReader r(in);
  r.Magic("AHUD", 1);
  const std::uint64_t count = r.Pod<std::uint64_t>();
  if (count > max_deltas) {
    throw std::length_error("LoadWeightDeltas: batch of " +
                            std::to_string(count) + " exceeds the cap of " +
                            std::to_string(max_deltas));
  }
  std::vector<WeightDelta> deltas;
  deltas.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    WeightDelta delta;
    delta.tail = r.Pod<std::uint32_t>();
    delta.head = r.Pod<std::uint32_t>();
    delta.weight = r.Pod<std::uint32_t>();
    deltas.push_back(delta);
  }
  return deltas;
}

}  // namespace ah
