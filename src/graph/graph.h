// The road-network graph: a static CSR representation of a directed graph
// with positive edge weights and planar node coordinates, exactly the model
// of Section 2 of the paper (directed, degree-bounded, connected, embedded).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "geo/point.h"
#include "util/types.h"

namespace ah {

/// One directed arc in CSR order.
struct Arc {
  NodeId head = kInvalidNode;  ///< Target node.
  Weight weight = 0;           ///< Positive length / travel time.
};

/// Immutable directed graph in compressed-sparse-row form with both outgoing
/// and incoming adjacency (incoming arcs are needed by every backward search
/// in the bidirectional algorithms) plus per-node coordinates.
///
/// Construct through GraphBuilder.
class Graph {
 public:
  Graph() = default;

  std::size_t NumNodes() const { return coords_.size(); }
  std::size_t NumArcs() const { return out_arcs_.size(); }

  const Point& Coord(NodeId v) const { return coords_[v]; }
  const std::vector<Point>& Coords() const { return coords_; }

  /// Outgoing arcs of v.
  std::span<const Arc> OutArcs(NodeId v) const {
    return {out_arcs_.data() + out_first_[v],
            out_arcs_.data() + out_first_[v + 1]};
  }

  /// Incoming arcs of v; Arc::head is the *tail* of the original arc.
  std::span<const Arc> InArcs(NodeId v) const {
    return {in_arcs_.data() + in_first_[v],
            in_arcs_.data() + in_first_[v + 1]};
  }

  std::size_t OutDegree(NodeId v) const {
    return out_first_[v + 1] - out_first_[v];
  }
  std::size_t InDegree(NodeId v) const {
    return in_first_[v + 1] - in_first_[v];
  }

  /// Maximum of out-degree + in-degree over all nodes (Δ in Appendix A).
  std::size_t MaxDegree() const;

  /// Weight of an arc u→v, or kMaxWeight if absent. Linear in OutDegree(u);
  /// when parallel arcs exist, the minimum weight is returned.
  Weight ArcWeight(NodeId u, NodeId v) const;

  /// True iff at least one arc u→v exists. Linear in OutDegree(u).
  bool HasArc(NodeId u, NodeId v) const { return ArcWeight(u, v) != kMaxWeight; }

  /// Index-lifecycle hook (graph/weight_update.h): sets the weight of every
  /// arc u→v, keeping the out- and in-adjacency mirrored, and returns the
  /// number of arcs updated (0 = no such arc; the structure never changes).
  /// `w` must be positive. The CSR layout, node set, and coordinates are
  /// untouched, so indexes built over equal-topology snapshots stay
  /// node-id-compatible. Must only be called on a graph no built index
  /// references — the registry mutates a private copy, then rebuilds.
  std::size_t SetArcWeight(NodeId u, NodeId v, Weight w);

  /// Bounding box of all node coordinates.
  Box BoundingBox() const;

  /// Total bytes of the in-memory representation (index-size reporting).
  std::size_t SizeBytes() const;

  /// Binary persistence (magic "AHGR"). Load throws std::runtime_error on
  /// malformed input.
  void Save(std::ostream& out) const;
  static Graph Load(std::istream& in);

 private:
  friend class GraphBuilder;

  std::vector<Point> coords_;
  std::vector<std::uint64_t> out_first_;  // n+1 offsets.
  std::vector<Arc> out_arcs_;
  std::vector<std::uint64_t> in_first_;
  std::vector<Arc> in_arcs_;
};

}  // namespace ah
