// Connectivity utilities: the paper assumes a connected network; DIMACS data
// and the synthetic generator are cleaned by extracting the largest strongly
// connected component.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ah {

/// Strongly-connected-component labeling (iterative Tarjan). Returns one
/// component id per node; ids are dense starting at 0.
std::vector<std::uint32_t> StronglyConnectedComponents(const Graph& g,
                                                       std::size_t* num_scc);

/// True if the whole graph is one strongly connected component.
bool IsStronglyConnected(const Graph& g);

/// Induced subgraph on the largest SCC, with nodes renumbered densely.
/// If `old_to_new` is non-null it receives the node mapping
/// (kInvalidNode for dropped nodes).
Graph LargestStronglyConnectedComponent(const Graph& g,
                                        std::vector<NodeId>* old_to_new);

}  // namespace ah
