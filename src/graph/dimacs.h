// Reader/writer for the 9th DIMACS Implementation Challenge road-network
// format — the format of the datasets the paper evaluates on ([3] in the
// paper). A network is a pair of files:
//   *.gr  — "p sp <n> <m>" header plus "a <tail> <head> <weight>" arc lines.
//   *.co  — "p aux sp co <n>" header plus "v <id> <x> <y>" coordinate lines.
// Node ids are 1-based in the files and converted to 0-based in memory.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace ah {

/// Writes graph arcs in .gr format.
void WriteDimacsGraph(const Graph& g, std::ostream& out);
/// Writes node coordinates in .co format.
void WriteDimacsCoords(const Graph& g, std::ostream& out);

/// Convenience: writes `<base>.gr` and `<base>.co`.
void WriteDimacsFiles(const Graph& g, const std::string& base_path);

/// Reads a graph from .gr + .co streams. Throws std::runtime_error on
/// malformed input or mismatched node counts.
Graph ReadDimacs(std::istream& gr, std::istream& co);

/// Convenience: reads `<base>.gr` and `<base>.co`.
Graph ReadDimacsFiles(const std::string& base_path);

}  // namespace ah
