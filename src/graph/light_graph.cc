#include "graph/light_graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/serialize.h"

namespace ah {

LightGraph::LightGraph(std::size_t n, const std::vector<HierArc>& arcs) {
  BuildAdjacency(n, arcs);
}

LightGraph::LightGraph(std::size_t n, const std::vector<HierArc>& arcs,
                       const std::vector<HierArc>& unpack_only) {
  BuildAdjacency(n, arcs);
  BuildUnpackTable(n, arcs, unpack_only);
}

void LightGraph::BuildAdjacency(std::size_t n,
                                const std::vector<HierArc>& arcs) {
  out_first_.assign(n + 1, 0);
  in_first_.assign(n + 1, 0);
  for (const HierArc& a : arcs) {
    ++out_first_[a.tail + 1];
    ++in_first_[a.head + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    out_first_[v + 1] += out_first_[v];
    in_first_[v + 1] += in_first_[v];
  }
  out_arcs_.resize(arcs.size());
  in_arcs_.resize(arcs.size());
  std::vector<std::uint64_t> oc(out_first_.begin(), out_first_.end() - 1);
  std::vector<std::uint64_t> ic(in_first_.begin(), in_first_.end() - 1);
  for (const HierArc& a : arcs) {
    out_arcs_[oc[a.tail]++] = Arc{a.head, a.weight};
    in_arcs_[ic[a.head]++] = Arc{a.tail, a.weight};
  }
}

void LightGraph::BuildUnpackTable(std::size_t n,
                                  const std::vector<HierArc>& arcs,
                                  const std::vector<HierArc>& unpack_only) {
  unpack_first_.assign(n + 1, 0);
  for (const HierArc& a : arcs) ++unpack_first_[a.tail + 1];
  for (const HierArc& a : unpack_only) ++unpack_first_[a.tail + 1];
  for (std::size_t v = 0; v < n; ++v) {
    unpack_first_[v + 1] += unpack_first_[v];
  }
  unpack_arcs_.resize(arcs.size() + unpack_only.size());
  std::vector<std::uint64_t> cur(unpack_first_.begin(),
                                 unpack_first_.end() - 1);
  for (const HierArc& a : arcs) {
    unpack_arcs_[cur[a.tail]++] = UnpackArc{a.head, a.weight, a.mid};
  }
  for (const HierArc& a : unpack_only) {
    unpack_arcs_[cur[a.tail]++] = UnpackArc{a.head, a.weight, a.mid};
  }
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(unpack_arcs_.begin() + unpack_first_[v],
              unpack_arcs_.begin() + unpack_first_[v + 1],
              [](const UnpackArc& x, const UnpackArc& y) {
                return x.head != y.head ? x.head < y.head
                                        : x.weight < y.weight;
              });
  }
}

LightGraph LightGraph::FromGraph(const Graph& g) {
  LightGraph lg;
  const std::size_t n = g.NumNodes();
  lg.out_first_.assign(n + 1, 0);
  lg.in_first_.assign(n + 1, 0);
  lg.out_arcs_.reserve(g.NumArcs());
  lg.in_arcs_.reserve(g.NumArcs());
  for (NodeId v = 0; v < n; ++v) {
    lg.out_first_[v + 1] = lg.out_first_[v] + g.OutDegree(v);
    for (const Arc& a : g.OutArcs(v)) lg.out_arcs_.push_back(a);
    lg.in_first_[v + 1] = lg.in_first_[v] + g.InDegree(v);
    for (const Arc& a : g.InArcs(v)) lg.in_arcs_.push_back(a);
  }
  return lg;
}

const UnpackArc* LightGraph::LookupLightest(NodeId u, NodeId v) const {
  const auto begin = unpack_arcs_.begin() + unpack_first_[u];
  const auto end = unpack_arcs_.begin() + unpack_first_[u + 1];
  const auto it = std::lower_bound(begin, end, v,
                                   [](const UnpackArc& a, NodeId target) {
                                     return a.head < target;
                                   });
  if (it == end || it->head != v) return nullptr;
  return &*it;
}

void LightGraph::AppendUnpacked(NodeId u, NodeId v,
                                std::vector<NodeId>* out) const {
  // Iterative expansion: a work stack of arcs, processed left-to-right. A
  // well-formed table splits every mid-bearing arc into two strictly
  // lighter halves (weights are >= 1), which is enforced per split below —
  // so expansion terminates even on a corrupted (loaded) table, by strict
  // weight descent, instead of spinning.
  struct Pending {
    NodeId from;
    const UnpackArc* arc;
  };
  const UnpackArc* top = LookupLightest(u, v);
  if (top == nullptr) {
    throw std::logic_error("LightGraph::AppendUnpacked: unknown arc");
  }
  std::vector<Pending> stack = {{u, top}};
  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();
    if (p.arc->mid == kInvalidNode) {
      out->push_back(p.arc->head);
      continue;
    }
    const UnpackArc* left = LookupLightest(p.from, p.arc->mid);
    const UnpackArc* right = LookupLightest(p.arc->mid, p.arc->head);
    if (left == nullptr || right == nullptr ||
        left->weight >= p.arc->weight || right->weight >= p.arc->weight) {
      throw std::logic_error(
          "LightGraph::AppendUnpacked: ill-formed unpack table");
    }
    // Expand left part first: push right, then left (stack is LIFO).
    stack.push_back({p.arc->mid, right});
    stack.push_back({p.from, left});
  }
}

std::vector<NodeId> LightGraph::UnpackPath(
    const std::vector<NodeId>& hierarchy_path) const {
  std::vector<NodeId> out;
  if (hierarchy_path.empty()) return out;
  out.push_back(hierarchy_path.front());
  for (std::size_t i = 0; i + 1 < hierarchy_path.size(); ++i) {
    AppendUnpacked(hierarchy_path[i], hierarchy_path[i + 1], &out);
  }
  return out;
}

std::size_t LightGraph::SizeBytes() const {
  return out_first_.size() * sizeof(std::uint64_t) +
         out_arcs_.size() * sizeof(Arc) +
         in_first_.size() * sizeof(std::uint64_t) +
         in_arcs_.size() * sizeof(Arc) +
         unpack_first_.size() * sizeof(std::uint64_t) +
         unpack_arcs_.size() * sizeof(UnpackArc);
}

void LightGraph::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Magic("AHLG", 1);
  w.Vector(out_first_);
  w.Vector(out_arcs_);
  w.Vector(in_first_);
  w.Vector(in_arcs_);
  w.Vector(unpack_first_);
  w.Vector(unpack_arcs_);
}

namespace {

bool OffsetsMonotone(const std::vector<std::uint64_t>& first) {
  if (first.empty() || first.front() != 0) return false;
  for (std::size_t i = 0; i + 1 < first.size(); ++i) {
    if (first[i] > first[i + 1]) return false;
  }
  return true;
}

}  // namespace

LightGraph LightGraph::Load(std::istream& in) {
  BinaryReader r(in);
  r.Magic("AHLG", 1);
  LightGraph lg;
  lg.out_first_ = r.Vector<std::uint64_t>();
  lg.out_arcs_ = r.Vector<Arc>();
  lg.in_first_ = r.Vector<std::uint64_t>();
  lg.in_arcs_ = r.Vector<Arc>();
  lg.unpack_first_ = r.Vector<std::uint64_t>();
  lg.unpack_arcs_ = r.Vector<UnpackArc>();
  if (lg.out_first_.empty() || lg.in_first_.size() != lg.out_first_.size() ||
      lg.out_first_.back() != lg.out_arcs_.size() ||
      lg.in_first_.back() != lg.in_arcs_.size() ||
      (!lg.unpack_first_.empty() &&
       (lg.unpack_first_.size() != lg.out_first_.size() ||
        lg.unpack_first_.back() != lg.unpack_arcs_.size()))) {
    throw std::runtime_error("LightGraph::Load: inconsistent structure");
  }
  // Content validation: corrupted-but-size-consistent streams must throw,
  // never hand back a graph whose arcs index out of range.
  if (!OffsetsMonotone(lg.out_first_) || !OffsetsMonotone(lg.in_first_) ||
      (!lg.unpack_first_.empty() && !OffsetsMonotone(lg.unpack_first_))) {
    throw std::runtime_error("LightGraph::Load: non-monotone offsets");
  }
  const std::size_t n = lg.NumNodes();
  for (const Arc& a : lg.out_arcs_) {
    if (a.head >= n) throw std::runtime_error("LightGraph::Load: bad head");
  }
  for (const Arc& a : lg.in_arcs_) {
    if (a.head >= n) throw std::runtime_error("LightGraph::Load: bad tail");
  }
  for (const UnpackArc& a : lg.unpack_arcs_) {
    if (a.head >= n || (a.mid != kInvalidNode && a.mid >= n)) {
      throw std::runtime_error("LightGraph::Load: bad unpack arc");
    }
  }
  return lg;
}

}  // namespace ah
