#include "graph/builder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ah {

NodeId GraphBuilder::AddNode(Point p) {
  coords_.push_back(p);
  return static_cast<NodeId>(coords_.size() - 1);
}

void GraphBuilder::AddArc(NodeId tail, NodeId head, Weight weight) {
  if (tail >= coords_.size() || head >= coords_.size()) {
    throw std::out_of_range("GraphBuilder::AddArc: endpoint out of range");
  }
  if (weight == 0) {
    throw std::invalid_argument("GraphBuilder::AddArc: weight must be > 0");
  }
  arcs_.push_back(RawArc{tail, head, weight});
}

Graph GraphBuilder::Build() const {
  const std::size_t n = coords_.size();

  // Sort arcs by (tail, head, weight) so duplicates are adjacent; keep only
  // the cheapest copy of each parallel arc and drop self-loops.
  std::vector<RawArc> arcs;
  arcs.reserve(arcs_.size());
  for (const RawArc& a : arcs_) {
    if (a.tail != a.head) arcs.push_back(a);
  }
  std::sort(arcs.begin(), arcs.end(), [](const RawArc& a, const RawArc& b) {
    if (a.tail != b.tail) return a.tail < b.tail;
    if (a.head != b.head) return a.head < b.head;
    return a.weight < b.weight;
  });
  arcs.erase(std::unique(arcs.begin(), arcs.end(),
                         [](const RawArc& a, const RawArc& b) {
                           return a.tail == b.tail && a.head == b.head;
                         }),
             arcs.end());

  Graph g;
  g.coords_ = coords_;

  g.out_first_.assign(n + 1, 0);
  for (const RawArc& a : arcs) ++g.out_first_[a.tail + 1];
  for (std::size_t v = 0; v < n; ++v) g.out_first_[v + 1] += g.out_first_[v];
  g.out_arcs_.resize(arcs.size());
  {
    std::vector<std::uint64_t> cursor(g.out_first_.begin(),
                                      g.out_first_.end() - 1);
    for (const RawArc& a : arcs) {
      g.out_arcs_[cursor[a.tail]++] = Arc{a.head, a.weight};
    }
  }

  g.in_first_.assign(n + 1, 0);
  for (const RawArc& a : arcs) ++g.in_first_[a.head + 1];
  for (std::size_t v = 0; v < n; ++v) g.in_first_[v + 1] += g.in_first_[v];
  g.in_arcs_.resize(arcs.size());
  {
    std::vector<std::uint64_t> cursor(g.in_first_.begin(),
                                      g.in_first_.end() - 1);
    for (const RawArc& a : arcs) {
      g.in_arcs_[cursor[a.head]++] = Arc{a.tail, a.weight};
    }
  }
  return g;
}

}  // namespace ah
