// 2-hop hub labeling (pruned landmark labeling; Akiba et al., SIGMOD'13 —
// see PAPERS.md): the post-paper point of comparison that pushes exact
// distance queries below every hierarchy-traversal method in this repo.
//
// Every node v carries two flat label arrays sorted by hub rank:
//   Lout(v) = { (h, d(v→h)) }   and   Lin(v) = { (h, d(h→v)) },
// built by one pruned forward + one pruned backward Dijkstra per hub, in
// importance order (the reverse CH greedy contraction order — the same
// notion of importance the CH/AH hierarchies rank by). A distance query is
// a single merge join over Lout(s) and Lin(t): min over common hubs of the
// two label distances — no heap, no graph traversal, O(|Lout|+|Lin|) array
// scans. Pruning keeps labels small: a node already covered by
// higher-ranked hubs at its settle distance is neither labeled nor relaxed
// from, which preserves exactness (the highest-ranked node on a shortest
// path is never pruned along it) while cutting label growth.
//
// Paths are native: each label also stores the adjacent *parent* one hop
// toward (out-labels) or from (in-labels) the hub, so the best hub's two
// legs unroll by parent-pointer walks with one binary search per hop —
// zero distance probes (asserted by the conformance suite).
//
// The parallel build is round-synchronous and deterministic: hubs run in
// fixed rounds of kHubRound, each round's searches prune only against
// labels committed before the round, and per-hub deltas are committed
// serially in hub-rank order through the same bounded claim window SILC's
// build uses — bit-identical output at any thread count, with at most
// O(threads) per-hub delta buffers live.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "routing/path.h"
#include "util/types.h"

namespace ah {

/// One hub label. 16 bytes, no padding, trivially copyable (serialized and
/// compared raw by the determinism tests).
struct HlLabel {
  Rank hub;       ///< Hub rank; strictly ascending within one label array.
  NodeId parent;  ///< Adjacent node one hop toward (out) / from (in) the
                  ///< hub; kInvalidNode on the hub's own label.
  Dist dist;      ///< Label distance (v→hub for out, hub→v for in).
};

inline bool operator==(const HlLabel& a, const HlLabel& b) {
  return a.hub == b.hub && a.parent == b.parent && a.dist == b.dist;
}

struct HlBuildStats {
  double seconds = 0;
  std::size_t in_labels = 0;   ///< Total in-label entries.
  std::size_t out_labels = 0;  ///< Total out-label entries.
  /// Peak number of per-hub delta buffers live during the build — bounded
  /// by the claim window (O(build threads)), never by the hub count.
  std::size_t max_live_label_buffers = 0;
  /// The claim window the build ran with.
  std::size_t label_window = 0;
};

struct HlParams {
  /// Worker threads for the per-hub pruned searches (0 = the
  /// util/parallel.h WorkerThreads() default). The label tables are
  /// bit-identical at any thread count: rounds are a fixed partition of the
  /// hub order and deltas are committed serially in hub-rank order.
  std::size_t build_threads = 0;
};

class HlIndex {
 public:
  /// Builds the full 2-hop labeling. `g` is only read during the build —
  /// unlike the other indexes, queries never touch the graph again.
  static HlIndex Build(const Graph& g, const HlParams& params = {});

  /// Weights-only rebuild: relabels `g` with `previous`'s frozen hub order,
  /// skipping the greedy contraction that computes it. Pruned labeling is
  /// exact for any hub order, so the labels answer queries on `g` exactly;
  /// like Build, the result is bit-identical at any thread count. `g` must
  /// have `previous`'s node count (weight deltas never change topology);
  /// throws std::invalid_argument otherwise.
  static HlIndex RebuildWithFrozenOrder(const Graph& g,
                                        const HlIndex& previous,
                                        const HlParams& params = {});

  std::size_t NumNodes() const { return hub_of_rank_.size(); }
  const HlBuildStats& build_stats() const { return build_stats_; }

  /// Exact distance via one merge join over Lout(s) and Lin(t).
  Dist Distance(NodeId s, NodeId t) const;

  /// Exact path by unrolling the best hub's parent chains; no distance
  /// probes. Empty nodes iff unreachable.
  PathResult Path(NodeId s, NodeId t) const;

  std::span<const HlLabel> OutLabels(NodeId v) const {
    return {out_labels_.data() + out_first_[v],
            out_labels_.data() + out_first_[v + 1]};
  }
  std::span<const HlLabel> InLabels(NodeId v) const {
    return {in_labels_.data() + in_first_[v],
            in_labels_.data() + in_first_[v + 1]};
  }

  /// Raw tables, exposed so the build-determinism test can assert
  /// bit-identity across thread counts.
  const std::vector<HlLabel>& in_labels() const { return in_labels_; }
  const std::vector<HlLabel>& out_labels() const { return out_labels_; }
  const std::vector<std::uint64_t>& in_offsets() const { return in_first_; }
  const std::vector<std::uint64_t>& out_offsets() const { return out_first_; }
  const std::vector<NodeId>& hub_of_rank() const { return hub_of_rank_; }

  std::size_t SizeBytes() const;

  /// Versioned persistence ("AHHL"). Loaded indexes answer queries without
  /// any graph: the labels are self-contained.
  void Save(std::ostream& out) const;
  static HlIndex Load(std::istream& in);

 private:
  /// The round-synchronous parallel labeling over a given hub order — the
  /// shared tail of Build (fresh greedy order) and RebuildWithFrozenOrder
  /// (order inherited from a previous index). Sets every field except
  /// build_stats_.seconds, which the callers time themselves.
  static HlIndex BuildWithHubOrder(const Graph& g,
                                   std::vector<NodeId> hub_of_rank,
                                   const HlParams& params);

  std::vector<NodeId> hub_of_rank_;      // rank -> node id
  std::vector<std::uint64_t> in_first_;  // CSR offsets, size n+1
  std::vector<std::uint64_t> out_first_;
  std::vector<HlLabel> in_labels_;
  std::vector<HlLabel> out_labels_;
  HlBuildStats build_stats_;
};

}  // namespace ah
