#include "hl/hl_index.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <utility>

#include "hier/contraction.h"
#include "hier/greedy_order.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace ah {

namespace {

/// Hubs are processed in fixed rounds of this many: searches within one
/// round prune only against labels committed before the round, so the label
/// set depends on this constant partition — never on the thread count or on
/// scheduling. 32 keeps every worker busy at the WorkerThreads() cap of 16
/// while bounding how many hubs skip pruning against each other.
constexpr std::size_t kHubRound = 32;

/// One surviving (non-pruned) settle of a hub search, in settle order —
/// parents always precede children.
struct DeltaEntry {
  NodeId node;
  NodeId parent;
  Dist dist;
};

struct HubDelta {
  std::vector<DeltaEntry> in;   // forward search: hub → node
  std::vector<DeltaEntry> out;  // backward search: node → hub
};

/// Walks the concatenation of a node's committed label array and its staged
/// labels from earlier hubs of the current round. Staged ranks are strictly
/// larger than every committed rank, so the concatenation stays sorted.
struct LabelCursor {
  std::span<const HlLabel> a, b;
  std::size_t i = 0;
  bool AtEnd() const { return i >= a.size() + b.size(); }
  const HlLabel& Cur() const { return i < a.size() ? a[i] : b[i - a.size()]; }
  void Next() { ++i; }
};

/// The 2-hop query: min over common hubs of dout + din.
Dist MergeJoinUB(LabelCursor x, LabelCursor y) {
  Dist best = kInfDist;
  while (!x.AtEnd() && !y.AtEnd()) {
    const Rank rx = x.Cur().hub;
    const Rank ry = y.Cur().hub;
    if (rx == ry) {
      best = std::min(best, x.Cur().dist + y.Cur().dist);
      x.Next();
      y.Next();
    } else if (rx < ry) {
      x.Next();
    } else {
      y.Next();
    }
  }
  return best;
}

/// Per-worker pruned Dijkstra scratch: timestamped labels + lazy-deletion
/// heap, reused across every hub the worker runs.
class PrunedSearch {
 public:
  explicit PrunedSearch(std::size_t n)
      : dist_(n, 0), parent_(n, kInvalidNode), stamp_(n, 0) {}

  /// Pruned search from `hub` over out-arcs (forward) or in-arcs
  /// (backward). A node settled at distance d with covered(v, d) true is
  /// pruned: recorded nowhere and never relaxed from — so every surviving
  /// node's whole parent chain also survives (only labeled nodes relax).
  template <typename CoveredFn>
  void Run(const Graph& g, NodeId hub, bool forward, CoveredFn&& covered,
           std::vector<DeltaEntry>* delta) {
    ++round_;
    dist_[hub] = 0;
    parent_[hub] = kInvalidNode;
    stamp_[hub] = round_;
    heap_.push({0, hub});
    while (!heap_.empty()) {
      const auto [d, v] = heap_.top();
      heap_.pop();
      if (d != dist_[v] || stamp_[v] != round_) continue;  // stale entry
      if (v != hub && covered(v, d)) continue;  // pruned: no label, no relax
      delta->push_back({v, parent_[v], d});
      for (const Arc& a : forward ? g.OutArcs(v) : g.InArcs(v)) {
        const Dist nd = d + a.weight;
        if (stamp_[a.head] != round_ || nd < dist_[a.head]) {
          stamp_[a.head] = round_;
          dist_[a.head] = nd;
          parent_[a.head] = v;
          heap_.push({nd, a.head});
        }
      }
    }
  }

 private:
  std::priority_queue<std::pair<Dist, NodeId>,
                      std::vector<std::pair<Dist, NodeId>>,
                      std::greater<>>
      heap_;
  std::vector<Dist> dist_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t round_ = 0;
};

/// Binary search for the label with the given hub rank; nullptr if absent.
const HlLabel* FindLabel(std::span<const HlLabel> labels, Rank hub) {
  const auto it = std::lower_bound(
      labels.begin(), labels.end(), hub,
      [](const HlLabel& l, Rank r) { return l.hub < r; });
  if (it == labels.end() || it->hub != hub) return nullptr;
  return &*it;
}

}  // namespace

HlIndex HlIndex::Build(const Graph& g, const HlParams& params) {
  Timer timer;
  const std::size_t n = g.NumNodes();

  // Hub order: importance-descending = the reverse of the greedy
  // contraction order CH builds its hierarchy from (last contracted = most
  // important = rank 0).
  std::vector<NodeId> hub_of_rank;
  {
    ContractionEngine engine(n, ArcsOf(g), ContractionParams{});
    std::vector<NodeId> all(n);
    std::iota(all.begin(), all.end(), 0);
    const std::vector<NodeId> order =
        ContractGreedySubset(engine, all, GreedyOrderParams{});
    hub_of_rank.assign(order.rbegin(), order.rend());
  }

  HlIndex index = BuildWithHubOrder(g, std::move(hub_of_rank), params);
  index.build_stats_.seconds = timer.Seconds();
  return index;
}

HlIndex HlIndex::RebuildWithFrozenOrder(const Graph& g, const HlIndex& previous,
                                        const HlParams& params) {
  Timer timer;
  if (g.NumNodes() != previous.NumNodes()) {
    throw std::invalid_argument(
        "HlIndex::RebuildWithFrozenOrder: node count changed");
  }
  HlIndex index = BuildWithHubOrder(g, previous.hub_of_rank_, params);
  index.build_stats_.seconds = timer.Seconds();
  return index;
}

HlIndex HlIndex::BuildWithHubOrder(const Graph& g,
                                   std::vector<NodeId> hub_of_rank,
                                   const HlParams& params) {
  HlIndex index;
  const std::size_t n = g.NumNodes();
  index.hub_of_rank_ = std::move(hub_of_rank);

  const std::size_t threads =
      params.build_threads == 0 ? WorkerThreads() : params.build_threads;
  const std::size_t window = std::max<std::size_t>(2, 2 * threads);

  // Committed labels (every rank before the current round): the only thing
  // in-flight searches read. Staged labels: this round's commits, written
  // and read exclusively by the serial committer, published at the round
  // barrier — so commits never race the searches.
  std::vector<std::vector<HlLabel>> in_committed(n), out_committed(n);
  std::vector<std::vector<HlLabel>> in_staged(n), out_staged(n);
  std::vector<NodeId> touched_in, touched_out;

  std::vector<std::unique_ptr<PrunedSearch>> scratch(
      std::max<std::size_t>(1, std::min(threads, kHubRound)));
  std::vector<HubDelta> slots(std::max<std::size_t>(
      1, std::min(window, std::min(kHubRound, std::max<std::size_t>(1, n)))));

  // Commit-time scratch: marks which nodes of the current delta survived,
  // so dropping a covered node drops its whole subtree with it (path
  // recovery walks parent chains — a kept child may never point at a
  // dropped parent).
  std::vector<std::uint32_t> kept_stamp(n, 0);
  std::uint32_t commit_round = 0;
  std::size_t max_live = 0;

  for (std::size_t round_start = 0; round_start < n;
       round_start += kHubRound) {
    const std::size_t round_size = std::min(kHubRound, n - round_start);

    const WindowedChunkStats round_stats = ParallelChunksWindowed(
        round_size, 1, window,
        [&](std::size_t c, std::size_t, std::size_t, std::size_t tid) {
          if (!scratch[tid]) scratch[tid] = std::make_unique<PrunedSearch>(n);
          const Rank r = static_cast<Rank>(round_start + c);
          const NodeId hub = index.hub_of_rank_[r];
          HubDelta& delta = slots[c % slots.size()];
          delta.in.clear();
          delta.out.clear();
          scratch[tid]->Run(
              g, hub, /*forward=*/true,
              [&](NodeId v, Dist d) {
                return MergeJoinUB(LabelCursor{out_committed[hub], {}},
                                   LabelCursor{in_committed[v], {}}) <= d;
              },
              &delta.in);
          scratch[tid]->Run(
              g, hub, /*forward=*/false,
              [&](NodeId v, Dist d) {
                return MergeJoinUB(LabelCursor{out_committed[v], {}},
                                   LabelCursor{in_committed[hub], {}}) <= d;
              },
              &delta.out);
        },
        [&](std::size_t c, std::size_t, std::size_t) {
          // Serial commit in hub-rank order. Each entry is re-pruned
          // against everything committed so far — including earlier hubs
          // of this round, which the searches could not see — and covered
          // subtrees are dropped whole (the cascade keeps parent chains
          // intact, and coverage by a higher-ranked hub makes the subtree's
          // labels redundant by the standard pruning argument).
          const Rank r = static_cast<Rank>(round_start + c);
          const NodeId hub = index.hub_of_rank_[r];
          HubDelta& delta = slots[c % slots.size()];
          ++commit_round;
          for (const DeltaEntry& e : delta.in) {
            const bool root = e.node == hub;
            if (!root && kept_stamp[e.parent] != commit_round) continue;
            if (!root &&
                MergeJoinUB(
                    LabelCursor{out_committed[hub], out_staged[hub]},
                    LabelCursor{in_committed[e.node], in_staged[e.node]}) <=
                    e.dist) {
              continue;
            }
            kept_stamp[e.node] = commit_round;
            if (in_staged[e.node].empty()) touched_in.push_back(e.node);
            in_staged[e.node].push_back(HlLabel{r, e.parent, e.dist});
          }
          ++commit_round;
          for (const DeltaEntry& e : delta.out) {
            const bool root = e.node == hub;
            if (!root && kept_stamp[e.parent] != commit_round) continue;
            if (!root &&
                MergeJoinUB(
                    LabelCursor{out_committed[e.node], out_staged[e.node]},
                    LabelCursor{in_committed[hub], in_staged[hub]}) <=
                    e.dist) {
              continue;
            }
            kept_stamp[e.node] = commit_round;
            if (out_staged[e.node].empty()) touched_out.push_back(e.node);
            out_staged[e.node].push_back(HlLabel{r, e.parent, e.dist});
          }
        },
        threads);
    max_live = std::max(max_live, round_stats.max_live_chunks);

    // Round barrier: publish the staged labels so the next round's searches
    // prune against them. Ranks only grow, so appending keeps the arrays
    // sorted by hub rank.
    for (const NodeId v : touched_in) {
      in_committed[v].insert(in_committed[v].end(), in_staged[v].begin(),
                             in_staged[v].end());
      in_staged[v].clear();
    }
    touched_in.clear();
    for (const NodeId v : touched_out) {
      out_committed[v].insert(out_committed[v].end(), out_staged[v].begin(),
                              out_staged[v].end());
      out_staged[v].clear();
    }
    touched_out.clear();
  }

  // Flatten the per-node vectors into the query-time CSR tables.
  index.in_first_.assign(n + 1, 0);
  index.out_first_.assign(n + 1, 0);
  std::size_t total_in = 0, total_out = 0;
  for (NodeId v = 0; v < n; ++v) {
    total_in += in_committed[v].size();
    total_out += out_committed[v].size();
  }
  index.in_labels_.reserve(total_in);
  index.out_labels_.reserve(total_out);
  for (NodeId v = 0; v < n; ++v) {
    index.in_first_[v] = index.in_labels_.size();
    index.in_labels_.insert(index.in_labels_.end(), in_committed[v].begin(),
                            in_committed[v].end());
    index.out_first_[v] = index.out_labels_.size();
    index.out_labels_.insert(index.out_labels_.end(),
                             out_committed[v].begin(), out_committed[v].end());
  }
  index.in_first_[n] = index.in_labels_.size();
  index.out_first_[n] = index.out_labels_.size();

  index.build_stats_.in_labels = index.in_labels_.size();
  index.build_stats_.out_labels = index.out_labels_.size();
  index.build_stats_.max_live_label_buffers = max_live;
  index.build_stats_.label_window = window;
  return index;
}

Dist HlIndex::Distance(NodeId s, NodeId t) const {
  if (s == t) return 0;
  // The serving hot path: a raw two-pointer merge join over the flat label
  // arrays, free of the LabelCursor segment checks the build needs.
  const HlLabel* a = out_labels_.data() + out_first_[s];
  const HlLabel* const a_end = out_labels_.data() + out_first_[s + 1];
  const HlLabel* b = in_labels_.data() + in_first_[t];
  const HlLabel* const b_end = in_labels_.data() + in_first_[t + 1];
  Dist best = kInfDist;
  while (a != a_end && b != b_end) {
    if (a->hub == b->hub) {
      const Dist d = a->dist + b->dist;
      if (d < best) best = d;
      ++a;
      ++b;
    } else if (a->hub < b->hub) {
      ++a;
    } else {
      ++b;
    }
  }
  return best;
}

PathResult HlIndex::Path(NodeId s, NodeId t) const {
  PathResult result;
  if (s == t) {
    result.nodes = {s};
    result.length = 0;
    return result;
  }
  // Merge join tracking the minimizing hub (ties: lowest rank).
  const std::span<const HlLabel> a = OutLabels(s);
  const std::span<const HlLabel> b = InLabels(t);
  std::size_t i = 0, j = 0;
  Dist best = kInfDist;
  Rank best_rank = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].hub == b[j].hub) {
      const Dist d = a[i].dist + b[j].dist;
      if (d < best) {
        best = d;
        best_rank = a[i].hub;
      }
      ++i;
      ++j;
    } else if (a[i].hub < b[j].hub) {
      ++i;
    } else {
      ++j;
    }
  }
  if (best == kInfDist) return result;

  const NodeId hub = hub_of_rank_[best_rank];
  // Forward leg s → hub: every chain node carries an out-label for the hub
  // (pruned nodes are never relaxed from), each hop one binary search.
  result.nodes.push_back(s);
  NodeId u = s;
  for (std::size_t guard = 0; u != hub; ++guard) {
    const HlLabel* label = FindLabel(OutLabels(u), best_rank);
    if (label == nullptr || label->parent == kInvalidNode ||
        guard > NumNodes()) {
      return PathResult{};  // corrupt index; never hit by a built/loaded one
    }
    u = label->parent;
    result.nodes.push_back(u);
  }
  // Backward leg hub → t, walked from t up the in-label parents.
  std::vector<NodeId> tail;
  u = t;
  for (std::size_t guard = 0; u != hub; ++guard) {
    tail.push_back(u);
    const HlLabel* label = FindLabel(InLabels(u), best_rank);
    if (label == nullptr || label->parent == kInvalidNode ||
        guard > NumNodes()) {
      return PathResult{};
    }
    u = label->parent;
  }
  result.nodes.insert(result.nodes.end(), tail.rbegin(), tail.rend());
  result.length = best;
  return result;
}

std::size_t HlIndex::SizeBytes() const {
  return hub_of_rank_.size() * sizeof(NodeId) +
         (in_first_.size() + out_first_.size()) * sizeof(std::uint64_t) +
         (in_labels_.size() + out_labels_.size()) * sizeof(HlLabel);
}

void HlIndex::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Magic("AHHL", 1);
  w.Vector(hub_of_rank_);
  w.Vector(in_first_);
  w.Vector(in_labels_);
  w.Vector(out_first_);
  w.Vector(out_labels_);
  w.Pod(build_stats_.seconds);
  w.Pod<std::uint64_t>(build_stats_.max_live_label_buffers);
  w.Pod<std::uint64_t>(build_stats_.label_window);
}

HlIndex HlIndex::Load(std::istream& in) {
  BinaryReader r(in);
  r.Magic("AHHL", 1);
  HlIndex index;
  index.hub_of_rank_ = r.Vector<NodeId>();
  index.in_first_ = r.Vector<std::uint64_t>();
  index.in_labels_ = r.Vector<HlLabel>();
  index.out_first_ = r.Vector<std::uint64_t>();
  index.out_labels_ = r.Vector<HlLabel>();
  index.build_stats_.seconds = r.Pod<double>();
  index.build_stats_.max_live_label_buffers = r.Pod<std::uint64_t>();
  index.build_stats_.label_window = r.Pod<std::uint64_t>();
  index.build_stats_.in_labels = index.in_labels_.size();
  index.build_stats_.out_labels = index.out_labels_.size();
  const std::size_t n = index.hub_of_rank_.size();
  if (index.in_first_.size() != n + 1 || index.out_first_.size() != n + 1 ||
      (n > 0 && (index.in_first_.back() != index.in_labels_.size() ||
                 index.out_first_.back() != index.out_labels_.size()))) {
    throw std::runtime_error("HlIndex::Load: inconsistent label tables");
  }
  return index;
}

}  // namespace ah
