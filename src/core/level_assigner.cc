#include "core/level_assigner.h"

#include <algorithm>
#include <memory>

#include "arterial/local_paths.h"
#include "graph/light_graph.h"
#include "hgrid/window.h"
#include "util/parallel.h"

namespace ah {

LevelAssignment AssignLevels(const Graph& g, const GridHierarchy& gh,
                             const Nuance& nuance,
                             const LevelAssignParams& params) {
  const std::size_t n = g.NumNodes();
  const Level h = gh.Depth();

  LevelAssignment result;
  result.level.assign(n, 0);
  result.pseudo_arterial.resize(h);

  std::vector<NodeId> active(n);
  for (NodeId v = 0; v < n; ++v) active[v] = v;
  std::vector<HierArc> arcs = ArcsOf(g);

  std::vector<std::uint32_t> core_stamp(n, 0);
  std::uint32_t iteration = 0;

  for (Level i = 1; i <= h; ++i) {
    if (active.size() < params.min_active_nodes) break;
    ++iteration;

    const LightGraph lg(n, arcs);
    const SquareGrid& grid = gh.Grid(i);
    const CellIndex cells(grid, g.Coords(), active);

    // Collect pseudo-arterial edges over every non-empty window of R_i.
    // Windows are independent; process them on worker threads (one
    // WindowProcessor per thread) and merge. The final sort+dedup makes the
    // result independent of scheduling.
    const std::vector<Window> windows =
        EnumerateWindows(grid, cells, params.window_stride);
    const std::size_t num_threads = WorkerThreads();
    std::vector<std::unique_ptr<WindowProcessor>> processors(num_threads);
    std::vector<std::vector<std::pair<NodeId, NodeId>>> partial(num_threads);
    ParallelChunks(
        windows.size(), 64,
        [&](std::size_t, std::size_t begin, std::size_t end,
            std::size_t tid) {
          if (!processors[tid]) {
            processors[tid] = std::make_unique<WindowProcessor>(
                lg, g.Coords(), nuance);
          }
          for (std::size_t wi = begin; wi < end; ++wi) {
            for (const ArterialEdge& e :
                 processors[tid]->Process(grid, windows[wi], cells)) {
              partial[tid].emplace_back(e.tail, e.head);
            }
          }
        },
        num_threads);
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (auto& p : partial) {
      edges.insert(edges.end(), p.begin(), p.end());
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    // Promote endpoints to level-i cores.
    std::vector<NodeId> cores;
    for (const auto& [u, v] : edges) {
      for (NodeId x : {u, v}) {
        if (core_stamp[x] != iteration) {
          core_stamp[x] = iteration;
          cores.push_back(x);
        }
      }
    }
    result.pseudo_arterial[i - 1] = std::move(edges);
    if (cores.empty()) break;  // Nothing climbs higher; levels are final.

    for (NodeId v : cores) result.level[v] = i;
    result.max_level = i;
    result.cores_per_iteration.push_back(cores.size());

    if (i == h) break;  // No further reduction needed.

    // Reduce to the overlay on the cores: contract non-cores, cheapest
    // (lowest-degree) first to curb shortcut growth.
    std::vector<NodeId> to_remove;
    to_remove.reserve(active.size() - cores.size());
    for (NodeId v : active) {
      if (core_stamp[v] != iteration) to_remove.push_back(v);
    }
    std::sort(to_remove.begin(), to_remove.end(), [&](NodeId a, NodeId b) {
      const std::size_t da = lg.OutArcs(a).size() + lg.InArcs(a).size();
      const std::size_t db = lg.OutArcs(b).size() + lg.InArcs(b).size();
      if (da != db) return da < db;
      return a < b;
    });
    arcs = ContractNodes(n, arcs, to_remove, params.contraction);
    std::sort(cores.begin(), cores.end());
    active = std::move(cores);
  }
  return result;
}

}  // namespace ah
