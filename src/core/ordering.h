// §4.4 node ranking: a strict total order per hierarchy level.
//
// Level-i cores are ordered by a greedy maximum-degree vertex cover of the
// pseudo-arterial edge set S_i — hub nodes covering many arterial connections
// rank highest. Cores that do not appear in the cover may optionally be
// *downgraded* one level (the paper's optimization that thins the upper
// hierarchy). Level-0 nodes get a seeded random order.
#pragma once

#include <cstdint>
#include <vector>

#include "core/level_assigner.h"
#include "util/types.h"

namespace ah {

/// How nodes are ordered *inside* one hierarchy level (across levels the
/// order is always by level — that is what the rank/proximity machinery
/// relies on). §4.4 notes any strict total order preserves correctness.
enum class WithinLevelOrder {
  /// Lazy greedy edge-difference contraction order per level (the library
  /// default: pairs the paper's level structure with CH's local ordering;
  /// applied during contraction by AhIndex::Build).
  kGreedyEdgeDifference,
  /// The paper's §4.4 vertex-cover ordering (hubs of S_i rank highest).
  kVertexCover,
  /// Seeded random order (baseline for the ordering ablation).
  kRandom,
};

struct OrderingParams {
  WithinLevelOrder within_level = WithinLevelOrder::kGreedyEdgeDifference;
  bool downgrade = true;  ///< §4.4 downgrading of non-cover cores.
  std::uint64_t seed = 99;
};

struct AhOrdering {
  /// Nodes in ascending rank (contraction order). For
  /// kGreedyEdgeDifference this is a level-consistent placeholder (random
  /// within level); AhIndex::Build derives the actual order greedily during
  /// contraction.
  std::vector<NodeId> order;
  /// rank[v] = position of v in `order`.
  std::vector<Rank> rank;
  /// Levels after downgrading (== input levels when downgrading is off).
  std::vector<Level> level;
};

/// Greedy max-degree vertex cover of an edge list; returns the picked nodes
/// in pick order (first = covers most). Exposed for testing.
std::vector<NodeId> GreedyVertexCover(
    const std::vector<std::pair<NodeId, NodeId>>& edges);

/// Computes the AH rank order from a level assignment.
AhOrdering ComputeOrdering(const LevelAssignment& assignment,
                           const OrderingParams& params = {});

}  // namespace ah
