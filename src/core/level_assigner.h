// AH level assignment (§4.2 "Deciding Node Levels").
//
// Starting from the full graph, each iteration i imposes grid R_i on the
// current (shrinking) graph, finds the pseudo-arterial edges of every 4×4
// window, and promotes their endpoints to level-i cores. Nodes not promoted
// settle at level i−1. The graph is then reduced to a distance-preserving
// overlay on the cores (witness-search contraction of all non-cores) and the
// next iteration proceeds on it — this is what makes AH's preprocessing
// near-linear in practice, in contrast to FC's per-level recomputation on
// the original graph.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "hgrid/grid_hierarchy.h"
#include "hier/contraction.h"
#include "perturb/perturb.h"
#include "util/types.h"

namespace ah {

struct LevelAssignParams {
  ContractionParams contraction;
  /// Stop promoting once fewer active cores remain than this (they keep the
  /// current top level); avoids degenerate near-empty top iterations.
  std::size_t min_active_nodes = 2;
  /// Window anchor stride during level computation. 1 examines every window
  /// offset (the paper's definition — required for the pruned query mode to
  /// be exact: sparser strides miss arterial edges and break the Lemma-3
  /// property, which the ME-scale tests demonstrate). Values > 1 are an
  /// experimental speed knob for exact-mode-only deployments.
  std::int32_t window_stride = 1;
};

struct LevelAssignment {
  /// Final level per node, in [0, max_level].
  std::vector<Level> level;
  /// pseudo_arterial[i-1] = the S_i edge endpoint pairs found at iteration i
  /// (input to the §4.4 vertex-cover ordering).
  std::vector<std::vector<std::pair<NodeId, NodeId>>> pseudo_arterial;
  /// Highest level actually assigned.
  Level max_level = 0;
  /// Active-core count after each iteration (diagnostics; index i-1 =
  /// cores remaining after iteration i).
  std::vector<std::size_t> cores_per_iteration;
};

/// Runs the incremental level computation over grids R_1..R_h.
LevelAssignment AssignLevels(const Graph& g, const GridHierarchy& gh,
                             const Nuance& nuance,
                             const LevelAssignParams& params = {});

}  // namespace ah
