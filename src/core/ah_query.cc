#include "core/ah_query.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace ah {

namespace {

/// Proximity filter (§3.2, reused by AH): an arc into node v at level i may
/// only be taken when v and the search endpoint are covered by a common
/// 3×3-cell region of R_(i+1). Nodes whose level+1 exceeds the grid depth
/// are exempt (top of the hierarchy). Cells come from the index's
/// precomputed per-level table — this runs once per relaxed arc.
struct ProximityFilter {
  const AhIndex* index;
  const std::vector<Cell>* endpoint_cells;  // Cell of endpoint per grid level.

  bool operator()(NodeId /*from*/, NodeId to) const {
    const Level lv = index->LevelOf(to);
    // The top *populated* level plays the role of level h: its nodes form
    // the apex every far query must cross, so they are exempt even when the
    // level computation stopped below the grid depth (early-stop builds).
    if (lv >= index->MaxLevel()) return true;
    const Level gi = lv + 1;
    if (gi > index->grids().Depth()) return true;
    return SquareGrid::WithinThreeByThree((*endpoint_cells)[gi - 1],
                                          index->CellAt(gi, to));
  }
};

}  // namespace

AhQuery::AhQuery(const AhIndex& index, AhQueryOptions options)
    : index_(index),
      options_(options),
      search_(index.search_graph()),
      gateway_search_(index),
      walk_dist_(index.NumNodes(), kInfDist),
      walk_via_(index.NumNodes()),
      walk_stamp_(index.NumNodes(), 0) {}

void AhQuery::BuildSeeds(
    NodeId endpoint, Level j, bool forward, std::vector<SearchSeed>* seeds,
    std::vector<std::pair<NodeId, SeedWalkRecord>>* record) {
  seeds->clear();
  if (j <= index_.LevelOf(endpoint)) {
    seeds->push_back(SearchSeed{endpoint, 0});
    return;
  }

  // Tiny Dijkstra over gateway hops: climb as close to level j as the
  // stored band allows, as the paper's traversal does with elevating edges.
  // State lives in timestamped member arrays: no allocation, no hashing.
  ++walk_round_;
  walk_heap_.clear();
  walk_touched_.clear();
  auto heap_less = [](const WalkHeapEntry& a, const WalkHeapEntry& b) {
    return a.dist > b.dist;  // Min-heap.
  };
  auto touch = [&](NodeId node, Dist d, const SeedWalkRecord& rec) {
    if (walk_stamp_[node] != walk_round_) {
      walk_stamp_[node] = walk_round_;
      walk_touched_.push_back(node);
    } else if (walk_dist_[node] <= d) {
      return false;
    }
    walk_dist_[node] = d;
    walk_via_[node] = rec;
    return true;
  };
  touch(endpoint, 0, SeedWalkRecord{});
  walk_heap_.push_back(WalkHeapEntry{0, endpoint});
  std::size_t pops = 0;

  while (!walk_heap_.empty()) {
    std::pop_heap(walk_heap_.begin(), walk_heap_.end(), heap_less);
    const auto [d, x] = walk_heap_.back();
    walk_heap_.pop_back();
    if (walk_dist_[x] != d) continue;  // Stale entry.
    const Level lx = index_.LevelOf(x);
    bool is_seed = lx >= j || ++pops > options_.max_seed_walk;
    std::span<const Gateway> gws;
    Level jump = 0;
    if (!is_seed) {
      jump = std::min<Level>(lx + index_.params().gateway_band, j);
      gws = forward ? index_.FwdGateways(x, jump)
                    : index_.BwdGateways(x, jump);
      if (gws.empty()) is_seed = true;  // No elevating edge: search normally.
    }
    if (is_seed) {
      seeds->push_back(SearchSeed{x, d});
      continue;
    }
    for (const Gateway& gw : gws) {
      const Dist nd = d + gw.dist;
      if (!touch(gw.node, nd, SeedWalkRecord{x, jump})) continue;
      walk_heap_.push_back(WalkHeapEntry{nd, gw.node});
      std::push_heap(walk_heap_.begin(), walk_heap_.end(), heap_less);
    }
  }

  if (record != nullptr) {
    record->clear();
    for (NodeId node : walk_touched_) {
      record->emplace_back(node, walk_via_[node]);
    }
    std::sort(record->begin(), record->end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  if (seeds->empty()) seeds->push_back(SearchSeed{endpoint, 0});
}

Dist AhQuery::RunSearch(NodeId s, NodeId t, bool collect_records) {
  cur_s_ = s;
  cur_t_ = t;
  const bool pruned = options_.mode == AhQueryMode::kPruned;
  const bool proximity = pruned && options_.use_proximity;
  const bool elevating = pruned && options_.use_elevating;

  jump_level_ = elevating ? index_.QueryJumpLevel(s, t) : 0;

  fwd_seeds_.assign(1, SearchSeed{s, 0});
  bwd_seeds_.assign(1, SearchSeed{t, 0});
  fwd_record_.clear();
  bwd_record_.clear();
  if (elevating && jump_level_ > 0) {
    BuildSeeds(s, jump_level_, /*forward=*/true, &fwd_seeds_,
               collect_records ? &fwd_record_ : nullptr);
    BuildSeeds(t, jump_level_, /*forward=*/false, &bwd_seeds_,
               collect_records ? &bwd_record_ : nullptr);
  }

  if (!proximity) {
    return search_.Run(std::span<const SearchSeed>(fwd_seeds_),
                       std::span<const SearchSeed>(bwd_seeds_));
  }

  // Look up the endpoints' cells at every grid level (precomputed table).
  const Level depth = index_.grids().Depth();
  s_cells_.resize(depth);
  t_cells_.resize(depth);
  for (Level i = 1; i <= depth; ++i) {
    s_cells_[i - 1] = index_.CellAt(i, s);
    t_cells_[i - 1] = index_.CellAt(i, t);
  }
  const ProximityFilter fwd_filter{&index_, &s_cells_};
  const ProximityFilter bwd_filter{&index_, &t_cells_};
  return search_.Run(std::span<const SearchSeed>(fwd_seeds_),
                     std::span<const SearchSeed>(bwd_seeds_), fwd_filter,
                     bwd_filter);
}

Dist AhQuery::Distance(NodeId s, NodeId t) {
  if (s == t) return 0;
  return RunSearch(s, t, /*collect_records=*/false);
}

std::vector<NodeId> AhQuery::ExpandSeedChain(
    NodeId endpoint, NodeId seed, bool forward,
    const std::vector<std::pair<NodeId, SeedWalkRecord>>& record) {
  // Returns the original-graph node sequence endpoint→seed (forward) or
  // seed→endpoint (backward). Empty result means "no expansion needed"
  // (seed == endpoint).
  std::vector<NodeId> hops;  // Gateway hop nodes, endpoint ... seed.
  NodeId cur = seed;
  hops.push_back(cur);
  while (cur != endpoint) {
    auto it = std::lower_bound(
        record.begin(), record.end(), cur,
        [](const auto& entry, NodeId key) { return entry.first < key; });
    if (it == record.end() || it->first != cur ||
        it->second.prev == kInvalidNode) {
      break;  // Chain exhausted (seed == endpoint case handled below).
    }
    cur = it->second.prev;
    hops.push_back(cur);
  }
  std::reverse(hops.begin(), hops.end());  // endpoint ... seed.

  std::vector<NodeId> path{endpoint};
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    const NodeId from = hops[i];
    const NodeId to = hops[i + 1];
    // Find the jump level that connected from→to.
    auto it = std::lower_bound(
        record.begin(), record.end(), to,
        [](const auto& entry, NodeId key) { return entry.first < key; });
    const Level jump = it->second.jump_level;
    // Re-run the bounded gateway search to recover the hierarchy chain.
    gateway_search_.Run(from, jump, forward);
    std::vector<NodeId> chain = gateway_search_.ChainFrom(to);
    if (chain.size() < 2) {
      // Fallback (should not trigger): exact rank-only search between the
      // hop endpoints, oriented the same way as the main branch's chain.
      BidirUpwardSearch exact(index_.search_graph());
      const NodeId a = forward ? from : to;
      const NodeId b = forward ? to : from;
      exact.Distance(a, b);
      chain = exact.HierarchyPath();
      if (chain.size() < 2) continue;  // Disconnected: give up on this hop.
    } else if (!forward) {
      // Backward discovery orders the chain from→…→to while the real arcs
      // run to→…→from; flip into forward arc orientation.
      std::reverse(chain.begin(), chain.end());
    }
    std::vector<NodeId> expanded = index_.search_graph().UnpackPath(chain);
    if (!forward) std::reverse(expanded.begin(), expanded.end());
    path.insert(path.end(), expanded.begin() + 1, expanded.end());
  }
  if (!forward) std::reverse(path.begin(), path.end());
  return path;
}

PathResult AhQuery::Path(NodeId s, NodeId t) {
  PathResult result;
  if (s == t) {
    result.nodes = {s};
    result.length = 0;
    return result;
  }
  result.length = RunSearch(s, t, /*collect_records=*/true);
  if (result.length == kInfDist) return result;

  // Hierarchy path between the two seed nodes, expanded to original arcs.
  std::vector<NodeId> hier = search_.HierarchyPath();
  std::vector<NodeId> mid = index_.search_graph().UnpackPath(hier);

  const NodeId fwd_seed = search_.FwdSeedOfMeet();
  const NodeId bwd_seed = search_.BwdSeedOfMeet();

  std::vector<NodeId> full;
  if (fwd_seed != s) {
    full = ExpandSeedChain(s, fwd_seed, /*forward=*/true, fwd_record_);
    full.insert(full.end(), mid.begin() + 1, mid.end());
  } else {
    full = std::move(mid);
  }
  if (bwd_seed != t) {
    std::vector<NodeId> tail =
        ExpandSeedChain(t, bwd_seed, /*forward=*/false, bwd_record_);
    // tail reads bwd_seed ... t.
    full.insert(full.end(), tail.begin() + 1, tail.end());
  }
  result.nodes = std::move(full);
  return result;
}

}  // namespace ah
