#include "core/ordering.h"

#include <algorithm>
#include <unordered_map>

#include "util/rng.h"

namespace ah {

std::vector<NodeId> GreedyVertexCover(
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  // Compact the endpoint universe.
  std::unordered_map<NodeId, std::uint32_t> local;
  std::vector<NodeId> nodes;
  auto localize = [&](NodeId v) {
    auto [it, inserted] =
        local.try_emplace(v, static_cast<std::uint32_t>(nodes.size()));
    if (inserted) nodes.push_back(v);
    return it->second;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ledges;
  ledges.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    ledges.emplace_back(localize(u), localize(v));
  }
  const std::size_t m = ledges.size();
  const std::size_t k = nodes.size();

  // Incidence lists.
  std::vector<std::vector<std::uint32_t>> incident(k);
  for (std::uint32_t e = 0; e < m; ++e) {
    incident[ledges[e].first].push_back(e);
    incident[ledges[e].second].push_back(e);
  }

  // Bucket queue keyed by live degree: repeatedly pick the max-degree node,
  // kill its incident edges. Linear in Σdegree.
  std::vector<std::uint32_t> degree(k);
  std::size_t max_degree = 0;
  for (std::uint32_t v = 0; v < k; ++v) {
    degree[v] = static_cast<std::uint32_t>(incident[v].size());
    max_degree = std::max<std::size_t>(max_degree, degree[v]);
  }
  std::vector<std::vector<std::uint32_t>> buckets(max_degree + 1);
  for (std::uint32_t v = 0; v < k; ++v) buckets[degree[v]].push_back(v);
  std::vector<bool> edge_dead(m, false);
  std::vector<bool> picked(k, false);

  std::vector<NodeId> cover;
  std::size_t cursor = max_degree;
  std::size_t live_edges = m;
  while (live_edges > 0) {
    while (cursor > 0 && buckets[cursor].empty()) --cursor;
    if (cursor == 0) break;
    const std::uint32_t v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (picked[v] || degree[v] != cursor) {
      // Stale entry: re-file under the current degree.
      if (!picked[v] && degree[v] > 0) buckets[degree[v]].push_back(v);
      continue;
    }
    picked[v] = true;
    cover.push_back(nodes[v]);
    for (std::uint32_t e : incident[v]) {
      if (edge_dead[e]) continue;
      edge_dead[e] = true;
      --live_edges;
      const std::uint32_t other =
          ledges[e].first == v ? ledges[e].second : ledges[e].first;
      if (!picked[other] && degree[other] > 0) --degree[other];
    }
  }
  return cover;
}

AhOrdering ComputeOrdering(const LevelAssignment& assignment,
                           const OrderingParams& params) {
  const std::size_t n = assignment.level.size();
  AhOrdering out;
  out.level = assignment.level;

  const Level max_level = assignment.max_level;

  // Per level: cover position (0 = most important) or flags.
  constexpr std::uint32_t kNotInCover = 0xffffffffu;
  std::vector<std::uint32_t> cover_pos(n, kNotInCover);
  std::vector<bool> downgraded(n, false);

  const bool need_cover =
      params.within_level == WithinLevelOrder::kVertexCover ||
      params.downgrade;
  if (need_cover) {
    for (Level i = max_level; i >= 1; --i) {
      if (static_cast<std::size_t>(i) > assignment.pseudo_arterial.size()) {
        continue;
      }
      const auto& edges = assignment.pseudo_arterial[i - 1];
      if (edges.empty()) continue;
      const std::vector<NodeId> cover = GreedyVertexCover(edges);
      std::uint32_t pos = 0;
      for (NodeId v : cover) {
        // Only order nodes that actually live at this level.
        if (out.level[v] == i && cover_pos[v] == kNotInCover) {
          cover_pos[v] = pos++;
        }
      }
      if (params.downgrade && i >= 1) {
        for (NodeId v = 0; v < n; ++v) {
          if (out.level[v] == i && cover_pos[v] == kNotInCover &&
              !downgraded[v]) {
            out.level[v] = i - 1;
            downgraded[v] = true;
          }
        }
      }
    }
  }

  // Ascending rank = ascending (level, importance class, shuffled id).
  // Importance class inside a level, lowest first: plain nodes, downgraded
  // nodes (they nearly made the level above), cover nodes by reverse pick
  // order.
  Rng rng(params.seed);
  std::vector<std::uint64_t> shuffle_key(n);
  for (NodeId v = 0; v < n; ++v) shuffle_key[v] = rng.Next();

  const bool cover_ranks =
      params.within_level == WithinLevelOrder::kVertexCover;
  out.order.resize(n);
  for (NodeId v = 0; v < n; ++v) out.order[v] = v;
  std::sort(out.order.begin(), out.order.end(), [&](NodeId a, NodeId b) {
    if (out.level[a] != out.level[b]) return out.level[a] < out.level[b];
    if (cover_ranks) {
      const int ca = cover_pos[a] != kNotInCover ? 2 : (downgraded[a] ? 1 : 0);
      const int cb = cover_pos[b] != kNotInCover ? 2 : (downgraded[b] ? 1 : 0);
      if (ca != cb) return ca < cb;
      if (ca == 2 && cover_pos[a] != cover_pos[b]) {
        return cover_pos[a] > cover_pos[b];  // Earlier pick = higher rank.
      }
    }
    if (shuffle_key[a] != shuffle_key[b]) {
      return shuffle_key[a] < shuffle_key[b];
    }
    return a < b;
  });

  out.rank.resize(n);
  for (Rank r = 0; r < n; ++r) out.rank[out.order[r]] = r;
  return out;
}

}  // namespace ah
