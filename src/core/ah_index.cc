#include "core/ah_index.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "hier/greedy_order.h"
#include "hier/repair_kernel.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace ah {

AhIndex AhIndex::Build(const Graph& g, const AhParams& params) {
  Timer total;
  AhIndex index;
  index.params_ = params;
  index.coords_ = g.Coords();
  index.grids_ = GridHierarchy(index.coords_, params.max_grid_depth);

  // Cache every node's cell at every grid level (h*n cells); the query-time
  // proximity filter and the gateway searches hit this table per relaxed
  // arc, where recomputing CellOf would cost two 64-bit divisions.
  {
    const std::size_t n = g.NumNodes();
    const Level depth = index.grids_.Depth();
    index.cells_by_level_.resize(static_cast<std::size_t>(depth) * n);
    for (Level i = 1; i <= depth; ++i) {
      const SquareGrid& grid = index.grids_.Grid(i);
      Cell* row = index.cells_by_level_.data() +
                  static_cast<std::size_t>(i - 1) * n;
      for (NodeId v = 0; v < n; ++v) row[v] = grid.CellOf(index.coords_[v]);
    }
  }

  Timer phase;
  const Nuance nuance(params.seed);
  LevelAssignParams level_params = params.levels;
  level_params.contraction = params.contraction;
  const LevelAssignment assignment =
      AssignLevels(g, index.grids_, nuance, level_params);
  index.build_stats_.level_seconds = phase.Seconds();

  phase.Restart();
  OrderingParams order_params = params.ordering;
  if (order_params.seed == OrderingParams{}.seed) {
    order_params.seed = params.seed;
  }
  AhOrdering ordering = ComputeOrdering(assignment, order_params);
  index.level_ = ordering.level;
  index.build_stats_.order_seconds = phase.Seconds();

  phase.Restart();
  const std::size_t n = g.NumNodes();
  ContractionEngine engine(n, ArcsOf(g), params.contraction);
  std::vector<Rank> rank;
  if (order_params.within_level == WithinLevelOrder::kGreedyEdgeDifference) {
    // Contract level by level; inside a level the lazy greedy
    // edge-difference order decides (any within-level order is admissible
    // per §4.4 — this one minimizes shortcut growth like CH does).
    Level top = 0;
    for (Level lv : index.level_) top = std::max(top, lv);
    std::vector<std::vector<NodeId>> by_level(top + 1);
    for (NodeId v = 0; v < n; ++v) by_level[index.level_[v]].push_back(v);
    rank.assign(n, 0);
    Rank next = 0;
    for (const auto& level_nodes : by_level) {
      for (NodeId v : ContractGreedySubset(engine, level_nodes)) {
        rank[v] = next++;
      }
    }
  } else {
    for (NodeId v : ordering.order) engine.Contract(v);
    rank = std::move(ordering.rank);
  }
  index.search_graph_ = SearchGraph(n, engine.EmittedArcs(), std::move(rank));
  index.build_stats_.contract_seconds = phase.Seconds();
  index.build_stats_.shortcuts = engine.NumShortcutsAdded();

  index.build_stats_.grid_depth = index.grids_.Depth();
  Level max_level = 0;
  for (Level lv : index.level_) max_level = std::max(max_level, lv);
  index.build_stats_.max_level = max_level;
  index.build_stats_.nodes_per_level.assign(max_level + 1, 0);
  for (Level lv : index.level_) ++index.build_stats_.nodes_per_level[lv];

  if (params.build_gateways && params.gateway_band > 0) {
    phase.Restart();
    index.BuildGateways();
    index.build_stats_.gateway_seconds = phase.Seconds();
    index.build_stats_.gateway_entries =
        index.fwd_gw_.size() + index.bwd_gw_.size();
  }
  index.build_stats_.total_seconds = total.Seconds();
  return index;
}

AhIndex AhIndex::RebuildWithFrozenOrder(const Graph& g,
                                        const AhIndex& previous) {
  Timer total;
  const std::size_t n = g.NumNodes();
  if (n != previous.NumNodes()) {
    throw std::invalid_argument(
        "AhIndex::RebuildWithFrozenOrder: node count changed");
  }
  AhIndex index;
  // Weight-independent structure carries over: params, grids and cell tables
  // are functions of the coordinates, and the level assignment / rank are
  // frozen by definition of this rebuild.
  index.params_ = previous.params_;
  index.grids_ = previous.grids_;
  index.coords_ = previous.coords_;
  index.cells_by_level_ = previous.cells_by_level_;
  index.level_ = previous.level_;

  std::vector<Rank> rank(n, 0);
  for (NodeId v = 0; v < n; ++v) rank[v] = previous.search_graph_.RankOf(v);
  Timer phase;
  RepairResult repaired =
      RepairContraction(g, previous.search_graph_, index.params_.contraction,
                        previous.witness_certs());
  index.search_graph_ = SearchGraph(n, repaired.arcs, std::move(rank));
  index.witness_certs_ = std::move(repaired.certs);
  index.build_stats_.contract_seconds = phase.Seconds();
  index.build_stats_.shortcuts = repaired.shortcuts;

  index.build_stats_.grid_depth = previous.build_stats_.grid_depth;
  index.build_stats_.max_level = previous.build_stats_.max_level;
  index.build_stats_.nodes_per_level = previous.build_stats_.nodes_per_level;

  // Gateway lists hold exact distances, so they are weight-dependent and
  // must be rebuilt over the fresh search graph.
  if (index.params_.build_gateways && index.params_.gateway_band > 0) {
    phase.Restart();
    index.BuildGateways();
    index.build_stats_.gateway_seconds = phase.Seconds();
    index.build_stats_.gateway_entries =
        index.fwd_gw_.size() + index.bwd_gw_.size();
  }
  index.build_stats_.total_seconds = total.Seconds();
  return index;
}

Level AhIndex::QueryJumpLevel(NodeId s, NodeId t) const {
  const Level sep = grids_.SeparationLevel(coords_[s], coords_[t]);
  return std::min(sep, MaxLevel());
}

void AhIndex::BuildGateways() {
  const std::size_t n = level_.size();
  const std::size_t band = static_cast<std::size_t>(params_.gateway_band);
  constexpr std::size_t kChunk = 512;

  // Per-node searches are independent: process node chunks in parallel and
  // merge in chunk order, which keeps the layout deterministic.
  struct ChunkOut {
    std::vector<Gateway> flat;
    std::vector<std::uint32_t> counts;  // Per (node-in-chunk, slot).
  };

  for (int direction = 0; direction < 2; ++direction) {
    const bool forward = direction == 0;
    auto& first = forward ? fwd_gw_first_ : bwd_gw_first_;
    auto& flat = forward ? fwd_gw_ : bwd_gw_;

    const std::size_t num_chunks = (n + kChunk - 1) / kChunk;
    std::vector<ChunkOut> chunks(num_chunks);
    const std::size_t num_threads = WorkerThreads();
    std::vector<std::unique_ptr<GatewaySearch>> searches(num_threads);
    ParallelChunks(
        n, kChunk,
        [&](std::size_t c, std::size_t begin, std::size_t end,
            std::size_t tid) {
          if (!searches[tid]) {
            searches[tid] = std::make_unique<GatewaySearch>(*this);
          }
          ChunkOut& out = chunks[c];
          out.counts.assign((end - begin) * band, 0);
          for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
            for (std::size_t slot = 0; slot < band; ++slot) {
              const Level j = level_[v] + 1 + static_cast<Level>(slot);
              if (j > MaxLevel()) continue;
              const std::vector<Gateway>& hits =
                  searches[tid]->Run(v, j, forward);
              if (!searches[tid]->Complete() ||
                  hits.size() > params_.gateway_max_entries) {
                continue;  // Store nothing; queries fall back safely.
              }
              out.counts[(v - begin) * band + slot] =
                  static_cast<std::uint32_t>(hits.size());
              out.flat.insert(out.flat.end(), hits.begin(), hits.end());
            }
          }
        },
        num_threads);

    first.assign(n * band + 1, 0);
    std::size_t total = 0;
    for (const ChunkOut& out : chunks) total += out.flat.size();
    flat.clear();
    flat.reserve(total);
    std::size_t slot_index = 0;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const ChunkOut& out = chunks[c];
      std::size_t offset = 0;
      for (std::uint32_t count : out.counts) {
        first[slot_index++] = flat.size();
        flat.insert(flat.end(), out.flat.begin() + offset,
                    out.flat.begin() + offset + count);
        offset += count;
      }
    }
    first[n * band] = flat.size();
  }
}

std::size_t AhIndex::SizeBytes() const {
  return search_graph_.SizeBytes() + level_.size() * sizeof(Level) +
         coords_.size() * sizeof(Point) +
         cells_by_level_.size() * sizeof(Cell) +
         (fwd_gw_first_.size() + bwd_gw_first_.size()) *
             sizeof(std::uint64_t) +
         (fwd_gw_.size() + bwd_gw_.size()) * sizeof(Gateway);
}

namespace {

void SaveParams(BinaryWriter& w, const AhParams& p) {
  w.Pod<std::uint64_t>(p.contraction.witness_settle_limit);
  w.Pod<std::uint64_t>(p.levels.min_active_nodes);
  w.Pod<std::int32_t>(p.levels.window_stride);
  w.Pod<std::int32_t>(static_cast<std::int32_t>(p.ordering.within_level));
  w.Pod<std::uint8_t>(p.ordering.downgrade ? 1 : 0);
  w.Pod<std::uint64_t>(p.ordering.seed);
  w.Pod<std::int32_t>(p.max_grid_depth);
  w.Pod<std::uint8_t>(p.build_gateways ? 1 : 0);
  w.Pod<std::int32_t>(p.gateway_band);
  w.Pod<std::int32_t>(p.gateway_region_radius);
  w.Pod<std::uint64_t>(p.gateway_settle_limit);
  w.Pod<std::uint64_t>(p.gateway_max_entries);
  w.Pod<std::uint64_t>(p.seed);
}

AhParams LoadParams(BinaryReader& r) {
  AhParams p;
  p.contraction.witness_settle_limit = r.Pod<std::uint64_t>();
  p.levels.contraction = p.contraction;
  p.levels.min_active_nodes = r.Pod<std::uint64_t>();
  p.levels.window_stride = r.Pod<std::int32_t>();
  p.ordering.within_level =
      static_cast<WithinLevelOrder>(r.Pod<std::int32_t>());
  p.ordering.downgrade = r.Pod<std::uint8_t>() != 0;
  p.ordering.seed = r.Pod<std::uint64_t>();
  p.max_grid_depth = r.Pod<std::int32_t>();
  p.build_gateways = r.Pod<std::uint8_t>() != 0;
  p.gateway_band = r.Pod<std::int32_t>();
  p.gateway_region_radius = r.Pod<std::int32_t>();
  p.gateway_settle_limit = r.Pod<std::uint64_t>();
  p.gateway_max_entries = r.Pod<std::uint64_t>();
  p.seed = r.Pod<std::uint64_t>();
  return p;
}

}  // namespace

void AhIndex::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Magic("AHIX", 1);
  SaveParams(w, params_);
  w.Vector(coords_);
  w.Vector(level_);
  search_graph_.Save(out);
  w.Vector(fwd_gw_first_);
  w.Vector(fwd_gw_);
  w.Vector(bwd_gw_first_);
  w.Vector(bwd_gw_);
  // Build stats (informational; lets a loaded index report its origin).
  w.Pod(build_stats_.total_seconds);
  w.Pod(build_stats_.level_seconds);
  w.Pod(build_stats_.order_seconds);
  w.Pod(build_stats_.contract_seconds);
  w.Pod(build_stats_.gateway_seconds);
  w.Pod<std::uint64_t>(build_stats_.shortcuts);
  w.Pod<std::uint64_t>(build_stats_.gateway_entries);
  w.Pod<std::int32_t>(build_stats_.grid_depth);
  w.Pod<std::int32_t>(build_stats_.max_level);
  w.Vector(build_stats_.nodes_per_level);
}

AhIndex AhIndex::Load(std::istream& in) {
  BinaryReader r(in);
  r.Magic("AHIX", 1);
  AhIndex index;
  index.params_ = LoadParams(r);
  index.coords_ = r.Vector<Point>();
  index.level_ = r.Vector<Level>();
  index.search_graph_ = SearchGraph::Load(in);
  index.fwd_gw_first_ = r.Vector<std::uint64_t>();
  index.fwd_gw_ = r.Vector<Gateway>();
  index.bwd_gw_first_ = r.Vector<std::uint64_t>();
  index.bwd_gw_ = r.Vector<Gateway>();
  index.build_stats_.total_seconds = r.Pod<double>();
  index.build_stats_.level_seconds = r.Pod<double>();
  index.build_stats_.order_seconds = r.Pod<double>();
  index.build_stats_.contract_seconds = r.Pod<double>();
  index.build_stats_.gateway_seconds = r.Pod<double>();
  index.build_stats_.shortcuts = r.Pod<std::uint64_t>();
  index.build_stats_.gateway_entries = r.Pod<std::uint64_t>();
  index.build_stats_.grid_depth = r.Pod<std::int32_t>();
  index.build_stats_.max_level = r.Pod<std::int32_t>();
  index.build_stats_.nodes_per_level = r.Vector<std::size_t>();

  const std::size_t n = index.coords_.size();
  if (index.level_.size() != n || index.search_graph_.NumNodes() != n) {
    throw std::runtime_error("AhIndex::Load: inconsistent node counts");
  }
  // Rebuild the derived structures (deterministic from coords + params).
  index.grids_ = GridHierarchy(index.coords_, index.params_.max_grid_depth);
  if (index.grids_.Depth() != index.build_stats_.grid_depth) {
    throw std::runtime_error("AhIndex::Load: grid depth mismatch");
  }
  const Level depth = index.grids_.Depth();
  index.cells_by_level_.resize(static_cast<std::size_t>(depth) * n);
  for (Level i = 1; i <= depth; ++i) {
    const SquareGrid& grid = index.grids_.Grid(i);
    Cell* row =
        index.cells_by_level_.data() + static_cast<std::size_t>(i - 1) * n;
    for (NodeId v = 0; v < n; ++v) row[v] = grid.CellOf(index.coords_[v]);
  }
  return index;
}

GatewaySearch::GatewaySearch(const AhIndex& index)
    : index_(index),
      heap_(index.NumNodes()),
      dist_(index.NumNodes(), kInfDist),
      parent_(index.NumNodes(), kInvalidNode),
      stamp_(index.NumNodes(), 0) {}

const std::vector<Gateway>& GatewaySearch::Run(NodeId v, Level j,
                                               bool forward) {
  ++round_;
  heap_.Clear();
  hits_.clear();
  complete_ = true;

  const Cell center = index_.CellAt(j, v);
  const std::int32_t radius = index_.params_.gateway_region_radius;
  auto in_region = [&](NodeId x) {
    const Cell c = index_.CellAt(j, x);
    const std::int32_t dx = c.cx > center.cx ? c.cx - center.cx
                                             : center.cx - c.cx;
    const std::int32_t dy = c.cy > center.cy ? c.cy - center.cy
                                             : center.cy - c.cy;
    return dx <= radius && dy <= radius;
  };

  dist_[v] = 0;
  parent_[v] = kInvalidNode;
  stamp_[v] = round_;
  heap_.PushOrDecrease(v, 0);
  std::size_t settled = 0;
  while (!heap_.Empty()) {
    auto [d, u] = heap_.PopMin();
    // Hits absorb the frontier: level >= j means the jump succeeded; a node
    // outside the 5×5 region becomes a *boundary* hit so that every upward
    // chain leaving the region is still represented with an exact distance
    // (dropping it would lose shortest paths whose first level-j node lies
    // beyond the region — see DESIGN.md §5 on elevating edges).
    if (index_.level_[u] >= j || (u != v && !in_region(u))) {
      hits_.push_back(Gateway{u, d});
      continue;
    }
    if (++settled > index_.params_.gateway_settle_limit) {
      complete_ = false;  // Budget exhausted: frontier may be incomplete.
      break;
    }
    const auto arcs = forward ? index_.search_graph_.UpOut(u)
                              : index_.search_graph_.UpIn(u);
    for (const UpArc& a : arcs) {
      const Dist nd = d + a.weight;
      if (stamp_[a.node] != round_ || nd < dist_[a.node]) {
        stamp_[a.node] = round_;
        dist_[a.node] = nd;
        parent_[a.node] = u;
        heap_.PushOrDecrease(a.node, nd);
      }
    }
  }
  std::sort(hits_.begin(), hits_.end(),
            [](const Gateway& a, const Gateway& b) { return a.node < b.node; });
  return hits_;
}

std::vector<NodeId> GatewaySearch::ChainFrom(NodeId gateway) const {
  std::vector<NodeId> chain;
  if (stamp_[gateway] != round_) return chain;
  for (NodeId x = gateway; x != kInvalidNode; x = parent_[x]) {
    chain.push_back(x);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace ah
