// The Arterial Hierarchy index (§4).
//
// Build pipeline:
//   1. GridHierarchy over the node coordinates (R_1..R_h).
//   2. Incremental level assignment on shrinking overlays (level_assigner).
//   3. §4.4 vertex-cover ordering + downgrading (ordering).
//   4. Witness-search contraction in ascending AH rank — every shortcut
//      carries its midpoint, giving the two-hop expansion of §4.1.
//   5. Elevating-edge ("gateway") lists: for each node u and each level j in
//      a band above u's level, the nodes of level ≥ j reachable by upward
//      chains through sub-level-j nodes inside the 5×5-cell region of R_j
//      around u, with exact distances. Queries jump straight onto them.
//
// Queries live in core/ah_query.h.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "core/level_assigner.h"
#include "core/ordering.h"
#include "graph/graph.h"
#include "hgrid/grid_hierarchy.h"
#include "hier/search_graph.h"
#include "hier/witness_certs.h"
#include "util/indexed_heap.h"
#include "util/types.h"

namespace ah {

struct AhParams {
  ContractionParams contraction;
  LevelAssignParams levels;
  OrderingParams ordering;

  /// Grid depth cap passed to GridHierarchy.
  std::int32_t max_grid_depth = 18;

  /// Build elevating-edge (gateway) lists.
  bool build_gateways = true;
  /// Gateway lists exist for levels j in (level(u), level(u)+band]. The
  /// default spans the whole practical hierarchy height, so most jumps are
  /// a single hop.
  Level gateway_band = 8;
  /// Chebyshev cell radius of the gateway search region in R_j
  /// (2 = the paper's 5×5-cell region).
  std::int32_t gateway_region_radius = 2;
  /// Safety cap on nodes settled per gateway search.
  std::size_t gateway_settle_limit = 4096;
  /// Lists longer than this are not stored (queries then expand the node
  /// normally, which is always correct). At fine grid levels the 5×5 region
  /// is smaller than a road segment and the "list" degenerates into the
  /// node's plain neighbourhood — storing it wastes space and helps nothing.
  std::size_t gateway_max_entries = 64;

  std::uint64_t seed = 42;
};

struct AhBuildStats {
  double total_seconds = 0;
  double level_seconds = 0;
  double order_seconds = 0;
  double contract_seconds = 0;
  double gateway_seconds = 0;
  std::size_t shortcuts = 0;
  std::size_t gateway_entries = 0;
  Level grid_depth = 0;
  Level max_level = 0;
  /// nodes_per_level[i] = #nodes whose final level is i.
  std::vector<std::size_t> nodes_per_level;
};

/// One elevating-edge target: either a node of level ≥ j, or a *boundary*
/// node just outside the gateway search region — in both cases at the exact
/// distance `dist` of a real upward chain from (or to, for backward lists)
/// the owning node, and always of strictly higher rank than the owner.
/// Boundary entries keep the frontier complete when a shortest path's first
/// level-j node lies beyond the 5×5-cell region.
struct Gateway {
  NodeId node = kInvalidNode;
  Dist dist = 0;
};

class AhIndex {
 public:
  static AhIndex Build(const Graph& g, const AhParams& params = {});

  /// Weights-only rebuild: re-contracts `g` in `previous`'s frozen AH rank,
  /// reusing the level assignment, ordering, grid hierarchy and cell tables
  /// (all weight-independent or frozen by construction) and recomputing only
  /// the weight-dependent artifacts — shortcut weights, witness checks and
  /// gateway lists. Contraction is exact for any total order and the
  /// gateway build is re-run from scratch over the new search graph, so the
  /// result is exactly the pruned/exact oracle for `g` under the frozen
  /// structure. `g` must have `previous`'s node count (weight deltas never
  /// change topology); throws std::invalid_argument otherwise.
  /// Deterministic at any thread count (the gateway build commits in chunk
  /// order, same as Build).
  static AhIndex RebuildWithFrozenOrder(const Graph& g,
                                        const AhIndex& previous);

  std::size_t NumNodes() const { return level_.size(); }
  const SearchGraph& search_graph() const { return search_graph_; }
  const GridHierarchy& grids() const { return grids_; }
  const AhParams& params() const { return params_; }
  const AhBuildStats& build_stats() const { return build_stats_; }

  Level LevelOf(NodeId v) const { return level_[v]; }
  Level MaxLevel() const { return build_stats_.max_level; }
  const Point& Coord(NodeId v) const { return coords_[v]; }

  /// Precomputed cell of node v in grid R_i (1 <= i <= grids().Depth()) —
  /// the hot lookup of the proximity filter and the gateway searches.
  Cell CellAt(Level i, NodeId v) const {
    return cells_by_level_[static_cast<std::size_t>(i - 1) * level_.size() +
                           v];
  }

  /// Clamped separation level for a query pair: the coarsest grid level at
  /// which no 3×3-cell region covers both endpoints, capped at the highest
  /// populated hierarchy level (Lemma 3 drives the elevating jump).
  Level QueryJumpLevel(NodeId s, NodeId t) const;

  /// Forward (resp. backward) gateways of v toward level j. Empty when j is
  /// out of the stored band or no target exists.
  std::span<const Gateway> FwdGateways(NodeId v, Level j) const {
    return GatewaySpan(fwd_gw_first_, fwd_gw_, v, j);
  }
  std::span<const Gateway> BwdGateways(NodeId v, Level j) const {
    return GatewaySpan(bwd_gw_first_, bwd_gw_, v, j);
  }

  /// Total index footprint (search graph + levels + gateways + grid data).
  std::size_t SizeBytes() const;

  /// In-memory witness-certificate table for frozen-order repairs (see
  /// hier/witness_certs.h). Null after Build and Load; each
  /// RebuildWithFrozenOrder emits one, so chained repairs replay the
  /// previous repair's pruning witnesses instead of re-searching them.
  const WitnessCertTable* witness_certs() const {
    return witness_certs_.get();
  }

  /// Binary persistence (magic "AHIX"): build once, serve anywhere. The
  /// grid hierarchy and per-level cell table are recomputed on load (they
  /// are deterministic functions of the stored coordinates and parameters).
  void Save(std::ostream& out) const;
  static AhIndex Load(std::istream& in);

 private:
  friend class GatewaySearch;

  std::span<const Gateway> GatewaySpan(
      const std::vector<std::uint64_t>& first, const std::vector<Gateway>& gw,
      NodeId v, Level j) const {
    if (first.empty()) return {};  // Gateways were not built.
    const Level lv = level_[v];
    if (j <= lv || j > lv + params_.gateway_band || j > MaxLevel()) return {};
    const std::size_t slot =
        static_cast<std::size_t>(v) * params_.gateway_band + (j - lv - 1);
    return {gw.data() + first[slot], gw.data() + first[slot + 1]};
  }

  void BuildGateways();

  AhParams params_;
  GridHierarchy grids_;
  std::vector<Point> coords_;
  std::vector<Level> level_;
  std::vector<Cell> cells_by_level_;  // [(i-1)*n + v] = cell of v in R_i.
  SearchGraph search_graph_;
  AhBuildStats build_stats_;
  std::shared_ptr<const WitnessCertTable> witness_certs_;

  // Flattened gateway lists: slot = v * band + (j - level(v) - 1).
  std::vector<std::uint64_t> fwd_gw_first_;
  std::vector<Gateway> fwd_gw_;
  std::vector<std::uint64_t> bwd_gw_first_;
  std::vector<Gateway> bwd_gw_;
};

/// Bounded upward search used both to build gateway lists and to expand a
/// gateway hop back into a hierarchy-arc chain during path queries.
class GatewaySearch {
 public:
  explicit GatewaySearch(const AhIndex& index);

  /// Finds the gateway frontier of v toward level j: all level-≥j nodes
  /// reached through sub-level-j nodes inside the region bound, plus the
  /// boundary nodes where upward chains exit the region (toward v, when
  /// forward == false). Results are sorted by node id.
  const std::vector<Gateway>& Run(NodeId v, Level j, bool forward);

  /// False if the last Run exhausted its settle budget: the returned
  /// frontier may be incomplete and MUST NOT be stored as a gateway list
  /// (an incomplete frontier silently loses shortest paths).
  bool Complete() const { return complete_; }

  /// After Run: the hierarchy-arc chain v → … → gateway (node ids; forward
  /// orientation even for backward runs is NOT applied — for backward runs
  /// the chain reads gateway → … → v when reversed). Empty if `gateway` was
  /// not reached.
  std::vector<NodeId> ChainFrom(NodeId gateway) const;

 private:
  const AhIndex& index_;
  IndexedHeap heap_;
  std::vector<Dist> dist_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t round_ = 0;
  std::vector<Gateway> hits_;
  bool complete_ = true;
};

}  // namespace ah
