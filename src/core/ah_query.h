// AH query processing (§4.3).
//
// Two modes:
//  * kExact   — pure rank-constrained bidirectional upward search. Correct on
//               any graph by the standard hierarchy argument (the witness-
//               search contraction guarantees shortest up-down paths).
//  * kPruned  — the paper's full query: rank constraint + proximity
//               constraint + elevating jumps via gateway lists. Exact under
//               the arterial-dimension assumption (road-like inputs); this is
//               the configuration every benchmark uses, validated against
//               Dijkstra by the test suite.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/ah_index.h"
#include "hier/upward_query.h"
#include "routing/path.h"

namespace ah {

enum class AhQueryMode { kExact, kPruned };

struct AhQueryOptions {
  AhQueryMode mode = AhQueryMode::kPruned;
  /// Apply the proximity constraint (ignored in kExact mode).
  bool use_proximity = true;
  /// Start searches from gateway seeds (ignored in kExact mode).
  bool use_elevating = true;
  /// Safety cap on the gateway pre-walk.
  std::size_t max_seed_walk = 256;
};

class AhQuery {
 public:
  explicit AhQuery(const AhIndex& index, AhQueryOptions options = {});

  /// Distance from s to t; kInfDist if disconnected.
  Dist Distance(NodeId s, NodeId t);

  /// Shortest path (original-graph node sequence) from s to t.
  PathResult Path(NodeId s, NodeId t);

  const QueryStats& LastStats() const { return search_.Stats(); }

 private:
  struct SeedWalkRecord {
    NodeId prev = kInvalidNode;  ///< Previous hop node (kInvalidNode at s/t).
    Level jump_level = 0;        ///< Gateway level used for prev → node.
  };

  // Runs the configured search; returns the distance and leaves the engine
  // state (meet, parents) in place for path extraction. Gateway-walk hop
  // records are only collected when a path query needs them.
  Dist RunSearch(NodeId s, NodeId t, bool collect_records);

  // Gateway pre-walk from an endpoint toward level >= j. Fills `seeds` and,
  // if record != nullptr, the hop chain per reached node.
  void BuildSeeds(NodeId endpoint, Level j, bool forward,
                  std::vector<SearchSeed>* seeds,
                  std::vector<std::pair<NodeId, SeedWalkRecord>>* record);

  // Expands the gateway hop chain endpoint→seed (forward) or seed→endpoint
  // (backward) into original-graph nodes.
  std::vector<NodeId> ExpandSeedChain(
      NodeId endpoint, NodeId seed, bool forward,
      const std::vector<std::pair<NodeId, SeedWalkRecord>>& record);

  const AhIndex& index_;
  AhQueryOptions options_;
  BidirUpwardSearch search_;
  GatewaySearch gateway_search_;

  // Per-query cached state (reused across queries; no per-query allocation
  // after warm-up).
  NodeId cur_s_ = kInvalidNode;
  NodeId cur_t_ = kInvalidNode;
  Level jump_level_ = 0;
  std::vector<Cell> s_cells_;  // Cell of s in R_1..R_h (1-based offset).
  std::vector<Cell> t_cells_;
  std::vector<SearchSeed> fwd_seeds_;
  std::vector<SearchSeed> bwd_seeds_;
  std::vector<std::pair<NodeId, SeedWalkRecord>> fwd_record_;
  std::vector<std::pair<NodeId, SeedWalkRecord>> bwd_record_;

  // Gateway-walk scratch (BuildSeeds): timestamped arrays sized n — no
  // hashing or allocation on the query path.
  struct WalkHeapEntry {
    Dist dist;
    NodeId node;
  };
  std::vector<Dist> walk_dist_;
  std::vector<SeedWalkRecord> walk_via_;
  std::vector<std::uint32_t> walk_stamp_;
  std::vector<NodeId> walk_touched_;
  std::uint32_t walk_round_ = 0;
  std::vector<WalkHeapEntry> walk_heap_;
};

}  // namespace ah
