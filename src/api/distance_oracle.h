// The unified query interface every backend implements — the repo's analogue
// of the single evaluation harness the experimental-comparison literature
// (Wu et al., VLDB'12) runs all methods through. One `Graph` in, one oracle
// out; distances and paths answered through the same entry points regardless
// of which index sits behind them.
//
// Thread-safety contract (the index/session split):
//   * A DistanceOracle is the *immutable* half: the built index plus the
//     graph reference. After construction it is never mutated by queries,
//     so one oracle may be shared by any number of threads.
//   * A QuerySession is the *mutable* half: the per-thread search state
//     (heaps, timestamped distance labels, parent arrays). Sessions are
//     cheap to create via NewSession(), are NOT thread-safe individually,
//     and any number of them may query the same oracle concurrently.
//   * The convenience methods DistanceOracle::Distance/ShortestPath route
//     through one lazily created default session and are therefore
//     single-threaded convenience only — concurrent callers must hold their
//     own session (or use ConcurrentEngine, which pools them).
//
// Backends (factory names):
//   dijkstra      — unidirectional Dijkstra, no preprocessing (the oracle the
//                   conformance suite cross-checks everything against).
//   bidijkstra    — plain bidirectional Dijkstra.
//   ch            — Contraction Hierarchies.
//   alt           — A* with landmarks + triangle inequality.
//   silc          — SILC first-hop quadtrees.
//   fc            — the paper's first-cut index (§3); level constraint only
//                   by default, so it is exact on arbitrary graphs.
//   ah            — Arterial Hierarchies (§4); exact rank-constrained mode by
//                   default, the paper's pruned mode behind an option.
//   hl            — 2-hop hub labels (pruned landmark labeling); distance =
//                   one sorted-label merge join, paths via hub parents.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "routing/path.h"
#include "util/types.h"

namespace ah {

class SearchGraph;

/// Preprocessing cost of an oracle, uniform across backends.
struct OracleBuildStats {
  double seconds = 0;            ///< Wall-clock preprocessing time.
  std::size_t index_bytes = 0;   ///< In-memory index footprint.
};

/// Per-thread query state over one oracle's immutable index. A session only
/// ever *reads* the shared index, so any number of sessions may run
/// concurrently against the same oracle; one session must not be used from
/// two threads at once. Sessions hold references into the owning oracle and
/// must not outlive it.
class QuerySession {
 public:
  virtual ~QuerySession() = default;

  /// Exact distance from s to t; kInfDist if t is unreachable.
  virtual Dist Distance(NodeId s, NodeId t) = 0;

  /// Exact shortest path in the original graph. `Found()` is false iff t is
  /// unreachable; for s == t the result is the single-node path of length 0.
  virtual PathResult ShortestPath(NodeId s, NodeId t) = 0;
};

/// Abstract exact distance/path oracle over one graph: the immutable index.
/// Implementations keep a reference to the graph passed at construction; the
/// graph must outlive the oracle. Everything a query reads is built once and
/// then const — mutable search state lives in QuerySession objects.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Stable lower-case backend identifier (e.g. "ch").
  virtual std::string_view Name() const = 0;

  /// Creates an independent per-thread query session over this oracle's
  /// index. Thread-safe: may be called concurrently from any thread.
  virtual std::unique_ptr<QuerySession> NewSession() const = 0;

  /// Single-threaded convenience: Distance/ShortestPath through one lazily
  /// created default session. NOT safe to call concurrently — each thread
  /// beyond the first must use NewSession().
  Dist Distance(NodeId s, NodeId t) { return DefaultSession().Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) {
    return DefaultSession().ShortestPath(s, t);
  }

  /// Row-major |sources| × |targets| distance matrix; kInfDist for
  /// unreachable cells. Rows fan out across `num_threads` workers (0 =
  /// WorkerThreads()). Thread-safe (const) and deterministic at any thread
  /// count. The base implementation runs per-thread sessions pairwise;
  /// hierarchy backends override it with the bucket technique
  /// (hier/many_to_many.h — O(|S|+|T|) upward searches instead of
  /// |S|·|T| point queries), hl with a hub-rank bucket join, dijkstra with
  /// one one-to-all search per source.
  virtual std::vector<Dist> DistanceMatrix(std::span<const NodeId> sources,
                                           std::span<const NodeId> targets,
                                           std::size_t num_threads = 0) const;

  /// The upward SearchGraph behind this oracle, if it is built on one
  /// (ch/ah); nullptr otherwise. Lets callers construct bucket engines
  /// (hier/many_to_many.h) with custom target lifetimes.
  virtual const SearchGraph* UpwardSearchGraph() const { return nullptr; }

  /// Weights-only incremental rebuild: returns a fresh oracle over `g`
  /// (same topology as this oracle's graph, new arc weights) that reuses
  /// this oracle's frozen structural decisions — node order for ch, levels
  /// + rank for ah, hub order for hl — and recomputes only the
  /// weight-dependent artifacts. Typically ~10x cheaper than building from
  /// scratch, and exact: contraction and pruned labeling are correct for
  /// any fixed order. Returns nullptr when the backend has no cheaper
  /// frozen-order path (search-only backends, and indexes whose structure
  /// is weight-dependent: alt/silc/fc) — callers then build from scratch.
  /// Throws on a topology mismatch. Thread-safe (const); `g` must outlive
  /// the returned oracle.
  virtual std::unique_ptr<DistanceOracle> RebuildWithFrozenOrder(
      const Graph& g) const {
    (void)g;
    return nullptr;
  }

  /// Preprocessing cost (zeros for search-only backends).
  virtual const OracleBuildStats& BuildStats() const { return build_stats_; }

  const Graph& graph() const { return *graph_; }

  /// Number of probe-based path-recovery distance calls issued over this
  /// oracle's lifetime. Every built-in backend answers paths natively, so
  /// the conformance suite asserts this stays 0; a prototype distance-only
  /// backend routing through RecoverPathByDistanceProbes must count each
  /// probe via CountPathProbe() to be caught by that assertion.
  std::size_t PathProbeCalls() const {
    return path_probe_calls_.load(std::memory_order_relaxed);
  }

 protected:
  explicit DistanceOracle(const Graph& g) : graph_(&g) {}

  /// Records one probe-reduction distance call (see PathProbeCalls()).
  void CountPathProbe() {
    path_probe_calls_.fetch_add(1, std::memory_order_relaxed);
  }

  const Graph* graph_;
  OracleBuildStats build_stats_;
  std::atomic<std::size_t> path_probe_calls_{0};

 private:
  QuerySession& DefaultSession() {
    if (!default_session_) default_session_ = NewSession();
    return *default_session_;
  }

  std::unique_ptr<QuerySession> default_session_;
};

/// The §2 probe reduction — recover a path from distance queries alone by
/// repeatedly picking an out-arc (u, x) with w(u, x) + d(x, t) = d(u, t).
/// Costs O(k·Δ) probes for a k-edge path; no built-in backend uses it (every
/// index answers paths natively — the fig9 probe baseline is its only
/// caller). Kept for prototyping new distance-only backends. The probe
/// function MUST be exact over g, or the walk can dead-end and misreport a
/// reachable pair as unreachable.
template <typename DistanceFn>
PathResult RecoverPathByDistanceProbes(const Graph& g, NodeId s, NodeId t,
                                       DistanceFn&& distance) {
  PathResult result;
  const Dist total = distance(s, t);
  if (total == kInfDist) return result;
  result.length = total;
  result.nodes.push_back(s);
  NodeId u = s;
  Dist remaining = total;
  // An exact oracle admits a first-hop step while remaining > 0; the hop
  // cap only guards against a buggy backend answering inconsistently.
  for (std::size_t hops = 0; u != t && hops <= g.NumNodes(); ++hops) {
    bool advanced = false;
    for (const Arc& a : g.OutArcs(u)) {
      if (a.weight > remaining) continue;
      if (distance(a.head, t) == remaining - a.weight) {
        u = a.head;
        remaining -= a.weight;
        result.nodes.push_back(u);
        advanced = true;
        break;
      }
    }
    if (!advanced) return PathResult{};
  }
  if (u != t) return PathResult{};
  return result;
}

struct OracleOptions {
  /// ALT: number of landmarks.
  std::size_t alt_landmarks = 8;
  /// FC: enable the proximity constraint. Exact only under the paper's
  /// arterial-dimension assumption (road-like inputs); off by default so the
  /// oracle is exact on arbitrary graphs.
  bool fc_proximity = false;
  /// AH: use the paper's full pruned query mode (proximity + elevating
  /// jumps) instead of the assumption-free exact mode. Same caveat as
  /// fc_proximity.
  bool ah_pruned = false;
  /// Seed for randomized preprocessing choices.
  std::uint64_t seed = 42;
};

/// The canonical backend names, in evaluation order.
const std::vector<std::string>& OracleNames();

/// Builds the named backend over g. Throws std::invalid_argument for an
/// unknown name. The graph must outlive the returned oracle.
std::unique_ptr<DistanceOracle> MakeOracle(std::string_view name,
                                           const Graph& g,
                                           const OracleOptions& options = {});

}  // namespace ah
