// Epoch-versioned index lifecycle: the layer that turns "build once, serve
// forever" into a living system. A registry owns one base road network and
// any number of named backends over it (the multi-variant serving setting of
// SALT, Efentakis et al. 2014, and of the VLDB'12 multi-method evaluation);
// for each backend it publishes an immutable *epoch* — a (graph snapshot,
// built oracle, generation) triple behind a shared_ptr.
//
// Lifecycle, RCU-style:
//   * Readers call Current(backend) and get an EpochHandle; everything the
//     handle reaches is immutable, so any number of threads query it
//     concurrently. The handle pins the epoch: an old epoch is destroyed
//     only when the last handle (session lease, pooled session, cache-free
//     reader) drops — never under a live query.
//   * Writers queue batched edge-weight deltas (QueueWeightUpdate) and then
//     RequestReload(). A single background worker copies the base graph,
//     applies the deltas, rebuilds every backend off-thread, and atomically
//     swaps each new epoch in as it becomes ready. No reader ever blocks on
//     a rebuild and no request is dropped by a swap.
//   * Each swap bumps the backend's generation. Downstream caches key
//     entries by (backend, generation), so a swap implicitly invalidates
//     only the stale backend's entries — no global flush.
//
// Adopted (static) registries wrap one externally built oracle so the
// engine/server layers run uniformly on handles; they serve queries but
// reject lifecycle operations (no owned base graph to mutate).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/distance_oracle.h"
#include "graph/graph.h"
#include "graph/weight_update.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace ah {

/// One published (graph, oracle, generation) snapshot of a backend.
/// Immutable after publication; reached only through shared_ptr handles.
/// `graph` is declared before `oracle` so the oracle (which references the
/// graph) is destroyed first.
struct IndexEpoch {
  std::string backend;              ///< Factory name (e.g. "ch").
  std::uint32_t backend_id = 0;     ///< Dense registry index — cache key part.
  std::uint64_t generation = 0;     ///< 1 on first build, bumped per swap.
  std::shared_ptr<const Graph> graph;
  std::unique_ptr<const DistanceOracle> oracle;

  /// Per-thread query session over this epoch's index (thread-safe).
  std::unique_ptr<QuerySession> NewSession() const {
    return oracle->NewSession();
  }
};

/// Shared, lifetime-pinning reference to an epoch.
using EpochHandle = std::shared_ptr<const IndexEpoch>;

class IndexRegistry {
 public:
  /// Outcome of queueing one weight update.
  enum class UpdateStatus {
    kQueued,     ///< Accepted; applies on the next reload.
    kBadNode,    ///< Endpoint out of range.
    kNoSuchArc,  ///< No arc tail→head in the base graph.
    kBadWeight,  ///< Zero or kMaxWeight weight.
    kStatic,     ///< Adopted registry: no owned base graph to mutate.
  };

  /// How the reload worker rebuilds each backend.
  enum class RebuildPolicy {
    /// Ask the live oracle for a frozen-order weights-only rebuild
    /// (DistanceOracle::RebuildWithFrozenOrder); backends without one — and
    /// any incremental attempt that throws — fall back to a from-scratch
    /// build. The default: queued deltas are weights-only by construction.
    kFrozenOrder,
    /// Always rebuild from scratch (the pre-incremental behavior; also the
    /// escape hatch if a frozen order has degraded after heavy churn).
    kFromScratch,
  };

  /// Per-backend rebuild ledger (RegistryStats::backend_rebuilds).
  struct BackendRebuildStats {
    std::uint64_t incremental = 0;  ///< Frozen-order rebuilds published.
    std::uint64_t full = 0;         ///< From-scratch rebuilds published.
    std::uint64_t fallbacks = 0;    ///< Incremental attempts that threw.
    double last_rebuild_seconds = 0;  ///< Duration of the last publication.
  };

  struct RegistryStats {
    std::uint64_t reloads = 0;          ///< Completed reload cycles.
    std::uint64_t swaps = 0;            ///< Epoch publications after the first.
    std::uint64_t updates_applied = 0;  ///< Deltas folded into a reload.
    std::size_t pending_updates = 0;    ///< Queued, not yet applied.
    bool rebuild_in_flight = false;
    std::string last_error;             ///< Last failed backend rebuild, if any.
    /// Indexed like Backends(); empty for adopted (static) registries.
    std::vector<BackendRebuildStats> backend_rebuilds;
  };

  /// Builds every backend in `backends` (distinct MakeOracle names; the
  /// first is the default backend) over a private copy of `base`,
  /// synchronously. Throws std::invalid_argument on an empty or duplicated
  /// backend list or an unknown name.
  IndexRegistry(Graph base, const std::vector<std::string>& backends,
                const OracleOptions& options = {});

  /// Wraps one externally built oracle as a static single-backend registry.
  /// The oracle's graph must outlive the registry (same contract the oracle
  /// itself has). Lifecycle operations report kStatic / failure.
  static std::shared_ptr<IndexRegistry> AdoptStatic(
      std::unique_ptr<DistanceOracle> oracle);

  /// Joins the background build worker. All epoch handles may outlive the
  /// registry (they are self-contained snapshots).
  ~IndexRegistry();

  IndexRegistry(const IndexRegistry&) = delete;
  IndexRegistry& operator=(const IndexRegistry&) = delete;

  // --- Backends -----------------------------------------------------------

  const std::vector<std::string>& Backends() const { return names_; }
  bool HasBackend(std::string_view name) const;
  /// Dense id of a backend (cache-key component); kInvalidBackend if unknown.
  std::uint32_t BackendId(std::string_view name) const;
  static constexpr std::uint32_t kInvalidBackend = 0xffffffffu;

  /// The backend unprefixed requests route to (the `use` admin verb).
  std::string DefaultBackend() const AH_EXCLUDES(epochs_mu_);
  bool SetDefaultBackend(std::string_view name) AH_EXCLUDES(epochs_mu_);

  // --- Epoch acquisition --------------------------------------------------

  /// Current epoch of `backend` (empty = default backend); nullptr if the
  /// backend is unknown. Thread-safe; O(#backends).
  EpochHandle Current(std::string_view backend = {}) const
      AH_EXCLUDES(epochs_mu_);

  /// Current generation of `backend` (0 if unknown).
  std::uint64_t Generation(std::string_view backend) const;

  /// Node/arc counts — invariant across epochs (weight-only updates).
  std::size_t NumNodes() const { return num_nodes_; }
  std::size_t NumArcs() const { return num_arcs_; }

  // --- Lifecycle ----------------------------------------------------------

  /// Queues one edge-weight delta for the next reload. Validated against
  /// the base graph (topology never changes, so validity is stable).
  /// Deltas coalesce per arc — the last queued weight for (u, v) wins — so
  /// the pending set is bounded by the arc count no matter how fast a
  /// traffic feed (or a hostile client) streams updates between reloads.
  UpdateStatus QueueWeightUpdate(NodeId u, NodeId v, Weight w)
      AH_EXCLUDES(mu_);

  /// Atomically queues a batch (the `updf` bulk-ingest path): every delta
  /// is validated against the base graph first, then either all are queued
  /// (coalescing per arc like QueueWeightUpdate) or none is. On failure the
  /// returned status describes the first invalid record and *first_bad
  /// (when non-null) is its index in `deltas`.
  UpdateStatus QueueWeightUpdates(std::span<const WeightDelta> deltas,
                                  std::size_t* first_bad = nullptr)
      AH_EXCLUDES(mu_);

  std::size_t PendingUpdates() const AH_EXCLUDES(mu_);

  /// Asks the background worker to apply queued deltas and rebuild + swap
  /// every backend. Returns immediately; false (with *error filled when
  /// non-null) on a static registry. Reloads requested while one is running
  /// coalesce into one further cycle.
  bool RequestReload(std::string* error = nullptr) AH_EXCLUDES(mu_);

  /// Blocks until no reload is requested or running (tests, smoke, REPL).
  void WaitForRebuild() const AH_EXCLUDES(mu_);
  bool RebuildInFlight() const AH_EXCLUDES(mu_);

  /// Rebuild strategy for subsequent reload cycles (default kFrozenOrder).
  void SetRebuildPolicy(RebuildPolicy policy) AH_EXCLUDES(mu_);
  RebuildPolicy GetRebuildPolicy() const AH_EXCLUDES(mu_);

  /// Rate limit: a reload cycle starts no sooner than this interval after
  /// the previous cycle started (default 0 = unlimited). Deltas and reload
  /// requests arriving during the hold-off keep coalescing into the one
  /// deferred cycle, so a continuous feed produces a bounded rebuild
  /// frequency instead of a rebuild per delta batch.
  void SetMinReloadInterval(std::chrono::milliseconds interval)
      AH_EXCLUDES(mu_);

  RegistryStats GetStats() const AH_EXCLUDES(mu_);

  /// Test seam: replaces the incremental rebuild step (normally
  /// `previous.RebuildWithFrozenOrder(g)`) so tests can force a failure and
  /// observe the from-scratch fallback. Pass nullptr to restore.
  using IncrementalFactory = std::function<std::unique_ptr<DistanceOracle>(
      const DistanceOracle& previous, const Graph& g)>;
  void SetIncrementalFactoryForTest(IncrementalFactory factory)
      AH_EXCLUDES(mu_);

  /// Registers a callback invoked (on the build worker thread, no registry
  /// lock held) after each epoch swap, with the new epoch. ConcurrentEngine
  /// uses this to purge pooled sessions of retired epochs so an idle pool
  /// cannot pin an old index alive. Returns a token for RemoveSwapListener.
  using SwapListener = std::function<void(const EpochHandle& published)>;
  std::uint64_t AddSwapListener(SwapListener listener) AH_EXCLUDES(mu_);
  void RemoveSwapListener(std::uint64_t token) AH_EXCLUDES(mu_);

  /// Registers the warm-up hook, invoked on the build worker thread with
  /// each rebuilt epoch immediately *before* it is published — while the
  /// old epoch still serves all traffic — so a server can re-prime its
  /// hottest cache entries against the fresh index before the swap makes
  /// them answer requests (swap listeners, by contrast, run after). One
  /// hook at a time; pass nullptr to clear. The call blocks while a warm-up
  /// round is running, so after SetWarmupHook(nullptr) returns the previous
  /// hook is guaranteed never to run again (the hook's owner relies on this
  /// in its destructor). A throwing hook is recorded in last_error and
  /// never delays the swap further.
  using WarmupHook = std::function<void(const IndexEpoch& fresh)>;
  void SetWarmupHook(WarmupHook hook) AH_EXCLUDES(mu_);

 private:
  IndexRegistry() = default;  // AdoptStatic body.

  void WorkerLoop() AH_EXCLUDES(mu_, epochs_mu_);
  /// Publishes `epoch` as current for its backend and notifies listeners.
  void Publish(EpochHandle epoch) AH_EXCLUDES(mu_, epochs_mu_);

  std::vector<std::string> names_;
  OracleOptions options_;
  bool is_static_ = false;
  std::size_t num_nodes_ = 0;
  std::size_t num_arcs_ = 0;

  /// Read-mostly epoch state on the per-query hot path (Current() runs on
  /// every lease acquire/release): readers take a shared lock and do not
  /// serialize each other; only a swap or `use` takes it exclusively.
  mutable SharedMutex epochs_mu_;
  std::vector<EpochHandle> current_ AH_GUARDED_BY(epochs_mu_);  // by id
  std::string default_backend_ AH_GUARDED_BY(epochs_mu_);

  /// Lifecycle coordination (updates, reload requests, worker handshake,
  /// stats) — never taken while epochs_mu_ is held, or vice versa.
  mutable Mutex mu_;
  mutable CondVar cv_;
  /// Latest-weight snapshot.
  std::shared_ptr<const Graph> base_ AH_GUARDED_BY(mu_);
  /// Pending deltas keyed by packed (tail, head): one slot per arc (deltas
  /// to distinct arcs commute, so application order does not matter).
  std::unordered_map<std::uint64_t, WeightDelta> pending_ AH_GUARDED_BY(mu_);
  bool reload_requested_ AH_GUARDED_BY(mu_) = false;
  bool rebuild_in_flight_ AH_GUARDED_BY(mu_) = false;
  /// A swap-listener round is running unlocked.
  bool notifying_ AH_GUARDED_BY(mu_) = false;
  /// The warm-up hook is running unlocked (pre-publish).
  bool warming_ AH_GUARDED_BY(mu_) = false;
  WarmupHook warmup_hook_ AH_GUARDED_BY(mu_);
  bool stop_ AH_GUARDED_BY(mu_) = false;
  std::uint64_t reloads_ AH_GUARDED_BY(mu_) = 0;
  std::uint64_t swaps_ AH_GUARDED_BY(mu_) = 0;
  std::uint64_t updates_applied_ AH_GUARDED_BY(mu_) = 0;
  std::string last_error_ AH_GUARDED_BY(mu_);
  RebuildPolicy rebuild_policy_ AH_GUARDED_BY(mu_) = RebuildPolicy::kFrozenOrder;
  std::chrono::milliseconds min_reload_interval_ AH_GUARDED_BY(mu_){0};
  /// Start of the last reload cycle (rate-limit anchor).
  std::chrono::steady_clock::time_point last_cycle_start_ AH_GUARDED_BY(mu_);
  /// Per-backend rebuild ledger, indexed like names_.
  std::vector<BackendRebuildStats> backend_rebuilds_ AH_GUARDED_BY(mu_);
  IncrementalFactory incremental_factory_for_test_ AH_GUARDED_BY(mu_);
  std::vector<std::pair<std::uint64_t, SwapListener>> listeners_
      AH_GUARDED_BY(mu_);
  std::uint64_t next_listener_token_ AH_GUARDED_BY(mu_) = 1;

  std::thread worker_;  // dynamic registries only
};

}  // namespace ah
