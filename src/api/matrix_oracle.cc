#include "api/matrix_oracle.h"

#include <stdexcept>

namespace ah {

MatrixOracle::MatrixOracle(EpochHandle epoch, std::size_t num_threads)
    : epoch_(std::move(epoch)), num_threads_(num_threads) {
  if (!epoch_) {
    throw std::invalid_argument("MatrixOracle: null epoch");
  }
}

MatrixResult MatrixOracle::Distances(std::span<const NodeId> sources,
                                     std::span<const NodeId> targets) const {
  MatrixResult result;
  result.num_sources = sources.size();
  result.num_targets = targets.size();
  result.cells = epoch_->oracle->DistanceMatrix(sources, targets, num_threads_);
  return result;
}

}  // namespace ah
