#include "api/distance_oracle.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "alt/alt_index.h"
#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "fc/fc_index.h"
#include "routing/bidirectional.h"
#include "routing/dijkstra.h"
#include "silc/silc_index.h"

namespace ah {

namespace {

class DijkstraOracle final : public DistanceOracle {
 public:
  explicit DijkstraOracle(const Graph& g) : DistanceOracle(g), engine_(g) {}

  std::string_view Name() const override { return "dijkstra"; }
  Dist Distance(NodeId s, NodeId t) override { return engine_.Distance(s, t); }

  PathResult ShortestPath(NodeId s, NodeId t) override {
    PathResult result;
    result.nodes = engine_.Path(s, t);
    if (!result.nodes.empty()) result.length = engine_.DistTo(t);
    return result;
  }

 private:
  Dijkstra engine_;
};

class BidirectionalOracle final : public DistanceOracle {
 public:
  explicit BidirectionalOracle(const Graph& g)
      : DistanceOracle(g), engine_(g) {}

  std::string_view Name() const override { return "bidijkstra"; }
  Dist Distance(NodeId s, NodeId t) override { return engine_.Distance(s, t); }

  PathResult ShortestPath(NodeId s, NodeId t) override {
    PathResult result;
    result.nodes = engine_.Path(s, t);
    if (!result.nodes.empty()) result.length = engine_.LastDistance();
    return result;
  }

 private:
  BidirectionalDijkstra engine_;
};

class ChOracle final : public DistanceOracle {
 public:
  explicit ChOracle(const Graph& g)
      : DistanceOracle(g), index_(ChIndex::Build(g)), query_(index_) {
    build_stats_.seconds = index_.build_stats().seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "ch"; }
  Dist Distance(NodeId s, NodeId t) override { return query_.Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) override {
    return query_.Path(s, t);
  }

 private:
  ChIndex index_;
  ChQuery query_;
};

class AltOracle final : public DistanceOracle {
 public:
  AltOracle(const Graph& g, const OracleOptions& options)
      : DistanceOracle(g),
        index_(AltIndex::Build(
            g, AltParams{options.alt_landmarks, options.seed})),
        query_(g, index_) {
    build_stats_.seconds = index_.build_seconds();
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "alt"; }
  Dist Distance(NodeId s, NodeId t) override { return query_.Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) override {
    return query_.Path(s, t);
  }

 private:
  AltIndex index_;
  AltQuery query_;
};

class SilcOracle final : public DistanceOracle {
 public:
  explicit SilcOracle(const Graph& g)
      : DistanceOracle(g), index_(SilcIndex::Build(g)) {
    build_stats_.seconds = index_.build_stats().seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "silc"; }
  Dist Distance(NodeId s, NodeId t) override { return index_.Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) override {
    return index_.Path(s, t);
  }

 private:
  SilcIndex index_;
};

class FcOracle final : public DistanceOracle {
 public:
  FcOracle(const Graph& g, const OracleOptions& options)
      : DistanceOracle(g),
        index_(FcIndex::Build(g, MakeParams(options))),
        query_(index_, FcQueryOptions{options.fc_proximity}) {
    if (options.fc_proximity) {
      path_query_.emplace(index_, FcQueryOptions{/*use_proximity=*/false});
    }
    build_stats_.seconds = index_.build_stats().seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "fc"; }
  Dist Distance(NodeId s, NodeId t) override { return query_.Distance(s, t); }

  /// Native path recovery: FC shortcuts carry midpoints, so paths come from
  /// meet-point stitching + O(k) shortcut expansion — no distance probes.
  /// Paths always go through the level-constraint-only query, which is
  /// exact on any graph — ShortestPath keeps the Found()-iff-reachable
  /// contract even when Distance() runs with the proximity heuristic.
  PathResult ShortestPath(NodeId s, NodeId t) override {
    FcQuery& engine = path_query_ ? *path_query_ : query_;
    return engine.Path(s, t);
  }

 private:
  static FcParams MakeParams(const OracleOptions& options) {
    FcParams params;
    params.seed = options.seed;
    return params;
  }

  FcIndex index_;
  FcQuery query_;
  // Exact (level-constraint-only) path engine; only materialized when
  // query_ runs with the proximity heuristic.
  std::optional<FcQuery> path_query_;
};

class AhOracle final : public DistanceOracle {
 public:
  AhOracle(const Graph& g, const OracleOptions& options)
      : DistanceOracle(g),
        index_(AhIndex::Build(g, MakeParams(options))),
        query_(index_, AhQueryOptions{options.ah_pruned ? AhQueryMode::kPruned
                                                        : AhQueryMode::kExact,
                                      /*use_proximity=*/true,
                                      /*use_elevating=*/true,
                                      /*max_seed_walk=*/256}) {
    build_stats_.seconds = index_.build_stats().total_seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "ah"; }
  Dist Distance(NodeId s, NodeId t) override { return query_.Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) override {
    return query_.Path(s, t);
  }

 private:
  static AhParams MakeParams(const OracleOptions& options) {
    AhParams params;
    params.seed = options.seed;
    // The exact mode never reads gateway lists; skip the costliest build
    // phase when the pruned mode is off.
    params.build_gateways = options.ah_pruned;
    return params;
  }

  AhIndex index_;
  AhQuery query_;
};

}  // namespace

const std::vector<std::string>& OracleNames() {
  static const std::vector<std::string> kNames = {
      "dijkstra", "bidijkstra", "ch", "alt", "silc", "fc", "ah"};
  return kNames;
}

std::unique_ptr<DistanceOracle> MakeOracle(std::string_view name,
                                           const Graph& g,
                                           const OracleOptions& options) {
  if (name == "dijkstra") return std::make_unique<DijkstraOracle>(g);
  if (name == "bidijkstra") return std::make_unique<BidirectionalOracle>(g);
  if (name == "ch") return std::make_unique<ChOracle>(g);
  if (name == "alt") return std::make_unique<AltOracle>(g, options);
  if (name == "silc") return std::make_unique<SilcOracle>(g);
  if (name == "fc") return std::make_unique<FcOracle>(g, options);
  if (name == "ah") return std::make_unique<AhOracle>(g, options);
  throw std::invalid_argument("MakeOracle: unknown backend '" +
                              std::string(name) + "'");
}

}  // namespace ah
