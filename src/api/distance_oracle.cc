#include "api/distance_oracle.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "alt/alt_index.h"
#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "fc/fc_index.h"
#include "hier/many_to_many.h"
#include "hl/hl_index.h"
#include "routing/bidirectional.h"
#include "routing/dijkstra.h"
#include "silc/silc_index.h"
#include "util/parallel.h"

namespace ah {

namespace {

/// Shared matrix path for oracles built on an upward SearchGraph (ch/ah):
/// the bucket technique, O(|S|+|T|) upward searches total.
std::vector<Dist> BucketMatrix(const SearchGraph& sg,
                               std::span<const NodeId> sources,
                               std::span<const NodeId> targets,
                               std::size_t num_threads) {
  ManyToMany engine(sg, {targets.begin(), targets.end()}, num_threads);
  return engine.DistancesFrom(sources, num_threads);
}

// Each oracle below owns only the immutable index; all mutable search state
// (heaps, timestamped labels, parent arrays) lives in the session types, so
// NewSession() const hands out independent per-thread query engines over the
// one shared index.

class DijkstraSession final : public QuerySession {
 public:
  explicit DijkstraSession(const Graph& g) : engine_(g) {}

  Dist Distance(NodeId s, NodeId t) override { return engine_.Distance(s, t); }

  PathResult ShortestPath(NodeId s, NodeId t) override {
    PathResult result;
    result.nodes = engine_.Path(s, t);
    if (!result.nodes.empty()) result.length = engine_.DistTo(t);
    return result;
  }

 private:
  Dijkstra engine_;
};

class DijkstraOracle final : public DistanceOracle {
 public:
  explicit DijkstraOracle(const Graph& g) : DistanceOracle(g) {}

  std::string_view Name() const override { return "dijkstra"; }
  std::unique_ptr<QuerySession> NewSession() const override {
    return std::make_unique<DijkstraSession>(graph());
  }

  /// One full one-to-all search per source row beats |T| early-stopping
  /// point queries for any non-trivial target set — and this is the oracle
  /// the conformance matrix sweep cross-checks everything against.
  std::vector<Dist> DistanceMatrix(std::span<const NodeId> sources,
                                   std::span<const NodeId> targets,
                                   std::size_t num_threads) const override {
    const std::size_t num_targets = targets.size();
    std::vector<Dist> result(sources.size() * num_targets, kInfDist);
    if (result.empty()) return result;
    if (num_threads == 0) num_threads = WorkerThreads();
    std::vector<std::unique_ptr<Dijkstra>> engines(num_threads);
    ParallelChunks(
        sources.size(),
        std::max<std::size_t>(1, sources.size() / (num_threads * 4)),
        [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end,
            std::size_t tid) {
          if (!engines[tid]) engines[tid] = std::make_unique<Dijkstra>(graph());
          for (std::size_t i = begin; i < end; ++i) {
            engines[tid]->Run(sources[i]);
            for (std::size_t j = 0; j < num_targets; ++j) {
              result[i * num_targets + j] = engines[tid]->DistTo(targets[j]);
            }
          }
        },
        num_threads);
    return result;
  }
};

class BidirectionalSession final : public QuerySession {
 public:
  explicit BidirectionalSession(const Graph& g) : engine_(g) {}

  Dist Distance(NodeId s, NodeId t) override { return engine_.Distance(s, t); }

  PathResult ShortestPath(NodeId s, NodeId t) override {
    PathResult result;
    result.nodes = engine_.Path(s, t);
    if (!result.nodes.empty()) result.length = engine_.LastDistance();
    return result;
  }

 private:
  BidirectionalDijkstra engine_;
};

class BidirectionalOracle final : public DistanceOracle {
 public:
  explicit BidirectionalOracle(const Graph& g) : DistanceOracle(g) {}

  std::string_view Name() const override { return "bidijkstra"; }
  std::unique_ptr<QuerySession> NewSession() const override {
    return std::make_unique<BidirectionalSession>(graph());
  }
};

class ChSession final : public QuerySession {
 public:
  explicit ChSession(const ChIndex& index) : query_(index) {}

  Dist Distance(NodeId s, NodeId t) override { return query_.Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) override {
    return query_.Path(s, t);
  }

 private:
  ChQuery query_;
};

class ChOracle final : public DistanceOracle {
 public:
  explicit ChOracle(const Graph& g)
      : DistanceOracle(g), index_(ChIndex::Build(g)) {
    build_stats_.seconds = index_.build_stats().seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  /// Adopts a prebuilt index (the frozen-order rebuild path).
  ChOracle(const Graph& g, ChIndex index)
      : DistanceOracle(g), index_(std::move(index)) {
    build_stats_.seconds = index_.build_stats().seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "ch"; }
  std::unique_ptr<QuerySession> NewSession() const override {
    return std::make_unique<ChSession>(index_);
  }

  std::vector<Dist> DistanceMatrix(std::span<const NodeId> sources,
                                   std::span<const NodeId> targets,
                                   std::size_t num_threads) const override {
    return BucketMatrix(index_.search_graph(), sources, targets, num_threads);
  }
  const SearchGraph* UpwardSearchGraph() const override {
    return &index_.search_graph();
  }

  std::unique_ptr<DistanceOracle> RebuildWithFrozenOrder(
      const Graph& g) const override {
    return std::make_unique<ChOracle>(
        g, ChIndex::RebuildWithFrozenOrder(g, index_));
  }

 private:
  ChIndex index_;
};

class AltSession final : public QuerySession {
 public:
  AltSession(const Graph& g, const AltIndex& index) : query_(g, index) {}

  Dist Distance(NodeId s, NodeId t) override { return query_.Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) override {
    return query_.Path(s, t);
  }

 private:
  AltQuery query_;
};

class AltOracle final : public DistanceOracle {
 public:
  AltOracle(const Graph& g, const OracleOptions& options)
      : DistanceOracle(g),
        index_(AltIndex::Build(
            g, AltParams{options.alt_landmarks, options.seed})) {
    build_stats_.seconds = index_.build_seconds();
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "alt"; }
  std::unique_ptr<QuerySession> NewSession() const override {
    return std::make_unique<AltSession>(graph(), index_);
  }

 private:
  AltIndex index_;
};

// SILC queries are pure reads of the quadtree tables (no search scratch at
// all), so the session is a stateless forwarder.
class SilcSession final : public QuerySession {
 public:
  explicit SilcSession(const SilcIndex& index) : index_(index) {}

  Dist Distance(NodeId s, NodeId t) override { return index_.Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) override {
    return index_.Path(s, t);
  }

 private:
  const SilcIndex& index_;
};

class SilcOracle final : public DistanceOracle {
 public:
  explicit SilcOracle(const Graph& g)
      : DistanceOracle(g), index_(SilcIndex::Build(g)) {
    build_stats_.seconds = index_.build_stats().seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "silc"; }
  std::unique_ptr<QuerySession> NewSession() const override {
    return std::make_unique<SilcSession>(index_);
  }

 private:
  SilcIndex index_;
};

class FcSession final : public QuerySession {
 public:
  FcSession(const FcIndex& index, bool use_proximity)
      : query_(index, FcQueryOptions{use_proximity}) {
    if (use_proximity) {
      path_query_.emplace(index, FcQueryOptions{/*use_proximity=*/false});
    }
  }

  Dist Distance(NodeId s, NodeId t) override { return query_.Distance(s, t); }

  /// Native path recovery: FC shortcuts carry midpoints, so paths come from
  /// meet-point stitching + O(k) shortcut expansion — no distance probes.
  /// Paths always go through the level-constraint-only query, which is
  /// exact on any graph — ShortestPath keeps the Found()-iff-reachable
  /// contract even when Distance() runs with the proximity heuristic.
  PathResult ShortestPath(NodeId s, NodeId t) override {
    FcQuery& engine = path_query_ ? *path_query_ : query_;
    return engine.Path(s, t);
  }

 private:
  FcQuery query_;
  // Exact (level-constraint-only) path engine; only materialized when
  // query_ runs with the proximity heuristic.
  std::optional<FcQuery> path_query_;
};

class FcOracle final : public DistanceOracle {
 public:
  FcOracle(const Graph& g, const OracleOptions& options)
      : DistanceOracle(g),
        index_(FcIndex::Build(g, MakeParams(options))),
        use_proximity_(options.fc_proximity) {
    build_stats_.seconds = index_.build_stats().seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "fc"; }
  std::unique_ptr<QuerySession> NewSession() const override {
    return std::make_unique<FcSession>(index_, use_proximity_);
  }

 private:
  static FcParams MakeParams(const OracleOptions& options) {
    FcParams params;
    params.seed = options.seed;
    return params;
  }

  FcIndex index_;
  bool use_proximity_;
};

class AhSession final : public QuerySession {
 public:
  AhSession(const AhIndex& index, const AhQueryOptions& options)
      : query_(index, options) {}

  Dist Distance(NodeId s, NodeId t) override { return query_.Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) override {
    return query_.Path(s, t);
  }

 private:
  AhQuery query_;
};

class AhOracle final : public DistanceOracle {
 public:
  AhOracle(const Graph& g, const OracleOptions& options)
      : DistanceOracle(g),
        index_(AhIndex::Build(g, MakeParams(options))),
        query_options_{options.ah_pruned ? AhQueryMode::kPruned
                                         : AhQueryMode::kExact,
                       /*use_proximity=*/true,
                       /*use_elevating=*/true,
                       /*max_seed_walk=*/256} {
    build_stats_.seconds = index_.build_stats().total_seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  /// Adopts a prebuilt index (the frozen-order rebuild path); the query
  /// mode carries over from the oracle the rebuild started from.
  AhOracle(const Graph& g, AhIndex index, const AhQueryOptions& query_options)
      : DistanceOracle(g),
        index_(std::move(index)),
        query_options_(query_options) {
    build_stats_.seconds = index_.build_stats().total_seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::string_view Name() const override { return "ah"; }
  std::unique_ptr<QuerySession> NewSession() const override {
    return std::make_unique<AhSession>(index_, query_options_);
  }

  /// The bucket matrix runs on the rank-ordered upward graph and is exact on
  /// any input, independent of the pruned point-query mode.
  std::vector<Dist> DistanceMatrix(std::span<const NodeId> sources,
                                   std::span<const NodeId> targets,
                                   std::size_t num_threads) const override {
    return BucketMatrix(index_.search_graph(), sources, targets, num_threads);
  }
  const SearchGraph* UpwardSearchGraph() const override {
    return &index_.search_graph();
  }

  std::unique_ptr<DistanceOracle> RebuildWithFrozenOrder(
      const Graph& g) const override {
    return std::make_unique<AhOracle>(
        g, AhIndex::RebuildWithFrozenOrder(g, index_), query_options_);
  }

 private:
  static AhParams MakeParams(const OracleOptions& options) {
    AhParams params;
    params.seed = options.seed;
    // The exact mode never reads gateway lists; skip the costliest build
    // phase when the pruned mode is off.
    params.build_gateways = options.ah_pruned;
    return params;
  }

  AhIndex index_;
  AhQueryOptions query_options_;
};

// Hub-label queries are pure reads of the sorted label arrays (the merge
// join and the parent-chain walks carry no search scratch), so the session
// is a stateless forwarder like SILC's.
class HlSession final : public QuerySession {
 public:
  explicit HlSession(const HlIndex& index) : index_(index) {}

  Dist Distance(NodeId s, NodeId t) override { return index_.Distance(s, t); }
  PathResult ShortestPath(NodeId s, NodeId t) override {
    return index_.Path(s, t);
  }

 private:
  const HlIndex& index_;
};

class HlOracle final : public DistanceOracle {
 public:
  explicit HlOracle(const Graph& g)
      : DistanceOracle(g), index_(HlIndex::Build(g)) {
    build_stats_.seconds = index_.build_stats().seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  /// Adopts a prebuilt index (the frozen-order rebuild path).
  HlOracle(const Graph& g, HlIndex index)
      : DistanceOracle(g), index_(std::move(index)) {
    build_stats_.seconds = index_.build_stats().seconds;
    build_stats_.index_bytes = index_.SizeBytes();
  }

  std::unique_ptr<DistanceOracle> RebuildWithFrozenOrder(
      const Graph& g) const override {
    return std::make_unique<HlOracle>(
        g, HlIndex::RebuildWithFrozenOrder(g, index_));
  }

  std::string_view Name() const override { return "hl"; }
  std::unique_ptr<QuerySession> NewSession() const override {
    return std::make_unique<HlSession>(index_);
  }

  /// Label analogue of the bucket technique (batched PLL): index the
  /// targets' in-labels by hub rank once, then each source joins its
  /// out-labels against those hub buckets — |S|+|T| label scans instead of
  /// |S|·|T| merge joins.
  std::vector<Dist> DistanceMatrix(std::span<const NodeId> sources,
                                   std::span<const NodeId> targets,
                                   std::size_t num_threads) const override {
    const std::size_t num_targets = targets.size();
    std::vector<Dist> result(sources.size() * num_targets, kInfDist);
    if (result.empty()) return result;
    if (num_threads == 0) num_threads = WorkerThreads();

    // CSR buckets over hub ranks: entry (j, d) at rank r means
    // d(hub_of_rank(r) → targets[j]) = d. Filled in target order, so the
    // layout is a pure function of the label arrays.
    struct HubEntry {
      std::uint32_t target_index;
      Dist dist;
    };
    const std::size_t n = index_.NumNodes();
    std::vector<std::uint64_t> first(n + 1, 0);
    for (NodeId t : targets) {
      for (const HlLabel& label : index_.InLabels(t)) ++first[label.hub + 1];
    }
    for (std::size_t r = 0; r < n; ++r) first[r + 1] += first[r];
    std::vector<HubEntry> entries(first[n]);
    std::vector<std::uint64_t> cursor(first.begin(), first.end() - 1);
    for (std::uint32_t j = 0; j < num_targets; ++j) {
      for (const HlLabel& label : index_.InLabels(targets[j])) {
        entries[cursor[label.hub]++] = {j, label.dist};
      }
    }

    ParallelChunks(
        sources.size(),
        std::max<std::size_t>(1, sources.size() / (num_threads * 4)),
        [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end,
            std::size_t /*tid*/) {
          for (std::size_t i = begin; i < end; ++i) {
            const std::span<Dist> row{result.data() + i * num_targets,
                                      num_targets};
            for (const HlLabel& label : index_.OutLabels(sources[i])) {
              for (std::uint64_t e = first[label.hub];
                   e < first[label.hub + 1]; ++e) {
                const Dist via = label.dist + entries[e].dist;
                if (via < row[entries[e].target_index]) {
                  row[entries[e].target_index] = via;
                }
              }
            }
          }
        },
        num_threads);
    return result;
  }

 private:
  HlIndex index_;
};

}  // namespace

std::vector<Dist> DistanceOracle::DistanceMatrix(
    std::span<const NodeId> sources, std::span<const NodeId> targets,
    std::size_t num_threads) const {
  // Base case: pairwise point queries through per-thread sessions. Correct
  // for every backend; each source owns its result row, so output is
  // deterministic at any thread count. Hierarchy/label backends override
  // this with sub-quadratic joins.
  const std::size_t num_targets = targets.size();
  std::vector<Dist> result(sources.size() * num_targets, kInfDist);
  if (result.empty()) return result;
  if (num_threads == 0) num_threads = WorkerThreads();
  std::vector<std::unique_ptr<QuerySession>> sessions(num_threads);
  ParallelChunks(
      sources.size(),
      std::max<std::size_t>(1, sources.size() / (num_threads * 4)),
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end,
          std::size_t tid) {
        if (!sessions[tid]) sessions[tid] = NewSession();
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < num_targets; ++j) {
            result[i * num_targets + j] =
                sessions[tid]->Distance(sources[i], targets[j]);
          }
        }
      },
      num_threads);
  return result;
}

const std::vector<std::string>& OracleNames() {
  static const std::vector<std::string> kNames = {
      "dijkstra", "bidijkstra", "ch", "alt", "silc", "fc", "ah", "hl"};
  return kNames;
}

std::unique_ptr<DistanceOracle> MakeOracle(std::string_view name,
                                           const Graph& g,
                                           const OracleOptions& options) {
  if (name == "dijkstra") return std::make_unique<DijkstraOracle>(g);
  if (name == "bidijkstra") return std::make_unique<BidirectionalOracle>(g);
  if (name == "ch") return std::make_unique<ChOracle>(g);
  if (name == "alt") return std::make_unique<AltOracle>(g, options);
  if (name == "silc") return std::make_unique<SilcOracle>(g);
  if (name == "fc") return std::make_unique<FcOracle>(g, options);
  if (name == "ah") return std::make_unique<AhOracle>(g, options);
  if (name == "hl") return std::make_unique<HlOracle>(g);
  throw std::invalid_argument("MakeOracle: unknown backend '" +
                              std::string(name) + "'");
}

}  // namespace ah
