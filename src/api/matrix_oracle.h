// Epoch-pinned many-to-many query surface over the registry lifecycle
// (api/index_registry.h): a MatrixOracle holds an EpochHandle, so the index
// it answers from cannot be retired mid-computation even while hot swaps
// land, and every cell of one matrix is answered from the same snapshot.
// Distances() forwards to DistanceOracle::DistanceMatrix — the bucket
// technique on ch/ah, a hub-rank bucket join on hl, one-to-all rows on
// dijkstra, pairwise sessions elsewhere — so callers get the sub-quadratic
// path wherever one exists without naming it. Immutable after construction;
// thread-safe.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "api/index_registry.h"
#include "util/types.h"

namespace ah {

/// Row-major |sources| × |targets| distance matrix.
struct MatrixResult {
  std::size_t num_sources = 0;
  std::size_t num_targets = 0;
  std::vector<Dist> cells;  ///< cells[i * num_targets + j]; kInfDist cells
                            ///< mark unreachable pairs.

  Dist At(std::size_t i, std::size_t j) const {
    return cells[i * num_targets + j];
  }
};

class MatrixOracle {
 public:
  /// Pins `epoch` for this oracle's lifetime. `num_threads` caps the row
  /// fan-out of each Distances call (0 = WorkerThreads()). Throws
  /// std::invalid_argument on a null epoch.
  explicit MatrixOracle(EpochHandle epoch, std::size_t num_threads = 0);

  /// The epoch every matrix is answered from — stable for this oracle's
  /// lifetime even if the registry swaps underneath.
  const IndexEpoch& epoch() const { return *epoch_; }

  /// Computes the full matrix. Deterministic at any thread count;
  /// thread-safe (const).
  MatrixResult Distances(std::span<const NodeId> sources,
                         std::span<const NodeId> targets) const;

 private:
  EpochHandle epoch_;
  std::size_t num_threads_;
};

}  // namespace ah
