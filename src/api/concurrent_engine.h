// Shared-index query engine: one built DistanceOracle (immutable) served to
// many threads through pooled QuerySessions — the serving-side counterpart
// of the index/session split in api/distance_oracle.h.
//
// Two ways in:
//   * Batch: BatchDistance / BatchShortestPath fan a query vector across
//     WorkerThreads() via util/parallel.h, one leased session per worker.
//     Results are positionally deterministic (each query is answered
//     independently), so output is identical at any thread count.
//   * Interactive: Lease() hands out an RAII session for a caller-managed
//     thread (e.g. one per server connection); Distance/ShortestPath are
//     one-shot conveniences that lease internally.
//
// The engine owns the oracle; the graph behind the oracle must outlive the
// engine. All public methods are thread-safe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "api/distance_oracle.h"
#include "routing/path.h"
#include "util/types.h"

namespace ah {

/// One (source, target) batch query.
using QueryPair = std::pair<NodeId, NodeId>;

class ConcurrentEngine {
 public:
  /// Wraps a built oracle. `num_threads` caps batch fan-out (0 = the
  /// util/parallel.h WorkerThreads() default). Throws std::invalid_argument
  /// on a null oracle.
  explicit ConcurrentEngine(std::unique_ptr<DistanceOracle> oracle,
                            std::size_t num_threads = 0);

  /// Joins the async worker pool (draining any queued jobs) before the
  /// oracle is destroyed. All SessionLeases must already be gone.
  ~ConcurrentEngine();

  const DistanceOracle& oracle() const { return *oracle_; }
  std::size_t NumThreads() const { return num_threads_; }

  /// RAII lease of a pooled session: dereference to query, destroy (or move
  /// from) to return the session to the pool for reuse. A lease holds a
  /// pointer back into the engine and MUST NOT outlive it — destroy all
  /// leases (e.g. per-connection handles) before tearing the engine down.
  class SessionLease {
   public:
    SessionLease(SessionLease&& other) noexcept
        : engine_(other.engine_), session_(std::move(other.session_)) {
      other.engine_ = nullptr;
    }
    SessionLease& operator=(SessionLease&&) = delete;
    SessionLease(const SessionLease&) = delete;
    SessionLease& operator=(const SessionLease&) = delete;
    ~SessionLease();

    QuerySession& operator*() const { return *session_; }
    QuerySession* operator->() const { return session_.get(); }

   private:
    friend class ConcurrentEngine;
    SessionLease(ConcurrentEngine* engine,
                 std::unique_ptr<QuerySession> session)
        : engine_(engine), session_(std::move(session)) {}

    ConcurrentEngine* engine_;
    std::unique_ptr<QuerySession> session_;
  };

  /// Leases a session from the pool (creating one if none is free).
  SessionLease Lease();

  /// One-shot conveniences; thread-safe (each call leases a session).
  Dist Distance(NodeId s, NodeId t);
  PathResult ShortestPath(NodeId s, NodeId t);

  /// Answers all queries, fanned across worker threads; results[i] matches
  /// queries[i]. `num_threads` overrides the engine's fan-out for this call
  /// (0 = engine default) — the bench sweeps it; servers leave it alone.
  std::vector<Dist> BatchDistance(const std::vector<QueryPair>& queries,
                                  std::size_t num_threads = 0);
  std::vector<PathResult> BatchShortestPath(
      const std::vector<QueryPair>& queries, std::size_t num_threads = 0);

  /// Callback-style submit for server front-ends: enqueues `fn` to run on a
  /// lazily started pool of NumThreads() long-lived workers, each holding
  /// one pooled session for its lifetime. Jobs run FIFO; `fn` must not
  /// throw (wrap fallible work in its own try/catch). The queue is
  /// unbounded — callers wanting load shedding put an admission controller
  /// in front (src/server/admission.h).
  void SubmitAsync(std::function<void(QuerySession&)> fn);

  /// Jobs submitted via SubmitAsync that have not yet started executing —
  /// the queue-depth signal admission control and stats export read.
  std::size_t AsyncQueueDepth() const;

 private:
  // Runs body(session, begin, end) over chunks of [0, n) on `num_threads`
  // workers, each holding one leased session for the whole batch.
  template <typename Body>
  void RunBatch(std::size_t n, std::size_t num_threads, const Body& body);

  std::unique_ptr<QuerySession> Acquire();
  void Release(std::unique_ptr<QuerySession> session);

  // Body of each async worker thread: pop jobs FIFO until stop.
  void AsyncWorkerLoop();

  std::unique_ptr<DistanceOracle> oracle_;
  std::size_t num_threads_;
  std::mutex mu_;
  std::vector<std::unique_ptr<QuerySession>> pool_;

  // Async submit state: workers are spawned on the first SubmitAsync and
  // joined by the destructor after draining the queue.
  mutable std::mutex async_mu_;
  std::condition_variable async_cv_;
  std::deque<std::function<void(QuerySession&)>> async_queue_;
  std::vector<std::thread> async_workers_;
  bool async_stop_ = false;
};

}  // namespace ah
