// Shared-index query engine over an epoch-versioned IndexRegistry: queries
// from many threads are answered through pooled QuerySessions, each pinned
// to the epoch (graph snapshot + built oracle) it was created over — the
// serving-side counterpart of the index/session split in
// api/distance_oracle.h, now lifecycle-aware (api/index_registry.h).
//
// Three ways in:
//   * Batch: BatchDistance / BatchShortestPath fan a query vector across
//     WorkerThreads() via util/parallel.h, one leased session per worker.
//     Results are positionally deterministic (each query is answered
//     independently), so output is identical at any thread count.
//   * Interactive: Lease(backend) hands out an RAII session for a
//     caller-managed thread; Distance/ShortestPath are one-shot
//     conveniences that lease internally.
//   * Async: SubmitAsync enqueues a job onto a lazily started long-lived
//     worker pool (server front-ends; jobs lease their own sessions).
//
// Epoch discipline: a lease holds an EpochHandle, so the index it queries
// cannot be retired mid-query. When the registry swaps a new epoch in, the
// engine's swap listener purges pooled sessions of the retired epoch —
// released leases against the old epoch are dropped rather than pooled, so
// the old index is destroyed as soon as its last in-flight lease returns.
// All public methods are thread-safe.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "api/distance_oracle.h"
#include "api/index_registry.h"
#include "api/matrix_oracle.h"
#include "routing/path.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace ah {

/// One (source, target) batch query.
using QueryPair = std::pair<NodeId, NodeId>;

class ConcurrentEngine {
 public:
  /// Serves the registry's backends. `num_threads` caps batch fan-out and
  /// the async worker pool (0 = the util/parallel.h WorkerThreads()
  /// default). Throws std::invalid_argument on a null registry.
  explicit ConcurrentEngine(std::shared_ptr<IndexRegistry> registry,
                            std::size_t num_threads = 0);

  /// Convenience: wraps one externally built oracle in a static
  /// single-backend registry (IndexRegistry::AdoptStatic). The oracle's
  /// graph must outlive the engine. Throws on a null oracle.
  explicit ConcurrentEngine(std::unique_ptr<DistanceOracle> oracle,
                            std::size_t num_threads = 0);

  /// Joins the async worker pool (draining any queued jobs). All
  /// SessionLeases must already be gone.
  ~ConcurrentEngine();

  IndexRegistry& registry() const { return *registry_; }
  std::size_t NumThreads() const { return num_threads_; }

  /// RAII lease of a pooled session over one pinned epoch: dereference to
  /// query, inspect epoch() for the backend/generation answered from,
  /// destroy (or move from) to return the session to the pool. A lease
  /// holds a pointer back into the engine and MUST NOT outlive it.
  class SessionLease {
   public:
    SessionLease(SessionLease&& other) noexcept
        : engine_(other.engine_),
          epoch_(std::move(other.epoch_)),
          session_(std::move(other.session_)) {
      other.engine_ = nullptr;
    }
    SessionLease& operator=(SessionLease&&) = delete;
    SessionLease(const SessionLease&) = delete;
    SessionLease& operator=(const SessionLease&) = delete;
    ~SessionLease();

    QuerySession& operator*() const { return *session_; }
    QuerySession* operator->() const { return session_.get(); }

    /// The epoch this session answers from — stable for the lease's
    /// lifetime even if the registry swaps underneath.
    const IndexEpoch& epoch() const { return *epoch_; }

   private:
    friend class ConcurrentEngine;
    SessionLease(ConcurrentEngine* engine, EpochHandle epoch,
                 std::unique_ptr<QuerySession> session)
        : engine_(engine),
          epoch_(std::move(epoch)),
          session_(std::move(session)) {}

    ConcurrentEngine* engine_;
    EpochHandle epoch_;
    std::unique_ptr<QuerySession> session_;
  };

  /// Leases a session over the current epoch of `backend` (empty = the
  /// registry's default backend), reusing a pooled session when one exists
  /// for that epoch. Throws std::invalid_argument on an unknown backend.
  SessionLease Lease(std::string_view backend = {});

  /// One-shot conveniences on the default backend; thread-safe.
  Dist Distance(NodeId s, NodeId t);
  PathResult ShortestPath(NodeId s, NodeId t);

  /// Answers all queries on `backend` (empty = default), fanned across
  /// worker threads; results[i] matches queries[i]. `num_threads` overrides
  /// the engine's fan-out for this call (0 = engine default) — the bench
  /// sweeps it; servers leave it alone. The whole batch is answered from
  /// one epoch (acquired once up front).
  std::vector<Dist> BatchDistance(const std::vector<QueryPair>& queries,
                                  std::size_t num_threads = 0,
                                  std::string_view backend = {});
  std::vector<PathResult> BatchShortestPath(
      const std::vector<QueryPair>& queries, std::size_t num_threads = 0,
      std::string_view backend = {});

  /// Many-to-many surface: pins the current epoch of `backend` (empty =
  /// default) in a MatrixOracle whose Distances() fan out across
  /// NumThreads() workers. Throws std::invalid_argument on an unknown
  /// backend. Thread-safe.
  MatrixOracle Matrix(std::string_view backend = {}) const;

  /// One-shot convenience: the row-major |sources| × |targets| matrix on
  /// `backend`'s current epoch (see DistanceOracle::DistanceMatrix).
  /// `num_threads` overrides the engine fan-out for this call (0 = engine
  /// default). Thread-safe.
  std::vector<Dist> DistanceMatrix(std::span<const NodeId> sources,
                                   std::span<const NodeId> targets,
                                   std::size_t num_threads = 0,
                                   std::string_view backend = {}) const;

  /// Callback-style submit for server front-ends: enqueues `fn` to run on a
  /// lazily started pool of NumThreads() long-lived workers. Jobs run FIFO
  /// and lease sessions themselves (so each job picks up the freshest
  /// epoch); `fn` must not throw. The queue is unbounded — callers wanting
  /// load shedding put an admission controller in front
  /// (src/server/admission.h).
  void SubmitAsync(std::function<void()> fn) AH_EXCLUDES(async_mu_);

  /// Jobs submitted via SubmitAsync that have not yet started executing —
  /// the queue-depth signal admission control and stats export read.
  std::size_t AsyncQueueDepth() const AH_EXCLUDES(async_mu_);

 private:
  /// A pooled idle session together with the epoch it was created over.
  struct PooledSession {
    EpochHandle epoch;
    std::unique_ptr<QuerySession> session;
  };

  // Runs body(session, begin, end) over chunks of [0, n) on `num_threads`
  // workers, each holding one leased session for the whole batch.
  template <typename Body>
  void RunBatch(std::size_t n, std::size_t num_threads,
                std::string_view backend, const Body& body);

  PooledSession Acquire(std::string_view backend) AH_EXCLUDES(mu_);
  void Release(PooledSession entry) AH_EXCLUDES(mu_);
  /// Drops pooled sessions whose epoch is not `fresh` for that backend.
  void PurgeStale(const EpochHandle& fresh) AH_EXCLUDES(mu_);

  // Body of each async worker thread: pop jobs FIFO until stop.
  void AsyncWorkerLoop() AH_EXCLUDES(async_mu_);

  std::shared_ptr<IndexRegistry> registry_;
  std::uint64_t swap_listener_token_ = 0;
  std::size_t num_threads_;
  Mutex mu_;
  std::vector<PooledSession> pool_ AH_GUARDED_BY(mu_);

  // Async submit state: workers are spawned on the first SubmitAsync and
  // joined by the destructor after draining the queue.
  mutable Mutex async_mu_;
  CondVar async_cv_;
  std::deque<std::function<void()>> async_queue_ AH_GUARDED_BY(async_mu_);
  /// Mutated only by the first SubmitAsync (under async_mu_) and joined by
  /// the destructor, which runs single-threaded by contract — the one
  /// access pattern the analysis cannot express, so left unannotated.
  std::vector<std::thread> async_workers_;
  bool async_stop_ AH_GUARDED_BY(async_mu_) = false;
};

}  // namespace ah
