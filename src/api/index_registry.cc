#include "api/index_registry.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/timer.h"

namespace ah {

namespace {

/// A non-owning shared_ptr view of an externally owned graph (adopted
/// registries; the caller guarantees the graph outlives every epoch).
std::shared_ptr<const Graph> UnownedGraph(const Graph& g) {
  return std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g);
}

}  // namespace

IndexRegistry::IndexRegistry(Graph base,
                             const std::vector<std::string>& backends,
                             const OracleOptions& options)
    : names_(backends), options_(options) {
  if (names_.empty()) {
    throw std::invalid_argument("IndexRegistry: no backends");
  }
  for (std::size_t i = 0; i < names_.size(); ++i) {
    for (std::size_t j = i + 1; j < names_.size(); ++j) {
      if (names_[i] == names_[j]) {
        throw std::invalid_argument("IndexRegistry: duplicate backend '" +
                                    names_[i] + "'");
      }
    }
  }
  num_nodes_ = base.NumNodes();
  num_arcs_ = base.NumArcs();
  base_ = std::make_shared<const Graph>(std::move(base));
  default_backend_ = names_.front();
  current_.resize(names_.size());
  backend_rebuilds_.resize(names_.size());
  // First generation builds synchronously: a registry is never observable
  // half-built. MakeOracle throws on an unknown name, surfacing it here.
  for (std::size_t i = 0; i < names_.size(); ++i) {
    auto epoch = std::make_shared<IndexEpoch>();
    epoch->backend = names_[i];
    epoch->backend_id = static_cast<std::uint32_t>(i);
    epoch->generation = 1;
    epoch->graph = base_;
    epoch->oracle = MakeOracle(names_[i], *base_, options_);
    current_[i] = std::move(epoch);
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

std::shared_ptr<IndexRegistry> IndexRegistry::AdoptStatic(
    std::unique_ptr<DistanceOracle> oracle) {
  if (!oracle) {
    throw std::invalid_argument("IndexRegistry::AdoptStatic: null oracle");
  }
  auto registry = std::shared_ptr<IndexRegistry>(new IndexRegistry());
  registry->is_static_ = true;
  registry->names_ = {std::string(oracle->Name())};
  registry->num_nodes_ = oracle->graph().NumNodes();
  registry->num_arcs_ = oracle->graph().NumArcs();
  auto epoch = std::make_shared<IndexEpoch>();
  epoch->backend = registry->names_.front();
  epoch->backend_id = 0;
  epoch->generation = 1;
  epoch->graph = UnownedGraph(oracle->graph());
  epoch->oracle = std::move(oracle);
  // Not a constructor body, so the analysis checks guarded fields here:
  // take the (uncontended) writer lock rather than suppressing it.
  WriterMutexLock lock(registry->epochs_mu_);
  registry->default_backend_ = registry->names_.front();
  registry->current_.push_back(std::move(epoch));
  return registry;
}

IndexRegistry::~IndexRegistry() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

bool IndexRegistry::HasBackend(std::string_view name) const {
  return BackendId(name) != kInvalidBackend;
}

std::uint32_t IndexRegistry::BackendId(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  return kInvalidBackend;
}

std::string IndexRegistry::DefaultBackend() const {
  ReaderMutexLock lock(epochs_mu_);
  return default_backend_;
}

bool IndexRegistry::SetDefaultBackend(std::string_view name) {
  if (!HasBackend(name)) return false;
  WriterMutexLock lock(epochs_mu_);
  default_backend_ = std::string(name);
  return true;
}

EpochHandle IndexRegistry::Current(std::string_view backend) const {
  ReaderMutexLock lock(epochs_mu_);
  std::string_view name = backend.empty() ? default_backend_ : backend;
  const std::uint32_t id = BackendId(name);
  if (id == kInvalidBackend) return nullptr;
  return current_[id];
}

std::uint64_t IndexRegistry::Generation(std::string_view backend) const {
  const EpochHandle epoch = Current(backend);
  return epoch ? epoch->generation : 0;
}

IndexRegistry::UpdateStatus IndexRegistry::QueueWeightUpdate(NodeId u, NodeId v,
                                                             Weight w) {
  if (is_static_) return UpdateStatus::kStatic;
  const WeightDelta delta{u, v, w};
  MutexLock lock(mu_);
  switch (ValidateWeightDelta(*base_, delta)) {
    case DeltaStatus::kBadNode:
      return UpdateStatus::kBadNode;
    case DeltaStatus::kBadWeight:
      return UpdateStatus::kBadWeight;
    case DeltaStatus::kNoSuchArc:
      return UpdateStatus::kNoSuchArc;
    case DeltaStatus::kOk:
      break;
  }
  // Coalesce per arc (last weight wins): the pending set stays bounded by
  // the arc count even under a continuous update stream.
  const std::uint64_t arc_key =
      (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
  pending_[arc_key] = delta;
  return UpdateStatus::kQueued;
}

IndexRegistry::UpdateStatus IndexRegistry::QueueWeightUpdates(
    std::span<const WeightDelta> deltas, std::size_t* first_bad) {
  if (is_static_) return UpdateStatus::kStatic;
  MutexLock lock(mu_);
  // Validate-all-then-queue-all: a bulk file is one atomic batch, so a bad
  // record halfway through must not leave a half-ingested pending set.
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    switch (ValidateWeightDelta(*base_, deltas[i])) {
      case DeltaStatus::kBadNode:
        if (first_bad != nullptr) *first_bad = i;
        return UpdateStatus::kBadNode;
      case DeltaStatus::kBadWeight:
        if (first_bad != nullptr) *first_bad = i;
        return UpdateStatus::kBadWeight;
      case DeltaStatus::kNoSuchArc:
        if (first_bad != nullptr) *first_bad = i;
        return UpdateStatus::kNoSuchArc;
      case DeltaStatus::kOk:
        break;
    }
  }
  for (const WeightDelta& delta : deltas) {
    const std::uint64_t arc_key =
        (static_cast<std::uint64_t>(delta.tail) << 32) |
        static_cast<std::uint64_t>(delta.head);
    pending_[arc_key] = delta;
  }
  return UpdateStatus::kQueued;
}

std::size_t IndexRegistry::PendingUpdates() const {
  MutexLock lock(mu_);
  return pending_.size();
}

bool IndexRegistry::RequestReload(std::string* error) {
  if (is_static_) {
    if (error != nullptr) {
      *error = "registry is static (adopted oracle, no owned base graph)";
    }
    return false;
  }
  {
    MutexLock lock(mu_);
    reload_requested_ = true;
  }
  cv_.NotifyAll();
  return true;
}

void IndexRegistry::WaitForRebuild() const {
  MutexLock lock(mu_);
  while (reload_requested_ || rebuild_in_flight_) cv_.Wait(lock);
}

bool IndexRegistry::RebuildInFlight() const {
  MutexLock lock(mu_);
  return rebuild_in_flight_ || reload_requested_;
}

void IndexRegistry::SetRebuildPolicy(RebuildPolicy policy) {
  MutexLock lock(mu_);
  rebuild_policy_ = policy;
}

IndexRegistry::RebuildPolicy IndexRegistry::GetRebuildPolicy() const {
  MutexLock lock(mu_);
  return rebuild_policy_;
}

void IndexRegistry::SetMinReloadInterval(std::chrono::milliseconds interval) {
  {
    MutexLock lock(mu_);
    min_reload_interval_ = interval;
  }
  // Wake a worker holding off under the previous (longer) interval.
  cv_.NotifyAll();
}

void IndexRegistry::SetIncrementalFactoryForTest(IncrementalFactory factory) {
  MutexLock lock(mu_);
  incremental_factory_for_test_ = std::move(factory);
}

IndexRegistry::RegistryStats IndexRegistry::GetStats() const {
  MutexLock lock(mu_);
  RegistryStats stats;
  stats.reloads = reloads_;
  stats.swaps = swaps_;
  stats.updates_applied = updates_applied_;
  stats.pending_updates = pending_.size();
  stats.rebuild_in_flight = rebuild_in_flight_ || reload_requested_;
  stats.last_error = last_error_;
  stats.backend_rebuilds = backend_rebuilds_;
  return stats;
}

std::uint64_t IndexRegistry::AddSwapListener(SwapListener listener) {
  MutexLock lock(mu_);
  const std::uint64_t token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void IndexRegistry::RemoveSwapListener(std::uint64_t token) {
  MutexLock lock(mu_);
  // Block while a notification round holds copies of the listeners, so a
  // listener's owner (e.g. an engine being destroyed) can rely on its
  // callback never running after removal returns.
  while (notifying_) cv_.Wait(lock);
  std::erase_if(listeners_,
                [token](const auto& entry) { return entry.first == token; });
}

void IndexRegistry::SetWarmupHook(WarmupHook hook) {
  MutexLock lock(mu_);
  // Block while a warm-up round is running unlocked, so the caller can
  // clear the hook (e.g. in its destructor) and know it will never fire
  // again — the same handshake RemoveSwapListener uses.
  while (warming_) cv_.Wait(lock);
  warmup_hook_ = std::move(hook);
}

void IndexRegistry::Publish(EpochHandle epoch) {
  {
    WriterMutexLock lock(epochs_mu_);
    current_[epoch->backend_id] = epoch;
  }
  std::vector<SwapListener> to_notify;
  {
    MutexLock lock(mu_);
    ++swaps_;
    to_notify.reserve(listeners_.size());
    for (const auto& [token, listener] : listeners_) {
      to_notify.push_back(listener);
    }
    notifying_ = true;
  }
  // Listeners run without the registry lock: they may re-enter Current()
  // (and take their own locks, e.g. the engine's session-pool mutex).
  for (const SwapListener& listener : to_notify) listener(epoch);
  {
    MutexLock lock(mu_);
    notifying_ = false;
  }
  cv_.NotifyAll();
}

void IndexRegistry::WorkerLoop() {
  while (true) {
    std::vector<WeightDelta> deltas;
    std::shared_ptr<const Graph> old_base;
    RebuildPolicy policy;
    IncrementalFactory incremental_factory;
    {
      MutexLock lock(mu_);
      while (!stop_ && !reload_requested_) cv_.Wait(lock);
      if (stop_) return;
      // Rate limit: hold the cycle until min_reload_interval_ has elapsed
      // since the previous cycle started. reload_requested_ stays true, so
      // WaitForRebuild() callers keep blocking, and requests/deltas arriving
      // during the hold-off coalesce into this one deferred cycle — a
      // continuous feed produces a bounded rebuild frequency.
      while (!stop_) {
        const auto ready = last_cycle_start_ + min_reload_interval_;
        const auto now = std::chrono::steady_clock::now();
        if (now >= ready) break;
        cv_.WaitFor(lock, ready - now);
      }
      if (stop_) return;
      last_cycle_start_ = std::chrono::steady_clock::now();
      reload_requested_ = false;
      rebuild_in_flight_ = true;
      deltas.reserve(pending_.size());
      // lint:ordered-commit — hash-order collection is sorted canonically
      // below; coalesced deltas touch distinct arcs, so application also
      // commutes.
      for (auto& [arc_key, delta] : pending_) deltas.push_back(delta);
      pending_.clear();
      old_base = base_;
      policy = rebuild_policy_;
      incremental_factory = incremental_factory_for_test_;
    }
    // Canonical order for application and for the updates_applied_ ledger:
    // never let unordered_map iteration order leak into anything observable.
    std::sort(deltas.begin(), deltas.end(),
              [](const WeightDelta& a, const WeightDelta& b) {
                return std::pair(a.tail, a.head) < std::pair(b.tail, b.head);
              });

    // Everything expensive happens lock-free: copy + delta application,
    // then one index rebuild per backend. Queries keep flowing against the
    // old epochs the whole time.
    std::shared_ptr<const Graph> next_base = old_base;
    DeltaApplyStats apply_stats;
    if (!deltas.empty()) {
      Graph updated = *old_base;
      apply_stats = ApplyWeightDeltas(&updated, deltas);
      next_base = std::make_shared<const Graph>(std::move(updated));
    }
    {
      MutexLock lock(mu_);
      // New weight updates queued from here on validate against (and later
      // apply on top of) the updated base. The ledger counts what actually
      // landed in the graph, not the batch size (per-arc queue coalescing
      // makes them equal today; the apply stats keep it true by contract).
      base_ = next_base;
      updates_applied_ += apply_stats.applied;
    }
    for (std::size_t i = 0; i < names_.size(); ++i) {
      Timer rebuild_timer;
      auto epoch = std::make_shared<IndexEpoch>();
      epoch->backend = names_[i];
      epoch->backend_id = static_cast<std::uint32_t>(i);
      epoch->graph = next_base;
      EpochHandle previous;
      {
        ReaderMutexLock lock(epochs_mu_);
        previous = current_[i];
      }
      epoch->generation = previous->generation + 1;

      // Frozen-order first: queued deltas are weights-only by construction
      // (graph/weight_update never touches topology), so the live oracle's
      // structural decisions stay valid on the updated graph. Backends
      // without an incremental path return nullptr and build from scratch;
      // an incremental *failure* must never take the backend down — record
      // it and fall back to a from-scratch build.
      bool incremental = false;
      std::unique_ptr<DistanceOracle> oracle;
      if (policy == RebuildPolicy::kFrozenOrder && previous->oracle) {
        try {
          oracle = incremental_factory
                       ? incremental_factory(*previous->oracle, *next_base)
                       : previous->oracle->RebuildWithFrozenOrder(*next_base);
          incremental = oracle != nullptr;
        } catch (const std::exception& e) {
          MutexLock lock(mu_);
          ++backend_rebuilds_[i].fallbacks;
          last_error_ = names_[i] + " (incremental): " + e.what();
        }
      }
      if (!oracle) {
        try {
          oracle = MakeOracle(names_[i], *next_base, options_);
        } catch (const std::exception& e) {
          MutexLock lock(mu_);
          last_error_ = names_[i] + ": " + e.what();
          continue;  // keep the old epoch serving
        }
      }
      epoch->oracle = std::move(oracle);
      {
        MutexLock lock(mu_);
        BackendRebuildStats& rb = backend_rebuilds_[i];
        ++(incremental ? rb.incremental : rb.full);
        rb.last_rebuild_seconds = rebuild_timer.Seconds();
      }
      // Warm-up runs pre-publish: the fresh epoch is primed (e.g. the
      // server recomputes its hottest cache entries on it) while the old
      // epoch still answers every request, so the swap lands with a warm
      // cache instead of a cold start.
      WarmupHook warmup;
      {
        MutexLock lock(mu_);
        warmup = warmup_hook_;
        warming_ = warmup != nullptr;
      }
      if (warmup) {
        try {
          warmup(*epoch);
        } catch (const std::exception& e) {
          MutexLock lock(mu_);
          last_error_ = names_[i] + " (warmup): " + e.what();
        } catch (...) {
          MutexLock lock(mu_);
          last_error_ = names_[i] + " (warmup): unknown failure";
        }
        {
          MutexLock lock(mu_);
          warming_ = false;
        }
        cv_.NotifyAll();
      }
      // Swap this backend in as soon as it is ready — faster backends go
      // live while slower ones are still rebuilding.
      Publish(std::move(epoch));
    }
    {
      MutexLock lock(mu_);
      ++reloads_;
      rebuild_in_flight_ = false;
    }
    cv_.NotifyAll();
  }
}

}  // namespace ah
