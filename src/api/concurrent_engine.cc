#include "api/concurrent_engine.h"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.h"

namespace ah {

ConcurrentEngine::ConcurrentEngine(std::unique_ptr<DistanceOracle> oracle,
                                   std::size_t num_threads)
    : oracle_(std::move(oracle)),
      num_threads_(num_threads == 0 ? WorkerThreads() : num_threads) {
  if (!oracle_) {
    throw std::invalid_argument("ConcurrentEngine: null oracle");
  }
}

ConcurrentEngine::~ConcurrentEngine() {
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    async_stop_ = true;
  }
  async_cv_.notify_all();
  for (std::thread& worker : async_workers_) worker.join();
}

void ConcurrentEngine::SubmitAsync(std::function<void(QuerySession&)> fn) {
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    if (async_workers_.empty()) {
      async_workers_.reserve(num_threads_);
      for (std::size_t i = 0; i < num_threads_; ++i) {
        async_workers_.emplace_back([this] { AsyncWorkerLoop(); });
      }
    }
    async_queue_.push_back(std::move(fn));
  }
  async_cv_.notify_one();
}

std::size_t ConcurrentEngine::AsyncQueueDepth() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  return async_queue_.size();
}

void ConcurrentEngine::AsyncWorkerLoop() {
  std::unique_ptr<QuerySession> session = Acquire();
  while (true) {
    std::function<void(QuerySession&)> job;
    {
      std::unique_lock<std::mutex> lock(async_mu_);
      async_cv_.wait(lock,
                     [this] { return async_stop_ || !async_queue_.empty(); });
      // Drain the queue even when stopping: every submitted job runs, so a
      // callback-carrying job can always deliver its reply.
      if (async_queue_.empty()) break;
      job = std::move(async_queue_.front());
      async_queue_.pop_front();
    }
    job(*session);
  }
  Release(std::move(session));
}

ConcurrentEngine::SessionLease::~SessionLease() {
  if (engine_ != nullptr && session_ != nullptr) {
    engine_->Release(std::move(session_));
  }
}

ConcurrentEngine::SessionLease ConcurrentEngine::Lease() {
  return SessionLease(this, Acquire());
}

Dist ConcurrentEngine::Distance(NodeId s, NodeId t) {
  return Lease()->Distance(s, t);
}

PathResult ConcurrentEngine::ShortestPath(NodeId s, NodeId t) {
  return Lease()->ShortestPath(s, t);
}

template <typename Body>
void ConcurrentEngine::RunBatch(std::size_t n, std::size_t num_threads,
                                const Body& body) {
  if (n == 0) return;
  std::size_t threads = num_threads == 0 ? num_threads_ : num_threads;
  threads = std::max<std::size_t>(1, std::min(threads, n));

  // One leased session per worker for the whole batch; ~4 chunks per worker
  // so an expensive straggler query cannot idle the other threads.
  std::vector<std::unique_ptr<QuerySession>> sessions(threads);
  for (auto& session : sessions) session = Acquire();
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads * 4));
  ParallelChunks(
      n, chunk,
      [&](std::size_t /*chunk_index*/, std::size_t begin, std::size_t end,
          std::size_t tid) { body(*sessions[tid], begin, end); },
      threads);
  for (auto& session : sessions) Release(std::move(session));
}

std::vector<Dist> ConcurrentEngine::BatchDistance(
    const std::vector<QueryPair>& queries, std::size_t num_threads) {
  std::vector<Dist> results(queries.size(), kInfDist);
  RunBatch(queries.size(), num_threads,
           [&](QuerySession& session, std::size_t begin, std::size_t end) {
             for (std::size_t i = begin; i < end; ++i) {
               results[i] =
                   session.Distance(queries[i].first, queries[i].second);
             }
           });
  return results;
}

std::vector<PathResult> ConcurrentEngine::BatchShortestPath(
    const std::vector<QueryPair>& queries, std::size_t num_threads) {
  std::vector<PathResult> results(queries.size());
  RunBatch(queries.size(), num_threads,
           [&](QuerySession& session, std::size_t begin, std::size_t end) {
             for (std::size_t i = begin; i < end; ++i) {
               results[i] =
                   session.ShortestPath(queries[i].first, queries[i].second);
             }
           });
  return results;
}

std::unique_ptr<QuerySession> ConcurrentEngine::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pool_.empty()) {
      std::unique_ptr<QuerySession> session = std::move(pool_.back());
      pool_.pop_back();
      return session;
    }
  }
  return oracle_->NewSession();
}

void ConcurrentEngine::Release(std::unique_ptr<QuerySession> session) {
  if (session == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Cap the pool at twice the fan-out so a one-time burst of leases does not
  // pin its peak count of graph-sized search-scratch sets forever; sessions
  // beyond the cap are simply destroyed.
  if (pool_.size() < num_threads_ * 2) pool_.push_back(std::move(session));
}

}  // namespace ah
