#include "api/concurrent_engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/parallel.h"

namespace ah {

ConcurrentEngine::ConcurrentEngine(std::shared_ptr<IndexRegistry> registry,
                                   std::size_t num_threads)
    : registry_(std::move(registry)),
      num_threads_(num_threads == 0 ? WorkerThreads() : num_threads) {
  if (!registry_) {
    throw std::invalid_argument("ConcurrentEngine: null registry");
  }
  swap_listener_token_ = registry_->AddSwapListener(
      [this](const EpochHandle& fresh) { PurgeStale(fresh); });
}

ConcurrentEngine::ConcurrentEngine(std::unique_ptr<DistanceOracle> oracle,
                                   std::size_t num_threads)
    : ConcurrentEngine(IndexRegistry::AdoptStatic(std::move(oracle)),
                       num_threads) {}

ConcurrentEngine::~ConcurrentEngine() {
  registry_->RemoveSwapListener(swap_listener_token_);
  {
    MutexLock lock(async_mu_);
    async_stop_ = true;
  }
  async_cv_.NotifyAll();
  for (std::thread& worker : async_workers_) worker.join();
}

void ConcurrentEngine::SubmitAsync(std::function<void()> fn) {
  {
    MutexLock lock(async_mu_);
    if (async_workers_.empty()) {
      async_workers_.reserve(num_threads_);
      for (std::size_t i = 0; i < num_threads_; ++i) {
        async_workers_.emplace_back([this] { AsyncWorkerLoop(); });
      }
    }
    async_queue_.push_back(std::move(fn));
  }
  async_cv_.NotifyOne();
}

std::size_t ConcurrentEngine::AsyncQueueDepth() const {
  MutexLock lock(async_mu_);
  return async_queue_.size();
}

void ConcurrentEngine::AsyncWorkerLoop() {
  while (true) {
    std::function<void()> job;
    {
      MutexLock lock(async_mu_);
      while (!async_stop_ && async_queue_.empty()) async_cv_.Wait(lock);
      // Drain the queue even when stopping: every submitted job runs, so a
      // callback-carrying job can always deliver its reply.
      if (async_queue_.empty()) break;
      job = std::move(async_queue_.front());
      async_queue_.pop_front();
    }
    job();
  }
}

ConcurrentEngine::SessionLease::~SessionLease() {
  if (engine_ != nullptr && session_ != nullptr) {
    engine_->Release(PooledSession{std::move(epoch_), std::move(session_)});
  }
}

ConcurrentEngine::SessionLease ConcurrentEngine::Lease(
    std::string_view backend) {
  PooledSession entry = Acquire(backend);
  return SessionLease(this, std::move(entry.epoch), std::move(entry.session));
}

Dist ConcurrentEngine::Distance(NodeId s, NodeId t) {
  return Lease()->Distance(s, t);
}

PathResult ConcurrentEngine::ShortestPath(NodeId s, NodeId t) {
  return Lease()->ShortestPath(s, t);
}

template <typename Body>
void ConcurrentEngine::RunBatch(std::size_t n, std::size_t num_threads,
                                std::string_view backend, const Body& body) {
  if (n == 0) return;
  std::size_t threads = num_threads == 0 ? num_threads_ : num_threads;
  threads = std::max<std::size_t>(1, std::min(threads, n));

  // One leased session per worker for the whole batch; ~4 chunks per worker
  // so an expensive straggler query cannot idle the other threads. All
  // sessions come from the same epoch acquisition round, so a swap landing
  // mid-batch cannot split the batch across index versions.
  std::vector<PooledSession> sessions;
  sessions.reserve(threads);
  sessions.push_back(Acquire(backend));
  const EpochHandle& epoch = sessions.front().epoch;
  for (std::size_t i = 1; i < threads; ++i) {
    PooledSession entry = Acquire(backend);
    if (entry.epoch != epoch) {
      entry = PooledSession{epoch, epoch->NewSession()};
    }
    sessions.push_back(std::move(entry));
  }
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads * 4));
  ParallelChunks(
      n, chunk,
      [&](std::size_t /*chunk_index*/, std::size_t begin, std::size_t end,
          std::size_t tid) { body(*sessions[tid].session, begin, end); },
      threads);
  for (PooledSession& entry : sessions) Release(std::move(entry));
}

std::vector<Dist> ConcurrentEngine::BatchDistance(
    const std::vector<QueryPair>& queries, std::size_t num_threads,
    std::string_view backend) {
  std::vector<Dist> results(queries.size(), kInfDist);
  RunBatch(queries.size(), num_threads, backend,
           [&](QuerySession& session, std::size_t begin, std::size_t end) {
             for (std::size_t i = begin; i < end; ++i) {
               results[i] =
                   session.Distance(queries[i].first, queries[i].second);
             }
           });
  return results;
}

std::vector<PathResult> ConcurrentEngine::BatchShortestPath(
    const std::vector<QueryPair>& queries, std::size_t num_threads,
    std::string_view backend) {
  std::vector<PathResult> results(queries.size());
  RunBatch(queries.size(), num_threads, backend,
           [&](QuerySession& session, std::size_t begin, std::size_t end) {
             for (std::size_t i = begin; i < end; ++i) {
               results[i] =
                   session.ShortestPath(queries[i].first, queries[i].second);
             }
           });
  return results;
}

MatrixOracle ConcurrentEngine::Matrix(std::string_view backend) const {
  EpochHandle epoch = registry_->Current(backend);
  if (!epoch) {
    throw std::invalid_argument("ConcurrentEngine: unknown backend '" +
                                std::string(backend) + "'");
  }
  return MatrixOracle(std::move(epoch), num_threads_);
}

std::vector<Dist> ConcurrentEngine::DistanceMatrix(
    std::span<const NodeId> sources, std::span<const NodeId> targets,
    std::size_t num_threads, std::string_view backend) const {
  EpochHandle epoch = registry_->Current(backend);
  if (!epoch) {
    throw std::invalid_argument("ConcurrentEngine: unknown backend '" +
                                std::string(backend) + "'");
  }
  return epoch->oracle->DistanceMatrix(
      sources, targets, num_threads == 0 ? num_threads_ : num_threads);
}

ConcurrentEngine::PooledSession ConcurrentEngine::Acquire(
    std::string_view backend) {
  EpochHandle epoch = registry_->Current(backend);
  if (!epoch) {
    throw std::invalid_argument("ConcurrentEngine: unknown backend '" +
                                std::string(backend) + "'");
  }
  {
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i].epoch == epoch) {
        PooledSession entry = std::move(pool_[i]);
        pool_[i] = std::move(pool_.back());
        pool_.pop_back();
        return entry;
      }
    }
  }
  std::unique_ptr<QuerySession> session = epoch->NewSession();
  return PooledSession{std::move(epoch), std::move(session)};
}

void ConcurrentEngine::Release(PooledSession entry) {
  if (entry.session == nullptr) return;
  MutexLock lock(mu_);
  // Pool only sessions over the still-current epoch: a stale session
  // returning from a lease is dropped here, releasing its epoch pin — this
  // (plus PurgeStale on swap) is what retires an old index as soon as its
  // last lease returns. The check runs under the pool lock: PurgeStale (the
  // swap listener) also takes it, so either this push lands before the
  // purge (which then drops it) or the swap is already visible to Current()
  // here — a stale entry can never slip into the pool and linger. Current()
  // only takes the registry's reader lock, which no listener holds, so the
  // nesting cannot deadlock.
  if (registry_->Current(entry.epoch->backend) != entry.epoch) return;
  // Cap the pool at twice the fan-out so a one-time burst of leases does not
  // pin its peak count of graph-sized search-scratch sets forever; sessions
  // beyond the cap are simply destroyed.
  if (pool_.size() < num_threads_ * 2) pool_.push_back(std::move(entry));
}

void ConcurrentEngine::PurgeStale(const EpochHandle& fresh) {
  std::vector<PooledSession> dropped;  // destroyed after the lock releases
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < pool_.size();) {
    if (pool_[i].epoch->backend_id == fresh->backend_id &&
        pool_[i].epoch != fresh) {
      dropped.push_back(std::move(pool_[i]));
      pool_[i] = std::move(pool_.back());
      pool_.pop_back();
    } else {
      ++i;
    }
  }
}

}  // namespace ah
