// 4×4-cell windows ("regions B") over a SquareGrid: strips, bisectors, and
// deduplicated enumeration of the windows that contain nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"
#include "util/types.h"

namespace ah {

/// Which bisector of a window a spanning path crosses.
enum class BisectorAxis { kVertical, kHorizontal };

/// A 4×4-cell region anchored at cell (ax, ay): it covers cells
/// [ax, ax+3] × [ay, ay+3]. Anchors may take any integer value (windows
/// slide one cell at a time, per "any region B with 4×4 grid cells").
struct Window {
  std::int32_t ax = 0;
  std::int32_t ay = 0;

  bool ContainsCell(const Cell& c) const {
    return c.cx >= ax && c.cx <= ax + 3 && c.cy >= ay && c.cy <= ay + 3;
  }

  /// Relative column of a cell: may be negative / >3 for outside cells.
  std::int32_t RelCol(const Cell& c) const { return c.cx - ax; }
  std::int32_t RelRow(const Cell& c) const { return c.cy - ay; }

  /// West / east / south / north strip membership (only for inside cells).
  bool InWestStrip(const Cell& c) const {
    return ContainsCell(c) && RelCol(c) == 0;
  }
  bool InEastStrip(const Cell& c) const {
    return ContainsCell(c) && RelCol(c) == 3;
  }
  bool InSouthStrip(const Cell& c) const {
    return ContainsCell(c) && RelRow(c) == 0;
  }
  bool InNorthStrip(const Cell& c) const {
    return ContainsCell(c) && RelRow(c) == 3;
  }

  /// Side of the vertical bisector (between columns ax+1 and ax+2):
  /// -1 = west, +1 = east. Defined for any cell, inside or out.
  int VerticalSide(const Cell& c) const { return RelCol(c) <= 1 ? -1 : +1; }
  /// Side of the horizontal bisector: -1 = south, +1 = north.
  int HorizontalSide(const Cell& c) const { return RelRow(c) <= 1 ? -1 : +1; }

  /// True if the segment between two cells crosses the given bisector (cell
  /// discretization of "edge intersects lb").
  bool CrossesBisector(const Cell& a, const Cell& b, BisectorAxis axis) const {
    return axis == BisectorAxis::kVertical
               ? VerticalSide(a) != VerticalSide(b)
               : HorizontalSide(a) != HorizontalSide(b);
  }

  /// Spanning-path endpoint test (Definition 1): the endpoints must lie on
  /// different sides of the bisector and neither in a cell adjacent to it.
  /// For the vertical bisector the adjacent columns are relative 1 and 2, so
  /// qualified endpoints sit at relative column <= 0 and >= 3.
  bool QualifiesAsSpanningEndpoints(const Cell& a, const Cell& b,
                                    BisectorAxis axis) const {
    if (axis == BisectorAxis::kVertical) {
      const std::int32_t ca = RelCol(a);
      const std::int32_t cb = RelCol(b);
      return (ca <= 0 && cb >= 3) || (cb <= 0 && ca >= 3);
    }
    const std::int32_t ra = RelRow(a);
    const std::int32_t rb = RelRow(b);
    return (ra <= 0 && rb >= 3) || (rb <= 0 && ra >= 3);
  }

  friend bool operator==(const Window& a, const Window& b) {
    return a.ax == b.ax && a.ay == b.ay;
  }
};

/// Packs a window anchor into a hashable key.
inline std::uint64_t WindowKey(const Window& w) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(w.ax)) << 32) |
         static_cast<std::uint32_t>(w.ay);
}

/// Buckets a set of nodes by their grid cell for O(1) cell → nodes lookup
/// inside window processing.
class CellIndex {
 public:
  CellIndex() = default;

  /// Indexes `nodes` (any id set) located at coords[node].
  CellIndex(const SquareGrid& grid, const std::vector<Point>& coords,
            const std::vector<NodeId>& nodes);

  /// Nodes in cell c (empty span if none).
  const std::vector<NodeId>& NodesIn(const Cell& c) const;

  /// All distinct occupied cells.
  const std::vector<Cell>& OccupiedCells() const { return occupied_; }

  /// Collects the nodes contained in `w` into `out` (cleared first).
  void CollectWindowNodes(const Window& w, std::vector<NodeId>* out) const;

 private:
  std::unordered_map<std::uint64_t, std::vector<NodeId>> buckets_;
  std::vector<Cell> occupied_;
  static const std::vector<NodeId> kEmpty;
};

/// Enumerates every distinct 4×4 window of `grid` that contains at least one
/// occupied cell of `index`, clipped so windows stay within the grid when
/// possible (anchors in [0, cells_per_side-4]; for grids smaller than 4 cells
/// a single window at the origin is produced).
///
/// `stride` restricts anchors to multiples of the stride (1 = every offset,
/// the paper's "any region"; 2 = half-overlapping windows, which the AH
/// level assigner uses as a preprocessing-speed knob — see DESIGN.md §5).
std::vector<Window> EnumerateWindows(const SquareGrid& grid,
                                     const CellIndex& index,
                                     std::int32_t stride = 1);

}  // namespace ah
