// The grid stack R_1 .. R_h of Section 3.1.
//
// R_h is the 4×4 grid that tightly covers the network; each finer grid splits
// every cell in four, so R_i has 2^(h+2-i) × 2^(h+2-i) cells. The paper picks
// h so that each R_1 cell holds at most one node, which bounds
// h ≤ log2(dmax/dmin) − 1. Real data may place distinct nodes arbitrarily
// close together, so we choose the smallest depth at which almost every
// occupied R_1 cell is single-occupancy (tolerance + hard cap; see
// DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"
#include "util/types.h"

namespace ah {

class GridHierarchy {
 public:
  /// Empty placeholder (Depth() == 0); assign a real instance before use.
  GridHierarchy() : depth_(0) {}

  /// Builds the stack over the bounding square of `coords`.
  ///
  /// `max_depth` caps h; `collision_tolerance` is the admissible fraction of
  /// occupied R_1 cells containing more than one node.
  explicit GridHierarchy(const std::vector<Point>& coords,
                         std::int32_t max_depth = 18,
                         double collision_tolerance = 0.05);

  /// Number of grid levels h (grids are indexed 1..h; 1 = finest).
  std::int32_t Depth() const { return depth_; }

  /// Grid R_i. Precondition: 1 <= i <= Depth().
  const SquareGrid& Grid(std::int32_t i) const { return grids_[i - 1]; }

  /// Cells per side of R_i: 2^(h+2-i).
  std::int32_t CellsPerSide(std::int32_t i) const {
    return Grid(i).cells_per_side();
  }

  /// Cell of point p in grid R_i.
  Cell CellOf(std::int32_t i, const Point& p) const {
    return Grid(i).CellOf(p);
  }

  /// The coarsest level j (largest index) at which no 3×3-cell region covers
  /// both points — the level where the two search frontiers of a query must
  /// meet (Lemma 3). Returns 0 when even R_1 covers them in a 3×3 block.
  std::int32_t SeparationLevel(const Point& a, const Point& b) const;

  /// Fraction of occupied R_1 cells with more than one node (diagnostic).
  double FinestCollisionFraction() const { return collision_fraction_; }

  /// Bytes of the in-memory representation (index-size reporting).
  std::size_t SizeBytes() const {
    return sizeof(*this) + grids_.size() * sizeof(SquareGrid);
  }

 private:
  std::int32_t depth_ = 1;
  std::vector<SquareGrid> grids_;  // grids_[i-1] = R_i.
  double collision_fraction_ = 0.0;
};

}  // namespace ah
