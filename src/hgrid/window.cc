#include "hgrid/window.h"

#include <algorithm>
#include <unordered_set>

namespace ah {

const std::vector<NodeId> CellIndex::kEmpty;

CellIndex::CellIndex(const SquareGrid& grid, const std::vector<Point>& coords,
                     const std::vector<NodeId>& nodes) {
  buckets_.reserve(nodes.size() * 2);
  for (NodeId v : nodes) {
    const Cell c = grid.CellOf(coords[v]);
    auto [it, inserted] = buckets_.try_emplace(CellKey(c));
    if (inserted) occupied_.push_back(c);
    it->second.push_back(v);
  }
}

const std::vector<NodeId>& CellIndex::NodesIn(const Cell& c) const {
  auto it = buckets_.find(CellKey(c));
  return it == buckets_.end() ? kEmpty : it->second;
}

void CellIndex::CollectWindowNodes(const Window& w,
                                   std::vector<NodeId>* out) const {
  out->clear();
  for (std::int32_t cx = w.ax; cx <= w.ax + 3; ++cx) {
    for (std::int32_t cy = w.ay; cy <= w.ay + 3; ++cy) {
      const auto& bucket = NodesIn(Cell{cx, cy});
      out->insert(out->end(), bucket.begin(), bucket.end());
    }
  }
}

std::vector<Window> EnumerateWindows(const SquareGrid& grid,
                                     const CellIndex& index,
                                     std::int32_t stride) {
  if (stride < 1) stride = 1;
  const std::int32_t cells = grid.cells_per_side();
  const std::int32_t max_anchor = std::max(0, cells - 4);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Window> windows;
  for (const Cell& c : index.OccupiedCells()) {
    const std::int32_t ax_lo = std::clamp(c.cx - 3, 0, max_anchor);
    const std::int32_t ax_hi = std::clamp(c.cx, 0, max_anchor);
    const std::int32_t ay_lo = std::clamp(c.cy - 3, 0, max_anchor);
    const std::int32_t ay_hi = std::clamp(c.cy, 0, max_anchor);
    for (std::int32_t ax = ax_lo; ax <= ax_hi; ++ax) {
      if (ax % stride != 0 && ax != max_anchor) continue;
      for (std::int32_t ay = ay_lo; ay <= ay_hi; ++ay) {
        if (ay % stride != 0 && ay != max_anchor) continue;
        const Window w{ax, ay};
        if (seen.insert(WindowKey(w)).second) windows.push_back(w);
      }
    }
  }
  // Deterministic order regardless of hash iteration.
  std::sort(windows.begin(), windows.end(),
            [](const Window& a, const Window& b) {
              return a.ax != b.ax ? a.ax < b.ax : a.ay < b.ay;
            });
  return windows;
}

}  // namespace ah
