#include "hgrid/grid_hierarchy.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace ah {

namespace {

/// Fraction of occupied cells holding more than one point.
double CollisionFraction(const std::vector<Point>& coords,
                         const SquareGrid& grid) {
  std::unordered_map<std::uint64_t, std::uint32_t> occupancy;
  occupancy.reserve(coords.size() * 2);
  for (const Point& p : coords) ++occupancy[CellKey(grid.CellOf(p))];
  if (occupancy.empty()) return 0.0;
  std::size_t multi = 0;
  // lint:ordered-commit pure reduction (count of cells with count > 1);
  // the result is independent of visitation order.
  for (const auto& [key, count] : occupancy) {
    if (count > 1) ++multi;
  }
  return static_cast<double>(multi) / static_cast<double>(occupancy.size());
}

}  // namespace

GridHierarchy::GridHierarchy(const std::vector<Point>& coords,
                             std::int32_t max_depth,
                             double collision_tolerance) {
  if (coords.empty()) {
    throw std::invalid_argument("GridHierarchy: empty coordinate set");
  }
  max_depth = std::clamp<std::int32_t>(max_depth, 1, 28);

  Box box;
  for (const Point& p : coords) box.Extend(p);

  // Grow h until the finest grid is (almost) single-occupancy or the cap is
  // reached. R_1 for depth h has 2^(h+1) cells per side.
  depth_ = 1;
  for (std::int32_t h = 1; h <= max_depth; ++h) {
    const std::int32_t finest_cells = 1 << (h + 1);
    const SquareGrid finest = SquareGrid::Covering(box, finest_cells);
    collision_fraction_ = CollisionFraction(coords, finest);
    depth_ = h;
    if (collision_fraction_ <= collision_tolerance) break;
  }

  grids_.reserve(depth_);
  for (std::int32_t i = 1; i <= depth_; ++i) {
    grids_.push_back(SquareGrid::Covering(box, 1 << (depth_ + 2 - i)));
  }
}

std::int32_t GridHierarchy::SeparationLevel(const Point& a,
                                            const Point& b) const {
  // Coarser grids have larger cells, so once a level covers the pair in a
  // 3×3 block, all coarser levels do as well: scan from the coarsest down.
  for (std::int32_t i = depth_; i >= 1; --i) {
    if (!SquareGrid::WithinThreeByThree(CellOf(i, a), CellOf(i, b))) return i;
  }
  return 0;
}

}  // namespace ah
