#!/usr/bin/env python3
"""Repo-invariant linter: determinism and serialization rules no compiler
checks.

The index builds in this repo promise bit-identical output at any thread
count, and the serialization layer promises that every on-disk artifact is
self-describing and every backend is exercised by the conformance/round-trip
harness. Those invariants live in review comments unless something enforces
them; this linter is that something. It runs as a ctest entry
(`lint_invariants`) and in the CI static-analysis job.

Checks
------
rng-discipline
    Build/bench code must draw randomness only from src/util/rng.h
    (seeded SplitMix64). `rand()`, `srand()`, `std::random_device`, the
    std engines, and time-based seeds make index builds irreproducible.
    Suppression: `// lint:allow-rng <why>` on the line or just above.

ordered-commit
    Iterating an unordered_{map,set} and committing the visited order to
    anything observable (output vectors, serialized bytes, applied deltas)
    breaks bit-identical builds. Every range-for / .begin() loop over an
    unordered container declared in the same file — or, for a .cc file, in
    its companion header (class members like the registry's pending-delta
    map: the incremental-rebuild commit path drains it into the graph every
    backend is then rebuilt from) — inside a build or serialization path
    must carry `// lint:ordered-commit <why>` on the line or within the
    three lines above, justifying why the commit is order-independent (or
    where it is canonicalized).

magic-unique
    Every serialized artifact writes a 4-byte magic tag via
    util/serialize.h `Magic("XXXX", version)`. A tag reused by two
    different artifact files would let one artifact parse as another.

backend-coverage
    Every backend name registered in the MakeOracle factory
    (src/api/distance_oracle.cc) must (a) equal the OracleNames() list,
    (b) be swept by tests/conformance_test.cc, (c) be explicitly
    accounted for in tests/serialize_roundtrip_test.cc (as a quoted
    string — search-only backends must be listed as artifact-free on
    purpose, not forgotten), and (d) be covered by the bench tables.

verb-coverage
    Every protocol verb dispatched in src/server/protocol.cc
    (`verb == "x"`) must appear in the README grammar table (a `|` table
    line) and be sent by tests/server_test.cc (inside a quoted request
    string). A verb that parses but is undocumented or untested is how
    protocol surface rots.

opcode-coverage
    The binary-protocol twin of verb-coverage: every opcode declared in
    the Opcode enum of src/server/binary_protocol.h must appear in the
    README's v2 frame table (a `|` table line) and as an `Opcode::kName`
    literal in tests/server_test.cc — each opcode gets at least one
    direct on-the-wire exercise, not just incidental coverage through a
    text-to-frame translation loop.

Exit status: 0 when clean, 1 on violations, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories whose files construct or serialize indexes: output produced
# here must be bit-identical across runs and thread counts. src/server is
# deliberately absent (caches and connection tables iterate hash maps for
# runtime bookkeeping, never for committed output), as is src/util
# (containers only; no index output).
BUILD_PATH_DIRS = (
    "src/alt",
    "src/api",
    "src/arterial",
    "src/ch",
    "src/core",
    "src/fc",
    "src/gen",
    "src/geo",
    "src/graph",
    "src/hgrid",
    "src/hier",
    "src/hl",
    "src/perturb",
    "src/routing",
    "src/silc",
    "src/workload",
)

# RNG discipline applies to everything that builds indexes or reports
# numbers: src, bench, and examples alike.
RNG_SCAN_DIRS = ("src", "bench", "examples")
RNG_ALLOWED_FILE = "src/util/rng.h"

RNG_FORBIDDEN = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\branlux(?:24|48)\b"), "std::ranlux"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time(...) seed"),
]

MAGIC_RE = re.compile(r"\.Magic\(\"([A-Z0-9]{2,8})\"")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{}()]*?>\s+(\w+)\s*(?:;|=|\{|\()"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;:)]*:\s*([^)]+)\)")
ITER_FOR_RE = re.compile(r"\bfor\s*\([^;]*=\s*(\w+)\s*\.\s*begin\s*\(")

SUPPRESS_RNG = "lint:allow-rng"
SUPPRESS_ORDERED = "lint:ordered-commit"

SOURCE_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}


class Finding:
    def __init__(self, check: str, path: Path, line: int, message: str):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def format(self, root: Path) -> str:
        try:
            rel = self.path.relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.check}] {self.message}"


def source_files(root: Path, subdirs) -> list[Path]:
    files: list[Path] = []
    for sub in subdirs:
        base = root / sub
        if not base.exists():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                files.append(path)
    return files


def has_suppression(lines: list[str], idx: int, token: str, span: int = 3) -> bool:
    """True when `token` appears on line idx or within `span` lines above."""
    lo = max(0, idx - span)
    return any(token in lines[i] for i in range(lo, idx + 1))


def check_rng_discipline(root: Path) -> list[Finding]:
    findings = []
    for path in source_files(root, RNG_SCAN_DIRS):
        if path == root / RNG_ALLOWED_FILE:
            continue
        lines = path.read_text(errors="replace").splitlines()
        for i, line in enumerate(lines):
            code = line.split("//", 1)[0]
            for pattern, label in RNG_FORBIDDEN:
                if pattern.search(code) and not has_suppression(
                    lines, i, SUPPRESS_RNG
                ):
                    findings.append(
                        Finding(
                            "rng-discipline",
                            path,
                            i + 1,
                            f"{label} outside {RNG_ALLOWED_FILE}; use ah::Rng "
                            f"(seeded, reproducible) or add "
                            f"`// {SUPPRESS_RNG} <why>`",
                        )
                    )
    return findings


def unordered_decl_names(text: str) -> set[str]:
    """Identifiers declared in this file with an unordered container type.

    Declarations may wrap across lines; collapse whitespace first so the
    regex sees one logical declaration per statement. Thread-safety
    annotations (`AH_GUARDED_BY(mu_)` and friends) sit between the member
    name and the `;` — strip them so annotated members still parse.
    """
    collapsed = re.sub(r"\s+", " ", text)
    collapsed = re.sub(r"\bAH_[A-Z_]+\([^()]*\)", "", collapsed)
    return set(UNORDERED_DECL_RE.findall(collapsed))


def check_ordered_commit(root: Path) -> list[Finding]:
    findings = []
    for path in source_files(root, BUILD_PATH_DIRS):
        text = path.read_text(errors="replace")
        names = unordered_decl_names(text)
        # A .cc iterating an unordered member declared in its companion
        # header is the same hazard — that is exactly the shape of the
        # incremental-rebuild commit path (the registry worker drains the
        # header-declared pending-delta map into the next epoch's graph).
        if path.suffix in (".cc", ".cpp"):
            for header_suffix in (".h", ".hpp"):
                header = path.with_suffix(header_suffix)
                if header.exists():
                    names |= unordered_decl_names(
                        header.read_text(errors="replace")
                    )
        if not names:
            continue
        lines = text.splitlines()
        for i, line in enumerate(lines):
            code = line.split("//", 1)[0]
            iterated = None
            m = RANGE_FOR_RE.search(code)
            if m:
                seq = m.group(1).strip()
                base = re.split(r"[.\->\[(]", seq)[0].strip().lstrip("*&")
                if base in names:
                    iterated = base
            if iterated is None:
                m = ITER_FOR_RE.search(code)
                if m and m.group(1) in names:
                    iterated = m.group(1)
            if iterated is not None and not has_suppression(
                lines, i, SUPPRESS_ORDERED
            ):
                findings.append(
                    Finding(
                        "ordered-commit",
                        path,
                        i + 1,
                        f"iteration over unordered container '{iterated}' in a "
                        f"build/serialization path; sort before committing or "
                        f"justify with `// {SUPPRESS_ORDERED} <why>`",
                    )
                )
    return findings


def check_magic_unique(root: Path) -> list[Finding]:
    findings = []
    tags: dict[str, list[tuple[Path, int]]] = {}
    for path in source_files(root, ("src",)):
        for i, line in enumerate(path.read_text(errors="replace").splitlines()):
            for tag in MAGIC_RE.findall(line):
                tags.setdefault(tag, []).append((path, i + 1))
    for tag, sites in sorted(tags.items()):
        files = sorted({p for p, _ in sites})
        if len(files) > 1:
            where = ", ".join(str(f.relative_to(root)) for f in files)
            path, line = sites[0]
            findings.append(
                Finding(
                    "magic-unique",
                    path,
                    line,
                    f'magic tag "{tag}" written by more than one artifact: '
                    f"{where}",
                )
            )
    return findings


def factory_backends(root: Path) -> tuple[list[str], list[Finding]]:
    """Backend names from the oracle factory, cross-checked two ways."""
    findings: list[Finding] = []
    factory = root / "src/api/distance_oracle.cc"
    if not factory.exists():
        findings.append(
            Finding("backend-coverage", factory, 1, "factory file missing")
        )
        return [], findings
    text = factory.read_text(errors="replace")
    names_match = re.search(r"kNames\s*=\s*\{([^}]*)\}", text)
    canonical = re.findall(r'"(\w+)"', names_match.group(1)) if names_match else []
    dispatched = re.findall(r'if\s*\(name\s*==\s*"(\w+)"\)', text)
    if not canonical:
        findings.append(
            Finding(
                "backend-coverage", factory, 1, "could not parse kNames list"
            )
        )
    if set(canonical) != set(dispatched):
        findings.append(
            Finding(
                "backend-coverage",
                factory,
                1,
                f"OracleNames() {sorted(canonical)} != MakeOracle dispatch "
                f"{sorted(dispatched)}",
            )
        )
    return canonical, findings


def check_backend_coverage(root: Path) -> list[Finding]:
    backends, findings = factory_backends(root)
    if not backends:
        return findings

    # (relative path or directory, sweep_ok): sweep_ok targets may cover all
    # backends by iterating OracleNames(); the serialize round-trip suite
    # must name each backend explicitly so "has no artifact" is always a
    # recorded decision, never an omission.
    targets = [
        ("tests/conformance_test.cc", True),
        ("tests/serialize_roundtrip_test.cc", False),
        ("bench", True),
    ]
    for target, sweep_ok in targets:
        path = root / target
        if path.is_dir():
            texts = [
                (p, p.read_text(errors="replace"))
                for p in source_files(root, (target,))
            ]
        elif path.exists():
            texts = [(path, path.read_text(errors="replace"))]
        else:
            findings.append(
                Finding("backend-coverage", path, 1, "coverage target missing")
            )
            continue
        swept = sweep_ok and any("OracleNames()" in t for _, t in texts)
        for name in backends:
            present = any(f'"{name}"' in t for _, t in texts)
            if not (present or swept):
                findings.append(
                    Finding(
                        "backend-coverage",
                        texts[0][0] if len(texts) == 1 else path,
                        1,
                        f'backend "{name}" registered in the factory but not '
                        f"covered by {target}",
                    )
                )
    return findings


VERB_DISPATCH_RE = re.compile(r'\bverb\s*==\s*"(\w+)"')
QUOTED_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def check_verb_coverage(root: Path) -> list[Finding]:
    protocol = root / "src/server/protocol.cc"
    if not protocol.exists():
        # Trees without the server layer (and linter self-test fixtures)
        # have no protocol surface to cover.
        return []
    verbs: list[str] = []
    for verb in VERB_DISPATCH_RE.findall(protocol.read_text(errors="replace")):
        if verb not in verbs:
            verbs.append(verb)
    findings: list[Finding] = []

    readme = root / "README.md"
    # Grammar rows are markdown table lines; drop `<placeholder>` tokens so
    # e.g. `<m>` in a reply column cannot masquerade as verb coverage.
    table_text = ""
    if readme.exists():
        table_lines = [
            re.sub(r"<[^>]*>", " ", line)
            for line in readme.read_text(errors="replace").splitlines()
            if line.lstrip().startswith("|")
        ]
        table_text = "\n".join(table_lines)

    server_test = root / "tests/server_test.cc"
    quoted: list[str] = []
    if server_test.exists():
        quoted = QUOTED_STRING_RE.findall(
            server_test.read_text(errors="replace")
        )

    for verb in verbs:
        word = re.compile(rf"\b{re.escape(verb)}\b")
        if not word.search(table_text):
            findings.append(
                Finding(
                    "verb-coverage",
                    readme,
                    1,
                    f'protocol verb "{verb}" dispatched in '
                    f"src/server/protocol.cc but absent from the README "
                    f"grammar table",
                )
            )
        if not any(word.search(s) for s in quoted):
            findings.append(
                Finding(
                    "verb-coverage",
                    server_test,
                    1,
                    f'protocol verb "{verb}" dispatched in '
                    f"src/server/protocol.cc but never sent by "
                    f"tests/server_test.cc",
                )
            )
    return findings


OPCODE_ENUM_RE = re.compile(
    r"enum\s+class\s+Opcode[^{]*\{(.*?)\}", re.DOTALL
)
OPCODE_NAME_RE = re.compile(r"\b(k\w+)\s*=\s*0x[0-9a-fA-F]+")


def check_opcode_coverage(root: Path) -> list[Finding]:
    header = root / "src/server/binary_protocol.h"
    if not header.exists():
        # Trees without the binary protocol have no opcode surface.
        return []
    enum = OPCODE_ENUM_RE.search(header.read_text(errors="replace"))
    if enum is None:
        return [
            Finding(
                "opcode-coverage",
                header,
                1,
                "no `enum class Opcode` found in binary_protocol.h",
            )
        ]
    opcodes = OPCODE_NAME_RE.findall(enum.group(1))
    findings: list[Finding] = []

    readme = root / "README.md"
    table_text = ""
    if readme.exists():
        table_text = "\n".join(
            line
            for line in readme.read_text(errors="replace").splitlines()
            if line.lstrip().startswith("|")
        )

    server_test = root / "tests/server_test.cc"
    test_text = (
        server_test.read_text(errors="replace") if server_test.exists() else ""
    )

    for opcode in opcodes:
        word = re.compile(rf"\b{re.escape(opcode)}\b")
        if not word.search(table_text):
            findings.append(
                Finding(
                    "opcode-coverage",
                    readme,
                    1,
                    f"opcode {opcode} declared in binary_protocol.h but "
                    f"absent from the README v2 frame table",
                )
            )
        if not re.search(rf"\bOpcode::{re.escape(opcode)}\b", test_text):
            findings.append(
                Finding(
                    "opcode-coverage",
                    server_test,
                    1,
                    f"opcode {opcode} declared in binary_protocol.h but "
                    f"never exercised as Opcode::{opcode} by "
                    f"tests/server_test.cc",
                )
            )
    return findings


CHECKS = {
    "rng-discipline": check_rng_discipline,
    "ordered-commit": check_ordered_commit,
    "magic-unique": check_magic_unique,
    "backend-coverage": check_backend_coverage,
    "verb-coverage": check_verb_coverage,
    "opcode-coverage": check_opcode_coverage,
}


def run(root: Path, checks=None) -> list[Finding]:
    findings: list[Finding] = []
    for name, fn in CHECKS.items():
        if checks and name not in checks:
            continue
        findings.extend(fn(root))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the tree containing this script)",
    )
    parser.add_argument(
        "--check",
        action="append",
        choices=sorted(CHECKS),
        help="run only the named check (repeatable; default: all)",
    )
    parser.add_argument(
        "--report",
        type=Path,
        help="also write the findings to this file (CI artifact)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"lint_invariants: {root} has no src/ directory", file=sys.stderr)
        return 2

    findings = run(root, args.check)
    lines = [f.format(root) for f in findings]
    summary = (
        f"lint_invariants: {len(findings)} violation(s) in "
        f"{len({f.path for f in findings})} file(s)"
        if findings
        else "lint_invariants: clean"
    )
    report = "\n".join(lines + [summary])
    print(report)
    if args.report:
        args.report.write_text(report + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
