#!/usr/bin/env python3
"""Compare a bench JSON run (bench/bench_json.h output) against a committed
baseline — the CI perf gate.

Usage:
    check_bench_baseline.py <baseline.json> <current.json> [--qps-warn-pct N]

Hard failures (exit 1):
  * The series sets differ (a series vanished or appeared): the bench's
    coverage changed without the baseline being regenerated.
  * Any series' checksum differs: the answers themselves drifted — a
    correctness regression, machine-independent by construction (seeded
    inputs, integer distances, thread-count-deterministic algorithms).

Soft failures (exit 0, warning on stderr + GitHub ::warning:: annotation):
  * A series' throughput dropped more than --qps-warn-pct percent (default
    25) below the baseline. Warn-only because the baseline machine and the
    CI runner are different hardware; trajectories matter, not one number.

Regenerate the baseline by re-running the bench with the pinned env from the
CI job and committing the JSON (see .github/workflows/ci.yml perf-smoke).
"""

from __future__ import annotations

import argparse
import json
import sys


def load_series(path: str) -> dict[str, dict]:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    series = {}
    for entry in doc.get("series", []):
        series[entry["name"]] = entry
    return series


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--qps-warn-pct", type=float, default=25.0)
    args = parser.parse_args(argv)

    baseline = load_series(args.baseline)
    current = load_series(args.current)

    failures = []
    warnings = []

    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    for name in missing:
        failures.append(f"series '{name}' is in the baseline but not the run")
    for name in added:
        failures.append(
            f"series '{name}' is new — regenerate the committed baseline"
        )

    for name in sorted(set(baseline) & set(current)):
        base = baseline[name]
        cur = current[name]
        if base["checksum"] != cur["checksum"]:
            failures.append(
                f"series '{name}' checksum drifted: baseline "
                f"{base['checksum']} vs run {cur['checksum']} — answers "
                "changed, not just speed"
            )
        base_qps = float(base.get("qps", 0.0))
        cur_qps = float(cur.get("qps", 0.0))
        if base_qps > 0 and cur_qps < base_qps * (1 - args.qps_warn_pct / 100):
            drop = 100 * (1 - cur_qps / base_qps)
            warnings.append(
                f"series '{name}' throughput dropped {drop:.0f}% "
                f"({base_qps:.0f} -> {cur_qps:.0f} qps)"
            )

    for message in warnings:
        print(f"::warning::perf: {message}")
        print(f"WARNING: {message}", file=sys.stderr)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)

    if failures:
        return 1
    checked = len(set(baseline) & set(current))
    print(
        f"perf gate: {checked} series checked, checksums identical, "
        f"{len(warnings)} throughput warning(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
