#!/usr/bin/env python3
"""Self-test for tools/lint_invariants.py.

Builds throwaway repo trees containing known-bad snippets and asserts the
linter catches each one (and honours each suppression). Runs as the
`lint_invariants_selftest` ctest entry and in the CI static-analysis job.
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import lint_invariants  # noqa: E402

# A factory file good enough for factory_backends(): two backends, kNames
# and the dispatch chain agreeing.
FACTORY_OK = """\
const std::vector<std::string>& OracleNames() {
  static const std::vector<std::string> kNames = {"dijkstra", "ch"};
  return kNames;
}
std::unique_ptr<DistanceOracle> MakeOracle(const std::string& name) {
  if (name == "dijkstra") return MakeDijkstra();
  if (name == "ch") return MakeCh();
  throw std::invalid_argument(name);
}
"""


class LintInvariantsTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, text):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def findings(self, check):
        return lint_invariants.run(self.root, checks={check})

    def checks_of(self, findings):
        return [f.check for f in findings]

    # -- rng-discipline -----------------------------------------------------

    def test_seeded_rng_in_build_path_is_caught(self):
        self.write(
            "src/ch/order.cc",
            "void Shuffle() {\n"
            "  std::mt19937 gen(std::random_device{}());\n"
            "  int t = rand() % 7;\n"
            "}\n",
        )
        found = self.findings("rng-discipline")
        # mt19937, random_device, and rand() each flagged.
        self.assertEqual(self.checks_of(found), ["rng-discipline"] * 3)
        self.assertTrue(all(f.line == 2 or f.line == 3 for f in found))

    def test_time_seed_is_caught(self):
        self.write("bench/fig.cc", "auto seed = time(nullptr);\n")
        self.assertEqual(len(self.findings("rng-discipline")), 1)

    def test_rng_header_itself_is_exempt(self):
        self.write("src/util/rng.h", "// mentions std::mt19937 by name\n")
        # Comment-stripping also keeps pure-comment mentions elsewhere quiet.
        self.write("src/ch/doc.h", "// unlike std::mt19937, SplitMix64 ...\n")
        self.assertEqual(self.findings("rng-discipline"), [])

    def test_rng_suppression_is_honoured(self):
        self.write(
            "src/gen/noise.cc",
            "// lint:allow-rng comparing against libc rand for a figure\n"
            "int x = rand();\n",
        )
        self.assertEqual(self.findings("rng-discipline"), [])

    # -- ordered-commit -----------------------------------------------------

    def test_unordered_iteration_in_build_path_is_caught(self):
        self.write(
            "src/graph/merge.cc",
            "void Emit(Writer& w) {\n"
            "  std::unordered_map<int, int> degree;\n"
            "  for (const auto& [node, d] : degree) w.U32(d);\n"
            "}\n",
        )
        found = self.findings("ordered-commit")
        self.assertEqual(self.checks_of(found), ["ordered-commit"])
        self.assertEqual(found[0].line, 3)

    def test_ordered_commit_suppression_is_honoured(self):
        self.write(
            "src/graph/merge.cc",
            "std::unordered_set<int> seen;\n"
            "// lint:ordered-commit result re-sorted before emission\n"
            "for (int v : seen) out.push_back(v);\n",
        )
        self.assertEqual(self.findings("ordered-commit"), [])

    def test_server_runtime_paths_are_out_of_scope(self):
        self.write(
            "src/server/cache.cc",
            "std::unordered_map<int, int> table;\n"
            "for (const auto& [k, v] : table) Touch(k);\n",
        )
        self.assertEqual(self.findings("ordered-commit"), [])

    def test_unordered_member_iterated_in_companion_cc_is_caught(self):
        # The incremental-rebuild commit shape: an annotated unordered
        # member declared in the header, drained by the .cc worker into
        # state every backend is rebuilt from.
        self.write(
            "src/api/index_registry.h",
            "class IndexRegistry {\n"
            "  std::unordered_map<std::uint64_t, WeightDelta> pending_\n"
            "      AH_GUARDED_BY(mu_);\n"
            "};\n",
        )
        self.write(
            "src/api/index_registry.cc",
            "void IndexRegistry::WorkerLoop() {\n"
            "  for (auto& [key, delta] : pending_) deltas.push_back(delta);\n"
            "}\n",
        )
        found = self.findings("ordered-commit")
        self.assertEqual(self.checks_of(found), ["ordered-commit"])
        self.assertTrue(found[0].path.name.endswith(".cc"))
        self.assertEqual(found[0].line, 2)

    def test_suppressed_member_drain_in_companion_cc_passes(self):
        self.write(
            "src/api/index_registry.h",
            "std::unordered_map<std::uint64_t, WeightDelta> pending_\n"
            "    AH_GUARDED_BY(mu_);\n",
        )
        self.write(
            "src/api/index_registry.cc",
            "// lint:ordered-commit drained set is sorted canonically below\n"
            "for (auto& [key, delta] : pending_) deltas.push_back(delta);\n"
            "std::sort(deltas.begin(), deltas.end(), ByArc);\n",
        )
        self.assertEqual(self.findings("ordered-commit"), [])

    def test_ordered_container_iteration_is_fine(self):
        self.write(
            "src/graph/merge.cc",
            "std::map<int, int> degree;\n"
            "for (const auto& [node, d] : degree) w.U32(d);\n",
        )
        self.assertEqual(self.findings("ordered-commit"), [])

    # -- magic-unique -------------------------------------------------------

    def test_duplicate_magic_tag_is_caught(self):
        self.write("src/graph/graph.cc", 'w.Magic("AHGR", 1);\n')
        self.write("src/hl/hl_index.cc", 'w.Magic("AHGR", 2);\n')
        found = self.findings("magic-unique")
        self.assertEqual(self.checks_of(found), ["magic-unique"])
        self.assertIn("AHGR", found[0].message)

    def test_unique_tags_pass(self):
        self.write(
            "src/graph/graph.cc",
            'w.Magic("AHGR", 1);\nr.Magic("AHGR", 1);\n',
        )
        self.write("src/hl/hl_index.cc", 'w.Magic("AHHL", 2);\n')
        self.assertEqual(self.findings("magic-unique"), [])

    # -- backend-coverage ---------------------------------------------------

    def coverage_tree(self, serialize_body):
        self.write("src/api/distance_oracle.cc", FACTORY_OK)
        self.write(
            "tests/conformance_test.cc",
            "for (const auto& name : OracleNames()) Check(name);\n",
        )
        self.write("tests/serialize_roundtrip_test.cc", serialize_body)
        self.write(
            "bench/fig_throughput.cc",
            "for (const auto& name : OracleNames()) Bench(name);\n",
        )

    def test_backend_missing_from_serialize_suite_is_caught(self):
        self.coverage_tree('CheckRoundTrip("ch");\n')  # "dijkstra" absent
        found = self.findings("backend-coverage")
        self.assertEqual(self.checks_of(found), ["backend-coverage"])
        self.assertIn('"dijkstra"', found[0].message)

    def test_sweeping_does_not_satisfy_the_serialize_suite(self):
        # OracleNames() in the round-trip suite must NOT count as coverage:
        # the whole point is an explicit per-backend decision.
        self.coverage_tree("for (const auto& n : OracleNames()) Check(n);\n")
        self.assertEqual(len(self.findings("backend-coverage")), 2)

    def test_full_coverage_passes(self):
        self.coverage_tree('{"dijkstra", false}, {"ch", true},\n')
        self.assertEqual(self.findings("backend-coverage"), [])

    def test_factory_name_dispatch_mismatch_is_caught(self):
        self.write(
            "src/api/distance_oracle.cc",
            FACTORY_OK.replace('if (name == "ch") return MakeCh();\n', ""),
        )
        found = self.findings("backend-coverage")
        self.assertTrue(any("dispatch" in f.message for f in found))

    # -- verb-coverage ------------------------------------------------------

    def verb_tree(self, verbs, readme_rows, test_requests):
        dispatch = "".join(
            f'  if (verb == "{v}") return Handle{i}();\n'
            for i, v in enumerate(verbs)
        )
        self.write(
            "src/server/protocol.cc",
            f"Request Parse(std::string verb) {{\n{dispatch}}}\n",
        )
        rows = "".join(f"| `{row}` | `OK ...` |\n" for row in readme_rows)
        self.write("README.md", f"| Request | Reply |\n|---|---|\n{rows}")
        sends = "".join(f'Send(conn, "{r}");\n' for r in test_requests)
        self.write("tests/server_test.cc", sends)

    def test_undocumented_verb_is_caught(self):
        # "zz" dispatched but in neither the README table nor server_test.
        self.verb_tree(
            ["d", "zz"], ["d <s> <t>"], ["d 0 5"]
        )
        found = self.findings("verb-coverage")
        self.assertEqual(self.checks_of(found), ["verb-coverage"] * 2)
        self.assertTrue(all('"zz"' in f.message for f in found))

    def test_reply_placeholder_does_not_count_as_coverage(self):
        # `<m>` in a reply column must not satisfy coverage for verb "m".
        self.write(
            "src/server/protocol.cc",
            'Request Parse(std::string verb) { if (verb == "m") return R(); }\n',
        )
        self.write(
            "README.md",
            "| Request | Reply |\n|---|---|\n| `k <s>` | `OK k <m> ...` |\n",
        )
        self.write("tests/server_test.cc", 'Send(conn, "m 1 1 0 5");\n')
        found = self.findings("verb-coverage")
        self.assertEqual(self.checks_of(found), ["verb-coverage"])
        self.assertIn("README", str(found[0].path))

    def test_full_verb_coverage_passes(self):
        self.verb_tree(
            ["d", "m", "q"],
            ["[@<backend>] d <s> <t>", "m <ns> <nt> ...", "q"],
            ["d 0 5", "m 1 1 0 5", "q"],
        )
        self.assertEqual(self.findings("verb-coverage"), [])

    def test_trees_without_a_server_layer_are_exempt(self):
        self.write("src/ch/order.cc", "int x;\n")
        self.assertEqual(self.findings("verb-coverage"), [])

    # -- opcode-coverage ----------------------------------------------------

    def opcode_tree(self, opcodes, readme_ops, test_ops):
        decls = "".join(
            f"  {op} = 0x{i + 1:02x},\n" for i, op in enumerate(opcodes)
        )
        self.write(
            "src/server/binary_protocol.h",
            f"enum class Opcode : std::uint8_t {{\n{decls}}};\n",
        )
        rows = "".join(f"| `{op}` | 0x00 | body | reply |\n" for op in readme_ops)
        self.write(
            "README.md",
            f"| Opcode | Value | Request body | OK reply payload |\n"
            f"|---|---|---|---|\n{rows}",
        )
        uses = "".join(f"v2.SendRequest(Opcode::{op}, {{}});\n" for op in test_ops)
        self.write("tests/server_test.cc", uses)

    def test_undocumented_opcode_is_caught(self):
        # kMatrix declared but in neither the README table nor server_test.
        self.opcode_tree(
            ["kDistance", "kMatrix"], ["kDistance"], ["kDistance"]
        )
        found = self.findings("opcode-coverage")
        self.assertEqual(self.checks_of(found), ["opcode-coverage"] * 2)
        self.assertTrue(all("kMatrix" in f.message for f in found))

    def test_opcode_exercised_only_via_translation_is_caught(self):
        # The opcode appears in the test file, but not as an Opcode::k
        # literal — incidental coverage through OpcodeForKind() loops must
        # not satisfy the check.
        self.opcode_tree(["kPath"], ["kPath"], [])
        self.write(
            "tests/server_test.cc",
            "v2.SendRequest(OpcodeForKind(parsed.request.kind), body);"
            "  // kPath via loop\n",
        )
        found = self.findings("opcode-coverage")
        self.assertEqual(self.checks_of(found), ["opcode-coverage"])
        self.assertIn("server_test", str(found[0].path))

    def test_full_opcode_coverage_passes(self):
        ops = ["kHello", "kDistance", "kQuit"]
        self.opcode_tree(ops, ops, ops)
        self.assertEqual(self.findings("opcode-coverage"), [])

    def test_trees_without_a_binary_protocol_are_exempt(self):
        self.write("src/server/protocol.cc", "int x;\n")
        self.assertEqual(self.findings("opcode-coverage"), [])

    # -- harness ------------------------------------------------------------

    def test_main_reports_and_exits_nonzero_on_violation(self):
        self.write("src/ch/order.cc", "int x = rand();\n")
        report = self.root / "report.txt"
        code = lint_invariants.main(
            ["--root", str(self.root), "--report", str(report)]
        )
        self.assertEqual(code, 1)
        self.assertIn("rng-discipline", report.read_text())

    def test_main_exits_zero_on_clean_tree(self):
        self.write("src/api/distance_oracle.cc", FACTORY_OK)
        self.write(
            "tests/conformance_test.cc",
            "for (const auto& name : OracleNames()) Check(name);\n",
        )
        self.write(
            "tests/serialize_roundtrip_test.cc",
            '{"dijkstra", false}, {"ch", true},\n',
        )
        self.write("bench/b.cc", 'Bench("dijkstra"); Bench("ch");\n')
        self.assertEqual(lint_invariants.main(["--root", str(self.root)]), 0)


if __name__ == "__main__":
    unittest.main()
