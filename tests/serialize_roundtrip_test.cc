// Save/load round-trips for every artifact with util/serialize.h-based
// persistence (Graph, SearchGraph, ChIndex, AhIndex): the loaded copy must
// answer queries identically, and re-saving it must reproduce the original
// byte stream (so the format has no hidden state).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "graph/graph.h"
#include "hier/search_graph.h"
#include "routing/dijkstra.h"
#include "test_util.h"
#include "util/rng.h"

namespace ah {
namespace {

template <typename Artifact>
std::string Bytes(const Artifact& artifact) {
  std::stringstream ss;
  artifact.Save(ss);
  return ss.str();
}

template <typename Artifact>
Artifact ReloadAndCheckBytes(const Artifact& artifact) {
  const std::string original = Bytes(artifact);
  std::stringstream in(original);
  Artifact loaded = Artifact::Load(in);
  EXPECT_EQ(Bytes(loaded), original)
      << "re-saving a loaded artifact changed the byte stream";
  return loaded;
}

TEST(SerializeRoundTripTest, GraphAnswersIdentically) {
  const Graph g = testing::MakeRandomGraph(70, 210, 41);
  const Graph loaded = ReloadAndCheckBytes(g);
  ASSERT_EQ(loaded.NumNodes(), g.NumNodes());
  ASSERT_EQ(loaded.NumArcs(), g.NumArcs());
  Dijkstra a(g);
  Dijkstra b(loaded);
  Rng rng(41);
  for (int i = 0; i < 60; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(a.Distance(s, t), b.Distance(s, t));
  }
}

TEST(SerializeRoundTripTest, SearchGraphPreservesArcsAndUnpacking) {
  const Graph g = testing::MakeRoadGraph(12, 42);
  const ChIndex index = ChIndex::Build(g);
  const SearchGraph& sg = index.search_graph();
  const SearchGraph loaded = ReloadAndCheckBytes(sg);

  ASSERT_EQ(loaded.NumNodes(), sg.NumNodes());
  ASSERT_EQ(loaded.NumArcs(), sg.NumArcs());
  for (NodeId v = 0; v < sg.NumNodes(); ++v) {
    ASSERT_EQ(loaded.RankOf(v), sg.RankOf(v));
    const auto a = sg.UpOut(v);
    const auto b = loaded.UpOut(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_EQ(a[i].weight, b[i].weight);
      // Shortcut unpacking must survive (midpoint tables included).
      std::vector<NodeId> ua, ub;
      sg.AppendUnpacked(v, a[i].node, &ua);
      loaded.AppendUnpacked(v, b[i].node, &ub);
      EXPECT_EQ(ua, ub);
    }
  }
}

TEST(SerializeRoundTripTest, ChIndexAnswersIdentically) {
  const Graph g = testing::MakeRoadGraph(14, 43);
  const ChIndex built = ChIndex::Build(g);
  const ChIndex loaded = ReloadAndCheckBytes(built);

  ChQuery q1(built);
  ChQuery q2(loaded);
  Rng rng(43);
  for (int i = 0; i < 80; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(q2.Distance(s, t), q1.Distance(s, t));
    const PathResult p1 = q1.Path(s, t);
    const PathResult p2 = q2.Path(s, t);
    ASSERT_EQ(p2.length, p1.length);
    EXPECT_EQ(p2.nodes, p1.nodes);
  }
}

TEST(SerializeRoundTripTest, AhIndexAnswersIdentically) {
  const Graph g = testing::MakeRoadGraph(14, 44);
  const AhIndex built = AhIndex::Build(g);
  const AhIndex loaded = ReloadAndCheckBytes(built);

  AhQuery q1(built);
  AhQuery q2(loaded);
  Rng rng(44);
  for (int i = 0; i < 80; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(q2.Distance(s, t), q1.Distance(s, t));
    const PathResult p1 = q1.Path(s, t);
    const PathResult p2 = q2.Path(s, t);
    ASSERT_EQ(p2.length, p1.length);
    if (p1.Found()) {
      EXPECT_TRUE(IsValidPath(g, p2.nodes, s, t, p2.length));
    }
  }
}

TEST(SerializeRoundTripTest, TruncatedStreamsAreRejected) {
  const Graph g = testing::MakeRandomGraph(30, 90, 45);
  const std::string graph_bytes = Bytes(g);
  const ChIndex ch = ChIndex::Build(g);
  const std::string ch_bytes = Bytes(ch);

  for (const std::string& bytes : {graph_bytes, ch_bytes}) {
    // Chop the stream at several depths; every prefix must throw, never
    // crash or return a half-initialized artifact.
    for (std::size_t keep :
         {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
          bytes.size() - 1}) {
      std::stringstream in(bytes.substr(0, keep));
      if (bytes == graph_bytes) {
        EXPECT_THROW(Graph::Load(in), std::runtime_error) << keep;
      } else {
        EXPECT_THROW(ChIndex::Load(in), std::runtime_error) << keep;
      }
    }
  }
}

}  // namespace
}  // namespace ah
