// Save/load round-trips for every artifact with util/serialize.h-based
// persistence (Graph, SearchGraph, ChIndex, AhIndex, FcIndex, HlIndex): the
// loaded
// copy must answer queries identically, and re-saving it must reproduce the
// original byte stream (so the format has no hidden state).
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <sstream>
#include <string>

#include "api/distance_oracle.h"
#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "fc/fc_index.h"
#include "graph/graph.h"
#include "hier/search_graph.h"
#include "hl/hl_index.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "test_util.h"
#include "util/rng.h"

namespace ah {
namespace {

template <typename Artifact>
std::string Bytes(const Artifact& artifact) {
  std::stringstream ss;
  artifact.Save(ss);
  return ss.str();
}

template <typename Artifact>
Artifact ReloadAndCheckBytes(const Artifact& artifact) {
  const std::string original = Bytes(artifact);
  std::stringstream in(original);
  Artifact loaded = Artifact::Load(in);
  EXPECT_EQ(Bytes(loaded), original)
      << "re-saving a loaded artifact changed the byte stream";
  return loaded;
}

TEST(SerializeRoundTripTest, GraphAnswersIdentically) {
  const Graph g = testing::MakeRandomGraph(70, 210, 41);
  const Graph loaded = ReloadAndCheckBytes(g);
  ASSERT_EQ(loaded.NumNodes(), g.NumNodes());
  ASSERT_EQ(loaded.NumArcs(), g.NumArcs());
  Dijkstra a(g);
  Dijkstra b(loaded);
  Rng rng(41);
  for (int i = 0; i < 60; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(a.Distance(s, t), b.Distance(s, t));
  }
}

TEST(SerializeRoundTripTest, SearchGraphPreservesArcsAndUnpacking) {
  const Graph g = testing::MakeRoadGraph(12, 42);
  const ChIndex index = ChIndex::Build(g);
  const SearchGraph& sg = index.search_graph();
  const SearchGraph loaded = ReloadAndCheckBytes(sg);

  ASSERT_EQ(loaded.NumNodes(), sg.NumNodes());
  ASSERT_EQ(loaded.NumArcs(), sg.NumArcs());
  for (NodeId v = 0; v < sg.NumNodes(); ++v) {
    ASSERT_EQ(loaded.RankOf(v), sg.RankOf(v));
    const auto a = sg.UpOut(v);
    const auto b = loaded.UpOut(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_EQ(a[i].weight, b[i].weight);
      // Shortcut unpacking must survive (midpoint tables included).
      std::vector<NodeId> ua, ub;
      sg.AppendUnpacked(v, a[i].node, &ua);
      loaded.AppendUnpacked(v, b[i].node, &ub);
      EXPECT_EQ(ua, ub);
    }
  }
}

TEST(SerializeRoundTripTest, ChIndexAnswersIdentically) {
  const Graph g = testing::MakeRoadGraph(14, 43);
  const ChIndex built = ChIndex::Build(g);
  const ChIndex loaded = ReloadAndCheckBytes(built);

  ChQuery q1(built);
  ChQuery q2(loaded);
  Rng rng(43);
  for (int i = 0; i < 80; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(q2.Distance(s, t), q1.Distance(s, t));
    const PathResult p1 = q1.Path(s, t);
    const PathResult p2 = q2.Path(s, t);
    ASSERT_EQ(p2.length, p1.length);
    EXPECT_EQ(p2.nodes, p1.nodes);
  }
}

TEST(SerializeRoundTripTest, AhIndexAnswersIdentically) {
  const Graph g = testing::MakeRoadGraph(14, 44);
  const AhIndex built = AhIndex::Build(g);
  const AhIndex loaded = ReloadAndCheckBytes(built);

  AhQuery q1(built);
  AhQuery q2(loaded);
  Rng rng(44);
  for (int i = 0; i < 80; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(q2.Distance(s, t), q1.Distance(s, t));
    const PathResult p1 = q1.Path(s, t);
    const PathResult p2 = q2.Path(s, t);
    ASSERT_EQ(p2.length, p1.length);
    if (p1.Found()) {
      EXPECT_TRUE(IsValidPath(g, p2.nodes, s, t, p2.length));
    }
  }
}

TEST(SerializeRoundTripTest, FcIndexAnswersIdentically) {
  const Graph g = testing::MakeRoadGraph(14, 46);
  const FcIndex built = FcIndex::Build(g);
  const FcIndex loaded = ReloadAndCheckBytes(built);

  ASSERT_EQ(loaded.NumNodes(), built.NumNodes());
  // The grid stack is rebuilt from the stored coordinates on Load; it must
  // come back structurally identical, or proximity queries would diverge.
  ASSERT_EQ(loaded.grids().Depth(), built.grids().Depth());

  FcQuery q1(built, FcQueryOptions{.use_proximity = false});
  FcQuery q2(loaded, FcQueryOptions{.use_proximity = false});
  Rng rng(46);
  for (int i = 0; i < 80; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(q2.Distance(s, t), q1.Distance(s, t));
    const PathResult p1 = q1.Path(s, t);
    const PathResult p2 = q2.Path(s, t);
    ASSERT_EQ(p2.length, p1.length);
    EXPECT_EQ(p2.nodes, p1.nodes);
    if (p1.Found()) {
      EXPECT_TRUE(IsValidPath(g, p2.nodes, s, t, p2.length));
    }
  }
}

TEST(SerializeRoundTripTest, HlIndexAnswersIdentically) {
  const Graph g = testing::MakeRoadGraph(14, 47);
  const HlIndex built = HlIndex::Build(g);
  const HlIndex loaded = ReloadAndCheckBytes(built);

  ASSERT_EQ(loaded.NumNodes(), built.NumNodes());
  Rng rng(47);
  for (int i = 0; i < 80; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(loaded.Distance(s, t), built.Distance(s, t));
    const PathResult p1 = built.Path(s, t);
    const PathResult p2 = loaded.Path(s, t);
    ASSERT_EQ(p2.length, p1.length);
    EXPECT_EQ(p2.nodes, p1.nodes);  // label parents load back exactly
    if (p1.Found()) {
      EXPECT_TRUE(IsValidPath(g, p2.nodes, s, t, p2.length));
    }
  }
}

// Every factory backend must be explicitly accounted for here, so adding a
// backend forces a recorded serialization decision (round-trip test above,
// or a deliberate "search-only, no artifact" entry). tools/lint_invariants.py
// enforces that each name appears in this file as a quoted literal; this
// test enforces that the table below tracks the factory exactly.
TEST(SerializeRoundTripTest, EveryBackendHasASerializationDecision) {
  // name -> has a persisted artifact exercised by a round-trip test above.
  const std::map<std::string, bool> decisions = {
      {"dijkstra", false},    // search-only: rebuilt from the Graph artifact
      {"bidijkstra", false},  // search-only: rebuilt from the Graph artifact
      {"ch", true},           // ChIndexAnswersIdentically
      {"alt", false},         // landmarks recomputed deterministically on load
      {"silc", false},        // tiles recomputed deterministically on load
      {"fc", true},           // FcIndexAnswersIdentically
      {"ah", true},           // AhIndexAnswersIdentically
      {"hl", true},           // HlIndexAnswersIdentically
  };
  const std::vector<std::string>& names = OracleNames();
  ASSERT_EQ(decisions.size(), names.size())
      << "backend added or removed without updating the serialization table";
  for (const std::string& name : names) {
    EXPECT_TRUE(decisions.count(name))
        << "backend \"" << name << "\" has no serialization decision";
  }
}

TEST(SerializeRoundTripTest, TruncatedStreamsAreRejected) {
  const Graph g = testing::MakeRandomGraph(30, 90, 45);
  const ChIndex ch = ChIndex::Build(g);
  const FcIndex fc = FcIndex::Build(g);
  const HlIndex hl = HlIndex::Build(g);

  struct Case {
    std::string bytes;
    std::function<void(std::istream&)> load;
  };
  const Case cases[] = {
      {Bytes(g), [](std::istream& in) { Graph::Load(in); }},
      {Bytes(ch), [](std::istream& in) { ChIndex::Load(in); }},
      {Bytes(fc), [](std::istream& in) { FcIndex::Load(in); }},
      {Bytes(hl), [](std::istream& in) { HlIndex::Load(in); }},
  };
  for (const Case& c : cases) {
    // Chop the stream at several depths; every prefix must throw, never
    // crash or return a half-initialized artifact.
    for (std::size_t keep :
         {std::size_t{0}, std::size_t{3}, c.bytes.size() / 2,
          c.bytes.size() - 1}) {
      std::stringstream in(c.bytes.substr(0, keep));
      EXPECT_THROW(c.load(in), std::runtime_error) << keep;
    }
  }
}

}  // namespace
}  // namespace ah
