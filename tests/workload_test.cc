#include <gtest/gtest.h>

#include "routing/dijkstra.h"
#include "test_util.h"
#include "workload/workload.h"

namespace ah {
namespace {

TEST(WorkloadTest, LmaxIsAchievableDistance) {
  Graph g = testing::MakeRoadGraph(20, 1);
  const Dist lmax = EstimateMaxDistance(g, 1);
  EXPECT_GT(lmax, 0u);
  // The double-sweep estimate can undershoot the true diameter but must be
  // a real distance <= the max over a sample of sources.
  Dijkstra dijkstra(g);
  Dist seen = 0;
  for (NodeId s = 0; s < g.NumNodes(); s += 37) {
    dijkstra.Run(s);
    for (NodeId v : dijkstra.SettledNodes()) {
      seen = std::max(seen, dijkstra.DistTo(v));
    }
  }
  EXPECT_LE(lmax, seen * 2);
  EXPECT_GE(lmax, seen / 4);
}

TEST(WorkloadTest, BucketsRespectDistanceBands) {
  Graph g = testing::MakeRoadGraph(24, 2);
  WorkloadParams params;
  params.pairs_per_set = 20;
  params.seed = 2;
  const Workload w = GenerateWorkload(g, params);
  ASSERT_EQ(w.sets.size(), 10u);
  Dijkstra dijkstra(g);
  for (const QuerySet& qs : w.sets) {
    EXPECT_LT(qs.lo, qs.hi);
    for (const auto& [s, t] : qs.pairs) {
      const Dist d = dijkstra.Distance(s, t);
      EXPECT_GE(d, qs.lo) << "Q" << qs.index;
      EXPECT_LT(d, qs.hi) << "Q" << qs.index;
    }
  }
}

TEST(WorkloadTest, BandsDoubleInDistance) {
  Graph g = testing::MakeRoadGraph(16, 3);
  const Workload w = GenerateWorkload(g, {});
  for (std::size_t i = 1; i < w.sets.size(); ++i) {
    // Bounds are computed by right shifts, so the previous band's upper
    // bound is exactly the floor-half of the next one.
    EXPECT_EQ(w.sets[i - 1].hi, w.sets[i].hi >> 1);
  }
  EXPECT_EQ(w.sets.back().hi, w.lmax);
  EXPECT_EQ(w.sets.back().lo, w.lmax / 2);
}

TEST(WorkloadTest, MostBucketsFillOnRoadNetworks) {
  Graph g = testing::MakeRoadGraph(28, 4);
  WorkloadParams params;
  params.pairs_per_set = 30;
  const Workload w = GenerateWorkload(g, params);
  std::size_t filled = 0;
  for (const QuerySet& qs : w.sets) {
    filled += qs.pairs.size() == params.pairs_per_set;
  }
  EXPECT_GE(filled, 7u);  // Q1 (ultra-short) may be sparse; the rest fill.
}

TEST(WorkloadTest, Deterministic) {
  Graph g = testing::MakeRoadGraph(14, 5);
  WorkloadParams params;
  params.pairs_per_set = 10;
  params.seed = 9;
  const Workload a = GenerateWorkload(g, params);
  const Workload b = GenerateWorkload(g, params);
  ASSERT_EQ(a.sets.size(), b.sets.size());
  for (std::size_t i = 0; i < a.sets.size(); ++i) {
    EXPECT_EQ(a.sets[i].pairs, b.sets[i].pairs);
  }
}

TEST(WorkloadTest, PairsAreDistinctEndpoints) {
  Graph g = testing::MakeRoadGraph(16, 6);
  const Workload w = GenerateWorkload(g, {});
  for (const QuerySet& qs : w.sets) {
    for (const auto& [s, t] : qs.pairs) EXPECT_NE(s, t);
  }
}

}  // namespace
}  // namespace ah
