// Hub labeling: exactness against Dijkstra, label-array invariants, native
// path recovery, build determinism across thread counts, and the bounded
// in-flight delta-buffer guarantee of the windowed parallel build.
#include <gtest/gtest.h>

#include <algorithm>

#include "hl/hl_index.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "test_util.h"
#include "util/rng.h"

namespace ah {
namespace {

class HlSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HlSeedTest, DistanceMatchesDijkstra) {
  const Graph g = testing::MakeRoadGraph(14, GetParam());
  const HlIndex index = HlIndex::Build(g);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 80; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(index.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(HlSeedTest, PathsValidAndOptimal) {
  const Graph g = testing::MakeRoadGraph(12, GetParam() + 9);
  const HlIndex index = HlIndex::Build(g);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const PathResult path = index.Path(s, t);
    const Dist ref = dijkstra.Distance(s, t);
    ASSERT_EQ(path.length, ref);
    if (ref != kInfDist) {
      EXPECT_TRUE(IsValidPath(g, path.nodes, s, t, ref));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HlSeedTest, ::testing::Values(1, 2, 3));

TEST(HlTest, ExactOnAdversarialGraphs) {
  const Graph graphs[] = {
      testing::MakeRandomGraph(60, 180, 7),
      testing::MakeDisconnectedGraph(25, 8),
      testing::MakeParallelArcGraph(24, 9),
  };
  for (const Graph& g : graphs) {
    const HlIndex index = HlIndex::Build(g);
    Dijkstra dijkstra(g);
    Rng rng(5);
    for (int q = 0; q < 120; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
      const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
      ASSERT_EQ(index.Distance(s, t), dijkstra.Distance(s, t))
          << "n=" << g.NumNodes() << " s=" << s << " t=" << t;
    }
  }
}

TEST(HlTest, UnreachablePairsAnswerInfAndEmptyPath) {
  const Graph g = testing::MakeDisconnectedGraph(20, 11);
  const HlIndex index = HlIndex::Build(g);
  EXPECT_EQ(index.Distance(0, 20), kInfDist);
  const PathResult p = index.Path(0, 20);
  EXPECT_EQ(p.length, kInfDist);
  EXPECT_TRUE(p.nodes.empty());
}

TEST(HlTest, SelfQueryAndSingleNode) {
  const Graph g = testing::MakeRoadGraph(8, 1);
  const HlIndex index = HlIndex::Build(g);
  EXPECT_EQ(index.Distance(3, 3), 0u);
  const PathResult p = index.Path(3, 3);
  EXPECT_EQ(p.nodes, std::vector<NodeId>{3});
  EXPECT_EQ(p.length, 0u);

  const Graph single = testing::MakeSingleNodeGraph();
  const HlIndex tiny = HlIndex::Build(single);
  EXPECT_EQ(tiny.Distance(0, 0), 0u);
  EXPECT_EQ(tiny.Path(0, 0).nodes, std::vector<NodeId>{0});
}

TEST(HlTest, LabelArraysAreSortedByHubRank) {
  const Graph g = testing::MakeRoadGraph(10, 3);
  const HlIndex index = HlIndex::Build(g);
  std::size_t root_in = 0, root_out = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const auto labels : {index.OutLabels(v), index.InLabels(v)}) {
      for (std::size_t i = 1; i < labels.size(); ++i) {
        ASSERT_LT(labels[i - 1].hub, labels[i].hub) << "node " << v;
      }
    }
    // Every node carries its own rank as a hub at distance 0 on both sides.
    for (const HlLabel& l : index.InLabels(v)) {
      if (l.dist == 0 && index.hub_of_rank()[l.hub] == v) ++root_in;
    }
    for (const HlLabel& l : index.OutLabels(v)) {
      if (l.dist == 0 && index.hub_of_rank()[l.hub] == v) ++root_out;
    }
  }
  EXPECT_EQ(root_in, g.NumNodes());
  EXPECT_EQ(root_out, g.NumNodes());
  EXPECT_EQ(index.build_stats().in_labels, index.in_labels().size());
  EXPECT_GT(index.SizeBytes(), 0u);
}

// The build processes hubs in fixed rounds and commits deltas serially in
// hub-rank order, so the tables must be bit-identical at any thread count
// (what makes parallel HL rebuilds safe inside the registry's background
// build worker).
TEST(HlTest, ParallelBuildIsBitIdenticalAtAnyThreadCount) {
  const Graph road = testing::MakeRoadGraph(13, 21);
  const Graph split = testing::MakeDisconnectedGraph(40, 5);
  for (const Graph* g : {&road, &split}) {
    const HlIndex sequential = HlIndex::Build(*g, HlParams{1});
    for (const std::size_t threads : {2u, 3u, 8u}) {
      const HlIndex parallel = HlIndex::Build(*g, HlParams{threads});
      ASSERT_EQ(parallel.hub_of_rank(), sequential.hub_of_rank())
          << threads << " threads";
      ASSERT_EQ(parallel.in_offsets(), sequential.in_offsets())
          << threads << " threads";
      ASSERT_EQ(parallel.out_offsets(), sequential.out_offsets())
          << threads << " threads";
      ASSERT_EQ(parallel.in_labels(), sequential.in_labels())
          << threads << " threads";
      ASSERT_EQ(parallel.out_labels(), sequential.out_labels())
          << threads << " threads";
    }
  }
}

// The windowed build holds at most O(threads) per-hub delta buffers live,
// no matter how many hubs (= nodes) the graph has.
TEST(HlTest, ParallelBuildBoundsLiveDeltaBuffers) {
  const Graph g = testing::MakeRandomGraph(300, 900, 13);
  for (const std::size_t threads : {2u, 4u}) {
    const HlIndex index = HlIndex::Build(g, HlParams{threads});
    const HlBuildStats& stats = index.build_stats();
    EXPECT_EQ(stats.label_window, 2 * threads);
    EXPECT_LE(stats.max_live_label_buffers, stats.label_window)
        << threads << " threads";
    EXPECT_GE(stats.max_live_label_buffers, 1u);
  }
}

TEST(HlTest, PruningKeepsLabelsSublinear) {
  // On a road-like graph the per-node label count must stay far below n —
  // the entire point of pruned labeling (without pruning every node would
  // carry ~n labels).
  const Graph g = testing::MakeRoadGraph(16, 4);
  const HlIndex index = HlIndex::Build(g);
  const double n = static_cast<double>(g.NumNodes());
  const double avg_in = static_cast<double>(index.build_stats().in_labels) / n;
  EXPECT_LT(avg_in, n / 4) << "pruning is not biting";
}

}  // namespace
}  // namespace ah
