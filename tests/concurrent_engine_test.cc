// ConcurrentEngine: one immutable index behind a session pool and the batch
// fan-out APIs. Results must match the Dijkstra reference at every thread
// count, the lease pool must recycle sessions, and concurrent one-shot
// queries must be safe (the TSan CI job runs this suite).
#include "api/concurrent_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/distance_oracle.h"
#include "api/index_registry.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "test_util.h"
#include "util/rng.h"

namespace ah {
namespace {

std::vector<QueryPair> RandomPairs(const Graph& g, std::size_t count,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())),
                       static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  // Identity and extreme pairs.
  pairs.emplace_back(0, 0);
  pairs.emplace_back(0, static_cast<NodeId>(g.NumNodes() - 1));
  return pairs;
}

std::vector<Dist> ReferenceDistances(const Graph& g,
                                     const std::vector<QueryPair>& pairs) {
  Dijkstra reference(g);
  std::vector<Dist> expected;
  expected.reserve(pairs.size());
  for (const auto& [s, t] : pairs) expected.push_back(reference.Distance(s, t));
  return expected;
}

TEST(ConcurrentEngineTest, NullOracleOrRegistryThrows) {
  EXPECT_THROW(ConcurrentEngine(std::unique_ptr<DistanceOracle>()),
               std::invalid_argument);
  EXPECT_THROW(ConcurrentEngine(std::shared_ptr<IndexRegistry>()),
               std::invalid_argument);
}

// The unique_ptr convenience constructor wraps the oracle in a static
// single-backend registry: queries and leases work, epoch metadata is
// visible, lifecycle operations are rejected.
TEST(ConcurrentEngineTest, AdoptedOracleServesThroughStaticRegistry) {
  const Graph g = testing::MakeRoadGraph(6, 3);
  ConcurrentEngine engine(MakeOracle("ch", g), 2);
  EXPECT_EQ(engine.registry().Backends(), std::vector<std::string>{"ch"});
  auto lease = engine.Lease();
  EXPECT_EQ(lease.epoch().backend, "ch");
  EXPECT_EQ(lease.epoch().generation, 1u);
  EXPECT_THROW(engine.Lease("alt"), std::invalid_argument);
  EXPECT_FALSE(engine.registry().RequestReload());
}

TEST(ConcurrentEngineTest, ThreadCountDefaultsAndOverrides) {
  const Graph g = testing::MakeSingleNodeGraph();
  ConcurrentEngine defaulted(MakeOracle("dijkstra", g));
  EXPECT_GE(defaulted.NumThreads(), 1u);
  ConcurrentEngine pinned(MakeOracle("dijkstra", g), 3);
  EXPECT_EQ(pinned.NumThreads(), 3u);
}

TEST(ConcurrentEngineTest, EmptyBatchReturnsEmpty) {
  const Graph g = testing::MakeSingleNodeGraph();
  ConcurrentEngine engine(MakeOracle("dijkstra", g));
  EXPECT_TRUE(engine.BatchDistance({}).empty());
  EXPECT_TRUE(engine.BatchShortestPath({}).empty());
}

TEST(ConcurrentEngineTest, BatchDistanceMatchesReferenceAtEveryThreadCount) {
  const Graph g = testing::MakeRoadGraph(9, 19);
  const auto pairs = RandomPairs(g, 120, 5);
  const auto expected = ReferenceDistances(g, pairs);

  for (const char* backend : {"dijkstra", "ch", "fc", "ah"}) {
    ConcurrentEngine engine(MakeOracle(backend, g));
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const std::vector<Dist> got = engine.BatchDistance(pairs, threads);
      ASSERT_EQ(got.size(), pairs.size());
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_EQ(got[i], expected[i])
            << backend << " @" << threads << " threads: d(" << pairs[i].first
            << ", " << pairs[i].second << ")";
      }
    }
  }
}

TEST(ConcurrentEngineTest, BatchShortestPathMatchesReference) {
  const Graph g = testing::MakeRandomGraph(50, 150, 23);
  const auto pairs = RandomPairs(g, 40, 6);
  const auto expected = ReferenceDistances(g, pairs);

  ConcurrentEngine engine(MakeOracle("ch", g), 4);
  const std::vector<PathResult> got = engine.BatchShortestPath(pairs);
  ASSERT_EQ(got.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(got[i].length, expected[i]) << "path length #" << i;
    if (expected[i] == kInfDist) {
      EXPECT_TRUE(got[i].nodes.empty());
    } else {
      EXPECT_TRUE(IsValidPath(g, got[i].nodes, pairs[i].first, pairs[i].second,
                              expected[i]))
          << "infeasible path #" << i;
    }
  }
}

// Batches on a disconnected graph: unreachable pairs must come back kInfDist
// from every worker.
TEST(ConcurrentEngineTest, BatchHandlesUnreachablePairs) {
  const Graph g = testing::MakeDisconnectedGraph(20, 29);
  const auto pairs = RandomPairs(g, 80, 7);
  const auto expected = ReferenceDistances(g, pairs);
  ConcurrentEngine engine(MakeOracle("fc", g), 4);
  EXPECT_EQ(engine.BatchDistance(pairs), expected);
}

TEST(ConcurrentEngineTest, LeasedSessionsAreIndependentAndRecycled) {
  const Graph g = testing::MakeRoadGraph(6, 3);
  ConcurrentEngine engine(MakeOracle("ch", g), 2);
  const Dist direct = engine.Distance(0, static_cast<NodeId>(g.NumNodes() - 1));
  {
    auto lease_a = engine.Lease();
    auto lease_b = engine.Lease();
    EXPECT_EQ(lease_a->Distance(0, static_cast<NodeId>(g.NumNodes() - 1)),
              direct);
    EXPECT_EQ(lease_b->Distance(0, static_cast<NodeId>(g.NumNodes() - 1)),
              direct);
  }
  // After the leases return to the pool the engine still answers (reusing
  // the pooled sessions) and paths agree with distances.
  const PathResult p =
      engine.ShortestPath(0, static_cast<NodeId>(g.NumNodes() - 1));
  EXPECT_EQ(p.length, direct);
}

// Many threads hammering the one-shot convenience API concurrently: every
// call leases from the shared pool, so this exercises pool locking and
// cross-thread session recycling (TSan-checked in CI).
TEST(ConcurrentEngineTest, ConcurrentOneShotQueriesAreConsistent) {
  const Graph g = testing::MakeRoadGraph(8, 17);
  const auto pairs = RandomPairs(g, 60, 9);
  const auto expected = ReferenceDistances(g, pairs);
  ConcurrentEngine engine(MakeOracle("ah", g));

  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<Dist>> got(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      got[w].reserve(pairs.size());
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        const std::size_t j = (i + w * 13) % pairs.size();
        got[w].push_back(engine.Distance(pairs[j].first, pairs[j].second));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (std::size_t w = 0; w < kThreads; ++w) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const std::size_t j = (i + w * 13) % pairs.size();
      ASSERT_EQ(got[w][i], expected[j]) << "thread " << w << " pair " << j;
    }
  }
}

}  // namespace
}  // namespace ah
