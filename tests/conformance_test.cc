// Cross-backend conformance: every DistanceOracle backend must answer every
// scenario exactly like the Dijkstra oracle — distances bit-identical, paths
// real (edge-by-edge feasible at the claimed length). This is the gate new
// backends and optimizations are merged through.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "api/distance_oracle.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "test_util.h"
#include "util/rng.h"

namespace ah {
namespace {

struct Scenario {
  const char* name;
  Graph (*make)();
};

Graph RandomScenario() { return testing::MakeRandomGraph(60, 180, 11); }
Graph RoadScenario() { return testing::MakeRoadGraph(10, 12); }
Graph DisconnectedScenario() { return testing::MakeDisconnectedGraph(30, 13); }
Graph SingleNodeScenario() { return testing::MakeSingleNodeGraph(); }
Graph ParallelArcScenario() { return testing::MakeParallelArcGraph(24, 14); }

const Scenario kScenarios[] = {
    {"random", RandomScenario},
    {"road", RoadScenario},
    {"disconnected", DisconnectedScenario},
    {"single_node", SingleNodeScenario},
    {"parallel_arc", ParallelArcScenario},
};

/// Query pairs to check: all pairs on tiny graphs, a deterministic sample
/// (plus the diagonal and a few far pairs) otherwise.
std::vector<std::pair<NodeId, NodeId>> QueryPairs(const Graph& g,
                                                  std::uint64_t seed) {
  const std::size_t n = g.NumNodes();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  if (n <= 12) {
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) pairs.emplace_back(s, t);
    }
    return pairs;
  }
  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                       static_cast<NodeId>(rng.Uniform(n)));
  }
  // Identity queries and the extreme ids (first/last node often hit
  // boundary behaviour in grid- and cluster-based structures).
  pairs.emplace_back(0, 0);
  pairs.emplace_back(static_cast<NodeId>(n - 1), static_cast<NodeId>(n - 1));
  pairs.emplace_back(0, static_cast<NodeId>(n - 1));
  pairs.emplace_back(static_cast<NodeId>(n - 1), 0);
  return pairs;
}

class ConformanceTest
    : public ::testing::TestWithParam<std::tuple<std::string, Scenario>> {};

TEST_P(ConformanceTest, MatchesDijkstraOracle) {
  const std::string& backend = std::get<0>(GetParam());
  const Scenario& scenario = std::get<1>(GetParam());
  const Graph g = scenario.make();
  ASSERT_GT(g.NumNodes(), 0u);

  std::unique_ptr<DistanceOracle> oracle = MakeOracle(backend, g);
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->Name(), backend);

  Dijkstra reference(g);
  std::size_t distance_mismatches = 0;
  for (const auto& [s, t] : QueryPairs(g, 99)) {
    const Dist ref = reference.Distance(s, t);
    const Dist got = oracle->Distance(s, t);
    if (got != ref) ++distance_mismatches;
    EXPECT_EQ(got, ref) << backend << ": d(" << s << ", " << t << ")";
  }
  EXPECT_EQ(distance_mismatches, 0u);

  // Path feasibility on a subset (path queries are strictly more expensive
  // for probe-based backends).
  Rng rng(7);
  std::vector<std::pair<NodeId, NodeId>> path_pairs = {
      {0, 0},
      {0, static_cast<NodeId>(g.NumNodes() - 1)},
  };
  for (int i = 0; i < 25; ++i) {
    path_pairs.emplace_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())),
                            static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  for (const auto& [s, t] : path_pairs) {
    const Dist ref = reference.Distance(s, t);
    const PathResult path = oracle->ShortestPath(s, t);
    ASSERT_EQ(path.length, ref)
        << backend << ": path length (" << s << ", " << t << ")";
    if (ref == kInfDist) {
      EXPECT_TRUE(path.nodes.empty())
          << backend << ": unreachable pair returned a node sequence";
    } else {
      EXPECT_TRUE(IsValidPath(g, path.nodes, s, t, ref))
          << backend << ": infeasible path (" << s << ", " << t << ")";
    }
  }

  // Every backend recovers paths natively (FC via shortcut midpoints since
  // PR 2); the O(k·Δ) probe fallback must stay unused.
  EXPECT_EQ(oracle->PathProbeCalls(), 0u)
      << backend << ": paths fell back to distance probes";
}

/// Deterministic source/target sets for the matrix sweep: every node on tiny
/// graphs, a seeded sample otherwise. Sources and targets overlap on purpose
/// (diagonal cells must be 0) and contain repeats on larger graphs (bucket
/// CSR must handle duplicate targets).
std::pair<std::vector<NodeId>, std::vector<NodeId>> MatrixLocations(
    const Graph& g, std::uint64_t seed) {
  const std::size_t n = g.NumNodes();
  if (n <= 12) {
    std::vector<NodeId> all(n);
    for (NodeId v = 0; v < n; ++v) all[v] = v;
    return {all, all};
  }
  Rng rng(seed);
  std::vector<NodeId> sources, targets;
  for (int i = 0; i < 9; ++i) {
    sources.push_back(static_cast<NodeId>(rng.Uniform(n)));
    targets.push_back(static_cast<NodeId>(rng.Uniform(n)));
  }
  sources.push_back(sources.front());  // duplicate source
  targets.push_back(targets.front());  // duplicate target
  targets.push_back(sources.front());  // shared node => zero diagonal cell
  return {sources, targets};
}

// The many-to-many surface must agree cell-for-cell with the Dijkstra
// oracle on every scenario — including disconnected graphs, where
// cross-component cells are kInfDist, and single-node graphs (1x1 matrix).
TEST_P(ConformanceTest, MatrixMatchesDijkstraOracle) {
  const std::string& backend = std::get<0>(GetParam());
  const Scenario& scenario = std::get<1>(GetParam());
  const Graph g = scenario.make();
  const auto [sources, targets] = MatrixLocations(g, 55);

  const std::unique_ptr<DistanceOracle> oracle = MakeOracle(backend, g);
  const std::vector<Dist> cells =
      oracle->DistanceMatrix(sources, targets, /*num_threads=*/1);
  ASSERT_EQ(cells.size(), sources.size() * targets.size()) << backend;

  Dijkstra reference(g);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t j = 0; j < targets.size(); ++j) {
      ASSERT_EQ(cells[i * targets.size() + j],
                reference.Distance(sources[i], targets[j]))
          << backend << ": matrix cell (" << sources[i] << ", " << targets[j]
          << ") on " << scenario.name;
    }
  }
}

std::string ParamName(
    const ::testing::TestParamInfo<ConformanceTest::ParamType>& info) {
  return std::get<0>(info.param) + "_" + std::get<1>(info.param).name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ConformanceTest,
    ::testing::Combine(::testing::ValuesIn(OracleNames()),
                       ::testing::ValuesIn(kScenarios)),
    ParamName);

// Concurrency scenario: one immutable index per backend, shared by several
// threads that each query through their own session (created concurrently,
// exercising NewSession()'s thread-safety too). Every thread walks the query
// pairs in a different order so the per-session timestamped search states
// desynchronize; all answers must match the single-threaded Dijkstra oracle.
// Run under TSan by the dedicated CI job.
TEST(ConformanceConcurrencyTest, SharedIndexServesParallelSessions) {
  const Graph g = testing::MakeRoadGraph(10, 12);
  Dijkstra reference(g);
  const auto pairs = QueryPairs(g, 77);
  std::vector<Dist> expected;
  expected.reserve(pairs.size());
  for (const auto& [s, t] : pairs) expected.push_back(reference.Distance(s, t));

  constexpr std::size_t kThreads = 4;
  for (const std::string& backend : OracleNames()) {
    const std::unique_ptr<DistanceOracle> oracle = MakeOracle(backend, g);
    std::vector<std::vector<Dist>> got(kThreads);
    std::vector<PathResult> sample_path(kThreads);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        const std::unique_ptr<QuerySession> session = oracle->NewSession();
        got[w].reserve(pairs.size());
        // Rotated start offset: thread w begins at pair w * 7.
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          const auto& [s, t] = pairs[(i + w * 7) % pairs.size()];
          got[w].push_back(session->Distance(s, t));
        }
        sample_path[w] = session->ShortestPath(
            pairs[w % pairs.size()].first, pairs[w % pairs.size()].second);
      });
    }
    for (std::thread& worker : workers) worker.join();

    for (std::size_t w = 0; w < kThreads; ++w) {
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        const std::size_t j = (i + w * 7) % pairs.size();
        ASSERT_EQ(got[w][i], expected[j])
            << backend << ": thread " << w << " d(" << pairs[j].first << ", "
            << pairs[j].second << ")";
      }
      const auto& [ps, pt] = pairs[w % pairs.size()];
      ASSERT_EQ(sample_path[w].length, expected[w % pairs.size()])
          << backend << ": thread " << w << " path length";
      if (sample_path[w].Found()) {
        EXPECT_TRUE(
            IsValidPath(g, sample_path[w].nodes, ps, pt, sample_path[w].length))
            << backend << ": thread " << w << " infeasible path";
      }
    }
  }
}

// Four threads share one immutable index and each run their own matrix
// request concurrently (inner parallelism pinned to 1 so the interleaving
// under test is the cross-request one). DistanceMatrix is const on the
// oracle, so concurrent calls must neither race nor perturb each other's
// answers. Runs under TSan via the dedicated CI job.
TEST(ConformanceConcurrencyTest, SharedIndexServesParallelMatrixQueries) {
  const Graph g = testing::MakeRoadGraph(10, 12);
  Dijkstra reference(g);
  constexpr std::size_t kThreads = 4;
  for (const std::string& backend : OracleNames()) {
    const std::unique_ptr<DistanceOracle> oracle = MakeOracle(backend, g);
    std::vector<std::vector<NodeId>> sources(kThreads), targets(kThreads);
    for (std::size_t w = 0; w < kThreads; ++w) {
      // Distinct per-thread location sets so threads cannot accidentally
      // pass by reading a sibling's result.
      Rng rng(100 + w);
      for (int i = 0; i < 7; ++i) {
        sources[w].push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
        targets[w].push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
      }
    }
    std::vector<std::vector<Dist>> got(kThreads);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        got[w] =
            oracle->DistanceMatrix(sources[w], targets[w], /*num_threads=*/1);
      });
    }
    for (std::thread& worker : workers) worker.join();

    for (std::size_t w = 0; w < kThreads; ++w) {
      ASSERT_EQ(got[w].size(), sources[w].size() * targets[w].size());
      for (std::size_t i = 0; i < sources[w].size(); ++i) {
        for (std::size_t j = 0; j < targets[w].size(); ++j) {
          ASSERT_EQ(got[w][i * targets[w].size() + j],
                    reference.Distance(sources[w][i], targets[w][j]))
              << backend << ": thread " << w << " matrix cell ("
              << sources[w][i] << ", " << targets[w][j] << ")";
        }
      }
    }
  }
}

// The paper's full pruned AH query and FC's proximity constraint assume
// road-like inputs; on those they must still be exact.
TEST(ConformancePrunedModesTest, AhPrunedMatchesDijkstraOnRoadGraph) {
  const Graph g = testing::MakeRoadGraph(12, 21);
  OracleOptions options;
  options.ah_pruned = true;
  std::unique_ptr<DistanceOracle> oracle = MakeOracle("ah", g, options);
  Dijkstra reference(g);
  for (const auto& [s, t] : QueryPairs(g, 31)) {
    ASSERT_EQ(oracle->Distance(s, t), reference.Distance(s, t))
        << "ah(pruned): d(" << s << ", " << t << ")";
  }
}

TEST(ConformancePrunedModesTest, FcProximityMatchesDijkstraOnRoadGraph) {
  const Graph g = testing::MakeRoadGraph(12, 22);
  OracleOptions options;
  options.fc_proximity = true;
  std::unique_ptr<DistanceOracle> oracle = MakeOracle("fc", g, options);
  Dijkstra reference(g);
  for (const auto& [s, t] : QueryPairs(g, 32)) {
    ASSERT_EQ(oracle->Distance(s, t), reference.Distance(s, t))
        << "fc(proximity): d(" << s << ", " << t << ")";
  }
  // Path queries must stay exact (Found() iff reachable) even with the
  // proximity heuristic on: paths go through the level-constraint-only
  // query.
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = reference.Distance(s, t);
    const PathResult p = oracle->ShortestPath(s, t);
    ASSERT_EQ(p.length, ref);
    ASSERT_EQ(p.Found(), ref != kInfDist);
    if (p.Found()) {
      EXPECT_TRUE(IsValidPath(g, p.nodes, s, t, ref));
    }
  }
  EXPECT_EQ(oracle->PathProbeCalls(), 0u)
      << "fc(proximity): paths fell back to distance probes";
}

TEST(OracleFactoryTest, NamesAreCanonicalAndComplete) {
  const std::vector<std::string> expected = {"dijkstra", "bidijkstra", "ch",
                                             "alt",      "silc",       "fc",
                                             "ah",       "hl"};
  EXPECT_EQ(OracleNames(), expected);
}

TEST(OracleFactoryTest, UnknownBackendThrows) {
  const Graph g = testing::MakeSingleNodeGraph();
  EXPECT_THROW(MakeOracle("astar-turbo", g), std::invalid_argument);
}

TEST(OracleFactoryTest, BuildStatsReportIndexFootprint) {
  const Graph g = testing::MakeRandomGraph(40, 120, 17);
  for (const char* name : {"ch", "alt", "silc", "fc", "ah", "hl"}) {
    std::unique_ptr<DistanceOracle> oracle = MakeOracle(name, g);
    EXPECT_GT(oracle->BuildStats().index_bytes, 0u) << name;
  }
  // Search-only backends carry no index.
  EXPECT_EQ(MakeOracle("dijkstra", g)->BuildStats().index_bytes, 0u);
  EXPECT_EQ(MakeOracle("bidijkstra", g)->BuildStats().index_bytes, 0u);
}

}  // namespace
}  // namespace ah
