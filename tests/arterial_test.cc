#include <gtest/gtest.h>

#include "arterial/arterial.h"
#include "arterial/dimension.h"
#include "arterial/local_paths.h"
#include "graph/builder.h"
#include "graph/light_graph.h"
#include "test_util.h"

namespace ah {
namespace {

// A horizontal corridor of 8 nodes spaced one cell apart on a 8x8 grid
// (cells of size 10): nodes at x = 5, 15, ..., 75, y = 35.
struct Corridor {
  Graph graph;
  SquareGrid grid{0, 0, 80, 8};

  static Corridor Make() {
    GraphBuilder b(8);
    for (int i = 0; i < 8; ++i) {
      b.AddNode(Point{static_cast<std::int32_t>(5 + 10 * i), 35});
    }
    for (NodeId v = 0; v + 1 < 8; ++v) b.AddBidirectional(v, v + 1, 10);
    return Corridor{b.Build(), SquareGrid(0, 0, 80, 8)};
  }
};

TEST(WindowProcessorTest, FindsArterialEdgeOnCorridor) {
  Corridor c = Corridor::Make();
  const LightGraph lg = LightGraph::FromGraph(c.graph);
  const Nuance nuance(1);
  WindowProcessor processor(lg, c.graph.Coords(), nuance);

  std::vector<NodeId> all = {0, 1, 2, 3, 4, 5, 6, 7};
  const CellIndex cells(c.grid, c.graph.Coords(), all);
  // Window over cells [0..3] x [2..5]: nodes 0..3 inside, bisector between
  // cells 1 and 2 — the spanning path 0→3 crosses via edge 1→2.
  const Window w{0, 2};
  const auto edges = processor.Process(c.grid, w, cells);
  bool found_12 = false;
  for (const ArterialEdge& e : edges) {
    if ((e.tail == 1 && e.head == 2) || (e.tail == 2 && e.head == 1)) {
      found_12 = true;
      EXPECT_EQ(e.axis, BisectorAxis::kVertical);
    }
  }
  EXPECT_TRUE(found_12);
}

TEST(WindowProcessorTest, NoSpanningPathWithoutOppositeStrips) {
  Corridor c = Corridor::Make();
  const LightGraph lg = LightGraph::FromGraph(c.graph);
  const Nuance nuance(1);
  WindowProcessor processor(lg, c.graph.Coords(), nuance);
  // Only nodes 1 and 2 active: both in the middle columns of window {0,2},
  // so no qualified endpoints exist.
  std::vector<NodeId> mid = {1, 2};
  const CellIndex cells(c.grid, c.graph.Coords(), mid);
  EXPECT_TRUE(processor.Process(c.grid, Window{0, 2}, cells).empty());
}

TEST(WindowProcessorTest, EmptyWindowYieldsNothing) {
  Corridor c = Corridor::Make();
  const LightGraph lg = LightGraph::FromGraph(c.graph);
  const Nuance nuance(1);
  WindowProcessor processor(lg, c.graph.Coords(), nuance);
  std::vector<NodeId> all = {0, 1, 2, 3, 4, 5, 6, 7};
  const CellIndex cells(c.grid, c.graph.Coords(), all);
  EXPECT_TRUE(processor.Process(c.grid, Window{0, 4}, cells).empty());
}

TEST(WindowProcessorTest, VerticalCorridorYieldsHorizontalAxisEdge) {
  GraphBuilder b(8);
  for (int i = 0; i < 8; ++i) {
    b.AddNode(Point{35, static_cast<std::int32_t>(5 + 10 * i)});
  }
  for (NodeId v = 0; v + 1 < 8; ++v) b.AddBidirectional(v, v + 1, 10);
  Graph g = b.Build();
  const SquareGrid grid(0, 0, 80, 8);
  const LightGraph lg = LightGraph::FromGraph(g);
  const Nuance nuance(1);
  WindowProcessor processor(lg, g.Coords(), nuance);
  std::vector<NodeId> all = {0, 1, 2, 3, 4, 5, 6, 7};
  const CellIndex cells(grid, g.Coords(), all);
  const auto edges = processor.Process(grid, Window{2, 0}, cells);
  ASSERT_FALSE(edges.empty());
  for (const ArterialEdge& e : edges) {
    EXPECT_EQ(e.axis, BisectorAxis::kHorizontal);
  }
}

TEST(WindowProcessorTest, DisconnectedStripsYieldNothing) {
  // Nodes in west and east strips but no edges between them.
  GraphBuilder b(2);
  b.AddNode({5, 35});
  b.AddNode({75, 35});
  Graph g = b.Build();
  const SquareGrid grid(0, 0, 80, 8);
  const LightGraph lg = LightGraph::FromGraph(g);
  const Nuance nuance(1);
  WindowProcessor processor(lg, g.Coords(), nuance);
  std::vector<NodeId> all = {0, 1};
  const CellIndex cells(grid, g.Coords(), all);
  EXPECT_TRUE(processor.Process(grid, Window{0, 2}, cells).empty());
}

TEST(WindowProcessorTest, DeterministicAcrossRuns) {
  Graph g = testing::MakeRoadGraph(20, 21);
  const SquareGrid grid = SquareGrid::Covering(g.BoundingBox(), 16);
  const LightGraph lg = LightGraph::FromGraph(g);
  const Nuance nuance(3);
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) all[v] = v;
  const CellIndex cells(grid, g.Coords(), all);
  WindowProcessor p1(lg, g.Coords(), nuance);
  WindowProcessor p2(lg, g.Coords(), nuance);
  for (const Window& w : EnumerateWindows(grid, cells)) {
    const auto e1 = p1.Process(grid, w, cells);
    const auto e2 = p2.Process(grid, w, cells);
    ASSERT_EQ(e1.size(), e2.size());
    for (std::size_t i = 0; i < e1.size(); ++i) {
      EXPECT_EQ(e1[i], e2[i]);
    }
  }
}

TEST(DimensionTest, SmallLambdaOnRoadNetwork) {
  Graph g = testing::MakeRoadGraph(40, 13);
  const auto rows = MeasureArterialDimension(g, 3, 6, 2000, 1);
  ASSERT_EQ(rows.size(), 4u);
  for (const DimensionRow& row : rows) {
    EXPECT_GT(row.windows, 0u);
    EXPECT_LE(row.mean, row.q90 + 1e-9);
    EXPECT_LE(row.q90, row.q99 + 1e-9);
    EXPECT_LE(row.q99, row.max + 1e-9);
    // The headline claim of Figure 3: arterial dimension stays small.
    EXPECT_LT(row.max, 120.0);
  }
}

TEST(DimensionTest, SamplingCapRespected) {
  Graph g = testing::MakeRoadGraph(30, 14);
  const auto rows = MeasureArterialDimension(g, 5, 5, 10, 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_LE(rows[0].sampled, 10u);
  EXPECT_GE(rows[0].windows, rows[0].sampled);
}

TEST(ArterialLevelsTest, LevelsWithinRangeAndArterialEndpointsRaised) {
  Graph g = testing::MakeRoadGraph(16, 15);
  GridHierarchy gh(g.Coords(), 8);
  const Nuance nuance(2);
  const ArterialLevels levels = ComputeArterialLevels(g, gh, nuance);
  ASSERT_EQ(levels.node_level.size(), g.NumNodes());
  ASSERT_EQ(levels.arterial_per_level.size(),
            static_cast<std::size_t>(gh.Depth()));
  for (Level lv : levels.node_level) {
    EXPECT_GE(lv, 0);
    EXPECT_LE(lv, gh.Depth());
  }
  for (std::int32_t i = 1; i <= gh.Depth(); ++i) {
    for (const ArterialEdge& e : levels.arterial_per_level[i - 1]) {
      EXPECT_GE(levels.node_level[e.tail], i);
      EXPECT_GE(levels.node_level[e.head], i);
    }
  }
  // Some structure must emerge: not all nodes at level 0.
  std::size_t nonzero = 0;
  for (Level lv : levels.node_level) nonzero += lv > 0;
  EXPECT_GT(nonzero, 0u);
  EXPECT_LT(nonzero, g.NumNodes());  // And not everything promoted.
}

}  // namespace
}  // namespace ah
