// Label-gated stress tier: randomized conformance plus swap-under-load on a
// ~50k-node road network — an order of magnitude above the unit-test
// graphs, sized to shake out scale-dependent bugs the small property tests
// cannot see. Gated behind the AH_STRESS env var so tier-1 (`ctest`)
// reports it as a fast skip; run the real thing with
//   AH_STRESS=1 ctest -L stress
// (the CI workflow_dispatch `stress` job does exactly that). AH_STRESS_SIDE
// overrides the grid side (default 224 -> ~50k nodes).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/concurrent_engine.h"
#include "api/index_registry.h"
#include "gen/road_gen.h"
#include "graph/weight_update.h"
#include "perturb/traffic_feed.h"
#include "routing/dijkstra.h"
#include "server/binary_protocol.h"
#include "server/line_client.h"
#include "server/protocol.h"
#include "server/server_stack.h"
#include "server/tcp_server.h"
#include "util/rng.h"

namespace ah {
namespace {

bool StressEnabled() { return std::getenv("AH_STRESS") != nullptr; }

std::uint32_t GridSide() {
  if (const char* raw = std::getenv("AH_STRESS_SIDE")) {
    const long v = std::strtol(raw, nullptr, 10);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  return 224;  // ~50k nodes
}

Graph MakeStressGraph() {
  RoadGenParams params;
  params.cols = params.rows = GridSide();
  params.seed = 50331;
  return GenerateRoadNetwork(params);
}

#define SKIP_UNLESS_STRESS()                                            \
  do {                                                                  \
    if (!StressEnabled()) {                                             \
      GTEST_SKIP() << "stress tier disabled (set AH_STRESS=1; run via " \
                      "`AH_STRESS=1 ctest -L stress`)";                 \
    }                                                                   \
  } while (0)

// Randomized conformance at ~50k nodes: ch, alt, and hl cross-checked
// against the Dijkstra oracle on uniform random pairs (distances) and a
// path-feasibility spot check. hl also exercises the round-synchronous
// parallel label build at a scale where the chunk window genuinely gates
// memory.
TEST(StressTier, RandomizedConformanceAt50kNodes) {
  SKIP_UNLESS_STRESS();
  const Graph g = MakeStressGraph();
  // ~one node per grid cell at the default side of 224 (≈ 50k nodes).
  ASSERT_GT(g.NumNodes(), static_cast<std::size_t>(GridSide()) * GridSide() / 2);
  Dijkstra reference(g);
  Rng rng(7);
  std::vector<QueryPair> pairs;
  for (int i = 0; i < 200; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())),
                       static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  for (const char* backend : {"ch", "alt", "hl"}) {
    SCOPED_TRACE(backend);
    auto oracle = MakeOracle(backend, g);
    auto session = oracle->NewSession();
    for (const auto& [s, t] : pairs) {
      ASSERT_EQ(session->Distance(s, t), reference.Distance(s, t))
          << "d(" << s << ", " << t << ")";
    }
    // Paths: spot-check length agreement on a subset (feasibility is
    // asserted exhaustively by the small-graph conformance suite).
    for (std::size_t i = 0; i < pairs.size(); i += 10) {
      const PathResult p = session->ShortestPath(pairs[i].first,
                                                 pairs[i].second);
      ASSERT_EQ(p.length, reference.Distance(pairs[i].first, pairs[i].second));
    }
  }
}

// Swap under load at scale: concurrent clients hammer a two-backend
// registry while a weight delta triggers a background rebuild + hot swap.
// Every reply must be exact on the pre- or post-update graph; after the
// swap settles, every backend must answer the updated graph exactly.
TEST(StressTier, HotSwapUnderConcurrentLoadAt50kNodes) {
  SKIP_UNLESS_STRESS();
  Graph g = MakeStressGraph();
  const NodeId via = g.OutArcs(0)[0].head;
  const Weight new_weight =
      static_cast<Weight>(g.OutArcs(0)[0].weight * 1000 + 1);
  Graph updated = g;
  updated.SetArcWeight(0, via, new_weight);
  Dijkstra before(g);
  Dijkstra after(updated);

  Rng rng(13);
  std::vector<QueryPair> probes;
  std::vector<Dist> old_expected;
  std::vector<Dist> new_expected;
  for (int i = 0; i < 64; ++i) {
    const QueryPair pair{static_cast<NodeId>(rng.Uniform(g.NumNodes())),
                         static_cast<NodeId>(rng.Uniform(g.NumNodes()))};
    probes.push_back(pair);
    old_expected.push_back(before.Distance(pair.first, pair.second));
    new_expected.push_back(after.Distance(pair.first, pair.second));
  }

  auto registry =
      std::make_shared<IndexRegistry>(std::move(g), std::vector<std::string>{
                                                        "ch", "alt"});
  ConcurrentEngine engine(registry, 4);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad{0};
  std::atomic<std::size_t> answered{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const std::string backend = c % 2 == 0 ? "ch" : "alt";
      std::size_t i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t j = i++ % probes.size();
        const Dist d =
            engine.Lease(backend)->Distance(probes[j].first, probes[j].second);
        answered.fetch_add(1, std::memory_order_relaxed);
        if (d != old_expected[j] && d != new_expected[j]) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ASSERT_EQ(registry->QueueWeightUpdate(0, via, new_weight),
            IndexRegistry::UpdateStatus::kQueued);
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  for (const char* backend : {"ch", "alt"}) {
    auto lease = engine.Lease(backend);
    EXPECT_EQ(lease.epoch().generation, 2u) << backend;
    for (std::size_t j = 0; j < probes.size(); ++j) {
      ASSERT_EQ(lease->Distance(probes[j].first, probes[j].second),
                new_expected[j])
          << backend << " probe " << j;
    }
  }
}

// The live-churn acceptance scenario: a continuous traffic feed perturbs
// ~1% of arcs per batch while clients keep querying. Reload requests are
// rate-limited so back-to-back batches coalesce into bounded rebuild
// cycles, every rebuild takes the frozen-order incremental path (no
// fallbacks), no query is ever dropped, and after each swap the published
// epoch answers exactly for the graph snapshot it was built from.
TEST(StressTier, ContinuousChurnSustainsCoalescedIncrementalReloads) {
  SKIP_UNLESS_STRESS();
  Graph g = MakeStressGraph();
  TrafficFeedParams feed_params;
  feed_params.batch_fraction = 0.01;  // >= 1% of arcs per batch.
  TrafficFeed feed(g, feed_params);

  auto registry = std::make_shared<IndexRegistry>(
      g, std::vector<std::string>{"ch"});
  registry->SetMinReloadInterval(std::chrono::milliseconds(100));
  ConcurrentEngine engine(registry, 4);

  // Clients hammer the current epoch for the whole run; zero downtime
  // means every lease yields a serving epoch and every query completes.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> answered{0};
  std::atomic<std::size_t> unreachable{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      const std::size_t n = registry->NumNodes();
      while (!stop.load(std::memory_order_relaxed)) {
        auto lease = engine.Lease("ch");
        const Dist d = lease->Distance(static_cast<NodeId>(rng.Uniform(n)),
                                       static_cast<NodeId>(rng.Uniform(n)));
        if (d == kInfDist) unreachable.fetch_add(1, std::memory_order_relaxed);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Feed 8 batches; the rate limit makes several requests land inside a
  // hold-off window and coalesce.
  constexpr int kBatches = 8;
  for (int round = 0; round < kBatches; ++round) {
    const std::vector<WeightDelta> batch = feed.NextBatch();
    ASSERT_EQ(registry->QueueWeightUpdates(batch),
              IndexRegistry::UpdateStatus::kQueued);
    ASSERT_TRUE(registry->RequestReload());
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  registry->WaitForRebuild();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();

  const IndexRegistry::RegistryStats stats = registry->GetStats();
  EXPECT_GE(stats.reloads, 1u);
  EXPECT_LT(stats.reloads, static_cast<std::uint64_t>(kBatches))
      << "rate limit should coalesce back-to-back reload requests";
  EXPECT_EQ(stats.pending_updates, 0u);
  ASSERT_EQ(stats.backend_rebuilds.size(), 1u);
  EXPECT_EQ(stats.backend_rebuilds[0].incremental, stats.reloads)
      << "every cycle must take the frozen-order path";
  EXPECT_EQ(stats.backend_rebuilds[0].fallbacks, 0u);
  EXPECT_TRUE(stats.last_error.empty()) << stats.last_error;
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(unreachable.load(), 0u) << "grid graphs are strongly connected";

  // Conformance: the surviving epoch must answer exactly for the graph
  // snapshot it was built from (the epoch carries that snapshot).
  const EpochHandle epoch = registry->Current("ch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->generation, stats.reloads + 1);
  Dijkstra reference(*epoch->graph);
  auto session = epoch->NewSession();
  Rng rng(99);
  for (int i = 0; i < 32; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(epoch->graph->NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(epoch->graph->NumNodes()));
    ASSERT_EQ(session->Distance(s, t), reference.Distance(s, t))
        << "d(" << s << ", " << t << ")";
  }
}

// Production-scale serving: a ~million-node road network (ROADMAP item 4's
// open debt) behind the full TCP stack, driven over both wire protocols.
// Every v2 reply must render to exactly the v1 text — the framing layer is
// the thing under test here; conformance at scale is the 50k tier's job —
// and the measured throughput is printed so dispatch runs record
// production-scale serve numbers instead of asserting them. Node count is
// overridable (AH_STRESS_SERVE_NODES) so the scenario can be smoked at
// small scale.
TEST(StressTier, MillionNodeServeCrossProtocol) {
  SKIP_UNLESS_STRESS();
  using namespace ah::server;
  std::size_t target_nodes = 1'000'000;
  if (const char* raw = std::getenv("AH_STRESS_SERVE_NODES")) {
    const long v = std::strtol(raw, nullptr, 10);
    if (v > 0) target_nodes = static_cast<std::size_t>(v);
  }
  Graph g = GenerateRoadNetwork(ParamsForTargetNodes(target_nodes, 20130624));
  ASSERT_GE(g.NumNodes(), target_nodes * 4 / 5);
  const std::size_t n = g.NumNodes();

  // Sanity anchor: the served backend must agree with Dijkstra on a few
  // pairs (full randomized conformance at scale lives in the 50k test).
  // Expectations are computed before the graph moves into the registry.
  Rng rng(20130624);
  std::vector<QueryPair> spot;
  std::vector<Dist> spot_expected;
  {
    Dijkstra reference(g);
    for (int i = 0; i < 3; ++i) {
      spot.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                        static_cast<NodeId>(rng.Uniform(n)));
      spot_expected.push_back(reference.Distance(spot.back().first,
                                                 spot.back().second));
    }
  }

  auto registry = std::make_shared<IndexRegistry>(
      std::move(g), std::vector<std::string>{"ch"});
  ServerStack stack(registry);
  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  {
    auto lease = stack.engine().Lease("ch");
    for (std::size_t i = 0; i < spot.size(); ++i) {
      ASSERT_EQ(lease->Distance(spot[i].first, spot[i].second),
                spot_expected[i])
          << "d(" << spot[i].first << ", " << spot[i].second << ")";
    }
  }

  LineClient v1;
  ASSERT_TRUE(v1.Connect(tcp.Port()));
  std::string banner;
  ASSERT_TRUE(v1.ReadLine(&banner));
  BinaryClient v2;
  ASSERT_TRUE(v2.Connect(tcp.Port()));
  ASSERT_EQ(v2.nodes(), n);

  // Point, batch, and matrix queries over uniform random nodes — the same
  // request mix fig_serve measures, here at production scale.
  std::vector<std::string> queries;
  for (int i = 0; i < 256; ++i) {
    queries.push_back("d " + std::to_string(rng.Uniform(n)) + " " +
                      std::to_string(rng.Uniform(n)));
  }
  {
    std::string batch = "b 256";
    for (int i = 0; i < 256; ++i) {
      batch += " " + std::to_string(rng.Uniform(n)) + " " +
               std::to_string(rng.Uniform(n));
    }
    queries.push_back(std::move(batch));
    std::string matrix = "m 24 24";
    for (int i = 0; i < 48; ++i) matrix += " " + std::to_string(rng.Uniform(n));
    queries.push_back(std::move(matrix));
  }

  const auto v1_start = std::chrono::steady_clock::now();
  std::vector<std::string> v1_replies;
  for (const std::string& query : queries) {
    std::string line;
    ASSERT_TRUE(v1.SendLine(query));
    ASSERT_TRUE(v1.ReadLine(&line)) << query;
    v1_replies.push_back(std::move(line));
  }
  const double v1_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - v1_start)
          .count();

  const auto v2_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ParseResult parsed = ParseRequest(queries[i], stack.Limits());
    ASSERT_TRUE(parsed.ok) << queries[i];
    const std::uint64_t id = v2.SendRequest(
        OpcodeForKind(parsed.request.kind), EncodeRequestBody(parsed.request));
    ASSERT_NE(id, 0u);
    BinaryClient::Frame frame;
    ASSERT_TRUE(v2.ReadReplyFor(id, &frame));
    EXPECT_EQ(frame.header.status, kStatusOk) << queries[i];
    ASSERT_EQ(ReplyFrameToText(frame.header, frame.payload), v1_replies[i])
        << queries[i];
  }
  const double v2_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - v2_start)
          .count();

  std::printf("serve @ %zu nodes: v1 %.0f req/s, v2 %.0f req/s "
              "(%zu requests, serialized round trips)\n",
              n, static_cast<double>(queries.size()) / v1_s,
              static_cast<double>(queries.size()) / v2_s, queries.size());

  v1.SendLine("q");
  const std::uint64_t quit_id = v2.SendRequest(Opcode::kQuit, {});
  BinaryClient::Frame frame;
  ASSERT_TRUE(v2.ReadReplyFor(quit_id, &frame));
  EXPECT_TRUE(v2.AtEof());
  tcp.Stop();
}

}  // namespace
}  // namespace ah
