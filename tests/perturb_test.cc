#include <gtest/gtest.h>

#include <unordered_set>

#include "perturb/perturb.h"

namespace ah {
namespace {

TEST(NuanceTest, Deterministic) {
  Nuance a(5), b(5);
  EXPECT_EQ(a.ArcNuance(1, 2), b.ArcNuance(1, 2));
}

TEST(NuanceTest, SeedChangesValues) {
  Nuance a(5), b(6);
  int equal = 0;
  for (NodeId u = 0; u < 50; ++u) equal += a.ArcNuance(u, u + 1) ==
                                           b.ArcNuance(u, u + 1);
  EXPECT_LT(equal, 3);
}

TEST(NuanceTest, WithinRange) {
  Nuance n(1);
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_LT(n.ArcNuance(u, u * 31 + 7), 1ULL << 40);
  }
}

TEST(NuanceTest, DirectionalAsymmetry) {
  Nuance n(3);
  EXPECT_NE(n.ArcNuance(1, 2), n.ArcNuance(2, 1));
}

TEST(NuanceTest, MostlyCollisionFree) {
  Nuance n(9);
  std::unordered_set<std::uint64_t> seen;
  int collisions = 0;
  for (NodeId u = 0; u < 200; ++u) {
    for (NodeId v = 0; v < 50; ++v) {
      collisions += !seen.insert(n.ArcNuance(u, v)).second;
    }
  }
  EXPECT_LE(collisions, 1);
}

TEST(TieDistTest, LexicographicOrder) {
  const TieDist a{10, 5};
  const TieDist b{10, 6};
  const TieDist c{11, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a == a);
}

TEST(TieDistTest, PlusAccumulates) {
  const TieDist a{10, 5};
  const TieDist b = a.Plus(3, 7);
  EXPECT_EQ(b.length, 13u);
  EXPECT_EQ(b.nuance, 12u);
}

TEST(TieDistTest, DefaultIsInfinite) {
  const TieDist d;
  EXPECT_EQ(d.length, kInfDist);
}

}  // namespace
}  // namespace ah
