#include <gtest/gtest.h>

#include "core/ah_query.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace ah {
namespace {

class AhExactSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AhExactSeedTest, ExactModeMatchesDijkstraOnArbitraryGraphs) {
  // kExact must be correct even on graphs that violate the arterial-
  // dimension assumption entirely.
  Graph g = testing::MakeRandomGraph(180, 540, GetParam());
  AhIndex index = AhIndex::Build(g);
  AhQuery query(index, AhQueryOptions{.mode = AhQueryMode::kExact});
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 50; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "seed=" << GetParam() << " s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AhExactSeedTest,
                         ::testing::Values(1, 2, 3, 17, 99));

class AhPrunedSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AhPrunedSeedTest, PrunedModeMatchesDijkstraOnRoadGraphs) {
  // THE core correctness claim: the paper's full query algorithm (rank +
  // proximity + elevating jumps) is exact on road networks.
  Graph g = testing::MakeRoadGraph(26, GetParam());
  AhIndex index = AhIndex::Build(g);
  AhQuery query(index);  // kPruned defaults.
  Dijkstra dijkstra(g);
  Rng rng(GetParam() * 7 + 1);
  for (int q = 0; q < 120; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "seed=" << GetParam() << " s=" << s << " t=" << t;
  }
}

TEST_P(AhPrunedSeedTest, ProximityOnlyMatchesDijkstra) {
  Graph g = testing::MakeRoadGraph(22, GetParam() ^ 0xa5);
  AhIndex index = AhIndex::Build(g);
  AhQueryOptions options;
  options.use_elevating = false;
  AhQuery query(index, options);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 80; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(AhPrunedSeedTest, ElevatingOnlyMatchesDijkstra) {
  Graph g = testing::MakeRoadGraph(22, GetParam() ^ 0x5a);
  AhIndex index = AhIndex::Build(g);
  AhQueryOptions options;
  options.use_proximity = false;
  AhQuery query(index, options);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 80; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(AhPrunedSeedTest, PathsValidAndOptimalInBothModes) {
  Graph g = testing::MakeRoadGraph(20, GetParam() + 11);
  AhIndex index = AhIndex::Build(g);
  AhQuery exact(index, AhQueryOptions{.mode = AhQueryMode::kExact});
  AhQuery pruned(index);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    const PathResult pe = exact.Path(s, t);
    ASSERT_EQ(pe.length, ref) << "exact s=" << s << " t=" << t;
    const PathResult pp = pruned.Path(s, t);
    ASSERT_EQ(pp.length, ref) << "pruned s=" << s << " t=" << t;
    if (ref == kInfDist) continue;
    EXPECT_TRUE(IsValidPath(g, pe.nodes, s, t, ref));
    EXPECT_TRUE(IsValidPath(g, pp.nodes, s, t, ref))
        << "pruned path invalid s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AhPrunedSeedTest,
                         ::testing::Values(4, 5, 6, 23, 71));

TEST(AhQueryTest, SelfQuery) {
  Graph g = testing::MakeRoadGraph(12, 1);
  AhIndex index = AhIndex::Build(g);
  AhQuery query(index);
  EXPECT_EQ(query.Distance(3, 3), 0u);
  const PathResult p = query.Path(3, 3);
  EXPECT_EQ(p.length, 0u);
  EXPECT_EQ(p.nodes, std::vector<NodeId>{3});
}

TEST(AhQueryTest, PrunedSettlesFewerNodesThanExactOnLongQueries) {
  Graph g = testing::MakeRoadGraph(36, 2);
  AhIndex index = AhIndex::Build(g);
  AhQuery exact(index, AhQueryOptions{.mode = AhQueryMode::kExact});
  AhQuery pruned(index);
  // A long corner-to-corner query: the pruned search should do less work
  // on average.
  Rng rng(2);
  std::size_t exact_settled = 0;
  std::size_t pruned_settled = 0;
  for (int q = 0; q < 30; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes() / 8));
    const NodeId t = static_cast<NodeId>(g.NumNodes() - 1 -
                                         rng.Uniform(g.NumNodes() / 8));
    const Dist de = exact.Distance(s, t);
    exact_settled += exact.LastStats().settled;
    const Dist dp = pruned.Distance(s, t);
    pruned_settled += pruned.LastStats().settled;
    ASSERT_EQ(de, dp);
  }
  EXPECT_LT(pruned_settled, exact_settled);
}

TEST(AhQueryTest, WorksWithoutGateways) {
  Graph g = testing::MakeRoadGraph(18, 3);
  AhParams params;
  params.build_gateways = false;
  AhIndex index = AhIndex::Build(g, params);
  AhQuery query(index);  // Elevating enabled but no lists: falls back.
  Dijkstra dijkstra(g);
  Rng rng(3);
  for (int q = 0; q < 60; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t));
  }
}

TEST(AhQueryTest, OneWayStreetsHandled) {
  // Directed correctness: d(s,t) may differ from d(t,s).
  Graph g = testing::MakeRoadGraph(20, 4);
  AhIndex index = AhIndex::Build(g);
  AhQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(4);
  int asymmetric = 0;
  for (int q = 0; q < 60; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist fwd = query.Distance(s, t);
    const Dist bwd = query.Distance(t, s);
    ASSERT_EQ(fwd, dijkstra.Distance(s, t));
    ASSERT_EQ(bwd, dijkstra.Distance(t, s));
    asymmetric += fwd != bwd;
  }
  EXPECT_GT(asymmetric, 0);  // One-way streets must exist somewhere.
}

TEST(AhQueryTest, LongRangeQueriesUseElevation) {
  Graph g = testing::MakeRoadGraph(30, 5);
  AhIndex index = AhIndex::Build(g);
  // Far-apart pair: the jump level must be positive.
  NodeId s = 0, t = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (LInfDistance(index.Coord(v), index.Coord(0)) >
        LInfDistance(index.Coord(t), index.Coord(0))) {
      t = v;
    }
  }
  EXPECT_GT(index.QueryJumpLevel(s, t), 0);
  AhQuery query(index);
  Dijkstra dijkstra(g);
  EXPECT_EQ(query.Distance(s, t), dijkstra.Distance(s, t));
}

}  // namespace
}  // namespace ah
