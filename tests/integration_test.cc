// End-to-end: generate a catalog dataset, round-trip it through DIMACS
// files, build every index, and check that all of them agree with Dijkstra
// on a distance-stratified workload — the full pipeline every benchmark
// binary runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "fc/fc_index.h"
#include "gen/catalog.h"
#include "graph/dimacs.h"
#include "routing/bidirectional.h"
#include "routing/dijkstra.h"
#include "silc/silc_index.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace ah {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const DatasetSpec spec = *FindDataset("DE");
    graph_ = new Graph(MakeScaledDataset(spec, 1.0 / 128.0));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  static Graph* graph_;
};

Graph* PipelineTest::graph_ = nullptr;

TEST_F(PipelineTest, AllIndexesAgreeOnWorkload) {
  const Graph& g = *graph_;
  WorkloadParams wparams;
  wparams.pairs_per_set = 8;
  const Workload workload = GenerateWorkload(g, wparams);

  Dijkstra dijkstra(g);
  BidirectionalDijkstra bidir(g);
  ChIndex ch = ChIndex::Build(g);
  ChQuery ch_query(ch);
  AhIndex ah = AhIndex::Build(g);
  AhQuery ah_pruned(ah);
  AhQuery ah_exact(ah, AhQueryOptions{.mode = AhQueryMode::kExact});
  SilcIndex silc = SilcIndex::Build(g);
  FcIndex fc = FcIndex::Build(g);
  FcQuery fc_query(fc);

  for (const QuerySet& qs : workload.sets) {
    for (const auto& [s, t] : qs.pairs) {
      const Dist ref = dijkstra.Distance(s, t);
      ASSERT_EQ(bidir.Distance(s, t), ref) << "bidir " << s << "->" << t;
      ASSERT_EQ(ch_query.Distance(s, t), ref) << "ch " << s << "->" << t;
      ASSERT_EQ(ah_pruned.Distance(s, t), ref) << "ah " << s << "->" << t;
      ASSERT_EQ(ah_exact.Distance(s, t), ref) << "ah-ex " << s << "->" << t;
      ASSERT_EQ(silc.Distance(s, t), ref) << "silc " << s << "->" << t;
      ASSERT_EQ(fc_query.Distance(s, t), ref) << "fc " << s << "->" << t;
    }
  }
}

TEST_F(PipelineTest, PathQueriesAgreeAcrossIndexes) {
  const Graph& g = *graph_;
  ChIndex ch = ChIndex::Build(g);
  ChQuery ch_query(ch);
  AhIndex ah = AhIndex::Build(g);
  AhQuery ah_query(ah);
  SilcIndex silc = SilcIndex::Build(g);
  Dijkstra dijkstra(g);
  Rng rng(77);
  for (int q = 0; q < 30; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    if (ref == kInfDist) continue;
    const PathResult pc = ch_query.Path(s, t);
    const PathResult pa = ah_query.Path(s, t);
    const PathResult ps = silc.Path(s, t);
    ASSERT_TRUE(IsValidPath(g, pc.nodes, s, t, ref));
    ASSERT_TRUE(IsValidPath(g, pa.nodes, s, t, ref));
    ASSERT_TRUE(IsValidPath(g, ps.nodes, s, t, ref));
  }
}

TEST_F(PipelineTest, DimacsRoundTripPreservesQueries) {
  const Graph& g = *graph_;
  std::ostringstream gr, co;
  WriteDimacsGraph(g, gr);
  WriteDimacsCoords(g, co);
  std::istringstream gri(gr.str()), coi(co.str());
  Graph g2 = ReadDimacs(gri, coi);

  Dijkstra d1(g);
  Dijkstra d2(g2);
  Rng rng(5);
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(d1.Distance(s, t), d2.Distance(s, t));
  }
}

TEST_F(PipelineTest, IndexFootprintsOrdered) {
  const Graph& g = *graph_;
  ChIndex ch = ChIndex::Build(g);
  AhIndex ah = AhIndex::Build(g);
  SilcIndex silc = SilcIndex::Build(g);
  // The paper's Figure 10a shape: CH smallest, AH moderate, SILC largest.
  EXPECT_LE(ch.SizeBytes(), ah.SizeBytes());
  EXPECT_LT(ah.SizeBytes(), silc.SizeBytes());
}

}  // namespace
}  // namespace ah
