#include <gtest/gtest.h>

#include "core/ah_index.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace ah {
namespace {

TEST(AhIndexTest, BuildStatsPopulated) {
  Graph g = testing::MakeRoadGraph(20, 1);
  AhIndex index = AhIndex::Build(g);
  const AhBuildStats& stats = index.build_stats();
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.shortcuts, 0u);
  EXPECT_GT(stats.grid_depth, 0);
  EXPECT_GE(stats.max_level, 1);
  EXPECT_EQ(stats.nodes_per_level.size(),
            static_cast<std::size_t>(stats.max_level) + 1);
  std::size_t total = 0;
  for (std::size_t c : stats.nodes_per_level) total += c;
  EXPECT_EQ(total, g.NumNodes());
  EXPECT_GT(index.SizeBytes(), 0u);
}

TEST(AhIndexTest, RanksRespectLevels) {
  Graph g = testing::MakeRoadGraph(16, 2);
  AhIndex index = AhIndex::Build(g);
  const SearchGraph& sg = index.search_graph();
  for (NodeId a = 0; a < g.NumNodes(); ++a) {
    for (NodeId b = a + 1; b < g.NumNodes(); ++b) {
      if (index.LevelOf(a) < index.LevelOf(b)) {
        EXPECT_LT(sg.RankOf(a), sg.RankOf(b));
      } else if (index.LevelOf(a) > index.LevelOf(b)) {
        EXPECT_GT(sg.RankOf(a), sg.RankOf(b));
      }
    }
  }
}

TEST(AhIndexTest, GatewaysOutrankOwnerAndReachTargetLevels) {
  Graph g = testing::MakeRoadGraph(24, 3);
  AhIndex index = AhIndex::Build(g);
  const SearchGraph& sg = index.search_graph();
  std::size_t level_hits = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (Level j = index.LevelOf(v) + 1;
         j <= std::min<Level>(index.LevelOf(v) + index.params().gateway_band,
                              index.MaxLevel());
         ++j) {
      for (const Gateway& gw : index.FwdGateways(v, j)) {
        // Entries are level->j targets or boundary exits; both strictly
        // outrank the owner (jump walks terminate).
        EXPECT_GT(sg.RankOf(gw.node), sg.RankOf(v));
        EXPECT_GT(gw.dist, 0u);
        level_hits += index.LevelOf(gw.node) >= j;
      }
      for (const Gateway& gw : index.BwdGateways(v, j)) {
        EXPECT_GT(sg.RankOf(gw.node), sg.RankOf(v));
      }
    }
  }
  EXPECT_GT(level_hits, 0u);  // The jump does reach target levels.
}

TEST(AhIndexTest, GatewayDistancesAreExact) {
  Graph g = testing::MakeRoadGraph(18, 4);
  AhIndex index = AhIndex::Build(g);
  Dijkstra dijkstra(g);
  std::size_t checked = 0;
  for (NodeId v = 0; v < g.NumNodes() && checked < 300; ++v) {
    const Level j = index.LevelOf(v) + 1;
    for (const Gateway& gw : index.FwdGateways(v, j)) {
      // Gateway distances are lengths of real upward paths, hence >= the
      // true distance; they are exact when the chain is itself shortest.
      EXPECT_GE(gw.dist, dijkstra.Distance(v, gw.node));
      ++checked;
    }
    for (const Gateway& gw : index.BwdGateways(v, j)) {
      EXPECT_GE(gw.dist, dijkstra.Distance(gw.node, v));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(AhIndexTest, GatewaySpansOutOfBandAreEmpty) {
  Graph g = testing::MakeRoadGraph(14, 5);
  AhIndex index = AhIndex::Build(g);
  const NodeId v = 0;
  EXPECT_TRUE(index.FwdGateways(v, index.LevelOf(v)).empty());
  EXPECT_TRUE(
      index.FwdGateways(v, index.MaxLevel() + 1).empty());
}

TEST(AhIndexTest, QueryJumpLevelBounds) {
  Graph g = testing::MakeRoadGraph(20, 6);
  AhIndex index = AhIndex::Build(g);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Level j = index.QueryJumpLevel(s, t);
    EXPECT_GE(j, 0);
    EXPECT_LE(j, index.MaxLevel());
  }
  EXPECT_EQ(index.QueryJumpLevel(0, 0), 0);
}

TEST(AhIndexTest, NoGatewayBuildOption) {
  Graph g = testing::MakeRoadGraph(12, 7);
  AhParams params;
  params.build_gateways = false;
  AhIndex index = AhIndex::Build(g, params);
  EXPECT_EQ(index.build_stats().gateway_entries, 0u);
  EXPECT_TRUE(index.FwdGateways(0, index.LevelOf(0) + 1).empty());
}

TEST(AhIndexTest, DeterministicBuild) {
  Graph g = testing::MakeRoadGraph(14, 8);
  AhIndex a = AhIndex::Build(g);
  AhIndex b = AhIndex::Build(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(a.LevelOf(v), b.LevelOf(v));
    EXPECT_EQ(a.search_graph().RankOf(v), b.search_graph().RankOf(v));
  }
  EXPECT_EQ(a.build_stats().shortcuts, b.build_stats().shortcuts);
}

TEST(AhIndexTest, GatewaySearchChainsAreConsistent) {
  Graph g = testing::MakeRoadGraph(16, 9);
  AhIndex index = AhIndex::Build(g);
  GatewaySearch search(index);
  std::size_t checked = 0;
  for (NodeId v = 0; v < g.NumNodes() && checked < 100; ++v) {
    const Level j = index.LevelOf(v) + 1;
    if (j > index.MaxLevel()) continue;
    const auto& hits = search.Run(v, j, /*forward=*/true);
    for (const Gateway& gw : hits) {
      const auto chain = search.ChainFrom(gw.node);
      ASSERT_GE(chain.size(), 2u);
      EXPECT_EQ(chain.front(), v);
      EXPECT_EQ(chain.back(), gw.node);
      // Chain arcs exist in the hierarchy and sum to the gateway distance.
      Dist total = 0;
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        const Weight w =
            index.search_graph().HierArcWeight(chain[i], chain[i + 1]);
        ASSERT_NE(w, kMaxWeight);
        total += w;
      }
      EXPECT_EQ(total, gw.dist);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace ah
