// The epoch-versioned index lifecycle (api/index_registry.h): weight-delta
// validation and application at the graph layer, registry construction over
// multiple backends, live weight updates driving background rebuild + hot
// swap, RCU-style epoch retirement (an old epoch dies only when its last
// lease drops), and engine/registry interaction under concurrent load (the
// TSan CI job runs this suite).
#include "api/index_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/concurrent_engine.h"
#include "api/distance_oracle.h"
#include "graph/weight_update.h"
#include "routing/dijkstra.h"
#include "test_util.h"
#include "util/thread_annotations.h"

namespace ah {
namespace {

// ---------------------------------------------------------------------------
// Graph-layer delta application
// ---------------------------------------------------------------------------

TEST(WeightUpdateTest, SetArcWeightKeepsOutAndInAdjacencyMirrored) {
  const Graph g = testing::MakeRoadGraph(5, 3);
  ASSERT_GT(g.OutArcs(0).size(), 0u);
  const NodeId head = g.OutArcs(0)[0].head;
  Graph updated = g;
  EXPECT_EQ(updated.SetArcWeight(0, head, 777), 1u);
  EXPECT_EQ(updated.ArcWeight(0, head), 777u);
  bool found_in_mirror = false;
  for (const Arc& a : updated.InArcs(head)) {
    if (a.head == 0) {
      EXPECT_EQ(a.weight, 777u);
      found_in_mirror = true;
    }
  }
  EXPECT_TRUE(found_in_mirror);
  // Absent arc: no mutation, zero count.
  EXPECT_EQ(updated.SetArcWeight(0, 0, 5), 0u);
  // Structure untouched.
  EXPECT_EQ(updated.NumNodes(), g.NumNodes());
  EXPECT_EQ(updated.NumArcs(), g.NumArcs());
}

TEST(WeightUpdateTest, ValidateAndApplyDeltas) {
  const Graph g = testing::MakeRoadGraph(5, 3);
  const NodeId head = g.OutArcs(0)[0].head;
  const NodeId n = static_cast<NodeId>(g.NumNodes());

  EXPECT_EQ(ValidateWeightDelta(g, {0, head, 9}), DeltaStatus::kOk);
  EXPECT_EQ(ValidateWeightDelta(g, {n, head, 9}), DeltaStatus::kBadNode);
  EXPECT_EQ(ValidateWeightDelta(g, {0, head, 0}), DeltaStatus::kBadWeight);
  EXPECT_EQ(ValidateWeightDelta(g, {0, head, kMaxWeight}),
            DeltaStatus::kBadWeight);
  EXPECT_EQ(ValidateWeightDelta(g, {0, 0, 9}), DeltaStatus::kNoSuchArc);

  Graph updated = g;
  // Later deltas to the same arc win (the earlier one counts as coalesced);
  // invalid deltas are rejected — every delta lands in exactly one bucket.
  const std::vector<WeightDelta> deltas = {
      {0, head, 5}, {0, 0, 9}, {0, head, 11}};
  const DeltaApplyStats stats = ApplyWeightDeltas(&updated, deltas);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(updated.ArcWeight(0, head), 11u);
}

// ---------------------------------------------------------------------------
// Registry construction and epoch acquisition
// ---------------------------------------------------------------------------

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : graph_(testing::MakeRoadGraph(7, 11)) {}

  std::shared_ptr<IndexRegistry> MakeRegistry(
      std::vector<std::string> backends = {"dijkstra", "ch"}) {
    return std::make_shared<IndexRegistry>(graph_, backends);
  }

  /// The graph with one arc made heavier, plus the delta that does it.
  std::pair<Graph, WeightDelta> UpdatedGraph() const {
    const NodeId head = graph_.OutArcs(0)[0].head;
    const WeightDelta delta{
        0, head, static_cast<Weight>(graph_.OutArcs(0)[0].weight * 1000 + 1)};
    Graph updated = graph_;
    updated.SetArcWeight(delta.tail, delta.head, delta.weight);
    return {std::move(updated), delta};
  }

  Graph graph_;
};

TEST_F(RegistryTest, BuildsEveryBackendAndAnswersThroughHandles) {
  auto registry = MakeRegistry({"dijkstra", "ch", "alt"});
  EXPECT_EQ(registry->Backends().size(), 3u);
  EXPECT_EQ(registry->DefaultBackend(), "dijkstra");
  EXPECT_EQ(registry->NumNodes(), graph_.NumNodes());
  EXPECT_EQ(registry->NumArcs(), graph_.NumArcs());

  Dijkstra reference(graph_);
  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);
  for (const std::string& name : registry->Backends()) {
    const EpochHandle epoch = registry->Current(name);
    ASSERT_NE(epoch, nullptr);
    EXPECT_EQ(epoch->backend, name);
    EXPECT_EQ(epoch->generation, 1u);
    EXPECT_EQ(epoch->backend_id, registry->BackendId(name));
    auto session = epoch->NewSession();
    EXPECT_EQ(session->Distance(0, far), reference.Distance(0, far));
  }
  // Empty name routes to the default backend.
  EXPECT_EQ(registry->Current()->backend, "dijkstra");
  EXPECT_TRUE(registry->SetDefaultBackend("ch"));
  EXPECT_EQ(registry->Current()->backend, "ch");
}

TEST_F(RegistryTest, RejectsBadConstructionAndUnknownBackends) {
  EXPECT_THROW(IndexRegistry(graph_, {}), std::invalid_argument);
  EXPECT_THROW(IndexRegistry(graph_, {"ch", "ch"}), std::invalid_argument);
  EXPECT_THROW(IndexRegistry(graph_, {"nope"}), std::invalid_argument);

  auto registry = MakeRegistry();
  EXPECT_FALSE(registry->HasBackend("alt"));
  EXPECT_EQ(registry->Current("alt"), nullptr);
  EXPECT_EQ(registry->Generation("alt"), 0u);
  EXPECT_EQ(registry->BackendId("alt"), IndexRegistry::kInvalidBackend);
  EXPECT_FALSE(registry->SetDefaultBackend("alt"));
  EXPECT_EQ(registry->DefaultBackend(), "dijkstra");

  ConcurrentEngine engine(registry);
  EXPECT_THROW(engine.Lease("alt"), std::invalid_argument);
}

TEST_F(RegistryTest, QueueWeightUpdateValidatesAgainstBaseGraph) {
  auto registry = MakeRegistry();
  const NodeId head = graph_.OutArcs(0)[0].head;
  EXPECT_EQ(registry->QueueWeightUpdate(0, head, 9),
            IndexRegistry::UpdateStatus::kQueued);
  EXPECT_EQ(registry->QueueWeightUpdate(0, 0, 9),
            IndexRegistry::UpdateStatus::kNoSuchArc);
  EXPECT_EQ(registry->QueueWeightUpdate(0, head, 0),
            IndexRegistry::UpdateStatus::kBadWeight);
  EXPECT_EQ(
      registry->QueueWeightUpdate(static_cast<NodeId>(graph_.NumNodes()), 0, 9),
      IndexRegistry::UpdateStatus::kBadNode);
  EXPECT_EQ(registry->PendingUpdates(), 1u);
}

TEST_F(RegistryTest, StaticRegistryServesButRejectsLifecycle) {
  auto registry = IndexRegistry::AdoptStatic(MakeOracle("ch", graph_));
  EXPECT_EQ(registry->Backends(), std::vector<std::string>{"ch"});
  const EpochHandle epoch = registry->Current();
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->generation, 1u);

  EXPECT_EQ(registry->QueueWeightUpdate(0, 1, 9),
            IndexRegistry::UpdateStatus::kStatic);
  std::string error;
  EXPECT_FALSE(registry->RequestReload(&error));
  EXPECT_FALSE(error.empty());
  registry->WaitForRebuild();  // trivially idle; must not hang
}

// ---------------------------------------------------------------------------
// Reload: delta application, rebuild, swap
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, ReloadAppliesDeltasRebuildsAndBumpsGenerations) {
  auto registry = MakeRegistry({"dijkstra", "ch"});
  auto [updated, delta] = UpdatedGraph();
  Dijkstra before(graph_);
  Dijkstra after(updated);

  ASSERT_EQ(registry->QueueWeightUpdate(delta.tail, delta.head, delta.weight),
            IndexRegistry::UpdateStatus::kQueued);
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();

  const IndexRegistry::RegistryStats stats = registry->GetStats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.swaps, 2u);  // one per backend
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.pending_updates, 0u);
  EXPECT_FALSE(stats.rebuild_in_flight);
  EXPECT_TRUE(stats.last_error.empty());

  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);
  for (const std::string& name : registry->Backends()) {
    const EpochHandle epoch = registry->Current(name);
    EXPECT_EQ(epoch->generation, 2u) << name;
    auto session = epoch->NewSession();
    for (NodeId t = 0; t < far; t += 5) {
      EXPECT_EQ(session->Distance(0, t), after.Distance(0, t))
          << name << " d(0, " << t << ")";
    }
  }
  // The update must actually have changed something, or this test proves
  // nothing about which graph answered.
  EXPECT_NE(before.Distance(0, delta.head), after.Distance(0, delta.head));

  // A reload with no pending deltas still rebuilds (generation 3).
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();
  EXPECT_EQ(registry->Generation("ch"), 3u);
}

TEST_F(RegistryTest, OldEpochRetiresOnlyAfterLastLeaseDrops) {
  auto registry = MakeRegistry({"dijkstra", "ch"});
  ConcurrentEngine engine(registry, 2);
  auto [updated, delta] = UpdatedGraph();
  Dijkstra before(graph_);
  Dijkstra after(updated);
  const NodeId probe = delta.head;

  std::weak_ptr<const IndexEpoch> old_epoch = registry->Current("ch");
  {
    ConcurrentEngine::SessionLease lease = engine.Lease("ch");
    EXPECT_EQ(lease.epoch().generation, 1u);

    ASSERT_EQ(registry->QueueWeightUpdate(delta.tail, delta.head, delta.weight),
              IndexRegistry::UpdateStatus::kQueued);
    ASSERT_TRUE(registry->RequestReload());
    registry->WaitForRebuild();
    EXPECT_EQ(registry->Generation("ch"), 2u);

    // The held lease is pinned to the retired epoch: it still answers, with
    // the OLD graph's distances, and keeps the epoch alive.
    EXPECT_EQ(lease->Distance(0, probe), before.Distance(0, probe));
    EXPECT_FALSE(old_epoch.expired());

    // A fresh lease picks up the new epoch and the new answer.
    ConcurrentEngine::SessionLease fresh = engine.Lease("ch");
    EXPECT_EQ(fresh.epoch().generation, 2u);
    EXPECT_EQ(fresh->Distance(0, probe), after.Distance(0, probe));
  }
  // Both leases returned; the stale session is dropped, not pooled, so the
  // old epoch is destroyed now.
  EXPECT_TRUE(old_epoch.expired());
}

TEST_F(RegistryTest, SwapPurgesPooledSessionsOfRetiredEpochs) {
  auto registry = MakeRegistry({"ch"});
  ConcurrentEngine engine(registry, 2);
  // Pool a few idle sessions over generation 1.
  { auto a = engine.Lease(); auto b = engine.Lease(); }
  std::weak_ptr<const IndexEpoch> old_epoch = registry->Current("ch");
  ASSERT_FALSE(old_epoch.expired());

  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();
  // No lease is outstanding, so the swap listener's purge is the only thing
  // standing between the idle pool and a pinned old index.
  EXPECT_TRUE(old_epoch.expired());
  EXPECT_EQ(engine.Lease().epoch().generation, 2u);
}

// ---------------------------------------------------------------------------
// Engine batches + concurrent load across swaps (TSan-checked in CI)
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, BatchesRouteToNamedBackends) {
  auto registry = MakeRegistry({"dijkstra", "ch"});
  ConcurrentEngine engine(registry, 2);
  Dijkstra reference(graph_);
  std::vector<QueryPair> pairs;
  for (NodeId t = 0; t < 40; t += 3) {
    pairs.emplace_back(t % 7, (t * 5) % static_cast<NodeId>(graph_.NumNodes()));
  }
  std::vector<Dist> expected;
  for (const auto& [s, t] : pairs) expected.push_back(reference.Distance(s, t));

  EXPECT_EQ(engine.BatchDistance(pairs), expected);  // default backend
  EXPECT_EQ(engine.BatchDistance(pairs, 2, "ch"), expected);
  const auto paths = engine.BatchShortestPath(pairs, 0, "ch");
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(paths[i].length, expected[i]);
  }
}

TEST_F(RegistryTest, ConcurrentQueriesStayExactAcrossHotSwap) {
  auto registry = MakeRegistry({"dijkstra", "ch"});
  ConcurrentEngine engine(registry, 4);
  auto [updated, delta] = UpdatedGraph();
  Dijkstra before(graph_);
  Dijkstra after(updated);

  // Probe pairs with precomputed old/new answers: during the swap every
  // reply must be one of the two (an index is exact on the snapshot it was
  // built over); never garbage, never a dropped query.
  const NodeId n = static_cast<NodeId>(graph_.NumNodes());
  std::vector<QueryPair> probes;
  std::vector<Dist> old_expected;
  std::vector<Dist> new_expected;
  for (NodeId i = 0; i < 12; ++i) {
    const QueryPair pair{(i * 3) % n, (i * 17 + 1) % n};
    probes.push_back(pair);
    old_expected.push_back(before.Distance(pair.first, pair.second));
    new_expected.push_back(after.Distance(pair.first, pair.second));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const std::string backend = c % 2 == 0 ? "dijkstra" : "ch";
      std::size_t i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t j = i++ % probes.size();
        const Dist d =
            engine.Lease(backend)->Distance(probes[j].first, probes[j].second);
        if (d != old_expected[j] && d != new_expected[j]) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ASSERT_EQ(registry->QueueWeightUpdate(delta.tail, delta.head, delta.weight),
            IndexRegistry::UpdateStatus::kQueued);
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(bad.load(), 0u);
  // After the swap settles, every backend answers the updated graph.
  for (const std::string& name : registry->Backends()) {
    auto lease = engine.Lease(name);
    EXPECT_EQ(lease.epoch().generation, 2u);
    for (std::size_t j = 0; j < probes.size(); ++j) {
      EXPECT_EQ(lease->Distance(probes[j].first, probes[j].second),
                new_expected[j])
          << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental rebuild policy, fallback, and reload coalescing
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, FrozenOrderPolicyRecordsIncrementalRebuilds) {
  auto registry = MakeRegistry({"ch"});
  EXPECT_EQ(registry->GetRebuildPolicy(),
            IndexRegistry::RebuildPolicy::kFrozenOrder);
  auto [updated, delta] = UpdatedGraph();

  ASSERT_EQ(registry->QueueWeightUpdate(delta.tail, delta.head, delta.weight),
            IndexRegistry::UpdateStatus::kQueued);
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();

  const IndexRegistry::RegistryStats stats = registry->GetStats();
  ASSERT_EQ(stats.backend_rebuilds.size(), 1u);
  EXPECT_EQ(stats.backend_rebuilds[0].incremental, 1u);
  EXPECT_EQ(stats.backend_rebuilds[0].full, 0u);
  EXPECT_EQ(stats.backend_rebuilds[0].fallbacks, 0u);
  EXPECT_GT(stats.backend_rebuilds[0].last_rebuild_seconds, 0.0);

  // The incrementally repaired epoch must answer for the updated graph.
  Dijkstra after(updated);
  auto session = registry->Current("ch")->NewSession();
  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);
  for (NodeId t = 0; t < far; t += 3) {
    ASSERT_EQ(session->Distance(0, t), after.Distance(0, t)) << t;
  }
}

TEST_F(RegistryTest, FromScratchPolicyRecordsFullRebuilds) {
  auto registry = MakeRegistry({"ch"});
  registry->SetRebuildPolicy(IndexRegistry::RebuildPolicy::kFromScratch);
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();

  const IndexRegistry::RegistryStats stats = registry->GetStats();
  ASSERT_EQ(stats.backend_rebuilds.size(), 1u);
  EXPECT_EQ(stats.backend_rebuilds[0].incremental, 0u);
  EXPECT_EQ(stats.backend_rebuilds[0].full, 1u);
  EXPECT_EQ(stats.backend_rebuilds[0].fallbacks, 0u);
}

TEST_F(RegistryTest, BackendWithoutIncrementalPathBuildsFromScratch) {
  // dijkstra has no RebuildWithFrozenOrder (returns nullptr): the worker
  // silently builds from scratch — that is not a fallback (nothing failed).
  auto registry = MakeRegistry({"dijkstra"});
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();

  const IndexRegistry::RegistryStats stats = registry->GetStats();
  ASSERT_EQ(stats.backend_rebuilds.size(), 1u);
  EXPECT_EQ(stats.backend_rebuilds[0].incremental, 0u);
  EXPECT_EQ(stats.backend_rebuilds[0].full, 1u);
  EXPECT_EQ(stats.backend_rebuilds[0].fallbacks, 0u);
}

TEST_F(RegistryTest, IncrementalFailureFallsBackWithoutDroppingEpoch) {
  auto registry = MakeRegistry({"ch"});
  registry->SetIncrementalFactoryForTest(
      [](const DistanceOracle&, const Graph&) -> std::unique_ptr<DistanceOracle> {
        throw std::runtime_error("synthetic incremental failure");
      });
  auto [updated, delta] = UpdatedGraph();
  ASSERT_EQ(registry->QueueWeightUpdate(delta.tail, delta.head, delta.weight),
            IndexRegistry::UpdateStatus::kQueued);
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();

  const IndexRegistry::RegistryStats stats = registry->GetStats();
  ASSERT_EQ(stats.backend_rebuilds.size(), 1u);
  EXPECT_EQ(stats.backend_rebuilds[0].incremental, 0u);
  EXPECT_EQ(stats.backend_rebuilds[0].full, 1u);
  EXPECT_EQ(stats.backend_rebuilds[0].fallbacks, 1u);
  EXPECT_NE(stats.last_error.find("incremental"), std::string::npos);

  // The fallback still published a fresh epoch with the deltas applied.
  EXPECT_EQ(registry->Generation("ch"), 2u);
  Dijkstra after(updated);
  auto session = registry->Current("ch")->NewSession();
  EXPECT_EQ(session->Distance(0, delta.head), after.Distance(0, delta.head));

  // Restoring the real path resumes incremental rebuilds.
  registry->SetIncrementalFactoryForTest(nullptr);
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();
  EXPECT_EQ(registry->GetStats().backend_rebuilds[0].incremental, 1u);
}

TEST_F(RegistryTest, QueueWeightUpdatesIsAllOrNothing) {
  auto registry = MakeRegistry({"dijkstra"});
  const NodeId head = graph_.OutArcs(0)[0].head;
  const NodeId n = static_cast<NodeId>(graph_.NumNodes());

  const WeightDelta bad[] = {{0, head, 9}, {n, head, 9}};
  std::size_t first_bad = 0;
  EXPECT_EQ(registry->QueueWeightUpdates(bad, &first_bad),
            IndexRegistry::UpdateStatus::kBadNode);
  EXPECT_EQ(first_bad, 1u);
  EXPECT_EQ(registry->PendingUpdates(), 0u);  // Nothing queued on failure.

  const WeightDelta good[] = {{0, head, 9}, {0, head, 12}};
  EXPECT_EQ(registry->QueueWeightUpdates(good),
            IndexRegistry::UpdateStatus::kQueued);
  EXPECT_EQ(registry->PendingUpdates(), 1u);  // Coalesced per arc.
}

TEST_F(RegistryTest, MinReloadIntervalCoalescesBackToBackRequests) {
  auto registry = MakeRegistry({"dijkstra"});
  registry->SetMinReloadInterval(std::chrono::milliseconds(150));

  // First cycle starts immediately (no previous cycle to hold off from).
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();
  ASSERT_EQ(registry->GetStats().reloads, 1u);

  // A burst of requests inside the hold-off window coalesces into exactly
  // one deferred cycle.
  const NodeId head = graph_.OutArcs(0)[0].head;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(registry->QueueWeightUpdate(0, head, 100 + i),
              IndexRegistry::UpdateStatus::kQueued);
    ASSERT_TRUE(registry->RequestReload());
  }
  registry->WaitForRebuild();

  const IndexRegistry::RegistryStats stats = registry->GetStats();
  EXPECT_EQ(stats.reloads, 2u);          // 5 requests -> 1 extra cycle.
  EXPECT_EQ(stats.updates_applied, 1u);  // Same arc: deltas coalesced too.
  EXPECT_EQ(stats.pending_updates, 0u);
}

// ---------------------------------------------------------------------------
// Warm-up hook
// ---------------------------------------------------------------------------

// The hook fires once per backend on the build worker, with the rebuilt
// epoch, strictly before that epoch is published: while the hook runs, the
// registry still serves the old generation — the warm-up window in which a
// cache can be re-primed without a single stale-epoch answer going out.
TEST_F(RegistryTest, WarmupHookRunsPrePublishWithTheFreshEpoch) {
  auto registry = MakeRegistry({"dijkstra", "ch"});
  auto [updated, delta] = UpdatedGraph();
  Dijkstra after(updated);
  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);

  struct Observation {
    std::string backend;
    std::uint64_t fresh_generation;
    std::uint64_t published_generation;
    Dist fresh_answer;
  };
  Mutex mu;
  std::vector<Observation> seen;
  registry->SetWarmupHook([&](const IndexEpoch& fresh) {
    // Queries on the unpublished epoch must already see the new weights.
    const Dist d = fresh.NewSession()->Distance(0, far);
    MutexLock lock(mu);
    seen.push_back(Observation{fresh.backend, fresh.generation,
                               registry->Generation(fresh.backend), d});
  });

  ASSERT_EQ(registry->QueueWeightUpdate(delta.tail, delta.head, delta.weight),
            IndexRegistry::UpdateStatus::kQueued);
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();

  {
    MutexLock lock(mu);
    ASSERT_EQ(seen.size(), 2u);  // once per backend
    for (const Observation& obs : seen) {
      EXPECT_EQ(obs.fresh_generation, 2u) << obs.backend;
      EXPECT_EQ(obs.published_generation, 1u)
          << obs.backend << ": hook must run before the swap";
      EXPECT_EQ(obs.fresh_answer, after.Distance(0, far)) << obs.backend;
    }
  }

  // Clearing the hook blocks out any in-flight warm-up; later swaps run
  // without it.
  registry->SetWarmupHook(nullptr);
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();
  MutexLock lock(mu);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(registry->GetStats().last_error.empty());
}

// A throwing hook must not block the swap — the epoch still publishes and
// the failure is surfaced through last_error.
TEST_F(RegistryTest, ThrowingWarmupHookDoesNotBlockTheSwap) {
  auto registry = MakeRegistry({"dijkstra"});
  registry->SetWarmupHook([](const IndexEpoch&) {
    throw std::runtime_error("warm-up exploded");
  });
  ASSERT_TRUE(registry->RequestReload());
  registry->WaitForRebuild();
  EXPECT_EQ(registry->Generation("dijkstra"), 2u);  // published anyway
  EXPECT_NE(registry->GetStats().last_error.find("warmup"), std::string::npos);
}

}  // namespace
}  // namespace ah
