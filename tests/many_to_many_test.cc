#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ch/ch_index.h"
#include "core/ah_index.h"
#include "hier/many_to_many.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace ah {
namespace {

std::vector<NodeId> RandomNodes(const Graph& g, std::size_t count, Rng& rng) {
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < count; ++i) {
    nodes.push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  return nodes;
}

class ManyToManySeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ManyToManySeedTest, MatchesDijkstraOnChHierarchy) {
  Graph g = testing::MakeRoadGraph(18, GetParam());
  ChIndex ch = ChIndex::Build(g);
  Rng rng(GetParam());
  const std::vector<NodeId> targets = RandomNodes(g, 13, rng);
  const std::vector<NodeId> sources = RandomNodes(g, 11, rng);
  ManyToMany mtm(ch.search_graph(), targets);
  const std::vector<Dist> matrix = mtm.DistancesFrom(sources);
  ASSERT_EQ(matrix.size(), sources.size() * targets.size());
  Dijkstra dijkstra(g);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t j = 0; j < targets.size(); ++j) {
      ASSERT_EQ(matrix[i * targets.size() + j],
                dijkstra.Distance(sources[i], targets[j]))
          << "s=" << sources[i] << " t=" << targets[j];
    }
  }
}

TEST_P(ManyToManySeedTest, MatchesDijkstraOnAhHierarchy) {
  Graph g = testing::MakeRandomGraph(140, 420, GetParam());
  AhIndex ah = AhIndex::Build(g);
  Rng rng(GetParam() + 1);
  const std::vector<NodeId> targets = RandomNodes(g, 9, rng);
  const std::vector<NodeId> sources = RandomNodes(g, 9, rng);
  ManyToMany mtm(ah.search_graph(), targets);
  const std::vector<Dist> matrix = mtm.DistancesFrom(sources);
  Dijkstra dijkstra(g);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t j = 0; j < targets.size(); ++j) {
      ASSERT_EQ(matrix[i * targets.size() + j],
                dijkstra.Distance(sources[i], targets[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManyToManySeedTest,
                         ::testing::Values(1, 7, 13));

// Construction and queries must be bit-identical at any thread count: the
// bucket CSR is canonically sorted and each source owns its result row.
TEST(ManyToManyTest, DeterministicAcrossThreadCounts) {
  Graph g = testing::MakeRoadGraph(22, 17);
  ChIndex ch = ChIndex::Build(g);
  Rng rng(17);
  const std::vector<NodeId> targets = RandomNodes(g, 40, rng);
  const std::vector<NodeId> sources = RandomNodes(g, 40, rng);
  ManyToMany reference(ch.search_graph(), targets, /*num_threads=*/1);
  const std::vector<Dist> expected =
      reference.DistancesFrom(sources, /*num_threads=*/1);
  for (std::size_t threads : {2, 3, 4}) {
    ManyToMany mtm(ch.search_graph(), targets, threads);
    EXPECT_EQ(mtm.NumBucketEntries(), reference.NumBucketEntries());
    EXPECT_EQ(mtm.DistancesFrom(sources, threads), expected)
        << "threads=" << threads;
  }
}

TEST(ManyToManyTest, DisconnectedCellsAreInf) {
  // Two 3-node directed cycles with no arcs between them.
  GraphBuilder builder(6);
  for (int i = 0; i < 6; ++i) {
    builder.AddNode(Point{100 * i, 0});
  }
  for (NodeId base : {NodeId{0}, NodeId{3}}) {
    for (NodeId i = 0; i < 3; ++i) {
      builder.AddArc(base + i, base + (i + 1) % 3, 5);
    }
  }
  Graph g = builder.Build();
  ChIndex ch = ChIndex::Build(g);
  const std::vector<NodeId> targets = {0, 3};
  const std::vector<NodeId> sources = {1, 4};
  ManyToMany mtm(ch.search_graph(), targets);
  const std::vector<Dist> matrix = mtm.DistancesFrom(sources);
  ASSERT_EQ(matrix.size(), 4u);
  EXPECT_EQ(matrix[0], 10u);       // 1 -> 0 within the first cycle
  EXPECT_EQ(matrix[1], kInfDist);  // 1 -> 3 crosses components
  EXPECT_EQ(matrix[2], kInfDist);  // 4 -> 0 crosses components
  EXPECT_EQ(matrix[3], 10u);       // 4 -> 3 within the second cycle
}

TEST(ManyToManyTest, EmptySourcesOrTargets) {
  Graph g = testing::MakeRoadGraph(8, 2);
  ChIndex ch = ChIndex::Build(g);
  ManyToMany no_targets(ch.search_graph(), {});
  EXPECT_TRUE(no_targets.DistancesFrom(std::vector<NodeId>{0, 1}).empty());
  ManyToMany some_targets(ch.search_graph(), {0, 1});
  EXPECT_TRUE(some_targets.DistancesFrom(std::vector<NodeId>{}).empty());
}

TEST(ManyToManyTest, SourceEqualsTargetIsZero) {
  Graph g = testing::MakeRoadGraph(10, 4);
  ChIndex ch = ChIndex::Build(g);
  const std::vector<NodeId> nodes = {3, 17, 42};
  ManyToMany mtm(ch.search_graph(), nodes);
  const std::vector<Dist> matrix = mtm.DistancesFrom(nodes);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(matrix[i * nodes.size() + i], 0u);
  }
}

// One immutable engine queried from several threads at once: DistancesFrom
// is const and allocates its own scratch, so concurrent callers must agree.
TEST(ManyToManyTest, ConcurrentQueriesShareOneEngine) {
  Graph g = testing::MakeRoadGraph(16, 23);
  ChIndex ch = ChIndex::Build(g);
  Rng rng(23);
  const std::vector<NodeId> targets = RandomNodes(g, 16, rng);
  const std::vector<NodeId> sources = RandomNodes(g, 16, rng);
  ManyToMany mtm(ch.search_graph(), targets);
  const std::vector<Dist> expected = mtm.DistancesFrom(sources, 1);
  constexpr int kThreads = 4;
  std::vector<std::vector<Dist>> got(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back(
        [&, t] { got[t] = mtm.DistancesFrom(sources, /*num_threads=*/1); });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(got[t], expected);
}

}  // namespace
}  // namespace ah
