// Larger-scale correctness sweeps. The small property tests missed a real
// bug once (window-stride > 1 broke the Lemma-3 property only on ME-sized
// networks), so this suite pins exactness at catalog scale for every query
// engine on a distance-stratified workload.
#include <gtest/gtest.h>

#include "ch/ch_index.h"
#include "core/ah_query.h"
#include "gen/catalog.h"
#include "routing/dijkstra.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace ah {
namespace {

class CatalogScaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // ME at 1/32 scale: ~6k nodes — the smallest size at which the stride
    // bug manifested was ~12k; 6k keeps the suite fast while still being
    // an order of magnitude above the unit-test graphs. The heavier 1/16
    // sweep runs in the benches (with checksums) on every invocation.
    graph_ = new Graph(MakeScaledDataset(*FindDataset("ME"), 1.0 / 32.0));
    WorkloadParams params;
    params.pairs_per_set = 30;
    params.seed = 424242;
    workload_ = new Workload(GenerateWorkload(*graph_, params));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete workload_;
    graph_ = nullptr;
    workload_ = nullptr;
  }
  static Graph* graph_;
  static Workload* workload_;
};

Graph* CatalogScaleTest::graph_ = nullptr;
Workload* CatalogScaleTest::workload_ = nullptr;

TEST_F(CatalogScaleTest, AhPrunedExactOnAllQuerySets) {
  const Graph& g = *graph_;
  AhIndex index = AhIndex::Build(g);
  AhQuery query(index);
  Dijkstra dijkstra(g);
  for (const QuerySet& qs : workload_->sets) {
    for (const auto& [s, t] : qs.pairs) {
      ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
          << "Q" << qs.index << " s=" << s << " t=" << t;
    }
  }
}

TEST_F(CatalogScaleTest, AhPathsExactOnFarSets) {
  const Graph& g = *graph_;
  AhIndex index = AhIndex::Build(g);
  AhQuery query(index);
  Dijkstra dijkstra(g);
  // Far sets exercise deep unpacking and multi-hop gateway chains.
  for (std::size_t i = 7; i < workload_->sets.size(); ++i) {
    for (const auto& [s, t] : workload_->sets[i].pairs) {
      const Dist ref = dijkstra.Distance(s, t);
      const PathResult p = query.Path(s, t);
      ASSERT_EQ(p.length, ref);
      if (ref != kInfDist) {
        ASSERT_TRUE(IsValidPath(g, p.nodes, s, t, ref))
            << "s=" << s << " t=" << t;
      }
    }
  }
}

TEST_F(CatalogScaleTest, ChExactOnAllQuerySets) {
  const Graph& g = *graph_;
  ChIndex index = ChIndex::Build(g);
  ChQuery query(index);
  Dijkstra dijkstra(g);
  for (const QuerySet& qs : workload_->sets) {
    for (const auto& [s, t] : qs.pairs) {
      ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t));
    }
  }
}

TEST_F(CatalogScaleTest, StrideTwoStaysExactInExactMode) {
  // window_stride > 1 is an exact-mode-only speed knob: the rank-constraint
  // search must stay correct with the sparser hierarchy it produces.
  const Graph& g = *graph_;
  AhParams params;
  params.levels.window_stride = 2;
  AhIndex index = AhIndex::Build(g, params);
  AhQuery exact(index, AhQueryOptions{.mode = AhQueryMode::kExact});
  Dijkstra dijkstra(g);
  for (std::size_t i = 0; i < workload_->sets.size(); i += 3) {
    for (const auto& [s, t] : workload_->sets[i].pairs) {
      ASSERT_EQ(exact.Distance(s, t), dijkstra.Distance(s, t));
    }
  }
}

TEST_F(CatalogScaleTest, QueryObjectsAreReusableAndConsistent) {
  // Thousands of queries through ONE AhQuery instance must not corrupt its
  // reusable scratch state.
  const Graph& g = *graph_;
  AhIndex index = AhIndex::Build(g);
  AhQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(9);
  for (int i = 0; i < 600; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist a = query.Distance(s, t);
    const Dist b = query.Distance(s, t);  // Same pair twice in a row.
    ASSERT_EQ(a, b);
    ASSERT_EQ(a, dijkstra.Distance(s, t));
  }
}

}  // namespace
}  // namespace ah
