// Shared helpers for the test suites: small deterministic graph factories.
#pragma once

#include <vector>

#include "gen/road_gen.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ah::testing {

/// A strongly connected random graph: a Hamiltonian cycle plus `extra`
/// random arcs, with random coordinates and weights in [1, 100].
/// Not road-like at all — exercises the assumption-free code paths.
inline Graph MakeRandomGraph(std::size_t n, std::size_t extra,
                             std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.AddNode(Point{static_cast<std::int32_t>(rng.Uniform(100000)),
                          static_cast<std::int32_t>(rng.Uniform(100000))});
  }
  for (std::size_t i = 0; i < n; ++i) {
    builder.AddArc(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                   static_cast<Weight>(1 + rng.Uniform(100)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    const NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    builder.AddArc(a, b, static_cast<Weight>(1 + rng.Uniform(100)));
  }
  return builder.Build();
}

/// A small road-like network from the synthetic generator (strongly
/// connected, hierarchical road classes) — the inputs AH's pruned query
/// mode is specified for.
inline Graph MakeRoadGraph(std::uint32_t side, std::uint64_t seed) {
  RoadGenParams params;
  params.cols = side;
  params.rows = side;
  params.seed = seed;
  return GenerateRoadNetwork(params);
}

}  // namespace ah::testing
