// Shared helpers for the test suites: small deterministic graph factories.
#pragma once

#include <vector>

#include "gen/road_gen.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ah::testing {

/// A strongly connected random graph: a Hamiltonian cycle plus `extra`
/// random arcs, with random coordinates and weights in [1, 100].
/// Not road-like at all — exercises the assumption-free code paths.
inline Graph MakeRandomGraph(std::size_t n, std::size_t extra,
                             std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.AddNode(Point{static_cast<std::int32_t>(rng.Uniform(100000)),
                          static_cast<std::int32_t>(rng.Uniform(100000))});
  }
  for (std::size_t i = 0; i < n; ++i) {
    builder.AddArc(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
                   static_cast<Weight>(1 + rng.Uniform(100)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    const NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    builder.AddArc(a, b, static_cast<Weight>(1 + rng.Uniform(100)));
  }
  return builder.Build();
}

/// A small road-like network from the synthetic generator (strongly
/// connected, hierarchical road classes) — the inputs AH's pruned query
/// mode is specified for.
inline Graph MakeRoadGraph(std::uint32_t side, std::uint64_t seed) {
  RoadGenParams params;
  params.cols = side;
  params.rows = side;
  params.seed = seed;
  return GenerateRoadNetwork(params);
}

/// Two strongly connected random clusters with no arcs between them —
/// every cross-cluster query must answer "unreachable" (kInfDist, no path).
/// Nodes [0, cluster) form one component, [cluster, 2*cluster) the other;
/// the clusters are geometrically separated so grid-based methods see two
/// far-apart blobs.
inline Graph MakeDisconnectedGraph(std::size_t cluster, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(2 * cluster);
  for (std::size_t c = 0; c < 2; ++c) {
    const std::int32_t x0 = c == 0 ? 0 : 1000000;
    for (std::size_t i = 0; i < cluster; ++i) {
      builder.AddNode(Point{x0 + static_cast<std::int32_t>(rng.Uniform(100000)),
                            static_cast<std::int32_t>(rng.Uniform(100000))});
    }
    const NodeId base = static_cast<NodeId>(c * cluster);
    for (std::size_t i = 0; i < cluster; ++i) {
      builder.AddArc(base + static_cast<NodeId>(i),
                     base + static_cast<NodeId>((i + 1) % cluster),
                     static_cast<Weight>(1 + rng.Uniform(100)));
    }
    for (std::size_t i = 0; i < 2 * cluster; ++i) {
      const NodeId a = base + static_cast<NodeId>(rng.Uniform(cluster));
      const NodeId b = base + static_cast<NodeId>(rng.Uniform(cluster));
      if (a == b) continue;
      builder.AddArc(a, b, static_cast<Weight>(1 + rng.Uniform(100)));
    }
  }
  return builder.Build();
}

/// The degenerate one-node, zero-arc network: every backend must build on it
/// and answer d(0, 0) = 0.
inline Graph MakeSingleNodeGraph() {
  GraphBuilder builder(1);
  builder.AddNode(Point{0, 0});
  return builder.Build();
}

/// A strongly connected cycle where every arc also gets heavier parallel
/// duplicates and a few self-loops — exercises the builder's collapse rules
/// (parallel arcs keep the minimum weight, self-loops are dropped) and the
/// backends' tolerance of multi-arc inputs.
inline Graph MakeParallelArcGraph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.AddNode(Point{static_cast<std::int32_t>(rng.Uniform(100000)),
                          static_cast<std::int32_t>(rng.Uniform(100000))});
  }
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId a = static_cast<NodeId>(i);
    const NodeId b = static_cast<NodeId>((i + 1) % n);
    const Weight w = static_cast<Weight>(1 + rng.Uniform(50));
    builder.AddArc(a, b, w);
    // Parallel duplicates, at least as heavy; only the lightest survives.
    builder.AddArc(a, b, static_cast<Weight>(w + rng.Uniform(60)));
    builder.AddArc(a, b, static_cast<Weight>(w + 1 + rng.Uniform(60)));
    if (i % 3 == 0) {
      builder.AddArc(a, a, static_cast<Weight>(1 + rng.Uniform(20)));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    const NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a == b) continue;
    const Weight w = static_cast<Weight>(1 + rng.Uniform(50));
    builder.AddArc(a, b, w);
    builder.AddArc(a, b, static_cast<Weight>(w + rng.Uniform(40)));
  }
  return builder.Build();
}

}  // namespace ah::testing
