#include <gtest/gtest.h>

#include "geo/grid.h"
#include "geo/point.h"

namespace ah {
namespace {

TEST(PointTest, LInfDistance) {
  EXPECT_EQ(LInfDistance({0, 0}, {3, 4}), 4);
  EXPECT_EQ(LInfDistance({-2, 5}, {1, 5}), 3);
  EXPECT_EQ(LInfDistance({7, 7}, {7, 7}), 0);
}

TEST(PointTest, L2Distance) {
  EXPECT_DOUBLE_EQ(L2Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(L2Distance({1, 1}, {1, 1}), 0.0);
}

TEST(BoxTest, EmptyByDefault) {
  Box box;
  EXPECT_TRUE(box.Empty());
}

TEST(BoxTest, ExtendAndContains) {
  Box box;
  box.Extend({5, 5});
  EXPECT_FALSE(box.Empty());
  EXPECT_TRUE(box.Contains({5, 5}));
  box.Extend({-5, 10});
  EXPECT_TRUE(box.Contains({0, 7}));
  EXPECT_FALSE(box.Contains({0, 11}));
  EXPECT_EQ(box.Width(), 10);
  EXPECT_EQ(box.Height(), 5);
  EXPECT_EQ(box.SquareSide(), 10);
}

TEST(SquareGridTest, CellOfBasic) {
  SquareGrid grid(0, 0, 100, 4);  // 4x4 cells of size 25.
  EXPECT_EQ(grid.CellOf({0, 0}), (Cell{0, 0}));
  EXPECT_EQ(grid.CellOf({26, 74}), (Cell{1, 2}));
  EXPECT_EQ(grid.CellOf({99, 99}), (Cell{3, 3}));
}

TEST(SquareGridTest, CellOfClampsBoundary) {
  SquareGrid grid(0, 0, 100, 4);
  EXPECT_EQ(grid.CellOf({100, 100}), (Cell{3, 3}));  // On max edge.
  EXPECT_EQ(grid.CellOf({-10, 150}), (Cell{0, 3}));  // Outside.
}

TEST(SquareGridTest, CoveringCentersSquare) {
  Box box;
  box.Extend({0, 0});
  box.Extend({100, 40});  // Wide box: square side 100, y padded.
  SquareGrid grid = SquareGrid::Covering(box, 10);
  EXPECT_EQ(grid.side(), 100);
  // All box corners must land inside the grid.
  EXPECT_GE(grid.CellOf({0, 0}).cx, 0);
  EXPECT_LE(grid.CellOf({100, 40}).cx, 9);
  EXPECT_LE(grid.CellOf({100, 40}).cy, 9);
}

TEST(SquareGridTest, DegeneratePointBox) {
  Box box;
  box.Extend({7, 7});
  SquareGrid grid = SquareGrid::Covering(box, 4);
  EXPECT_EQ(grid.CellOf({7, 7}).cx, grid.CellOf({7, 7}).cx);  // No crash.
}

TEST(SquareGridTest, WithinThreeByThree) {
  EXPECT_TRUE(SquareGrid::WithinThreeByThree({5, 5}, {7, 3}));
  EXPECT_TRUE(SquareGrid::WithinThreeByThree({5, 5}, {5, 5}));
  EXPECT_FALSE(SquareGrid::WithinThreeByThree({5, 5}, {8, 5}));
  EXPECT_FALSE(SquareGrid::WithinThreeByThree({5, 5}, {5, 8}));
}

TEST(SquareGridTest, CellKeyUniqueAndStable) {
  EXPECT_EQ(CellKey({1, 2}), CellKey({1, 2}));
  EXPECT_NE(CellKey({1, 2}), CellKey({2, 1}));
  EXPECT_NE(CellKey({-1, 0}), CellKey({0, -1}));
}

TEST(SquareGridTest, CellSizeFraction) {
  SquareGrid grid(0, 0, 10, 4);
  EXPECT_DOUBLE_EQ(grid.cell_size(), 2.5);
}

}  // namespace
}  // namespace ah
