#include <gtest/gtest.h>

#include "ch/ch_index.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "test_util.h"

namespace ah {
namespace {

class ChSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChSeedTest, DistanceMatchesDijkstraOnRandomGraph) {
  Graph g = testing::MakeRandomGraph(200, 600, GetParam());
  ChIndex index = ChIndex::Build(g);
  ChQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 60; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(ChSeedTest, DistanceMatchesDijkstraOnRoadGraph) {
  Graph g = testing::MakeRoadGraph(24, GetParam());
  ChIndex index = ChIndex::Build(g);
  ChQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(GetParam() + 5);
  for (int q = 0; q < 60; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(ChSeedTest, PathsValidAndOptimal) {
  Graph g = testing::MakeRoadGraph(18, GetParam() ^ 0x3c);
  ChIndex index = ChIndex::Build(g);
  ChQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 30; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const PathResult path = query.Path(s, t);
    const Dist ref = dijkstra.Distance(s, t);
    ASSERT_EQ(path.length, ref);
    if (ref != kInfDist) {
      EXPECT_TRUE(IsValidPath(g, path.nodes, s, t, ref));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChSeedTest, ::testing::Values(1, 2, 77, 4242));

TEST(ChTest, SelfQuery) {
  Graph g = testing::MakeRoadGraph(10, 3);
  ChIndex index = ChIndex::Build(g);
  ChQuery query(index);
  EXPECT_EQ(query.Distance(7, 7), 0u);
  const PathResult p = query.Path(7, 7);
  EXPECT_EQ(p.length, 0u);
  EXPECT_EQ(p.nodes, std::vector<NodeId>{7});
}

TEST(ChTest, BuildStatsPopulated) {
  Graph g = testing::MakeRoadGraph(16, 4);
  ChIndex index = ChIndex::Build(g);
  EXPECT_GT(index.build_stats().shortcuts, 0u);
  EXPECT_GT(index.SizeBytes(), 0u);
  EXPECT_EQ(index.NumNodes(), g.NumNodes());
}

TEST(ChTest, RanksArePermutation) {
  Graph g = testing::MakeRoadGraph(12, 5);
  ChIndex index = ChIndex::Build(g);
  std::vector<bool> seen(g.NumNodes(), false);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const Rank r = index.RankOf(v);
    ASSERT_LT(r, g.NumNodes());
    ASSERT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(ChTest, QuerySettlesFarFewerNodesThanDijkstraOnLongQueries) {
  Graph g = testing::MakeRoadGraph(40, 6);
  ChIndex index = ChIndex::Build(g);
  ChQuery query(index);
  Dijkstra dijkstra(g);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(g.NumNodes() - 1);
  query.Distance(s, t);
  dijkstra.Distance(s, t);
  EXPECT_LT(query.LastStats().settled, dijkstra.SettledNodes().size() / 2);
}

TEST(ChTest, UnreachableInPrunedScc) {
  // Two nodes joined only one-way: CH must report kInfDist backwards.
  GraphBuilder b(3);
  b.AddNode({0, 0});
  b.AddNode({10, 0});
  b.AddNode({20, 0});
  b.AddArc(0, 1, 1);
  b.AddArc(1, 2, 1);
  b.AddArc(2, 1, 1);
  Graph g = b.Build();
  ChIndex index = ChIndex::Build(g);
  ChQuery query(index);
  EXPECT_EQ(query.Distance(0, 2), 2u);
  EXPECT_EQ(query.Distance(2, 0), kInfDist);
  EXPECT_TRUE(query.Path(2, 0).nodes.empty());
}

}  // namespace
}  // namespace ah
