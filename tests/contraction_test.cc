#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "hier/contraction.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace ah {
namespace {

TEST(ContractionEngineTest, ArcsOfExtractsEverything) {
  Graph g = testing::MakeRandomGraph(20, 40, 1);
  const auto arcs = ArcsOf(g);
  EXPECT_EQ(arcs.size(), g.NumArcs());
  for (const HierArc& a : arcs) {
    EXPECT_EQ(a.mid, kInvalidNode);
    EXPECT_EQ(g.ArcWeight(a.tail, a.head), a.weight);
  }
}

TEST(ContractionEngineTest, ContractLineMiddleAddsShortcut) {
  // 0 -- 1 -- 2 (bidirectional): contracting 1 must add 0<->2 shortcuts.
  std::vector<HierArc> arcs = {{0, 1, 3, kInvalidNode},
                               {1, 0, 3, kInvalidNode},
                               {1, 2, 4, kInvalidNode},
                               {2, 1, 4, kInvalidNode}};
  ContractionEngine engine(3, arcs);
  const std::size_t added = engine.Contract(1);
  EXPECT_EQ(added, 2u);
  const auto remaining = engine.RemainingArcs();
  ASSERT_EQ(remaining.size(), 2u);
  for (const HierArc& a : remaining) {
    EXPECT_EQ(a.weight, 7u);
    EXPECT_EQ(a.mid, 1u);
  }
}

TEST(ContractionEngineTest, WitnessSuppressesRedundantShortcut) {
  // Triangle with a cheap bypass: contracting 1 must NOT add 0->2 because
  // the direct edge 0->2 (weight 5) witnesses the 0->1->2 path (weight 7).
  std::vector<HierArc> arcs = {{0, 1, 3, kInvalidNode},
                               {1, 2, 4, kInvalidNode},
                               {0, 2, 5, kInvalidNode}};
  ContractionEngine engine(3, arcs);
  EXPECT_EQ(engine.Contract(1), 0u);
  for (const HierArc& a : engine.RemainingArcs()) {
    EXPECT_EQ(a.weight, 5u);  // Only the original 0->2 remains.
  }
}

TEST(ContractionEngineTest, SimulateMatchesContract) {
  Graph g = testing::MakeRandomGraph(60, 180, 3);
  ContractionEngine a(g.NumNodes(), ArcsOf(g));
  ContractionEngine b(g.NumNodes(), ArcsOf(g));
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    NodeId v = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    while (a.IsContracted(v)) v = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const std::size_t predicted = a.SimulateContraction(v);
    const std::size_t actual = a.Contract(v);
    b.Contract(v);
    // Contract can find strictly more witnesses than Simulate (shortcuts
    // added for earlier neighbor pairs participate in later witness
    // searches within the same call), so the estimate is an upper bound.
    EXPECT_GE(predicted, actual) << "node " << v;
  }
}

TEST(ContractionEngineTest, EmittedArcsAreUniquePerPair) {
  Graph g = testing::MakeRandomGraph(50, 150, 7);
  ContractionEngine engine(g.NumNodes(), ArcsOf(g));
  for (NodeId v = 0; v < g.NumNodes(); ++v) engine.Contract(v);
  std::vector<std::uint64_t> keys;
  for (const HierArc& a : engine.EmittedArcs()) {
    keys.push_back((static_cast<std::uint64_t>(a.tail) << 32) | a.head);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(ContractionEngineTest, MidpointInvariantHolds) {
  // Every emitted shortcut's weight equals the sum of its two halves, and
  // the halves exist among the emitted arcs (the §4.1 two-hop property).
  Graph g = testing::MakeRandomGraph(80, 240, 9);
  ContractionEngine engine(g.NumNodes(), ArcsOf(g));
  for (NodeId v = 0; v < g.NumNodes(); ++v) engine.Contract(v);
  const auto& arcs = engine.EmittedArcs();
  auto find_weight = [&](NodeId u, NodeId w) -> Dist {
    for (const HierArc& a : arcs) {
      if (a.tail == u && a.head == w) return a.weight;
    }
    return kInfDist;
  };
  std::size_t shortcuts = 0;
  for (const HierArc& a : arcs) {
    if (a.mid == kInvalidNode) continue;
    ++shortcuts;
    const Dist left = find_weight(a.tail, a.mid);
    const Dist right = find_weight(a.mid, a.head);
    ASSERT_NE(left, kInfDist);
    ASSERT_NE(right, kInfDist);
    EXPECT_EQ(left + right, a.weight);
  }
  EXPECT_GT(shortcuts, 0u);
}

class OverlaySeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlaySeedTest, OverlayPreservesDistancesAmongKeptNodes) {
  Graph g = testing::MakeRandomGraph(70, 200, GetParam());
  const std::size_t n = g.NumNodes();
  Rng rng(GetParam() ^ 0xbeef);

  // Remove a random ~60% of the nodes.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i-- > 1;) {
    std::swap(order[i], order[rng.Uniform(i + 1)]);
  }
  order.resize(n * 6 / 10);
  std::vector<bool> removed(n, false);
  for (NodeId v : order) removed[v] = true;

  const auto overlay_arcs = ContractNodes(n, ArcsOf(g), order);
  for (const HierArc& a : overlay_arcs) {
    EXPECT_FALSE(removed[a.tail]);
    EXPECT_FALSE(removed[a.head]);
  }

  // Overlay distances == original distances for kept pairs.
  GraphBuilder ob(n);
  for (NodeId v = 0; v < n; ++v) ob.AddNode(g.Coord(v));
  for (const HierArc& a : overlay_arcs) ob.AddArc(a.tail, a.head, a.weight);
  Graph overlay = ob.Build();

  Dijkstra orig(g);
  Dijkstra over(overlay);
  int checked = 0;
  for (NodeId s = 0; s < n && checked < 8; ++s) {
    if (removed[s]) continue;
    ++checked;
    orig.Run(s);
    over.Run(s);
    for (NodeId t = 0; t < n; ++t) {
      if (removed[t]) continue;
      ASSERT_EQ(over.DistTo(t), orig.DistTo(t))
          << "seed=" << GetParam() << " s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlaySeedTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(ContractionEngineTest, TinyWitnessBudgetStaysCorrect) {
  // With a witness budget of 1, almost every candidate shortcut is added —
  // wasteful but still distance-preserving.
  Graph g = testing::MakeRandomGraph(40, 120, 5);
  ContractionParams params;
  params.witness_settle_limit = 1;
  std::vector<NodeId> remove = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto overlay_arcs = ContractNodes(g.NumNodes(), ArcsOf(g), remove, params);
  GraphBuilder ob(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) ob.AddNode(g.Coord(v));
  for (const HierArc& a : overlay_arcs) ob.AddArc(a.tail, a.head, a.weight);
  Graph overlay = ob.Build();
  Dijkstra orig(g);
  Dijkstra over(overlay);
  orig.Run(15);
  over.Run(15);
  for (NodeId t = 10; t < g.NumNodes(); ++t) {
    ASSERT_EQ(over.DistTo(t), orig.DistTo(t));
  }
}

TEST(ContractionEngineTest, DegreeAccessors) {
  std::vector<HierArc> arcs = {{0, 1, 1, kInvalidNode},
                               {1, 2, 1, kInvalidNode},
                               {2, 0, 1, kInvalidNode}};
  ContractionEngine engine(3, arcs);
  EXPECT_EQ(engine.CurrentOutDegree(0), 1u);
  EXPECT_EQ(engine.CurrentInDegree(0), 1u);
  EXPECT_EQ(engine.ContractedNeighborCount(0), 0u);
  engine.Contract(1);
  EXPECT_EQ(engine.ContractedNeighborCount(0), 1u);
  EXPECT_EQ(engine.NumContracted(), 1u);
  EXPECT_TRUE(engine.IsContracted(1));
}

}  // namespace
}  // namespace ah
