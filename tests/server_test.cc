// The serving stack: protocol round-trip (including malformed input),
// result-cache correctness (cached answers cross-checked against Dijkstra),
// admission-control shedding and deadlines under a saturated bounded queue,
// the latency histogram, and a localhost TCP end-to-end smoke test. The CI
// tsan job runs this suite under -fsanitize=thread.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/distance_oracle.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "server/admission.h"
#include "server/line_client.h"
#include "server/protocol.h"
#include "server/request_stats.h"
#include "server/result_cache.h"
#include "server/server_stack.h"
#include "server/tcp_server.h"
#include "test_util.h"

namespace ah::server {
namespace {

constexpr ParseLimits kLimits{/*num_nodes=*/100, /*max_batch=*/8};

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ProtocolTest, ParsesEveryRequestKind) {
  ParseResult r = ParseRequest("d 3 99", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kDistance);
  EXPECT_EQ(r.request.s, 3u);
  EXPECT_EQ(r.request.t, 99u);

  r = ParseRequest("p 0 1", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kPath);

  r = ParseRequest("k 5 3", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kKNearest);
  EXPECT_EQ(r.request.s, 5u);
  EXPECT_EQ(r.request.k, 3u);

  r = ParseRequest("b 2 0 1 2 3", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kBatch);
  ASSERT_EQ(r.request.pairs.size(), 2u);
  EXPECT_EQ(r.request.pairs[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(r.request.pairs[1], (std::pair<NodeId, NodeId>{2, 3}));

  EXPECT_EQ(ParseRequest("stats", kLimits).request.kind, RequestKind::kStats);
  EXPECT_EQ(ParseRequest("inv", kLimits).request.kind,
            RequestKind::kInvalidate);
  EXPECT_EQ(ParseRequest("q", kLimits).request.kind, RequestKind::kQuit);
  // Whitespace tolerance.
  EXPECT_TRUE(ParseRequest("  d \t 1   2  ", kLimits).ok);
}

TEST(ProtocolTest, VersionPrefixAcceptedAndRejected) {
  EXPECT_TRUE(ParseRequest("AH/1 d 0 1", kLimits).ok);
  const ParseResult bad = ParseRequest("AH/2 d 0 1", kLimits);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, ErrorCode::kUnsupportedVersion);
  EXPECT_FALSE(ParseRequest("AH/x d 0 1", kLimits).ok);
}

TEST(ProtocolTest, MalformedInputYieldsStructuredErrors) {
  const struct {
    const char* line;
    ErrorCode code;
  } cases[] = {
      {"", ErrorCode::kBadRequest},
      {"   ", ErrorCode::kBadRequest},
      {"zzz 1 2", ErrorCode::kBadRequest},
      {"d 1", ErrorCode::kBadRequest},        // missing arg
      {"d 1 2 3", ErrorCode::kBadRequest},    // trailing junk
      {"d -1 2", ErrorCode::kBadNode},        // negative: no clamping
      {"d 1e3 2", ErrorCode::kBadNode},       // non-decimal
      {"d 0x10 2", ErrorCode::kBadNode},
      {"d 1 100", ErrorCode::kBadNode},       // == num_nodes: out of range
      {"d 1 18446744073709551616", ErrorCode::kBadNode},  // > uint64
      {"k 1 0", ErrorCode::kBadRequest},      // k must be positive
      {"k 1 -3", ErrorCode::kBadRequest},
      {"b 0", ErrorCode::kBadRequest},        // empty batch
      {"b 2 0 1", ErrorCode::kBadRequest},    // wrong pair count
      {"b 2 0 1 2 3 4", ErrorCode::kBadRequest},
      {"b 9 0 1 0 1 0 1 0 1 0 1 0 1 0 1 0 1 0 1",
       ErrorCode::kBadRequest},               // over max_batch = 8
      {"stats now", ErrorCode::kBadRequest},
      {"q please", ErrorCode::kBadRequest},
  };
  for (const auto& c : cases) {
    const ParseResult r = ParseRequest(c.line, kLimits);
    EXPECT_FALSE(r.ok) << "line: '" << c.line << "'";
    EXPECT_EQ(r.code, c.code) << "line: '" << c.line << "'";
    EXPECT_FALSE(r.message.empty()) << "line: '" << c.line << "'";
  }
}

TEST(ProtocolTest, FormatsDistinguishUnreachableFromErrors) {
  EXPECT_EQ(FormatDistance(42), "OK d 42");
  EXPECT_EQ(FormatDistance(kInfDist), "OK d unreachable");

  PathResult path;
  EXPECT_EQ(FormatPath(path), "OK p unreachable");
  path.length = 7;
  path.nodes = {1, 5, 9};
  EXPECT_EQ(FormatPath(path), "OK p 7 3 1 5 9");

  EXPECT_EQ(FormatBatch({3, kInfDist, 0}), "OK b 3 3 unreachable 0");
  EXPECT_EQ(FormatKNearest({{5, 2}, {9, 7}}), "OK k 2 2 5 7 9");

  EXPECT_EQ(FormatError(ErrorCode::kBadNode, "node id 7 out of range"),
            "ERR bad-node node id 7 out of range");
  EXPECT_EQ(FormatError(ErrorCode::kOverload, ""), "ERR overload");
  EXPECT_EQ(Greeting(10, 20), "AH/1 ready 10 nodes 20 arcs");
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, ExactForSmallValuesAndBoundedErrorAbove) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Quantile(0.5), 0);
  for (int v : {0, 1, 2, 3, 4, 5, 6, 7}) hist.Record(v);
  EXPECT_EQ(hist.Count(), 8u);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 0);   // rank clamps to 1st sample
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 3);   // nearest rank: 4th of 8
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 7);

  LatencyHistogram coarse;
  coarse.Record(1000.0);
  const double q = coarse.Quantile(0.99);
  EXPECT_GE(q, 1000.0);
  EXPECT_LE(q, 1000.0 * 1.125 + 1);  // log-linear bucket width
}

TEST(LatencyHistogramTest, MergeAndReset) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 50; ++i) a.Record(1);
  for (int i = 0; i < 50; ++i) b.Record(1 << 20);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 100u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.25), 1);
  EXPECT_GE(a.Quantile(0.99), 1 << 20);
  a.Reset();
  EXPECT_EQ(a.Count(), 0u);
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, HitMissInsertAndStats) {
  ResultCache cache(64, 4);
  const CacheKey key{1, 2, CachedKind::kDistance};
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  cache.Insert(key, CachedResult{77, {}});
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.dist, 77u);
  // Same pair, path kind: a distinct entry.
  EXPECT_FALSE(cache.Lookup(CacheKey{1, 2, CachedKind::kPath}, &out));

  const CacheStats stats = cache.Totals();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_NEAR(stats.HitRate(), 1.0 / 3.0, 1e-9);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  // One shard, two entries, so recency is global and deterministic.
  ResultCache cache(2, 1);
  const CacheKey a{0, 1, CachedKind::kDistance};
  const CacheKey b{0, 2, CachedKind::kDistance};
  const CacheKey c{0, 3, CachedKind::kDistance};
  cache.Insert(a, CachedResult{1, {}});
  cache.Insert(b, CachedResult{2, {}});
  CachedResult out;
  ASSERT_TRUE(cache.Lookup(a, &out));  // promote a; b is now LRU
  cache.Insert(c, CachedResult{3, {}});
  EXPECT_EQ(cache.Totals().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_FALSE(cache.Lookup(b, &out));  // evicted
  EXPECT_TRUE(cache.Lookup(c, &out));
  EXPECT_EQ(cache.Size(), 2u);
}

TEST(ResultCacheTest, ClearInvalidatesEverythingAndCounts) {
  ResultCache cache(64, 4);
  for (NodeId i = 0; i < 10; ++i) {
    cache.Insert(CacheKey{i, i, CachedKind::kDistance}, CachedResult{i, {}});
  }
  EXPECT_EQ(cache.Size(), 10u);
  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(CacheKey{1, 1, CachedKind::kDistance}, &out));
  EXPECT_EQ(cache.Totals().invalidations, 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.Enabled());
  cache.Insert(CacheKey{1, 2, CachedKind::kDistance}, CachedResult{7, {}});
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(CacheKey{1, 2, CachedKind::kDistance}, &out));
  EXPECT_EQ(cache.Size(), 0u);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionTest, BoundsInFlightAndCountsSheds) {
  AdmissionController admission(AdmissionConfig{2, std::chrono::milliseconds(0)});
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_FALSE(admission.TryAdmit());  // full
  EXPECT_EQ(admission.InFlight(), 2u);
  admission.Release();
  EXPECT_TRUE(admission.TryAdmit());
  admission.Release();
  admission.Release();
  const AdmissionStats stats = admission.Totals();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.shed, 1u);
  admission.WaitIdle();  // returns immediately at zero in flight
}

TEST(AdmissionTest, DeadlinesRespectTimeoutConfig) {
  AdmissionController no_deadline(
      AdmissionConfig{1, std::chrono::milliseconds(0)});
  EXPECT_EQ(no_deadline.MakeDeadline(), AdmissionController::Deadline::max());
  EXPECT_FALSE(AdmissionController::Expired(no_deadline.MakeDeadline()));

  AdmissionController tight(AdmissionConfig{1, std::chrono::milliseconds(1)});
  const auto deadline = tight.MakeDeadline();
  EXPECT_FALSE(AdmissionController::Expired(
      AdmissionController::Clock::now() + std::chrono::seconds(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(AdmissionController::Expired(deadline));
}

// ---------------------------------------------------------------------------
// ServerStack
// ---------------------------------------------------------------------------

std::vector<std::string> Tokens(const std::string& reply) {
  std::istringstream in(reply);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

class ServerStackTest : public ::testing::Test {
 protected:
  ServerStackTest() : graph_(testing::MakeRoadGraph(8, 17)) {}

  ServerConfig SmallConfig() const {
    ServerConfig config;
    config.cache_capacity = 256;
    config.cache_shards = 4;
    config.admission_capacity = 8;
    config.request_timeout = std::chrono::milliseconds(0);  // no deadlines
    config.max_batch = 64;
    config.num_threads = 2;
    return config;
  }

  Graph graph_;
};

TEST_F(ServerStackTest, AnswersMatchDijkstraAndRepeatsHitTheCache) {
  ServerStack stack(MakeOracle("ch", graph_), SmallConfig());
  Dijkstra reference(graph_);
  const NodeId n = static_cast<NodeId>(graph_.NumNodes());

  std::vector<std::string> first_replies;
  for (NodeId t = 0; t < n; t += 7) {
    const std::string query = "d 3 " + std::to_string(t);
    const std::string reply = stack.HandleLine(query);
    EXPECT_EQ(reply, FormatDistance(reference.Distance(3, t))) << query;
    first_replies.push_back(reply);
  }
  const CacheStats cold = stack.cache().Totals();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_GT(cold.insertions, 0u);

  // Second pass: identical replies, all from the cache.
  std::size_t i = 0;
  for (NodeId t = 0; t < n; t += 7) {
    EXPECT_EQ(stack.HandleLine("d 3 " + std::to_string(t)),
              first_replies[i++]);
  }
  const CacheStats warm = stack.cache().Totals();
  EXPECT_EQ(warm.hits, cold.misses);
  EXPECT_GT(warm.HitRate(), 0.0);
  EXPECT_EQ(warm.insertions, cold.insertions);  // no recompute on hits
}

TEST_F(ServerStackTest, PathRepliesAreValidCachedAndIdentical) {
  ServerStack stack(MakeOracle("ch", graph_), SmallConfig());
  Dijkstra reference(graph_);
  const NodeId t = static_cast<NodeId>(graph_.NumNodes() - 1);
  const std::string query = "p 0 " + std::to_string(t);

  const std::string uncached = stack.HandleLine(query);
  const std::string cached = stack.HandleLine(query);
  EXPECT_EQ(uncached, cached);  // bit-identical from the cache
  EXPECT_GT(stack.cache().Totals().hits, 0u);

  const std::vector<std::string> tokens = Tokens(uncached);
  ASSERT_GE(tokens.size(), 4u);
  ASSERT_EQ(tokens[0], "OK");
  ASSERT_EQ(tokens[1], "p");
  const Dist length = std::stoull(tokens[2]);
  EXPECT_EQ(length, reference.Distance(0, t));
  const std::size_t count = std::stoull(tokens[3]);
  ASSERT_EQ(tokens.size(), 4 + count);
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < count; ++i) {
    nodes.push_back(static_cast<NodeId>(std::stoul(tokens[4 + i])));
  }
  EXPECT_TRUE(IsValidPath(graph_, nodes, 0, t, length));
}

TEST_F(ServerStackTest, BatchAndKNearestMatchReference) {
  ServerStack stack(MakeOracle("ch", graph_), SmallConfig());
  stack.SetPois({1, 5, 9, 13, 17});
  Dijkstra reference(graph_);

  EXPECT_EQ(stack.HandleLine("b 3 0 9 9 0 0 0"),
            FormatBatch({reference.Distance(0, 9), reference.Distance(9, 0),
                         reference.Distance(0, 0)}));

  // k-nearest cross-check: recompute the expected (dist, node) ranking.
  std::vector<std::pair<Dist, NodeId>> expected;
  for (const NodeId poi : stack.Pois()) {
    const Dist d = reference.Distance(2, poi);
    if (d != kInfDist) expected.emplace_back(d, poi);
  }
  std::sort(expected.begin(), expected.end());
  expected.resize(std::min<std::size_t>(3, expected.size()));
  EXPECT_EQ(stack.HandleLine("k 2 3"), FormatKNearest(expected));
}

TEST_F(ServerStackTest, UnreachableIsAnAnswerNotAnError) {
  const Graph disconnected = testing::MakeDisconnectedGraph(12, 29);
  ServerConfig config = SmallConfig();
  ServerStack stack(MakeOracle("ch", disconnected), config);
  const std::string cross = "d 0 " + std::to_string(12);  // other cluster
  EXPECT_EQ(stack.HandleLine(cross), "OK d unreachable");
  EXPECT_EQ(stack.HandleLine("p 0 12"), "OK p unreachable");
  // Same ids out of range on a smaller graph would be an error instead.
  EXPECT_TRUE(StartsWith(stack.HandleLine("d 0 99999"), "ERR bad-node"));
  EXPECT_EQ(stack.stats().ErrorCount(), 1u);
}

TEST_F(ServerStackTest, MalformedLinesAreErrorsAndCounted) {
  ServerStack stack(MakeOracle("dijkstra", graph_), SmallConfig());
  EXPECT_TRUE(StartsWith(stack.HandleLine("d -1 2"), "ERR bad-node"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("nope"), "ERR bad-request"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("AH/3 d 0 1"),
                         "ERR unsupported-version"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("k 0 2"), "ERR bad-request"))
      << "k-nearest without a POI set must be rejected";
  EXPECT_EQ(stack.stats().ErrorCount(), 4u);
  EXPECT_EQ(stack.stats().OkCount(), 0u);
}

TEST_F(ServerStackTest, SaturatedAdmissionQueueShedsInsteadOfHanging) {
  ServerConfig config = SmallConfig();
  config.cache_capacity = 0;       // force every request through admission
  config.admission_capacity = 1;   // one in flight
  config.num_threads = 1;          // one engine worker to saturate
  ServerStack stack(MakeOracle("dijkstra", graph_), config);

  // Block the only engine worker so the admitted request cannot start.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  stack.engine().SubmitAsync([gate](QuerySession&) { gate.wait(); });

  std::promise<std::string> admitted;
  std::future<std::string> admitted_reply = admitted.get_future();
  stack.Submit("d 0 1", [&admitted](std::string reply, bool) {
    admitted.set_value(std::move(reply));
  });

  // The budget is exhausted: the next request is shed synchronously.
  const std::string shed = stack.HandleLine("d 0 2");
  EXPECT_TRUE(StartsWith(shed, "ERR overload")) << shed;
  EXPECT_EQ(stack.admission().Totals().shed, 1u);

  release.set_value();
  EXPECT_TRUE(StartsWith(admitted_reply.get(), "OK d"));
  stack.WaitIdle();
  EXPECT_EQ(stack.admission().Totals().admitted, 1u);
}

TEST_F(ServerStackTest, ZeroCapacityShedsEverything) {
  ServerConfig config = SmallConfig();
  config.cache_capacity = 0;
  config.admission_capacity = 0;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  EXPECT_TRUE(StartsWith(stack.HandleLine("d 0 1"), "ERR overload"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("b 1 0 1"), "ERR overload"));
  // Admin requests bypass admission.
  EXPECT_TRUE(StartsWith(stack.HandleLine("stats"), "OK stats"));
  EXPECT_EQ(stack.HandleLine("inv"), "OK inv");
}

TEST_F(ServerStackTest, ExpiredDeadlineAnswersTimeout) {
  ServerConfig config = SmallConfig();
  config.cache_capacity = 0;
  config.num_threads = 1;
  config.request_timeout = std::chrono::milliseconds(1);
  ServerStack stack(MakeOracle("dijkstra", graph_), config);

  // Hold the single worker well past the 1ms deadline.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  stack.engine().SubmitAsync([gate](QuerySession&) { gate.wait(); });

  std::promise<std::string> delayed;
  std::future<std::string> delayed_reply = delayed.get_future();
  stack.Submit("d 0 1", [&delayed](std::string reply, bool) {
    delayed.set_value(std::move(reply));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();

  EXPECT_TRUE(StartsWith(delayed_reply.get(), "ERR timeout"));
  stack.WaitIdle();
  EXPECT_EQ(stack.admission().Totals().expired, 1u);
}

// Many front-end threads sharing one stack: every reply must still be
// exactly the single-threaded Dijkstra answer (TSan-checked in CI).
TEST_F(ServerStackTest, ConcurrentClientsGetConsistentAnswers) {
  ServerStack stack(MakeOracle("ch", graph_), SmallConfig());
  Dijkstra reference(graph_);
  const NodeId n = static_cast<NodeId>(graph_.NumNodes());

  std::vector<std::string> expected;
  for (NodeId t = 0; t < 40; ++t) {
    expected.push_back(FormatDistance(reference.Distance(t % n, (t * 7) % n)));
  }

  constexpr std::size_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::size_t> failures(kClients, 0);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t round = 0; round < 3; ++round) {
        for (NodeId t = 0; t < 40; ++t) {
          const std::string query = "d " + std::to_string(t % n) + " " +
                                    std::to_string((t * 7) % n);
          if (stack.HandleLine(query) != expected[t]) ++failures[c];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0u) << "client " << c;
  }
  const CacheStats cache = stack.cache().Totals();
  EXPECT_GT(cache.hits, 0u);
}

// ---------------------------------------------------------------------------
// TCP end-to-end
// ---------------------------------------------------------------------------

class TcpServerTest : public ::testing::Test {
 protected:
  TcpServerTest() : graph_(testing::MakeRoadGraph(7, 11)) {}

  Graph graph_;
};

TEST_F(TcpServerTest, EndToEndQueriesOverLocalhost) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("ch", graph_), config);
  stack.SetPois({0, 3, 6, 9});
  Dijkstra reference(graph_);

  TcpServer tcp(stack, TcpServerConfig{});
  std::string error;
  ASSERT_TRUE(tcp.Start(&error)) << error;
  ASSERT_NE(tcp.Port(), 0);

  LineClient client;
  ASSERT_TRUE(client.Connect(tcp.Port()));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, stack.Greeting());

  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);
  ASSERT_TRUE(client.Send("d 0 " + std::to_string(far) + "\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(0, far)));

  // Pipelined requests come back in request order.
  ASSERT_TRUE(client.Send("d 0 1\nd 2 3\nbogus\nd 4 5\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(0, 1)));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(2, 3)));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_TRUE(StartsWith(line, "ERR bad-request"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(4, 5)));

  // CRLF line endings are accepted.
  ASSERT_TRUE(client.Send("d 1 2\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(1, 2)));

  // Quit: one farewell line, then the server closes the connection.
  ASSERT_TRUE(client.Send("q\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "OK bye");
  EXPECT_TRUE(client.AtEof());

  tcp.Stop();
  EXPECT_FALSE(tcp.Running());
}

TEST_F(TcpServerTest, ConcurrentConnectionsAndConnectionLimit) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  Dijkstra reference(graph_);

  TcpServerConfig tcp_config;
  tcp_config.max_connections = 2;
  TcpServer tcp(stack, tcp_config);
  ASSERT_TRUE(tcp.Start());

  LineClient a;
  LineClient b;
  ASSERT_TRUE(a.Connect(tcp.Port()));
  ASSERT_TRUE(b.Connect(tcp.Port()));
  std::string line;
  ASSERT_TRUE(a.ReadLine(&line));
  ASSERT_TRUE(b.ReadLine(&line));

  // Both serve queries concurrently.
  ASSERT_TRUE(a.Send("d 0 5\n"));
  ASSERT_TRUE(b.Send("d 5 0\n"));
  ASSERT_TRUE(a.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(0, 5)));
  ASSERT_TRUE(b.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(5, 0)));

  // A third connection is shed at the front door.
  LineClient c;
  ASSERT_TRUE(c.Connect(tcp.Port()));
  ASSERT_TRUE(c.ReadLine(&line));
  EXPECT_TRUE(StartsWith(line, "ERR overload")) << line;
  EXPECT_TRUE(c.AtEof());
  EXPECT_EQ(tcp.RejectedConnections(), 1u);

  // Abrupt client disconnect (no quit) must not wedge the server.
  ASSERT_TRUE(b.Send("d 1 2\n"));
  ASSERT_TRUE(b.ReadLine(&line));
  tcp.Stop();
}

// Stop() with requests still in flight: every admitted request finishes and
// teardown does not race the engine workers (TSan-checked in CI).
TEST_F(TcpServerTest, StopWhileBusyIsClean) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  LineClient client;
  ASSERT_TRUE(client.Connect(tcp.Port()));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  std::string burst;
  for (int i = 0; i < 50; ++i) {
    burst += "d " + std::to_string(i % 20) + " " + std::to_string(i % 13) +
             "\n";
  }
  ASSERT_TRUE(client.Send(burst));
  tcp.Stop();  // replies may or may not have been flushed; must not hang
  EXPECT_FALSE(tcp.Running());
}

}  // namespace
}  // namespace ah::server
