// The serving stack: protocol round-trip (including malformed input, the
// use/upd/reload admin verbs, and the `m` matrix verb with its location
// cap), the v2 binary codec (request/reply round-trips, validation parity
// with the text parser, and the ReplyFrameToText equivalence oracle),
// result-cache correctness with generation tags and TTL (cached
// answers cross-checked against Dijkstra, matrix replies retiring per-pair
// entries across a hot swap), post-swap cache warm-up, admission-
// control shedding and deadlines under a saturated bounded queue, the
// latency histogram, localhost TCP end-to-end smoke tests for both wire
// protocols (negotiation, partial frames, oversized-frame rejection,
// pipelined out-of-order v2 replies, mixed v1/v2 clients), and a hot swap
// under live concurrent TCP load. The CI tsan job runs this suite under
// -fsanitize=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/distance_oracle.h"
#include "api/index_registry.h"
#include "graph/weight_update.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "server/admission.h"
#include "server/binary_protocol.h"
#include "server/line_client.h"
#include "server/protocol.h"
#include "server/request_stats.h"
#include "server/result_cache.h"
#include "server/server_stack.h"
#include "server/tcp_server.h"
#include "test_util.h"

namespace ah::server {
namespace {

constexpr ParseLimits kLimits{/*num_nodes=*/100, /*max_batch=*/8};

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ProtocolTest, ParsesEveryRequestKind) {
  ParseResult r = ParseRequest("d 3 99", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kDistance);
  EXPECT_EQ(r.request.s, 3u);
  EXPECT_EQ(r.request.t, 99u);

  r = ParseRequest("p 0 1", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kPath);

  r = ParseRequest("k 5 3", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kKNearest);
  EXPECT_EQ(r.request.s, 5u);
  EXPECT_EQ(r.request.k, 3u);

  r = ParseRequest("b 2 0 1 2 3", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kBatch);
  ASSERT_EQ(r.request.pairs.size(), 2u);
  EXPECT_EQ(r.request.pairs[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(r.request.pairs[1], (std::pair<NodeId, NodeId>{2, 3}));

  r = ParseRequest("m 2 3 7 8 0 1 2", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kMatrix);
  EXPECT_EQ(r.request.sources, (std::vector<NodeId>{7, 8}));
  EXPECT_EQ(r.request.targets, (std::vector<NodeId>{0, 1, 2}));
  // Backend selector applies to matrix requests too.
  r = ParseRequest("@ch m 1 1 0 5", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kMatrix);
  EXPECT_EQ(r.request.backend, "ch");

  EXPECT_EQ(ParseRequest("stats", kLimits).request.kind, RequestKind::kStats);
  EXPECT_EQ(ParseRequest("inv", kLimits).request.kind,
            RequestKind::kInvalidate);
  EXPECT_EQ(ParseRequest("q", kLimits).request.kind, RequestKind::kQuit);
  // Whitespace tolerance.
  EXPECT_TRUE(ParseRequest("  d \t 1   2  ", kLimits).ok);
}

TEST(ProtocolTest, ParsesAdminVerbsAndBackendSelector) {
  ParseResult r = ParseRequest("use ch", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kUse);
  EXPECT_EQ(r.request.backend, "ch");

  r = ParseRequest("upd 3 7 42", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kUpdate);
  EXPECT_EQ(r.request.s, 3u);
  EXPECT_EQ(r.request.t, 7u);
  EXPECT_EQ(r.request.weight, 42u);

  r = ParseRequest("updf /tmp/deltas.bin", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kUpdateFile);
  EXPECT_EQ(r.request.path, "/tmp/deltas.bin");

  EXPECT_EQ(ParseRequest("reload", kLimits).request.kind, RequestKind::kReload);

  // Backend selector prefix, alone and after the version token.
  r = ParseRequest("@alt d 1 2", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kDistance);
  EXPECT_EQ(r.request.backend, "alt");
  r = ParseRequest("AH/1 @alt b 1 0 1", kLimits);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kBatch);
  EXPECT_EQ(r.request.backend, "alt");
  // No selector: backend stays empty (= server default).
  EXPECT_TRUE(ParseRequest("d 1 2", kLimits).request.backend.empty());
}

TEST(ProtocolTest, MalformedAdminVerbsAreRejected) {
  const struct {
    const char* line;
    ErrorCode code;
  } cases[] = {
      {"use", ErrorCode::kBadRequest},
      {"use ch alt", ErrorCode::kBadRequest},
      {"upd 1 2", ErrorCode::kBadRequest},      // missing weight
      {"upd 1 2 3 4", ErrorCode::kBadRequest},  // trailing junk
      {"upd 1 2 0", ErrorCode::kBadRequest},    // zero weight
      {"upd 1 2 -5", ErrorCode::kBadRequest},   // negative weight
      {"upd -1 2 5", ErrorCode::kBadNode},
      {"upd 1 100 5", ErrorCode::kBadNode},     // out of range
      {"updf", ErrorCode::kBadRequest},         // missing path
      {"updf a b", ErrorCode::kBadRequest},     // trailing junk
      {"@ch updf f", ErrorCode::kBadRequest},   // selector on admin verb
      {"reload now", ErrorCode::kBadRequest},
      {"@ d 1 2", ErrorCode::kBadRequest},      // empty selector token
      {"@ch stats", ErrorCode::kBadRequest},    // selector on admin verb
      {"@ch use alt", ErrorCode::kBadRequest},
      {"@ch reload", ErrorCode::kBadRequest},
  };
  for (const auto& c : cases) {
    const ParseResult r = ParseRequest(c.line, kLimits);
    EXPECT_FALSE(r.ok) << "line: '" << c.line << "'";
    EXPECT_EQ(r.code, c.code) << "line: '" << c.line << "'";
  }
}

TEST(ProtocolTest, VersionPrefixAcceptedAndRejected) {
  EXPECT_TRUE(ParseRequest("AH/1 d 0 1", kLimits).ok);
  const ParseResult bad = ParseRequest("AH/2 d 0 1", kLimits);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, ErrorCode::kUnsupportedVersion);
  EXPECT_FALSE(ParseRequest("AH/x d 0 1", kLimits).ok);
}

TEST(ProtocolTest, MalformedInputYieldsStructuredErrors) {
  const struct {
    const char* line;
    ErrorCode code;
  } cases[] = {
      {"", ErrorCode::kBadRequest},
      {"   ", ErrorCode::kBadRequest},
      {"zzz 1 2", ErrorCode::kBadRequest},
      {"d 1", ErrorCode::kBadRequest},        // missing arg
      {"d 1 2 3", ErrorCode::kBadRequest},    // trailing junk
      {"d -1 2", ErrorCode::kBadNode},        // negative: no clamping
      {"d 1e3 2", ErrorCode::kBadNode},       // non-decimal
      {"d 0x10 2", ErrorCode::kBadNode},
      {"d 1 100", ErrorCode::kBadNode},       // == num_nodes: out of range
      {"d 1 18446744073709551616", ErrorCode::kBadNode},  // > uint64
      {"k 1 0", ErrorCode::kBadRequest},      // k must be positive
      {"k 1 -3", ErrorCode::kBadRequest},
      {"b 0", ErrorCode::kBadRequest},        // empty batch
      {"b 2 0 1", ErrorCode::kBadRequest},    // wrong pair count
      {"b 2 0 1 2 3 4", ErrorCode::kBadRequest},
      {"b 9 0 1 0 1 0 1 0 1 0 1 0 1 0 1 0 1 0 1",
       ErrorCode::kBadRequest},               // over max_batch = 8
      {"m", ErrorCode::kBadRequest},
      {"m 0 2 1 2", ErrorCode::kBadRequest},     // zero sources
      {"m 2 0 1 2", ErrorCode::kBadRequest},     // zero targets
      {"m 2 2 0 1 2", ErrorCode::kBadRequest},   // wrong node count
      {"m 1 1 0 100", ErrorCode::kBadNode},      // target out of range
      {"stats now", ErrorCode::kBadRequest},
      {"q please", ErrorCode::kBadRequest},
  };
  for (const auto& c : cases) {
    const ParseResult r = ParseRequest(c.line, kLimits);
    EXPECT_FALSE(r.ok) << "line: '" << c.line << "'";
    EXPECT_EQ(r.code, c.code) << "line: '" << c.line << "'";
    EXPECT_FALSE(r.message.empty()) << "line: '" << c.line << "'";
  }
}

TEST(ProtocolTest, MatrixLocationCapAnswersTooLarge) {
  // The cap is checked before arity so an over-limit client learns the
  // policy without shipping the full location list.
  constexpr ParseLimits tight{/*num_nodes=*/100, /*max_batch=*/8,
                              /*max_matrix_locations=*/2};
  ParseResult r = ParseRequest("m 3 1 0", tight);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kTooLarge);
  r = ParseRequest("m 1 3 0", tight);
  EXPECT_EQ(r.code, ErrorCode::kTooLarge);
  EXPECT_TRUE(ParseRequest("m 2 2 0 1 2 3", tight).ok);  // at the cap

  constexpr ParseLimits disabled{/*num_nodes=*/100, /*max_batch=*/8,
                                 /*max_matrix_locations=*/0};
  r = ParseRequest("m 1 1 0 1", disabled);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kTooLarge);
}

TEST(ProtocolTest, FormatsDistinguishUnreachableFromErrors) {
  EXPECT_EQ(FormatDistance(42), "OK d 42");
  EXPECT_EQ(FormatDistance(kInfDist), "OK d unreachable");

  PathResult path;
  EXPECT_EQ(FormatPath(path), "OK p unreachable");
  path.length = 7;
  path.nodes = {1, 5, 9};
  EXPECT_EQ(FormatPath(path), "OK p 7 3 1 5 9");

  EXPECT_EQ(FormatBatch({3, kInfDist, 0}), "OK b 3 3 unreachable 0");
  EXPECT_EQ(FormatKNearest({{5, 2}, {9, 7}}), "OK k 2 2 5 7 9");
  EXPECT_EQ(FormatMatrix(2, 2, {3, kInfDist, 0, 7}),
            "OK m 2 2 3 unreachable 0 7");

  EXPECT_EQ(FormatError(ErrorCode::kBadNode, "node id 7 out of range"),
            "ERR bad-node node id 7 out of range");
  EXPECT_EQ(FormatError(ErrorCode::kOverload, ""), "ERR overload");
  EXPECT_EQ(Greeting(10, 20), "AH/1 ready 10 nodes 20 arcs");
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, ExactForSmallValuesAndBoundedErrorAbove) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Quantile(0.5), 0);
  for (int v : {0, 1, 2, 3, 4, 5, 6, 7}) hist.Record(v);
  EXPECT_EQ(hist.Count(), 8u);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 0);   // rank clamps to 1st sample
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 3);   // nearest rank: 4th of 8
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 7);

  LatencyHistogram coarse;
  coarse.Record(1000.0);
  const double q = coarse.Quantile(0.99);
  EXPECT_GE(q, 1000.0);
  EXPECT_LE(q, 1000.0 * 1.125 + 1);  // log-linear bucket width
}

TEST(LatencyHistogramTest, MergeAndReset) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 50; ++i) a.Record(1);
  for (int i = 0; i < 50; ++i) b.Record(1 << 20);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 100u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.25), 1);
  EXPECT_GE(a.Quantile(0.99), 1 << 20);
  a.Reset();
  EXPECT_EQ(a.Count(), 0u);
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, HitMissInsertAndStats) {
  ResultCache cache(64, 4);
  const CacheKey key{1, 2, CachedKind::kDistance};
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(key, 1, &out));
  cache.Insert(key, 1, CachedResult{77, {}});
  ASSERT_TRUE(cache.Lookup(key, 1, &out));
  EXPECT_EQ(out.dist, 77u);
  // Same pair, path kind: a distinct entry.
  EXPECT_FALSE(cache.Lookup(CacheKey{1, 2, CachedKind::kPath}, 1, &out));
  // Same pair and kind, other backend: also a distinct entry.
  EXPECT_FALSE(
      cache.Lookup(CacheKey{1, 2, CachedKind::kDistance, /*backend=*/1}, 1,
                   &out));

  const CacheStats stats = cache.Totals();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_NEAR(stats.HitRate(), 1.0 / 4.0, 1e-9);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  // One shard, two entries, so recency is global and deterministic.
  ResultCache cache(2, 1);
  const CacheKey a{0, 1, CachedKind::kDistance};
  const CacheKey b{0, 2, CachedKind::kDistance};
  const CacheKey c{0, 3, CachedKind::kDistance};
  cache.Insert(a, 1, CachedResult{1, {}});
  cache.Insert(b, 1, CachedResult{2, {}});
  CachedResult out;
  ASSERT_TRUE(cache.Lookup(a, 1, &out));  // promote a; b is now LRU
  cache.Insert(c, 1, CachedResult{3, {}});
  EXPECT_EQ(cache.Totals().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(a, 1, &out));
  EXPECT_FALSE(cache.Lookup(b, 1, &out));  // evicted
  EXPECT_TRUE(cache.Lookup(c, 1, &out));
  EXPECT_EQ(cache.Size(), 2u);
}

TEST(ResultCacheTest, StaleGenerationIsDroppedAndCounted) {
  ResultCache cache(64, 4);
  const CacheKey ch_key{1, 2, CachedKind::kDistance, /*backend=*/0};
  const CacheKey alt_key{1, 2, CachedKind::kDistance, /*backend=*/1};
  cache.Insert(ch_key, 1, CachedResult{10, {}});
  cache.Insert(alt_key, 1, CachedResult{10, {}});

  // Backend 0 swapped to generation 2: its entry is invalidated on sight;
  // backend 1 (still generation 1) keeps hitting — no global flush.
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(ch_key, 2, &out));
  EXPECT_EQ(cache.Totals().invalidations, 1u);
  EXPECT_TRUE(cache.Lookup(alt_key, 1, &out));
  // The stale entry was erased, so a fresh-generation insert takes over.
  cache.Insert(ch_key, 2, CachedResult{20, {}});
  ASSERT_TRUE(cache.Lookup(ch_key, 2, &out));
  EXPECT_EQ(out.dist, 20u);
  EXPECT_EQ(cache.Totals().clears, 0u);

  // A reader/writer still leased to the retired generation 1 must neither
  // erase nor overwrite the fresh entry: plain miss, dropped insert.
  EXPECT_FALSE(cache.Lookup(ch_key, 1, &out));
  cache.Insert(ch_key, 1, CachedResult{99, {}});
  ASSERT_TRUE(cache.Lookup(ch_key, 2, &out));
  EXPECT_EQ(out.dist, 20u);
  EXPECT_EQ(cache.Totals().invalidations, 1u);  // only the original drop
}

TEST(ResultCacheTest, TtlExpiresEntries) {
  // Generous TTL so a loaded machine cannot expire the entry before the
  // "fresh" lookup below; the expiry check then sleeps past it for sure.
  ResultCache cache(64, 4, std::chrono::milliseconds(200));
  EXPECT_EQ(cache.Ttl().count(), 200);
  const CacheKey key{3, 4, CachedKind::kDistance};
  cache.Insert(key, 1, CachedResult{9, {}});
  CachedResult out;
  ASSERT_TRUE(cache.Lookup(key, 1, &out));  // fresh
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_FALSE(cache.Lookup(key, 1, &out));  // expired + dropped
  const CacheStats stats = cache.Totals();
  EXPECT_EQ(stats.expirations, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(cache.Size(), 0u);
}

TEST(ResultCacheTest, ClearInvalidatesEverythingAndCounts) {
  ResultCache cache(64, 4);
  for (NodeId i = 0; i < 10; ++i) {
    cache.Insert(CacheKey{i, i, CachedKind::kDistance}, 1, CachedResult{i, {}});
  }
  EXPECT_EQ(cache.Size(), 10u);
  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(CacheKey{1, 1, CachedKind::kDistance}, 1, &out));
  EXPECT_EQ(cache.Totals().clears, 1u);
  EXPECT_EQ(cache.Totals().invalidations, 0u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.Enabled());
  cache.Insert(CacheKey{1, 2, CachedKind::kDistance}, 1, CachedResult{7, {}});
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(CacheKey{1, 2, CachedKind::kDistance}, 1, &out));
  EXPECT_EQ(cache.Size(), 0u);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionTest, BoundsInFlightAndCountsSheds) {
  AdmissionController admission(AdmissionConfig{2, std::chrono::milliseconds(0)});
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_FALSE(admission.TryAdmit());  // full
  EXPECT_EQ(admission.InFlight(), 2u);
  admission.Release();
  EXPECT_TRUE(admission.TryAdmit());
  admission.Release();
  admission.Release();
  const AdmissionStats stats = admission.Totals();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.shed, 1u);
  admission.WaitIdle();  // returns immediately at zero in flight
}

TEST(AdmissionTest, PerClientCapShedsTheGreedyClientOnly) {
  // Global budget 8, per-client cap 2: client 1 floods, client 2 trickles.
  AdmissionController admission(
      AdmissionConfig{8, std::chrono::milliseconds(0), 2});
  EXPECT_TRUE(admission.TryAdmit(1));
  EXPECT_TRUE(admission.TryAdmit(1));
  EXPECT_FALSE(admission.TryAdmit(1));  // over its own cap...
  EXPECT_TRUE(admission.TryAdmit(2));   // ...while others still get in
  EXPECT_TRUE(admission.TryAdmit());    // unattributed: global budget only
  EXPECT_EQ(admission.ClientInFlight(1), 2u);
  EXPECT_EQ(admission.ClientInFlight(2), 1u);
  EXPECT_EQ(admission.InFlight(), 4u);

  const AdmissionStats stats = admission.Totals();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.shed_per_client, 1u);

  // Releasing one of the flooder's slots readmits it.
  admission.Release(1);
  EXPECT_TRUE(admission.TryAdmit(1));
  admission.Release(1);
  admission.Release(1);
  admission.Release(2);
  admission.Release();
  EXPECT_EQ(admission.ClientInFlight(1), 0u);  // entry erased at zero
  EXPECT_EQ(admission.InFlight(), 0u);
  admission.WaitIdle();
}

TEST(AdmissionTest, DeadlinesRespectTimeoutConfig) {
  AdmissionController no_deadline(
      AdmissionConfig{1, std::chrono::milliseconds(0)});
  EXPECT_EQ(no_deadline.MakeDeadline(), AdmissionController::Deadline::max());
  EXPECT_FALSE(AdmissionController::Expired(no_deadline.MakeDeadline()));

  AdmissionController tight(AdmissionConfig{1, std::chrono::milliseconds(1)});
  const auto deadline = tight.MakeDeadline();
  EXPECT_FALSE(AdmissionController::Expired(
      AdmissionController::Clock::now() + std::chrono::seconds(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(AdmissionController::Expired(deadline));
}

// ---------------------------------------------------------------------------
// ServerStack
// ---------------------------------------------------------------------------

std::vector<std::string> Tokens(const std::string& reply) {
  std::istringstream in(reply);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

class ServerStackTest : public ::testing::Test {
 protected:
  ServerStackTest() : graph_(testing::MakeRoadGraph(8, 17)) {}

  ServerConfig SmallConfig() const {
    ServerConfig config;
    config.cache_capacity = 256;
    config.cache_shards = 4;
    config.admission_capacity = 8;
    config.request_timeout = std::chrono::milliseconds(0);  // no deadlines
    config.max_batch = 64;
    config.num_threads = 2;
    return config;
  }

  Graph graph_;
};

TEST_F(ServerStackTest, AnswersMatchDijkstraAndRepeatsHitTheCache) {
  ServerStack stack(MakeOracle("ch", graph_), SmallConfig());
  Dijkstra reference(graph_);
  const NodeId n = static_cast<NodeId>(graph_.NumNodes());

  std::vector<std::string> first_replies;
  for (NodeId t = 0; t < n; t += 7) {
    const std::string query = "d 3 " + std::to_string(t);
    const std::string reply = stack.HandleLine(query);
    EXPECT_EQ(reply, FormatDistance(reference.Distance(3, t))) << query;
    first_replies.push_back(reply);
  }
  const CacheStats cold = stack.cache().Totals();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_GT(cold.insertions, 0u);

  // Second pass: identical replies, all from the cache.
  std::size_t i = 0;
  for (NodeId t = 0; t < n; t += 7) {
    EXPECT_EQ(stack.HandleLine("d 3 " + std::to_string(t)),
              first_replies[i++]);
  }
  const CacheStats warm = stack.cache().Totals();
  EXPECT_EQ(warm.hits, cold.misses);
  EXPECT_GT(warm.HitRate(), 0.0);
  EXPECT_EQ(warm.insertions, cold.insertions);  // no recompute on hits
}

TEST_F(ServerStackTest, PathRepliesAreValidCachedAndIdentical) {
  ServerStack stack(MakeOracle("ch", graph_), SmallConfig());
  Dijkstra reference(graph_);
  const NodeId t = static_cast<NodeId>(graph_.NumNodes() - 1);
  const std::string query = "p 0 " + std::to_string(t);

  const std::string uncached = stack.HandleLine(query);
  const std::string cached = stack.HandleLine(query);
  EXPECT_EQ(uncached, cached);  // bit-identical from the cache
  EXPECT_GT(stack.cache().Totals().hits, 0u);

  const std::vector<std::string> tokens = Tokens(uncached);
  ASSERT_GE(tokens.size(), 4u);
  ASSERT_EQ(tokens[0], "OK");
  ASSERT_EQ(tokens[1], "p");
  const Dist length = std::stoull(tokens[2]);
  EXPECT_EQ(length, reference.Distance(0, t));
  const std::size_t count = std::stoull(tokens[3]);
  ASSERT_EQ(tokens.size(), 4 + count);
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < count; ++i) {
    nodes.push_back(static_cast<NodeId>(std::stoul(tokens[4 + i])));
  }
  EXPECT_TRUE(IsValidPath(graph_, nodes, 0, t, length));
}

TEST_F(ServerStackTest, BatchAndKNearestMatchReference) {
  ServerStack stack(MakeOracle("ch", graph_), SmallConfig());
  stack.SetPois({1, 5, 9, 13, 17});
  Dijkstra reference(graph_);

  EXPECT_EQ(stack.HandleLine("b 3 0 9 9 0 0 0"),
            FormatBatch({reference.Distance(0, 9), reference.Distance(9, 0),
                         reference.Distance(0, 0)}));

  // k-nearest cross-check: recompute the expected (dist, node) ranking.
  std::vector<std::pair<Dist, NodeId>> expected;
  for (const NodeId poi : stack.Pois()) {
    const Dist d = reference.Distance(2, poi);
    if (d != kInfDist) expected.emplace_back(d, poi);
  }
  std::sort(expected.begin(), expected.end());
  expected.resize(std::min<std::size_t>(3, expected.size()));
  EXPECT_EQ(stack.HandleLine("k 2 3"), FormatKNearest(expected));
}

std::string MatrixQuery(const std::vector<NodeId>& sources,
                        const std::vector<NodeId>& targets) {
  std::string query = "m ";
  query += std::to_string(sources.size());
  query += ' ';
  query += std::to_string(targets.size());
  for (const NodeId s : sources) {
    query += ' ';
    query += std::to_string(s);
  }
  for (const NodeId t : targets) {
    query += ' ';
    query += std::to_string(t);
  }
  return query;
}

TEST_F(ServerStackTest, MatrixMatchesReferenceAndSeedsThePairCache) {
  ServerStack stack(MakeOracle("ch", graph_), SmallConfig());
  Dijkstra reference(graph_);
  const NodeId n = static_cast<NodeId>(graph_.NumNodes());
  const std::vector<NodeId> sources = {0, static_cast<NodeId>(n / 2)};
  const std::vector<NodeId> targets = {static_cast<NodeId>(n - 1), 3};
  std::vector<Dist> cells;
  for (const NodeId s : sources) {
    for (const NodeId t : targets) cells.push_back(reference.Distance(s, t));
  }
  const std::string query = MatrixQuery(sources, targets);
  const std::string expected = FormatMatrix(2, 2, cells);

  EXPECT_EQ(stack.HandleLine(query), expected);
  const CacheStats cold = stack.cache().Totals();
  EXPECT_EQ(cold.insertions, 4u);  // one per-pair distance entry per cell

  // A point query on a matrix-covered pair is served from the cache.
  EXPECT_EQ(stack.HandleLine("d 0 " + std::to_string(n - 1)),
            FormatDistance(cells[0]));
  EXPECT_EQ(stack.cache().Totals().hits, cold.hits + 1);
  EXPECT_EQ(stack.cache().Totals().insertions, cold.insertions);

  // Repeating the matrix request answers entirely from the cache.
  EXPECT_EQ(stack.HandleLine(query), expected);
  EXPECT_EQ(stack.cache().Totals().insertions, cold.insertions);
  EXPECT_EQ(stack.stats().OkCount(), 3u);
}

TEST_F(ServerStackTest, MatrixCapAndDisabledAnswerTooLarge) {
  ServerConfig config = SmallConfig();
  config.max_matrix_locations = 2;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  EXPECT_TRUE(StartsWith(stack.HandleLine("m 3 1 0 1 2 3"), "ERR too-large"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("m 2 2 0 1 2 3"), "OK m 2 2"));

  config.max_matrix_locations = 0;  // matrix surface switched off
  ServerStack disabled(MakeOracle("dijkstra", graph_), config);
  EXPECT_TRUE(StartsWith(disabled.HandleLine("m 1 1 0 1"), "ERR too-large"));
  EXPECT_TRUE(StartsWith(disabled.HandleLine("d 0 1"), "OK d"));
}

// Matrix replies answered through the per-pair cache must be retired by
// generation tag across a hot swap, exactly like point queries: after
// upd+reload the same `m` request reflects the new weights, with no
// Clear() involved.
TEST_F(ServerStackTest, MatrixCacheEntriesAreRetiredByGenerationOnHotSwap) {
  auto registry = std::make_shared<IndexRegistry>(
      graph_, std::vector<std::string>{"ch"});
  ServerStack stack(registry, SmallConfig());

  ASSERT_GT(graph_.OutArcs(0).size(), 0u);
  const NodeId via = graph_.OutArcs(0)[0].head;
  const Weight new_weight =
      static_cast<Weight>(graph_.OutArcs(0)[0].weight * 1000 + 1);
  Graph updated = graph_;
  updated.SetArcWeight(0, via, new_weight);
  Dijkstra before(graph_);
  Dijkstra after(updated);

  const NodeId n = static_cast<NodeId>(graph_.NumNodes());
  const std::vector<NodeId> sources = {0, via};
  const std::vector<NodeId> targets = {via, static_cast<NodeId>(n - 1)};
  std::vector<Dist> old_cells, new_cells;
  for (const NodeId s : sources) {
    for (const NodeId t : targets) {
      old_cells.push_back(before.Distance(s, t));
      new_cells.push_back(after.Distance(s, t));
    }
  }
  ASSERT_NE(old_cells, new_cells) << "weight delta must change some cell";
  const std::string query = MatrixQuery(sources, targets);

  // Warm the cache pre-swap, and prove the repeat is cache-served.
  ASSERT_EQ(stack.HandleLine(query), FormatMatrix(2, 2, old_cells));
  ASSERT_EQ(stack.HandleLine(query), FormatMatrix(2, 2, old_cells));
  const CacheStats warm = stack.cache().Totals();
  EXPECT_GT(warm.hits, 0u);

  ASSERT_EQ(stack.HandleLine("upd 0 " + std::to_string(via) + " " +
                             std::to_string(new_weight)),
            "OK upd 1");
  ASSERT_EQ(stack.HandleLine("reload"), "OK reload 1");
  registry->WaitForRebuild();

  // The stale per-pair entries are dropped on sight by generation tag and
  // the matrix is recomputed on the new epoch.
  EXPECT_EQ(stack.HandleLine(query), FormatMatrix(2, 2, new_cells));
  const CacheStats swapped = stack.cache().Totals();
  EXPECT_GT(swapped.invalidations, 0u);
  EXPECT_EQ(swapped.clears, 0u);
  // And the refreshed entries serve point queries on the new graph.
  EXPECT_EQ(stack.HandleLine("d 0 " + std::to_string(via)),
            FormatDistance(new_cells[0]));
}

// Tie-heavy k-nearest through the protocol: every POI is equidistant from
// the queried hub, so the reply order is decided purely by the (dist, node
// id) tie-break — it must be ascending ids regardless of the POI set order
// or the backend that served it.
TEST_F(ServerStackTest, KNearestBreaksTiesByNodeIdThroughTheProtocol) {
  constexpr std::size_t kSpokes = 10;
  GraphBuilder builder(kSpokes + 1);
  builder.AddNode(Point{0, 0});
  for (std::size_t i = 1; i <= kSpokes; ++i) {
    builder.AddNode(Point{static_cast<std::int32_t>(100 * i), 100});
    builder.AddArc(0, static_cast<NodeId>(i), 7);
    builder.AddArc(static_cast<NodeId>(i), 0, 7);
  }
  const Graph star = builder.Build();
  for (const char* backend : {"ch", "hl", "dijkstra"}) {
    ServerStack stack(MakeOracle(backend, star), SmallConfig());
    // POIs in descending id order: the reply must not echo it.
    std::vector<NodeId> pois;
    for (std::size_t i = kSpokes; i >= 1; --i) {
      pois.push_back(static_cast<NodeId>(i));
    }
    stack.SetPois(std::move(pois));
    EXPECT_EQ(stack.HandleLine("k 0 4"),
              FormatKNearest({{7, 1}, {7, 2}, {7, 3}, {7, 4}}))
        << backend;
  }
}

TEST_F(ServerStackTest, UnreachableIsAnAnswerNotAnError) {
  const Graph disconnected = testing::MakeDisconnectedGraph(12, 29);
  ServerConfig config = SmallConfig();
  ServerStack stack(MakeOracle("ch", disconnected), config);
  const std::string cross = "d 0 " + std::to_string(12);  // other cluster
  EXPECT_EQ(stack.HandleLine(cross), "OK d unreachable");
  EXPECT_EQ(stack.HandleLine("p 0 12"), "OK p unreachable");
  // Same ids out of range on a smaller graph would be an error instead.
  EXPECT_TRUE(StartsWith(stack.HandleLine("d 0 99999"), "ERR bad-node"));
  EXPECT_EQ(stack.stats().ErrorCount(), 1u);
}

TEST_F(ServerStackTest, MalformedLinesAreErrorsAndCounted) {
  ServerStack stack(MakeOracle("dijkstra", graph_), SmallConfig());
  EXPECT_TRUE(StartsWith(stack.HandleLine("d -1 2"), "ERR bad-node"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("nope"), "ERR bad-request"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("AH/3 d 0 1"),
                         "ERR unsupported-version"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("k 0 2"), "ERR bad-request"))
      << "k-nearest without a POI set must be rejected";
  EXPECT_EQ(stack.stats().ErrorCount(), 4u);
  EXPECT_EQ(stack.stats().OkCount(), 0u);
}

TEST_F(ServerStackTest, SaturatedAdmissionQueueShedsInsteadOfHanging) {
  ServerConfig config = SmallConfig();
  config.cache_capacity = 0;       // force every request through admission
  config.admission_capacity = 1;   // one in flight
  config.num_threads = 1;          // one engine worker to saturate
  ServerStack stack(MakeOracle("dijkstra", graph_), config);

  // Block the only engine worker so the admitted request cannot start.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  stack.engine().SubmitAsync([gate]() { gate.wait(); });

  std::promise<std::string> admitted;
  std::future<std::string> admitted_reply = admitted.get_future();
  stack.Submit("d 0 1", [&admitted](std::string reply, bool) {
    admitted.set_value(std::move(reply));
  });

  // The budget is exhausted: the next request is shed synchronously.
  const std::string shed = stack.HandleLine("d 0 2");
  EXPECT_TRUE(StartsWith(shed, "ERR overload")) << shed;
  EXPECT_EQ(stack.admission().Totals().shed, 1u);

  release.set_value();
  EXPECT_TRUE(StartsWith(admitted_reply.get(), "OK d"));
  stack.WaitIdle();
  EXPECT_EQ(stack.admission().Totals().admitted, 1u);
}

// The fairness regression: a flooding client must not consume the whole
// admission budget — its excess is shed with ERR overload while a second
// client's request is still admitted and served.
TEST_F(ServerStackTest, FloodingClientIsShedWhileOthersAreServed) {
  ServerConfig config = SmallConfig();
  config.cache_capacity = 0;        // force every request through admission
  config.admission_capacity = 8;    // global budget with headroom
  config.admission_per_client = 2;  // tight per-client cap
  config.num_threads = 1;           // one engine worker to saturate
  ServerStack stack(MakeOracle("dijkstra", graph_), config);

  // Block the only engine worker so admitted requests stay in flight.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  stack.engine().SubmitAsync([gate]() { gate.wait(); });

  constexpr std::uint64_t kFlooder = 1, kPolite = 2;
  std::vector<std::future<std::string>> admitted;
  auto submit = [&stack](std::uint64_t client) {
    auto reply = std::make_shared<std::promise<std::string>>();
    std::future<std::string> result = reply->get_future();
    stack.Submit("d 0 1", client, [reply](std::string text, bool) {
      reply->set_value(std::move(text));
    });
    return result;
  };

  // Client 1 floods: the first two are admitted, the rest shed inline.
  admitted.push_back(submit(kFlooder));
  admitted.push_back(submit(kFlooder));
  for (int i = 0; i < 4; ++i) {
    std::future<std::string> shed = submit(kFlooder);
    ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "per-client sheds must be answered synchronously";
    EXPECT_TRUE(StartsWith(shed.get(), "ERR overload"));
  }
  EXPECT_EQ(stack.admission().Totals().shed_per_client, 4u);
  EXPECT_EQ(stack.admission().ClientInFlight(kFlooder), 2u);

  // Client 2 is still admitted — the global budget was never exhausted.
  admitted.push_back(submit(kPolite));
  EXPECT_EQ(stack.admission().ClientInFlight(kPolite), 1u);
  EXPECT_EQ(stack.admission().Totals().shed,
            stack.admission().Totals().shed_per_client)
      << "no request hit the global cap";

  release.set_value();
  for (std::future<std::string>& reply : admitted) {
    EXPECT_TRUE(StartsWith(reply.get(), "OK d"));
  }
  stack.WaitIdle();
  EXPECT_EQ(stack.admission().Totals().admitted, 3u);
  EXPECT_EQ(stack.admission().ClientInFlight(kFlooder), 0u);
}

TEST_F(ServerStackTest, ZeroCapacityShedsEverything) {
  ServerConfig config = SmallConfig();
  config.cache_capacity = 0;
  config.admission_capacity = 0;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  EXPECT_TRUE(StartsWith(stack.HandleLine("d 0 1"), "ERR overload"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("b 1 0 1"), "ERR overload"));
  // Admin requests bypass admission.
  EXPECT_TRUE(StartsWith(stack.HandleLine("stats"), "OK stats"));
  EXPECT_EQ(stack.HandleLine("inv"), "OK inv");
}

TEST_F(ServerStackTest, ExpiredDeadlineAnswersTimeout) {
  ServerConfig config = SmallConfig();
  config.cache_capacity = 0;
  config.num_threads = 1;
  config.request_timeout = std::chrono::milliseconds(1);
  ServerStack stack(MakeOracle("dijkstra", graph_), config);

  // Hold the single worker well past the 1ms deadline.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  stack.engine().SubmitAsync([gate]() { gate.wait(); });

  std::promise<std::string> delayed;
  std::future<std::string> delayed_reply = delayed.get_future();
  stack.Submit("d 0 1", [&delayed](std::string reply, bool) {
    delayed.set_value(std::move(reply));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();

  EXPECT_TRUE(StartsWith(delayed_reply.get(), "ERR timeout"));
  stack.WaitIdle();
  EXPECT_EQ(stack.admission().Totals().expired, 1u);
}

// Many front-end threads sharing one stack: every reply must still be
// exactly the single-threaded Dijkstra answer (TSan-checked in CI).
TEST_F(ServerStackTest, ConcurrentClientsGetConsistentAnswers) {
  ServerStack stack(MakeOracle("ch", graph_), SmallConfig());
  Dijkstra reference(graph_);
  const NodeId n = static_cast<NodeId>(graph_.NumNodes());

  std::vector<std::string> expected;
  for (NodeId t = 0; t < 40; ++t) {
    expected.push_back(FormatDistance(reference.Distance(t % n, (t * 7) % n)));
  }

  constexpr std::size_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::size_t> failures(kClients, 0);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t round = 0; round < 3; ++round) {
        for (NodeId t = 0; t < 40; ++t) {
          const std::string query = "d " + std::to_string(t % n) + " " +
                                    std::to_string((t * 7) % n);
          if (stack.HandleLine(query) != expected[t]) ++failures[c];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0u) << "client " << c;
  }
  const CacheStats cache = stack.cache().Totals();
  EXPECT_GT(cache.hits, 0u);
}

// ---------------------------------------------------------------------------
// Multi-backend routing + index lifecycle through the stack
// ---------------------------------------------------------------------------

TEST_F(ServerStackTest, RoutesRequestsToNamedBackendsAndSwitchesDefault) {
  auto registry = std::make_shared<IndexRegistry>(
      graph_, std::vector<std::string>{"dijkstra", "ch"});
  ServerStack stack(registry, SmallConfig());
  Dijkstra reference(graph_);
  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);
  const std::string expect = FormatDistance(reference.Distance(0, far));
  const std::string query = "d 0 " + std::to_string(far);

  EXPECT_EQ(stack.HandleLine(query), expect);                    // default
  EXPECT_EQ(stack.HandleLine("@ch " + query), expect);           // named
  EXPECT_EQ(stack.HandleLine("@dijkstra " + query), expect);
  EXPECT_EQ(stack.HandleLine("use ch"), "OK use ch");
  EXPECT_EQ(registry->DefaultBackend(), "ch");
  EXPECT_EQ(stack.HandleLine(query), expect);

  // Unknown backends: structured errors from selector and `use` alike.
  EXPECT_TRUE(StartsWith(stack.HandleLine("@nosuch " + query),
                         "ERR bad-backend"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("use nosuch"), "ERR bad-backend"));

  // Each backend caches under its own id: the same pair answered via both
  // backends inserts two distance entries.
  const CacheStats cache = stack.cache().Totals();
  EXPECT_GE(cache.insertions, 2u);
}

TEST_F(ServerStackTest, UpdateAndReloadErrorsAreStructured) {
  // Static stack (adopted oracle): lifecycle verbs answer errors, queries
  // still work.
  ServerStack fixed(MakeOracle("dijkstra", graph_), SmallConfig());
  EXPECT_TRUE(StartsWith(fixed.HandleLine("upd 0 1 5"), "ERR bad-request"));
  EXPECT_TRUE(StartsWith(fixed.HandleLine("reload"), "ERR bad-request"));
  EXPECT_TRUE(StartsWith(fixed.HandleLine("d 0 1"), "OK d"));
  // `use` with the wrapped backend's own name is fine.
  EXPECT_EQ(fixed.HandleLine("use dijkstra"), "OK use dijkstra");

  // Dynamic stack: malformed arcs and weights get typed errors.
  auto registry = std::make_shared<IndexRegistry>(
      graph_, std::vector<std::string>{"dijkstra"});
  ServerStack stack(registry, SmallConfig());
  ASSERT_GT(graph_.OutArcs(0).size(), 0u);
  const NodeId via = graph_.OutArcs(0)[0].head;
  EXPECT_TRUE(StartsWith(stack.HandleLine("upd 0 0 5"), "ERR bad-arc"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("upd 0 1000000 5"), "ERR bad-node"));
  EXPECT_TRUE(StartsWith(stack.HandleLine("upd 0 1 0"), "ERR bad-request"));
  EXPECT_EQ(stack.HandleLine("upd 0 " + std::to_string(via) + " 123"),
            "OK upd 1");
  EXPECT_EQ(stack.HandleLine("reload"), "OK reload 1");
  registry->WaitForRebuild();
  EXPECT_EQ(registry->Generation("dijkstra"), 2u);
}

// Bulk binary delta ingest: `updf <file>` round-trip through the stack —
// Save/Load the AHUD container, atomic queueing, reload, and the post-swap
// answers reflecting every record in the file.
TEST_F(ServerStackTest, UpdfQueuesBulkDeltasAndReloadAppliesThem) {
  auto registry = std::make_shared<IndexRegistry>(
      graph_, std::vector<std::string>{"ch"});
  ServerStack stack(registry, SmallConfig());

  // Two distinct arcs, made dramatically heavier.
  ASSERT_GT(graph_.OutArcs(0).size(), 0u);
  ASSERT_GT(graph_.OutArcs(1).size(), 0u);
  const std::vector<WeightDelta> deltas = {
      {0, graph_.OutArcs(0)[0].head,
       static_cast<Weight>(graph_.OutArcs(0)[0].weight * 1000 + 1)},
      {1, graph_.OutArcs(1)[0].head,
       static_cast<Weight>(graph_.OutArcs(1)[0].weight * 1000 + 1)},
  };
  Graph updated = graph_;
  ASSERT_EQ(ApplyWeightDeltas(&updated, deltas).applied, 2u);

  const std::string path = ::testing::TempDir() + "ah_updf_roundtrip.bin";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    SaveWeightDeltas(out, deltas);
  }
  EXPECT_EQ(stack.HandleLine("updf " + path), "OK updf 2 2");
  EXPECT_EQ(stack.HandleLine("reload"), "OK reload 2");
  registry->WaitForRebuild();

  Dijkstra after(updated);
  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);
  for (NodeId s = 0; s < 2; ++s) {
    EXPECT_EQ(stack.HandleLine("d " + std::to_string(s) + " " +
                               std::to_string(far)),
              FormatDistance(after.Distance(s, far)));
  }
  std::remove(path.c_str());
}

TEST_F(ServerStackTest, UpdfErrorsAreStructuredAndQueueNothing) {
  auto registry = std::make_shared<IndexRegistry>(
      graph_, std::vector<std::string>{"dijkstra"});
  ServerConfig config = SmallConfig();
  config.max_bulk_deltas = 2;
  ServerStack stack(registry, config);
  const std::string dir = ::testing::TempDir();

  // Missing file.
  EXPECT_TRUE(StartsWith(stack.HandleLine("updf " + dir + "ah_updf_nope.bin"),
                         "ERR bad-request"));

  // Corrupt container (wrong magic).
  const std::string corrupt = dir + "ah_updf_corrupt.bin";
  {
    std::ofstream out(corrupt, std::ios::binary);
    out << "not a delta file";
  }
  EXPECT_TRUE(
      StartsWith(stack.HandleLine("updf " + corrupt), "ERR bad-request"));

  // A batch whose second record names a non-arc: typed bad-arc error that
  // identifies the record, and nothing from the batch is queued.
  const std::string badarc = dir + "ah_updf_badarc.bin";
  {
    const std::vector<WeightDelta> deltas = {
        {0, graph_.OutArcs(0)[0].head, 9}, {0, 0, 9}};
    std::ofstream out(badarc, std::ios::binary);
    SaveWeightDeltas(out, deltas);
  }
  const std::string reply = stack.HandleLine("updf " + badarc);
  EXPECT_TRUE(StartsWith(reply, "ERR bad-arc")) << reply;
  EXPECT_NE(reply.find("record 1"), std::string::npos) << reply;
  EXPECT_EQ(registry->PendingUpdates(), 0u);

  // Over the server's record cap: too-large, nothing queued.
  const std::string big = dir + "ah_updf_big.bin";
  {
    const NodeId head = graph_.OutArcs(0)[0].head;
    const std::vector<WeightDelta> deltas = {
        {0, head, 9}, {0, head, 10}, {0, head, 11}};
    std::ofstream out(big, std::ios::binary);
    SaveWeightDeltas(out, deltas);
  }
  EXPECT_TRUE(StartsWith(stack.HandleLine("updf " + big), "ERR too-large"));
  EXPECT_EQ(registry->PendingUpdates(), 0u);

  // Static stacks reject the verb like upd/reload.
  ServerStack fixed(MakeOracle("dijkstra", graph_), SmallConfig());
  EXPECT_TRUE(
      StartsWith(fixed.HandleLine("updf " + badarc), "ERR bad-request"));

  for (const std::string& f : {corrupt, badarc, big}) std::remove(f.c_str());
}

// The acceptance scenario, in-process: continuous traffic on two backends
// while a weight delta triggers a background rebuild and epoch swap — every
// reply exact on the pre- or post-update graph, stale cache entries retired
// by generation (no Clear()), updated answers after the swap.
TEST_F(ServerStackTest, HotSwapKeepsServingExactAnswers) {
  auto registry = std::make_shared<IndexRegistry>(
      graph_, std::vector<std::string>{"dijkstra", "ch"});
  ServerConfig config = SmallConfig();
  ServerStack stack(registry, config);

  ASSERT_GT(graph_.OutArcs(0).size(), 0u);
  const NodeId via = graph_.OutArcs(0)[0].head;
  const Weight new_weight =
      static_cast<Weight>(graph_.OutArcs(0)[0].weight * 1000 + 1);
  Graph updated = graph_;
  updated.SetArcWeight(0, via, new_weight);
  Dijkstra before(graph_);
  Dijkstra after(updated);

  const NodeId n = static_cast<NodeId>(graph_.NumNodes());
  std::vector<std::string> queries;
  std::vector<std::string> old_replies;
  std::vector<std::string> new_replies;
  for (NodeId i = 0; i < 16; ++i) {
    const NodeId s = (i * 3) % n;
    const NodeId t = (i * 11 + 1) % n;
    queries.push_back("d " + std::to_string(s) + " " + std::to_string(t));
    old_replies.push_back(FormatDistance(before.Distance(s, t)));
    new_replies.push_back(FormatDistance(after.Distance(s, t)));
  }

  // Warm the cache with pre-swap answers (so the swap has stale entries to
  // retire), then keep clients hammering across the swap.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(stack.HandleLine(queries[i]), old_replies[i]);
    ASSERT_EQ(stack.HandleLine("@ch " + queries[i]), old_replies[i]);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      const std::string prefix = c % 2 == 0 ? "" : "@ch ";
      std::size_t i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t j = i++ % queries.size();
        const std::string reply = stack.HandleLine(prefix + queries[j]);
        if (reply != old_replies[j] && reply != new_replies[j]) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ASSERT_EQ(stack.HandleLine("upd 0 " + std::to_string(via) + " " +
                             std::to_string(new_weight)),
            "OK upd 1");
  ASSERT_EQ(stack.HandleLine("reload"), "OK reload 1");
  registry->WaitForRebuild();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0u);

  // Post-swap: both backends answer the updated graph; the stale entries
  // were retired by generation tag, never via Clear().
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(stack.HandleLine(queries[i]), new_replies[i]) << queries[i];
    EXPECT_EQ(stack.HandleLine("@ch " + queries[i]), new_replies[i])
        << queries[i];
  }
  const CacheStats cache = stack.cache().Totals();
  EXPECT_EQ(cache.clears, 0u);
  EXPECT_GT(cache.invalidations, 0u);
  const IndexRegistry::RegistryStats registry_stats = registry->GetStats();
  EXPECT_EQ(registry_stats.updates_applied, 1u);
  EXPECT_EQ(registry_stats.reloads, 1u);
}

// ---------------------------------------------------------------------------
// TCP end-to-end
// ---------------------------------------------------------------------------

class TcpServerTest : public ::testing::Test {
 protected:
  TcpServerTest() : graph_(testing::MakeRoadGraph(7, 11)) {}

  Graph graph_;
};

TEST_F(TcpServerTest, EndToEndQueriesOverLocalhost) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("ch", graph_), config);
  stack.SetPois({0, 3, 6, 9});
  Dijkstra reference(graph_);

  TcpServer tcp(stack, TcpServerConfig{});
  std::string error;
  ASSERT_TRUE(tcp.Start(&error)) << error;
  ASSERT_NE(tcp.Port(), 0);

  LineClient client;
  ASSERT_TRUE(client.Connect(tcp.Port()));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, stack.Greeting());

  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);
  ASSERT_TRUE(client.Send("d 0 " + std::to_string(far) + "\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(0, far)));

  // Pipelined requests come back in request order.
  ASSERT_TRUE(client.Send("d 0 1\nd 2 3\nbogus\nd 4 5\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(0, 1)));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(2, 3)));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_TRUE(StartsWith(line, "ERR bad-request"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(4, 5)));

  // CRLF line endings are accepted.
  ASSERT_TRUE(client.Send("d 1 2\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(1, 2)));

  // Quit: one farewell line, then the server closes the connection.
  ASSERT_TRUE(client.Send("q\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "OK bye");
  EXPECT_TRUE(client.AtEof());

  tcp.Stop();
  EXPECT_FALSE(tcp.Running());
}

TEST_F(TcpServerTest, ConcurrentConnectionsAndConnectionLimit) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  Dijkstra reference(graph_);

  TcpServerConfig tcp_config;
  tcp_config.max_connections = 2;
  TcpServer tcp(stack, tcp_config);
  ASSERT_TRUE(tcp.Start());

  LineClient a;
  LineClient b;
  ASSERT_TRUE(a.Connect(tcp.Port()));
  ASSERT_TRUE(b.Connect(tcp.Port()));
  std::string line;
  ASSERT_TRUE(a.ReadLine(&line));
  ASSERT_TRUE(b.ReadLine(&line));

  // Both serve queries concurrently.
  ASSERT_TRUE(a.Send("d 0 5\n"));
  ASSERT_TRUE(b.Send("d 5 0\n"));
  ASSERT_TRUE(a.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(0, 5)));
  ASSERT_TRUE(b.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(5, 0)));

  // A third connection is shed at the front door.
  LineClient c;
  ASSERT_TRUE(c.Connect(tcp.Port()));
  ASSERT_TRUE(c.ReadLine(&line));
  EXPECT_TRUE(StartsWith(line, "ERR overload")) << line;
  EXPECT_TRUE(c.AtEof());
  EXPECT_EQ(tcp.RejectedConnections(), 1u);

  // Abrupt client disconnect (no quit) must not wedge the server.
  ASSERT_TRUE(b.Send("d 1 2\n"));
  ASSERT_TRUE(b.ReadLine(&line));
  tcp.Stop();
}

// Hot swap under live concurrent TCP load: multiple socket clients stream
// distance queries on two backends while the admin connection queues a
// weight delta and reloads. Every reply must match the Dijkstra reference
// on the pre- or post-update graph; after the swap, the post-update one
// (TSan-checked in CI).
TEST_F(TcpServerTest, HotSwapUnderLiveTcpLoad) {
  auto registry = std::make_shared<IndexRegistry>(
      graph_, std::vector<std::string>{"dijkstra", "ch"});
  ServerConfig config;
  config.num_threads = 2;
  config.request_timeout = std::chrono::milliseconds(0);
  ServerStack stack(registry, config);

  ASSERT_GT(graph_.OutArcs(0).size(), 0u);
  const NodeId via = graph_.OutArcs(0)[0].head;
  const Weight new_weight =
      static_cast<Weight>(graph_.OutArcs(0)[0].weight * 1000 + 1);
  Graph updated = graph_;
  updated.SetArcWeight(0, via, new_weight);
  Dijkstra before(graph_);
  Dijkstra after(updated);

  const NodeId n = static_cast<NodeId>(graph_.NumNodes());
  std::vector<std::string> queries;
  std::vector<std::string> old_replies;
  std::vector<std::string> new_replies;
  for (NodeId i = 0; i < 12; ++i) {
    const NodeId s = (i * 5) % n;
    const NodeId t = (i * 13 + 2) % n;
    queries.push_back("d " + std::to_string(s) + " " + std::to_string(t));
    old_replies.push_back(FormatDistance(before.Distance(s, t)));
    new_replies.push_back(FormatDistance(after.Distance(s, t)));
  }

  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad{0};
  std::atomic<std::size_t> io_failures{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      LineClient client;
      std::string line;
      if (!client.Connect(tcp.Port()) || !client.ReadLine(&line)) {
        io_failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const std::string prefix = c % 2 == 0 ? "" : "@ch ";
      std::size_t i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t j = i++ % queries.size();
        if (!client.SendLine(prefix + queries[j]) || !client.ReadLine(&line)) {
          io_failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (line != old_replies[j] && line != new_replies[j]) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
      client.SendLine("q");
    });
  }

  // Admin connection: queue the delta and reload while traffic flows.
  {
    LineClient admin;
    std::string line;
    ASSERT_TRUE(admin.Connect(tcp.Port()));
    ASSERT_TRUE(admin.ReadLine(&line));
    ASSERT_TRUE(admin.SendLine("upd 0 " + std::to_string(via) + " " +
                               std::to_string(new_weight)));
    ASSERT_TRUE(admin.ReadLine(&line));
    EXPECT_EQ(line, "OK upd 1");
    ASSERT_TRUE(admin.SendLine("reload"));
    ASSERT_TRUE(admin.ReadLine(&line));
    EXPECT_EQ(line, "OK reload 1");
    registry->WaitForRebuild();

    // Post-swap, on a fresh connection stream: updated answers only.
    for (std::size_t j = 0; j < queries.size(); ++j) {
      ASSERT_TRUE(admin.SendLine(queries[j]));
      ASSERT_TRUE(admin.ReadLine(&line));
      EXPECT_EQ(line, new_replies[j]) << queries[j];
      ASSERT_TRUE(admin.SendLine("@ch " + queries[j]));
      ASSERT_TRUE(admin.ReadLine(&line));
      EXPECT_EQ(line, new_replies[j]) << "@ch " << queries[j];
    }
    admin.SendLine("q");
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(io_failures.load(), 0u);
  EXPECT_EQ(stack.cache().Totals().clears, 0u);  // swap never Clear()s

  tcp.Stop();
}

// Stop() with requests still in flight: every admitted request finishes and
// teardown does not race the engine workers (TSan-checked in CI).
TEST_F(TcpServerTest, StopWhileBusyIsClean) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  LineClient client;
  ASSERT_TRUE(client.Connect(tcp.Port()));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  std::string burst;
  for (int i = 0; i < 50; ++i) {
    burst += "d " + std::to_string(i % 20) + " " + std::to_string(i % 13) +
             "\n";
  }
  ASSERT_TRUE(client.Send(burst));
  tcp.Stop();  // replies may or may not have been flushed; must not hang
  EXPECT_FALSE(tcp.Running());
}

// ---------------------------------------------------------------------------
// Binary protocol (v2) codec
// ---------------------------------------------------------------------------

TEST(BinaryProtocolTest, StatusBytesRoundTripEveryErrorCode) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kBadNode, ErrorCode::kBadBackend,
        ErrorCode::kBadArc, ErrorCode::kUnsupportedVersion,
        ErrorCode::kOverload, ErrorCode::kTimeout, ErrorCode::kTooLarge,
        ErrorCode::kInternal}) {
    const std::uint8_t status = StatusFromError(code);
    EXPECT_NE(status, kStatusOk);
    ErrorCode back = ErrorCode::kInternal;
    ASSERT_TRUE(ErrorFromStatus(status, &back));
    EXPECT_EQ(back, code);
  }
  ErrorCode ignored;
  EXPECT_FALSE(ErrorFromStatus(kStatusOk, &ignored));
  EXPECT_FALSE(ErrorFromStatus(255, &ignored));
}

// Every text request must decode to the identical Request through the v2
// codec: text -> Request -> body -> frame -> DecodeRequest -> same Request.
TEST(BinaryProtocolTest, RequestsRoundTripAndMatchTheTextParser) {
  const char* lines[] = {"d 3 99", "p 0 1",           "k 5 3",
                         "b 2 0 1 2 3", "m 2 3 7 8 0 1 2", "stats",
                         "inv",     "reload",          "q",
                         "upd 1 2 77",  "updf /tmp/deltas.bin"};
  for (const char* line : lines) {
    const ParseResult text = ParseRequest(line, kLimits);
    ASSERT_TRUE(text.ok) << line;
    const std::string frame = EncodeRequestFrame(
        OpcodeForKind(text.request.kind), 42, text.request.backend,
        EncodeRequestBody(text.request));
    FrameHeader header;
    std::string_view payload;
    ASSERT_EQ(TryReadFrame(frame, &header, &payload), frame.size()) << line;
    EXPECT_EQ(header.request_id, 42u);
    const ParseResult bin = DecodeRequest(header, payload, kLimits);
    ASSERT_TRUE(bin.ok) << line << ": " << bin.message;
    EXPECT_EQ(bin.request.kind, text.request.kind) << line;
    EXPECT_EQ(bin.request.s, text.request.s) << line;
    EXPECT_EQ(bin.request.t, text.request.t) << line;
    EXPECT_EQ(bin.request.k, text.request.k) << line;
    EXPECT_EQ(bin.request.weight, text.request.weight) << line;
    EXPECT_EQ(bin.request.backend, text.request.backend) << line;
    EXPECT_EQ(bin.request.path, text.request.path) << line;
    EXPECT_EQ(bin.request.pairs, text.request.pairs) << line;
    EXPECT_EQ(bin.request.sources, text.request.sources) << line;
    EXPECT_EQ(bin.request.targets, text.request.targets) << line;
  }

  // The backend selector travels as the payload prefix.
  const ParseResult text = ParseRequest("@ch d 3 4", kLimits);
  ASSERT_TRUE(text.ok);
  const std::string frame = EncodeRequestFrame(
      Opcode::kDistance, 7, text.request.backend,
      EncodeRequestBody(text.request));
  FrameHeader header;
  std::string_view payload;
  ASSERT_EQ(TryReadFrame(frame, &header, &payload), frame.size());
  EXPECT_EQ(header.backend_len, 2u);
  const ParseResult bin = DecodeRequest(header, payload, kLimits);
  ASSERT_TRUE(bin.ok);
  EXPECT_EQ(bin.request.backend, "ch");
}

// Validation parity: the binary decoder enforces the same limits and rules
// as the text parser and reports the same error codes.
TEST(BinaryProtocolTest, DecodeRequestValidatesLikeTheTextParser) {
  const auto decode = [](const std::string& frame) {
    FrameHeader header;
    std::string_view payload;
    const std::size_t total = TryReadFrame(frame, &header, &payload);
    EXPECT_EQ(total, frame.size());
    return DecodeRequest(header, payload, kLimits);
  };
  const auto body32 = [](std::initializer_list<std::uint32_t> values) {
    std::string body;
    for (const std::uint32_t v : values) PutU32(&body, v);
    return body;
  };

  // Node out of range (kLimits.num_nodes == 100), same code as the parser.
  ParseResult r =
      decode(EncodeRequestFrame(Opcode::kDistance, 1, {}, body32({3, 100})));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kBadNode);
  EXPECT_EQ(r.message, ParseRequest("d 3 100", kLimits).message);

  // Batch over the cap (kLimits.max_batch == 8).
  std::string big = body32({9});
  for (int i = 0; i < 18; ++i) PutU32(&big, 0);
  r = decode(EncodeRequestFrame(Opcode::kBatch, 2, {}, big));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kBadRequest);

  // Truncated and oversized bodies are malformed, not silently padded.
  r = decode(EncodeRequestFrame(Opcode::kDistance, 3, {}, body32({3})));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kBadRequest);
  r = decode(EncodeRequestFrame(Opcode::kDistance, 4, {}, body32({1, 2, 3})));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kBadRequest);

  // A backend prefix on a backend-independent opcode is rejected — the
  // same contradiction "@ch stats" raises in v1.
  r = decode(EncodeRequestFrame(Opcode::kStats, 5, "ch", {}));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kBadRequest);

  // kUse carries its argument as the prefix; an empty one is an error.
  r = decode(EncodeRequestFrame(Opcode::kUse, 6, {}, {}));
  EXPECT_FALSE(r.ok);
  r = decode(EncodeRequestFrame(Opcode::kUse, 7, "hl", {}));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.request.kind, RequestKind::kUse);
  EXPECT_EQ(r.request.backend, "hl");

  // Unknown opcode.
  r = decode(EncodeRequestFrame(static_cast<Opcode>(0x6f), 8, {}, {}));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, ErrorCode::kBadRequest);
  EXPECT_NE(r.message.find("0x6f"), std::string::npos);
}

// The equivalence oracle: a Reply rendered through the v2 frame and back to
// text must be byte-identical to the v1 line FormatReply produces.
TEST(BinaryProtocolTest, ReplyFramesRenderToIdenticalTextLines) {
  std::vector<Reply> replies;
  {
    Reply r;
    r.kind = RequestKind::kDistance;
    r.dist = 12345;
    replies.push_back(r);
    r.dist = kInfDist;  // unreachable sentinel
    replies.push_back(r);
  }
  {
    Reply r;
    r.kind = RequestKind::kPath;
    r.path.length = 9;
    r.path.nodes = {0, 4, 7};
    replies.push_back(r);
  }
  {
    Reply r;
    r.kind = RequestKind::kKNearest;
    r.nearest = {{5, 2}, {9, 0}};
    replies.push_back(r);
  }
  {
    Reply r;
    r.kind = RequestKind::kBatch;
    r.dists = {1, kInfDist, 3};
    replies.push_back(r);
  }
  {
    Reply r;
    r.kind = RequestKind::kMatrix;
    r.num_sources = 2;
    r.num_targets = 2;
    r.dists = {0, 1, 2, 3};
    replies.push_back(r);
  }
  {
    Reply r;
    r.kind = RequestKind::kStats;
    r.text = "v=1 served=3";
    replies.push_back(r);
    r.kind = RequestKind::kUse;
    r.text = "ch";
    replies.push_back(r);
  }
  {
    Reply r;
    r.kind = RequestKind::kUpdate;
    r.value = 4;
    replies.push_back(r);
    r.kind = RequestKind::kReload;
    replies.push_back(r);
    r.kind = RequestKind::kUpdateFile;
    r.value2 = 6;
    replies.push_back(r);
    r.kind = RequestKind::kInvalidate;
    replies.push_back(r);
    r.kind = RequestKind::kQuit;
    replies.push_back(r);
  }
  {
    Reply r;
    r.ok = false;
    r.code = ErrorCode::kBadNode;
    r.detail = "node id 7 out of range [0, 5)";
    replies.push_back(r);
  }
  for (const Reply& reply : replies) {
    const Opcode opcode =
        OpcodeForKind(reply.ok ? reply.kind : RequestKind::kDistance);
    const std::string frame = EncodeReplyFrame(reply, opcode, 11);
    FrameHeader header;
    std::string_view payload;
    ASSERT_EQ(TryReadFrame(frame, &header, &payload), frame.size());
    EXPECT_EQ(header.request_id, 11u);
    EXPECT_EQ(ReplyFrameToText(header, payload), FormatReply(reply));
  }
}

// ---------------------------------------------------------------------------
// TCP end-to-end, v2 binary protocol
// ---------------------------------------------------------------------------

TEST_F(TcpServerTest, V2NegotiationAndQueriesMatchV1ByteForByte) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("ch", graph_), config);
  stack.SetPois({0, 3, 6, 9});

  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  LineClient v1;
  ASSERT_TRUE(v1.Connect(tcp.Port()));
  std::string banner;
  ASSERT_TRUE(v1.ReadLine(&banner));

  BinaryClient v2;
  ASSERT_TRUE(v2.Connect(tcp.Port()));
  EXPECT_EQ(v2.nodes(), stack.NumNodes());
  EXPECT_EQ(v2.arcs(), stack.NumArcs());

  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);
  const std::string queries[] = {
      "d 0 " + std::to_string(far),
      "p 0 " + std::to_string(far),
      "k 2 3",
      "b 3 0 5 5 0 0 0",
      "m 2 2 0 1 2 3",
  };
  for (const std::string& query : queries) {
    std::string v1_line;
    ASSERT_TRUE(v1.SendLine(query));
    ASSERT_TRUE(v1.ReadLine(&v1_line));

    const ParseResult parsed = ParseRequest(query, stack.Limits());
    ASSERT_TRUE(parsed.ok) << query;
    const std::uint64_t id =
        v2.SendRequest(OpcodeForKind(parsed.request.kind),
                       EncodeRequestBody(parsed.request));
    ASSERT_NE(id, 0u);
    BinaryClient::Frame frame;
    ASSERT_TRUE(v2.ReadReplyFor(id, &frame));
    EXPECT_EQ(frame.header.status, kStatusOk) << query;
    EXPECT_EQ(ReplyFrameToText(frame.header, frame.payload), v1_line)
        << query;
  }

  // The stats reply sees both protocols' request counters.
  const std::uint64_t id = v2.SendRequest(Opcode::kStats, {});
  BinaryClient::Frame frame;
  ASSERT_TRUE(v2.ReadReplyFor(id, &frame));
  EXPECT_NE(frame.payload.find("v1_requests="), std::string::npos);
  EXPECT_NE(frame.payload.find("v2_requests="), std::string::npos);
  EXPECT_NE(frame.payload.find("bytes_in="), std::string::npos);

  // Quit: one empty OK frame, then the server closes.
  const std::uint64_t quit_id = v2.SendRequest(Opcode::kQuit, {});
  ASSERT_TRUE(v2.ReadReplyFor(quit_id, &frame));
  EXPECT_EQ(frame.header.status, kStatusOk);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_TRUE(v2.AtEof());

  v1.SendLine("q");
  tcp.Stop();
}

// A frame delivered one fragment at a time — across many read() boundaries
// — must decode exactly once, when complete.
TEST_F(TcpServerTest, V2PartialFramesAcrossReadBoundaries) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  Dijkstra reference(graph_);
  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  BinaryClient client;
  ASSERT_TRUE(client.Connect(tcp.Port()));

  std::string body;
  PutU32(&body, 0);
  PutU32(&body, 6);
  const std::string frame = EncodeRequestFrame(Opcode::kDistance, 9, {}, body);
  for (std::size_t i = 0; i < frame.size(); i += 3) {
    ASSERT_TRUE(client.SendRaw(frame.substr(i, 3)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  BinaryClient::Frame reply;
  ASSERT_TRUE(client.ReadReplyFor(9, &reply));
  EXPECT_EQ(ReplyFrameToText(reply.header, reply.payload),
            FormatDistance(reference.Distance(0, 6)));

  // Two frames in one send, the second truncated: the first answers, the
  // rest waits for its missing bytes.
  std::string two = EncodeRequestFrame(Opcode::kDistance, 10, {}, body);
  const std::string second =
      EncodeRequestFrame(Opcode::kDistance, 11, {}, body);
  two += second.substr(0, 7);
  ASSERT_TRUE(client.SendRaw(two));
  ASSERT_TRUE(client.ReadReplyFor(10, &reply));
  ASSERT_TRUE(client.SendRaw(second.substr(7)));
  ASSERT_TRUE(client.ReadReplyFor(11, &reply));
  EXPECT_EQ(ReplyFrameToText(reply.header, reply.payload),
            FormatDistance(reference.Distance(0, 6)));
  tcp.Stop();
}

TEST_F(TcpServerTest, V2OversizedAndMalformedFramesAreRejected) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  TcpServerConfig tcp_config;
  tcp_config.max_frame_bytes = 64;
  TcpServer tcp(stack, tcp_config);
  ASSERT_TRUE(tcp.Start());

  // An announced length beyond max_frame_bytes is refused from the header
  // alone — no payload is ever buffered — with the id echoed back.
  {
    BinaryClient client;
    ASSERT_TRUE(client.Connect(tcp.Port()));
    std::string header;
    PutU32(&header, 1000);                               // len
    header.push_back(static_cast<char>(Opcode::kBatch));  // opcode
    header.push_back(0);                                  // status
    header.push_back(0);                                  // backend_len
    header.push_back(0);                                  // reserved
    PutU64(&header, 77);                                  // request id
    ASSERT_TRUE(client.SendRaw(header));
    BinaryClient::Frame reply;
    ASSERT_TRUE(client.ReadFrame(&reply));
    EXPECT_EQ(reply.header.opcode, Opcode::kBatch);
    EXPECT_EQ(reply.header.request_id, 77u);
    ErrorCode code = ErrorCode::kInternal;
    ASSERT_TRUE(ErrorFromStatus(reply.header.status, &code));
    EXPECT_EQ(code, ErrorCode::kTooLarge);
    EXPECT_TRUE(client.AtEof());
  }

  // A length below the 12-byte header remainder can never frame; the
  // connection is errored and closed.
  {
    BinaryClient client;
    ASSERT_TRUE(client.Connect(tcp.Port()));
    std::string bogus;
    PutU32(&bogus, 5);
    bogus.append(12, '\0');
    ASSERT_TRUE(client.SendRaw(bogus));
    BinaryClient::Frame reply;
    ASSERT_TRUE(client.ReadFrame(&reply));
    ErrorCode code = ErrorCode::kInternal;
    ASSERT_TRUE(ErrorFromStatus(reply.header.status, &code));
    EXPECT_EQ(code, ErrorCode::kBadRequest);
    EXPECT_TRUE(client.AtEof());
  }

  // A decode failure inside a well-framed request (unknown opcode) answers
  // an error frame but keeps the connection open — framing stayed intact.
  {
    BinaryClient client;
    ASSERT_TRUE(client.Connect(tcp.Port()));
    ASSERT_TRUE(client.SendRequestWithId(static_cast<Opcode>(0x6f), 5, {}));
    BinaryClient::Frame reply;
    ASSERT_TRUE(client.ReadReplyFor(5, &reply));
    ErrorCode code = ErrorCode::kInternal;
    ASSERT_TRUE(ErrorFromStatus(reply.header.status, &code));
    EXPECT_EQ(code, ErrorCode::kBadRequest);
    std::string body;
    PutU32(&body, 0);
    PutU32(&body, 1);
    const std::uint64_t id = client.SendRequest(Opcode::kDistance, body);
    ASSERT_TRUE(client.ReadReplyFor(id, &reply));
    EXPECT_EQ(reply.header.status, kStatusOk);
  }
  tcp.Stop();
}

// First bytes that are neither the magic nor sensible text fall back to the
// v1 path and get a structured v1 error — never a hung connection.
TEST_F(TcpServerTest, GarbageHelloFallsBackToTextError) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  LineClient client;
  ASSERT_TRUE(client.Connect(tcp.Port()));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  ASSERT_TRUE(client.Send("AHBX garbage hello\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_TRUE(StartsWith(line, "ERR bad-request")) << line;

  // The connection stays usable as a v1 session afterwards.
  Dijkstra reference(graph_);
  ASSERT_TRUE(client.Send("d 0 3\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, FormatDistance(reference.Distance(0, 3)));
  tcp.Stop();
}

// v2 pipelining: many frames in flight at once; replies may complete in any
// order and are matched purely by request id.
TEST_F(TcpServerTest, V2PipelinedRepliesMatchByRequestId) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("dijkstra", graph_), config);
  Dijkstra reference(graph_);
  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  BinaryClient client;
  ASSERT_TRUE(client.Connect(tcp.Port()));

  constexpr std::uint64_t kInFlight = 32;
  const NodeId n = static_cast<NodeId>(graph_.NumNodes());
  std::string burst;
  for (std::uint64_t i = 0; i < kInFlight; ++i) {
    std::string body;
    PutU32(&body, static_cast<std::uint32_t>(i % n));
    PutU32(&body, static_cast<std::uint32_t>((i * 7) % n));
    burst += EncodeRequestFrame(Opcode::kDistance, 1000 + i, {}, body);
  }
  ASSERT_TRUE(client.SendRaw(burst));

  // Collect in reverse submission order — the stash absorbs whatever
  // completion order the engine produced.
  for (std::uint64_t i = kInFlight; i-- > 0;) {
    BinaryClient::Frame reply;
    ASSERT_TRUE(client.ReadReplyFor(1000 + i, &reply));
    EXPECT_EQ(reply.header.opcode, Opcode::kDistance);
    EXPECT_EQ(ReplyFrameToText(reply.header, reply.payload),
              FormatDistance(reference.Distance(
                  static_cast<NodeId>(i % n),
                  static_cast<NodeId>((i * 7) % n))));
  }
  tcp.Stop();
}

// v1 and v2 clients on the same port, interleaved, answering identically.
TEST_F(TcpServerTest, MixedProtocolClientsShareOneServer) {
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(MakeOracle("ch", graph_), config);
  Dijkstra reference(graph_);
  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  LineClient v1;
  BinaryClient v2;
  ASSERT_TRUE(v1.Connect(tcp.Port()));
  std::string line;
  ASSERT_TRUE(v1.ReadLine(&line));
  ASSERT_TRUE(v2.Connect(tcp.Port()));

  for (NodeId t = 0; t < 12; ++t) {
    ASSERT_TRUE(v1.Send("d 1 " + std::to_string(t) + "\n"));
    std::string body;
    PutU32(&body, 1);
    PutU32(&body, t);
    const std::uint64_t id = v2.SendRequest(Opcode::kDistance, body);
    ASSERT_TRUE(v1.ReadLine(&line));
    BinaryClient::Frame frame;
    ASSERT_TRUE(v2.ReadReplyFor(id, &frame));
    const std::string expected = FormatDistance(reference.Distance(1, t));
    EXPECT_EQ(line, expected);
    EXPECT_EQ(ReplyFrameToText(frame.header, frame.payload), expected);
  }
  tcp.Stop();
}

// Every opcode in the v2 table gets a direct on-the-wire exercise: each
// request opcode earns its expected status on a live session, and a
// client-sent kHello — a server-to-client-only opcode — is rejected as
// bad-request instead of wedging the framing loop.
// tools/lint_invariants.py's opcode-coverage check keys on the
// Opcode::<name> literals here: a new opcode must be exercised in this
// file and documented in the README's frame table.
TEST_F(TcpServerTest, V2EveryOpcodeExercisedOnTheWire) {
  auto registry = std::make_shared<IndexRegistry>(
      graph_, std::vector<std::string>{"ch"});
  ServerConfig config;
  config.num_threads = 2;
  ServerStack stack(registry, config);
  stack.SetPois({0, 3, 6, 9});
  TcpServer tcp(stack, TcpServerConfig{});
  ASSERT_TRUE(tcp.Start());

  BinaryClient v2;
  ASSERT_TRUE(v2.Connect(tcp.Port()));

  const NodeId far = static_cast<NodeId>(graph_.NumNodes() - 1);
  ASSERT_GT(graph_.OutArcs(0).size(), 0u);
  const NodeId via = graph_.OutArcs(0)[0].head;
  const Weight heavier =
      static_cast<Weight>(graph_.OutArcs(0)[0].weight + 1);

  auto pair_body = [](NodeId a, NodeId b) {
    std::string body;
    PutU32(&body, a);
    PutU32(&body, b);
    return body;
  };
  std::string batch_body;
  PutU32(&batch_body, 1);
  PutU32(&batch_body, 0);
  PutU32(&batch_body, far);
  std::string matrix_body;
  PutU32(&matrix_body, 1);
  PutU32(&matrix_body, 1);
  PutU32(&matrix_body, 0);
  PutU32(&matrix_body, far);
  std::string update_body;
  PutU32(&update_body, 0);
  PutU32(&update_body, via);
  PutU32(&update_body, static_cast<std::uint32_t>(heavier));

  struct OpcodeCase {
    Opcode opcode;
    std::string body;
    std::string backend;
    bool expect_ok;
  };
  const std::vector<OpcodeCase> cases = {
      {Opcode::kDistance, pair_body(0, far), "", true},
      {Opcode::kPath, pair_body(0, far), "", true},
      {Opcode::kKNearest, pair_body(0, 2), "", true},
      {Opcode::kBatch, batch_body, "", true},
      {Opcode::kMatrix, matrix_body, "", true},
      {Opcode::kStats, {}, "", true},
      {Opcode::kInvalidate, {}, "", true},
      {Opcode::kUse, {}, "ch", true},
      {Opcode::kUpdate, update_body, "", true},
      {Opcode::kUpdateFile, "definitely/not/a/delta-file", "", false},
      {Opcode::kReload, {}, "", true},
      // kHello is the server's banner frame, never a legal request.
      {Opcode::kHello, {}, "", false},
  };
  for (const OpcodeCase& c : cases) {
    const std::uint64_t id = v2.SendRequest(c.opcode, c.body, c.backend);
    ASSERT_NE(id, 0u);
    BinaryClient::Frame frame;
    ASSERT_TRUE(v2.ReadReplyFor(id, &frame))
        << "opcode 0x" << static_cast<int>(c.opcode);
    EXPECT_EQ(frame.header.opcode, c.opcode);
    EXPECT_EQ(frame.header.status == kStatusOk, c.expect_ok)
        << ReplyFrameToText(frame.header, frame.payload);
  }
  ErrorCode hello_error = ErrorCode::kInternal;
  {
    const std::uint64_t id = v2.SendRequest(Opcode::kHello, {});
    BinaryClient::Frame frame;
    ASSERT_TRUE(v2.ReadReplyFor(id, &frame));
    ASSERT_TRUE(ErrorFromStatus(frame.header.status, &hello_error));
    EXPECT_EQ(hello_error, ErrorCode::kBadRequest);
  }

  stack.registry().WaitForRebuild();
  const std::uint64_t quit_id = v2.SendRequest(Opcode::kQuit, {});
  BinaryClient::Frame frame;
  ASSERT_TRUE(v2.ReadReplyFor(quit_id, &frame));
  EXPECT_EQ(frame.header.status, kStatusOk);
  EXPECT_TRUE(v2.AtEof());
  tcp.Stop();
}

// ---------------------------------------------------------------------------
// Post-swap cache warm-up
// ---------------------------------------------------------------------------

TEST_F(ServerStackTest, WarmupRePrimesHottestEntriesAcrossSwap) {
  auto registry = std::make_shared<IndexRegistry>(
      graph_, std::vector<std::string>{"dijkstra"});
  ServerConfig config = SmallConfig();
  config.warmup_top_k = 4;
  ServerStack stack(registry, config);

  ASSERT_GT(graph_.OutArcs(0).size(), 0u);
  const NodeId via = graph_.OutArcs(0)[0].head;
  const Weight new_weight =
      static_cast<Weight>(graph_.OutArcs(0)[0].weight * 1000 + 1);
  Graph updated = graph_;
  updated.SetArcWeight(0, via, new_weight);
  Dijkstra after(updated);

  // Four hot keys: queried twice so their hit counters rank them.
  const std::vector<std::pair<NodeId, NodeId>> hot_keys = {
      {0, via}, {0, 9}, {3, 12}, {via, 0}};
  for (int round = 0; round < 2; ++round) {
    for (const auto& [s, t] : hot_keys) {
      stack.HandleLine("d " + std::to_string(s) + " " + std::to_string(t));
    }
  }

  ASSERT_EQ(stack.HandleLine("upd 0 " + std::to_string(via) + " " +
                             std::to_string(new_weight)),
            "OK upd 1");
  ASSERT_EQ(stack.HandleLine("reload"), "OK reload 1");
  registry->WaitForRebuild();

  // The swap re-primed the hottest entries on the fresh epoch before
  // publishing it.
  const CacheStats warmed = stack.cache().Totals();
  EXPECT_EQ(warmed.warmup_entries, 4u);
  EXPECT_EQ(warmed.warmup_hits, 0u);

  // Re-querying the hot keys answers from the warmed entries: correct
  // post-update values, no new insertions, no lazy invalidations.
  const std::uint64_t insertions_before = warmed.insertions;
  for (const auto& [s, t] : hot_keys) {
    EXPECT_EQ(stack.HandleLine("d " + std::to_string(s) + " " +
                               std::to_string(t)),
              FormatDistance(after.Distance(s, t)));
  }
  const CacheStats served = stack.cache().Totals();
  EXPECT_EQ(served.insertions, insertions_before);
  EXPECT_EQ(served.warmup_hits, 4u);
  EXPECT_EQ(served.invalidations, 0u);

  // The stats line exports the warm-up counters.
  const std::string stats = stack.StatsLine();
  EXPECT_NE(stats.find("warmup_entries=4"), std::string::npos) << stats;
  EXPECT_NE(stats.find("warmup_hits=4"), std::string::npos) << stats;
}

}  // namespace
}  // namespace ah::server
