#include <gtest/gtest.h>

#include <numeric>

#include "hier/contraction.h"
#include "hier/search_graph.h"
#include "hier/upward_query.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "test_util.h"

namespace ah {
namespace {

struct Built {
  Graph graph;
  SearchGraph sg;
};

Built BuildIdentityOrder(std::size_t n, std::size_t extra,
                         std::uint64_t seed) {
  Graph g = testing::MakeRandomGraph(n, extra, seed);
  ContractionEngine engine(g.NumNodes(), ArcsOf(g));
  std::vector<Rank> rank(g.NumNodes());
  std::iota(rank.begin(), rank.end(), 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) engine.Contract(v);
  SearchGraph sg(g.NumNodes(), engine.EmittedArcs(), std::move(rank));
  return Built{std::move(g), std::move(sg)};
}

TEST(SearchGraphTest, ArcsPartitionedByRank) {
  Built b = BuildIdentityOrder(50, 150, 4);
  std::size_t total = 0;
  for (NodeId v = 0; v < b.sg.NumNodes(); ++v) {
    for (const UpArc& a : b.sg.UpOut(v)) {
      EXPECT_GT(b.sg.RankOf(a.node), b.sg.RankOf(v));
    }
    for (const UpArc& a : b.sg.UpIn(v)) {
      EXPECT_GT(b.sg.RankOf(a.node), b.sg.RankOf(v));
    }
    total += b.sg.UpOut(v).size() + b.sg.UpIn(v).size();
  }
  EXPECT_EQ(total, b.sg.NumArcs());
}

TEST(SearchGraphTest, UnpackedArcsAreRealPaths) {
  Built b = BuildIdentityOrder(60, 200, 8);
  // Every stored arc must expand into a real path of exactly its weight.
  for (NodeId v = 0; v < b.sg.NumNodes(); ++v) {
    for (const UpArc& a : b.sg.UpOut(v)) {
      std::vector<NodeId> path = {v};
      b.sg.AppendUnpacked(v, a.node, &path);
      EXPECT_TRUE(IsValidPath(b.graph, path, v, a.node, a.weight));
    }
    for (const UpArc& a : b.sg.UpIn(v)) {
      std::vector<NodeId> path = {a.node};
      b.sg.AppendUnpacked(a.node, v, &path);
      EXPECT_TRUE(IsValidPath(b.graph, path, a.node, v, a.weight));
    }
  }
}

TEST(SearchGraphTest, HierArcWeightLookup) {
  Built b = BuildIdentityOrder(30, 90, 2);
  for (NodeId v = 0; v < b.sg.NumNodes(); ++v) {
    for (const UpArc& a : b.sg.UpOut(v)) {
      EXPECT_EQ(b.sg.HierArcWeight(v, a.node), a.weight);
    }
  }
  EXPECT_EQ(b.sg.HierArcWeight(0, 0), kMaxWeight);
}

TEST(SearchGraphTest, UnknownArcThrowsOnUnpack) {
  Built b = BuildIdentityOrder(10, 20, 3);
  std::vector<NodeId> out;
  EXPECT_THROW(b.sg.AppendUnpacked(0, 0, &out), std::logic_error);
}

TEST(SearchGraphTest, SizeBytesGrowsWithGraph) {
  Built small = BuildIdentityOrder(20, 40, 5);
  Built large = BuildIdentityOrder(200, 600, 5);
  EXPECT_LT(small.sg.SizeBytes(), large.sg.SizeBytes());
}

class UpwardQuerySeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpwardQuerySeedTest, MatchesDijkstraWithArbitraryOrder) {
  // The hierarchy theorem: with witness-checked contraction, the upward
  // bidirectional search is exact for ANY contraction order.
  Graph g = testing::MakeRandomGraph(150, 500, GetParam());
  Rng rng(GetParam() * 31);
  std::vector<NodeId> order(g.NumNodes());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = g.NumNodes(); i-- > 1;) {
    std::swap(order[i], order[rng.Uniform(i + 1)]);
  }
  ContractionEngine engine(g.NumNodes(), ArcsOf(g));
  std::vector<Rank> rank(g.NumNodes());
  for (Rank r = 0; r < order.size(); ++r) rank[order[r]] = r;
  for (NodeId v : order) engine.Contract(v);
  SearchGraph sg(g.NumNodes(), engine.EmittedArcs(), std::move(rank));

  BidirUpwardSearch search(sg);
  Dijkstra dijkstra(g);
  for (int q = 0; q < 60; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(search.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(UpwardQuerySeedTest, HierarchyPathUnpacksToShortestPath) {
  Graph g = testing::MakeRandomGraph(100, 300, GetParam() ^ 0xf00);
  ContractionEngine engine(g.NumNodes(), ArcsOf(g));
  std::vector<Rank> rank(g.NumNodes());
  std::iota(rank.begin(), rank.end(), 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) engine.Contract(v);
  SearchGraph sg(g.NumNodes(), engine.EmittedArcs(), std::move(rank));

  BidirUpwardSearch search(sg);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 30; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    if (s == t) continue;
    const Dist d = search.Distance(s, t);
    ASSERT_EQ(d, dijkstra.Distance(s, t));
    if (d == kInfDist) continue;
    const auto hier = search.HierarchyPath();
    ASSERT_FALSE(hier.empty());
    EXPECT_EQ(hier.front(), s);
    EXPECT_EQ(hier.back(), t);
    const auto full = sg.UnpackPath(hier);
    EXPECT_TRUE(IsValidPath(g, full, s, t, d));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpwardQuerySeedTest,
                         ::testing::Values(7, 21, 63, 189));

TEST(UpwardQueryTest, SelfQueryIsZero) {
  Built b = BuildIdentityOrder(20, 60, 6);
  BidirUpwardSearch search(b.sg);
  EXPECT_EQ(search.Distance(5, 5), 0u);
}

TEST(UpwardQueryTest, SeededRunUsesSeedDistances) {
  Built b = BuildIdentityOrder(40, 120, 7);
  BidirUpwardSearch search(b.sg);
  Dijkstra dijkstra(b.graph);
  const NodeId s = 0, t = 9;
  const Dist direct = dijkstra.Distance(s, t);
  if (direct == kInfDist) GTEST_SKIP();
  // Seeding the forward side at s with an offset shifts the result.
  const SearchSeed fs{s, 100};
  const SearchSeed ts{t, 0};
  const Dist shifted = search.Run(std::span(&fs, 1), std::span(&ts, 1));
  EXPECT_EQ(shifted, direct + 100);
}

TEST(UpwardQueryTest, StatsPopulated) {
  Built b = BuildIdentityOrder(60, 180, 8);
  BidirUpwardSearch search(b.sg);
  search.Distance(0, 30);
  EXPECT_GT(search.Stats().settled, 0u);
}

}  // namespace
}  // namespace ah
