#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.h"
#include "graph/connectivity.h"
#include "graph/dimacs.h"
#include "graph/graph.h"
#include "graph/light_graph.h"
#include "test_util.h"

namespace ah {
namespace {

Graph Triangle() {
  GraphBuilder b(3);
  b.AddNode({0, 0});
  b.AddNode({10, 0});
  b.AddNode({0, 10});
  b.AddBidirectional(0, 1, 5);
  b.AddBidirectional(1, 2, 7);
  b.AddBidirectional(2, 0, 9);
  return b.Build();
}

TEST(GraphBuilderTest, BasicCounts) {
  Graph g = Triangle();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumArcs(), 6u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 2u);
}

TEST(GraphBuilderTest, ParallelArcsKeepMinimum) {
  GraphBuilder b(2);
  b.AddNode({0, 0});
  b.AddNode({1, 1});
  b.AddArc(0, 1, 10);
  b.AddArc(0, 1, 3);
  b.AddArc(0, 1, 8);
  Graph g = b.Build();
  EXPECT_EQ(g.NumArcs(), 1u);
  EXPECT_EQ(g.ArcWeight(0, 1), 3u);
}

TEST(GraphBuilderTest, SelfLoopsDropped) {
  GraphBuilder b(1);
  b.AddNode({0, 0});
  b.AddArc(0, 0, 5);
  EXPECT_EQ(b.Build().NumArcs(), 0u);
}

TEST(GraphBuilderTest, RejectsZeroWeight) {
  GraphBuilder b(2);
  b.AddNode({0, 0});
  b.AddNode({1, 1});
  EXPECT_THROW(b.AddArc(0, 1, 0), std::invalid_argument);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(1);
  b.AddNode({0, 0});
  EXPECT_THROW(b.AddArc(0, 5, 1), std::out_of_range);
}

TEST(GraphTest, InArcsMirrorOutArcs) {
  Graph g = testing::MakeRandomGraph(50, 150, 11);
  std::size_t out_total = 0;
  std::size_t in_total = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    out_total += g.OutDegree(v);
    in_total += g.InDegree(v);
    for (const Arc& a : g.OutArcs(v)) {
      // The reverse record must exist in a.head's in-list.
      bool found = false;
      for (const Arc& r : g.InArcs(a.head)) {
        found |= r.head == v && r.weight == a.weight;
      }
      EXPECT_TRUE(found);
    }
  }
  EXPECT_EQ(out_total, in_total);
  EXPECT_EQ(out_total, g.NumArcs());
}

TEST(GraphTest, ArcWeightAbsent) {
  Graph g = Triangle();
  GraphBuilder b(2);
  b.AddNode({0, 0});
  b.AddNode({5, 5});
  Graph g2 = b.Build();
  EXPECT_EQ(g2.ArcWeight(0, 1), kMaxWeight);
}

TEST(GraphTest, MaxDegree) {
  Graph g = Triangle();
  EXPECT_EQ(g.MaxDegree(), 4u);  // 2 out + 2 in.
}

TEST(GraphTest, BoundingBox) {
  Graph g = Triangle();
  const Box box = g.BoundingBox();
  EXPECT_EQ(box.min_x, 0);
  EXPECT_EQ(box.max_x, 10);
  EXPECT_EQ(box.max_y, 10);
}

TEST(GraphTest, SizeBytesPositive) {
  EXPECT_GT(Triangle().SizeBytes(), 0u);
}

TEST(LightGraphTest, FromGraphMatches) {
  Graph g = testing::MakeRandomGraph(30, 60, 5);
  LightGraph lg = LightGraph::FromGraph(g);
  ASSERT_EQ(lg.NumNodes(), g.NumNodes());
  ASSERT_EQ(lg.NumArcs(), g.NumArcs());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(lg.OutArcs(v).size(), g.OutArcs(v).size());
    ASSERT_EQ(lg.InArcs(v).size(), g.InArcs(v).size());
  }
}

TEST(LightGraphTest, FromArcList) {
  std::vector<HierArc> arcs = {{0, 1, 5, kInvalidNode},
                               {1, 2, 7, kInvalidNode},
                               {2, 0, 9, kInvalidNode}};
  LightGraph lg(3, arcs);
  EXPECT_EQ(lg.NumArcs(), 3u);
  EXPECT_EQ(lg.OutArcs(0).size(), 1u);
  EXPECT_EQ(lg.OutArcs(0)[0].head, 1u);
  EXPECT_EQ(lg.InArcs(0).size(), 1u);
  EXPECT_EQ(lg.InArcs(0)[0].head, 2u);  // Tail of arc 2->0.
}

TEST(DimacsTest, RoundTrip) {
  Graph g = testing::MakeRandomGraph(40, 120, 17);
  std::ostringstream gr, co;
  WriteDimacsGraph(g, gr);
  WriteDimacsCoords(g, co);
  std::istringstream gri(gr.str()), coi(co.str());
  Graph g2 = ReadDimacs(gri, coi);
  ASSERT_EQ(g2.NumNodes(), g.NumNodes());
  ASSERT_EQ(g2.NumArcs(), g.NumArcs());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(g2.Coord(v), g.Coord(v));
    ASSERT_EQ(g2.OutDegree(v), g.OutDegree(v));
    for (const Arc& a : g.OutArcs(v)) {
      EXPECT_EQ(g2.ArcWeight(v, a.head), a.weight);
    }
  }
}

TEST(DimacsTest, RejectsMissingHeader) {
  std::istringstream gr("a 1 2 3\n");
  std::istringstream co("p aux sp co 2\nv 1 0 0\nv 2 1 1\n");
  EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
}

TEST(DimacsTest, RejectsBadArcEndpoint) {
  std::istringstream gr("p sp 2 1\na 1 9 3\n");
  std::istringstream co("p aux sp co 2\nv 1 0 0\nv 2 1 1\n");
  EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
}

TEST(DimacsTest, RejectsNodeCountMismatch) {
  std::istringstream gr("p sp 3 1\na 1 2 3\n");
  std::istringstream co("p aux sp co 2\nv 1 0 0\nv 2 1 1\n");
  EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
}

TEST(DimacsTest, RejectsMissingCoordinate) {
  std::istringstream gr("p sp 2 1\na 1 2 3\n");
  std::istringstream co("p aux sp co 2\nv 1 0 0\n");
  EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
}

TEST(DimacsTest, RejectsNonPositiveWeight) {
  std::istringstream gr("p sp 2 1\na 1 2 0\n");
  std::istringstream co("p aux sp co 2\nv 1 0 0\nv 2 1 1\n");
  EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
}

TEST(ConnectivityTest, SingleSccDetected) {
  EXPECT_TRUE(IsStronglyConnected(Triangle()));
}

TEST(ConnectivityTest, DirectedChainIsNotScc) {
  GraphBuilder b(3);
  b.AddNode({0, 0});
  b.AddNode({1, 0});
  b.AddNode({2, 0});
  b.AddArc(0, 1, 1);
  b.AddArc(1, 2, 1);
  Graph g = b.Build();
  EXPECT_FALSE(IsStronglyConnected(g));
  std::size_t num = 0;
  StronglyConnectedComponents(g, &num);
  EXPECT_EQ(num, 3u);
}

TEST(ConnectivityTest, TwoComponents) {
  GraphBuilder b(5);
  for (int i = 0; i < 5; ++i) b.AddNode({i, 0});
  // SCC {0,1,2} and SCC {3,4}; one-way bridge 2->3.
  b.AddArc(0, 1, 1);
  b.AddArc(1, 2, 1);
  b.AddArc(2, 0, 1);
  b.AddArc(2, 3, 1);
  b.AddArc(3, 4, 1);
  b.AddArc(4, 3, 1);
  Graph g = b.Build();
  std::size_t num = 0;
  auto comp = StronglyConnectedComponents(g, &num);
  EXPECT_EQ(num, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(ConnectivityTest, LargestComponentExtraction) {
  GraphBuilder b(5);
  for (int i = 0; i < 5; ++i) b.AddNode({i, i});
  b.AddArc(0, 1, 1);
  b.AddArc(1, 2, 1);
  b.AddArc(2, 0, 1);
  b.AddArc(3, 4, 1);
  b.AddArc(4, 3, 1);
  Graph g = b.Build();
  std::vector<NodeId> mapping;
  Graph scc = LargestStronglyConnectedComponent(g, &mapping);
  EXPECT_EQ(scc.NumNodes(), 3u);
  EXPECT_TRUE(IsStronglyConnected(scc));
  EXPECT_NE(mapping[0], kInvalidNode);
  EXPECT_EQ(mapping[3], kInvalidNode);
  // Coordinates preserved through the mapping.
  EXPECT_EQ(scc.Coord(mapping[1]), g.Coord(1));
}

TEST(ConnectivityTest, LargeRandomSccIsConnected) {
  Graph g = testing::MakeRandomGraph(500, 1500, 23);
  EXPECT_TRUE(IsStronglyConnected(g));  // Cycle backbone guarantees it.
}

TEST(LightGraphTest, MidpointUnpackExpandsShortcuts) {
  // 0→1→2 plus a shortcut 0→2 with midpoint 1.
  const std::vector<HierArc> arcs = {
      {0, 1, 3, kInvalidNode},
      {1, 2, 4, kInvalidNode},
      {0, 2, 7, 1},
  };
  const LightGraph lg(3, arcs, /*unpack_only=*/{});
  ASSERT_TRUE(lg.HasMids());
  EXPECT_EQ(lg.NumArcs(), 3u);
  EXPECT_EQ(lg.NumUnpackArcs(), 3u);
  EXPECT_EQ(lg.UnpackPath({0, 2}), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(lg.UnpackPath({0, 1, 2}), (std::vector<NodeId>{0, 1, 2}));
}

TEST(LightGraphTest, UnpackOnlyArcsAreInvisibleToQueries) {
  const std::vector<HierArc> arcs = {{0, 1, 3, kInvalidNode}};
  const std::vector<HierArc> unpack_only = {{1, 2, 4, kInvalidNode}};
  const LightGraph lg(3, arcs, unpack_only);
  EXPECT_EQ(lg.NumArcs(), 1u);
  EXPECT_EQ(lg.OutArcs(1).size(), 0u);  // Invisible to the search.
  EXPECT_EQ(lg.NumUnpackArcs(), 2u);
  std::vector<NodeId> out;
  lg.AppendUnpacked(1, 2, &out);  // Still resolvable for expansion.
  EXPECT_EQ(out, std::vector<NodeId>{2});
}

TEST(LightGraphTest, IllFormedUnpackTableThrowsInsteadOfSpinning) {
  // A mutually recursive midpoint cycle that a corrupted index file could
  // carry: expanding 0→1 would re-derive itself forever without the strict
  // weight-descent check.
  const std::vector<HierArc> arcs = {
      {0, 1, 1, 2},
      {0, 2, 1, kInvalidNode},
      {2, 1, 1, kInvalidNode},
  };
  const LightGraph lg(3, arcs, /*unpack_only=*/{});
  std::vector<NodeId> out;
  EXPECT_THROW(lg.AppendUnpacked(0, 1, &out), std::logic_error);
  // Unknown arcs are reported, not dereferenced.
  EXPECT_THROW(lg.AppendUnpacked(1, 0, &out), std::logic_error);
}

}  // namespace
}  // namespace ah
