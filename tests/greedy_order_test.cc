#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "hier/greedy_order.h"
#include "hier/search_graph.h"
#include "hier/upward_query.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace ah {
namespace {

TEST(GreedyOrderTest, ContractsExactlyTheSubset) {
  Graph g = testing::MakeRandomGraph(60, 180, 1);
  ContractionEngine engine(g.NumNodes(), ArcsOf(g));
  std::vector<NodeId> subset = {3, 7, 11, 19, 23};
  const auto order = ContractGreedySubset(engine, subset);
  ASSERT_EQ(order.size(), subset.size());
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::sort(subset.begin(), subset.end());
  EXPECT_EQ(sorted, subset);
  for (NodeId v : subset) EXPECT_TRUE(engine.IsContracted(v));
  EXPECT_EQ(engine.NumContracted(), subset.size());
}

TEST(GreedyOrderTest, FullContractionYieldsExactHierarchy) {
  Graph g = testing::MakeRandomGraph(120, 360, 5);
  ContractionEngine engine(g.NumNodes(), ArcsOf(g));
  std::vector<NodeId> all(g.NumNodes());
  std::iota(all.begin(), all.end(), 0);
  const auto order = ContractGreedySubset(engine, all);
  std::vector<Rank> rank(g.NumNodes());
  for (Rank r = 0; r < order.size(); ++r) rank[order[r]] = r;
  SearchGraph sg(g.NumNodes(), engine.EmittedArcs(), std::move(rank));
  BidirUpwardSearch search(sg);
  Dijkstra dijkstra(g);
  Rng rng(5);
  for (int q = 0; q < 50; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(search.Distance(s, t), dijkstra.Distance(s, t));
  }
}

TEST(GreedyOrderTest, GreedyAddsFewerShortcutsThanIdOrder) {
  Graph g = testing::MakeRoadGraph(24, 7);
  ContractionEngine greedy_engine(g.NumNodes(), ArcsOf(g));
  std::vector<NodeId> all(g.NumNodes());
  std::iota(all.begin(), all.end(), 0);
  ContractGreedySubset(greedy_engine, all);

  ContractionEngine id_engine(g.NumNodes(), ArcsOf(g));
  for (NodeId v = 0; v < g.NumNodes(); ++v) id_engine.Contract(v);

  EXPECT_LT(greedy_engine.NumShortcutsAdded(),
            id_engine.NumShortcutsAdded());
}

TEST(GreedyOrderTest, DeterministicOrder) {
  Graph g = testing::MakeRoadGraph(14, 9);
  std::vector<NodeId> all(g.NumNodes());
  std::iota(all.begin(), all.end(), 0);
  ContractionEngine e1(g.NumNodes(), ArcsOf(g));
  ContractionEngine e2(g.NumNodes(), ArcsOf(g));
  EXPECT_EQ(ContractGreedySubset(e1, all), ContractGreedySubset(e2, all));
}

TEST(GreedyOrderTest, EmptySubsetIsNoop) {
  Graph g = testing::MakeRandomGraph(10, 30, 2);
  ContractionEngine engine(g.NumNodes(), ArcsOf(g));
  EXPECT_TRUE(ContractGreedySubset(engine, {}).empty());
  EXPECT_EQ(engine.NumContracted(), 0u);
}

TEST(StallOnDemandTest, StallingDoesNotChangeAnswers) {
  Graph g = testing::MakeRoadGraph(22, 13);
  ContractionEngine engine(g.NumNodes(), ArcsOf(g));
  std::vector<NodeId> all(g.NumNodes());
  std::iota(all.begin(), all.end(), 0);
  const auto order = ContractGreedySubset(engine, all);
  std::vector<Rank> rank(g.NumNodes());
  for (Rank r = 0; r < order.size(); ++r) rank[order[r]] = r;
  SearchGraph sg(g.NumNodes(), engine.EmittedArcs(), std::move(rank));

  BidirUpwardSearch with_stall(sg);
  BidirUpwardSearch without(sg);
  without.SetStallOnDemand(false);
  Rng rng(13);
  std::size_t stalled_total = 0;
  for (int q = 0; q < 80; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist a = with_stall.Distance(s, t);
    stalled_total += with_stall.Stats().stalled;
    const Dist b = without.Distance(s, t);
    ASSERT_EQ(a, b) << "s=" << s << " t=" << t;
  }
  EXPECT_GT(stalled_total, 0u);  // Stalling actually fires on road graphs.
}

}  // namespace
}  // namespace ah
