#include <gtest/gtest.h>

#include <cstdlib>

#include "gen/catalog.h"
#include "gen/road_gen.h"
#include "graph/connectivity.h"

namespace ah {
namespace {

TEST(RoadGenTest, DeterministicPerSeed) {
  RoadGenParams p;
  p.cols = p.rows = 20;
  p.seed = 5;
  Graph a = GenerateRoadNetwork(p);
  Graph b = GenerateRoadNetwork(p);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumArcs(), b.NumArcs());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.Coord(v), b.Coord(v));
  }
}

TEST(RoadGenTest, DifferentSeedsDiffer) {
  RoadGenParams p;
  p.cols = p.rows = 20;
  p.seed = 5;
  Graph a = GenerateRoadNetwork(p);
  p.seed = 6;
  Graph b = GenerateRoadNetwork(p);
  EXPECT_NE(a.NumArcs(), b.NumArcs());  // Overwhelmingly likely.
}

TEST(RoadGenTest, StronglyConnected) {
  RoadGenParams p;
  p.cols = p.rows = 24;
  p.seed = 9;
  EXPECT_TRUE(IsStronglyConnected(GenerateRoadNetwork(p)));
}

TEST(RoadGenTest, PositiveWeights) {
  RoadGenParams p;
  p.cols = p.rows = 16;
  Graph g = GenerateRoadNetwork(p);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Arc& a : g.OutArcs(v)) EXPECT_GT(a.weight, 0u);
  }
}

TEST(RoadGenTest, DegreeBounded) {
  RoadGenParams p;
  p.cols = p.rows = 32;
  Graph g = GenerateRoadNetwork(p);
  // Grid + diagonals: at most ~6 undirected neighbors = 12 in+out.
  EXPECT_LE(g.MaxDegree(), 16u);
}

TEST(RoadGenTest, RejectsTinyGrid) {
  RoadGenParams p;
  p.cols = 1;
  EXPECT_THROW(GenerateRoadNetwork(p), std::invalid_argument);
}

TEST(RoadGenTest, RejectsNonPositiveSpeed) {
  RoadGenParams p;
  p.local_speed = 0;
  EXPECT_THROW(GenerateRoadNetwork(p), std::invalid_argument);
}

class RoadGenSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RoadGenSizeTest, HitsTargetNodeCountApproximately) {
  const std::size_t target = GetParam();
  RoadGenParams p = ParamsForTargetNodes(target, 3);
  Graph g = GenerateRoadNetwork(p);
  EXPECT_GT(g.NumNodes(), target * 7 / 10);
  EXPECT_LT(g.NumNodes(), target * 13 / 10 + 32);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoadGenSizeTest,
                         ::testing::Values(100, 500, 2000, 8000));

TEST(RoadGenTest, ArterialPeriodsChangeWeightMix) {
  // Highways are faster: total travel time with highways should be lower
  // than a pure local grid of the same layout.
  RoadGenParams local_only;
  local_only.cols = local_only.rows = 24;
  local_only.arterial_period = 0;
  local_only.highway_period = 0;
  local_only.seed = 77;
  RoadGenParams tiered = local_only;
  tiered.arterial_period = 8;
  tiered.highway_period = 16;
  Graph a = GenerateRoadNetwork(local_only);
  Graph b = GenerateRoadNetwork(tiered);
  auto avg_weight = [](const Graph& g) {
    double sum = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      for (const Arc& arc : g.OutArcs(v)) sum += arc.weight;
    }
    return sum / static_cast<double>(g.NumArcs());
  };
  EXPECT_LT(avg_weight(b), avg_weight(a));
}

TEST(CatalogTest, HasTenPaperDatasets) {
  const auto& datasets = PaperDatasets();
  ASSERT_EQ(datasets.size(), 10u);
  EXPECT_EQ(datasets.front().name, "DE");
  EXPECT_EQ(datasets.front().paper_nodes, 48812u);
  EXPECT_EQ(datasets.back().name, "US");
  EXPECT_EQ(datasets.back().paper_nodes, 23947347u);
  // Sorted ascending by size, as the paper's Table 2.
  for (std::size_t i = 1; i < datasets.size(); ++i) {
    EXPECT_LT(datasets[i - 1].paper_nodes, datasets[i].paper_nodes);
  }
}

TEST(CatalogTest, FindDataset) {
  EXPECT_TRUE(FindDataset("CO").has_value());
  EXPECT_EQ(FindDataset("CO")->region, "Colorado");
  EXPECT_FALSE(FindDataset("XX").has_value());
}

TEST(CatalogTest, ScaledDatasetSize) {
  const DatasetSpec de = *FindDataset("DE");
  Graph g = MakeScaledDataset(de, 1.0 / 64.0);
  const std::size_t target = de.paper_nodes / 64;
  EXPECT_GT(g.NumNodes(), target * 7 / 10);
  EXPECT_LT(g.NumNodes(), target * 13 / 10);
  EXPECT_TRUE(IsStronglyConnected(g));
}

TEST(CatalogTest, ScaledDatasetDeterministic) {
  const DatasetSpec de = *FindDataset("DE");
  Graph a = MakeScaledDataset(de, 1.0 / 128.0);
  Graph b = MakeScaledDataset(de, 1.0 / 128.0);
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.NumArcs(), b.NumArcs());
}

TEST(CatalogTest, BenchScaleParsing) {
  setenv("AH_BENCH_SCALE", "tiny", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0 / 256.0);
  setenv("AH_BENCH_SCALE", "full", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  setenv("AH_BENCH_SCALE", "0.125", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 0.125);
  setenv("AH_BENCH_SCALE", "bogus", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0 / 16.0);
  unsetenv("AH_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0 / 16.0);
}

TEST(CatalogTest, BenchDatasetCountParsing) {
  setenv("AH_BENCH_DATASETS", "3", 1);
  EXPECT_EQ(BenchDatasetCountFromEnv(5), 3u);
  setenv("AH_BENCH_DATASETS", "99", 1);
  EXPECT_EQ(BenchDatasetCountFromEnv(5), 10u);  // Clamped to catalog size.
  unsetenv("AH_BENCH_DATASETS");
  EXPECT_EQ(BenchDatasetCountFromEnv(5), 5u);
}

}  // namespace
}  // namespace ah
