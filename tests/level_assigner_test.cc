#include <gtest/gtest.h>

#include "core/level_assigner.h"
#include "test_util.h"

namespace ah {
namespace {

struct Assigned {
  Graph graph;
  GridHierarchy grids;
  LevelAssignment assignment;
};

Assigned Assign(std::uint32_t side, std::uint64_t seed) {
  Graph g = testing::MakeRoadGraph(side, seed);
  GridHierarchy gh(g.Coords(), 12);
  const Nuance nuance(seed);
  LevelAssignment a = AssignLevels(g, gh, nuance);
  return Assigned{std::move(g), std::move(gh), std::move(a)};
}

TEST(LevelAssignerTest, LevelsWithinRange) {
  Assigned a = Assign(20, 1);
  ASSERT_EQ(a.assignment.level.size(), a.graph.NumNodes());
  for (Level lv : a.assignment.level) {
    EXPECT_GE(lv, 0);
    EXPECT_LE(lv, a.assignment.max_level);
  }
  EXPECT_LE(a.assignment.max_level, a.grids.Depth());
}

TEST(LevelAssignerTest, LevelPopulationShrinksUpward) {
  Assigned a = Assign(28, 2);
  ASSERT_GE(a.assignment.max_level, 2);
  std::vector<std::size_t> histogram(a.assignment.max_level + 1, 0);
  for (Level lv : a.assignment.level) ++histogram[lv];
  // The raw assignment promotes most through-traffic nodes to level >= 1
  // (the §4.4 downgrading pass later thins the hierarchy); what must hold
  // here is that the population shrinks toward the top.
  EXPECT_GT(histogram[0], 0u);
  EXPECT_LT(histogram[a.assignment.max_level],
            a.graph.NumNodes() / 4);
  EXPECT_LT(histogram[a.assignment.max_level], histogram[1]);
}

TEST(LevelAssignerTest, CoresPerIterationDecrease) {
  Assigned a = Assign(24, 3);
  const auto& cores = a.assignment.cores_per_iteration;
  ASSERT_FALSE(cores.empty());
  for (std::size_t i = 1; i < cores.size(); ++i) {
    EXPECT_LE(cores[i], cores[i - 1]);
  }
  EXPECT_LT(cores.front(), a.graph.NumNodes());
}

TEST(LevelAssignerTest, PseudoArterialEndpointsReachTheirLevel) {
  Assigned a = Assign(20, 4);
  for (std::size_t i = 1; i <= a.assignment.pseudo_arterial.size(); ++i) {
    for (const auto& [u, v] : a.assignment.pseudo_arterial[i - 1]) {
      // An endpoint of an S_i edge was made a level-i core, so its final
      // level is at least i.
      EXPECT_GE(a.assignment.level[u], static_cast<Level>(i));
      EXPECT_GE(a.assignment.level[v], static_cast<Level>(i));
    }
  }
}

TEST(LevelAssignerTest, Deterministic) {
  Assigned a = Assign(16, 5);
  Assigned b = Assign(16, 5);
  EXPECT_EQ(a.assignment.level, b.assignment.level);
  EXPECT_EQ(a.assignment.max_level, b.assignment.max_level);
}

TEST(LevelAssignerTest, ProducesMultipleLevelsOnRoadNetworks) {
  Assigned a = Assign(32, 6);
  EXPECT_GE(a.assignment.max_level, 2);
}

TEST(LevelAssignerTest, TinyGraphDoesNotCrash) {
  GraphBuilder b(2);
  b.AddNode({0, 0});
  b.AddNode({1000, 1000});
  b.AddBidirectional(0, 1, 5);
  Graph g = b.Build();
  GridHierarchy gh(g.Coords(), 6);
  const Nuance nuance(1);
  const LevelAssignment a = AssignLevels(g, gh, nuance);
  EXPECT_EQ(a.level.size(), 2u);
}

}  // namespace
}  // namespace ah
