#include <gtest/gtest.h>

#include <sstream>

#include "fc/fc_index.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "test_util.h"

namespace ah {
namespace {

class FcSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FcSeedTest, LevelOnlyModeMatchesDijkstraOnRandomGraph) {
  // Without the proximity constraint FC is exact for any level function
  // (the §3.4 upswing argument) — even on non-road-like graphs.
  Graph g = testing::MakeRandomGraph(150, 450, GetParam());
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index, FcQueryOptions{.use_proximity = false});
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 50; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(FcSeedTest, FullConstraintsMatchDijkstraOnRoadGraph) {
  Graph g = testing::MakeRoadGraph(20, GetParam());
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index);  // Proximity on.
  Dijkstra dijkstra(g);
  Rng rng(GetParam() + 3);
  for (int q = 0; q < 60; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(FcSeedTest, NativePathsMatchDijkstraOnRandomGraph) {
  Graph g = testing::MakeRandomGraph(150, 450, GetParam());
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index, FcQueryOptions{.use_proximity = false});
  Dijkstra dijkstra(g);
  Rng rng(GetParam() + 17);
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    const PathResult p = query.Path(s, t);
    ASSERT_EQ(p.length, ref) << "s=" << s << " t=" << t;
    if (ref == kInfDist) {
      EXPECT_TRUE(p.nodes.empty());
    } else {
      EXPECT_TRUE(IsValidPath(g, p.nodes, s, t, ref))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(FcSeedTest, NativePathsMatchDijkstraOnRoadGraph) {
  // Proximity constraint on: paths must stay exact on road-like inputs.
  Graph g = testing::MakeRoadGraph(20, GetParam());
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index);
  Dijkstra dijkstra(g);
  Rng rng(GetParam() + 23);
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    const PathResult p = query.Path(s, t);
    ASSERT_EQ(p.length, ref) << "s=" << s << " t=" << t;
    if (ref != kInfDist) {
      EXPECT_TRUE(IsValidPath(g, p.nodes, s, t, ref))
          << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FcSeedTest, ::testing::Values(1, 2, 9, 31));

TEST(FcTest, SelfQuery) {
  Graph g = testing::MakeRoadGraph(10, 5);
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index);
  EXPECT_EQ(query.Distance(4, 4), 0u);
}

TEST(FcTest, SelfPathIsSingleNode) {
  Graph g = testing::MakeRoadGraph(10, 5);
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index);
  const PathResult p = query.Path(4, 4);
  EXPECT_EQ(p.length, 0u);
  EXPECT_EQ(p.nodes, std::vector<NodeId>{4});
}

TEST(FcTest, IdentityQueryResetsSettledCounter) {
  // Regression (PR 2): Distance(s, s) used to early-return before resetting
  // last_settled_, so LastSettled() reported the previous query's count —
  // the same stale-counter bug fixed for ALT in PR 1.
  Graph g = testing::MakeRoadGraph(12, 5);
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index);
  query.Distance(0, static_cast<NodeId>(g.NumNodes() - 1));
  ASSERT_GT(query.LastSettled(), 0u);
  EXPECT_EQ(query.Distance(3, 3), 0u);
  EXPECT_EQ(query.LastSettled(), 0u);
  // Path(s, s) takes the same early-return; it must reset too.
  query.Distance(0, static_cast<NodeId>(g.NumNodes() - 1));
  ASSERT_GT(query.LastSettled(), 0u);
  query.Path(3, 3);
  EXPECT_EQ(query.LastSettled(), 0u);
}

TEST(FcTest, BuildStatsPopulated) {
  Graph g = testing::MakeRoadGraph(14, 6);
  FcIndex index = FcIndex::Build(g);
  EXPECT_GT(index.build_stats().shortcuts, 0u);
  EXPECT_GT(index.build_stats().grid_depth, 0);
  EXPECT_GT(index.SizeBytes(), 0u);
  EXPECT_EQ(index.NumNodes(), g.NumNodes());
  // Hierarchy holds original arcs plus shortcuts.
  EXPECT_GE(index.hierarchy().NumArcs(), g.NumArcs());
  // The hierarchy retains midpoints; the unpack table covers every query
  // arc plus the unpack-only parent-chain arcs.
  EXPECT_TRUE(index.hierarchy().HasMids());
  EXPECT_EQ(index.hierarchy().NumUnpackArcs(),
            index.hierarchy().NumArcs() + index.build_stats().unpack_arcs);
}

TEST(FcTest, SizeBytesAccountsForAllOwnedMembers) {
  // Regression (PR 2): SizeBytes used to omit the grid stack (and would
  // have omitted the unpack table); it must equal the sum over every owned
  // member, which is what the fig10 space report prints.
  Graph g = testing::MakeRoadGraph(14, 6);
  FcIndex index = FcIndex::Build(g);
  const std::size_t expected =
      index.NumNodes() * (sizeof(Level) + sizeof(Point)) +
      index.grids().SizeBytes() + index.hierarchy().SizeBytes();
  EXPECT_EQ(index.SizeBytes(), expected);
  EXPECT_GT(index.grids().SizeBytes(), 0u);
  EXPECT_GT(index.hierarchy().SizeBytes(), 0u);
}

TEST(FcTest, LevelsWithinGridDepth) {
  Graph g = testing::MakeRoadGraph(14, 7);
  FcIndex index = FcIndex::Build(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_GE(index.LevelOf(v), 0);
    EXPECT_LE(index.LevelOf(v), index.grids().Depth());
  }
  EXPECT_GT(index.build_stats().max_level, 0);
}

TEST(FcTest, ConstrainedSearchSettlesFewerNodes) {
  Graph g = testing::MakeRoadGraph(24, 8);
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index);
  Dijkstra dijkstra(g);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(g.NumNodes() - 1);
  query.Distance(s, t);
  dijkstra.Distance(s, t);
  EXPECT_LT(query.LastSettled(), dijkstra.SettledNodes().size());
}

// The per-source shortcut searches run on ParallelChunks; chunk-ordered
// merging must make the built hierarchy bit-identical at any thread count.
// (FcIndex::Save embeds wall-clock build timings, so the comparison runs on
// the structural data: levels plus the serialized hierarchy.)
TEST(FcTest, ParallelBuildIsDeterministicAcrossThreadCounts) {
  Graph g = testing::MakeRoadGraph(14, 9);
  const FcIndex serial = FcIndex::Build(g, FcParams{.build_threads = 1});
  const FcIndex parallel = FcIndex::Build(g, FcParams{.build_threads = 4});

  EXPECT_EQ(serial.build_stats().shortcuts, parallel.build_stats().shortcuts);
  EXPECT_EQ(serial.build_stats().unpack_arcs,
            parallel.build_stats().unpack_arcs);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(serial.LevelOf(v), parallel.LevelOf(v)) << "node " << v;
  }
  std::ostringstream serial_bytes;
  std::ostringstream parallel_bytes;
  serial.hierarchy().Save(serial_bytes);
  parallel.hierarchy().Save(parallel_bytes);
  EXPECT_EQ(serial_bytes.str(), parallel_bytes.str());
}

}  // namespace
}  // namespace ah
