#include <gtest/gtest.h>

#include "fc/fc_index.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace ah {
namespace {

class FcSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FcSeedTest, LevelOnlyModeMatchesDijkstraOnRandomGraph) {
  // Without the proximity constraint FC is exact for any level function
  // (the §3.4 upswing argument) — even on non-road-like graphs.
  Graph g = testing::MakeRandomGraph(150, 450, GetParam());
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index, FcQueryOptions{.use_proximity = false});
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 50; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(FcSeedTest, FullConstraintsMatchDijkstraOnRoadGraph) {
  Graph g = testing::MakeRoadGraph(20, GetParam());
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index);  // Proximity on.
  Dijkstra dijkstra(g);
  Rng rng(GetParam() + 3);
  for (int q = 0; q < 60; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FcSeedTest, ::testing::Values(1, 2, 9, 31));

TEST(FcTest, SelfQuery) {
  Graph g = testing::MakeRoadGraph(10, 5);
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index);
  EXPECT_EQ(query.Distance(4, 4), 0u);
}

TEST(FcTest, BuildStatsPopulated) {
  Graph g = testing::MakeRoadGraph(14, 6);
  FcIndex index = FcIndex::Build(g);
  EXPECT_GT(index.build_stats().shortcuts, 0u);
  EXPECT_GT(index.build_stats().grid_depth, 0);
  EXPECT_GT(index.SizeBytes(), 0u);
  EXPECT_EQ(index.NumNodes(), g.NumNodes());
  // Hierarchy holds original arcs plus shortcuts.
  EXPECT_GE(index.hierarchy().NumArcs(), g.NumArcs());
}

TEST(FcTest, LevelsWithinGridDepth) {
  Graph g = testing::MakeRoadGraph(14, 7);
  FcIndex index = FcIndex::Build(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_GE(index.LevelOf(v), 0);
    EXPECT_LE(index.LevelOf(v), index.grids().Depth());
  }
  EXPECT_GT(index.build_stats().max_level, 0);
}

TEST(FcTest, ConstrainedSearchSettlesFewerNodes) {
  Graph g = testing::MakeRoadGraph(24, 8);
  FcIndex index = FcIndex::Build(g);
  FcQuery query(index);
  Dijkstra dijkstra(g);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(g.NumNodes() - 1);
  query.Distance(s, t);
  dijkstra.Distance(s, t);
  EXPECT_LT(query.LastSettled(), dijkstra.SettledNodes().size());
}

}  // namespace
}  // namespace ah
