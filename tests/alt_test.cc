#include <gtest/gtest.h>

#include "alt/alt_index.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace ah {
namespace {

class AltSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AltSeedTest, MatchesDijkstraOnRoadGraph) {
  Graph g = testing::MakeRoadGraph(20, GetParam());
  AltIndex index = AltIndex::Build(g);
  AltQuery query(g, index);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 60; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(AltSeedTest, MatchesDijkstraOnRandomGraph) {
  Graph g = testing::MakeRandomGraph(150, 450, GetParam() ^ 0x99);
  AltIndex index = AltIndex::Build(g);
  AltQuery query(g, index);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(query.Distance(s, t), dijkstra.Distance(s, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AltSeedTest, ::testing::Values(2, 8, 32));

TEST(AltTest, PotentialIsFeasibleLowerBound) {
  Graph g = testing::MakeRoadGraph(14, 3);
  AltIndex index = AltIndex::Build(g);
  Dijkstra dijkstra(g);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const NodeId v = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist d = dijkstra.Distance(v, t);
    if (d == kInfDist) continue;
    EXPECT_LE(index.Potential(v, t), d) << "v=" << v << " t=" << t;
  }
}

TEST(AltTest, PotentialAtTargetIsZero) {
  Graph g = testing::MakeRoadGraph(10, 4);
  AltIndex index = AltIndex::Build(g);
  for (NodeId v = 0; v < g.NumNodes(); v += 7) {
    EXPECT_EQ(index.Potential(v, v), 0u);
  }
}

TEST(AltTest, LandmarksAreDistinctAndSpread) {
  Graph g = testing::MakeRoadGraph(24, 5);
  AltParams params;
  params.num_landmarks = 6;
  AltIndex index = AltIndex::Build(g, params);
  ASSERT_EQ(index.NumLandmarks(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      EXPECT_NE(index.landmarks()[i], index.landmarks()[j]);
    }
  }
}

TEST(AltTest, SettlesFewerNodesThanDijkstraOnLongQueries) {
  Graph g = testing::MakeRoadGraph(32, 6);
  AltIndex index = AltIndex::Build(g);
  AltQuery query(g, index);
  Dijkstra dijkstra(g);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(g.NumNodes() - 1);
  query.Distance(s, t);
  dijkstra.Distance(s, t);
  EXPECT_LT(query.LastSettled(), dijkstra.SettledNodes().size());
}

TEST(AltTest, IdentityQueryResetsSettledCount) {
  Graph g = testing::MakeRoadGraph(16, 6);
  AltIndex index = AltIndex::Build(g);
  AltQuery query(g, index);
  query.Distance(0, static_cast<NodeId>(g.NumNodes() - 1));
  ASSERT_GT(query.LastSettled(), 0u);
  EXPECT_EQ(query.Distance(5, 5), 0u);
  EXPECT_EQ(query.LastSettled(), 0u);  // No stale count from the prior query.
}

TEST(AltTest, PathMatchesDijkstra) {
  Graph g = testing::MakeRoadGraph(16, 9);
  AltIndex index = AltIndex::Build(g);
  AltQuery query(g, index);
  Dijkstra dijkstra(g);
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const Dist ref = dijkstra.Distance(s, t);
    const PathResult p = query.Path(s, t);
    ASSERT_EQ(p.length, ref);
    if (ref != kInfDist) {
      EXPECT_TRUE(IsValidPath(g, p.nodes, s, t, ref));
    }
  }
}

TEST(AltTest, MoreLandmarksTightenPotentials) {
  Graph g = testing::MakeRoadGraph(20, 7);
  AltParams few;
  few.num_landmarks = 2;
  AltParams many;
  many.num_landmarks = 12;
  AltIndex small = AltIndex::Build(g, few);
  AltIndex large = AltIndex::Build(g, many);
  Rng rng(7);
  std::uint64_t small_sum = 0, large_sum = 0;
  for (int i = 0; i < 200; ++i) {
    const NodeId v = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    small_sum += small.Potential(v, t);
    large_sum += large.Potential(v, t);
  }
  EXPECT_GE(large_sum, small_sum);  // Superset of landmarks can only help.
}

}  // namespace
}  // namespace ah
