#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

#include "core/ah_index.h"
#include "test_util.h"
#include "util/parallel.h"

namespace ah {
namespace {

TEST(ParallelChunksTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelChunks(1000, 64, [&](std::size_t, std::size_t b, std::size_t e,
                               std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelChunksTest, ChunkIndicesAreDense) {
  std::vector<std::atomic<int>> chunk_seen(16);
  ParallelChunks(1000, 64, [&](std::size_t c, std::size_t b, std::size_t e,
                               std::size_t) {
    ASSERT_LT(c, 16u);
    chunk_seen[c].fetch_add(1);
    EXPECT_EQ(b, c * 64);
    EXPECT_EQ(e, std::min<std::size_t>(1000, b + 64));
  });
  for (const auto& c : chunk_seen) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelChunksTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelChunks(0, 8, [&](std::size_t, std::size_t, std::size_t,
                           std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelChunksTest, SingleThreadPathMatches) {
  std::vector<int> sums(2, 0);
  for (int t = 0; t < 2; ++t) {
    int sum = 0;
    ParallelChunks(
        100, 7,
        [&](std::size_t, std::size_t b, std::size_t e, std::size_t) {
          for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
        },
        t == 0 ? 1 : 4);
    // With threads > 1 the sum accumulation would race; run serially per
    // thread count by using a local and relying on chunk coverage: the
    // parallel case is covered by the atomic tests above, so only verify
    // the serial total here.
    if (t == 0) sums[0] = sum;
  }
  EXPECT_EQ(sums[0], 4950);
}

TEST(ParallelChunksTest, WorkerThreadsRespectsEnv) {
  setenv("AH_THREADS", "3", 1);
  EXPECT_EQ(WorkerThreads(), 3u);
  unsetenv("AH_THREADS");
  EXPECT_GE(WorkerThreads(), 1u);
  EXPECT_LE(WorkerThreads(16), 16u);
}

TEST(ParallelDeterminismTest, AhBuildIdenticalAcrossThreadCounts) {
  // The parallel preprocessing merges in deterministic chunk order: the
  // index must be bit-identical whether built with 1 or many threads.
  Graph g = testing::MakeRoadGraph(16, 11);
  setenv("AH_THREADS", "1", 1);
  AhIndex serial = AhIndex::Build(g);
  setenv("AH_THREADS", "8", 1);
  AhIndex parallel = AhIndex::Build(g);
  unsetenv("AH_THREADS");
  ASSERT_EQ(serial.MaxLevel(), parallel.MaxLevel());
  EXPECT_EQ(serial.build_stats().shortcuts, parallel.build_stats().shortcuts);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(serial.LevelOf(v), parallel.LevelOf(v));
    ASSERT_EQ(serial.search_graph().RankOf(v),
              parallel.search_graph().RankOf(v));
    const Level j = serial.LevelOf(v) + 1;
    const auto a = serial.FwdGateways(v, j);
    const auto b = parallel.FwdGateways(v, j);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].node, b[i].node);
      ASSERT_EQ(a[i].dist, b[i].dist);
    }
  }
}

}  // namespace
}  // namespace ah
