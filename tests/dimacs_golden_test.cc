// Golden-value regression over the checked-in DIMACS fixture
// tests/data/tiny8.{gr,co}: parsing, hand-verified all-pairs distances,
// write/read round-trips, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "api/distance_oracle.h"
#include "graph/dimacs.h"
#include "routing/dijkstra.h"

namespace ah {
namespace {

constexpr Dist kInf = kInfDist;

// All-pairs distances of tiny8, 0-based [s][t]; verified by hand against the
// fixture's arc list.
constexpr Dist kGolden[8][8] = {
    {0, 4, 2, 12, 15, 16, 18, kInf},
    {4, 0, 5, 15, 12, 13, 15, kInf},
    {2, 6, 0, 10, 13, 14, 16, kInf},
    {24, 28, 26, 0, 3, 4, 6, kInf},
    {21, 25, 23, 3, 0, 1, 3, kInf},
    {20, 24, 22, 32, 35, 0, 2, kInf},
    {22, 26, 24, 34, 37, 2, 0, kInf},
    {7, 11, 9, 19, 22, 23, 25, 0},
};

std::string FixtureBase() {
  // Env override first (set by CTest), then the source-tree path baked in at
  // configure time, so the binary also works when invoked directly.
  if (const char* dir = std::getenv("AH_TEST_DATA_DIR")) {
    return std::string(dir) + "/tiny8";
  }
#ifdef AH_TEST_DATA_DIR_DEFAULT
  return std::string(AH_TEST_DATA_DIR_DEFAULT) + "/tiny8";
#else
  return "tests/data/tiny8";
#endif
}

TEST(DimacsGoldenTest, ParsesFixture) {
  const Graph g = ReadDimacsFiles(FixtureBase());
  EXPECT_EQ(g.NumNodes(), 8u);
  EXPECT_EQ(g.NumArcs(), 15u);
  EXPECT_EQ(g.Coord(0), (Point{0, 0}));
  EXPECT_EQ(g.Coord(7), (Point{-80, -60}));
  EXPECT_EQ(g.ArcWeight(0, 1), 4u);   // a 1 2 4
  EXPECT_EQ(g.ArcWeight(7, 0), 7u);   // a 8 1 7
  EXPECT_EQ(g.ArcWeight(0, 7), kMaxWeight);  // absent arc
}

TEST(DimacsGoldenTest, AllPairsDistancesMatchGolden) {
  const Graph g = ReadDimacsFiles(FixtureBase());
  Dijkstra dijkstra(g);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      EXPECT_EQ(dijkstra.Distance(s, t), kGolden[s][t])
          << "d(" << s << ", " << t << ")";
    }
  }
}

TEST(DimacsGoldenTest, IndexBackendsReproduceGolden) {
  const Graph g = ReadDimacsFiles(FixtureBase());
  for (const std::string& name : OracleNames()) {
    std::unique_ptr<DistanceOracle> oracle = MakeOracle(name, g);
    for (NodeId s = 0; s < 8; ++s) {
      for (NodeId t = 0; t < 8; ++t) {
        EXPECT_EQ(oracle->Distance(s, t), kGolden[s][t])
            << name << ": d(" << s << ", " << t << ")";
      }
    }
  }
}

TEST(DimacsGoldenTest, WriteReadRoundTrip) {
  const Graph g = ReadDimacsFiles(FixtureBase());
  std::stringstream gr, co;
  WriteDimacsGraph(g, gr);
  WriteDimacsCoords(g, co);
  const Graph g2 = ReadDimacs(gr, co);
  ASSERT_EQ(g2.NumNodes(), g.NumNodes());
  ASSERT_EQ(g2.NumArcs(), g.NumArcs());
  Dijkstra dijkstra(g2);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      EXPECT_EQ(dijkstra.Distance(s, t), kGolden[s][t]);
    }
  }
}

TEST(DimacsGoldenTest, RejectsMalformedInput) {
  const std::string good_co = "p aux sp co 2\nv 1 0 0\nv 2 1 1\n";

  {  // Bad .gr header tag.
    std::stringstream gr("p xx 2 1\na 1 2 5\n"), co(good_co);
    EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
  }
  {  // Arc endpoint out of range.
    std::stringstream gr("p sp 2 1\na 1 3 5\n"), co(good_co);
    EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
  }
  {  // Non-positive weight.
    std::stringstream gr("p sp 2 1\na 1 2 0\n"), co(good_co);
    EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
  }
  {  // Arc before the p-line.
    std::stringstream gr("a 1 2 5\np sp 2 1\n"), co(good_co);
    EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
  }
  {  // Node count mismatch between .gr and .co.
    std::stringstream gr("p sp 3 1\na 1 2 5\n"), co(good_co);
    EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
  }
  {  // Missing coordinate for node 2.
    std::stringstream gr("p sp 2 1\na 1 2 5\n");
    std::stringstream co("p aux sp co 2\nv 1 0 0\n");
    EXPECT_THROW(ReadDimacs(gr, co), std::runtime_error);
  }
  {  // Missing file.
    EXPECT_THROW(ReadDimacsFiles("/nonexistent/definitely_missing"),
                 std::runtime_error);
  }
}

}  // namespace
}  // namespace ah
