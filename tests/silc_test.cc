#include <gtest/gtest.h>

#include "routing/dijkstra.h"
#include "routing/path.h"
#include "silc/quadtree.h"
#include "silc/silc_index.h"
#include "test_util.h"

namespace ah {
namespace {

TEST(MortonTest, InterleaveBasics) {
  EXPECT_EQ(MortonInterleave32(0, 0), 0u);
  EXPECT_EQ(MortonInterleave32(1, 0), 1u);
  EXPECT_EQ(MortonInterleave32(0, 1), 2u);
  EXPECT_EQ(MortonInterleave32(1, 1), 3u);
  EXPECT_EQ(MortonInterleave32(2, 0), 4u);
  EXPECT_EQ(MortonInterleave32(0xffffffffu, 0xffffffffu),
            0xffffffffffffffffULL);
}

TEST(MortonSpaceTest, MonotonePerAxis) {
  Box box;
  box.Extend({0, 0});
  box.Extend({1000, 1000});
  MortonSpace space(box);
  EXPECT_LT(space.MortonOf({0, 0}), space.MortonOf({1000, 1000}));
  EXPECT_NE(space.MortonOf({10, 20}), space.MortonOf({20, 10}));
}

TEST(QuadBlocksTest, UniformInputSingleBlock) {
  std::vector<std::uint64_t> mortons = {1, 5, 9, 200};
  std::vector<NodeId> colors = {4, 4, 4, 4};
  std::vector<QuadBlock> blocks;
  BuildColorBlocks(mortons, colors, &blocks);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].depth, 0);
  EXPECT_EQ(blocks[0].color, 4u);
  EXPECT_EQ(LookupColor(blocks, 123456), 4u);
}

TEST(QuadBlocksTest, SplitsOnColorChange) {
  // Two colors separated in Morton space: top-level quadrants differ.
  const std::uint64_t far_apart = 3ULL << 62;  // Quadrant 3.
  std::vector<std::uint64_t> mortons = {0, 1, far_apart};
  std::vector<NodeId> colors = {7, 7, 9};
  std::vector<QuadBlock> blocks;
  BuildColorBlocks(mortons, colors, &blocks);
  ASSERT_GE(blocks.size(), 2u);
  EXPECT_EQ(LookupColor(blocks, 0), 7u);
  EXPECT_EQ(LookupColor(blocks, far_apart), 9u);
}

TEST(QuadBlocksTest, BlocksAreSortedAndDisjoint) {
  Rng rng(5);
  std::vector<std::uint64_t> mortons;
  std::vector<NodeId> colors;
  for (int i = 0; i < 300; ++i) mortons.push_back(rng.Next());
  std::sort(mortons.begin(), mortons.end());
  for (int i = 0; i < 300; ++i) {
    colors.push_back(static_cast<NodeId>(rng.Uniform(5)));
  }
  std::vector<QuadBlock> blocks;
  BuildColorBlocks(mortons, colors, &blocks);
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_LT(blocks[i - 1].start, blocks[i].start);
  }
  // Every input point must resolve to its own color.
  for (std::size_t i = 0; i < mortons.size(); ++i) {
    if (i > 0 && mortons[i] == mortons[i - 1]) continue;  // Duplicate code.
    EXPECT_EQ(LookupColor(blocks, mortons[i]), colors[i]) << i;
  }
}

class SilcSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SilcSeedTest, DistanceMatchesDijkstra) {
  Graph g = testing::MakeRoadGraph(14, GetParam());
  SilcIndex index = SilcIndex::Build(g);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 50; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    ASSERT_EQ(index.Distance(s, t), dijkstra.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(SilcSeedTest, PathsValidAndOptimal) {
  Graph g = testing::MakeRoadGraph(12, GetParam() + 9);
  SilcIndex index = SilcIndex::Build(g);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 30; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const PathResult path = index.Path(s, t);
    const Dist ref = dijkstra.Distance(s, t);
    ASSERT_EQ(path.length, ref);
    if (ref != kInfDist) {
      EXPECT_TRUE(IsValidPath(g, path.nodes, s, t, ref));
    }
  }
}

TEST_P(SilcSeedTest, NextHopIsFirstEdgeOfAShortestPath) {
  Graph g = testing::MakeRoadGraph(10, GetParam() + 17);
  SilcIndex index = SilcIndex::Build(g);
  Dijkstra dijkstra(g);
  Rng rng(GetParam());
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    if (s == t) continue;
    const NodeId hop = index.NextHop(s, t);
    ASSERT_NE(hop, kInvalidNode);
    const Weight w = g.ArcWeight(s, hop);
    ASSERT_NE(w, kMaxWeight);
    // d(s,t) == w(s,hop) + d(hop,t): the hop lies on a shortest path.
    EXPECT_EQ(dijkstra.Distance(s, t), w + dijkstra.Distance(hop, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SilcSeedTest, ::testing::Values(1, 2, 3));

TEST(SilcTest, SelfQuery) {
  Graph g = testing::MakeRoadGraph(8, 1);
  SilcIndex index = SilcIndex::Build(g);
  EXPECT_EQ(index.Distance(3, 3), 0u);
  EXPECT_EQ(index.NextHop(3, 3), kInvalidNode);
  const PathResult p = index.Path(3, 3);
  EXPECT_EQ(p.nodes, std::vector<NodeId>{3});
}

TEST(SilcTest, BuildStatsAndSize) {
  Graph g = testing::MakeRoadGraph(10, 2);
  SilcIndex index = SilcIndex::Build(g);
  EXPECT_GT(index.build_stats().total_blocks, g.NumNodes());
  EXPECT_GT(index.SizeBytes(), 0u);
}

// The build's per-source Dijkstra sweep runs on ParallelChunks with
// chunk-ordered merging: the index tables must be bit-identical at any
// thread count (what makes parallel SILC rebuilds safe inside the
// registry's background build worker).
TEST(SilcTest, ParallelBuildIsBitIdenticalAtAnyThreadCount) {
  // Sources not a multiple of the 64-source chunk, so the last chunk is
  // ragged; disconnected pairs exercise the kInvalidNode color path.
  const Graph road = testing::MakeRoadGraph(13, 21);
  const Graph split = testing::MakeDisconnectedGraph(40, 5);
  for (const Graph* g : {&road, &split}) {
    const SilcIndex sequential = SilcIndex::Build(*g, SilcParams{1});
    for (const std::size_t threads : {2u, 3u, 8u}) {
      const SilcIndex parallel = SilcIndex::Build(*g, SilcParams{threads});
      ASSERT_EQ(parallel.src_offsets(), sequential.src_offsets())
          << threads << " threads";
      ASSERT_EQ(parallel.blocks(), sequential.blocks()) << threads
                                                        << " threads";
      EXPECT_EQ(parallel.build_stats().total_blocks,
                sequential.build_stats().total_blocks);
    }
  }
}

// The windowed build may run at most `chunk_window` chunks ahead of the
// in-order merge, so the transient per-chunk block buffers stay O(threads)
// no matter how many 64-source chunks the graph has — the peak-RSS bound
// that makes big SILC builds viable.
TEST(SilcTest, ParallelBuildBoundsLiveChunkBuffers) {
  // 700 nodes = 11 chunks, comfortably more than the window at 2-4 threads.
  const Graph g = testing::MakeRandomGraph(700, 1400, 19);
  for (const std::size_t threads : {2u, 4u}) {
    const SilcIndex index = SilcIndex::Build(g, SilcParams{threads});
    const SilcBuildStats& stats = index.build_stats();
    EXPECT_EQ(stats.chunk_window, 2 * threads);
    EXPECT_LE(stats.max_live_chunks, stats.chunk_window)
        << threads << " threads";
    EXPECT_GE(stats.max_live_chunks, 1u);
  }
  // The sequential build pipelines one chunk at a time.
  const SilcIndex sequential = SilcIndex::Build(g, SilcParams{1});
  EXPECT_EQ(sequential.build_stats().max_live_chunks, 1u);
}

TEST(SilcTest, SuperLinearBlockGrowth) {
  // The reason the paper drops SILC on big inputs: block count per node
  // grows with n.
  Graph small = testing::MakeRoadGraph(8, 3);
  Graph large = testing::MakeRoadGraph(24, 3);
  SilcIndex is = SilcIndex::Build(small);
  SilcIndex il = SilcIndex::Build(large);
  const double per_node_small =
      static_cast<double>(is.build_stats().total_blocks) / small.NumNodes();
  const double per_node_large =
      static_cast<double>(il.build_stats().total_blocks) / large.NumNodes();
  EXPECT_GT(per_node_large, per_node_small);
}

}  // namespace
}  // namespace ah
