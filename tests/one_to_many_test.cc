#include <gtest/gtest.h>

#include "ch/ch_index.h"
#include "core/ah_index.h"
#include "hier/one_to_many.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace ah {
namespace {

class OneToManySeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneToManySeedTest, MatchesDijkstraOnChHierarchy) {
  Graph g = testing::MakeRoadGraph(20, GetParam());
  ChIndex ch = ChIndex::Build(g);
  Rng rng(GetParam());
  std::vector<NodeId> targets;
  for (int i = 0; i < 15; ++i) {
    targets.push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  OneToMany otm(ch.search_graph(), targets);
  Dijkstra dijkstra(g);
  for (int q = 0; q < 15; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const auto& dists = otm.DistancesFrom(s);
    ASSERT_EQ(dists.size(), targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      ASSERT_EQ(dists[i], dijkstra.Distance(s, targets[i]))
          << "s=" << s << " t=" << targets[i];
    }
  }
}

TEST_P(OneToManySeedTest, MatchesDijkstraOnAhHierarchy) {
  Graph g = testing::MakeRandomGraph(150, 450, GetParam());
  AhIndex ah = AhIndex::Build(g);
  Rng rng(GetParam() + 1);
  std::vector<NodeId> targets;
  for (int i = 0; i < 12; ++i) {
    targets.push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  OneToMany otm(ah.search_graph(), targets);
  Dijkstra dijkstra(g);
  for (int q = 0; q < 10; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const auto& dists = otm.DistancesFrom(s);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      ASSERT_EQ(dists[i], dijkstra.Distance(s, targets[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneToManySeedTest, ::testing::Values(1, 7, 13));

TEST(OneToManyTest, KNearestSortedAndCorrect) {
  Graph g = testing::MakeRoadGraph(16, 3);
  ChIndex ch = ChIndex::Build(g);
  Rng rng(3);
  std::vector<NodeId> targets;
  for (int i = 0; i < 20; ++i) {
    targets.push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  OneToMany otm(ch.search_graph(), targets);
  Dijkstra dijkstra(g);
  const NodeId s = 0;
  const auto top5 = otm.KNearest(s, 5);
  ASSERT_LE(top5.size(), 5u);
  for (std::size_t i = 1; i < top5.size(); ++i) {
    EXPECT_LE(top5[i - 1].second, top5[i].second);
  }
  for (const auto& [t, d] : top5) {
    EXPECT_EQ(d, dijkstra.Distance(s, t));
  }
  // Nothing outside the top-k is closer than the k-th entry.
  if (!top5.empty()) {
    for (NodeId t : targets) {
      const Dist d = dijkstra.Distance(s, t);
      if (d < top5.back().second) {
        bool in_top = false;
        for (const auto& [node, dist] : top5) in_top |= node == t;
        EXPECT_TRUE(in_top);
      }
    }
  }
}

// A hub-and-spoke fixture where every spoke is exactly the same distance
// from the hub: the (dist, node id) tie-break must pick the lowest ids, in
// id order, on every run — downstream caches and conformance diffs depend
// on k-nearest answers being a pure function of the graph.
TEST(OneToManyTest, KNearestBreaksTiesByNodeId) {
  constexpr std::size_t kSpokes = 12;
  GraphBuilder builder(kSpokes + 1);
  builder.AddNode(Point{0, 0});  // hub = node 0
  for (std::size_t i = 1; i <= kSpokes; ++i) {
    builder.AddNode(Point{static_cast<std::int32_t>(100 * i), 100});
    builder.AddArc(0, static_cast<NodeId>(i), 10);
    builder.AddArc(static_cast<NodeId>(i), 0, 10);
  }
  Graph g = builder.Build();
  ChIndex ch = ChIndex::Build(g);
  // Targets deliberately out of id order: output order must not follow it.
  std::vector<NodeId> targets;
  for (std::size_t i = kSpokes; i >= 1; --i) {
    targets.push_back(static_cast<NodeId>(i));
  }
  OneToMany otm(ch.search_graph(), targets);
  const auto top5 = otm.KNearest(0, 5);
  ASSERT_EQ(top5.size(), 5u);
  for (std::size_t i = 0; i < top5.size(); ++i) {
    EXPECT_EQ(top5[i].first, static_cast<NodeId>(i + 1));
    EXPECT_EQ(top5[i].second, 10u);
  }
}

// Regression: DistancesFrom used to return a reference to an internal
// buffer that the next call silently rewrote — a result held across queries
// (the natural idiom with pooled sessions) would change under the caller.
// It now copies out, so earlier results must survive later queries.
TEST(OneToManyTest, ResultSurvivesSubsequentQueries) {
  Graph g = testing::MakeRoadGraph(12, 9);
  ChIndex ch = ChIndex::Build(g);
  Rng rng(9);
  std::vector<NodeId> targets;
  for (int i = 0; i < 10; ++i) {
    targets.push_back(static_cast<NodeId>(rng.Uniform(g.NumNodes())));
  }
  OneToMany otm(ch.search_graph(), targets);
  const NodeId s1 = 0;
  const NodeId s2 = static_cast<NodeId>(g.NumNodes() - 1);
  const std::vector<Dist> first = otm.DistancesFrom(s1);
  const std::vector<Dist> expected_first = first;  // snapshot before reuse
  (void)otm.DistancesFrom(s2);
  (void)otm.KNearest(s2, 3);
  EXPECT_EQ(first, expected_first);
  // And the values themselves are still the correct answers for s1.
  Dijkstra dijkstra(g);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(first[i], dijkstra.Distance(s1, targets[i]));
  }
}

TEST(OneToManyTest, TargetAtSourceIsZero) {
  Graph g = testing::MakeRoadGraph(10, 4);
  ChIndex ch = ChIndex::Build(g);
  OneToMany otm(ch.search_graph(), {5});
  EXPECT_EQ(otm.DistancesFrom(5)[0], 0u);
}

TEST(OneToManyTest, EmptyTargetSet) {
  Graph g = testing::MakeRoadGraph(8, 5);
  ChIndex ch = ChIndex::Build(g);
  OneToMany otm(ch.search_graph(), {});
  EXPECT_TRUE(otm.DistancesFrom(0).empty());
  EXPECT_TRUE(otm.KNearest(0, 3).empty());
}

TEST(OneToManyTest, BucketEntriesBounded) {
  Graph g = testing::MakeRoadGraph(20, 6);
  ChIndex ch = ChIndex::Build(g);
  std::vector<NodeId> targets = {1, 2, 3, 4, 5};
  OneToMany otm(ch.search_graph(), targets);
  // Each target's backward search settles far fewer than n nodes.
  EXPECT_LT(otm.NumBucketEntries(), targets.size() * g.NumNodes());
  EXPECT_GT(otm.NumBucketEntries(), 0u);
}

}  // namespace
}  // namespace ah
